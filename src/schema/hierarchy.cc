#include "schema/hierarchy.h"

#include <utility>

#include "common/str_util.h"

namespace starshare {

Hierarchy::Hierarchy(std::string dim_name, uint32_t top_cardinality,
                     std::vector<uint32_t> fanouts)
    : dim_name_(std::move(dim_name)), fanouts_(std::move(fanouts)) {
  SS_CHECK(top_cardinality > 0);
  const int levels = static_cast<int>(fanouts_.size()) + 1;
  cardinalities_.resize(levels);
  cardinalities_[levels - 1] = top_cardinality;
  for (int l = levels - 2; l >= 0; --l) {
    SS_CHECK(fanouts_[l] > 0);
    cardinalities_[l] = cardinalities_[l + 1] * fanouts_[l];
  }
}

uint32_t Hierarchy::cardinality(int level) const {
  if (level == all_level()) return 1;
  SS_CHECK_MSG(level >= 0 && level < num_levels(), "level %d of %s", level,
               dim_name_.c_str());
  return cardinalities_[level];
}

int32_t Hierarchy::Parent(int level, int32_t member) const {
  SS_DCHECK(level >= 0 && level <= num_levels());
  if (level >= num_levels() - 1) return 0;  // into top-as-only or ALL
  SS_DCHECK(member >= 0 &&
            static_cast<uint32_t>(member) < cardinalities_[level]);
  return member / static_cast<int32_t>(fanouts_[level]);
}

int32_t Hierarchy::MapUp(int from_level, int to_level, int32_t member) const {
  SS_DCHECK(to_level >= from_level);
  if (to_level >= all_level()) return 0;
  int32_t m = member;
  for (int l = from_level; l < to_level; ++l) {
    m = m / static_cast<int32_t>(fanouts_[l]);
  }
  return m;
}

std::vector<int32_t> Hierarchy::Children(int level, int32_t member) const {
  SS_CHECK(level >= 1 && level <= num_levels());
  if (level == all_level()) {
    std::vector<int32_t> all(cardinality(num_levels() - 1));
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int32_t>(i);
    return all;
  }
  const uint32_t fan = fanouts_[level - 1];
  std::vector<int32_t> kids(fan);
  for (uint32_t i = 0; i < fan; ++i) {
    kids[i] = member * static_cast<int32_t>(fan) + static_cast<int32_t>(i);
  }
  return kids;
}

std::vector<int32_t> Hierarchy::DescendantsAtLevel(int from_level,
                                                   int32_t member,
                                                   int to_level) const {
  SS_CHECK(to_level >= 0 && to_level <= from_level);
  if (from_level == all_level()) {
    std::vector<int32_t> all(cardinality(to_level));
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int32_t>(i);
    return all;
  }
  // Balanced hierarchy: descendants are a contiguous id range.
  int64_t lo = member;
  int64_t hi = member + 1;
  for (int l = from_level - 1; l >= to_level; --l) {
    lo *= fanouts_[l];
    hi *= fanouts_[l];
  }
  std::vector<int32_t> out;
  out.reserve(static_cast<size_t>(hi - lo));
  for (int64_t m = lo; m < hi; ++m) out.push_back(static_cast<int32_t>(m));
  return out;
}

void Hierarchy::SetLevelNames(std::vector<std::string> names) {
  SS_CHECK(static_cast<int>(names.size()) == num_levels());
  level_names_ = std::move(names);
}

void Hierarchy::SetMemberNames(int level, std::vector<std::string> names) {
  SS_CHECK(level >= 0 && level < num_levels());
  SS_CHECK_MSG(names.size() == cardinality(level),
               "level %s needs %u member names, got %zu",
               PrimedLevelName(level).c_str(), cardinality(level),
               names.size());
  if (member_names_.empty()) {
    member_names_.resize(static_cast<size_t>(num_levels()));
  }
  member_names_[static_cast<size_t>(level)] = std::move(names);
}

std::string Hierarchy::PrimedLevelName(int level) const {
  if (level == all_level()) return dim_name_ + "(ALL)";
  SS_CHECK(level >= 0 && level < num_levels());
  std::string out = dim_name_;
  for (int i = 0; i < level; ++i) out += '\'';
  return out;
}

std::string Hierarchy::LevelName(int level) const {
  if (level >= 0 && level < num_levels() && !level_names_.empty()) {
    return level_names_[static_cast<size_t>(level)];
  }
  return PrimedLevelName(level);
}

Result<int> Hierarchy::FindLevel(const std::string& name) const {
  for (int l = 0; l <= num_levels(); ++l) {
    if (name == PrimedLevelName(l)) return l;
  }
  if (!level_names_.empty()) {
    for (int l = 0; l < num_levels(); ++l) {
      if (name == level_names_[static_cast<size_t>(l)]) return l;
    }
  }
  if (name == "ALL") return all_level();
  return Status::NotFound(StrFormat("no level '%s' in dimension %s",
                                    name.c_str(), dim_name_.c_str()));
}

std::string Hierarchy::MemberName(int level, int32_t member) const {
  SS_CHECK(level >= 0 && level <= num_levels());
  if (level == all_level()) return dim_name_ + ".ALL";
  if (!member_names_.empty() &&
      !member_names_[static_cast<size_t>(level)].empty()) {
    return member_names_[static_cast<size_t>(level)]
                        [static_cast<size_t>(member)];
  }
  std::string out;
  const int copies = num_levels() - level;
  for (int i = 0; i < copies; ++i) out += dim_name_;
  out += std::to_string(member + 1);
  return out;
}

Result<int32_t> Hierarchy::FindMemberAtLevel(int level,
                                             const std::string& name) const {
  if (!member_names_.empty() && level >= 0 && level < num_levels() &&
      !member_names_[static_cast<size_t>(level)].empty()) {
    const auto& names = member_names_[static_cast<size_t>(level)];
    for (size_t m = 0; m < names.size(); ++m) {
      if (names[m] == name) return static_cast<int32_t>(m);
    }
    return Status::NotFound(StrFormat("no member '%s' at level %s",
                                      name.c_str(),
                                      LevelName(level).c_str()));
  }
  const int copies = num_levels() - level;
  std::string prefix;
  for (int i = 0; i < copies; ++i) prefix += dim_name_;
  if (!StartsWith(name, prefix)) {
    return Status::NotFound(StrFormat("member '%s' is not at level %s",
                                      name.c_str(),
                                      LevelName(level).c_str()));
  }
  const std::string digits = name.substr(prefix.size());
  if (digits.empty()) {
    return Status::NotFound("member name has no ordinal: " + name);
  }
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return Status::NotFound("bad member ordinal in: " + name);
    }
  }
  const long ordinal = std::stol(digits);
  if (ordinal < 1 || static_cast<uint32_t>(ordinal) > cardinality(level)) {
    return Status::NotFound(StrFormat("member '%s' out of range at level %s",
                                      name.c_str(),
                                      LevelName(level).c_str()));
  }
  return static_cast<int32_t>(ordinal - 1);
}

Result<std::pair<int, int32_t>> Hierarchy::FindMember(
    const std::string& name) const {
  // The number of leading dim-name copies encodes the level: more copies =
  // deeper (finer) level. Try deepest-prefix matches first so "AA1" resolves
  // at the middle level even though "A" is also a prefix.
  for (int level = 0; level < num_levels(); ++level) {
    Result<int32_t> member = FindMemberAtLevel(level, name);
    if (member.ok()) {
      // Reject if a deeper level would also match with a longer prefix:
      // impossible here because prefix length decreases with level, so the
      // first (deepest) match wins.
      return std::make_pair(level, member.value());
    }
  }
  if (name == dim_name_ + ".ALL" || name == "ALL") {
    return std::make_pair(all_level(), 0);
  }
  return Status::NotFound(StrFormat("no member '%s' in dimension %s",
                                    name.c_str(), dim_name_.c_str()));
}

}  // namespace starshare
