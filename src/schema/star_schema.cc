#include "schema/star_schema.h"

#include <utility>

#include "common/str_util.h"

namespace starshare {

StarSchema::StarSchema(std::vector<DimensionConfig> dims,
                       std::string measure_name)
    : StarSchema(std::move(dims),
                 std::vector<std::string>{std::move(measure_name)}) {}

StarSchema::StarSchema(std::vector<DimensionConfig> dims,
                       std::vector<std::string> measure_names)
    : measure_names_(std::move(measure_names)) {
  SS_CHECK(!dims.empty());
  SS_CHECK(!measure_names_.empty());
  hierarchies_.reserve(dims.size());
  for (auto& cfg : dims) {
    zipf_thetas_.push_back(cfg.zipf_theta);
    hierarchies_.emplace_back(cfg.name, cfg.top_cardinality,
                              std::move(cfg.fanouts));
  }
}

Result<size_t> StarSchema::MeasureIndex(const std::string& name) const {
  for (size_t m = 0; m < measure_names_.size(); ++m) {
    if (measure_names_[m] == name) return m;
  }
  return Status::NotFound("no measure named " + name);
}

StarSchema StarSchema::PaperTestSchema() {
  std::vector<DimensionConfig> dims;
  dims.push_back({.name = "A", .top_cardinality = 3, .fanouts = {5, 3}});
  dims.push_back({.name = "B", .top_cardinality = 3, .fanouts = {5, 3}});
  dims.push_back({.name = "C", .top_cardinality = 3, .fanouts = {5, 3}});
  // D: 8,575 base members under 35 middle members (DD1..DD35, so the
  // FILTER(D.DD1) slicer selects 1/35) under 7 top members — sized so the
  // Table 1 view row counts land in the paper's 0.7M-1.5M band at the full
  // 2M-row scale (A'B''C''D ~0.67M, A''B'C'D ~1.2M, A'B'C'D ~1.7M).
  dims.push_back({.name = "D", .top_cardinality = 7, .fanouts = {245, 5}});
  return StarSchema(std::move(dims), "dollars");
}

Result<size_t> StarSchema::DimIndex(const std::string& name) const {
  for (size_t d = 0; d < hierarchies_.size(); ++d) {
    if (hierarchies_[d].dim_name() == name) return d;
  }
  return Status::NotFound("no dimension named " + name);
}

Result<StarSchema::MemberRef> StarSchema::FindMember(
    const std::string& name) const {
  for (size_t d = 0; d < hierarchies_.size(); ++d) {
    auto hit = hierarchies_[d].FindMember(name);
    if (hit.ok()) {
      return MemberRef{d, hit.value().first, hit.value().second};
    }
  }
  return Status::NotFound("no member named " + name + " in any dimension");
}

}  // namespace starshare
