#include "schema/data_generator.h"

#include <vector>

#include "common/rng.h"

namespace starshare {

std::unique_ptr<Table> DataGenerator::Generate(
    const std::string& table_name) const {
  std::vector<std::string> key_names;
  key_names.reserve(schema_.num_dims());
  for (size_t d = 0; d < schema_.num_dims(); ++d) {
    key_names.push_back(schema_.dim(d).dim_name());
  }
  auto table = std::make_unique<Table>(table_name, key_names,
                                       schema_.measure_names());
  table->Reserve(config_.num_rows);

  Rng rng(config_.seed);
  std::vector<std::unique_ptr<ZipfGenerator>> zipfs(schema_.num_dims());
  for (size_t d = 0; d < schema_.num_dims(); ++d) {
    if (schema_.zipf_theta(d) > 0) {
      zipfs[d] = std::make_unique<ZipfGenerator>(
          schema_.dim(d).cardinality(0), schema_.zipf_theta(d));
    }
  }

  std::vector<int32_t> keys(schema_.num_dims());
  std::vector<double> measures(schema_.num_measures());
  const double measure_span = config_.measure_max - config_.measure_min;
  for (uint64_t row = 0; row < config_.num_rows; ++row) {
    for (size_t d = 0; d < schema_.num_dims(); ++d) {
      const uint64_t card = schema_.dim(d).cardinality(0);
      keys[d] = static_cast<int32_t>(
          zipfs[d] != nullptr ? zipfs[d]->Next(rng) : rng.NextBounded(card));
    }
    for (double& m : measures) {
      m = config_.measure_min + rng.NextDouble() * measure_span;
      if (config_.integer_measures) m = static_cast<double>(static_cast<int64_t>(m));
    }
    table->AppendRowM(keys.data(), measures.data());
  }
  return table;
}

}  // namespace starshare
