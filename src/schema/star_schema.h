// The logical star schema: an ordered list of dimensions (each with a
// hierarchy) plus one measure. The physical fact table and materialized
// group-bys are storage/Table instances described by a GroupBySpec.

#ifndef STARSHARE_SCHEMA_STAR_SCHEMA_H_
#define STARSHARE_SCHEMA_STAR_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "schema/hierarchy.h"

namespace starshare {

// Configuration for one synthetic dimension.
struct DimensionConfig {
  std::string name;
  uint32_t top_cardinality = 3;
  // fanouts[l] children per member of level l+1; size = num_levels - 1.
  std::vector<uint32_t> fanouts;
  // Zipf skew of fact-table keys over this dimension's base members.
  // 0 = uniform.
  double zipf_theta = 0.0;
};

class StarSchema {
 public:
  StarSchema(std::vector<DimensionConfig> dims, std::string measure_name);

  // Multi-measure schema (e.g. dollars + units). Queries name the measure
  // they aggregate; views store one SUM column per measure.
  StarSchema(std::vector<DimensionConfig> dims,
             std::vector<std::string> measure_names);

  // The paper's test schema (§7.2): dimensions A, B, C with 3-level
  // hierarchies (3 top members, fanouts 3 then 5 -> base cardinality 45) and
  // D with a 3-level hierarchy sized so the full-scale (2M-row) view sizes
  // land in Table 1's 0.7M-1.5M band (base cardinality 8,575 under 35
  // DD members).
  static StarSchema PaperTestSchema();

  size_t num_dims() const { return hierarchies_.size(); }
  const Hierarchy& dim(size_t d) const { return hierarchies_[d]; }
  size_t num_measures() const { return measure_names_.size(); }
  const std::string& measure_name(size_t m = 0) const {
    return measure_names_[m];
  }
  const std::vector<std::string>& measure_names() const {
    return measure_names_;
  }
  // Index of the measure named `name`.
  Result<size_t> MeasureIndex(const std::string& name) const;
  double zipf_theta(size_t d) const { return zipf_thetas_[d]; }

  // Index of the dimension named `name` (exact match).
  Result<size_t> DimIndex(const std::string& name) const;

  // Resolves a member name by searching every dimension; the encoding of
  // level into the name makes matches unambiguous for distinct dim names.
  // Returns (dim, level, member).
  struct MemberRef {
    size_t dim;
    int level;
    int32_t member;
  };
  Result<MemberRef> FindMember(const std::string& name) const;

 private:
  std::vector<Hierarchy> hierarchies_;
  std::vector<double> zipf_thetas_;
  std::vector<std::string> measure_names_;
};

}  // namespace starshare

#endif  // STARSHARE_SCHEMA_STAR_SCHEMA_H_
