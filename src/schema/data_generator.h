// Synthetic fact-table generation (paper §7.2: 2M tuples of four dimension
// keys plus one measure, ~20 bytes each). Deterministic given the seed.

#ifndef STARSHARE_SCHEMA_DATA_GENERATOR_H_
#define STARSHARE_SCHEMA_DATA_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "schema/star_schema.h"
#include "storage/table.h"

namespace starshare {

struct DataGeneratorConfig {
  uint64_t num_rows = 2'000'000;
  uint64_t seed = 19980601;  // SIGMOD '98
  double measure_min = 1.0;
  double measure_max = 100.0;
  // Round every generated measure down to a whole number. Integer-valued
  // measures make SUM re-aggregation exact under any fold order, so cube
  // rollups (and their oracles) compare bit-identically; the default keeps
  // the paper's continuous uniform measures.
  bool integer_measures = false;
};

class DataGenerator {
 public:
  DataGenerator(const StarSchema& schema, DataGeneratorConfig config)
      : schema_(schema), config_(config) {}

  // Builds the base fact table named `table_name`, with one key column per
  // dimension holding base-level (level 0) member ids distributed per the
  // schema's per-dimension zipf_theta (0 = uniform), and one measure column
  // uniform in [measure_min, measure_max).
  std::unique_ptr<Table> Generate(const std::string& table_name) const;

 private:
  const StarSchema& schema_;
  DataGeneratorConfig config_;
};

}  // namespace starshare

#endif  // STARSHARE_SCHEMA_DATA_GENERATOR_H_
