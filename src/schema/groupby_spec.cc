#include "schema/groupby_spec.h"

#include <algorithm>

#include "common/str_util.h"

namespace starshare {

GroupBySpec GroupBySpec::Base(const StarSchema& schema) {
  return GroupBySpec(std::vector<int>(schema.num_dims(), 0));
}

Result<GroupBySpec> GroupBySpec::Parse(const std::string& text,
                                       const StarSchema& schema) {
  std::vector<int> levels(schema.num_dims(), -1);
  if (text == "LL") {
    return Base(schema);
  }
  if (text == "()") {  // grand total: every dimension at ALL
    for (size_t d = 0; d < schema.num_dims(); ++d) {
      levels[d] = schema.dim(d).all_level();
    }
    return GroupBySpec(std::move(levels));
  }
  size_t pos = 0;
  while (pos < text.size()) {
    if (text[pos] == ' ') {
      ++pos;
      continue;
    }
    // Longest dimension-name match at `pos`.
    size_t best_dim = SIZE_MAX;
    size_t best_len = 0;
    for (size_t d = 0; d < schema.num_dims(); ++d) {
      const std::string& dname = schema.dim(d).dim_name();
      if (dname.size() > best_len &&
          text.compare(pos, dname.size(), dname) == 0) {
        best_dim = d;
        best_len = dname.size();
      }
    }
    if (best_dim == SIZE_MAX) {
      return Status::InvalidArgument(
          StrFormat("cannot parse group-by spec '%s' at position %zu",
                    text.c_str(), pos));
    }
    if (levels[best_dim] != -1) {
      return Status::InvalidArgument("dimension repeated in spec: " + text);
    }
    pos += best_len;
    int level = 0;
    while (pos < text.size() && text[pos] == '\'') {
      ++level;
      ++pos;
    }
    if (level >= schema.dim(best_dim).all_level()) {
      return Status::InvalidArgument(
          StrFormat("level %d too deep for dimension %s", level,
                    schema.dim(best_dim).dim_name().c_str()));
    }
    levels[best_dim] = level;
  }
  for (size_t d = 0; d < levels.size(); ++d) {
    if (levels[d] == -1) levels[d] = schema.dim(d).all_level();
  }
  return GroupBySpec(std::move(levels));
}

bool GroupBySpec::CanAnswer(const GroupBySpec& target) const {
  SS_CHECK(levels_.size() == target.levels_.size());
  for (size_t d = 0; d < levels_.size(); ++d) {
    if (levels_[d] > target.levels_[d]) return false;
  }
  return true;
}

GroupBySpec GroupBySpec::LeastCommonAncestor(const GroupBySpec& other) const {
  SS_CHECK(levels_.size() == other.levels_.size());
  std::vector<int> out(levels_.size());
  for (size_t d = 0; d < levels_.size(); ++d) {
    out[d] = std::max(levels_[d], other.levels_[d]);
  }
  return GroupBySpec(std::move(out));
}

std::vector<size_t> GroupBySpec::RetainedDims(const StarSchema& schema) const {
  SS_CHECK(levels_.size() == schema.num_dims());
  std::vector<size_t> out;
  for (size_t d = 0; d < levels_.size(); ++d) {
    if (levels_[d] < schema.dim(d).all_level()) out.push_back(d);
  }
  return out;
}

uint64_t GroupBySpec::MaxCells(const StarSchema& schema) const {
  uint64_t cells = 1;
  for (size_t d = 0; d < levels_.size(); ++d) {
    cells *= schema.dim(d).cardinality(levels_[d]);
  }
  return cells;
}

int GroupBySpec::TotalLevel() const {
  int total = 0;
  for (int l : levels_) total += l;
  return total;
}

std::string GroupBySpec::ToString(const StarSchema& schema) const {
  std::string out;
  for (size_t d = 0; d < levels_.size(); ++d) {
    if (levels_[d] >= schema.dim(d).all_level()) continue;
    out += schema.dim(d).PrimedLevelName(levels_[d]);
  }
  return out.empty() ? "()" : out;
}

}  // namespace starshare
