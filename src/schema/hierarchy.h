// Dimension hierarchies (paper §2: e.g. Date -> Month -> Quarter -> Year;
// §7.2: A -> A' -> A'' with three members at the top level).
//
// Levels are numbered from the leaves: level 0 is the base (finest) level
// whose member ids appear in the fact table; level L-1 is the top level; the
// pseudo-level L ("ALL") has a single implicit member and means "dimension
// aggregated away". Member ids at every level are dense in [0, cardinality).
//
// Member naming follows the paper's convention: for a dimension named "A"
// with 3 levels, top-level members are "A1".."A3", middle "AA1".., base
// "AAA1".. — so the paper's queries ("A''.A1.CHILDREN", "FILTER(D.DD1)")
// parse directly against a generated schema.

#ifndef STARSHARE_SCHEMA_HIERARCHY_H_
#define STARSHARE_SCHEMA_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace starshare {

class Hierarchy {
 public:
  // Builds a balanced hierarchy for dimension `dim_name`: `top_cardinality`
  // members at the top level, and every member of level l+1 having
  // `fanouts[l]` children at level l. fanouts.size() == num_levels - 1.
  // Member m of level l has parent m / fanouts[l] at level l+1.
  Hierarchy(std::string dim_name, uint32_t top_cardinality,
            std::vector<uint32_t> fanouts);

  const std::string& dim_name() const { return dim_name_; }

  // Number of real levels (excluding ALL).
  int num_levels() const { return static_cast<int>(cardinalities_.size()); }
  // The ALL pseudo-level index.
  int all_level() const { return num_levels(); }

  // Members at `level`; ALL has cardinality 1.
  uint32_t cardinality(int level) const;

  // Parent of `member` (level -> level+1). Mapping into ALL returns 0.
  int32_t Parent(int level, int32_t member) const;

  // Maps `member` from `from_level` up to `to_level` (>= from_level).
  int32_t MapUp(int from_level, int to_level, int32_t member) const;

  // Children of `member` at `level`, i.e. the members of level-1 whose
  // parent is `member`. Requires level >= 1. (Children are contiguous.)
  std::vector<int32_t> Children(int level, int32_t member) const;

  // All descendants of `member` (at `from_level`) at `to_level` <=
  // from_level. from_level == to_level returns {member}; from_level == ALL
  // returns every member of to_level.
  std::vector<int32_t> DescendantsAtLevel(int from_level, int32_t member,
                                          int to_level) const;

  // Optional human naming (for realistic schemas like Time: Month ->
  // Quarter -> Year with members "Jan 1991", "Qtr1", ...). Without custom
  // names the synthetic scheme above applies.
  void SetLevelNames(std::vector<std::string> names);  // size = num_levels
  void SetMemberNames(int level, std::vector<std::string> names);

  // Level display name: the custom name if set, else the primed form.
  std::string LevelName(int level) const;
  // Always the primed form "A", "A'", "A''", "A(ALL)" (spec-string syntax).
  std::string PrimedLevelName(int level) const;

  // Resolves a level by primed form, custom name, or "ALL".
  Result<int> FindLevel(const std::string& name) const;

  // Member display name, e.g. ("A", level 2, 0) -> "A1"; level 1 -> "AA1";
  // custom names win when set.
  std::string MemberName(int level, int32_t member) const;

  // Resolves a member name at a specific level.
  Result<int32_t> FindMemberAtLevel(int level, const std::string& name) const;

  // Resolves a member name across all levels (custom names first, then the
  // synthetic scheme where repeated dim-name copies encode the level).
  // Returns (level, member).
  Result<std::pair<int, int32_t>> FindMember(const std::string& name) const;

 private:
  std::string dim_name_;
  std::vector<uint32_t> cardinalities_;  // per level, index 0 = base
  std::vector<uint32_t> fanouts_;        // fanouts_[l]: level l+1 -> level l
  std::vector<std::string> level_names_;                // optional
  std::vector<std::vector<std::string>> member_names_;  // optional, per level
};

}  // namespace starshare

#endif  // STARSHARE_SCHEMA_HIERARCHY_H_
