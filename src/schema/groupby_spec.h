// A point in the group-by lattice: one hierarchy level per dimension
// (including the ALL pseudo-level for "aggregated away"). Used both as the
// target of a query ("compute group-by A'B''C''D") and as the description of
// a materialized view's granularity.

#ifndef STARSHARE_SCHEMA_GROUPBY_SPEC_H_
#define STARSHARE_SCHEMA_GROUPBY_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "schema/star_schema.h"

namespace starshare {

class GroupBySpec {
 public:
  GroupBySpec() = default;
  explicit GroupBySpec(std::vector<int> levels) : levels_(std::move(levels)) {}

  // The base data (level 0 everywhere) — the paper's "lowest level LL".
  static GroupBySpec Base(const StarSchema& schema);

  // Parses "A'B''CD" style names: each dimension name (longest match, in any
  // order but each at most once) followed by prime marks for the level;
  // omitted dimensions are ALL. "LL" parses to Base.
  static Result<GroupBySpec> Parse(const std::string& text,
                                   const StarSchema& schema);

  size_t num_dims() const { return levels_.size(); }
  int level(size_t d) const { return levels_[d]; }
  void set_level(size_t d, int level) { levels_[d] = level; }
  const std::vector<int>& levels() const { return levels_; }

  // True if a table at this granularity can be aggregated into `target`:
  // this is finer-or-equal on every dimension (lattice order).
  bool CanAnswer(const GroupBySpec& target) const;

  // The finest spec that is coarser-or-equal to both (join in the lattice):
  // per-dimension max of levels. Both operands must have equal num_dims.
  GroupBySpec LeastCommonAncestor(const GroupBySpec& other) const;

  // Dimensions retained (level < ALL), in schema order. A view's table has
  // one key column per retained dimension, in this order.
  std::vector<size_t> RetainedDims(const StarSchema& schema) const;

  // Product of level cardinalities over retained dimensions = the maximum
  // number of cells (rows) a table at this granularity can have.
  uint64_t MaxCells(const StarSchema& schema) const;

  // Sum of levels — the "GroupbyLevel" the paper sorts queries by (lower =
  // finer = larger result).
  int TotalLevel() const;

  // "A'B''CD" display form ("()" when every dimension is ALL).
  std::string ToString(const StarSchema& schema) const;

  bool operator==(const GroupBySpec& other) const = default;

 private:
  std::vector<int> levels_;
};

// Hash support so specs can key unordered containers.
struct GroupBySpecHash {
  size_t operator()(const GroupBySpec& spec) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (int l : spec.levels()) {
      h ^= static_cast<size_t>(l) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

}  // namespace starshare

#endif  // STARSHARE_SCHEMA_GROUPBY_SPEC_H_
