// Per-worker execution state for one parallel operator invocation.
//
// DiskModel is single-threaded by design (plain counters, a latched fault
// Status), so a parallel scan gives each worker a private DiskModel cloned
// from the parent's timings and buffer pool. When the operator finishes,
// MergeIntoParent() folds every worker's IoStats into the parent in worker
// order and latches the first worker fault onto the parent — the parent
// then looks exactly as if one thread had done all the work: page counts
// (and therefore the 1998 modeled I/O time) are identical to a serial run,
// because morsels are page-aligned and each page is charged once.
//
// The shared BufferPool is internally locked (storage/buffer_pool.h), so
// concurrent workers may consult it; note that hit/miss *attribution*
// between workers depends on thread interleaving, while the combined
// counts stay deterministic for pool-less (cold) runs, which is how the
// paper's experiments execute.

#ifndef STARSHARE_PARALLEL_PARALLEL_CONTEXT_H_
#define STARSHARE_PARALLEL_PARALLEL_CONTEXT_H_

#include <deque>

#include "storage/disk_model.h"

namespace starshare {

class ParallelContext {
 public:
  // `parent` must outlive the context and not be charged concurrently with
  // the workers.
  ParallelContext(DiskModel& parent, size_t num_workers);

  ParallelContext(const ParallelContext&) = delete;
  ParallelContext& operator=(const ParallelContext&) = delete;

  size_t num_workers() const { return workers_.size(); }
  DiskModel& worker_disk(size_t i) { return workers_[i]; }

  // Folds all worker counters (and the first latched worker fault) into the
  // parent and resets the workers. Call after every worker has finished.
  void MergeIntoParent();

 private:
  DiskModel& parent_;
  std::deque<DiskModel> workers_;  // deque: DiskModel is non-movable
};

}  // namespace starshare

#endif  // STARSHARE_PARALLEL_PARALLEL_CONTEXT_H_
