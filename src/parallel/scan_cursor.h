// Circular scan cursor for continuous shared scans (server/scan_runner.h).
//
// A continuous scan walks a table as a fixed grid of page-aligned segments
// and wraps from the last row back to row 0 instead of terminating. Late
// arrivals attach at the current grid position and complete when the
// cursor comes back around to it ("completion on wraparound"). Keeping the
// grid FIXED — segment k always covers the same rows, regardless of when a
// member attached — is what makes attachment points and completion points
// coincide: a member attached at cursor `a` has seen exactly the whole
// table when the cursor next returns to `a`, never a partial segment.
//
// Segments are multiples of rows_per_page (except the final, possibly
// partial segment ending at num_rows), so segment-by-segment driving
// charges exactly the serial scan's page sequence.

#ifndef STARSHARE_PARALLEL_SCAN_CURSOR_H_
#define STARSHARE_PARALLEL_SCAN_CURSOR_H_

#include <algorithm>
#include <cstdint>

#include "common/macros.h"

namespace starshare {

class CircularScanCursor {
 public:
  struct Segment {
    uint64_t begin = 0;  // first row (inclusive)
    uint64_t end = 0;    // last row (exclusive); == num_rows on the last
                         // segment of a revolution, after which the cursor
                         // wraps to 0

    uint64_t num_rows() const { return end - begin; }
  };

  // `segment_rows` == 0 picks DefaultSegmentRows. Whatever the source, the
  // value is rounded up to a multiple of `rows_per_page` and clamped into
  // [rows_per_page, num_rows].
  CircularScanCursor(uint64_t num_rows, uint64_t segment_rows,
                     uint64_t rows_per_page)
      : num_rows_(num_rows) {
    SS_CHECK_MSG(num_rows > 0, "circular scan over an empty table");
    SS_CHECK(rows_per_page > 0);
    uint64_t seg = segment_rows == 0
                       ? DefaultSegmentRows(num_rows, rows_per_page)
                       : segment_rows;
    seg = ((seg + rows_per_page - 1) / rows_per_page) * rows_per_page;
    segment_rows_ = std::max<uint64_t>(rows_per_page, std::min(seg, ((num_rows + rows_per_page - 1) / rows_per_page) * rows_per_page));
  }

  // Advances past the next segment of the fixed grid and returns it. When
  // the segment ends at num_rows the cursor wraps to 0 and a revolution is
  // counted.
  Segment Next() {
    Segment seg;
    seg.begin = cursor_;
    seg.end = std::min(cursor_ + segment_rows_, num_rows_);
    if (seg.end == num_rows_) {
      cursor_ = 0;
      ++revolutions_;
    } else {
      cursor_ = seg.end;
    }
    return seg;
  }

  // The grid position the next segment starts at — also the attachment
  // cursor handed to members joining the scan now.
  uint64_t cursor() const { return cursor_; }
  uint64_t num_rows() const { return num_rows_; }
  uint64_t segment_rows() const { return segment_rows_; }
  // Completed trips past the end of the table.
  uint64_t revolutions() const { return revolutions_; }

  // A segment size giving a revolution several attachment points (so late
  // arrivals rarely wait long for a boundary) while staying page-aligned
  // and big enough to amortize per-segment filter setup.
  static uint64_t DefaultSegmentRows(uint64_t num_rows,
                                     uint64_t rows_per_page) {
    const uint64_t target = num_rows / kSegmentsPerRevolution;
    const uint64_t aligned =
        ((target + rows_per_page - 1) / rows_per_page) * rows_per_page;
    return std::max(rows_per_page, aligned);
  }

  static constexpr uint64_t kSegmentsPerRevolution = 8;

 private:
  uint64_t num_rows_;
  uint64_t segment_rows_ = 0;
  uint64_t cursor_ = 0;
  uint64_t revolutions_ = 0;
};

}  // namespace starshare

#endif  // STARSHARE_PARALLEL_SCAN_CURSOR_H_
