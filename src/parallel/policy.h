// ParallelPolicy: how much parallelism a morsel-driven pass may use.
// Shared by the exec/ parallel operators and cube/ view builds so neither
// layer depends on the other for the knob.

#ifndef STARSHARE_PARALLEL_POLICY_H_
#define STARSHARE_PARALLEL_POLICY_H_

#include <cstdint>

#include "exec/vector_batch.h"
#include "parallel/thread_pool.h"

namespace starshare {

// With a null pool or parallelism <= 1 the morsel pipeline runs inline on
// the calling thread (no worker threads), which by construction produces
// the same bits as the parallel path.
struct ParallelPolicy {
  ThreadPool* pool = nullptr;
  size_t parallelism = 1;
  // Rows per morsel; 0 picks MorselDispatcher::DefaultMorselRows (page
  // aligned, >= 16K rows, ~8 morsels per worker).
  uint64_t morsel_rows = 0;
  // CPU execution style of each worker (and of the merge): vectorized
  // batches by default, tuple-at-a-time as the reference path. Orthogonal
  // to the parallelism knobs — either style runs at any worker count.
  BatchConfig batch;

  bool engaged() const { return pool != nullptr && parallelism > 1; }
};

}  // namespace starshare

#endif  // STARSHARE_PARALLEL_POLICY_H_
