#include "parallel/morsel.h"

#include <algorithm>

#include "common/macros.h"

namespace starshare {

MorselDispatcher::MorselDispatcher(uint64_t num_rows, uint64_t morsel_rows,
                                   uint64_t window)
    : num_rows_(num_rows),
      morsel_rows_(std::max<uint64_t>(1, morsel_rows)),
      num_morsels_(num_rows == 0 ? 0
                                 : (num_rows + morsel_rows_ - 1) / morsel_rows_),
      window_(window) {}

std::optional<Morsel> MorselDispatcher::Next() {
  std::unique_lock<std::mutex> lock(mu_);
  if (next_index_ >= num_morsels_) return std::nullopt;
  if (window_ > 0) {
    window_open_.wait(lock, [this] {
      return next_index_ >= num_morsels_ ||
             next_index_ < consumed_floor_ + window_;
    });
    if (next_index_ >= num_morsels_) return std::nullopt;
  }
  Morsel m;
  m.index = next_index_++;
  m.begin = m.index * morsel_rows_;
  m.end = std::min(m.begin + morsel_rows_, num_rows_);
  return m;
}

void MorselDispatcher::MarkConsumed(uint64_t morsel_index) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SS_DCHECK(morsel_index == consumed_floor_);
    consumed_floor_ = morsel_index + 1;
  }
  if (window_ > 0) window_open_.notify_all();
}

uint64_t MorselDispatcher::DefaultMorselRows(uint64_t num_rows,
                                             uint64_t rows_per_page,
                                             size_t workers) {
  const uint64_t rpp = std::max<uint64_t>(1, rows_per_page);
  if (num_rows == 0) return rpp;
  // Aim for kMorselsPerWorker morsels per worker, but never smaller than
  // kMinMorselRows rounded up to whole pages.
  const uint64_t target =
      num_rows / std::max<uint64_t>(1, workers * kMorselsPerWorker);
  const uint64_t rows = std::max<uint64_t>(kMinMorselRows, target);
  return ((rows + rpp - 1) / rpp) * rpp;
}

}  // namespace starshare
