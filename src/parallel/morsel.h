// Morsel-driven work distribution (Leis et al., "Morsel-Driven
// Parallelism", adapted to StarShare's paged tables): a scan is split into
// contiguous row ranges ("morsels") aligned to page boundaries, handed out
// to workers through one atomic cursor. Alignment matters for accounting:
// a page is charged by exactly one worker, so the merged IoStats of a
// parallel scan equal the serial scan's page counts exactly.
//
// The dispatcher optionally applies backpressure: when constructed with a
// consume window, Next() blocks once the claimed index runs `window`
// morsels ahead of the last index the consumer marked consumed. The
// ordered-merge pipeline (morsel_pipeline.h) uses this to bound the memory
// held in not-yet-merged match buffers.

#ifndef STARSHARE_PARALLEL_MORSEL_H_
#define STARSHARE_PARALLEL_MORSEL_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>

namespace starshare {

struct Morsel {
  uint64_t index = 0;  // 0-based position in the scan order
  uint64_t begin = 0;  // first row (inclusive)
  uint64_t end = 0;    // last row (exclusive)

  uint64_t num_rows() const { return end - begin; }
};

class MorselDispatcher {
 public:
  // Splits [0, num_rows) into ceil(num_rows / morsel_rows) morsels.
  // `window` == 0 disables backpressure.
  MorselDispatcher(uint64_t num_rows, uint64_t morsel_rows,
                   uint64_t window = 0);

  MorselDispatcher(const MorselDispatcher&) = delete;
  MorselDispatcher& operator=(const MorselDispatcher&) = delete;

  uint64_t num_morsels() const { return num_morsels_; }
  uint64_t morsel_rows() const { return morsel_rows_; }

  // Claims the next morsel, or nullopt when the scan is exhausted. Blocks
  // while the window is full (until MarkConsumed catches up). Safe to call
  // from any number of threads.
  std::optional<Morsel> Next();

  // The ordered consumer reports progress; unblocks Next() callers. Must be
  // called with strictly increasing indexes.
  void MarkConsumed(uint64_t morsel_index);

  // A morsel size for `num_rows` over `workers` threads: a multiple of
  // `rows_per_page` (so morsels are page-aligned), large enough that a
  // morsel is meaningful work (>= kMinMorselRows), small enough that every
  // worker gets several (load balancing against skewed morsel costs).
  static uint64_t DefaultMorselRows(uint64_t num_rows, uint64_t rows_per_page,
                                    size_t workers);

  static constexpr uint64_t kMinMorselRows = 16 * 1024;
  static constexpr uint64_t kMorselsPerWorker = 8;

 private:
  const uint64_t num_rows_;
  const uint64_t morsel_rows_;
  const uint64_t num_morsels_;
  const uint64_t window_;

  std::mutex mu_;
  std::condition_variable window_open_;
  uint64_t next_index_ = 0;      // guarded by mu_
  uint64_t consumed_floor_ = 0;  // morsels fully consumed (prefix length)
};

}  // namespace starshare

#endif  // STARSHARE_PARALLEL_MORSEL_H_
