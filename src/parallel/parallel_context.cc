#include "parallel/parallel_context.h"

namespace starshare {

ParallelContext::ParallelContext(DiskModel& parent, size_t num_workers)
    : parent_(parent) {
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back(parent.timings());
    workers_.back().AttachBufferPool(parent.buffer_pool());
  }
}

void ParallelContext::MergeIntoParent() {
  for (DiskModel& w : workers_) parent_.MergeChild(w);
}

}  // namespace starshare
