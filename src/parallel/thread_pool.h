// A fixed-size worker pool for morsel-driven execution (see DESIGN.md
// "Parallel execution model"). Tasks are plain closures pushed onto one
// shared FIFO queue; Submit returns a futures-style TaskHandle the caller
// can Wait on. Destruction is graceful: queued tasks still run, then the
// workers join.
//
// The pool is deliberately dumb — scheduling intelligence lives in
// MorselDispatcher (parallel/morsel.h), which hands cache-friendly row
// ranges to whichever worker asks next. One engine owns one pool and
// reuses it across queries and view builds; pools are cheap enough that
// tests create their own.

#ifndef STARSHARE_PARALLEL_THREAD_POOL_H_
#define STARSHARE_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace starshare {

// Completion handle for one submitted task. Wait() rethrows nothing:
// StarShare code does not throw, and a task that aborts takes the process
// with it (same contract as the serial engine).
class TaskHandle {
 public:
  TaskHandle() = default;
  explicit TaskHandle(std::future<void> done) : done_(std::move(done)) {}

  bool valid() const { return done_.valid(); }

  // Blocks until the task has finished running. No-op on an empty handle.
  void Wait() {
    if (done_.valid()) done_.get();
  }

 private:
  std::future<void> done_;
};

class ThreadPool {
 public:
  // Spawns exactly `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains the queue, then joins every worker.
  ~ThreadPool();

  size_t num_threads() const { return workers_.size(); }

  // Enqueues `fn` for execution on some worker. Aborts if the pool is
  // already shutting down; use TrySubmit when that is a reachable state.
  TaskHandle Submit(std::function<void()> fn);

  // Like Submit, but a pool mid-destruction yields a typed kShuttingDown
  // error instead of aborting. This is the racy-teardown-safe entry point:
  // a caller holding a ThreadPool* across an Engine shutdown gets a Status
  // it can act on (run the work inline, or drain) rather than a crash.
  Result<TaskHandle> TrySubmit(std::function<void()> fn);

  // Number of tasks submitted over the pool's lifetime (for tests).
  uint64_t tasks_run() const;

  // What the hardware offers; never 0.
  static size_t HardwareThreads();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::deque<std::packaged_task<void()>> queue_;
  bool shutting_down_ = false;
  uint64_t tasks_run_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace starshare

#endif  // STARSHARE_PARALLEL_THREAD_POOL_H_
