// The ordered morsel pipeline: the mechanism that makes every parallel
// operator bit-identical to its serial twin.
//
//   workers  : morsel -> Buffer            (runs on the pool, any order)
//   consumer : Buffer, in morsel order     (runs on the calling thread)
//
// Workers claim morsels through the dispatcher's atomic cursor, produce a
// private Buffer per morsel (match rows, packed keys, partial columns —
// whatever the operator emits) and publish it into a slot array. The
// calling thread consumes slots strictly in morsel-index order, so the
// concatenation of consumed buffers is exactly the serial scan order —
// floating-point aggregation folds in the identical sequence and the
// result is bit-identical to the serial operator for ANY thread count and
// ANY morsel size. Consumption overlaps production, and the dispatcher's
// backpressure window bounds how many produced-but-unconsumed buffers can
// exist at once.
//
// With no pool (or one worker requested) everything runs inline on the
// calling thread — same code, no threads, trivially the serial order.

#ifndef STARSHARE_PARALLEL_MORSEL_PIPELINE_H_
#define STARSHARE_PARALLEL_MORSEL_PIPELINE_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <utility>
#include <vector>

#include "parallel/morsel.h"
#include "parallel/parallel_context.h"
#include "parallel/thread_pool.h"

namespace starshare {

// Runs `produce(morsel, worker_disk, buffer)` over every morsel of
// `dispatcher` using up to `parallelism` pool workers, then feeds each
// buffer to `consume(morsel, buffer)` on the calling thread in ascending
// morsel order. `ctx` supplies the per-worker DiskModels; the caller is
// responsible for ctx.MergeIntoParent() afterwards.
template <typename Buffer, typename ProduceFn, typename ConsumeFn>
void RunMorselPipeline(ThreadPool* pool, size_t parallelism,
                       MorselDispatcher& dispatcher, ParallelContext& ctx,
                       ProduceFn&& produce, ConsumeFn&& consume) {
  const uint64_t num_morsels = dispatcher.num_morsels();
  if (num_morsels == 0) return;

  if (pool == nullptr || parallelism <= 1) {
    // Inline serial execution: produce + consume per morsel, in order.
    DiskModel& disk = ctx.worker_disk(0);
    while (auto morsel = dispatcher.Next()) {
      Buffer buffer;
      produce(*morsel, disk, buffer);
      consume(*morsel, buffer);
      dispatcher.MarkConsumed(morsel->index);
    }
    return;
  }

  struct Slot {
    Buffer buffer;
    Morsel morsel;
  };
  std::vector<Slot> slots(num_morsels);
  std::vector<std::atomic<bool>> ready(num_morsels);
  for (auto& r : ready) r.store(false, std::memory_order_relaxed);
  std::mutex mu;
  std::condition_variable slot_ready;

  const size_t n_workers = std::min<size_t>(parallelism, ctx.num_workers());
  std::vector<TaskHandle> tasks;
  tasks.reserve(n_workers);
  for (size_t w = 0; w < n_workers; ++w) {
    Result<TaskHandle> task = pool->TrySubmit([&, w] {
      DiskModel& disk = ctx.worker_disk(w);
      while (auto morsel = dispatcher.Next()) {
        Slot& slot = slots[morsel->index];
        slot.morsel = *morsel;
        produce(*morsel, disk, slot.buffer);
        {
          std::lock_guard<std::mutex> lock(mu);
          ready[morsel->index].store(true, std::memory_order_release);
        }
        slot_ready.notify_one();
      }
    });
    if (!task.ok()) break;  // pool draining: run with however many we got
    tasks.push_back(std::move(task).value());
  }

  if (tasks.empty()) {
    // The pool refused every worker (engine teardown racing a query).
    // Degrade to the inline serial path — produce + consume + MarkConsumed
    // per morsel, same order, zero threads — so the query still completes.
    // Producing without consuming would fill the dispatcher's backpressure
    // window and block Next() forever once num_morsels exceeds it.
    DiskModel& disk = ctx.worker_disk(0);
    while (auto morsel = dispatcher.Next()) {
      Buffer buffer;
      produce(*morsel, disk, buffer);
      consume(*morsel, buffer);
      dispatcher.MarkConsumed(morsel->index);
    }
    return;
  }

  // Ordered consumption on the calling thread, overlapping the workers.
  for (uint64_t m = 0; m < num_morsels; ++m) {
    if (!ready[m].load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lock(mu);
      slot_ready.wait(lock, [&] {
        return ready[m].load(std::memory_order_acquire);
      });
    }
    consume(slots[m].morsel, slots[m].buffer);
    slots[m].buffer = Buffer();  // free merged data before the scan ends
    dispatcher.MarkConsumed(m);
  }
  for (TaskHandle& t : tasks) t.Wait();
}

}  // namespace starshare

#endif  // STARSHARE_PARALLEL_MORSEL_PIPELINE_H_
