#include "parallel/thread_pool.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/metrics.h"

namespace starshare {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

TaskHandle ThreadPool::Submit(std::function<void()> fn) {
  Result<TaskHandle> handle = TrySubmit(std::move(fn));
  SS_CHECK_MSG(handle.ok(), "Submit on a shutting-down ThreadPool");
  return std::move(handle).value();
}

Result<TaskHandle> ThreadPool::TrySubmit(std::function<void()> fn) {
  static obs::Counter& task_metric = obs::Metrics().counter("thread_pool.tasks");
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> done = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      return Status::ShuttingDown("ThreadPool is draining; task refused");
    }
    queue_.push_back(std::move(task));
    ++tasks_run_;
  }
  task_metric.Add();
  work_ready_.notify_one();
  return TaskHandle(std::move(done));
}

uint64_t ThreadPool::tasks_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_run_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

size_t ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace starshare
