// The set of materialized group-bys available to the optimizer — the
// paper's MSet (which always contains the lowest-level base data LL).

#ifndef STARSHARE_CUBE_VIEW_SET_H_
#define STARSHARE_CUBE_VIEW_SET_H_

#include <memory>
#include <vector>

#include "cube/materialized_view.h"
#include "schema/groupby_spec.h"

namespace starshare {

class ViewSet {
 public:
  ViewSet() = default;
  ViewSet(const ViewSet&) = delete;
  ViewSet& operator=(const ViewSet&) = delete;

  MaterializedView* Add(std::unique_ptr<MaterializedView> view);

  // The view at exactly `spec`, or nullptr.
  MaterializedView* Find(const GroupBySpec& spec) const;

  // Removes (and frees) the view at `spec`. Returns false if absent.
  bool Remove(const GroupBySpec& spec);
  MaterializedView* FindByName(const std::string& name) const;

  // Views that can answer a query requiring `required`, sorted by table
  // rows ascending (smallest candidate first).
  std::vector<MaterializedView*> CandidatesFor(
      const GroupBySpec& required) const;

  const std::vector<std::unique_ptr<MaterializedView>>& all() const {
    return views_;
  }
  size_t size() const { return views_.size(); }

 private:
  std::vector<std::unique_ptr<MaterializedView>> views_;
};

}  // namespace starshare

#endif  // STARSHARE_CUBE_VIEW_SET_H_
