// Greedy materialized-view selection in the style of Harinarayan, Rajaraman
// and Ullman ("Implementing Data Cubes Efficiently", SIGMOD 1996) — the
// precomputation scheme the paper cites ([HRU96]) as the source of the view
// sets its optimizers choose among. Not part of the paper's contribution,
// but StarShare provides it so a user can pick a sensible MSet instead of
// hand-listing specs.

#ifndef STARSHARE_CUBE_VIEW_SELECTION_H_
#define STARSHARE_CUBE_VIEW_SELECTION_H_

#include <cstdint>
#include <vector>

#include "schema/groupby_spec.h"
#include "schema/star_schema.h"

namespace starshare {

// Estimated rows of a view at `spec`: the standard cap of cell count by
// base-table rows (every cell holds >= 1 base tuple).
uint64_t EstimateViewRows(const StarSchema& schema, const GroupBySpec& spec,
                          uint64_t base_rows);

// All lattice points (every combination of per-dimension levels including
// ALL), excluding the base itself. Exponential in dimensions; fine for the
// OLAP schemas this targets (4 dims x 4 levels = 255 candidates).
std::vector<GroupBySpec> EnumerateLattice(const StarSchema& schema);

// Picks `k` views greedily by the HRU benefit heuristic: each round, choose
// the candidate maximizing the total reduction in "rows scanned to answer
// each lattice point from its cheapest chosen ancestor". The base table is
// always implicitly available. Returns the chosen specs in selection order.
std::vector<GroupBySpec> GreedySelectViews(const StarSchema& schema,
                                           uint64_t base_rows, size_t k);

}  // namespace starshare

#endif  // STARSHARE_CUBE_VIEW_SELECTION_H_
