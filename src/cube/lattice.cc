#include "cube/lattice.h"

#include <algorithm>

#include "common/macros.h"
#include "common/str_util.h"
#include "plan/plan.h"

namespace starshare {

size_t LatticePlan::NumBase() const {
  size_t n = 0;
  for (const LatticeStep& step : steps) {
    if (step.parent == kNoLatticeParent) ++n;
  }
  return n;
}

std::vector<const DimensionalQuery*> LatticePlan::BaseQueries() const {
  std::vector<const DimensionalQuery*> out;
  for (const LatticeStep& step : steps) {
    if (step.parent == kNoLatticeParent) out.push_back(&step.query);
  }
  return out;
}

std::string LatticePlan::ToString(const StarSchema& schema) const {
  std::string out =
      StrFormat("%s lattice: %zu levels, %zu base + %zu rollup\n",
                CubeFormName(form), steps.size(), NumBase(), NumRollups());
  for (size_t i = 0; i < steps.size(); ++i) {
    const LatticeStep& step = steps[i];
    out += StrFormat("  [%zu] q%d %s est_rows=%.0f", i, step.query.id(),
                     step.query.target().ToString(schema).c_str(),
                     step.est_rows);
    if (step.parent == kNoLatticeParent) {
      out += " base";
      if (step.est_rescan_ms >= 0.0) {
        out += StrFormat(" (rescan %.3fms beat rollup %.3fms)",
                         step.est_rescan_ms, step.est_rollup_ms);
      }
    } else {
      out += StrFormat(" <- [%zu] rollup %.3fms (vs rescan %.3fms)",
                       step.parent, step.est_rollup_ms, step.est_rescan_ms);
    }
    out += '\n';
  }
  return out;
}

DimensionalQuery RollupQueryFor(const DimensionalQuery& level) {
  SS_DCHECK(level.agg() != AggOp::kAvg);
  const AggOp agg =
      level.agg() == AggOp::kCount ? AggOp::kSum : level.agg();
  return DimensionalQuery(level.id(), level.label(), level.target(),
                          QueryPredicate(), agg, /*measure=*/0);
}

Result<LatticePlan> PlanLattice(const CubeQuery& cube,
                                const StarSchema& schema,
                                const ViewSet& views, const CostModel& cost,
                                int first_id) {
  Result<std::vector<DimensionalQuery>> expanded =
      cube.ExpandLevels(schema, first_id);
  if (!expanded.ok()) return expanded.status();

  LatticePlan plan;
  plan.form = cube.form();
  plan.steps.reserve(expanded->size());
  for (DimensionalQuery& q : *expanded) {
    LatticeStep step;
    step.query = std::move(q);
    plan.steps.push_back(std::move(step));
  }
  std::vector<LatticeStep>& steps = plan.steps;

  // The view the rescan alternative is priced against: smallest view able
  // to answer the finest level (which subsumes every coarser one). Non-SUM
  // aggregates can only be answered from base data — views store SUM cells.
  MaterializedView* pricing = nullptr;
  if (cube.agg() == AggOp::kSum) {
    const auto candidates =
        views.CandidatesFor(steps[0].query.RequiredSpec(schema));
    if (!candidates.empty()) pricing = candidates.front();
  } else {
    pricing = views.Find(GroupBySpec::Base(schema));
  }
  if (pricing == nullptr) {
    return Status::FailedPrecondition(
        "no view can answer the cube's finest level (load the fact table "
        "first)");
  }

  for (LatticeStep& step : steps) {
    step.est_rows =
        std::min(static_cast<double>(step.query.EstimatedGroups(schema)),
                 cost.MatchRows(step.query, *pricing));
  }

  // Partial averages do not re-aggregate into coarser averages, so an AVG
  // cube computes every level against base data.
  const bool rollup_allowed = cube.agg() != AggOp::kAvg;

  std::vector<const DimensionalQuery*> base_members;
  base_members.push_back(&steps[0].query);  // finest level: always base

  for (size_t i = 1; i < steps.size(); ++i) {
    // Smallest-parent rule: among every earlier level whose target is
    // finer-or-equal on each dimension, the fewest estimated groups wins —
    // fewer derived rows to re-aggregate. Rollup parents are themselves
    // eligible, so chains cascade down the lattice.
    size_t best = kNoLatticeParent;
    for (size_t j = 0; j < i; ++j) {
      if (!steps[j].query.target().CanAnswer(steps[i].query.target())) {
        continue;
      }
      if (best == kNoLatticeParent ||
          steps[j].est_rows < steps[best].est_rows) {
        best = j;
      }
    }
    if (rollup_allowed && best != kNoLatticeParent) {
      steps[i].est_rollup_ms =
          cost.RollupCpuMs(steps[best].est_rows, steps[i].query);
      // What the base batch would charge to carry this level through the
      // shared pass, given the members already scheduled there.
      const ClassPlan cls = cost.MakeClassPlan(pricing, base_members);
      steps[i].est_rescan_ms = cost.CostOfAddMs(cls, steps[i].query);
      if (steps[i].est_rollup_ms <= steps[i].est_rescan_ms) {
        steps[i].parent = best;
        continue;
      }
    }
    base_members.push_back(&steps[i].query);
  }
  return plan;
}

}  // namespace starshare
