// Materializes a group-by table from a finer source (the base table or any
// view whose spec CanAnswer the target): scan, map each retained key up the
// hierarchy, hash-aggregate SUM(measure), emit a new table.
//
// Row order: by default cells are emitted in a deterministic pseudo-random
// permutation (hash of the packed group key) — the heap/hash-file layout a
// paper-era system dumps its aggregation table into, under which index
// probes spread Yao-style. Pass clustered=true to emit sorted
// lexicographically by key instead (an index-organized view), which makes
// prefix-structured predicates probe contiguous runs; the MaterializedView
// must then be marked clustered() so the cost model knows.

#ifndef STARSHARE_CUBE_VIEW_BUILDER_H_
#define STARSHARE_CUBE_VIEW_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "cube/materialized_view.h"
#include "exec/memory_budget.h"
#include "exec/spill.h"
#include "exec/vector_batch.h"
#include "parallel/policy.h"
#include "schema/groupby_spec.h"
#include "schema/star_schema.h"
#include "storage/disk_model.h"
#include "storage/table.h"

namespace starshare {

class NodeExec;

class ViewBuilder {
 public:
  explicit ViewBuilder(const StarSchema& schema) : schema_(schema) {}

  // CPU execution style for the serial build/refresh scans (vectorized
  // batches by default; BatchConfig::TupleAtATime() restores the fused
  // per-row loops). BuildManyParallel workers follow policy.batch instead,
  // so one ParallelPolicy fully describes a parallel pass. Either style
  // emits bit-identical tables and charges identical I/O.
  void set_batch_config(const BatchConfig& batch) { batch_ = batch; }
  const BatchConfig& batch_config() const { return batch_; }

  // Compressed layout for emitted tables: Emit packs the finished table
  // BEFORE charging its write I/O, so a view build's WritePages reflect the
  // same compressed geometry its later scans will be charged with. Catalog
  // registration re-normalizes anyway; this flag only keeps the build-time
  // write charge consistent with the engine's layout.
  void set_compressed_pages(bool compressed) { compressed_pages_ = compressed; }

  // Aggregation memory budget for builds (null or unbounded = the legacy
  // in-memory path, byte-for-byte). A bounded budget is split evenly across
  // the targets of one build pass; a target past its share stages rows and
  // spills sorted runs (exec/spill.h), merging them back before Emit — the
  // emitted tables are bit-identical to the unbudgeted build because Emit
  // orders cells by key, and the merge replays each cell's folds in arrival
  // order. A failed spill write degrades that target to in-memory
  // completion (builds have no per-query status channel to surface
  // kResourceExhausted through). Refresh always stays in-memory: the view
  // being refreshed already fits by construction. The pointer must outlive
  // the builder's use.
  void set_memory_budget(const MemoryBudget* budget,
                         const SpillConfig& spill) {
    budget_ = budget;
    spill_ = spill;
  }

  // Builds the table for `target` from `source`. The source must be able to
  // answer the target (checked). Scan + write costs are charged to `disk`.
  // The new table is named `target.ToString(schema)` unless `name` is given.
  std::unique_ptr<Table> Build(const MaterializedView& source,
                               const GroupBySpec& target, DiskModel& disk,
                               const std::string& name = "",
                               bool clustered = false) const;

  // Builds several group-bys in ONE shared scan of `source` — the paper's
  // base-table sharing applied to cube construction: each scanned tuple
  // feeds every target's aggregation. Costs one scan plus all writes.
  // Returns the tables in target order (named by spec string).
  std::vector<std::unique_ptr<Table>> BuildMany(
      const MaterializedView& source,
      const std::vector<GroupBySpec>& targets, DiskModel& disk,
      bool clustered = false) const;

  // BuildMany with the shared scan morsel-parallelized: workers map each
  // row's keys up to every target's levels and emit per-morsel packed-key
  // buffers; the calling thread folds them into the aggregators in morsel
  // order. Output tables and charged I/O are bit-identical to BuildMany at
  // any thread count (same ordered-merge argument as the parallel shared
  // operators). A disengaged policy falls through to BuildMany.
  std::vector<std::unique_ptr<Table>> BuildManyParallel(
      const MaterializedView& source,
      const std::vector<GroupBySpec>& targets, DiskModel& disk,
      const ParallelPolicy& policy, bool clustered = false) const;

  // Incremental view maintenance: returns a fresh table for `view` that
  // folds the rows of `delta` (a view at the SAME or finer granularity,
  // typically newly appended base facts) into the view's current cells.
  // SUM views are self-maintainable, so this reads only the old view and
  // the delta — never the full base. Layout follows view.clustered().
  std::unique_ptr<Table> Refresh(const MaterializedView& view,
                                 const MaterializedView& delta,
                                 DiskModel& disk) const;

 private:
  class MultiAggregator;
  struct TargetState;

  // One target's aggregation state over one source view.
  TargetState MakeTargetState(const MaterializedView& source,
                              const GroupBySpec& target) const;

  // Attaches this builder's budget (split across `consumers` targets) to a
  // target's state. No-op when the budget is null, unbounded, or denied (a
  // denied grant degrades that target to the in-memory path).
  void GrantBudget(TargetState& state, uint64_t consumers) const;

  // Lands the pass's aggregation memory high-water and spill counters on
  // the executed Aggregate node.
  static void RecordBuildMem(const std::vector<TargetState>& states,
                             NodeExec& agg);

  // Emits the contents of a finished aggregator as a table carrying every
  // measure of `source_table`.
  std::unique_ptr<Table> Emit(const MultiAggregator& agg,
                              const GroupBySpec& target,
                              const Table& source_table, DiskModel& disk,
                              const std::string& name, bool clustered) const;

  const StarSchema& schema_;
  BatchConfig batch_;
  bool compressed_pages_ = false;
  const MemoryBudget* budget_ = nullptr;
  SpillConfig spill_;
};

}  // namespace starshare

#endif  // STARSHARE_CUBE_VIEW_BUILDER_H_
