#include "cube/view_set.h"

#include <algorithm>

namespace starshare {

MaterializedView* ViewSet::Add(std::unique_ptr<MaterializedView> view) {
  SS_CHECK(view != nullptr);
  SS_CHECK_MSG(Find(view->spec()) == nullptr, "duplicate view %s",
               view->name().c_str());
  views_.push_back(std::move(view));
  return views_.back().get();
}

MaterializedView* ViewSet::Find(const GroupBySpec& spec) const {
  for (const auto& v : views_) {
    if (v->spec() == spec) return v.get();
  }
  return nullptr;
}

bool ViewSet::Remove(const GroupBySpec& spec) {
  for (auto it = views_.begin(); it != views_.end(); ++it) {
    if ((*it)->spec() == spec) {
      views_.erase(it);
      return true;
    }
  }
  return false;
}

MaterializedView* ViewSet::FindByName(const std::string& name) const {
  for (const auto& v : views_) {
    if (v->name() == name) return v.get();
  }
  return nullptr;
}

std::vector<MaterializedView*> ViewSet::CandidatesFor(
    const GroupBySpec& required) const {
  std::vector<MaterializedView*> out;
  for (const auto& v : views_) {
    if (v->spec().CanAnswer(required)) out.push_back(v.get());
  }
  std::sort(out.begin(), out.end(),
            [](const MaterializedView* a, const MaterializedView* b) {
              return a->table().num_rows() < b->table().num_rows();
            });
  return out;
}

}  // namespace starshare
