// A materialized group-by: a granularity (GroupBySpec) plus the physical
// table holding its rows, plus optional bitmap join indexes on its key
// columns. The base fact table is represented as the view at the Base spec
// (the paper's "lowest level LL", which it also treats as a materialized
// group-by).
//
// View tables store SUM(measure) per cell, so SUM queries can be answered
// from any view that is finer-or-equal on every dimension; other aggregates
// are answered from the base table only (enforced by the optimizer).

#ifndef STARSHARE_CUBE_MATERIALIZED_VIEW_H_
#define STARSHARE_CUBE_MATERIALIZED_VIEW_H_

#include <cstddef>
#include <memory>
#include <span>
#include <unordered_map>

#include "index/bitmap_join_index.h"
#include "schema/groupby_spec.h"
#include "schema/star_schema.h"
#include "storage/table.h"

namespace starshare {

class MaterializedView {
 public:
  // `table` must have one key column per retained dimension of `spec`, in
  // schema dimension order (ViewBuilder guarantees this).
  MaterializedView(const StarSchema& schema, GroupBySpec spec, Table* table);

  const GroupBySpec& spec() const { return spec_; }
  Table& table() const { return *table_; }
  const std::string& name() const { return table_->name(); }

  // The table's key column holding dimension `d`, or SIZE_MAX if `d` is
  // aggregated away in this view.
  size_t KeyColForDim(size_t d) const { return key_col_for_dim_[d]; }

  // Level at which dimension `d` is stored.
  int StoredLevel(size_t d) const { return spec_.level(d); }

  // Builds bitmap join indexes over dimension `d` at every hierarchy level
  // from the stored level up to the top (the paper's join indexes exist on
  // higher-level attributes like A' directly, so a predicate at any level
  // fetches one segment per predicate member). Charged to `disk`.
  void BuildIndex(const StarSchema& schema, size_t d, DiskModel& disk);

  // True when the table is sorted lexicographically by its key columns
  // (ViewBuilder's clustered=true output; heap-order views and generated /
  // attached base data are not). The cost model uses this to estimate probe
  // I/O: matches in a clustered table form contiguous runs instead of
  // Yao's uniform spread.
  bool clustered() const { return clustered_; }
  void set_clustered(bool clustered) { clustered_ = clustered; }

  bool HasIndexOn(size_t d) const;
  // Index over dimension `d` at exactly `level`, or nullptr.
  const BitmapJoinIndex* IndexOn(size_t d, int level) const;
  // Index over dimension `d` at its stored level, or nullptr.
  const BitmapJoinIndex* IndexOn(size_t d) const {
    return IndexOn(d, spec_.level(d));
  }

  // Dimensions with indexes, in schema order.
  std::vector<size_t> IndexedDims() const;

  // Swaps in a refreshed table (same granularity; incremental view
  // maintenance). Drops indexes and statistics — the caller rebuilds what
  // it needs (Engine does both).
  void ReplaceTable(const StarSchema& schema, Table* table);

  // ---- Statistics ---------------------------------------------------------
  // Exact per-member row counts at the stored level of every retained
  // dimension, collected with one in-memory pass (ComputeStats). The cost
  // model uses them instead of the uniform assumption, which matters for
  // skewed (e.g. Zipf) data.

  // (Re)collects the counts. Cheap (no I/O charged: real systems piggyback
  // statistics collection on loads and builds).
  void ComputeStats(const StarSchema& schema);

  bool has_stats() const { return !member_counts_.empty(); }

  // Rows whose dimension-`d` stored key is in `stored_members` (which must
  // be at the stored level, sorted not required). Requires has_stats().
  uint64_t RowsMatching(size_t d,
                        std::span<const int32_t> stored_members) const;

  // Fraction of rows matching, i.e. RowsMatching / num_rows.
  double SelectivityOf(size_t d,
                       std::span<const int32_t> stored_members) const;

 private:
  GroupBySpec spec_;
  Table* table_;  // owned by the Catalog
  bool clustered_ = false;
  std::vector<size_t> key_col_for_dim_;
  // Keyed by (dimension << 8) | level.
  std::unordered_map<size_t, BitmapJoinIndex> indexes_;
  // member_counts_[d][m]: rows with stored key m on dimension d; empty
  // inner vectors for dimensions aggregated away; entirely empty before
  // ComputeStats.
  std::vector<std::vector<uint32_t>> member_counts_;
};

}  // namespace starshare

#endif  // STARSHARE_CUBE_MATERIALIZED_VIEW_H_
