#include "cube/view_builder.h"

#include <algorithm>
#include <vector>

#include "exec/dim_translator.h"
#include "exec/flat_hash.h"
#include "exec/key_packer.h"
#include "exec/operators/scan_source.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/morsel.h"
#include "parallel/morsel_pipeline.h"
#include "parallel/parallel_context.h"
#include "plan/lowering.h"

namespace starshare {
namespace {

// splitmix64 finalizer: the deterministic "heap order" permutation key.
uint64_t HashKey(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Pulls one ScanSourceOp over the rows [begin, end) of `table` on `disk`,
// executing the given Scan node: rows and batches land on the node, and
// `per_batch(b, e)` sees exactly the fixed-size batch spans the §3 pipeline
// driver sees (page charges and tuple counts are identical to the old
// page-at-a-time build scans by ScanSourceOp's contract).
template <typename PerBatch>
void DriveScan(const Table& table, DiskModel& disk, uint64_t begin,
               uint64_t end, uint64_t batch_rows, NodeExec& scan,
               PerBatch&& per_batch) {
  scan.AddRows(end - begin);
  ScanSourceOp op(table, disk, begin, end, batch_rows);
  ClassBatch batch;
  op.Open();
  while (op.NextBatch(batch)) {
    scan.AddBatches(1);
    per_batch(batch.begin, batch.end);
  }
  op.Close();
}

}  // namespace

// Aggregates packed group keys -> one SUM per measure column (views must
// carry every measure so any measure query is answerable from them).
class ViewBuilder::MultiAggregator {
 public:
  MultiAggregator(const StarSchema& schema, const GroupBySpec& target,
                  size_t num_measures, uint64_t expected_cells)
      : packer_(schema, target),
        slots_(expected_cells),
        sums_(num_measures) {}

  const KeyPacker& packer() const { return packer_; }
  size_t num_cells() const { return cell_keys_.size(); }
  size_t num_measures() const { return sums_.size(); }

  // Adds one input row: `values[m]` is the row's m-th measure.
  void Add(uint64_t key, const double* values) {
    uint32_t& slot = slots_.FindOrInsert(key);
    if (slot == 0) {
      cell_keys_.push_back(key);
      for (auto& column : sums_) column.push_back(0);
      slot = static_cast<uint32_t>(cell_keys_.size());
    }
    const size_t cell = slot - 1;
    for (size_t m = 0; m < sums_.size(); ++m) {
      sums_[m][cell] += values[m];
    }
  }

  // Batch form: equivalent to Add(keys[i], row base_row + i's measures) for
  // i in [0, n) in order — row-outer, measure-inner, so every per-cell sum
  // folds in exactly the serial order — but reading the measure columns
  // directly instead of staging each row's values.
  void AddBatch(const uint64_t* keys, size_t n,
                const std::vector<const std::vector<double>*>& measure_cols,
                uint64_t base_row) {
    for (size_t i = 0; i < n; ++i) {
      uint32_t& slot = slots_.FindOrInsert(keys[i]);
      if (slot == 0) {
        cell_keys_.push_back(keys[i]);
        for (auto& column : sums_) column.push_back(0);
        slot = static_cast<uint32_t>(cell_keys_.size());
      }
      const size_t cell = slot - 1;
      const uint64_t row = base_row + i;
      for (size_t m = 0; m < sums_.size(); ++m) {
        sums_[m][cell] += (*measure_cols[m])[row];
      }
    }
  }

  uint64_t cell_key(size_t cell) const { return cell_keys_[cell]; }
  double cell_sum(size_t measure, size_t cell) const {
    return sums_[measure][cell];
  }

  // Bytes held by the aggregation state (hash slots + key column + sum
  // columns) — the quantity a memory grant caps.
  uint64_t MemoryBytes() const {
    uint64_t bytes = slots_.MemoryBytes() + cell_keys_.size() * 8;
    for (const auto& column : sums_) bytes += column.size() * 8;
    return bytes;
  }

 private:
  KeyPacker packer_;
  FlatHashMap<uint32_t> slots_;  // packed key -> cell index + 1
  std::vector<uint64_t> cell_keys_;
  std::vector<std::vector<double>> sums_;  // [measure][cell]
};

// Per-target plumbing for one pass over a source view. Key translation goes
// through the same dense arrays (exec/dim_translator.h) as query execution,
// so tuple-at-a-time and batch accumulation produce identical packed keys.
struct ViewBuilder::TargetState {
  std::unique_ptr<MultiAggregator> agg;
  DimTranslator translator;
  std::vector<const std::vector<double>*> measure_cols;
  std::vector<double> values;

  // Budget state. An unbounded grant (the default) keeps every fold on the
  // direct in-memory path below, byte-for-byte the pre-budget behaviour.
  // A bounded grant stages (key, measures...) records instead and spills
  // sorted runs past the cap; FinishFolds() replays everything into `agg`
  // in per-cell arrival order, so the emitted table is bit-identical.
  // `degraded` is set when a spill write fails: the target abandons
  // spilling and completes in memory (already-written runs still merge at
  // finish).
  MemoryGrant grant;
  SpillConfig spill_config;
  std::unique_ptr<SpillFile> spill;
  std::vector<uint64_t> staged_keys;
  std::vector<double> staged_values;  // measure-cols per record, interleaved
  uint64_t staged_peak_bytes = 0;
  uint64_t spill_runs = 0;   // captured by FinishFolds for the plan node
  uint64_t spill_bytes = 0;
  bool degraded = false;

  bool budgeted() const { return !grant.unbounded && !degraded; }

  uint64_t StagedBytes() const {
    return (staged_keys.size() + staged_values.size()) * 8;
  }

  // One fold, either path. `vals` holds this row's measures.
  void Fold(uint64_t key, const double* vals) {
    if (!budgeted()) {
      agg->Add(key, vals);
      return;
    }
    staged_keys.push_back(key);
    staged_values.insert(staged_values.end(), vals,
                         vals + measure_cols.size());
    staged_peak_bytes = std::max(staged_peak_bytes, StagedBytes());
    if (grant.WouldExceed(StagedBytes())) FlushRun();
  }

  // Batch fold of rows [base_row, base_row + n) whose packed keys are
  // `keys`. Unbudgeted this is MultiAggregator::AddBatch; budgeted it
  // stages row-by-row (same arrival order either way).
  void FoldBatch(const uint64_t* keys, size_t n, uint64_t base_row) {
    if (!budgeted()) {
      agg->AddBatch(keys, n, measure_cols, base_row);
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      const uint64_t row = base_row + i;
      for (size_t m = 0; m < measure_cols.size(); ++m) {
        values[m] = (*measure_cols[m])[row];
      }
      Fold(keys[i], values.data());
    }
  }

  void Accumulate(uint64_t row) {
    for (size_t m = 0; m < measure_cols.size(); ++m) {
      values[m] = (*measure_cols[m])[row];
    }
    Fold(translator.PackRow(row), values.data());
  }

  // Batch form over the contiguous rows [begin, end), with caller-owned key
  // scratch. Fold order per cell matches the serial loop exactly.
  void AccumulateBatch(uint64_t begin, uint64_t end,
                       std::vector<uint64_t>& keys) {
    const size_t n = static_cast<size_t>(end - begin);
    keys.resize(n);
    translator.PackRange(begin, n, keys.data());
    FoldBatch(keys.data(), n, begin);
  }

  // Sorts the staged records by key (stable, preserving arrival order
  // within a key) and appends them as one run. A write failure flips the
  // target to `degraded`: the staged rows fold straight into the
  // aggregator and all later folds bypass staging.
  void FlushRun() {
    if (staged_keys.empty()) return;
    const size_t m = measure_cols.size();
    if (spill == nullptr) {
      spill = std::make_unique<SpillFile>(spill_config, /*query_id=*/-1, m);
    }
    std::vector<uint32_t> perm(staged_keys.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<uint32_t>(i);
    std::stable_sort(perm.begin(), perm.end(),
                     [this](uint32_t a, uint32_t b) {
                       return staged_keys[a] < staged_keys[b];
                     });
    std::vector<uint64_t> sorted_keys(staged_keys.size());
    std::vector<double> sorted_values(staged_values.size());
    for (size_t i = 0; i < perm.size(); ++i) {
      sorted_keys[i] = staged_keys[perm[i]];
      for (size_t j = 0; j < m; ++j) {
        sorted_values[i * m + j] = staged_values[perm[i] * m + j];
      }
    }
    const Status written = spill->AppendRun(
        sorted_keys.data(), sorted_values.data(), sorted_keys.size());
    if (!written.ok()) {
      degraded = true;
      for (size_t i = 0; i < staged_keys.size(); ++i) {
        agg->Add(staged_keys[i], staged_values.data() + i * m);
      }
    }
    staged_keys.clear();
    staged_keys.shrink_to_fit();
    staged_values.clear();
    staged_values.shrink_to_fit();
  }

  // Replays every staged/spilled record into the aggregator. Must run
  // before Emit. With runs on disk the ordered merge feeds each cell's
  // folds in arrival order; without, the staged buffer already is arrival
  // order. A merge read failure (torn scratch file) is fatal — the rows
  // exist nowhere else.
  void FinishFolds() {
    if (spill == nullptr || spill->empty()) {
      const size_t m = measure_cols.size();
      for (size_t i = 0; i < staged_keys.size(); ++i) {
        agg->Add(staged_keys[i], staged_values.data() + i * m);
      }
      staged_keys.clear();
      staged_values.clear();
      return;
    }
    if (!degraded) FlushRun();  // tail (may itself degrade; runs still merge)
    spill_runs = spill->num_runs();
    spill_bytes = spill->spilled_bytes();
    const Status merged = spill->Merge(
        grant.cap_bytes, [this](uint64_t key, const double* vals) {
          agg->Add(key, vals);
        });
    SS_CHECK_MSG(merged.ok(), "view build spill merge failed: %s",
                 merged.ToString().c_str());
    spill.reset();
  }
};

ViewBuilder::TargetState ViewBuilder::MakeTargetState(
    const MaterializedView& source, const GroupBySpec& target) const {
  TargetState state;
  const size_t num_measures = source.table().num_measures();
  state.agg = std::make_unique<MultiAggregator>(
      schema_, target, num_measures,
      std::min<uint64_t>(target.MaxCells(schema_),
                         source.table().num_rows()));
  state.translator =
      DimTranslator(schema_, target, source, state.agg->packer());
  for (size_t m = 0; m < num_measures; ++m) {
    state.measure_cols.push_back(&source.table().measure_column(m));
  }
  state.values.resize(num_measures);
  return state;
}

void ViewBuilder::RecordBuildMem(const std::vector<TargetState>& states,
                                 NodeExec& agg) {
  MemStats mem;
  uint64_t runs = 0;
  uint64_t bytes = 0;
  for (const TargetState& state : states) {
    mem.hash_bytes += state.agg->MemoryBytes() + state.staged_peak_bytes;
    runs += state.spill_runs;
    bytes += state.spill_bytes;
  }
  agg.RecordMem(mem);
  if (runs > 0) {
    agg.AddNodeOnlyCounter("spill_runs", runs);
    agg.AddNodeOnlyCounter("spill_bytes", bytes);
  }
}

void ViewBuilder::GrantBudget(TargetState& state, uint64_t consumers) const {
  if (budget_ == nullptr || !budget_->bounded()) return;
  // View builds have no query id; -1 keys their grant/spill fault sites.
  Result<MemoryGrant> grant = budget_->Grant(/*query_id=*/-1, consumers);
  if (!grant.ok()) return;  // denied: this target completes in memory
  state.grant = grant.value();
  state.spill_config = spill_;
}

std::unique_ptr<Table> ViewBuilder::Emit(const MultiAggregator& agg,
                                         const GroupBySpec& target,
                                         const Table& source_table,
                                         DiskModel& disk,
                                         const std::string& name,
                                         bool clustered) const {
  obs::ScopedSpan span("view.emit", target.ToString(schema_));
  span.AddRows(agg.num_cells());
  // Deterministic emission order: lexicographic by key when clustered,
  // otherwise a pseudo-random permutation of the keys (hash order).
  std::vector<std::pair<uint64_t, uint32_t>> order;  // (sort key, cell)
  order.reserve(agg.num_cells());
  for (size_t cell = 0; cell < agg.num_cells(); ++cell) {
    const uint64_t key = agg.cell_key(cell);
    order.emplace_back(clustered ? key : HashKey(key),
                       static_cast<uint32_t>(cell));
  }
  std::sort(order.begin(), order.end(),
            [&agg](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return agg.cell_key(a.second) < agg.cell_key(b.second);
            });

  const auto retained = target.RetainedDims(schema_);
  std::vector<std::string> key_names;
  key_names.reserve(retained.size());
  for (size_t d : retained) {
    key_names.push_back(schema_.dim(d).LevelName(target.level(d)));
  }
  std::vector<std::string> measure_names;
  for (size_t m = 0; m < source_table.num_measures(); ++m) {
    measure_names.push_back(source_table.measure_name(m));
  }
  auto table = std::make_unique<Table>(
      name.empty() ? target.ToString(schema_) : name, key_names,
      measure_names);
  table->Reserve(agg.num_cells());
  std::vector<double> values(agg.num_measures());
  for (const auto& [_, cell] : order) {
    const std::vector<int32_t> keys = agg.packer().Unpack(agg.cell_key(cell));
    for (size_t m = 0; m < values.size(); ++m) {
      values[m] = agg.cell_sum(m, cell);
    }
    table->AppendRowM(keys.data(), values.data());
  }
  // Pack before charging the write: the pages written are the pages later
  // scans of this view will read, so both sides price the same layout.
  if (compressed_pages_) table->SetCompressed(true);
  disk.WritePages(table->num_pages());
  return table;
}

std::unique_ptr<Table> ViewBuilder::Build(const MaterializedView& source,
                                          const GroupBySpec& target,
                                          DiskModel& disk,
                                          const std::string& name,
                                          bool clustered) const {
  SS_CHECK_MSG(source.spec().CanAnswer(target),
               "view %s cannot materialize %s", source.name().c_str(),
               target.ToString(schema_).c_str());
  static obs::Counter& builds = obs::Metrics().counter("view.builds");
  builds.Add();
  obs::ScopedSpan span("view.build", target.ToString(schema_));
  span.AddRows(source.table().num_rows());

  // A build executes the lowered Aggregate <- Scan tree, like every other
  // path in the system: the scan streams ScanSourceOp batches into the
  // target's aggregator, and the physical nodes record what ran.
  PhysicalPlan phys;
  const LoweredViewBuild lowered =
      LowerViewBuild(phys, target.ToString(schema_), /*num_scans=*/1);
  TargetState state = MakeTargetState(source, target);
  GrantBudget(state, /*consumers=*/1);
  NodeExec agg(phys, lowered.aggregate, disk);
  {
    NodeExec scan(phys, lowered.scans[0], disk);
    std::vector<uint64_t> keys;
    DriveScan(source.table(), disk, 0, source.table().num_rows(),
              batch_.EffectiveBatchRows(), scan,
              [&](uint64_t b, uint64_t e) {
                if (batch_.vectorized) {
                  state.AccumulateBatch(b, e, keys);
                } else {
                  for (uint64_t row = b; row < e; ++row) state.Accumulate(row);
                }
              });
  }
  state.FinishFolds();
  std::unique_ptr<Table> table =
      Emit(*state.agg, target, source.table(), disk, name, clustered);
  agg.AddRows(table->num_rows());
  MemStats mem;
  mem.hash_bytes = state.agg->MemoryBytes() + state.staged_peak_bytes;
  agg.RecordMem(mem);
  if (state.spill_runs > 0) {
    agg.AddNodeOnlyCounter("spill_runs", state.spill_runs);
    agg.AddNodeOnlyCounter("spill_bytes", state.spill_bytes);
  }
  return table;
}

std::unique_ptr<Table> ViewBuilder::Refresh(const MaterializedView& view,
                                            const MaterializedView& delta,
                                            DiskModel& disk) const {
  SS_CHECK_MSG(delta.spec().CanAnswer(view.spec()),
               "delta %s cannot refresh view %s", delta.name().c_str(),
               view.name().c_str());
  SS_CHECK_MSG(delta.table().num_measures() == view.table().num_measures(),
               "delta and view measure counts differ");
  static obs::Counter& refreshes = obs::Metrics().counter("view.refreshes");
  refreshes.Add();
  obs::ScopedSpan span("view.refresh", view.spec().ToString(schema_));
  span.AddRows(view.table().num_rows() + delta.table().num_rows());

  // Fold in the existing cells (keys are already at the view's levels, in
  // column order) using an identity-mapped state over the view itself...
  // then the delta, mapped up to the view's levels, into the SAME
  // aggregator. The lowered tree is one Aggregate over two Scans.
  PhysicalPlan phys;
  const LoweredViewBuild lowered =
      LowerViewBuild(phys, view.spec().ToString(schema_), /*num_scans=*/2);
  TargetState fold = MakeTargetState(view, view.spec());
  TargetState delta_state = MakeTargetState(delta, view.spec());
  NodeExec agg(phys, lowered.aggregate, disk);
  const auto scan_into = [&](const MaterializedView& src, TargetState& state,
                             size_t scan_slot) {
    NodeExec scan(phys, lowered.scans[scan_slot], disk);
    std::vector<uint64_t> keys;
    DriveScan(src.table(), disk, 0, src.table().num_rows(),
              batch_.EffectiveBatchRows(), scan,
              [&](uint64_t b, uint64_t e) {
                if (batch_.vectorized) {
                  state.AccumulateBatch(b, e, keys);
                } else {
                  for (uint64_t row = b; row < e; ++row) state.Accumulate(row);
                }
              });
  };
  scan_into(view, fold, 0);
  delta_state.agg = std::move(fold.agg);
  scan_into(delta, delta_state, 1);

  std::unique_ptr<Table> table = Emit(*delta_state.agg, view.spec(),
                                      view.table(), disk, view.name(),
                                      view.clustered());
  agg.AddRows(table->num_rows());
  return table;
}

std::vector<std::unique_ptr<Table>> ViewBuilder::BuildMany(
    const MaterializedView& source, const std::vector<GroupBySpec>& targets,
    DiskModel& disk, bool clustered) const {
  static obs::Counter& builds = obs::Metrics().counter("view.builds");
  builds.Add(targets.size());
  obs::ScopedSpan span("view.build_many");
  span.AddRows(source.table().num_rows());
  span.AddCounter("targets", targets.size());

  std::vector<TargetState> states;
  states.reserve(targets.size());
  for (const GroupBySpec& target : targets) {
    SS_CHECK_MSG(source.spec().CanAnswer(target),
                 "view %s cannot materialize %s", source.name().c_str(),
                 target.ToString(schema_).c_str());
    states.push_back(MakeTargetState(source, target));
  }
  for (TargetState& state : states) GrantBudget(state, states.size());

  // One shared scan feeds every target's aggregation. Targets aggregate
  // independently, so the batch path's target-outer order folds each
  // aggregator exactly as the row-outer serial loop does.
  PhysicalPlan phys;
  const LoweredViewBuild lowered =
      LowerViewBuild(phys, source.name(), /*num_scans=*/1);
  std::vector<std::unique_ptr<Table>> tables;
  tables.reserve(targets.size());
  {
    NodeExec agg(phys, lowered.aggregate, disk);
    {
      NodeExec scan(phys, lowered.scans[0], disk);
      std::vector<uint64_t> keys;
      DriveScan(source.table(), disk, 0, source.table().num_rows(),
                batch_.EffectiveBatchRows(), scan,
                [&](uint64_t b, uint64_t e) {
                  if (batch_.vectorized) {
                    for (TargetState& state : states) {
                      state.AccumulateBatch(b, e, keys);
                    }
                  } else {
                    for (uint64_t row = b; row < e; ++row) {
                      for (TargetState& state : states) state.Accumulate(row);
                    }
                  }
                });
    }
    uint64_t cells = 0;
    for (size_t i = 0; i < targets.size(); ++i) {
      states[i].FinishFolds();
      tables.push_back(Emit(*states[i].agg, targets[i], source.table(), disk,
                            "", clustered));
      cells += tables.back()->num_rows();
    }
    agg.AddRows(cells);
    RecordBuildMem(states, agg);
  }
  return tables;
}

std::vector<std::unique_ptr<Table>> ViewBuilder::BuildManyParallel(
    const MaterializedView& source, const std::vector<GroupBySpec>& targets,
    DiskModel& disk, const ParallelPolicy& policy, bool clustered) const {
  if (!policy.engaged()) return BuildMany(source, targets, disk, clustered);

  // Same span site as BuildMany; closes after MergeIntoParent so the
  // merged worker I/O lands in its delta (see exec/operators/).
  static obs::Counter& builds = obs::Metrics().counter("view.builds");
  builds.Add(targets.size());
  obs::ScopedSpan span("view.build_many");
  span.AddRows(source.table().num_rows());
  span.AddCounter("targets", targets.size());

  std::vector<TargetState> states;
  states.reserve(targets.size());
  for (const GroupBySpec& target : targets) {
    SS_CHECK_MSG(source.spec().CanAnswer(target),
                 "view %s cannot materialize %s", source.name().c_str(),
                 target.ToString(schema_).c_str());
    states.push_back(MakeTargetState(source, target));
  }
  for (TargetState& state : states) GrantBudget(state, states.size());

  const Table& table = source.table();
  const size_t workers =
      std::min(policy.parallelism, policy.pool->num_threads());
  const uint64_t morsel_rows =
      policy.morsel_rows > 0
          ? policy.morsel_rows
          : MorselDispatcher::DefaultMorselRows(
                table.num_rows(), table.rows_per_page(), workers);
  MorselDispatcher dispatcher(table.num_rows(), morsel_rows,
                              /*window=*/4 * workers);
  ParallelContext ctx(disk, workers);

  // The same Aggregate <- Scan tree as BuildMany; parallelism is only a
  // driver property. Every row feeds every target, so a morsel's buffer is
  // one packed-key column per target; measure values are re-read by the
  // consumer (cheap, and already charged by the worker's page scan).
  PhysicalPlan phys;
  const LoweredViewBuild lowered =
      LowerViewBuild(phys, source.name(), /*num_scans=*/1);
  std::vector<std::unique_ptr<Table>> tables;
  tables.reserve(targets.size());
  {
    NodeExec agg(phys, lowered.aggregate, disk);
    {
      // Open across the whole pipeline: MergeIntoParent runs before this
      // node closes, so the merged worker I/O lands in its delta.
      NodeExec scan(phys, lowered.scans[0], disk);
      scan.AddRows(table.num_rows());
      struct KeyBuffer {
        std::vector<std::vector<uint64_t>> keys;
      };
      RunMorselPipeline<KeyBuffer>(
          policy.pool, workers, dispatcher, ctx,
          [&](const Morsel& morsel, DiskModel& wdisk, KeyBuffer& buffer) {
            buffer.keys.resize(states.size());
            for (std::vector<uint64_t>& keys : buffer.keys) {
              keys.clear();
              keys.reserve(morsel.num_rows());
            }
            // Per-morsel ScanSourceOp on the worker disk: identical page
            // charges and batch spans as the serial chain over this slice.
            ScanSourceOp op(table, wdisk, morsel.begin, morsel.end,
                            policy.batch.EffectiveBatchRows());
            ClassBatch batch;
            op.Open();
            while (op.NextBatch(batch)) {
              if (policy.batch.vectorized) {
                // Batches arrive adjacent and ascending, so packing each
                // span onto the tail keeps buffer.keys[t][i] the key of
                // row morsel.begin + i.
                const size_t n = static_cast<size_t>(batch.end - batch.begin);
                for (size_t t = 0; t < states.size(); ++t) {
                  std::vector<uint64_t>& keys = buffer.keys[t];
                  const size_t base = keys.size();
                  keys.resize(base + n);
                  states[t].translator.PackRange(batch.begin, n,
                                                 keys.data() + base);
                }
                continue;
              }
              for (uint64_t row = batch.begin; row < batch.end; ++row) {
                for (size_t t = 0; t < states.size(); ++t) {
                  buffer.keys[t].push_back(
                      states[t].translator.PackRow(row));
                }
              }
            }
            op.Close();
          },
          [&](const Morsel& morsel, const KeyBuffer& buffer) {
            scan.AddBatches(1);
            if (policy.batch.vectorized) {
              // Per-target batch fold: targets are independent, and each
              // target's stream is row-ascending, so this replays
              // BuildMany's per-cell accumulation order exactly.
              for (size_t t = 0; t < states.size(); ++t) {
                states[t].FoldBatch(buffer.keys[t].data(),
                                    buffer.keys[t].size(), morsel.begin);
              }
              return;
            }
            std::vector<double> values(table.num_measures());
            for (uint64_t i = 0; i < morsel.num_rows(); ++i) {
              const uint64_t row = morsel.begin + i;
              for (size_t m = 0; m < values.size(); ++m) {
                values[m] = table.measure_column(m)[row];
              }
              for (size_t t = 0; t < states.size(); ++t) {
                states[t].Fold(buffer.keys[t][i], values.data());
              }
            }
          });
      ctx.MergeIntoParent();
    }
    uint64_t cells = 0;
    for (size_t i = 0; i < targets.size(); ++i) {
      states[i].FinishFolds();
      tables.push_back(Emit(*states[i].agg, targets[i], source.table(), disk,
                            "", clustered));
      cells += tables.back()->num_rows();
    }
    agg.AddRows(cells);
    RecordBuildMem(states, agg);
  }
  return tables;
}

}  // namespace starshare
