#include "cube/view_selection.h"

#include <algorithm>

#include "common/macros.h"

namespace starshare {

uint64_t EstimateViewRows(const StarSchema& schema, const GroupBySpec& spec,
                          uint64_t base_rows) {
  return std::min(spec.MaxCells(schema), base_rows);
}

std::vector<GroupBySpec> EnumerateLattice(const StarSchema& schema) {
  std::vector<GroupBySpec> out;
  std::vector<int> levels(schema.num_dims(), 0);
  for (;;) {
    GroupBySpec spec{std::vector<int>(levels)};
    if (!(spec == GroupBySpec::Base(schema))) out.push_back(spec);
    // Odometer increment over per-dimension levels (0..all_level).
    size_t d = 0;
    while (d < levels.size()) {
      if (levels[d] < schema.dim(d).all_level()) {
        ++levels[d];
        break;
      }
      levels[d] = 0;
      ++d;
    }
    if (d == levels.size()) break;
  }
  return out;
}

std::vector<GroupBySpec> GreedySelectViews(const StarSchema& schema,
                                           uint64_t base_rows, size_t k) {
  const std::vector<GroupBySpec> lattice = EnumerateLattice(schema);
  std::vector<uint64_t> est_rows(lattice.size());
  for (size_t i = 0; i < lattice.size(); ++i) {
    est_rows[i] = EstimateViewRows(schema, lattice[i], base_rows);
  }

  // cost_to_answer[i]: rows of the cheapest chosen table answering point i.
  std::vector<uint64_t> cost_to_answer(lattice.size(), base_rows);
  std::vector<bool> chosen(lattice.size(), false);
  std::vector<GroupBySpec> result;

  for (size_t round = 0; round < k && round < lattice.size(); ++round) {
    size_t best = SIZE_MAX;
    int64_t best_benefit = -1;
    for (size_t c = 0; c < lattice.size(); ++c) {
      if (chosen[c]) continue;
      int64_t benefit = 0;
      for (size_t q = 0; q < lattice.size(); ++q) {
        if (lattice[c].CanAnswer(lattice[q]) &&
            est_rows[c] < cost_to_answer[q]) {
          benefit += static_cast<int64_t>(cost_to_answer[q] - est_rows[c]);
        }
      }
      if (benefit > best_benefit) {
        best_benefit = benefit;
        best = c;
      }
    }
    if (best == SIZE_MAX || best_benefit <= 0) break;
    chosen[best] = true;
    result.push_back(lattice[best]);
    for (size_t q = 0; q < lattice.size(); ++q) {
      if (lattice[best].CanAnswer(lattice[q])) {
        cost_to_answer[q] = std::min(cost_to_answer[q], est_rows[best]);
      }
    }
  }
  return result;
}

}  // namespace starshare
