#include "cube/materialized_view.h"

#include <algorithm>

namespace starshare {
namespace {

size_t IndexKey(size_t dim, int level) {
  return (dim << 8) | static_cast<size_t>(level);
}

}  // namespace

MaterializedView::MaterializedView(const StarSchema& schema, GroupBySpec spec,
                                   Table* table)
    : spec_(std::move(spec)), table_(table) {
  SS_CHECK(table_ != nullptr);
  key_col_for_dim_.assign(schema.num_dims(), SIZE_MAX);
  const auto retained = spec_.RetainedDims(schema);
  SS_CHECK_MSG(retained.size() == table_->num_key_columns(),
               "view %s: %zu retained dims but table has %zu key columns",
               table_->name().c_str(), retained.size(),
               table_->num_key_columns());
  for (size_t i = 0; i < retained.size(); ++i) {
    key_col_for_dim_[retained[i]] = i;
  }
}

void MaterializedView::BuildIndex(const StarSchema& schema, size_t d,
                                  DiskModel& disk) {
  SS_CHECK_MSG(KeyColForDim(d) != SIZE_MAX,
               "cannot index dimension %s on view %s: aggregated away",
               schema.dim(d).dim_name().c_str(), name().c_str());
  const Hierarchy& h = schema.dim(d);
  const int stored = spec_.level(d);
  const uint32_t stored_card = h.cardinality(stored);

  // Levels still missing their index.
  std::vector<int> levels;
  for (int level = stored; level < h.num_levels(); ++level) {
    if (!indexes_.contains(IndexKey(d, level))) levels.push_back(level);
  }
  if (levels.empty()) return;

  // One shared scan populates every level's RID lists: per row, the stored
  // key maps up to each level through a precomputed array.
  std::vector<std::vector<int32_t>> maps;  // per level: stored key -> member
  std::vector<std::vector<std::vector<uint32_t>>> lists;  // per level
  for (int level : levels) {
    std::vector<int32_t> map(stored_card);
    for (uint32_t m = 0; m < stored_card; ++m) {
      map[m] = h.MapUp(stored, level, static_cast<int32_t>(m));
    }
    maps.push_back(std::move(map));
    lists.emplace_back(h.cardinality(level));
  }
  const KeyColumn& keys = table_->key_column(KeyColForDim(d));
  table_->ScanPages(disk, [&](uint64_t begin, uint64_t end) {
    keys.ForEach(begin, end, [&](uint64_t row, int32_t stored_key) {
      const size_t key = static_cast<size_t>(stored_key);
      for (size_t i = 0; i < levels.size(); ++i) {
        lists[i][static_cast<size_t>(maps[i][key])].push_back(
            static_cast<uint32_t>(row));
      }
    });
  });
  for (size_t i = 0; i < levels.size(); ++i) {
    indexes_.emplace(IndexKey(d, levels[i]),
                     BitmapJoinIndex(KeyColForDim(d), table_->num_rows(),
                                     std::move(lists[i]), disk));
  }
}

bool MaterializedView::HasIndexOn(size_t d) const {
  return IndexOn(d, spec_.level(d)) != nullptr;
}

const BitmapJoinIndex* MaterializedView::IndexOn(size_t d, int level) const {
  auto it = indexes_.find(IndexKey(d, level));
  return it == indexes_.end() ? nullptr : &it->second;
}

void MaterializedView::ReplaceTable(const StarSchema& schema, Table* table) {
  SS_CHECK(table != nullptr);
  const auto retained = spec_.RetainedDims(schema);
  SS_CHECK_MSG(retained.size() == table->num_key_columns(),
               "replacement table for %s has %zu key columns, want %zu",
               name().c_str(), table->num_key_columns(), retained.size());
  table_ = table;
  indexes_.clear();
  member_counts_.clear();
}

void MaterializedView::ComputeStats(const StarSchema& schema) {
  member_counts_.assign(schema.num_dims(), {});
  for (size_t d = 0; d < schema.num_dims(); ++d) {
    const size_t col = KeyColForDim(d);
    if (col == SIZE_MAX) continue;
    std::vector<uint32_t> counts(
        schema.dim(d).cardinality(spec_.level(d)), 0);
    const KeyColumn& keys = table_->key_column(col);
    keys.ForEach(0, keys.size(), [&](uint64_t, int32_t key) {
      ++counts[static_cast<size_t>(key)];
    });
    member_counts_[d] = std::move(counts);
  }
}

uint64_t MaterializedView::RowsMatching(
    size_t d, std::span<const int32_t> stored_members) const {
  SS_CHECK_MSG(has_stats(), "ComputeStats not run on %s", name().c_str());
  SS_CHECK(d < member_counts_.size() && !member_counts_[d].empty());
  uint64_t rows = 0;
  for (int32_t m : stored_members) {
    SS_DCHECK(m >= 0 && static_cast<size_t>(m) < member_counts_[d].size());
    rows += member_counts_[d][static_cast<size_t>(m)];
  }
  return rows;
}

double MaterializedView::SelectivityOf(
    size_t d, std::span<const int32_t> stored_members) const {
  const uint64_t total = table_->num_rows();
  if (total == 0) return 0;
  return static_cast<double>(RowsMatching(d, stored_members)) /
         static_cast<double>(total);
}

std::vector<size_t> MaterializedView::IndexedDims() const {
  std::vector<size_t> dims;
  for (const auto& [key, _] : indexes_) dims.push_back(key >> 8);
  std::sort(dims.begin(), dims.end());
  dims.erase(std::unique(dims.begin(), dims.end()), dims.end());
  return dims;
}

}  // namespace starshare
