// CUBE/ROLLUP lattice planning with smallest-parent scheduling.
//
// A CubeQuery expands into the group-by lattice (query/cube_query.h); this
// module decides HOW each level is computed. The finest level always runs
// against base data. Every coarser level weighs two §5/§6-priced options:
//
//   * roll up from the smallest already-scheduled level whose target can
//     answer it — CostModel::RollupCpuMs over the parent's estimated
//     groups, zero I/O (the parent's output is in memory);
//   * join the base-level shared batch — CostModel::CostOfAddMs against
//     the provisional class of current base members on the cheapest
//     answering view, i.e. exactly what the batch optimizers would pay to
//     carry it through the shared scan.
//
// Levels that roll up cascade (a rollup may parent further rollups); levels
// that rescan join the base batch, which the caller hands to an ordinary
// batch optimizer — so DAG/GG sharing composes with rollup reuse. AVG never
// rolls up (partial averages do not re-aggregate); COUNT rolls up as a SUM
// of the parent's per-group counts (see RollupQueryFor).

#ifndef STARSHARE_CUBE_LATTICE_H_
#define STARSHARE_CUBE_LATTICE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "cost/cost_model.h"
#include "cube/view_set.h"
#include "query/cube_query.h"
#include "query/query.h"
#include "schema/star_schema.h"

namespace starshare {

inline constexpr size_t kNoLatticeParent = static_cast<size_t>(-1);

// One scheduled lattice level. `parent == kNoLatticeParent` means the level
// executes in the base shared batch; otherwise it rolls up from
// steps[parent]'s finished result.
struct LatticeStep {
  DimensionalQuery query;  // the user-facing level query (full predicate)
  size_t parent = kNoLatticeParent;
  double est_rows = 0.0;        // estimated result groups of this level
  double est_rollup_ms = -1.0;  // priced rollup cost (-1 = not applicable)
  double est_rescan_ms = -1.0;  // priced base-batch alternative (-1 = n/a)
};

struct LatticePlan {
  CubeForm form = CubeForm::kCube;
  // Topologically ordered: every step's parent (and any step a parent could
  // have been chosen from) precedes it.
  std::vector<LatticeStep> steps;

  size_t NumBase() const;
  size_t NumRollups() const { return steps.size() - NumBase(); }

  // The base-batch members, in step order — the ordinary related-query
  // batch the caller hands to an optimizer. Pointers into `steps`.
  std::vector<const DimensionalQuery*> BaseQueries() const;

  std::string ToString(const StarSchema& schema) const;
};

// Expands `cube` and schedules every level. `views` supplies the candidate
// base views for pricing the rescan alternative (non-SUM aggregates price
// against the base table only, mirroring the optimizers' admissibility
// rule). Component query ids are first_id, first_id + 1, ... in expansion
// order.
Result<LatticePlan> PlanLattice(const CubeQuery& cube,
                                const StarSchema& schema,
                                const ViewSet& views, const CostModel& cost,
                                int first_id = 1);

// The stripped query a rollup level actually runs over its parent's derived
// table: same id/label/target, no predicate (the parent already applied
// every restriction), measure 0 (derived tables have one "value" column),
// and COUNT mapped to SUM (the parent's values are per-group counts; their
// sum is the child's count — the caller relabels the result afterwards).
DimensionalQuery RollupQueryFor(const DimensionalQuery& level);

}  // namespace starshare

#endif  // STARSHARE_CUBE_LATTICE_H_
