#include "mdx/lexer.h"

#include "common/str_util.h"

namespace starshare {
namespace mdx {
namespace {

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool IsIdentChar(char c) {
  return IsIdentStart(c) || (c >= '0' && c <= '9');
}

TokenType KeywordOrIdent(const std::string& text) {
  const std::string upper = AsciiUpper(text);
  if (upper == "NEST" || upper == "CROSSJOIN") return TokenType::kNest;
  if (upper == "ON") return TokenType::kOn;
  if (upper == "CONTEXT") return TokenType::kContext;
  if (upper == "FILTER" || upper == "WHERE") return TokenType::kFilter;
  if (upper == "CHILDREN") return TokenType::kChildren;
  if (upper == "ALL") return TokenType::kAll;
  return TokenType::kIdent;
}

}  // namespace

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kIdent:
      return "identifier";
    case TokenType::kLBrace:
      return "'{'";
    case TokenType::kRBrace:
      return "'}'";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kComma:
      return "','";
    case TokenType::kDot:
      return "'.'";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kNest:
      return "NEST";
    case TokenType::kOn:
      return "ON";
    case TokenType::kContext:
      return "CONTEXT";
    case TokenType::kFilter:
      return "FILTER";
    case TokenType::kChildren:
      return "CHILDREN";
    case TokenType::kAll:
      return "ALL";
    case TokenType::kEof:
      return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    const size_t start = i;
    switch (c) {
      case '{':
        tokens.push_back({TokenType::kLBrace, "{", start});
        ++i;
        continue;
      case '}':
        tokens.push_back({TokenType::kRBrace, "}", start});
        ++i;
        continue;
      case '(':
        tokens.push_back({TokenType::kLParen, "(", start});
        ++i;
        continue;
      case ')':
        tokens.push_back({TokenType::kRParen, ")", start});
        ++i;
        continue;
      case ',':
        tokens.push_back({TokenType::kComma, ",", start});
        ++i;
        continue;
      case '.':
        tokens.push_back({TokenType::kDot, ".", start});
        ++i;
        continue;
      case ';':
        tokens.push_back({TokenType::kSemicolon, ";", start});
        ++i;
        continue;
      default:
        break;
    }
    if (c == '[') {
      // Bracketed identifier: anything up to the closing bracket.
      const size_t close = text.find(']', i + 1);
      if (close == std::string::npos) {
        return Status::InvalidArgument(
            StrFormat("unterminated '[' at position %zu", start));
      }
      tokens.push_back(
          {TokenType::kIdent, text.substr(i + 1, close - i - 1), start});
      i = close + 1;
      continue;
    }
    if (IsIdentStart(c) || (c >= '0' && c <= '9')) {
      size_t end = i + 1;
      while (end < text.size() && IsIdentChar(text[end])) ++end;
      // Trailing primes belong to level references like A''.
      while (end < text.size() && text[end] == '\'') ++end;
      const std::string word = text.substr(i, end - i);
      tokens.push_back({KeywordOrIdent(word), word, start});
      i = end;
      continue;
    }
    return Status::InvalidArgument(
        StrFormat("unexpected character '%c' at position %zu", c, start));
  }
  tokens.push_back({TokenType::kEof, "", text.size()});
  return tokens;
}

}  // namespace mdx
}  // namespace starshare
