#include "mdx/ast.h"

#include "common/str_util.h"

namespace starshare {
namespace mdx {

std::string MemberExpr::ToString() const { return StrJoin(segments, "."); }

std::string SetExpr::ToString() const {
  std::vector<std::string> parts;
  if (kind == Kind::kMembers) {
    parts.reserve(members.size());
    for (const auto& m : members) parts.push_back(m.ToString());
    return "{" + StrJoin(parts, ", ") + "}";
  }
  parts.reserve(nested.size());
  for (const auto& s : nested) parts.push_back(s.ToString());
  return "NEST(" + StrJoin(parts, ", ") + ")";
}

std::string MdxExpression::ToString() const {
  std::string out;
  for (const auto& axis : axes) {
    out += axis.set.ToString() + " ON " + axis.axis_name + "\n";
  }
  out += "CONTEXT " + cube;
  if (!filters.empty()) {
    std::vector<std::string> parts;
    parts.reserve(filters.size());
    for (const auto& f : filters) parts.push_back(f.ToString());
    out += " FILTER(" + StrJoin(parts, ", ") + ")";
  }
  if (cube_suffix == CubeSuffix::kCube) out += " WITH CUBE";
  if (cube_suffix == CubeSuffix::kRollup) out += " WITH ROLLUP";
  return out;
}

}  // namespace mdx
}  // namespace starshare
