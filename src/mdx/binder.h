// Name resolution and query expansion (paper §2).
//
// Binding resolves each member expression against the star schema into
// (dimension, level, member set). Expansion then reproduces the paper's
// observation that one MDX expression denotes *several* group-by queries:
// the elements of an axis set are partitioned by (dimension, level) — e.g.
// {Qtr1.CHILDREN, Qtr2, Qtr3, Qtr4.CHILDREN} splits into a Month-level and
// a Quarter-level variant — and the cross product of variants across axes
// (and across NEST components) yields one DimensionalQuery per combination,
// each with the per-dimension selection predicates of its variants.
// FILTER members are slicers: they restrict every query but contribute no
// group-by column.

#ifndef STARSHARE_MDX_BINDER_H_
#define STARSHARE_MDX_BINDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "mdx/ast.h"
#include "query/cube_query.h"
#include "query/query.h"
#include "schema/star_schema.h"

namespace starshare {
namespace mdx {

// One dimension's resolved contribution: group at `level`, restrict to
// `members` (empty predicate when the set covers the whole level or the
// expression was Dim.ALL).
struct ResolvedMembers {
  size_t dim = 0;
  int level = 0;
  std::vector<int32_t> members;
  bool is_all = false;  // Dim.ALL — no restriction and no grouping

  // True when `members` covers every member of `level` (no selectivity).
  bool CoversLevel(const StarSchema& schema) const;
};

// Resolves a dotted member expression. Accepted shapes:
//   Member                      bare member name, any dimension/level
//   Dim.Member                  member name within a dimension
//   Dim.ALL                     the ALL member (slicer no-op)
//   Level.Member                member at an explicit level ("A''.A1")
//   Level | Dim                 every member of the level (bare "A'" or "A")
//   <any of the above>.CHILDREN drill down one level (repeatable)
//   <...>.CHILDREN.Member       narrow to one named child
Result<ResolvedMembers> ResolveMember(const MemberExpr& expr,
                                      const StarSchema& schema);

// Expands a parsed MDX expression into its component dimensional queries.
// Queries get ids first_id, first_id+1, ... and labels describing their
// group-by.
Result<std::vector<DimensionalQuery>> ExpandMdx(const MdxExpression& expr,
                                                const StarSchema& schema,
                                                int first_id = 1);

// Convenience: parse + expand.
Result<std::vector<DimensionalQuery>> ParseAndExpandMdx(
    const std::string& text, const StarSchema& schema, int first_id = 1);

// Binds an expression carrying WITH CUBE / WITH ROLLUP into the cube
// request it names. Each axis contributes its (dimension, level) pairs in
// order (NEST components each contribute one) — so axis order is the ROLLUP
// prefix order; restricting members and FILTER slicers become the shared
// predicate; Dim.ALL axes contribute nothing. An axis set that mixes
// levels, or a dimension on two axes, is an error: the lattice needs one
// grouping level per cubed dimension.
Result<CubeQuery> ExpandMdxCube(const MdxExpression& expr,
                                const StarSchema& schema);

// Convenience: parse + bind. Fails when the expression has no WITH CUBE /
// WITH ROLLUP clause.
Result<CubeQuery> ParseAndExpandCube(const std::string& text,
                                     const StarSchema& schema);

}  // namespace mdx
}  // namespace starshare

#endif  // STARSHARE_MDX_BINDER_H_
