// Abstract syntax of the MDX subset (paper §2, §7.3):
//
//   expression := axis+ CONTEXT cube [FILTER '(' member (',' member)* ')'] [';']
//   axis       := set ON axisname          (axisname: COLUMNS | ROWS |
//                                           PAGES | CHAPTERS | SECTIONS)
//   set        := '{' member_list '}'
//              |  '(' member_list ')'
//              |  NEST '(' set (',' set)* ')'
//   member     := segment ('.' segment)*   (segment: identifier, [quoted],
//                                           CHILDREN, or ALL)

#ifndef STARSHARE_MDX_AST_H_
#define STARSHARE_MDX_AST_H_

#include <string>
#include <vector>

namespace starshare {
namespace mdx {

// A dotted member reference, e.g. {"A''", "A1", "CHILDREN", "AA2"}.
// CHILDREN / ALL appear as the literal uppercase segment.
struct MemberExpr {
  std::vector<std::string> segments;

  std::string ToString() const;
};

// A set of members, or a NEST (cross join) of sets.
struct SetExpr {
  enum class Kind { kMembers, kNest };

  Kind kind = Kind::kMembers;
  std::vector<MemberExpr> members;  // kMembers
  std::vector<SetExpr> nested;      // kNest

  std::string ToString() const;
};

struct AxisExpr {
  SetExpr set;
  std::string axis_name;  // COLUMNS / ROWS / PAGES / ...
};

struct MdxExpression {
  std::vector<AxisExpr> axes;
  std::string cube;                 // CONTEXT <cube>
  std::vector<MemberExpr> filters;  // FILTER(...) slicer members

  std::string ToString() const;
};

}  // namespace mdx
}  // namespace starshare

#endif  // STARSHARE_MDX_AST_H_
