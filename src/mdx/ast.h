// Abstract syntax of the MDX subset (paper §2, §7.3):
//
//   expression := axis+ CONTEXT cube [FILTER '(' member (',' member)* ')']
//                 [WITH (CUBE | ROLLUP)] [';']
//   axis       := set ON axisname          (axisname: COLUMNS | ROWS |
//                                           PAGES | CHAPTERS | SECTIONS)
//   set        := '{' member_list '}'
//              |  '(' member_list ')'
//              |  NEST '(' set (',' set)* ')'
//   member     := segment ('.' segment)*   (segment: identifier, [quoted],
//                                           CHILDREN, or ALL)

#ifndef STARSHARE_MDX_AST_H_
#define STARSHARE_MDX_AST_H_

#include <string>
#include <vector>

namespace starshare {
namespace mdx {

// A dotted member reference, e.g. {"A''", "A1", "CHILDREN", "AA2"}.
// CHILDREN / ALL appear as the literal uppercase segment.
struct MemberExpr {
  std::vector<std::string> segments;

  std::string ToString() const;
};

// A set of members, or a NEST (cross join) of sets.
struct SetExpr {
  enum class Kind { kMembers, kNest };

  Kind kind = Kind::kMembers;
  std::vector<MemberExpr> members;  // kMembers
  std::vector<SetExpr> nested;      // kNest

  std::string ToString() const;
};

struct AxisExpr {
  SetExpr set;
  std::string axis_name;  // COLUMNS / ROWS / PAGES / ...
};

// Trailing WITH CUBE / WITH ROLLUP clause: the expression denotes a whole
// group-by lattice over its axis dimensions rather than the single finest
// group-by (binder.h: ExpandMdxCube).
enum class CubeSuffix { kNone, kCube, kRollup };

struct MdxExpression {
  std::vector<AxisExpr> axes;
  std::string cube;                 // CONTEXT <cube>
  std::vector<MemberExpr> filters;  // FILTER(...) slicer members
  CubeSuffix cube_suffix = CubeSuffix::kNone;

  std::string ToString() const;
};

}  // namespace mdx
}  // namespace starshare

#endif  // STARSHARE_MDX_AST_H_
