#include "mdx/binder.h"

#include <algorithm>
#include <map>

#include "common/str_util.h"
#include "mdx/parser.h"

namespace starshare {
namespace mdx {
namespace {

std::vector<int32_t> AllMembers(const Hierarchy& h, int level) {
  std::vector<int32_t> out(h.cardinality(level));
  for (size_t i = 0; i < out.size(); ++i) out[i] = static_cast<int32_t>(i);
  return out;
}

// A variant is one alternative reading of an axis: the dimensions it groups
// by and their member restrictions. Variants multiply across axes and NEST
// components; they are alternatives (distinct queries) within one set.
using Variant = std::vector<ResolvedMembers>;

// Partitions the resolved elements of a plain member set by (dim, level),
// unioning member ids — the level-signature partitioning of §2.
Result<std::vector<Variant>> EvaluateMemberSet(const SetExpr& set,
                                               const StarSchema& schema) {
  std::map<std::pair<size_t, int>, ResolvedMembers> groups;
  std::vector<std::pair<size_t, int>> order;  // deterministic output order
  for (const MemberExpr& member : set.members) {
    Result<ResolvedMembers> resolved = ResolveMember(member, schema);
    if (!resolved.ok()) return resolved.status();
    ResolvedMembers r = std::move(resolved.value());
    const auto key = std::make_pair(r.dim, r.level);
    auto it = groups.find(key);
    if (it == groups.end()) {
      groups.emplace(key, std::move(r));
      order.push_back(key);
    } else {
      ResolvedMembers& g = it->second;
      g.is_all = g.is_all && r.is_all;
      g.members.insert(g.members.end(), r.members.begin(), r.members.end());
      std::sort(g.members.begin(), g.members.end());
      g.members.erase(std::unique(g.members.begin(), g.members.end()),
                      g.members.end());
    }
  }
  std::vector<Variant> variants;
  variants.reserve(order.size());
  for (const auto& key : order) {
    variants.push_back(Variant{groups.at(key)});
  }
  return variants;
}

Result<std::vector<Variant>> EvaluateSet(const SetExpr& set,
                                         const StarSchema& schema) {
  if (set.kind == SetExpr::Kind::kMembers) {
    return EvaluateMemberSet(set, schema);
  }
  // NEST: cross product of the component sets' variants, concatenating
  // their dimension contributions.
  std::vector<Variant> result{Variant{}};
  for (const SetExpr& inner : set.nested) {
    Result<std::vector<Variant>> inner_variants = EvaluateSet(inner, schema);
    if (!inner_variants.ok()) return inner_variants.status();
    std::vector<Variant> next;
    for (const Variant& left : result) {
      for (const Variant& right : inner_variants.value()) {
        Variant combined = left;
        combined.insert(combined.end(), right.begin(), right.end());
        next.push_back(std::move(combined));
      }
    }
    result = std::move(next);
  }
  return result;
}

}  // namespace

bool ResolvedMembers::CoversLevel(const StarSchema& schema) const {
  return is_all ||
         members.size() == schema.dim(dim).cardinality(level);
}

Result<ResolvedMembers> ResolveMember(const MemberExpr& expr,
                                      const StarSchema& schema) {
  SS_CHECK(!expr.segments.empty());
  const std::string& head = expr.segments[0];
  ResolvedMembers out;
  size_t next_segment = 1;
  bool resolved_head = false;

  // Dimension-qualified: "D.DD1", "Products.ALL", bare "D".
  if (auto dim = schema.DimIndex(head); dim.ok()) {
    out.dim = dim.value();
    const Hierarchy& h = schema.dim(out.dim);
    if (expr.segments.size() == 1) {
      // Bare dimension: every base-level member.
      out.level = 0;
      out.members = AllMembers(h, 0);
      resolved_head = true;
    } else if (expr.segments[1] == "ALL") {
      out.is_all = true;
      out.level = h.all_level();
      next_segment = 2;
      resolved_head = true;
    } else if (expr.segments[1] == "MEMBERS") {
      out.level = 0;
      out.members = AllMembers(h, 0);
      next_segment = 2;
      resolved_head = true;
    } else if (auto member = h.FindMember(expr.segments[1]); member.ok()) {
      out.level = member.value().first;
      out.members = {member.value().second};
      next_segment = 2;
      resolved_head = true;
    }
    // Fall through when segment 1 is a level name ("Store.State.MEMBERS"
    // is not in the paper's subset, so dimension.level is not supported) or
    // resolvable another way below.
  }

  // Level-qualified: "A''.A1", bare level "A'" (every member), or
  // "Quarter.Qtr2" with custom level names.
  if (!resolved_head) {
    for (size_t d = 0; d < schema.num_dims() && !resolved_head; ++d) {
      const Hierarchy& h = schema.dim(d);
      auto level = h.FindLevel(head);
      if (!level.ok() || level.value() >= h.all_level()) continue;
      out.dim = d;
      out.level = level.value();
      if (expr.segments.size() == 1 || expr.segments[1] == "MEMBERS") {
        out.members = AllMembers(h, out.level);
        next_segment = expr.segments.size() == 1 ? 1 : 2;
        resolved_head = true;
      } else if (auto m = h.FindMemberAtLevel(out.level, expr.segments[1]);
                 m.ok()) {
        out.members = {m.value()};
        next_segment = 2;
        resolved_head = true;
      }
    }
  }

  // Bare member name: search every dimension and level.
  if (!resolved_head) {
    auto ref = schema.FindMember(head);
    if (!ref.ok()) {
      return Status::NotFound(StrFormat(
          "cannot resolve '%s' (in '%s') as a dimension, level or member",
          head.c_str(), expr.ToString().c_str()));
    }
    out.dim = ref.value().dim;
    out.level = ref.value().level;
    if (out.level == schema.dim(out.dim).all_level()) {
      out.is_all = true;
    } else {
      out.members = {ref.value().member};
    }
    resolved_head = true;
  }

  // Trailing modifiers: CHILDREN drills down; a member name narrows.
  const Hierarchy& h = schema.dim(out.dim);
  for (size_t i = next_segment; i < expr.segments.size(); ++i) {
    const std::string& seg = expr.segments[i];
    if (seg == "CHILDREN") {
      if (out.level < 1) {
        return Status::InvalidArgument(
            "CHILDREN below the base level in " + expr.ToString());
      }
      std::vector<int32_t> kids;
      if (out.is_all) {
        out.is_all = false;
        kids = AllMembers(h, h.num_levels() - 1);
        out.level = h.num_levels() - 1;
      } else {
        for (int32_t m : out.members) {
          const auto c = h.Children(out.level, m);
          kids.insert(kids.end(), c.begin(), c.end());
        }
        out.level -= 1;
      }
      std::sort(kids.begin(), kids.end());
      out.members = std::move(kids);
      continue;
    }
    // A named member narrowing the current set.
    auto m = h.FindMemberAtLevel(out.level, seg);
    if (!m.ok()) return m.status();
    if (!std::binary_search(out.members.begin(), out.members.end(),
                            m.value())) {
      return Status::InvalidArgument(StrFormat(
          "'%s' does not belong to the preceding set in '%s'", seg.c_str(),
          expr.ToString().c_str()));
    }
    out.members = {m.value()};
  }
  return out;
}

Result<std::vector<DimensionalQuery>> ExpandMdx(const MdxExpression& expr,
                                                const StarSchema& schema,
                                                int first_id) {
  // Per-axis variant lists.
  std::vector<std::vector<Variant>> axis_variants;
  for (const AxisExpr& axis : expr.axes) {
    Result<std::vector<Variant>> variants = EvaluateSet(axis.set, schema);
    if (!variants.ok()) return variants.status();
    if (variants.value().empty()) {
      return Status::InvalidArgument("axis " + axis.axis_name +
                                     " denotes no members");
    }
    axis_variants.push_back(std::move(variants.value()));
  }

  // Slicer members (FILTER): a bare measure name selects which measure the
  // queries aggregate (FILTER(Sales, ...)); everything else resolves as a
  // member restriction.
  size_t measure = 0;
  std::vector<ResolvedMembers> slicers;
  for (const MemberExpr& f : expr.filters) {
    if (f.segments.size() == 1) {
      Result<size_t> m = schema.MeasureIndex(f.segments[0]);
      if (m.ok()) {
        measure = m.value();
        continue;
      }
    }
    Result<ResolvedMembers> resolved = ResolveMember(f, schema);
    if (!resolved.ok()) return resolved.status();
    slicers.push_back(std::move(resolved.value()));
  }

  // Cross product of variants across axes.
  std::vector<Variant> combos{Variant{}};
  for (const auto& variants : axis_variants) {
    std::vector<Variant> next;
    for (const Variant& left : combos) {
      for (const Variant& right : variants) {
        Variant combined = left;
        combined.insert(combined.end(), right.begin(), right.end());
        next.push_back(std::move(combined));
      }
    }
    combos = std::move(next);
  }

  std::vector<DimensionalQuery> queries;
  queries.reserve(combos.size());
  int id = first_id;
  for (const Variant& combo : combos) {
    std::vector<int> levels(schema.num_dims(), 0);
    for (size_t d = 0; d < schema.num_dims(); ++d) {
      levels[d] = schema.dim(d).all_level();
    }
    QueryPredicate predicate;
    for (const ResolvedMembers& r : combo) {
      if (r.is_all) continue;
      if (levels[r.dim] != schema.dim(r.dim).all_level()) {
        return Status::InvalidArgument(
            "dimension " + schema.dim(r.dim).dim_name() +
            " appears on more than one axis");
      }
      levels[r.dim] = r.level;
      if (!r.CoversLevel(schema)) {
        predicate.AddConjunct(
            schema.dim(r.dim),
            DimPredicate{r.dim, r.level, r.members});
      }
    }
    for (const ResolvedMembers& s : slicers) {
      if (s.is_all || s.CoversLevel(schema)) continue;
      predicate.AddConjunct(schema.dim(s.dim),
                            DimPredicate{s.dim, s.level, s.members});
    }
    GroupBySpec target{std::move(levels)};
    std::string label = target.ToString(schema);
    queries.emplace_back(id, std::move(label), std::move(target),
                         std::move(predicate), AggOp::kSum, measure);
    ++id;
  }
  return queries;
}

Result<std::vector<DimensionalQuery>> ParseAndExpandMdx(
    const std::string& text, const StarSchema& schema, int first_id) {
  Result<MdxExpression> expr = ParseMdx(text);
  if (!expr.ok()) return expr.status();
  return ExpandMdx(expr.value(), schema, first_id);
}

Result<CubeQuery> ExpandMdxCube(const MdxExpression& expr,
                                const StarSchema& schema) {
  if (expr.cube_suffix == CubeSuffix::kNone) {
    return Status::InvalidArgument(
        "expression has no WITH CUBE / WITH ROLLUP clause");
  }
  std::vector<size_t> dims;
  std::vector<int> levels;
  QueryPredicate predicate;
  for (const AxisExpr& axis : expr.axes) {
    Result<std::vector<Variant>> variants = EvaluateSet(axis.set, schema);
    if (!variants.ok()) return variants.status();
    if (variants.value().size() != 1) {
      return Status::InvalidArgument(
          "axis " + axis.axis_name +
          " mixes grouping levels; WITH CUBE/ROLLUP needs one level per "
          "cubed dimension");
    }
    for (const ResolvedMembers& r : variants.value().front()) {
      if (r.is_all) continue;  // Dim.ALL: slicer no-op, nothing to cube
      for (const size_t d : dims) {
        if (d == r.dim) {
          return Status::InvalidArgument(
              "dimension " + schema.dim(r.dim).dim_name() +
              " appears on more than one axis");
        }
      }
      dims.push_back(r.dim);
      levels.push_back(r.level);
      if (!r.CoversLevel(schema)) {
        predicate.AddConjunct(schema.dim(r.dim),
                              DimPredicate{r.dim, r.level, r.members});
      }
    }
  }
  // FILTER members are slicers, exactly as in ExpandMdx: they restrict
  // every lattice level but contribute no cubed dimension.
  size_t measure = 0;
  for (const MemberExpr& f : expr.filters) {
    if (f.segments.size() == 1) {
      Result<size_t> m = schema.MeasureIndex(f.segments[0]);
      if (m.ok()) {
        measure = m.value();
        continue;
      }
    }
    Result<ResolvedMembers> resolved = ResolveMember(f, schema);
    if (!resolved.ok()) return resolved.status();
    const ResolvedMembers& s = resolved.value();
    if (s.is_all || s.CoversLevel(schema)) continue;
    predicate.AddConjunct(schema.dim(s.dim),
                          DimPredicate{s.dim, s.level, s.members});
  }
  CubeQuery cube(expr.cube_suffix == CubeSuffix::kCube ? CubeForm::kCube
                                                       : CubeForm::kRollup,
                 std::move(dims), std::move(levels), std::move(predicate),
                 AggOp::kSum, measure);
  SS_RETURN_IF_ERROR(cube.Validate(schema));
  return cube;
}

Result<CubeQuery> ParseAndExpandCube(const std::string& text,
                                     const StarSchema& schema) {
  Result<MdxExpression> expr = ParseMdx(text);
  if (!expr.ok()) return expr.status();
  return ExpandMdxCube(expr.value(), schema);
}

}  // namespace mdx
}  // namespace starshare
