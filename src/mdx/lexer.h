// Tokenizer for the MDX subset of the paper (§2, §7.3).
//
// Identifiers may carry trailing primes so level references like "A''"
// tokenize as one identifier; bracketed identifiers ([1991]) are unwrapped;
// keywords are recognized case-insensitively. CROSSJOIN is a synonym for
// NEST and WHERE for FILTER (standard MDX spellings of the paper's
// keywords).

#ifndef STARSHARE_MDX_LEXER_H_
#define STARSHARE_MDX_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace starshare {
namespace mdx {

enum class TokenType {
  kIdent,
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemicolon,
  // Keywords:
  kNest,
  kOn,
  kContext,
  kFilter,
  kChildren,
  kAll,
  kEof,
};

const char* TokenTypeName(TokenType type);

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;  // original identifier spelling (brackets stripped)
  size_t pos = 0;    // byte offset in the input, for error messages
};

// Tokenizes `text`; returns an error on any character that cannot start a
// token. The result always ends with a kEof token.
Result<std::vector<Token>> Tokenize(const std::string& text);

}  // namespace mdx
}  // namespace starshare

#endif  // STARSHARE_MDX_LEXER_H_
