#include "mdx/parser.h"

#include "common/str_util.h"
#include "mdx/lexer.h"

namespace starshare {
namespace mdx {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<MdxExpression> Parse() {
    MdxExpression expr;
    // Axes until CONTEXT.
    while (Peek().type != TokenType::kContext) {
      if (Peek().type == TokenType::kEof) {
        return Error("expected CONTEXT before end of input");
      }
      AxisExpr axis;
      Result<SetExpr> set = ParseSet();
      if (!set.ok()) return set.status();
      axis.set = std::move(set.value());
      SS_RETURN_IF_ERROR(Expect(TokenType::kOn));
      if (Peek().type != TokenType::kIdent) {
        return Error("expected an axis name after ON");
      }
      axis.axis_name = AsciiUpper(Next().text);
      expr.axes.push_back(std::move(axis));
    }
    if (expr.axes.empty()) return Error("MDX expression has no axes");
    Next();  // CONTEXT
    if (Peek().type != TokenType::kIdent) {
      return Error("expected a cube name after CONTEXT");
    }
    expr.cube = Next().text;
    if (Peek().type == TokenType::kFilter) {
      Next();
      // FILTER (m1, m2, ...) — parentheses optional (MDX's WHERE form).
      const bool parenthesized = Peek().type == TokenType::kLParen;
      if (parenthesized) Next();
      for (;;) {
        Result<MemberExpr> member = ParseMember();
        if (!member.ok()) return member.status();
        expr.filters.push_back(std::move(member.value()));
        if (Peek().type != TokenType::kComma) break;
        Next();
      }
      if (parenthesized) SS_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    }
    // Trailing WITH CUBE / WITH ROLLUP clause. WITH is not a lexer keyword
    // (nothing else uses it), so it arrives as an ordinary identifier.
    if (Peek().type == TokenType::kIdent &&
        AsciiUpper(Peek().text) == "WITH") {
      Next();
      if (Peek().type != TokenType::kIdent) {
        return Error("expected CUBE or ROLLUP after WITH");
      }
      const std::string word = AsciiUpper(Next().text);
      if (word == "CUBE") {
        expr.cube_suffix = CubeSuffix::kCube;
      } else if (word == "ROLLUP") {
        expr.cube_suffix = CubeSuffix::kRollup;
      } else {
        return Error("expected CUBE or ROLLUP after WITH, not " + word);
      }
    }
    if (Peek().type == TokenType::kSemicolon) Next();
    if (Peek().type != TokenType::kEof) {
      return Error("unexpected trailing input");
    }
    return expr;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(StrFormat(
        "MDX parse error at position %zu (near %s): %s", Peek().pos,
        TokenTypeName(Peek().type), message.c_str()));
  }

  Status Expect(TokenType type) {
    if (Peek().type != type) {
      return Error(StrFormat("expected %s", TokenTypeName(type)));
    }
    Next();
    return Status::Ok();
  }

  Result<SetExpr> ParseSet() {
    if (Peek().type == TokenType::kNest) {
      Next();
      SS_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      SetExpr set;
      set.kind = SetExpr::Kind::kNest;
      for (;;) {
        Result<SetExpr> inner = ParseSet();
        if (!inner.ok()) return inner.status();
        set.nested.push_back(std::move(inner.value()));
        if (Peek().type != TokenType::kComma) break;
        Next();
      }
      SS_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      return set;
    }
    if (Peek().type == TokenType::kLBrace ||
        Peek().type == TokenType::kLParen) {
      const TokenType open = Next().type;
      const TokenType close = open == TokenType::kLBrace
                                  ? TokenType::kRBrace
                                  : TokenType::kRParen;
      SetExpr set;
      for (;;) {
        Result<MemberExpr> member = ParseMember();
        if (!member.ok()) return member.status();
        set.members.push_back(std::move(member.value()));
        if (Peek().type != TokenType::kComma) break;
        Next();
      }
      SS_RETURN_IF_ERROR(Expect(close));
      return set;
    }
    // A bare member is a singleton set.
    Result<MemberExpr> member = ParseMember();
    if (!member.ok()) return member.status();
    SetExpr set;
    set.members.push_back(std::move(member.value()));
    return set;
  }

  Result<MemberExpr> ParseMember() {
    MemberExpr member;
    for (;;) {
      const TokenType t = Peek().type;
      if (t == TokenType::kIdent) {
        member.segments.push_back(Next().text);
      } else if (t == TokenType::kChildren) {
        Next();
        member.segments.push_back("CHILDREN");
      } else if (t == TokenType::kAll) {
        Next();
        member.segments.push_back("ALL");
      } else {
        return Error("expected a member segment");
      }
      if (Peek().type != TokenType::kDot) break;
      Next();
    }
    return member;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<MdxExpression> ParseMdx(const std::string& text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens.value()));
  return parser.Parse();
}

}  // namespace mdx
}  // namespace starshare
