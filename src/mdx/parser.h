// Recursive-descent parser for the MDX subset (grammar in mdx/ast.h).

#ifndef STARSHARE_MDX_PARSER_H_
#define STARSHARE_MDX_PARSER_H_

#include <string>

#include "common/status.h"
#include "mdx/ast.h"

namespace starshare {
namespace mdx {

// Parses one MDX expression. Errors carry the byte position of the
// offending token.
Result<MdxExpression> ParseMdx(const std::string& text);

}  // namespace mdx
}  // namespace starshare

#endif  // STARSHARE_MDX_PARSER_H_
