// I/O accounting: every operator charges its page touches here.

#ifndef STARSHARE_STORAGE_IO_STATS_H_
#define STARSHARE_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace starshare {

// Counters for one execution (or one scope of an execution). All counts are
// in pages except where noted.
struct IoStats {
  uint64_t seq_pages_read = 0;    // sequential scan reads that missed cache
  uint64_t rand_pages_read = 0;   // random (probe) reads that missed cache
  uint64_t index_pages_read = 0;  // bitmap-index segment reads
  uint64_t pages_written = 0;     // view materialization output
  uint64_t cached_pages = 0;      // reads absorbed by the buffer pool
  uint64_t tuples_processed = 0;  // tuples examined by operators (CPU proxy)
  uint64_t hash_probes = 0;       // dimension / aggregation hash probes

  IoStats& operator+=(const IoStats& other);
  IoStats operator-(const IoStats& other) const;
  bool operator==(const IoStats& other) const = default;

  // Total pages actually read from "disk" (excludes cache hits).
  uint64_t TotalPagesRead() const {
    return seq_pages_read + rand_pages_read + index_pages_read;
  }

  std::string ToString() const;
};

}  // namespace starshare

#endif  // STARSHARE_STORAGE_IO_STATS_H_
