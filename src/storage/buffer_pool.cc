#include "storage/buffer_pool.h"

#include "common/fault_injector.h"
#include "obs/metrics.h"

namespace starshare {

bool BufferPool::Access(uint32_t table_id, uint64_t page) {
  static obs::Counter& hit_metric = obs::Metrics().counter("buffer_pool.hits");
  static obs::Counter& miss_metric =
      obs::Metrics().counter("buffer_pool.misses");
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_pages_ == 0) {
    ++misses_;
    miss_metric.Add();
    return false;
  }
  const uint64_t key = Key(table_id, page);
  // Injected frame loss: the resident copy is treated as damaged, dropped,
  // and the access degrades to a miss (re-read from "disk"). Correctness is
  // unaffected; only the hit accounting changes.
  if (FaultInjector::enabled() && FaultHit("buffer_pool.access")) {
    auto damaged = index_.find(key);
    if (damaged != index_.end()) {
      lru_.erase(damaged->second);
      index_.erase(damaged);
    }
    ++misses_;
    miss_metric.Add();
    return false;
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    hit_metric.Add();
    return true;
  }
  ++misses_;
  miss_metric.Add();
  lru_.push_front(key);
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_pages_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  return false;
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

uint64_t BufferPool::resident_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t BufferPool::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t BufferPool::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace starshare
