#include "storage/io_stats.h"

#include "common/str_util.h"

namespace starshare {

IoStats& IoStats::operator+=(const IoStats& other) {
  seq_pages_read += other.seq_pages_read;
  rand_pages_read += other.rand_pages_read;
  index_pages_read += other.index_pages_read;
  pages_written += other.pages_written;
  cached_pages += other.cached_pages;
  tuples_processed += other.tuples_processed;
  hash_probes += other.hash_probes;
  return *this;
}

IoStats IoStats::operator-(const IoStats& other) const {
  IoStats out;
  out.seq_pages_read = seq_pages_read - other.seq_pages_read;
  out.rand_pages_read = rand_pages_read - other.rand_pages_read;
  out.index_pages_read = index_pages_read - other.index_pages_read;
  out.pages_written = pages_written - other.pages_written;
  out.cached_pages = cached_pages - other.cached_pages;
  out.tuples_processed = tuples_processed - other.tuples_processed;
  out.hash_probes = hash_probes - other.hash_probes;
  return out;
}

std::string IoStats::ToString() const {
  return StrFormat(
      "seq=%llu rand=%llu index=%llu written=%llu cached=%llu tuples=%llu "
      "probes=%llu",
      static_cast<unsigned long long>(seq_pages_read),
      static_cast<unsigned long long>(rand_pages_read),
      static_cast<unsigned long long>(index_pages_read),
      static_cast<unsigned long long>(pages_written),
      static_cast<unsigned long long>(cached_pages),
      static_cast<unsigned long long>(tuples_processed),
      static_cast<unsigned long long>(hash_probes));
}

}  // namespace starshare
