// Columnar table storage with page-exact I/O charging.
//
// Every StarShare table (the base fact table and every materialized
// group-by) has the same shape: k int32 key columns (one per retained
// dimension, holding the member id at the level the table is aggregated to)
// plus m double measure columns. The uncompressed tuple width is therefore
// 4k + 8m bytes (the paper's ~20-byte fact tuples at k = 4, m = 1).
//
// Compressed layout (DESIGN.md §14): when a table is compressed, each key
// column is bit-packed (KeyColumn) and the modeled tuple width shrinks to
// sum(key bits) + 64m bits, so rows_per_page()/num_pages()/PageOfRow() —
// and with them every modeled I/O charge in the engine — drop in exact
// proportion. Packing is lossless, so results are bit-identical across
// layouts; only the page geometry differs.

#ifndef STARSHARE_STORAGE_TABLE_H_
#define STARSHARE_STORAGE_TABLE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "storage/disk_model.h"
#include "storage/packed_column.h"
#include "storage/page.h"

namespace starshare {

class Table {
 public:
  // Single-measure table (the common case).
  Table(std::string name, std::vector<std::string> key_column_names,
        std::string measure_name);

  // Multi-measure table (e.g. a fact table carrying dollars + units).
  Table(std::string name, std::vector<std::string> key_column_names,
        std::vector<std::string> measure_names);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const std::string& name() const { return name_; }

  // Identifier used by the buffer pool; assigned when the table is
  // registered in a Catalog (0 until then).
  uint32_t id() const { return id_; }
  void set_id(uint32_t id) { id_ = id; }

  size_t num_key_columns() const { return key_columns_.size(); }
  const std::string& key_column_name(size_t i) const {
    return key_column_names_[i];
  }

  size_t num_measures() const { return measures_.size(); }
  const std::string& measure_name(size_t m = 0) const {
    return measure_names_[m];
  }

  uint64_t num_rows() const { return measures_[0].size(); }

  // Uncompressed physical tuple width — the 1998 baseline layout.
  uint64_t tuple_width_bytes() const {
    return 4 * num_key_columns() + 8 * num_measures();
  }
  // Width of one tuple in the table's *current* layout, in bits. Compressed
  // tables pay sum(per-column key bits) + 64 per measure; uncompressed
  // tables pay 8 * tuple_width_bytes() exactly, so geometry with
  // compression off is identical to the historical byte-based formula.
  uint64_t tuple_width_bits() const { return tuple_width_bits_; }

  bool compressed() const { return compressed_; }
  // Packs (or unpacks) every key column in place and refreshes the page
  // geometry. Lossless in both directions. Not safe during a concurrent
  // scan of this table.
  void SetCompressed(bool compressed);

  // Cached at every geometry change, so the hot scan/probe loops below pay
  // a load instead of a division per page.
  uint64_t rows_per_page() const { return rows_per_page_; }
  uint64_t num_pages() const {
    // Rows never straddle pages, so geometry is ceil(rows / rows_per_page)
    // (slightly more than the raw byte count suggests).
    return (num_rows() + rows_per_page_ - 1) / rows_per_page_;
  }
  uint64_t PageOfRow(uint64_t row) const { return row / rows_per_page_; }
  uint64_t SizeBytes() const {
    return (num_rows() * tuple_width_bits_ + 7) / 8;
  }

  void Reserve(uint64_t rows);

  // Appends a row to a single-measure table.
  void AppendRow(const int32_t* keys, double measure);
  // Appends a row with one value per measure column.
  void AppendRowM(const int32_t* keys, const double* measures);

  // Bulk adoption for the table_io reader: installs fully-built columns
  // (all the same length) and normalizes their layout to `compressed`, so
  // a v4 file's packed words land without a decode + repack round trip.
  void AdoptColumns(std::vector<KeyColumn> keys,
                    std::vector<std::vector<double>> measures,
                    bool compressed);

  // Key column access for hot loops: Get(row) for gathered probes,
  // ForEach(begin, end, fn) for batch decode (see packed_column.h).
  const KeyColumn& key_column(size_t i) const { return key_columns_[i]; }
  const std::vector<double>& measure_column(size_t m = 0) const {
    return measures_[m];
  }
  int32_t key(size_t col, uint64_t row) const {
    return key_columns_[col].Get(row);
  }
  double measure(uint64_t row, size_t m = 0) const {
    return measures_[m][row];
  }

  // Sequential scan: invokes fn(row_begin, row_end) once per page, charging
  // one sequential page read per page to `disk`.
  template <typename Fn>
  void ScanPages(DiskModel& disk, Fn&& fn) const {
    const uint64_t rpp = rows_per_page_;
    const uint64_t rows = num_rows();
    for (uint64_t begin = 0, page = 0; begin < rows; begin += rpp, ++page) {
      disk.ReadSequential(id_, page);
      fn(begin, std::min(begin + rpp, rows));
    }
  }

  // Sequential scan of the row range [row_begin, row_end): invokes
  // fn(begin, end) once per (partial) page, charging one sequential page
  // read per page touched. Morsel-parallel scans hand page-aligned ranges
  // to workers so every page is charged exactly once across the whole scan
  // (parallel/morsel.h); ScanPages is the whole-table special case.
  template <typename Fn>
  void ScanRowRange(DiskModel& disk, uint64_t row_begin, uint64_t row_end,
                    Fn&& fn) const {
    const uint64_t rpp = rows_per_page_;
    SS_DCHECK(row_end <= num_rows());
    for (uint64_t begin = row_begin; begin < row_end;) {
      const uint64_t page = begin / rpp;
      const uint64_t page_end = std::min((page + 1) * rpp, row_end);
      disk.ReadSequential(id_, page);
      fn(begin, page_end);
      begin = page_end;
    }
  }

  // Random probe of sorted row positions: invokes fn(row) per position,
  // charging one random page read per *distinct* page touched. Positions
  // must be sorted ascending (bitmap iteration yields them sorted).
  template <typename Fn>
  void ProbePositions(DiskModel& disk, std::span<const uint64_t> positions,
                      Fn&& fn) const {
    const uint64_t rpp = rows_per_page_;
    uint64_t last_page = UINT64_MAX;
    for (uint64_t row : positions) {
      SS_DCHECK(row < num_rows());
      const uint64_t page = row / rpp;
      if (page != last_page) {
        SS_DCHECK(last_page == UINT64_MAX || page > last_page);
        disk.ReadRandom(id_, page);
        last_page = page;
      }
      fn(row);
    }
  }

 private:
  void RecomputeGeometry();

  std::string name_;
  uint32_t id_ = 0;
  std::vector<std::string> key_column_names_;
  std::vector<std::string> measure_names_;
  std::vector<KeyColumn> key_columns_;
  std::vector<std::vector<double>> measures_;
  bool compressed_ = false;
  uint64_t tuple_width_bits_ = 64;
  uint64_t rows_per_page_ = 1;
};

}  // namespace starshare

#endif  // STARSHARE_STORAGE_TABLE_H_
