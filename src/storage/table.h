// Columnar table storage with page-exact I/O charging.
//
// Every StarShare table (the base fact table and every materialized
// group-by) has the same shape: k int32 key columns (one per retained
// dimension, holding the member id at the level the table is aggregated to)
// plus m double measure columns. Tuple width is therefore 4k + 8m bytes
// (the paper's ~20-byte fact tuples at k = 4, m = 1).

#ifndef STARSHARE_STORAGE_TABLE_H_
#define STARSHARE_STORAGE_TABLE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "storage/disk_model.h"
#include "storage/page.h"

namespace starshare {

class Table {
 public:
  // Single-measure table (the common case).
  Table(std::string name, std::vector<std::string> key_column_names,
        std::string measure_name);

  // Multi-measure table (e.g. a fact table carrying dollars + units).
  Table(std::string name, std::vector<std::string> key_column_names,
        std::vector<std::string> measure_names);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const std::string& name() const { return name_; }

  // Identifier used by the buffer pool; assigned when the table is
  // registered in a Catalog (0 until then).
  uint32_t id() const { return id_; }
  void set_id(uint32_t id) { id_ = id; }

  size_t num_key_columns() const { return key_columns_.size(); }
  const std::string& key_column_name(size_t i) const {
    return key_column_names_[i];
  }

  size_t num_measures() const { return measures_.size(); }
  const std::string& measure_name(size_t m = 0) const {
    return measure_names_[m];
  }

  uint64_t num_rows() const { return measures_[0].size(); }
  uint64_t tuple_width_bytes() const {
    return 4 * num_key_columns() + 8 * num_measures();
  }
  uint64_t rows_per_page() const {
    return kPageSizeBytes / tuple_width_bytes();
  }
  uint64_t num_pages() const {
    // Rows never straddle pages, so geometry is ceil(rows / rows_per_page)
    // (slightly more than the raw byte count suggests).
    const uint64_t rpp = rows_per_page();
    return (num_rows() + rpp - 1) / rpp;
  }
  uint64_t PageOfRow(uint64_t row) const { return row / rows_per_page(); }
  uint64_t SizeBytes() const { return num_rows() * tuple_width_bytes(); }

  void Reserve(uint64_t rows);

  // Appends a row to a single-measure table.
  void AppendRow(const int32_t* keys, double measure);
  // Appends a row with one value per measure column.
  void AppendRowM(const int32_t* keys, const double* measures);

  // Raw column access for hot loops.
  const std::vector<int32_t>& key_column(size_t i) const {
    return key_columns_[i];
  }
  const std::vector<double>& measure_column(size_t m = 0) const {
    return measures_[m];
  }
  int32_t key(size_t col, uint64_t row) const { return key_columns_[col][row]; }
  double measure(uint64_t row, size_t m = 0) const {
    return measures_[m][row];
  }

  // Sequential scan: invokes fn(row_begin, row_end) once per page, charging
  // one sequential page read per page to `disk`.
  template <typename Fn>
  void ScanPages(DiskModel& disk, Fn&& fn) const {
    const uint64_t rpp = rows_per_page();
    const uint64_t rows = num_rows();
    for (uint64_t begin = 0, page = 0; begin < rows; begin += rpp, ++page) {
      disk.ReadSequential(id_, page);
      fn(begin, std::min(begin + rpp, rows));
    }
  }

  // Sequential scan of the row range [row_begin, row_end): invokes
  // fn(begin, end) once per (partial) page, charging one sequential page
  // read per page touched. Morsel-parallel scans hand page-aligned ranges
  // to workers so every page is charged exactly once across the whole scan
  // (parallel/morsel.h); ScanPages is the whole-table special case.
  template <typename Fn>
  void ScanRowRange(DiskModel& disk, uint64_t row_begin, uint64_t row_end,
                    Fn&& fn) const {
    const uint64_t rpp = rows_per_page();
    SS_DCHECK(row_end <= num_rows());
    for (uint64_t begin = row_begin; begin < row_end;) {
      const uint64_t page = begin / rpp;
      const uint64_t page_end = std::min((page + 1) * rpp, row_end);
      disk.ReadSequential(id_, page);
      fn(begin, page_end);
      begin = page_end;
    }
  }

  // Random probe of sorted row positions: invokes fn(row) per position,
  // charging one random page read per *distinct* page touched. Positions
  // must be sorted ascending (bitmap iteration yields them sorted).
  template <typename Fn>
  void ProbePositions(DiskModel& disk, std::span<const uint64_t> positions,
                      Fn&& fn) const {
    const uint64_t rpp = rows_per_page();
    uint64_t last_page = UINT64_MAX;
    for (uint64_t row : positions) {
      SS_DCHECK(row < num_rows());
      const uint64_t page = row / rpp;
      if (page != last_page) {
        SS_DCHECK(last_page == UINT64_MAX || page > last_page);
        disk.ReadRandom(id_, page);
        last_page = page;
      }
      fn(row);
    }
  }

 private:
  std::string name_;
  uint32_t id_ = 0;
  std::vector<std::string> key_column_names_;
  std::vector<std::string> measure_names_;
  std::vector<std::vector<int32_t>> key_columns_;
  std::vector<std::vector<double>> measures_;
};

}  // namespace starshare

#endif  // STARSHARE_STORAGE_TABLE_H_
