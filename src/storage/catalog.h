// Name -> table registry. Owns all table storage in an engine instance.

#ifndef STARSHARE_STORAGE_CATALOG_H_
#define STARSHARE_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace starshare {

class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Physical layout every registered table is normalized to: Register and
  // Replace pack (or unpack) incoming tables to match, so generator output,
  // view builds, cube loads and attached fact tables all land in the
  // engine-configured layout regardless of how they were built.
  void set_compressed_default(bool compressed) {
    compressed_default_ = compressed;
  }
  bool compressed_default() const { return compressed_default_; }

  // Registers `table` (taking ownership), assigning it a unique id.
  // Fails if a table with the same name already exists.
  Result<Table*> Register(std::unique_ptr<Table> table);

  // Returns the table or nullptr.
  Table* Find(const std::string& name) const;

  // Removes the table with `name` (freeing its storage).
  Status Drop(const std::string& name);

  // Replaces the table of the same name (which must exist), assigning the
  // replacement a fresh id. Used by incremental view maintenance.
  Result<Table*> Replace(std::unique_ptr<Table> table);

  std::vector<std::string> TableNames() const;
  size_t size() const { return tables_.size(); }

  // Total bytes across all registered tables.
  uint64_t TotalBytes() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  uint32_t next_id_ = 1;
  bool compressed_default_ = false;
};

}  // namespace starshare

#endif  // STARSHARE_STORAGE_CATALOG_H_
