// The disk model: converts page counts into modeled milliseconds, and is the
// charging point through which every operator reports its page touches.
//
// Substitution note (see DESIGN.md §2): the paper measured wall-clock time
// on a 1998 disk with cold caches. StarShare's tables are in memory, so raw
// wall time under-weights I/O. Every experiment therefore reports both the
// measured CPU wall time and a modeled time = CPU time + modeled I/O time,
// where modeled I/O time is computed from *exact* page counts with
// 1998-class per-page costs. Both sides of every comparison use the same
// metric, so ratios and crossovers are preserved.

#ifndef STARSHARE_STORAGE_DISK_MODEL_H_
#define STARSHARE_STORAGE_DISK_MODEL_H_

#include <cstdint>

#include "common/fault_injector.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"

namespace starshare {

// Per-page timing constants. Defaults approximate the paper's Quantum
// Fireball-era disk: ~8 MB/s sequential (1 ms per 8 KiB page) and ~10 ms per
// random page (seek + rotational latency).
struct DiskTimings {
  double seq_page_ms = 1.0;
  double rand_page_ms = 10.0;
  double index_page_ms = 1.0;  // bitmap segments are read sequentially
  double write_page_ms = 1.0;

  // Modeled I/O milliseconds for a set of counters.
  double ModeledIoMs(const IoStats& stats) const {
    return static_cast<double>(stats.seq_pages_read) * seq_page_ms +
           static_cast<double>(stats.rand_pages_read) * rand_page_ms +
           static_cast<double>(stats.index_pages_read) * index_page_ms +
           static_cast<double>(stats.pages_written) * write_page_ms;
  }
};

// Charging interface handed to operators. Owns the counters for one
// execution scope; optionally consults a buffer pool so resident pages are
// counted as cache hits instead of disk reads.
class DiskModel {
 public:
  explicit DiskModel(DiskTimings timings = DiskTimings())
      : timings_(timings) {}

  DiskModel(const DiskModel&) = delete;
  DiskModel& operator=(const DiskModel&) = delete;

  void AttachBufferPool(BufferPool* pool) { pool_ = pool; }
  BufferPool* buffer_pool() const { return pool_; }

  // One page read as part of a sequential scan of `table_id`.
  void ReadSequential(uint32_t table_id, uint64_t page) {
    if (FaultInjector::enabled()) MaybeInjectFault("disk.read_seq");
    if (pool_ != nullptr && pool_->Access(table_id, page)) {
      ++stats_.cached_pages;
    } else {
      ++stats_.seq_pages_read;
    }
  }

  // One page read at a random position (bitmap probe).
  void ReadRandom(uint32_t table_id, uint64_t page) {
    if (FaultInjector::enabled()) MaybeInjectFault("disk.read_rand");
    if (pool_ != nullptr && pool_->Access(table_id, page)) {
      ++stats_.cached_pages;
    } else {
      ++stats_.rand_pages_read;
    }
  }

  // `pages` pages of bitmap-index data. Index segments are not cached (they
  // are read once per query in all our plans).
  void ReadIndexPages(uint64_t pages) {
    if (FaultInjector::enabled()) MaybeInjectFault("disk.read_index");
    stats_.index_pages_read += pages;
  }

  void WritePages(uint64_t pages) { stats_.pages_written += pages; }

  void CountTuples(uint64_t n) { stats_.tuples_processed += n; }
  void CountHashProbes(uint64_t n) { stats_.hash_probes += n; }

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats(); }

  const DiskTimings& timings() const { return timings_; }
  double ModeledIoMs() const { return timings_.ModeledIoMs(stats_); }

  // ---- Fault surfacing ----------------------------------------------------
  // The page-touch methods above are called from deep inside scan/probe
  // template loops, so an injected device fault cannot return an error
  // directly; it is latched here and the fallible operator entry points
  // (exec/star_join.h, exec/shared_operators.h) consume it with TakeFault()
  // after the loop. The first fault per scope wins.

  bool has_fault() const { return has_fault_; }

  // Returns and clears the pending fault (OK if none).
  Status TakeFault() {
    if (!has_fault_) return Status::Ok();
    has_fault_ = false;
    Status out = std::move(fault_);
    fault_ = Status();
    return out;
  }

  // Folds a parallel worker's counters into this model and adopts the
  // worker's latched fault if none is pending here (first worker wins —
  // workers are merged in worker-index order by ParallelContext). The
  // worker is reset. Each DiskModel instance is still single-threaded;
  // parallelism comes from giving every worker its own instance.
  void MergeChild(DiskModel& child) {
    stats_ += child.stats_;
    child.stats_ = IoStats();
    if (child.has_fault_) {
      if (!has_fault_) {
        has_fault_ = true;
        fault_ = std::move(child.fault_);
      }
      child.has_fault_ = false;
      child.fault_ = Status();
    }
  }

 private:
  void MaybeInjectFault(const char* site) {
    if (has_fault_) return;
    if (FaultHit(site)) {
      has_fault_ = true;
      fault_ = Status::Unavailable(std::string("injected device fault at ") +
                                   site);
    }
  }

  DiskTimings timings_;
  BufferPool* pool_ = nullptr;
  IoStats stats_;
  bool has_fault_ = false;
  Status fault_;
};

}  // namespace starshare

#endif  // STARSHARE_STORAGE_DISK_MODEL_H_
