// Bit-packed key column storage (DESIGN.md §14).
//
// Member ids are dense int32 domains, so a key column whose values span
// [min, max] needs only width = ceil(log2(max - min + 1)) bits per value.
// KeyColumn stores values either raw (a plain int32 vector, the layout every
// table starts in) or packed: frame-of-reference deltas `value - ref` (ref =
// the minimum observed value, so zero-based domains pack with ref 0) laid
// out little-endian across 64-bit words. Packing is lossless — Get/ForEach
// return exactly the appended values in either mode — which is what makes
// the engine-wide bit-identity invariant hold.
//
// Thread-safety: all read paths (Get, ForEach, Decode, accessors) are const
// and touch no mutable state, so concurrent morsel workers may decode the
// same column freely. Mutation (Append/Pack/Unpack/Reserve) requires
// external exclusion, same as std::vector.

#ifndef STARSHARE_STORAGE_PACKED_COLUMN_H_
#define STARSHARE_STORAGE_PACKED_COLUMN_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace starshare {

class KeyColumn {
 public:
  KeyColumn() = default;

  uint64_t size() const { return size_; }
  bool packed() const { return packed_; }

  // Packed-layout parameters. `bits` is the per-value width the column
  // occupies in the compressed page geometry (and in file format v4);
  // meaningful only when packed. An empty packed column is 1 bit wide.
  uint32_t bits() const { return bits_; }
  int32_t ref() const { return static_cast<int32_t>(ref_); }

  void Reserve(uint64_t rows);
  void Append(int32_t value);

  // Value at `row` (packed: two-word straddle extraction; the words array
  // always carries one sentinel word past the payload so the second load is
  // in bounds even for the final value).
  int32_t Get(uint64_t row) const {
    if (!packed_) return raw_[row];
    const uint64_t pos = row * bits_;
    const uint64_t off = pos & 63;
    uint64_t v = words_[pos >> 6] >> off;
    if (off + bits_ > 64) v |= words_[(pos >> 6) + 1] << (64 - off);
    return static_cast<int32_t>(ref_ + static_cast<int64_t>(v & mask_));
  }

  // Invokes fn(row, value) for each row in [begin, end), decoding
  // word-at-a-time from the packed words in the hot layout. This is the
  // batch kernel entry point: vectorized operators hand it a batch range
  // and a lambda writing into batch-local arrays or folding directly.
  template <typename Fn>
  void ForEach(uint64_t begin, uint64_t end, Fn&& fn) const {
    if (!packed_) {
      const int32_t* data = raw_.data();
      for (uint64_t i = begin; i < end; ++i) fn(i, data[i]);
      return;
    }
    const uint64_t bits = bits_;
    const uint64_t mask = mask_;
    const int64_t ref = ref_;
    const uint64_t* words = words_.data();
    uint64_t pos = begin * bits;
    for (uint64_t i = begin; i < end; ++i, pos += bits) {
      const uint64_t off = pos & 63;
      uint64_t v = words[pos >> 6] >> off;
      if (off + bits > 64) v |= words[(pos >> 6) + 1] << (64 - off);
      fn(i, static_cast<int32_t>(ref + static_cast<int64_t>(v & mask)));
    }
  }

  // Decodes [begin, end) into out[0 .. end-begin).
  void Decode(uint64_t begin, uint64_t end, int32_t* out) const {
    ForEach(begin, end, [&](uint64_t i, int32_t v) { out[i - begin] = v; });
  }

  // Switches layout in place. Both are lossless; Pack picks ref = min
  // observed value and bits = ceil(log2(range + 1)) (>= 1 even for a
  // constant or empty column, so geometry never divides by zero).
  void Pack();
  void Unpack();

  // Packed words including the sentinel; num_words() is the payload length
  // persisted by table file format v4 (ceil(size * bits / 64)).
  const std::vector<uint64_t>& words() const { return words_; }
  uint64_t num_words() const { return (size_ * bits_ + 63) / 64; }

  // Rebuilds a packed column from persisted geometry + payload words
  // (table_io v4 reader). `words` holds exactly ceil(rows * bits / 64)
  // payload words; the sentinel is re-added here.
  static KeyColumn FromPacked(uint64_t rows, uint32_t bits, int32_t ref,
                              std::vector<uint64_t> words);

  // Adopts a raw int32 vector wholesale (table_io v2/v3 reader), scanning
  // once for the min/max a later Pack() needs.
  static KeyColumn FromRaw(std::vector<int32_t> values);

  uint64_t MemoryBytes() const {
    return packed_ ? words_.capacity() * 8 : raw_.capacity() * 4;
  }

 private:
  // Appends `value` to the packed words without range checks; caller
  // guarantees value - ref_ fits in bits_.
  void PackedAppend(int32_t value);
  // Re-derives bits_/mask_/ref_ from the observed min/max.
  void RecomputeWidth();

  bool packed_ = false;
  uint64_t size_ = 0;
  std::vector<int32_t> raw_;
  std::vector<uint64_t> words_;  // payload + >= 1 sentinel word when packed
  uint32_t bits_ = 1;
  uint64_t mask_ = 1;
  // Observed value range, tracked in both layouts so Pack() and widening
  // repacks never rescan. int64 so conservative bounds from FromPacked
  // (ref .. ref + mask) cannot overflow int32 arithmetic.
  int64_t ref_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  bool any_ = false;  // false until the first Append seeds min_/max_
};

}  // namespace starshare

#endif  // STARSHARE_STORAGE_PACKED_COLUMN_H_
