#include "storage/table_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/str_util.h"

namespace starshare {
namespace {

constexpr char kMagic[4] = {'S', 'S', 'T', 'B'};
constexpr uint32_t kVersion = 2;

// RAII FILE handle.
struct FileCloser {
  void operator()(FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<FILE, FileCloser>;

bool WriteBytes(FILE* f, const void* data, size_t n) {
  if (n == 0) return true;  // empty columns have null data()
  return std::fwrite(data, 1, n, f) == n;
}

bool WriteU32(FILE* f, uint32_t v) { return WriteBytes(f, &v, 4); }
bool WriteU64(FILE* f, uint64_t v) { return WriteBytes(f, &v, 8); }

bool WriteString(FILE* f, const std::string& s) {
  return WriteU32(f, static_cast<uint32_t>(s.size())) &&
         WriteBytes(f, s.data(), s.size());
}

bool ReadBytes(FILE* f, void* data, size_t n) {
  if (n == 0) return true;
  return std::fread(data, 1, n, f) == n;
}

bool ReadU32(FILE* f, uint32_t* v) { return ReadBytes(f, v, 4); }
bool ReadU64(FILE* f, uint64_t* v) { return ReadBytes(f, v, 8); }

bool ReadString(FILE* f, std::string* s) {
  uint32_t len = 0;
  if (!ReadU32(f, &len)) return false;
  if (len > (1u << 20)) return false;  // sanity: 1 MiB name limit
  s->resize(len);
  return ReadBytes(f, s->data(), len);
}

}  // namespace

Status WriteTableFile(const Table& table, const std::string& path) {
  File file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  FILE* f = file.get();
  bool ok = WriteBytes(f, kMagic, 4) && WriteU32(f, kVersion) &&
            WriteString(f, table.name()) &&
            WriteU32(f, static_cast<uint32_t>(table.num_measures()));
  for (size_t m = 0; ok && m < table.num_measures(); ++m) {
    ok = WriteString(f, table.measure_name(m));
  }
  ok = ok && WriteU32(f, static_cast<uint32_t>(table.num_key_columns()));
  for (size_t c = 0; ok && c < table.num_key_columns(); ++c) {
    ok = WriteString(f, table.key_column_name(c));
  }
  ok = ok && WriteU64(f, table.num_rows());
  for (size_t c = 0; ok && c < table.num_key_columns(); ++c) {
    const auto& col = table.key_column(c);
    ok = WriteBytes(f, col.data(), col.size() * sizeof(int32_t));
  }
  for (size_t m = 0; ok && m < table.num_measures(); ++m) {
    const auto& col = table.measure_column(m);
    ok = WriteBytes(f, col.data(), col.size() * sizeof(double));
  }
  if (!ok) return Status::Internal("short write to " + path);
  return Status::Ok();
}

Result<std::unique_ptr<Table>> ReadTableFile(const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open: " + path);
  }
  FILE* f = file.get();

  char magic[4];
  uint32_t version = 0;
  if (!ReadBytes(f, magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a StarShare table file: " + path);
  }
  if (!ReadU32(f, &version) || version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported table file version %u in %s", version,
                  path.c_str()));
  }
  std::string name;
  uint32_t num_measures = 0;
  if (!ReadString(f, &name) || !ReadU32(f, &num_measures) ||
      num_measures == 0 || num_measures > 64) {
    return Status::InvalidArgument("corrupt table header in " + path);
  }
  std::vector<std::string> measure_names(num_measures);
  for (auto& measure_name : measure_names) {
    if (!ReadString(f, &measure_name)) {
      return Status::InvalidArgument("corrupt measure names in " + path);
    }
  }
  uint32_t num_keys = 0;
  if (!ReadU32(f, &num_keys) || num_keys > 64) {
    return Status::InvalidArgument("corrupt table header in " + path);
  }
  std::vector<std::string> key_names(num_keys);
  for (auto& key_name : key_names) {
    if (!ReadString(f, &key_name)) {
      return Status::InvalidArgument("corrupt column names in " + path);
    }
  }
  uint64_t rows = 0;
  if (!ReadU64(f, &rows)) {
    return Status::InvalidArgument("corrupt row count in " + path);
  }

  auto table = std::make_unique<Table>(name, key_names, measure_names);
  std::vector<std::vector<int32_t>> cols(num_keys);
  for (auto& col : cols) {
    col.resize(rows);
    if (!ReadBytes(f, col.data(), rows * sizeof(int32_t))) {
      return Status::InvalidArgument("truncated key column in " + path);
    }
  }
  std::vector<std::vector<double>> measures(num_measures);
  for (auto& col : measures) {
    col.resize(rows);
    if (!ReadBytes(f, col.data(), rows * sizeof(double))) {
      return Status::InvalidArgument("truncated measure column in " + path);
    }
  }
  table->Reserve(rows);
  std::vector<int32_t> key(num_keys);
  std::vector<double> values(num_measures);
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < num_keys; ++c) key[c] = cols[c][r];
    for (uint32_t m = 0; m < num_measures; ++m) values[m] = measures[m][r];
    table->AppendRowM(key.data(), values.data());
  }
  return table;
}

}  // namespace starshare
