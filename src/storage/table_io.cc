#include "storage/table_io.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/crc32.h"
#include "common/fault_injector.h"
#include "common/str_util.h"

namespace starshare {
namespace {

constexpr char kMagic[4] = {'S', 'S', 'T', 'B'};

// RAII FILE handle.
struct FileCloser {
  void operator()(FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<FILE, FileCloser>;

// ---- Writing --------------------------------------------------------------

bool WriteBytes(FILE* f, const void* data, size_t n) {
  if (FaultHit("table_io.write")) return false;
  if (n == 0) return true;  // empty columns have null data()
  return std::fwrite(data, 1, n, f) == n;
}

bool WriteU32(FILE* f, uint32_t v) { return WriteBytes(f, &v, 4); }

// Header serialization shared by the writer (to a buffer, so it can be
// checksummed) and nothing else; the reader re-derives the same byte stream
// from its individual field reads.
void AppendU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), 4);
}
void AppendU64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), 8);
}
void AppendString(std::string& out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

// ---- Reading --------------------------------------------------------------

// Wraps the FILE with fault injection and CRC accumulation. Reads at the
// "table_io.read" site may fail outright (kError), come up short
// (kShortRead) or silently flip one bit of the destination buffer
// (kBitFlip); the flipped data is what gets checksummed, exactly as if the
// corruption happened on disk or in transit.
class Reader {
 public:
  explicit Reader(FILE* f) : f_(f) {}

  bool Read(void* data, size_t n) {
    const std::optional<FaultKind> fault = FaultHit("table_io.read");
    if (fault == FaultKind::kError) {
      transient_ = true;
      return false;
    }
    if (fault == FaultKind::kShortRead) {
      if (n > 0) std::fread(data, 1, n - 1, f_);
      transient_ = true;
      return false;
    }
    if (n > 0 && std::fread(data, 1, n, f_) != n) return false;
    if (fault == FaultKind::kBitFlip && n > 0) {
      const uint64_t bit = FaultInjector::Instance().NextBitIndex(n);
      static_cast<uint8_t*>(data)[bit / 8] ^=
          static_cast<uint8_t>(1u << (bit % 8));
    }
    crc_.Update(data, n);
    return true;
  }

  bool ReadU32(uint32_t* v) { return Read(v, 4); }
  bool ReadU64(uint64_t* v) { return Read(v, 8); }

  bool ReadString(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (len > (1u << 20)) return false;  // sanity: 1 MiB name limit
    s->resize(len);
    return Read(s->data(), len);
  }

  // CRC of everything Read since the last TakeCrc/ResetCrc, then resets.
  uint32_t TakeCrc() {
    const uint32_t v = crc_.value();
    crc_.Reset();
    return v;
  }
  void ResetCrc() { crc_.Reset(); }

  // True when the last failed Read was an injected transient fault rather
  // than end-of-file / a real stream error.
  bool transient() const { return transient_; }

  FILE* file() const { return f_; }

 private:
  FILE* f_;
  Crc32Accumulator crc_;
  bool transient_ = false;
};

// Maps a failed read to the right error for the format version: injected
// transient faults are kUnavailable (retryable); otherwise a v3 file that
// opened and identified correctly but cannot be read to the end is corrupt,
// while v2 keeps its historical kInvalidArgument classification.
Status ReadFailure(const Reader& reader, uint32_t version,
                   const std::string& what, const std::string& path) {
  if (reader.transient()) {
    return Status::Unavailable("transient read fault in " + what + " of " +
                               path);
  }
  if (version >= kTableFileV3) {
    return Status::Corruption("truncated or unreadable " + what + " in " +
                              path);
  }
  return Status::InvalidArgument("corrupt " + what + " in " + path);
}

Result<std::unique_ptr<Table>> ReadTableFileOnce(const std::string& path) {
  if (FaultHit("table_io.open")) {
    return Status::Unavailable("injected open fault for " + path);
  }
  File file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open: " + path);
  }
  Reader reader(file.get());

  char magic[4];
  uint32_t version = 0;
  if (!reader.Read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    if (reader.transient()) {
      return Status::Unavailable("transient read fault in magic of " + path);
    }
    return Status::InvalidArgument("not a StarShare table file: " + path);
  }
  if (!reader.ReadU32(&version) ||
      (version != kTableFileV2 && version != kTableFileV3 &&
       version != kTableFileV4)) {
    if (reader.transient()) {
      return Status::Unavailable("transient read fault in version of " +
                                 path);
    }
    return Status::InvalidArgument(
        StrFormat("unsupported table file version %u in %s", version,
                  path.c_str()));
  }

  reader.ResetCrc();  // the header CRC covers every byte after the version
  std::string name;
  uint32_t num_measures = 0;
  if (!reader.ReadString(&name) || !reader.ReadU32(&num_measures) ||
      num_measures == 0 || num_measures > 64) {
    return ReadFailure(reader, version, "table header", path);
  }
  std::vector<std::string> measure_names(num_measures);
  for (auto& measure_name : measure_names) {
    if (!reader.ReadString(&measure_name)) {
      return ReadFailure(reader, version, "measure names", path);
    }
  }
  uint32_t num_keys = 0;
  if (!reader.ReadU32(&num_keys) || num_keys > 64) {
    return ReadFailure(reader, version, "table header", path);
  }
  std::vector<std::string> key_names(num_keys);
  for (auto& key_name : key_names) {
    if (!reader.ReadString(&key_name)) {
      return ReadFailure(reader, version, "column names", path);
    }
  }
  uint64_t rows = 0;
  if (!reader.ReadU64(&rows)) {
    return ReadFailure(reader, version, "row count", path);
  }
  if (rows > (uint64_t{1} << 40)) {
    return version >= kTableFileV3
               ? Status::Corruption("implausible row count in " + path)
               : Status::InvalidArgument("implausible row count in " + path);
  }

  // v4: per-key-column packed geometry (covered by the header CRC).
  std::vector<uint32_t> key_bits(num_keys, 0);
  std::vector<int32_t> key_refs(num_keys, 0);
  if (version >= kTableFileV4) {
    for (size_t c = 0; c < num_keys; ++c) {
      if (!reader.ReadU32(&key_bits[c]) ||
          !reader.Read(&key_refs[c], 4)) {
        return ReadFailure(reader, version, "key geometry", path);
      }
      if (key_bits[c] < 1 || key_bits[c] > 32) {
        return Status::Corruption(
            StrFormat("implausible key width %u bits in %s", key_bits[c],
                      path.c_str()));
      }
    }
  }

  if (version >= kTableFileV3) {
    const uint32_t computed = reader.TakeCrc();
    uint32_t stored = 0;
    if (!reader.ReadU32(&stored)) {
      return ReadFailure(reader, version, "header checksum", path);
    }
    if (stored != computed) {
      return Status::Corruption("header checksum mismatch in " + path);
    }
    // Header-validated row count: the declared geometry must match the file
    // size exactly, so a torn or truncated file fails fast, before any
    // column allocation.
    const long header_end = std::ftell(reader.file());
    if (header_end >= 0 && std::fseek(reader.file(), 0, SEEK_END) == 0) {
      const long file_size = std::ftell(reader.file());
      uint64_t key_section_bytes = 0;
      for (size_t c = 0; c < num_keys; ++c) {
        key_section_bytes +=
            version >= kTableFileV4
                ? (rows * key_bits[c] + 63) / 64 * 8 + 4
                : rows * 4 + 4;
      }
      const uint64_t expected = static_cast<uint64_t>(header_end) +
                                key_section_bytes +
                                uint64_t{num_measures} * (rows * 8 + 4);
      if (file_size < 0 || static_cast<uint64_t>(file_size) != expected) {
        return Status::Corruption(
            StrFormat("row count/file size mismatch in %s (declared %llu "
                      "rows; torn or truncated file?)",
                      path.c_str(),
                      static_cast<unsigned long long>(rows)));
      }
      if (std::fseek(reader.file(), header_end, SEEK_SET) != 0) {
        return Status::Unavailable("seek failed in " + path);
      }
    }
  }

  auto table = std::make_unique<Table>(name, key_names, measure_names);
  std::vector<KeyColumn> cols;
  cols.reserve(num_keys);
  for (size_t c = 0; c < num_keys; ++c) {
    reader.ResetCrc();
    if (version >= kTableFileV4) {
      std::vector<uint64_t> words((rows * key_bits[c] + 63) / 64);
      if (!reader.Read(words.data(), words.size() * sizeof(uint64_t))) {
        return ReadFailure(reader, version, "key column", path);
      }
      const uint32_t computed = reader.TakeCrc();
      uint32_t stored = 0;
      if (!reader.ReadU32(&stored)) {
        return ReadFailure(reader, version, "key column checksum", path);
      }
      if (stored != computed) {
        return Status::Corruption(
            StrFormat("checksum mismatch in key column %zu of %s", c,
                      path.c_str()));
      }
      cols.push_back(KeyColumn::FromPacked(rows, key_bits[c], key_refs[c],
                                           std::move(words)));
      continue;
    }
    std::vector<int32_t> col(rows);
    if (!reader.Read(col.data(), rows * sizeof(int32_t))) {
      return ReadFailure(reader, version, "key column", path);
    }
    if (version >= kTableFileV3) {
      const uint32_t computed = reader.TakeCrc();
      uint32_t stored = 0;
      if (!reader.ReadU32(&stored)) {
        return ReadFailure(reader, version, "key column checksum", path);
      }
      if (stored != computed) {
        return Status::Corruption(
            StrFormat("checksum mismatch in key column %zu of %s", c,
                      path.c_str()));
      }
    }
    cols.push_back(KeyColumn::FromRaw(std::move(col)));
  }
  std::vector<std::vector<double>> measures(num_measures);
  for (size_t m = 0; m < num_measures; ++m) {
    auto& col = measures[m];
    col.resize(rows);
    reader.ResetCrc();
    if (!reader.Read(col.data(), rows * sizeof(double))) {
      return ReadFailure(reader, version, "measure column", path);
    }
    if (version >= kTableFileV3) {
      const uint32_t computed = reader.TakeCrc();
      uint32_t stored = 0;
      if (!reader.ReadU32(&stored)) {
        return ReadFailure(reader, version, "measure column checksum", path);
      }
      if (stored != computed) {
        return Status::Corruption(
            StrFormat("checksum mismatch in measure column %zu of %s", m,
                      path.c_str()));
      }
    }
  }
  // Adopt the columns wholesale: a v4 file's packed words become the
  // compressed in-memory layout without a decode + repack round trip.
  table->AdoptColumns(std::move(cols), std::move(measures),
                      version >= kTableFileV4);
  return table;
}

}  // namespace

Status WriteTableFile(const Table& table, const std::string& path,
                      uint32_t version) {
  if (version == kTableFileVersionAuto) {
    version = table.compressed() ? kTableFileV4 : kTableFileV3;
  }
  SS_CHECK_MSG(version >= kTableFileV2 && version <= kTableFileV4,
               "unsupported table file version %u", version);
  File file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  FILE* f = file.get();

  // Any version can be written from any in-memory layout: v4 packs raw
  // columns into scratch copies; v2/v3 decode packed columns into scratch
  // raw buffers. The common cases (layout matches version) copy nothing
  // beyond the column handle.
  std::vector<KeyColumn> scratch_packed;
  if (version >= kTableFileV4) {
    scratch_packed.reserve(table.num_key_columns());
    for (size_t c = 0; c < table.num_key_columns(); ++c) {
      KeyColumn col = table.key_column(c);
      col.Pack();
      scratch_packed.push_back(std::move(col));
    }
  }

  std::string header;
  AppendString(header, table.name());
  AppendU32(header, static_cast<uint32_t>(table.num_measures()));
  for (size_t m = 0; m < table.num_measures(); ++m) {
    AppendString(header, table.measure_name(m));
  }
  AppendU32(header, static_cast<uint32_t>(table.num_key_columns()));
  for (size_t c = 0; c < table.num_key_columns(); ++c) {
    AppendString(header, table.key_column_name(c));
  }
  AppendU64(header, table.num_rows());
  if (version >= kTableFileV4) {
    for (const KeyColumn& col : scratch_packed) {
      AppendU32(header, col.bits());
      AppendU32(header, static_cast<uint32_t>(col.ref()));
    }
  }

  bool ok = WriteBytes(f, kMagic, 4) && WriteU32(f, version) &&
            WriteBytes(f, header.data(), header.size());
  if (version >= kTableFileV3) {
    ok = ok && WriteU32(f, Crc32(header.data(), header.size()));
  }
  for (size_t c = 0; ok && c < table.num_key_columns(); ++c) {
    if (version >= kTableFileV4) {
      const KeyColumn& col = scratch_packed[c];
      const size_t bytes = col.num_words() * sizeof(uint64_t);
      ok = WriteBytes(f, col.words().data(), bytes) &&
           WriteU32(f, Crc32(col.words().data(), bytes));
      continue;
    }
    const KeyColumn& col = table.key_column(c);
    std::vector<int32_t> raw(col.size());
    col.Decode(0, col.size(), raw.data());
    const size_t bytes = raw.size() * sizeof(int32_t);
    ok = WriteBytes(f, raw.data(), bytes);
    if (version >= kTableFileV3) {
      ok = ok && WriteU32(f, Crc32(raw.data(), bytes));
    }
  }
  for (size_t m = 0; ok && m < table.num_measures(); ++m) {
    const auto& col = table.measure_column(m);
    const size_t bytes = col.size() * sizeof(double);
    ok = WriteBytes(f, col.data(), bytes);
    if (version >= kTableFileV3) {
      ok = ok && WriteU32(f, Crc32(col.data(), bytes));
    }
  }
  if (!ok) return Status::Internal("short write to " + path);
  if (std::fflush(f) != 0) {
    return Status::Internal("flush failed for " + path);
  }
  return Status::Ok();
}

Result<std::unique_ptr<Table>> ReadTableFile(const std::string& path,
                                             const TableReadOptions& options) {
  const int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  Status last;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 && options.backoff_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.backoff_ms << (attempt - 1)));
    }
    Result<std::unique_ptr<Table>> r = ReadTableFileOnce(path);
    if (r.ok()) return r;
    last = r.status();
    // Permanent classifications are returned immediately; kUnavailable and
    // kCorruption may be transient (in-transit damage) and get retried.
    if (last.code() != StatusCode::kUnavailable &&
        last.code() != StatusCode::kCorruption) {
      return last;
    }
  }
  return last;
}

}  // namespace starshare
