#include "storage/table.h"

#include <utility>

namespace starshare {

Table::Table(std::string name, std::vector<std::string> key_column_names,
             std::string measure_name)
    : Table(std::move(name), std::move(key_column_names),
            std::vector<std::string>{std::move(measure_name)}) {}

Table::Table(std::string name, std::vector<std::string> key_column_names,
             std::vector<std::string> measure_names)
    : name_(std::move(name)),
      key_column_names_(std::move(key_column_names)),
      measure_names_(std::move(measure_names)) {
  // Zero key columns is legal: the grand-total group-by "()" has a single
  // measure cell and no keys. At least one measure is required.
  SS_CHECK_MSG(!measure_names_.empty(), "table %s needs >= 1 measure",
               name_.c_str());
  key_columns_.resize(key_column_names_.size());
  measures_.resize(measure_names_.size());
}

void Table::Reserve(uint64_t rows) {
  for (auto& col : key_columns_) col.reserve(rows);
  for (auto& col : measures_) col.reserve(rows);
}

void Table::AppendRow(const int32_t* keys, double measure) {
  SS_DCHECK(measures_.size() == 1);
  AppendRowM(keys, &measure);
}

void Table::AppendRowM(const int32_t* keys, const double* measures) {
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    key_columns_[i].push_back(keys[i]);
  }
  for (size_t m = 0; m < measures_.size(); ++m) {
    measures_[m].push_back(measures[m]);
  }
}

}  // namespace starshare
