#include "storage/table.h"

#include <utility>

namespace starshare {

Table::Table(std::string name, std::vector<std::string> key_column_names,
             std::string measure_name)
    : Table(std::move(name), std::move(key_column_names),
            std::vector<std::string>{std::move(measure_name)}) {}

Table::Table(std::string name, std::vector<std::string> key_column_names,
             std::vector<std::string> measure_names)
    : name_(std::move(name)),
      key_column_names_(std::move(key_column_names)),
      measure_names_(std::move(measure_names)) {
  // Zero key columns is legal: the grand-total group-by "()" has a single
  // measure cell and no keys. At least one measure is required.
  SS_CHECK_MSG(!measure_names_.empty(), "table %s needs >= 1 measure",
               name_.c_str());
  key_columns_.resize(key_column_names_.size());
  measures_.resize(measure_names_.size());
  RecomputeGeometry();
}

void Table::RecomputeGeometry() {
  uint64_t bits = 64 * num_measures();
  if (compressed_) {
    for (const KeyColumn& col : key_columns_) bits += col.bits();
  } else {
    bits += 32 * num_key_columns();
  }
  tuple_width_bits_ = bits;
  // With compression off this is exactly the historical byte formula:
  // floor(8 * 8192 / (8 * w)) == floor(8192 / w) for the byte width w.
  rows_per_page_ =
      std::max<uint64_t>(1, kPageSizeBytes * 8 / tuple_width_bits_);
}

void Table::SetCompressed(bool compressed) {
  if (compressed_ == compressed) return;
  compressed_ = compressed;
  for (KeyColumn& col : key_columns_) {
    if (compressed) {
      col.Pack();
    } else {
      col.Unpack();
    }
  }
  RecomputeGeometry();
}

void Table::AdoptColumns(std::vector<KeyColumn> keys,
                         std::vector<std::vector<double>> measures,
                         bool compressed) {
  SS_CHECK(keys.size() == key_columns_.size());
  SS_CHECK(measures.size() == measures_.size());
  const uint64_t rows = measures[0].size();
  for (const auto& key_col : keys) SS_CHECK(key_col.size() == rows);
  for (const auto& measure_col : measures) {
    SS_CHECK(measure_col.size() == rows);
  }
  key_columns_ = std::move(keys);
  measures_ = std::move(measures);
  compressed_ = compressed;
  for (KeyColumn& col : key_columns_) {
    if (compressed) {
      col.Pack();
    } else {
      col.Unpack();
    }
  }
  RecomputeGeometry();
}

void Table::Reserve(uint64_t rows) {
  for (auto& col : key_columns_) col.Reserve(rows);
  for (auto& col : measures_) col.reserve(rows);
}

void Table::AppendRow(const int32_t* keys, double measure) {
  SS_DCHECK(measures_.size() == 1);
  AppendRowM(keys, &measure);
}

void Table::AppendRowM(const int32_t* keys, const double* measures) {
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    key_columns_[i].Append(keys[i]);
  }
  for (size_t m = 0; m < measures_.size(); ++m) {
    measures_[m].push_back(measures[m]);
  }
  // An append can widen a packed column (out-of-domain key), so compressed
  // geometry is refreshed per append; bulk loads build raw and pack once.
  if (compressed_) RecomputeGeometry();
}

}  // namespace starshare
