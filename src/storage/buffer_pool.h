// A small LRU page cache.
//
// The paper flushed both the OS and Paradise buffers before every test, so
// StarShare's executor defaults to running *cold* (no pool attached). The
// pool exists for the buffer-size ablation bench and for workloads that
// legitimately re-read a base table (e.g. TPLO plans that scan the same view
// twice without sharing).
//
// The pool is internally locked: one pool may be shared by the per-worker
// DiskModels of a parallel scan (parallel/parallel_context.h). Which worker
// scores a given hit depends on thread interleaving, so per-scope cached
// page attribution is only deterministic in single-threaded runs.

#ifndef STARSHARE_STORAGE_BUFFER_POOL_H_
#define STARSHARE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

namespace starshare {

class BufferPool {
 public:
  // `capacity_pages` == 0 means the pool never retains anything.
  explicit BufferPool(uint64_t capacity_pages)
      : capacity_pages_(capacity_pages) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Records an access to page `page` of table `table_id`. Returns true if
  // the page was resident (a cache hit); either way the page becomes the
  // most recently used and may evict the LRU page.
  bool Access(uint32_t table_id, uint64_t page);

  // Drops all resident pages (the "flush caches" the paper performs).
  void Clear();

  uint64_t capacity_pages() const { return capacity_pages_; }
  uint64_t resident_pages() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  // 32-bit table id in the high bits, page index in the low bits.
  static uint64_t Key(uint32_t table_id, uint64_t page) {
    return (static_cast<uint64_t>(table_id) << 40) | page;
  }

  mutable std::mutex mu_;
  uint64_t capacity_pages_;
  std::list<uint64_t> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace starshare

#endif  // STARSHARE_STORAGE_BUFFER_POOL_H_
