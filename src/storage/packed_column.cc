#include "storage/packed_column.h"

#include <utility>

namespace starshare {

void KeyColumn::Reserve(uint64_t rows) {
  if (packed_) {
    words_.reserve((rows * bits_ + 63) / 64 + 1);
  } else {
    raw_.reserve(rows);
  }
}

void KeyColumn::RecomputeWidth() {
  ref_ = any_ ? min_ : 0;
  const uint64_t range =
      any_ ? static_cast<uint64_t>(max_ - min_) : 0;
  bits_ = range == 0 ? 1 : static_cast<uint32_t>(std::bit_width(range));
  mask_ = bits_ == 64 ? ~uint64_t{0} : (uint64_t{1} << bits_) - 1;
}

void KeyColumn::PackedAppend(int32_t value) {
  const uint64_t delta = static_cast<uint64_t>(value - ref_);
  const uint64_t pos = size_ * bits_;
  const uint64_t w = pos >> 6;
  const uint64_t off = pos & 63;
  // Keep the straddle word plus one sentinel allocated past the write.
  while (words_.size() < w + 2) words_.push_back(0);
  words_[w] |= delta << off;
  if (off + bits_ > 64) words_[w + 1] |= delta >> (64 - off);
  ++size_;
}

void KeyColumn::Append(int32_t value) {
  if (!any_ || value < min_) min_ = value;
  if (!any_ || value > max_) max_ = value;
  any_ = true;
  if (!packed_) {
    raw_.push_back(value);
    ++size_;
    return;
  }
  const int64_t delta = value - ref_;
  if (delta >= 0 && static_cast<uint64_t>(delta) <= mask_) {
    PackedAppend(value);
    return;
  }
  // Out-of-range value: widen by repacking the whole column at the new
  // frame of reference. Rare (appends normally stay within the domain the
  // column was packed with), and O(n) when it happens.
  Unpack();
  raw_.push_back(value);
  ++size_;
  Pack();
}

void KeyColumn::Pack() {
  if (packed_) return;
  RecomputeWidth();
  std::vector<int32_t> raw = std::move(raw_);
  raw_.clear();
  words_.assign((raw.size() * bits_ + 63) / 64 + 1, 0);
  packed_ = true;
  size_ = 0;
  for (const int32_t v : raw) PackedAppend(v);
}

void KeyColumn::Unpack() {
  if (!packed_) return;
  std::vector<int32_t> raw;
  raw.resize(size_);
  Decode(0, size_, raw.data());
  words_.clear();
  words_.shrink_to_fit();
  raw_ = std::move(raw);
  packed_ = false;
}

KeyColumn KeyColumn::FromRaw(std::vector<int32_t> values) {
  KeyColumn col;
  col.size_ = values.size();
  for (const int32_t v : values) {
    if (!col.any_ || v < col.min_) col.min_ = v;
    if (!col.any_ || v > col.max_) col.max_ = v;
    col.any_ = true;
  }
  col.raw_ = std::move(values);
  return col;
}

KeyColumn KeyColumn::FromPacked(uint64_t rows, uint32_t bits, int32_t ref,
                                std::vector<uint64_t> words) {
  SS_CHECK_MSG(bits >= 1 && bits <= 32,
               "implausible packed key width %u bits", bits);
  SS_CHECK(words.size() == (rows * bits + 63) / 64);
  KeyColumn col;
  col.packed_ = true;
  col.size_ = rows;
  col.bits_ = bits;
  col.mask_ = (uint64_t{1} << bits) - 1;
  col.ref_ = ref;
  // Conservative range: the persisted geometry can represent
  // [ref, ref + mask], so later appends in that window stay O(1) and a
  // widening repack never narrows below the on-disk width.
  col.min_ = ref;
  col.max_ = ref + static_cast<int64_t>(col.mask_);
  col.any_ = rows > 0;
  words.push_back(0);  // sentinel for straddle loads
  col.words_ = std::move(words);
  return col;
}

}  // namespace starshare
