#include "storage/catalog.h"

#include <algorithm>

namespace starshare {

Result<Table*> Catalog::Register(std::unique_ptr<Table> table) {
  SS_CHECK(table != nullptr);
  const std::string& name = table->name();
  if (tables_.contains(name)) {
    return Status::InvalidArgument("table already exists: " + name);
  }
  table->set_id(next_id_++);
  table->SetCompressed(compressed_default_);
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  return raw;
}

Table* Catalog::Find(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Catalog::Drop(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no such table: " + name);
  }
  return Status::Ok();
}

Result<Table*> Catalog::Replace(std::unique_ptr<Table> table) {
  SS_CHECK(table != nullptr);
  if (!tables_.contains(table->name())) {
    return Status::NotFound("cannot replace missing table: " + table->name());
  }
  table->set_id(next_id_++);
  table->SetCompressed(compressed_default_);
  Table* raw = table.get();
  tables_[raw->name()] = std::move(table);
  return raw;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

uint64_t Catalog::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [_, table] : tables_) total += table->SizeBytes();
  return total;
}

}  // namespace starshare
