// Page geometry shared by the storage layer, the indexes and the cost model.
//
// StarShare tables live in memory, but all I/O-sensitive operators account
// their work in 8 KiB pages exactly as a disk-resident system would: a
// sequential scan touches every page of a table once; a bitmap-index probe
// touches the distinct pages containing matching tuples. The optimizer's
// cost model and the executor's IoStats use the same geometry, so estimated
// and measured page counts are directly comparable (and tested to be).

#ifndef STARSHARE_STORAGE_PAGE_H_
#define STARSHARE_STORAGE_PAGE_H_

#include <cstdint>

namespace starshare {

// Logical page size, in bytes. 8 KiB matches the paper-era Paradise setup.
inline constexpr uint64_t kPageSizeBytes = 8192;

// Number of pages needed to hold `bytes` bytes (at least 1 for non-empty).
inline constexpr uint64_t PagesForBytes(uint64_t bytes) {
  return (bytes + kPageSizeBytes - 1) / kPageSizeBytes;
}

}  // namespace starshare

#endif  // STARSHARE_STORAGE_PAGE_H_
