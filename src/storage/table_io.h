// Binary table persistence: a compact little-endian format holding the
// schema header and column arrays. Used by Engine::SaveCube/LoadCube so a
// generated-and-aggregated cube can be reused across runs instead of being
// rebuilt.
//
// Format (version 4, the current writer):
//   magic   "SSTB"                      4 bytes
//   version u32
//   name                                length-prefixed string (u32 + bytes)
//   m       u32                         number of measures
//   measure names                       m length-prefixed strings
//   k       u32                         number of key columns
//   key column names                    k length-prefixed strings
//   rows    u64
//   key geometry (v4 only)              k x (bits u32 + ref i32)
//   header CRC32 u32                    over every header byte after version
//   key columns                         v4: k x (ceil(rows*bits/64) u64
//                                       packed words + CRC32 u32)
//                                       v2/v3: k x (rows x int32 raw
//                                       [+ CRC32 u32 in v3])
//   measure columns                     m x (rows x double raw + CRC32 u32)
//
// v4 persists each key column bit-packed (storage/packed_column.h): values
// are frame-of-reference deltas `value - ref` at `bits` per value, packed
// little-endian across 64-bit words — the same words the compressed
// in-memory layout uses, so a v4 load adopts them without a repack.
//
// The reader validates the header CRC, cross-checks the declared geometry
// against the file size, and validates each column section's CRC, so a
// torn, truncated or bit-flipped file surfaces as StatusCode::kCorruption
// instead of an abort or silently wrong data. Version-2 files (no
// checksums) and version-3 files (raw checksummed columns) still load for
// backward compatibility.

#ifndef STARSHARE_STORAGE_TABLE_IO_H_
#define STARSHARE_STORAGE_TABLE_IO_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace starshare {

// Writable format versions. kTableFileVersionAuto (the WriteTableFile
// default) matches the table's in-memory layout: v4 for compressed tables,
// v3 for raw ones — so an engine with compression off keeps producing
// byte-identical v3 files.
inline constexpr uint32_t kTableFileVersionAuto = 0;
inline constexpr uint32_t kTableFileV2 = 2;
inline constexpr uint32_t kTableFileV3 = 3;
inline constexpr uint32_t kTableFileV4 = 4;
inline constexpr uint32_t kTableFileVersionLatest = kTableFileV4;

// Retry policy for ReadTableFile. Transient faults (kUnavailable — e.g. a
// failed fread or fopen that may succeed on retry) and corruption (which a
// re-read heals when the damage happened in transit rather than at rest)
// are retried up to `max_attempts` total attempts with exponential backoff
// starting at `backoff_ms`. kNotFound / kInvalidArgument are permanent and
// never retried.
struct TableReadOptions {
  int max_attempts = 3;
  int backoff_ms = 1;
};

// Writes `table` to `path`, replacing any existing file. Any version can be
// written from any in-memory layout (columns are packed or decoded on the
// fly as needed).
Status WriteTableFile(const Table& table, const std::string& path,
                      uint32_t version = kTableFileVersionAuto);

// Reads a table previously written by WriteTableFile (any supported
// version). The returned table's layout matches the file (v4 → compressed);
// Catalog registration normalizes it to the engine's configured default.
Result<std::unique_ptr<Table>> ReadTableFile(
    const std::string& path, const TableReadOptions& options = {});

}  // namespace starshare

#endif  // STARSHARE_STORAGE_TABLE_IO_H_
