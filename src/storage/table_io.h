// Binary table persistence: a compact little-endian format holding the
// schema header and raw column arrays. Used by Engine::SaveCube/LoadCube so
// a generated-and-aggregated cube can be reused across runs instead of
// being rebuilt.
//
// Format (version 3, the current writer):
//   magic   "SSTB"                      4 bytes
//   version u32
//   name                                length-prefixed string (u32 + bytes)
//   m       u32                         number of measures
//   measure names                       m length-prefixed strings
//   k       u32                         number of key columns
//   key column names                    k length-prefixed strings
//   rows    u64
//   header CRC32 u32                    over every header byte after version
//   key columns                         k x (rows x int32 raw + CRC32 u32)
//   measure columns                     m x (rows x double raw + CRC32 u32)
//
// The reader validates the header CRC, cross-checks the declared row count
// against the file size, and validates each column section's CRC, so a
// torn, truncated or bit-flipped file surfaces as StatusCode::kCorruption
// instead of an abort or silently wrong data. Version-2 files (no
// checksums) still load for backward compatibility.

#ifndef STARSHARE_STORAGE_TABLE_IO_H_
#define STARSHARE_STORAGE_TABLE_IO_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace starshare {

// The version WriteTableFile emits by default; kTableFileV2 is the legacy
// checksum-free format, still writable for compatibility tests.
inline constexpr uint32_t kTableFileV2 = 2;
inline constexpr uint32_t kTableFileV3 = 3;
inline constexpr uint32_t kTableFileVersionLatest = kTableFileV3;

// Retry policy for ReadTableFile. Transient faults (kUnavailable — e.g. a
// failed fread or fopen that may succeed on retry) and corruption (which a
// re-read heals when the damage happened in transit rather than at rest)
// are retried up to `max_attempts` total attempts with exponential backoff
// starting at `backoff_ms`. kNotFound / kInvalidArgument are permanent and
// never retried.
struct TableReadOptions {
  int max_attempts = 3;
  int backoff_ms = 1;
};

// Writes `table` to `path`, replacing any existing file.
Status WriteTableFile(const Table& table, const std::string& path,
                      uint32_t version = kTableFileVersionLatest);

// Reads a table previously written by WriteTableFile (any supported
// version).
Result<std::unique_ptr<Table>> ReadTableFile(
    const std::string& path, const TableReadOptions& options = {});

}  // namespace starshare

#endif  // STARSHARE_STORAGE_TABLE_IO_H_
