// Binary table persistence: a compact little-endian format holding the
// schema header and raw column arrays. Used by Engine::SaveCube/LoadCube so
// a generated-and-aggregated cube can be reused across runs instead of
// being rebuilt.
//
// Format (version 2):
//   magic   "SSTB"                      4 bytes
//   version u32
//   name                                length-prefixed string (u32 + bytes)
//   m       u32                         number of measures
//   measure names                       m length-prefixed strings
//   k       u32                         number of key columns
//   key column names                    k length-prefixed strings
//   rows    u64
//   key columns                         k x rows x int32 (raw)
//   measure columns                     m x rows x double (raw)

#ifndef STARSHARE_STORAGE_TABLE_IO_H_
#define STARSHARE_STORAGE_TABLE_IO_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace starshare {

// Writes `table` to `path`, replacing any existing file.
Status WriteTableFile(const Table& table, const std::string& path);

// Reads a table previously written by WriteTableFile.
Result<std::unique_ptr<Table>> ReadTableFile(const std::string& path);

}  // namespace starshare

#endif  // STARSHARE_STORAGE_TABLE_IO_H_
