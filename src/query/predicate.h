// Selection predicates of dimensional queries.
//
// MDX queries restrict each dimension independently ("A'' = A1 or A'' = A2",
// "B' in CHILDREN(B''.B2)"), so a query predicate is a conjunction of
// per-dimension member-set predicates; different queries of one MDX
// expression have *disjoint* predicates (paper §2), which is why classic
// common-selection multi-query optimization does not apply and base-table
// sharing does.

#ifndef STARSHARE_QUERY_PREDICATE_H_
#define STARSHARE_QUERY_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "schema/groupby_spec.h"
#include "schema/star_schema.h"

namespace starshare {

// "member of dimension `dim` at `level` is in `members`".
struct DimPredicate {
  size_t dim = 0;
  int level = 0;
  std::vector<int32_t> members;  // kept sorted and deduplicated

  // Sorts + dedups `members`.
  void Normalize();

  // True if a key at `key_level` (<= level) of the dimension maps up into
  // the member set.
  bool Matches(const Hierarchy& hierarchy, int key_level, int32_t key) const;

  // |members| / cardinality(level): the fraction of base tuples passing,
  // assuming uniform keys.
  double Selectivity(const Hierarchy& hierarchy) const;

  // Member set expanded down to `to_level` (<= level), sorted.
  std::vector<int32_t> MembersAtLevel(const Hierarchy& hierarchy,
                                      int to_level) const;

  std::string ToString(const StarSchema& schema) const;

  bool operator==(const DimPredicate& other) const = default;
};

// Conjunction of per-dimension predicates (at most one entry per dimension).
class QueryPredicate {
 public:
  QueryPredicate() = default;

  // Adds `pred` to the conjunction. If the dimension is already restricted,
  // both predicates are expanded to the finer of the two levels and
  // intersected (the conjunction semantics).
  void AddConjunct(const Hierarchy& hierarchy, DimPredicate pred);

  const std::vector<DimPredicate>& conjuncts() const { return conjuncts_; }
  bool empty() const { return conjuncts_.empty(); }

  // The predicate on `dim`, or nullptr if unrestricted.
  const DimPredicate* ForDim(size_t dim) const;

  // True if a full base-level key tuple satisfies every conjunct.
  bool MatchesBaseRow(const StarSchema& schema,
                      const int32_t* base_keys) const;

  // Product of per-dimension selectivities.
  double Selectivity(const StarSchema& schema) const;

  // Per dimension, the level the predicate constrains (all_level if none).
  int ConstraintLevel(const StarSchema& schema, size_t dim) const;

  std::string ToString(const StarSchema& schema) const;

  bool operator==(const QueryPredicate& other) const = default;

 private:
  std::vector<DimPredicate> conjuncts_;
};

}  // namespace starshare

#endif  // STARSHARE_QUERY_PREDICATE_H_
