// The CUBE/ROLLUP query form (Gray et al., referenced from PAPERS.md): one
// request naming d (dimension, level) pairs that expands into the group-by
// lattice — 2^d component group-bys for WITH CUBE, the d+1 prefix chain for
// WITH ROLLUP. Each component is an ordinary DimensionalQuery sharing the
// request's predicate, aggregate and measure, so the whole lattice is just
// a related-query batch the §5/§6 optimizers already know how to share;
// cube/lattice.h adds the parent scheduling on top.

#ifndef STARSHARE_QUERY_CUBE_QUERY_H_
#define STARSHARE_QUERY_CUBE_QUERY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/predicate.h"
#include "query/query.h"
#include "schema/star_schema.h"

namespace starshare {

enum class CubeForm {
  kCube,    // every subset of the cubed dimensions
  kRollup,  // prefixes only, dropping the last dimension first
};

const char* CubeFormName(CubeForm form);  // "CUBE" / "ROLLUP"

class CubeQuery {
 public:
  CubeQuery() = default;
  // `dims`/`levels` are parallel: cube dimension i is schema dimension
  // dims[i] grouped at levels[i]. Their order matters for ROLLUP (prefix
  // order) and fixes the expansion order for CUBE. The predicate applies to
  // every lattice level (FILTER slicers and axis member restrictions both
  // land here).
  CubeQuery(CubeForm form, std::vector<size_t> dims, std::vector<int> levels,
            QueryPredicate predicate, AggOp agg = AggOp::kSum,
            size_t measure = 0)
      : form_(form),
        dims_(std::move(dims)),
        levels_(std::move(levels)),
        predicate_(std::move(predicate)),
        agg_(agg),
        measure_(measure) {}

  CubeForm form() const { return form_; }
  const std::vector<size_t>& dims() const { return dims_; }
  const std::vector<int>& levels() const { return levels_; }
  const QueryPredicate& predicate() const { return predicate_; }
  AggOp agg() const { return agg_; }
  size_t measure() const { return measure_; }

  // Number of component group-bys the expansion produces.
  size_t NumLevels() const {
    return form_ == CubeForm::kCube ? (size_t{1} << dims_.size())
                                    : dims_.size() + 1;
  }

  // Shape checks: at least one dimension, no duplicates, dims/levels in
  // range, and (CUBE only) at most kMaxCubeDims dimensions so the 2^d
  // expansion stays sane.
  Status Validate(const StarSchema& schema) const;

  // Expands into the lattice's component queries with ids first_id,
  // first_id + 1, ...: finest level (all dimensions retained / the full
  // prefix) first, the grand total last. CUBE orders levels by descending
  // retained count, ties broken by dimension order, so every level's
  // potential parents always precede it; ROLLUP walks the prefixes from
  // longest to empty. Each query's label is its target spec string.
  Result<std::vector<DimensionalQuery>> ExpandLevels(const StarSchema& schema,
                                                     int first_id) const;

  // "CUBE(A', B) WHERE ..." display form.
  std::string ToString(const StarSchema& schema) const;

  static constexpr size_t kMaxCubeDims = 10;

 private:
  CubeForm form_ = CubeForm::kCube;
  std::vector<size_t> dims_;
  std::vector<int> levels_;
  QueryPredicate predicate_;
  AggOp agg_ = AggOp::kSum;
  size_t measure_ = 0;
};

}  // namespace starshare

#endif  // STARSHARE_QUERY_CUBE_QUERY_H_
