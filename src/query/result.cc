#include "query/result.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace starshare {

void QueryResult::AddRow(std::vector<int32_t> keys, double value) {
  rows_.push_back(Row{std::move(keys), value});
}

void QueryResult::Canonicalize() {
  std::sort(rows_.begin(), rows_.end(),
            [](const Row& a, const Row& b) { return a.keys < b.keys; });
}

double QueryResult::TotalValue() const {
  double total = 0;
  for (const auto& row : rows_) total += row.value;
  return total;
}

bool QueryResult::ApproxEquals(const QueryResult& other,
                               double tolerance) const {
  if (rows_.size() != other.rows_.size()) return false;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].keys != other.rows_[i].keys) return false;
    const double diff = std::fabs(rows_[i].value - other.rows_[i].value);
    const double scale =
        std::max(1.0, std::fabs(rows_[i].value) + std::fabs(other.rows_[i].value));
    if (diff > tolerance * scale) return false;
  }
  return true;
}

std::string QueryResult::ToCsv(const StarSchema& schema) const {
  std::string out;
  const auto retained = target_.RetainedDims(schema);
  std::vector<std::string> header;
  for (size_t d : retained) {
    header.push_back(schema.dim(d).LevelName(target_.level(d)));
  }
  header.push_back(StrFormat("%s_%s", AggOpName(agg_),
                             schema.measure_name().c_str()));
  out += StrJoin(header, ",") + "\n";
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    for (size_t i = 0; i < retained.size(); ++i) {
      cells.push_back(schema.dim(retained[i])
                          .MemberName(target_.level(retained[i]),
                                      row.keys[i]));
    }
    cells.push_back(StrFormat("%.17g", row.value));
    out += StrJoin(cells, ",") + "\n";
  }
  return out;
}

std::string QueryResult::ToString(const StarSchema& schema,
                                  size_t max_rows) const {
  std::string out;
  const auto retained = target_.RetainedDims(schema);
  std::vector<std::string> header;
  for (size_t d : retained) {
    header.push_back(schema.dim(d).LevelName(target_.level(d)));
  }
  header.push_back(StrFormat("%s(%s)", AggOpName(agg_),
                             schema.measure_name().c_str()));
  out += StrJoin(header, " | ") + "\n";
  size_t shown = 0;
  for (const auto& row : rows_) {
    if (shown++ >= max_rows) {
      out += StrFormat("... (%zu more rows)\n", rows_.size() - max_rows);
      break;
    }
    std::vector<std::string> cells;
    for (size_t i = 0; i < retained.size(); ++i) {
      cells.push_back(schema.dim(retained[i])
                          .MemberName(target_.level(retained[i]), row.keys[i]));
    }
    cells.push_back(StrFormat("%.2f", row.value));
    out += StrJoin(cells, " | ") + "\n";
  }
  return out;
}

}  // namespace starshare
