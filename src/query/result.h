// Query results: one row per group, canonically sorted so results from
// different evaluation strategies compare exactly.

#ifndef STARSHARE_QUERY_RESULT_H_
#define STARSHARE_QUERY_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query.h"
#include "schema/star_schema.h"

namespace starshare {

class QueryResult {
 public:
  struct Row {
    std::vector<int32_t> keys;  // member ids at the target levels, in
                                // retained-dimension order
    double value = 0;
  };

  QueryResult() = default;
  QueryResult(GroupBySpec target, AggOp agg)
      : target_(std::move(target)), agg_(agg) {}

  const GroupBySpec& target() const { return target_; }
  AggOp agg() const { return agg_; }
  // Relabels the aggregate without touching the rows. The CUBE/ROLLUP path
  // computes a COUNT rollup as a SUM of the parent's per-group counts (the
  // values are the counts), then restores the user-facing label here.
  void set_agg(AggOp agg) { agg_ = agg; }

  void AddRow(std::vector<int32_t> keys, double value);

  // Sorts rows lexicographically by keys. Must be called before comparisons.
  void Canonicalize();

  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }

  // Sum of all aggregate values (a cheap whole-result checksum).
  double TotalValue() const;

  // Exact key match and |value difference| <= tolerance per row.
  bool ApproxEquals(const QueryResult& other, double tolerance = 1e-6) const;

  // Pretty table; prints at most `max_rows` rows.
  std::string ToString(const StarSchema& schema, size_t max_rows = 20) const;

  // CSV with a header row; member ids rendered as member names. Values
  // printed with enough digits to round-trip doubles.
  std::string ToCsv(const StarSchema& schema) const;

 private:
  GroupBySpec target_;
  AggOp agg_ = AggOp::kSum;
  std::vector<Row> rows_;
};

}  // namespace starshare

#endif  // STARSHARE_QUERY_RESULT_H_
