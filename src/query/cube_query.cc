#include "query/cube_query.h"

#include <algorithm>
#include <bit>

#include "common/str_util.h"

namespace starshare {

const char* CubeFormName(CubeForm form) {
  return form == CubeForm::kCube ? "CUBE" : "ROLLUP";
}

Status CubeQuery::Validate(const StarSchema& schema) const {
  if (dims_.empty()) {
    return Status::InvalidArgument("cube query with no dimensions");
  }
  if (dims_.size() != levels_.size()) {
    return Status::InvalidArgument(
        "cube query: dims and levels differ in length");
  }
  if (form_ == CubeForm::kCube && dims_.size() > kMaxCubeDims) {
    return Status::InvalidArgument(
        StrFormat("cube query: %zu dimensions exceed the CUBE limit of %zu "
                  "(the expansion is 2^d group-bys)",
                  dims_.size(), kMaxCubeDims));
  }
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i] >= schema.num_dims()) {
      return Status::InvalidArgument(
          StrFormat("cube query: dimension index %zu out of range", dims_[i]));
    }
    const Hierarchy& h = schema.dim(dims_[i]);
    if (levels_[i] < 0 || levels_[i] >= h.num_levels()) {
      return Status::InvalidArgument(
          StrFormat("cube query: level %d out of range for dimension %s",
                    levels_[i], h.dim_name().c_str()));
    }
    for (size_t j = 0; j < i; ++j) {
      if (dims_[j] == dims_[i]) {
        return Status::InvalidArgument(
            StrFormat("cube query: dimension %s named twice",
                      h.dim_name().c_str()));
      }
    }
  }
  return Status::Ok();
}

Result<std::vector<DimensionalQuery>> CubeQuery::ExpandLevels(
    const StarSchema& schema, int first_id) const {
  Status valid = Validate(schema);
  if (!valid.ok()) return valid;

  const size_t d = dims_.size();
  std::vector<uint64_t> masks;  // bit i set <=> dims_[i] retained
  masks.reserve(NumLevels());
  if (form_ == CubeForm::kCube) {
    for (uint64_t m = 0; m < (uint64_t{1} << d); ++m) masks.push_back(m);
    std::stable_sort(masks.begin(), masks.end(),
                     [](uint64_t a, uint64_t b) {
                       const int pa = std::popcount(a);
                       const int pb = std::popcount(b);
                       if (pa != pb) return pa > pb;
                       return a < b;
                     });
  } else {
    for (size_t k = d + 1; k-- > 0;) {
      masks.push_back((uint64_t{1} << k) - 1);
    }
  }

  std::vector<int> all_levels(schema.num_dims());
  for (size_t dim = 0; dim < schema.num_dims(); ++dim) {
    all_levels[dim] = schema.dim(dim).all_level();
  }

  std::vector<DimensionalQuery> out;
  out.reserve(masks.size());
  for (size_t idx = 0; idx < masks.size(); ++idx) {
    GroupBySpec target(all_levels);
    for (size_t i = 0; i < d; ++i) {
      if ((masks[idx] >> i) & 1) target.set_level(dims_[i], levels_[i]);
    }
    std::string label = target.ToString(schema);
    out.emplace_back(first_id + static_cast<int>(idx), std::move(label),
                     std::move(target), predicate_, agg_, measure_);
  }
  return out;
}

std::string CubeQuery::ToString(const StarSchema& schema) const {
  std::string out = CubeFormName(form_);
  out += '(';
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.dim(dims_[i]).LevelName(levels_[i]);
  }
  out += ')';
  if (!predicate_.empty()) {
    out += " WHERE ";
    out += predicate_.ToString(schema);
  }
  out += StrFormat(" [%s(m%zu)]", AggOpName(agg_), measure_);
  return out;
}

}  // namespace starshare
