#include "query/predicate.h"

#include <algorithm>

#include "common/str_util.h"

namespace starshare {

void DimPredicate::Normalize() {
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
}

bool DimPredicate::Matches(const Hierarchy& hierarchy, int key_level,
                           int32_t key) const {
  SS_DCHECK(key_level <= level);
  const int32_t mapped = hierarchy.MapUp(key_level, level, key);
  return std::binary_search(members.begin(), members.end(), mapped);
}

double DimPredicate::Selectivity(const Hierarchy& hierarchy) const {
  const double card = hierarchy.cardinality(level);
  return static_cast<double>(members.size()) / card;
}

std::vector<int32_t> DimPredicate::MembersAtLevel(const Hierarchy& hierarchy,
                                                  int to_level) const {
  SS_CHECK(to_level <= level);
  if (to_level == level) return members;
  std::vector<int32_t> out;
  for (int32_t m : members) {
    auto desc = hierarchy.DescendantsAtLevel(level, m, to_level);
    out.insert(out.end(), desc.begin(), desc.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string DimPredicate::ToString(const StarSchema& schema) const {
  const Hierarchy& h = schema.dim(dim);
  std::vector<std::string> names;
  names.reserve(members.size());
  for (int32_t m : members) names.push_back(h.MemberName(level, m));
  return h.LevelName(level) + " IN {" + StrJoin(names, ", ") + "}";
}

void QueryPredicate::AddConjunct(const Hierarchy& hierarchy,
                                 DimPredicate pred) {
  pred.Normalize();
  for (auto& existing : conjuncts_) {
    if (existing.dim != pred.dim) continue;
    // Conjunction on one dimension: expand both to the finer level and
    // intersect.
    const int fine = std::min(existing.level, pred.level);
    std::vector<int32_t> a = existing.MembersAtLevel(hierarchy, fine);
    std::vector<int32_t> b = pred.MembersAtLevel(hierarchy, fine);
    std::vector<int32_t> both;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(both));
    existing.level = fine;
    existing.members = std::move(both);
    return;
  }
  conjuncts_.push_back(std::move(pred));
}

const DimPredicate* QueryPredicate::ForDim(size_t dim) const {
  for (const auto& p : conjuncts_) {
    if (p.dim == dim) return &p;
  }
  return nullptr;
}

bool QueryPredicate::MatchesBaseRow(const StarSchema& schema,
                                    const int32_t* base_keys) const {
  for (const auto& p : conjuncts_) {
    if (!p.Matches(schema.dim(p.dim), /*key_level=*/0, base_keys[p.dim])) {
      return false;
    }
  }
  return true;
}

double QueryPredicate::Selectivity(const StarSchema& schema) const {
  double sel = 1.0;
  for (const auto& p : conjuncts_) sel *= p.Selectivity(schema.dim(p.dim));
  return sel;
}

int QueryPredicate::ConstraintLevel(const StarSchema& schema,
                                    size_t dim) const {
  const DimPredicate* p = ForDim(dim);
  return p == nullptr ? schema.dim(dim).all_level() : p->level;
}

std::string QueryPredicate::ToString(const StarSchema& schema) const {
  if (conjuncts_.empty()) return "TRUE";
  std::vector<std::string> parts;
  parts.reserve(conjuncts_.size());
  for (const auto& p : conjuncts_) parts.push_back(p.ToString(schema));
  return StrJoin(parts, " AND ");
}

}  // namespace starshare
