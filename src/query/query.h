// A component dimensional query of an MDX expression: a target group-by plus
// a conjunctive per-dimension selection (paper §2). In relational terms, a
// select-star-join over the fact (or materialized aggregate) table followed
// by aggregation at the target hierarchy levels.

#ifndef STARSHARE_QUERY_QUERY_H_
#define STARSHARE_QUERY_QUERY_H_

#include <string>

#include "query/predicate.h"
#include "schema/groupby_spec.h"

namespace starshare {

enum class AggOp {
  kSum,
  kCount,
  kMin,
  kMax,
  kAvg,
};

const char* AggOpName(AggOp op);

class DimensionalQuery {
 public:
  DimensionalQuery() = default;
  DimensionalQuery(int id, std::string label, GroupBySpec target,
                   QueryPredicate predicate, AggOp agg = AggOp::kSum,
                   size_t measure = 0)
      : id_(id),
        label_(std::move(label)),
        target_(std::move(target)),
        predicate_(std::move(predicate)),
        agg_(agg),
        measure_(measure) {}

  int id() const { return id_; }
  const std::string& label() const { return label_; }
  const GroupBySpec& target() const { return target_; }
  const QueryPredicate& predicate() const { return predicate_; }
  AggOp agg() const { return agg_; }
  // Which measure column of the fact table / views this query aggregates.
  size_t measure() const { return measure_; }

  // The coarsest granularity a table must retain to answer this query:
  // per dimension, min(target level, predicate constraint level). A view V
  // can answer the query iff V.spec().CanAnswer(RequiredSpec()).
  GroupBySpec RequiredSpec(const StarSchema& schema) const;

  // Fraction of base tuples passing the selection.
  double Selectivity(const StarSchema& schema) const;

  // Estimated number of result groups: capped product of (restricted member
  // counts at the target level per dimension).
  uint64_t EstimatedGroups(const StarSchema& schema) const;

  std::string ToString(const StarSchema& schema) const;

  // The equivalent SQL over the star schema — the paper's §2 reading of a
  // component query as a select-star-join + group-by:
  //
  //   SELECT Adim.A_lvl1, SUM(F.dollars)
  //   FROM F, Adim, Ddim
  //   WHERE F.A = Adim.A AND F.D = Ddim.D
  //     AND Adim.A_lvl1 IN ('AA1', 'AA2') AND Ddim.D_lvl1 = 'DD1'
  //   GROUP BY Adim.A_lvl1
  //
  // `fact_table` names the FROM table. Dimension tables join only when the
  // dimension is grouped or restricted. Custom level names are used when
  // the hierarchy has them; otherwise columns are written Dim_lvlN.
  std::string ToSql(const StarSchema& schema,
                    const std::string& fact_table = "F") const;

 private:
  int id_ = 0;
  std::string label_;
  GroupBySpec target_;
  QueryPredicate predicate_;
  AggOp agg_ = AggOp::kSum;
  size_t measure_ = 0;
};

}  // namespace starshare

#endif  // STARSHARE_QUERY_QUERY_H_
