#include "query/query.h"

#include <algorithm>

#include "common/str_util.h"

namespace starshare {

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kSum:
      return "SUM";
    case AggOp::kCount:
      return "COUNT";
    case AggOp::kMin:
      return "MIN";
    case AggOp::kMax:
      return "MAX";
    case AggOp::kAvg:
      return "AVG";
  }
  return "?";
}

GroupBySpec DimensionalQuery::RequiredSpec(const StarSchema& schema) const {
  std::vector<int> levels(schema.num_dims());
  for (size_t d = 0; d < schema.num_dims(); ++d) {
    levels[d] =
        std::min(target_.level(d), predicate_.ConstraintLevel(schema, d));
  }
  return GroupBySpec(std::move(levels));
}

double DimensionalQuery::Selectivity(const StarSchema& schema) const {
  return predicate_.Selectivity(schema);
}

uint64_t DimensionalQuery::EstimatedGroups(const StarSchema& schema) const {
  uint64_t groups = 1;
  for (size_t d = 0; d < schema.num_dims(); ++d) {
    const int g = target_.level(d);
    if (g >= schema.dim(d).all_level()) continue;
    const DimPredicate* p = predicate_.ForDim(d);
    uint64_t dim_groups;
    if (p == nullptr) {
      dim_groups = schema.dim(d).cardinality(g);
    } else if (p->level >= g) {
      // Selection at-or-above the output level: the passing members expand
      // to descendants at the output level.
      dim_groups = p->members.size();
      for (int l = p->level - 1; l >= g; --l) {
        dim_groups *= schema.dim(d).cardinality(l) /
                      schema.dim(d).cardinality(l + 1);
      }
    } else {
      // Selection below the output level (cannot arise from MDX expansion,
      // but stay safe): at most one group per passing member's ancestor.
      dim_groups = std::min<uint64_t>(p->members.size(),
                                      schema.dim(d).cardinality(g));
    }
    groups *= dim_groups;
  }
  return groups;
}

namespace {

// SQL-safe column name for a hierarchy level: the custom level name when
// set, else Dim_lvlN (the primed forms contain quote characters).
std::string SqlLevelColumn(const Hierarchy& h, int level) {
  if (level == 0) return h.dim_name();
  const std::string name = h.LevelName(level);
  if (name != h.PrimedLevelName(level)) return name;  // custom name
  return h.dim_name() + "_lvl" + std::to_string(level);
}

std::string SqlQuote(const std::string& text) {
  std::string out = "'";
  for (char c : text) {
    if (c == '\'') out += "''";
    out += c;
  }
  out += "'";
  return out;
}

}  // namespace

std::string DimensionalQuery::ToSql(const StarSchema& schema,
                                    const std::string& fact_table) const {
  std::vector<std::string> select_cols;
  std::vector<std::string> from_tables = {fact_table};
  std::vector<std::string> join_conds;
  std::vector<std::string> filters;
  std::vector<std::string> group_cols;

  for (size_t d = 0; d < schema.num_dims(); ++d) {
    const Hierarchy& h = schema.dim(d);
    const int g = target_.level(d);
    const DimPredicate* pred = predicate_.ForDim(d);
    const bool grouped = g < h.all_level();
    if (!grouped && pred == nullptr) continue;

    const std::string dim_table = h.dim_name() + "dim";
    from_tables.push_back(dim_table);
    join_conds.push_back(fact_table + "." + h.dim_name() + " = " +
                         dim_table + "." + h.dim_name());
    if (grouped) {
      const std::string col = dim_table + "." + SqlLevelColumn(h, g);
      select_cols.push_back(col);
      group_cols.push_back(col);
    }
    if (pred != nullptr) {
      std::vector<std::string> names;
      names.reserve(pred->members.size());
      for (int32_t m : pred->members) {
        names.push_back(SqlQuote(h.MemberName(pred->level, m)));
      }
      const std::string col =
          dim_table + "." + SqlLevelColumn(h, pred->level);
      filters.push_back(names.size() == 1
                            ? col + " = " + names[0]
                            : col + " IN (" + StrJoin(names, ", ") + ")");
    }
  }

  select_cols.push_back(StrFormat("%s(%s.%s)", AggOpName(agg_),
                                  fact_table.c_str(),
                                  schema.measure_name(measure_).c_str()));
  std::string sql = "SELECT " + StrJoin(select_cols, ", ") + "\nFROM " +
                    StrJoin(from_tables, ", ");
  std::vector<std::string> where = join_conds;
  where.insert(where.end(), filters.begin(), filters.end());
  if (!where.empty()) sql += "\nWHERE " + StrJoin(where, "\n  AND ");
  if (!group_cols.empty()) sql += "\nGROUP BY " + StrJoin(group_cols, ", ");
  return sql;
}

std::string DimensionalQuery::ToString(const StarSchema& schema) const {
  return StrFormat("Q%d[%s]: %s(%s) GROUP BY %s WHERE %s", id_,
                   label_.c_str(), AggOpName(agg_),
                   schema.measure_name(measure_).c_str(),
                   target_.ToString(schema).c_str(),
                   predicate_.ToString(schema).c_str());
}

}  // namespace starshare
