// Checked-assertion macros used across StarShare.
//
// StarShare does not use exceptions. Internal invariant violations abort with
// a readable message (SS_CHECK); fallible public operations return
// starshare::Status / starshare::Result instead (see common/status.h).

#ifndef STARSHARE_COMMON_MACROS_H_
#define STARSHARE_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Aborts the process with a message when `condition` is false. Active in all
// build types: the invariants it protects (page math, lattice containment,
// plan well-formedness) are cheap relative to the work around them.
#define SS_CHECK(condition)                                                  \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "SS_CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #condition);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

// Like SS_CHECK but with a printf-style explanation appended.
#define SS_CHECK_MSG(condition, ...)                                         \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "SS_CHECK failed at %s:%d: %s: ", __FILE__,       \
                   __LINE__, #condition);                                    \
      std::fprintf(stderr, __VA_ARGS__);                                     \
      std::fprintf(stderr, "\n");                                            \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

// Debug-only check for hot paths.
#ifdef NDEBUG
#define SS_DCHECK(condition) \
  do {                       \
  } while (false)
#else
#define SS_DCHECK(condition) SS_CHECK(condition)
#endif

#endif  // STARSHARE_COMMON_MACROS_H_
