// Deterministic fault injection for robustness testing.
//
// Production code is threaded with *named injection sites* (e.g.
// "table_io.read", "disk.read_seq", "exec.bind_query"). A test arms a site
// with a FaultSpec — fail with probability p, or on exactly the Nth hit —
// and the code under test observes an injected I/O error, short read or
// bit-flip at that point. Everything is driven by one explicit seed, so a
// failing schedule replays exactly.
//
// The injector is OFF by default and costs one relaxed atomic load per site
// when disabled (see FaultHit below); no site allocates, locks or draws
// random numbers unless a test called FaultInjector::Enable. When enabled,
// Hit/Arm/counter reads serialize on one internal mutex, so sites may fire
// concurrently from morsel-parallel workers (src/parallel/); the hit and
// fire counts stay exact, while *which* worker observes the Nth hit of a
// countdown spec depends on thread interleaving. Enable/Disable must not
// race with in-flight instrumented work.
//
// Site names in use are catalogued in DESIGN.md ("Failure model & fault
// injection").

#ifndef STARSHARE_COMMON_FAULT_INJECTOR_H_
#define STARSHARE_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/rng.h"

namespace starshare {

enum class FaultKind : uint8_t {
  kError,      // the operation fails outright (fopen/fread/... error)
  kShortRead,  // the read returns fewer bytes than requested
  kBitFlip,    // the read succeeds but one bit of the buffer is flipped
};

const char* FaultKindName(FaultKind kind);

// When a site fires. Exactly one trigger applies: `countdown >= 1` fires on
// that (1-based) matching hit only; otherwise every matching hit fires with
// `probability`. `key` restricts the spec to hits carrying the same key
// (operators pass the query id); kAnyKey matches every hit. `max_fires`
// bounds the total number of fires (-1 = unbounded).
struct FaultSpec {
  static constexpr int64_t kAnyKey = -1;

  FaultKind kind = FaultKind::kError;
  double probability = 1.0;
  int64_t countdown = -1;
  int64_t key = kAnyKey;
  int64_t max_fires = -1;
};

class FaultInjector {
 public:
  // The process-wide injector (tests and sites share one schedule).
  static FaultInjector& Instance();

  // Arms the injector: resets the RNG to `seed`, clears all site specs and
  // counters. Until Disable() is called, armed sites may fire.
  void Enable(uint64_t seed);

  // Disarms everything and restores the zero-cost disabled state.
  void Disable();

  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Arms (or re-arms) one site. Enable() must have been called.
  void Arm(const std::string& site, FaultSpec spec);
  void Disarm(const std::string& site);

  // Called by instrumented code at a site. Returns the fault kind to
  // inject, or nullopt. Prefer the free function FaultHit, which performs
  // the cheap disabled check first.
  std::optional<FaultKind> Hit(const char* site,
                               int64_t key = FaultSpec::kAnyKey);

  // Deterministic bit index for kBitFlip sites: in [0, n_bytes * 8).
  uint64_t NextBitIndex(uint64_t n_bytes);

  // Counters for assertions: matching hits seen / faults fired at a site.
  uint64_t hits(const std::string& site) const;
  uint64_t fires(const std::string& site) const;
  uint64_t total_fires() const {
    return total_fires_.load(std::memory_order_relaxed);
  }

 private:
  FaultInjector() : rng_(0) {}

  struct SiteState {
    FaultSpec spec;
    uint64_t hits = 0;   // hits matching the spec's key filter
    uint64_t fires = 0;
  };

  static std::atomic<bool> enabled_;
  mutable std::mutex mu_;  // guards rng_ and sites_
  Rng rng_;
  std::unordered_map<std::string, SiteState> sites_;
  std::atomic<uint64_t> total_fires_{0};
};

// The per-site entry point: nullopt (and no other work) unless a test
// enabled the injector.
inline std::optional<FaultKind> FaultHit(const char* site,
                                         int64_t key = FaultSpec::kAnyKey) {
  if (!FaultInjector::enabled()) return std::nullopt;
  return FaultInjector::Instance().Hit(site, key);
}

}  // namespace starshare

#endif  // STARSHARE_COMMON_FAULT_INJECTOR_H_
