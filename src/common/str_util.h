// Small string helpers shared across modules (no std::format dependency).

#ifndef STARSHARE_COMMON_STR_UTIL_H_
#define STARSHARE_COMMON_STR_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace starshare {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

// ASCII upper-casing (MDX keywords are case-insensitive).
std::string AsciiUpper(std::string s);

// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

// Formats a count with thousands separators ("1,234,567") for table output.
std::string WithCommas(uint64_t value);

// Fixed-point milliseconds, e.g. "13.897".
std::string FormatMs(double ms, int decimals = 3);

}  // namespace starshare

#endif  // STARSHARE_COMMON_STR_UTIL_H_
