// CRC-32 (the IEEE 802.3 polynomial, as used by zip/png) for table-file
// section checksums. Table-driven, byte-at-a-time: ~500 MB/s, plenty for
// load/save paths which are not hot.

#ifndef STARSHARE_COMMON_CRC32_H_
#define STARSHARE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace starshare {

// One-shot CRC of a buffer. Chain calls by passing the previous return
// value as `seed` to checksum discontiguous sections as one stream.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

// Incremental accumulator for checksumming a section as it is serialized.
class Crc32Accumulator {
 public:
  void Update(const void* data, size_t n) { crc_ = Crc32(data, n, crc_); }
  uint32_t value() const { return crc_; }
  void Reset() { crc_ = 0; }

 private:
  uint32_t crc_ = 0;
};

}  // namespace starshare

#endif  // STARSHARE_COMMON_CRC32_H_
