#include "common/crc32.h"

namespace starshare {
namespace {

// Reflected CRC-32, polynomial 0xEDB88320.
struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const Crc32Table table;
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table.entries[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace starshare
