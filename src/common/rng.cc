#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace starshare {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SS_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  SS_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? NextUint64()
                                             : NextBounded(span));
}

double Rng::NextDouble() {
  // 53 top bits -> [0,1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  SS_CHECK(n > 0);
  SS_CHECK(theta >= 0);
  cdf_.resize(n);
  double total = 0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = total;
  }
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

uint64_t ZipfGenerator::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace starshare
