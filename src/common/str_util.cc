#include "common/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace starshare {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string AsciiUpper(std::string s) {
  for (char& c : s) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return s;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string WithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  const size_t n = digits.size();
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string FormatMs(double ms, int decimals) {
  return StrFormat("%.*f", decimals, ms);
}

}  // namespace starshare
