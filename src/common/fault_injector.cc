#include "common/fault_injector.h"

#include "obs/metrics.h"

namespace starshare {

std::atomic<bool> FaultInjector::enabled_{false};

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kError:
      return "error";
    case FaultKind::kShortRead:
      return "short-read";
    case FaultKind::kBitFlip:
      return "bit-flip";
  }
  return "unknown";
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Enable(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_ = Rng(seed);
  sites_.clear();
  total_fires_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  sites_.clear();
  total_fires_.store(0, std::memory_order_relaxed);
}

void FaultInjector::Arm(const std::string& site, FaultSpec spec) {
  SS_CHECK_MSG(enabled(), "FaultInjector::Arm before Enable");
  std::lock_guard<std::mutex> lock(mu_);
  SiteState state;
  state.spec = spec;
  sites_[site] = state;  // re-arming resets the site's counters
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.erase(site);
}

std::optional<FaultKind> FaultInjector::Hit(const char* site, int64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return std::nullopt;
  SiteState& state = it->second;
  const FaultSpec& spec = state.spec;
  if (spec.key != FaultSpec::kAnyKey && spec.key != key) return std::nullopt;
  ++state.hits;
  if (spec.max_fires >= 0 &&
      state.fires >= static_cast<uint64_t>(spec.max_fires)) {
    return std::nullopt;
  }
  bool fire;
  if (spec.countdown >= 1) {
    fire = state.hits == static_cast<uint64_t>(spec.countdown);
  } else {
    fire = rng_.NextBernoulli(spec.probability);
  }
  if (!fire) return std::nullopt;
  ++state.fires;
  total_fires_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter& fire_metric = obs::Metrics().counter("faults.fired");
  fire_metric.Add();
  return spec.kind;
}

uint64_t FaultInjector::NextBitIndex(uint64_t n_bytes) {
  if (n_bytes == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.NextBounded(n_bytes * 8);
}

uint64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

}  // namespace starshare
