// Byte-level memory accounting for execution state, the memory twin of
// storage/io_stats.h: every physical node records how many bytes its
// transient structures held while it ran, and EXPLAIN ANALYZE prints the
// gauge as `mem=` next to `io=`. Unlike IoStats the fields are high-water
// gauges, not cumulative counters — merging two snapshots keeps the peak of
// each category, and `peak_bytes` tracks the largest simultaneous total any
// single snapshot observed.

#ifndef STARSHARE_COMMON_MEM_STATS_H_
#define STARSHARE_COMMON_MEM_STATS_H_

#include <algorithm>
#include <cstdint>

namespace starshare {

// One memory snapshot (or the running high-water merge of many). Categories
// follow the structures that dominate execution memory:
//   match_bytes  — per-member match buffers (QueryMatchBatch key/value
//                  arrays, morsel merge buffers)
//   hash_bytes   — aggregation state (hash-table slots, spill staging
//                  buffers, view-build cell arrays)
//   bitmap_bytes — per-member candidate bitmaps (§3.2/§3.3)
//   batch_bytes  — batch scratch (shared dimension pass masks, probe
//                  position arrays, key-translation scratch)
struct MemStats {
  uint64_t match_bytes = 0;
  uint64_t hash_bytes = 0;
  uint64_t bitmap_bytes = 0;
  uint64_t batch_bytes = 0;
  // Largest total() any merged snapshot held at one instant.
  uint64_t peak_bytes = 0;

  uint64_t total() const {
    return match_bytes + hash_bytes + bitmap_bytes + batch_bytes;
  }

  // High-water merge: field-wise max, with peak_bytes raised to the larger
  // of the two peaks and the incoming snapshot's instantaneous total.
  void MergePeak(const MemStats& snapshot) {
    match_bytes = std::max(match_bytes, snapshot.match_bytes);
    hash_bytes = std::max(hash_bytes, snapshot.hash_bytes);
    bitmap_bytes = std::max(bitmap_bytes, snapshot.bitmap_bytes);
    batch_bytes = std::max(batch_bytes, snapshot.batch_bytes);
    peak_bytes = std::max(
        {peak_bytes, snapshot.peak_bytes, snapshot.total()});
  }

  bool empty() const { return total() == 0 && peak_bytes == 0; }
  bool operator==(const MemStats& other) const = default;
};

}  // namespace starshare

#endif  // STARSHARE_COMMON_MEM_STATS_H_
