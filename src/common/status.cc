#include "common/status.h"

namespace starshare {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kShuttingDown:
      return "SHUTTING_DOWN";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace starshare
