// Error handling for fallible public APIs (parsing, name resolution,
// catalog lookups). StarShare does not throw; operations that can fail on
// user input return Status or Result<T>.

#ifndef STARSHARE_COMMON_STATUS_H_
#define STARSHARE_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace starshare {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  // malformed input (bad MDX, bad spec string)
  kNotFound,         // unknown table / dimension / member name
  kFailedPrecondition,
  kInternal,
  kCorruption,  // stored data failed validation (bad CRC, torn file)
  kUnavailable,  // transient I/O failure; retrying may succeed
  kResourceExhausted,  // a memory grant or spill could not be satisfied
  kShuttingDown,  // the engine / query server is stopping; work was refused
                  // or abandoned, never half-done
};

// The result of an operation that can fail on user input.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ShuttingDown(std::string msg) {
    return Status(StatusCode::kShuttingDown, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Either a value or an error Status. Accessing the value of an error Result
// aborts, so callers must test ok() first.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    SS_CHECK_MSG(!std::get<Status>(data_).ok(),
                 "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    SS_CHECK_MSG(ok(), "Result::value() on error: %s",
                 std::get<Status>(data_).ToString().c_str());
    return std::get<T>(data_);
  }
  T& value() & {
    SS_CHECK_MSG(ok(), "Result::value() on error: %s",
                 std::get<Status>(data_).ToString().c_str());
    return std::get<T>(data_);
  }
  T&& value() && {
    SS_CHECK_MSG(ok(), "Result::value() on error: %s",
                 std::get<Status>(data_).ToString().c_str());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

// Propagates an error Status from an expression returning Status.
#define SS_RETURN_IF_ERROR(expr)               \
  do {                                         \
    ::starshare::Status ss_status__ = (expr);  \
    if (!ss_status__.ok()) return ss_status__; \
  } while (false)

}  // namespace starshare

#endif  // STARSHARE_COMMON_STATUS_H_
