// Deterministic random number generation for data generation and tests.
//
// StarShare never uses std::random_device or time-based seeds: every
// experiment is reproducible from an explicit seed. The core generator is
// splitmix64 feeding a xoshiro256** state, which is fast, well distributed,
// and stable across platforms.

#ifndef STARSHARE_COMMON_RNG_H_
#define STARSHARE_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace starshare {

// A small deterministic PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over all 64-bit values.
  uint64_t NextUint64();

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

 private:
  uint64_t state_[4];
};

// Zipf-distributed integer generator over [0, n). Uses the classic
// inverse-CDF-over-precomputed-table method; construction is O(n), sampling
// is O(log n). theta = 0 degenerates to uniform.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  // Returns a value in [0, n).
  uint64_t Next(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i)
};

}  // namespace starshare

#endif  // STARSHARE_COMMON_RNG_H_
