#include "opt/tplo.h"

#include "obs/trace.h"
#include "opt/local_optimizer.h"

namespace starshare {

GlobalPlan TploOptimizer::Plan(
    const std::vector<const DimensionalQuery*>& queries) const {
  // Phase one: each query's locally optimal (view, method), independently.
  std::vector<LocalChoice> choices;
  choices.reserve(queries.size());
  {
    obs::ScopedSpan span("opt.local_choices");
    span.AddCounter("queries", queries.size());
    for (const DimensionalQuery* q : queries) {
      choices.push_back(BestLocalPlan(*q, AnswerableViews(*q), cost_));
    }
  }

  // Phase two: merge queries that landed on the same base table into one
  // class, so the table is scanned once.
  GlobalPlan plan;
  obs::ScopedSpan span("opt.merge_classes");
  for (size_t i = 0; i < queries.size(); ++i) {
    const LocalChoice& choice = choices[i];
    ClassPlan* home = nullptr;
    for (auto& cls : plan.classes) {
      if (cls.base == choice.view) {
        home = &cls;
        break;
      }
    }
    if (home == nullptr) {
      plan.classes.push_back(ClassPlan{});
      home = &plan.classes.back();
      home->base = choice.view;
    }
    LocalPlan lp;
    lp.query = queries[i];
    lp.method = choice.method;
    home->members.push_back(lp);
  }
  cost_.AnnotatePlan(plan);
  span.AddCounter("classes", plan.classes.size());
  return plan;
}

}  // namespace starshare
