#include "opt/tplo.h"

#include "opt/local_optimizer.h"

namespace starshare {

GlobalPlan TploOptimizer::Plan(
    const std::vector<const DimensionalQuery*>& queries) const {
  GlobalPlan plan;
  for (const DimensionalQuery* q : queries) {
    const LocalChoice choice = BestLocalPlan(*q, AnswerableViews(*q), cost_);

    // Phase two: merge with an existing class on the same base table.
    ClassPlan* home = nullptr;
    for (auto& cls : plan.classes) {
      if (cls.base == choice.view) {
        home = &cls;
        break;
      }
    }
    if (home == nullptr) {
      plan.classes.push_back(ClassPlan{});
      home = &plan.classes.back();
      home->base = choice.view;
    }
    LocalPlan lp;
    lp.query = q;
    lp.method = choice.method;
    home->members.push_back(lp);
  }
  cost_.AnnotatePlan(plan);
  return plan;
}

}  // namespace starshare
