#include "opt/local_optimizer.h"

namespace starshare {

LocalChoice BestLocalPlan(const DimensionalQuery& query,
                          const std::vector<MaterializedView*>& candidates,
                          const CostModel& cost) {
  SS_CHECK_MSG(!candidates.empty(), "no view can answer query Q%d",
               query.id());
  LocalChoice best;
  bool first = true;
  for (MaterializedView* view : candidates) {
    const auto [method, ms] = cost.BestSingleCost(query, *view);
    if (first || ms < best.est_ms) {
      best = LocalChoice{view, method, ms};
      first = false;
    }
  }
  return best;
}

}  // namespace starshare
