// Common interface of the multiple-dimensional-query optimizers, plus the
// factory and the shared helpers they use.
//
// Every optimizer answers the same question: given the component queries of
// an MDX expression and the set of materialized group-bys (MSet, which
// always contains the base data LL), produce a GlobalPlan — a partition of
// the queries into classes with a shared base table and per-query join
// methods — minimizing estimated total cost under the §5.1 cost model.

#ifndef STARSHARE_OPT_OPTIMIZER_H_
#define STARSHARE_OPT_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "cube/view_set.h"
#include "plan/plan.h"
#include "query/query.h"

namespace starshare {

enum class OptimizerKind {
  kTplo,          // Two-Phase Local Optimal (§4)
  kEtplg,         // Extended Two-Phase Local Greedy (§5)
  kGlobalGreedy,  // Global Greedy (§6)
  kDagGreedy,     // AND-OR DAG greedy sharing (Roy et al., PAPERS.md)
  kExhaustive,    // optimal global plan by enumeration (§7's yardstick)
};

const char* OptimizerKindName(OptimizerKind kind);
Result<OptimizerKind> ParseOptimizerKind(const std::string& name);

class Optimizer {
 public:
  Optimizer(const StarSchema& schema, const ViewSet& views,
            const CostModel& cost)
      : schema_(schema), views_(views), cost_(cost) {}
  virtual ~Optimizer() = default;

  virtual GlobalPlan Plan(
      const std::vector<const DimensionalQuery*>& queries) const = 0;
  virtual OptimizerKind kind() const = 0;
  const char* name() const { return OptimizerKindName(kind()); }

 protected:
  // Views able to answer `query`. Non-SUM aggregates can only be computed
  // from the base data (views store SUM cells), so their candidate list is
  // just LL.
  std::vector<MaterializedView*> AnswerableViews(
      const DimensionalQuery& query) const;

  // Queries sorted by the paper's GroupbyLevel: finest group-bys first
  // (ascending total level), ties by query id.
  static std::vector<const DimensionalQuery*> SortByGroupbyLevel(
      std::vector<const DimensionalQuery*> queries);

  // True if `view` can serve as the base table for `query` (lattice
  // containment, and non-SUM aggregates restricted to the base data).
  bool ViewAnswers(const MaterializedView& view,
                   const DimensionalQuery& query) const;

  // Views usable as a shared base for *all* of `queries` (per-dimension min
  // of required levels; sorted smallest first).
  std::vector<MaterializedView*> SharedBaseCandidates(
      const std::vector<const DimensionalQuery*>& queries) const;

  const StarSchema& schema_;
  const ViewSet& views_;
  const CostModel& cost_;
};

std::unique_ptr<Optimizer> MakeOptimizer(OptimizerKind kind,
                                         const StarSchema& schema,
                                         const ViewSet& views,
                                         const CostModel& cost);

}  // namespace starshare

#endif  // STARSHARE_OPT_OPTIMIZER_H_
