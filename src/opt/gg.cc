#include "opt/gg.h"

#include <limits>
#include <set>

#include "obs/trace.h"
#include "opt/local_optimizer.h"

namespace starshare {

GlobalPlan GlobalGreedyOptimizer::Plan(
    const std::vector<const DimensionalQuery*>& queries) const {
  obs::ScopedSpan span("opt.greedy");
  span.AddCounter("queries", queries.size());
  const auto sorted = SortByGroupbyLevel(queries);

  GlobalPlan plan;
  std::set<const MaterializedView*> used;  // the paper's SharedSet

  for (const DimensionalQuery* q : sorted) {
    // N: the best unused materialized group-by for q alone.
    std::vector<MaterializedView*> unused_candidates;
    for (MaterializedView* v : AnswerableViews(*q)) {
      if (!used.contains(v)) unused_candidates.push_back(v);
    }
    double unused_cost = std::numeric_limits<double>::infinity();
    LocalChoice unused_choice;
    if (!unused_candidates.empty()) {
      unused_choice = BestLocalPlan(*q, unused_candidates, cost_);
      unused_cost = unused_choice.est_ms;
    }

    // For each class, pick S'_i: the base (possibly different from the
    // current one) minimizing the cost of computing members + q together.
    size_t best_class = SIZE_MAX;
    double best_cost_of_add = std::numeric_limits<double>::infinity();
    MaterializedView* best_new_base = nullptr;
    for (size_t i = 0; i < plan.classes.size(); ++i) {
      const ClassPlan& cls = plan.classes[i];
      std::vector<const DimensionalQuery*> members;
      for (const auto& m : cls.members) members.push_back(m.query);
      members.push_back(q);

      MaterializedView* s_prime = nullptr;
      double rebased_cost = std::numeric_limits<double>::infinity();
      for (MaterializedView* v : SharedBaseCandidates(members)) {
        const double c = cost_.ClassCostMs(v, members);
        if (c < rebased_cost) {
          rebased_cost = c;
          s_prime = v;
        }
      }
      if (s_prime == nullptr) continue;

      members.pop_back();
      const double cost_of_add =
          rebased_cost - cost_.ClassCostMs(cls.base, members);
      if (cost_of_add < best_cost_of_add) {
        best_cost_of_add = cost_of_add;
        best_class = i;
        best_new_base = s_prime;
      }
    }

    if (best_class == SIZE_MAX || unused_cost < best_cost_of_add) {
      SS_CHECK_MSG(!unused_candidates.empty(),
                   "no base table available for query Q%d", q->id());
      plan.classes.push_back(cost_.MakeClassPlan(unused_choice.view, {q}));
      used.insert(unused_choice.view);
      continue;
    }

    // Admit q to the chosen class, rebasing it onto S' if different.
    ClassPlan& cls = plan.classes[best_class];
    std::vector<const DimensionalQuery*> members;
    for (const auto& m : cls.members) members.push_back(m.query);
    members.push_back(q);

    if (best_new_base != cls.base) {
      used.erase(cls.base);
      used.insert(best_new_base);
    }
    cls = cost_.MakeClassPlan(best_new_base, std::move(members));

    // MergeClass: if another class already uses S', fold it in so the table
    // is scanned once (the paper's repeated-I/O guard).
    for (size_t j = 0; j < plan.classes.size(); ++j) {
      if (j == best_class) continue;
      if (plan.classes[j].base != best_new_base) continue;
      std::vector<const DimensionalQuery*> merged;
      for (const auto& m : plan.classes[best_class].members) {
        merged.push_back(m.query);
      }
      for (const auto& m : plan.classes[j].members) merged.push_back(m.query);
      plan.classes[best_class] =
          cost_.MakeClassPlan(best_new_base, std::move(merged));
      plan.classes.erase(plan.classes.begin() + static_cast<long>(j));
      break;
    }
  }
  span.AddCounter("classes", plan.classes.size());
  return plan;
}

}  // namespace starshare
