#include "opt/etplg.h"

#include <limits>
#include <set>

#include "obs/trace.h"
#include "opt/local_optimizer.h"

namespace starshare {

GlobalPlan EtplgOptimizer::Plan(
    const std::vector<const DimensionalQuery*>& queries) const {
  obs::ScopedSpan span("opt.etplg");
  span.AddCounter("queries", queries.size());
  const auto sorted = SortByGroupbyLevel(queries);

  GlobalPlan plan;
  std::set<const MaterializedView*> used;  // the paper's SharedSet

  for (const DimensionalQuery* q : sorted) {
    // D: the best unused materialized group-by for q alone.
    std::vector<MaterializedView*> unused_candidates;
    for (MaterializedView* v : AnswerableViews(*q)) {
      if (!used.contains(v)) unused_candidates.push_back(v);
    }
    double unused_cost = std::numeric_limits<double>::infinity();
    LocalChoice unused_choice;
    if (!unused_candidates.empty()) {
      unused_choice = BestLocalPlan(*q, unused_candidates, cost_);
      unused_cost = unused_choice.est_ms;
    }

    // S: the existing class with the smallest marginal cost of admitting q.
    size_t best_class = SIZE_MAX;
    double best_marginal = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < plan.classes.size(); ++i) {
      const ClassPlan& cls = plan.classes[i];
      if (!ViewAnswers(*cls.base, *q)) continue;
      const double marginal = cost_.CostOfAddMs(cls, *q);
      if (marginal < best_marginal) {
        best_marginal = marginal;
        best_class = i;
      }
    }

    if (best_class != SIZE_MAX && best_marginal <= unused_cost) {
      // Join the class; re-derive the class plan with the new member.
      ClassPlan& cls = plan.classes[best_class];
      std::vector<const DimensionalQuery*> members;
      for (const auto& m : cls.members) members.push_back(m.query);
      members.push_back(q);
      cls = cost_.MakeClassPlan(cls.base, std::move(members));
    } else {
      SS_CHECK_MSG(!unused_candidates.empty(),
                   "no base table available for query Q%d", q->id());
      plan.classes.push_back(cost_.MakeClassPlan(unused_choice.view, {q}));
      used.insert(unused_choice.view);
    }
  }
  span.AddCounter("classes", plan.classes.size());
  return plan;
}

}  // namespace starshare
