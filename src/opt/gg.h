// Global Greedy (paper §6).
//
// Like ETPLG, but when admitting a new query a class may *change its base
// table*: for every class the algorithm finds S', the materialized group-by
// minimizing the cost of computing all current members plus the new query
// from a single table, and compares that rebased marginal cost against
// opening a new class on the best unused view. Rebasing deliberately
// chooses locally sub-optimal tables when the shared scan they enable is
// globally cheaper (the paper's Example 2: move both queries onto A'B'C'
// and share its scan). When a class rebases onto a view that is already
// some other class's base, the two classes merge (MergeClass), so the plan
// never scans one table twice.

#ifndef STARSHARE_OPT_GG_H_
#define STARSHARE_OPT_GG_H_

#include "opt/optimizer.h"

namespace starshare {

class GlobalGreedyOptimizer : public Optimizer {
 public:
  using Optimizer::Optimizer;

  GlobalPlan Plan(
      const std::vector<const DimensionalQuery*>& queries) const override;
  OptimizerKind kind() const override {
    return OptimizerKind::kGlobalGreedy;
  }
};

}  // namespace starshare

#endif  // STARSHARE_OPT_GG_H_
