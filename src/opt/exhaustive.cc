#include "opt/exhaustive.h"

#include <algorithm>
#include <map>

#include "obs/trace.h"
#include "opt/gg.h"

namespace starshare {
namespace {

struct SearchState {
  const CostModel* cost;
  // Per query: candidate views sorted by standalone cost.
  std::vector<const DimensionalQuery*> queries;
  std::vector<std::vector<MaterializedView*>> candidates;

  // Current partial assignment: view -> member queries.
  std::map<MaterializedView*, std::vector<const DimensionalQuery*>> classes;
  std::map<MaterializedView*, double> class_costs;
  double total = 0;

  double best_total;
  std::map<MaterializedView*, std::vector<const DimensionalQuery*>> best;
  uint64_t nodes = 0;

  void Recurse(size_t i) {
    if (++nodes > ExhaustiveOptimizer::kMaxNodes) return;
    if (total >= best_total) return;  // class costs are monotone: prune
    if (i == queries.size()) {
      best_total = total;
      best = classes;
      return;
    }
    const DimensionalQuery* q = queries[i];
    for (MaterializedView* v : candidates[i]) {
      auto& members = classes[v];
      members.push_back(q);
      const auto old_cost_it = class_costs.find(v);
      const double old_cost =
          old_cost_it == class_costs.end() ? 0 : old_cost_it->second;
      const double new_cost = cost->ClassCostMs(v, members);
      class_costs[v] = new_cost;
      total += new_cost - old_cost;

      Recurse(i + 1);

      total -= new_cost - old_cost;
      members.pop_back();
      if (members.empty()) {
        classes.erase(v);
        class_costs.erase(v);
      } else {
        class_costs[v] = old_cost;
      }
    }
  }
};

}  // namespace

GlobalPlan ExhaustiveOptimizer::Plan(
    const std::vector<const DimensionalQuery*>& queries) const {
  // Seed the bound (and the fallback plan) with GG.
  GlobalGreedyOptimizer gg(schema_, views_, cost_);
  GlobalPlan seed = gg.Plan(queries);

  SearchState state;
  state.cost = &cost_;
  state.queries = queries;
  state.best_total = seed.EstMs();
  for (const auto* q : queries) {
    std::vector<MaterializedView*> cands = AnswerableViews(*q);
    std::sort(cands.begin(), cands.end(),
              [&](MaterializedView* a, MaterializedView* b) {
                return cost_.BestSingleCost(*q, *a).second <
                       cost_.BestSingleCost(*q, *b).second;
              });
    state.candidates.push_back(std::move(cands));
  }
  {
    obs::ScopedSpan span("opt.enumerate");
    span.AddCounter("queries", queries.size());
    state.Recurse(0);
    span.AddCounter("nodes", state.nodes);
  }

  if (state.best.empty()) return seed;  // GG already optimal (or node cap)

  GlobalPlan plan;
  for (auto& [view, members] : state.best) {
    plan.classes.push_back(cost_.MakeClassPlan(view, members));
  }
  return plan;
}

}  // namespace starshare
