// Extended Two-Phase Local Greedy (paper §5).
//
// Processes queries in GroupbyLevel order, growing classes of queries that
// share a base table. For each query it compares (a) the best standalone
// plan on a not-yet-used materialized group-by D against (b) the marginal
// cost of joining the cheapest existing class — the §5.1 shared cost, where
// a query added to a class pays only its non-shared CPU/I/O plus whatever
// it adds to the class's shared I/O. A class's base table, once chosen, is
// never revisited (the limitation GG removes).

#ifndef STARSHARE_OPT_ETPLG_H_
#define STARSHARE_OPT_ETPLG_H_

#include "opt/optimizer.h"

namespace starshare {

class EtplgOptimizer : public Optimizer {
 public:
  using Optimizer::Optimizer;

  GlobalPlan Plan(
      const std::vector<const DimensionalQuery*>& queries) const override;
  OptimizerKind kind() const override { return OptimizerKind::kEtplg; }
};

}  // namespace starshare

#endif  // STARSHARE_OPT_ETPLG_H_
