// The optimal global plan, found the way the paper found its Table 2
// yardstick: "by exploring all possible query plans". Enumerates every
// assignment of queries to answering views (branch-and-bound, seeded with
// the GG plan; class costs are monotone in membership so partial-cost
// pruning is safe) and, per class, the §3 operator/method combination the
// cost model deems cheapest. Exponential — intended for the handful of
// queries an MDX expression produces, and guarded by a node budget.

#ifndef STARSHARE_OPT_EXHAUSTIVE_H_
#define STARSHARE_OPT_EXHAUSTIVE_H_

#include "opt/optimizer.h"

namespace starshare {

class ExhaustiveOptimizer : public Optimizer {
 public:
  using Optimizer::Optimizer;

  GlobalPlan Plan(
      const std::vector<const DimensionalQuery*>& queries) const override;
  OptimizerKind kind() const override { return OptimizerKind::kExhaustive; }

  // Search-space guard: if the branch-and-bound expands more nodes than
  // this, the best plan found so far (at worst the GG seed) is returned.
  static constexpr uint64_t kMaxNodes = 2'000'000;
};

}  // namespace starshare

#endif  // STARSHARE_OPT_EXHAUSTIVE_H_
