#include "opt/and_or_dag.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/macros.h"

namespace starshare {

AndOrDag::AndOrDag(
    const std::vector<const DimensionalQuery*>& queries,
    const std::vector<std::vector<MaterializedView*>>& candidates,
    const CostModel& cost) {
  SS_CHECK(queries.size() == candidates.size());
  std::unordered_map<MaterializedView*, size_t> shared_id;

  queries_.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryOrNode node;
    node.query = queries[i];
    for (MaterializedView* v : candidates[i]) {
      auto [it, inserted] = shared_id.try_emplace(v, shared_.size());
      if (inserted) shared_.push_back(SharedAccessNode{v, {}});
      const size_t sid = it->second;
      SharedAccessNode& sn = shared_[sid];
      if (sn.users.empty() || sn.users.back() != i) sn.users.push_back(i);

      PlanAlternative scan;
      scan.shared = sid;
      scan.view = v;
      scan.method = JoinMethod::kHashScan;
      scan.standalone_ms = cost.HashJoinCostMs(*queries[i], *v);
      node.alts.push_back(scan);

      if (cost.IndexAvailable(*queries[i], *v)) {
        PlanAlternative probe;
        probe.shared = sid;
        probe.view = v;
        probe.method = JoinMethod::kIndexProbe;
        probe.standalone_ms = cost.IndexJoinCostMs(*queries[i], *v);
        node.alts.push_back(probe);
      }
    }
    SS_CHECK_MSG(!node.alts.empty(), "query Q%d has no answering view",
                 queries[i]->id());
    std::stable_sort(node.alts.begin(), node.alts.end(),
                     [](const PlanAlternative& a, const PlanAlternative& b) {
                       if (a.standalone_ms != b.standalone_ms) {
                         return a.standalone_ms < b.standalone_ms;
                       }
                       return a.shared < b.shared;
                     });
    queries_.push_back(std::move(node));
  }
}

size_t AndOrDag::NumAndNodes() const {
  size_t n = 0;
  for (const auto& q : queries_) n += q.alts.size();
  return n;
}

std::string AndOrDag::ToString() const {
  std::ostringstream os;
  for (const auto& node : queries_) {
    os << "Q" << node.query->id() << ":";
    for (const auto& alt : node.alts) {
      os << " [" << alt.view->name() << "/"
         << (alt.method == JoinMethod::kHashScan ? "scan" : "probe") << " "
         << alt.standalone_ms << "ms #" << alt.shared << "]";
    }
    os << "\n";
  }
  for (size_t s = 0; s < shared_.size(); ++s) {
    os << "#" << s << " " << shared_[s].view->name() << " users:";
    for (size_t u : shared_[s].users) {
      os << " Q" << queries_[u].query->id();
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace starshare
