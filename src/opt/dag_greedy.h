// The DAG-greedy global optimizer: Roy et al.'s greedy shared-subexpression
// materialization over the AND-OR DAG (opt/and_or_dag.h), adapted to the
// paper's shared-class plan space.
//
// Where TPLO/ETPLG/GG commit queries one at a time in GroupbyLevel order,
// DAG-greedy keeps every query's full alternative set live and improves a
// complete assignment iteratively:
//
//   1. Build the AND-OR DAG: per query, every (answering view, join method)
//      alternative; one unified equivalence node per view's access path.
//   2. Start from each query's cheapest standalone alternative (the local
//      optimum — TPLO's phase one).
//   3. Greedy loop: for every equivalence node S, evaluate "consolidate
//      onto S" two ways on scratch cost trackers — sequentially moving each
//      rider of S whose individual delta improves, and moving *all* riders
//      wholesale (which catches shares that only pay off jointly: the first
//      mover's scan is amortized by the second). Apply the best improving
//      action; recompute benefits incrementally (O(dims) per peek via
//      ClassCostTracker, never a whole-plan re-price); repeat to fixpoint.
//   4. Emit the final classes through CostModel::MakeClassPlan, so the
//      GlobalPlan carries exactly the same estimate fields as every other
//      optimizer's output and lowering/EXPLAIN work unchanged.
//
// On every workload tested (the paper's pinned tests and the differential
// suite's 200 seeded random workloads, which assert cost(DAG) <= cost(GG))
// the search's fixpoint is at least as cheap as GG's plan, so no GG run
// guards the common path — that run would double the optimization time for
// a comparison that never fires. The one case with no fixpoint guarantee
// is a search truncated by the round cap; only then is the GG plan
// computed and the cheaper of the two returned (obs counter "gg_guard").

#ifndef STARSHARE_OPT_DAG_GREEDY_H_
#define STARSHARE_OPT_DAG_GREEDY_H_

#include "opt/optimizer.h"

namespace starshare {

class DagGreedyOptimizer : public Optimizer {
 public:
  using Optimizer::Optimizer;

  GlobalPlan Plan(
      const std::vector<const DimensionalQuery*>& queries) const override;
  OptimizerKind kind() const override { return OptimizerKind::kDagGreedy; }
};

}  // namespace starshare

#endif  // STARSHARE_OPT_DAG_GREEDY_H_
