#include "opt/dag_greedy.h"

#include <algorithm>
#include <map>
#include <vector>

#include "cost/class_cost_tracker.h"
#include "obs/trace.h"
#include "opt/and_or_dag.h"
#include "opt/gg.h"

namespace starshare {
namespace {

// A search floor small enough to act on real cost differences but above
// the rounding noise of the incremental aggregates, so the loop cannot
// oscillate on FP-epsilon ties.
constexpr double kEps = 1e-7;

struct Move {
  size_t query = 0;
  size_t from = 0;
  size_t to = 0;
};

// Copy-on-write view of the tracker array for what-if evaluation: only the
// equivalence nodes a candidate action touches are cloned.
struct Sim {
  const std::vector<ClassCostTracker>* base;
  std::map<size_t, ClassCostTracker> scratch;

  ClassCostTracker& At(size_t id) {
    auto it = scratch.find(id);
    if (it == scratch.end()) it = scratch.emplace(id, (*base)[id]).first;
    return it->second;
  }
};

}  // namespace

GlobalPlan DagGreedyOptimizer::Plan(
    const std::vector<const DimensionalQuery*>& queries) const {
  GlobalPlan plan;
  if (queries.empty()) return plan;

  obs::ScopedSpan span("opt.dag_greedy");
  span.AddCounter("queries", queries.size());

  std::vector<std::vector<MaterializedView*>> candidates;
  candidates.reserve(queries.size());
  for (const auto* q : queries) candidates.push_back(AnswerableViews(*q));
  const AndOrDag dag(queries, candidates, cost_);
  span.AddCounter("and_nodes", dag.NumAndNodes());
  span.AddCounter("shared_nodes", dag.shared().size());

  std::vector<ClassCostTracker> trackers;
  trackers.reserve(dag.shared().size());
  for (const auto& sn : dag.shared()) {
    trackers.emplace_back(schema_, cost_, sn.view);
  }

  // Initial assignment: each query's cheapest standalone alternative.
  std::vector<size_t> assign(queries.size());
  for (size_t i = 0; i < dag.queries().size(); ++i) {
    const size_t sid = dag.queries()[i].alts.front().shared;
    assign[i] = sid;
    trackers[sid].AddMs(*queries[i]);
  }

  // Greedy benefit loop: per round, evaluate consolidating onto every
  // equivalence node and apply the single best improving action.
  uint64_t rounds = 0;
  uint64_t applied_moves = 0;
  const uint64_t max_rounds = 64 + 8 * queries.size();
  for (; rounds < max_rounds; ++rounds) {
    double best_delta = -kEps;
    std::vector<Move> best_moves;

    for (size_t s = 0; s < dag.shared().size(); ++s) {
      const SharedAccessNode& sn = dag.shared()[s];
      bool has_outside_user = false;
      for (size_t qi : sn.users) {
        if (assign[qi] != s) {
          has_outside_user = true;
          break;
        }
      }
      if (!has_outside_user) continue;

      // Sequential form: admit each rider whose own delta improves, given
      // the riders admitted before it.
      {
        Sim sim{&trackers, {}};
        double delta = 0;
        std::vector<Move> moves;
        for (size_t qi : sn.users) {
          if (assign[qi] == s) continue;
          const DimensionalQuery& q = *dag.queries()[qi].query;
          const double d = sim.At(assign[qi]).PeekRemoveMs(q) +
                           sim.At(s).PeekAddMs(q);
          if (d < -kEps) {
            sim.At(assign[qi]).RemoveMs(q);
            sim.At(s).AddMs(q);
            delta += d;
            moves.push_back({qi, assign[qi], s});
          }
        }
        if (delta < best_delta) {
          best_delta = delta;
          best_moves = std::move(moves);
        }
      }

      // Wholesale form: move every rider at once. Catches shares that only
      // pay off jointly — the first mover alone makes the node's scan more
      // expensive than its current home, but the second amortizes it.
      {
        Sim sim{&trackers, {}};
        double delta = 0;
        std::vector<Move> moves;
        for (size_t qi : sn.users) {
          if (assign[qi] == s) continue;
          const DimensionalQuery& q = *dag.queries()[qi].query;
          delta += sim.At(assign[qi]).RemoveMs(q) + sim.At(s).AddMs(q);
          moves.push_back({qi, assign[qi], s});
        }
        if (delta < best_delta) {
          best_delta = delta;
          best_moves = std::move(moves);
        }
      }
    }

    if (best_moves.empty()) break;
    for (const Move& m : best_moves) {
      trackers[m.from].RemoveMs(*dag.queries()[m.query].query);
      trackers[m.to].AddMs(*dag.queries()[m.query].query);
      assign[m.query] = m.to;
    }
    applied_moves += best_moves.size();
  }
  span.AddCounter("rounds", rounds);
  span.AddCounter("moves", applied_moves);

  // Emit classes ordered by their smallest member query index, re-priced
  // through MakeClassPlan so the estimates match the other optimizers'
  // output bit-for-bit.
  std::vector<std::vector<const DimensionalQuery*>> members(
      dag.shared().size());
  std::vector<size_t> class_order;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (members[assign[i]].empty()) class_order.push_back(assign[i]);
    members[assign[i]].push_back(queries[i]);
  }
  for (size_t s : class_order) {
    plan.classes.push_back(
        cost_.MakeClassPlan(dag.shared()[s].view, members[s]));
  }
  span.AddCounter("classes", plan.classes.size());

  // Truncated search (round cap hit before a fixpoint) is the only case
  // where the assignment may still be improvable, so only then is the GG
  // plan worth pricing as a floor; at a fixpoint the search has never been
  // observed to lose to GG (the differential suite asserts it per seed).
  if (rounds == max_rounds) {
    GlobalGreedyOptimizer gg(schema_, views_, cost_);
    GlobalPlan seed = gg.Plan(queries);
    if (seed.EstMs() < plan.EstMs()) {
      span.AddCounter("gg_guard", 1);
      return seed;
    }
  }
  return plan;
}

}  // namespace starshare
