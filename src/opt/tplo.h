// Two-Phase Local Optimal (paper §4).
//
// Phase one: independently pick the optimal local plan (best view + join
// method) for every component query. Phase two: merge the plans that happen
// to share a base table into classes so the §3 shared operators apply. TPLO
// never trades local optimality for sharing, so related queries often land
// on different views and share nothing (the paper's Fig. 6 problem, and why
// it loses Tests 4, 5 and 7).

#ifndef STARSHARE_OPT_TPLO_H_
#define STARSHARE_OPT_TPLO_H_

#include "opt/optimizer.h"

namespace starshare {

class TploOptimizer : public Optimizer {
 public:
  using Optimizer::Optimizer;

  GlobalPlan Plan(
      const std::vector<const DimensionalQuery*>& queries) const override;
  OptimizerKind kind() const override { return OptimizerKind::kTplo; }
};

}  // namespace starshare

#endif  // STARSHARE_OPT_TPLO_H_
