// Single-query optimization: the "optimal local plan" of §4 — the best
// (materialized group-by, star-join method) pair for one query in
// isolation, found by enumerating every answering view and costing both
// methods (what the paper delegates to "a standard relational query
// optimizer").

#ifndef STARSHARE_OPT_LOCAL_OPTIMIZER_H_
#define STARSHARE_OPT_LOCAL_OPTIMIZER_H_

#include <vector>

#include "cost/cost_model.h"
#include "cube/view_set.h"
#include "plan/plan.h"
#include "query/query.h"

namespace starshare {

struct LocalChoice {
  MaterializedView* view = nullptr;
  JoinMethod method = JoinMethod::kHashScan;
  double est_ms = 0;
};

// The cheapest standalone plan for `query` among `candidates` (must be
// non-empty; every candidate must answer the query).
LocalChoice BestLocalPlan(const DimensionalQuery& query,
                          const std::vector<MaterializedView*>& candidates,
                          const CostModel& cost);

}  // namespace starshare

#endif  // STARSHARE_OPT_LOCAL_OPTIMIZER_H_
