// The AND-OR DAG the DAG-greedy optimizer searches over (Roy et al.,
// "Efficient and Extensible Algorithms for Multi Query Optimization").
//
// Every component query of the MDX expression becomes an OR node whose
// children are its alternative evaluation plans — for each answering
// materialized group-by, a fact-scan (hash star join) alternative and,
// when the view carries usable bitmap join indexes, an index-probe
// alternative (residual predicates become filter hybrids inside the cost
// model, exactly as exhaustive.cc prices them). The sharable work of an
// alternative is the access path of its view — the sequential scan or the
// shared probe pass — and that is the *equivalence node*: one
// SharedAccessNode per view, unified across every query that can ride it.
// Two queries answered from the same view point at the same node, which is
// what makes "materialize this subexpression once, share it" a single
// decision with a class-cost delta (cost/class_cost_tracker.h) instead of
// a pairwise comparison.
//
// The DAG is a static representation: it owns no costs beyond the
// standalone (class-of-one) estimate per alternative, which seeds the
// greedy loop's initial assignment and orders the alternatives
// cheapest-first. All shared-state pricing happens in the trackers.

#ifndef STARSHARE_OPT_AND_OR_DAG_H_
#define STARSHARE_OPT_AND_OR_DAG_H_

#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "cube/materialized_view.h"
#include "query/query.h"

namespace starshare {

// An AND node: one concrete way to answer one query. `shared` indexes the
// equivalence node (AndOrDag::shared()) whose access path it rides.
struct PlanAlternative {
  size_t shared = 0;
  MaterializedView* view = nullptr;
  JoinMethod method = JoinMethod::kHashScan;
  double standalone_ms = 0;  // cost as a class of one
};

// An equivalence node: the sharable access path of one materialized view,
// unified across queries. `users` lists the OR nodes (query indexes) with
// at least one alternative riding this node.
struct SharedAccessNode {
  MaterializedView* view = nullptr;
  std::vector<size_t> users;
};

// An OR node: the query plus its alternatives, sorted cheapest-first
// (ties by equivalence-node id, hash before probe).
struct QueryOrNode {
  const DimensionalQuery* query = nullptr;
  std::vector<PlanAlternative> alts;
};

class AndOrDag {
 public:
  // Expands `queries[i]`'s alternatives over `candidates[i]` (its answering
  // views, as Optimizer::AnswerableViews produces them) and unifies the
  // shared access-path nodes across queries. Deterministic: node ids follow
  // first-seen order over (query, candidate) pairs.
  AndOrDag(const std::vector<const DimensionalQuery*>& queries,
           const std::vector<std::vector<MaterializedView*>>& candidates,
           const CostModel& cost);

  const std::vector<QueryOrNode>& queries() const { return queries_; }
  const std::vector<SharedAccessNode>& shared() const { return shared_; }

  // Total AND nodes (alternatives) across all OR nodes.
  size_t NumAndNodes() const;

  // Debug dump: one line per OR node plus the equivalence-node fan-in.
  std::string ToString() const;

 private:
  std::vector<QueryOrNode> queries_;
  std::vector<SharedAccessNode> shared_;
};

}  // namespace starshare

#endif  // STARSHARE_OPT_AND_OR_DAG_H_
