#include "opt/optimizer.h"

#include <algorithm>
#include <limits>

#include "opt/dag_greedy.h"
#include "opt/etplg.h"
#include "opt/exhaustive.h"
#include "opt/gg.h"
#include "opt/tplo.h"

namespace starshare {

const char* OptimizerKindName(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kTplo:
      return "TPLO";
    case OptimizerKind::kEtplg:
      return "ETPLG";
    case OptimizerKind::kGlobalGreedy:
      return "GG";
    case OptimizerKind::kDagGreedy:
      return "DAG";
    case OptimizerKind::kExhaustive:
      return "OPTIMAL";
  }
  return "?";
}

Result<OptimizerKind> ParseOptimizerKind(const std::string& name) {
  if (name == "TPLO" || name == "tplo") return OptimizerKind::kTplo;
  if (name == "ETPLG" || name == "etplg") return OptimizerKind::kEtplg;
  if (name == "GG" || name == "gg") return OptimizerKind::kGlobalGreedy;
  if (name == "DAG" || name == "dag" || name == "dag_greedy") {
    return OptimizerKind::kDagGreedy;
  }
  if (name == "OPTIMAL" || name == "optimal" || name == "exhaustive") {
    return OptimizerKind::kExhaustive;
  }
  return Status::InvalidArgument("unknown optimizer: " + name);
}

std::vector<MaterializedView*> Optimizer::AnswerableViews(
    const DimensionalQuery& query) const {
  if (query.agg() != AggOp::kSum) {
    MaterializedView* base = views_.Find(GroupBySpec::Base(schema_));
    SS_CHECK_MSG(base != nullptr, "base table missing from view set");
    return {base};
  }
  return views_.CandidatesFor(query.RequiredSpec(schema_));
}

bool Optimizer::ViewAnswers(const MaterializedView& view,
                            const DimensionalQuery& query) const {
  if (query.agg() != AggOp::kSum &&
      !(view.spec() == GroupBySpec::Base(schema_))) {
    return false;
  }
  return view.spec().CanAnswer(query.RequiredSpec(schema_));
}

std::vector<MaterializedView*> Optimizer::SharedBaseCandidates(
    const std::vector<const DimensionalQuery*>& queries) const {
  SS_CHECK(!queries.empty());
  bool sum_only = true;
  std::vector<int> levels(schema_.num_dims(),
                          std::numeric_limits<int>::max());
  for (const auto* q : queries) {
    if (q->agg() != AggOp::kSum) sum_only = false;
    const GroupBySpec required = q->RequiredSpec(schema_);
    for (size_t d = 0; d < schema_.num_dims(); ++d) {
      levels[d] = std::min(levels[d], required.level(d));
    }
  }
  if (!sum_only) {
    MaterializedView* base = views_.Find(GroupBySpec::Base(schema_));
    SS_CHECK(base != nullptr);
    return {base};
  }
  return views_.CandidatesFor(GroupBySpec(std::move(levels)));
}

std::vector<const DimensionalQuery*> Optimizer::SortByGroupbyLevel(
    std::vector<const DimensionalQuery*> queries) {
  std::stable_sort(queries.begin(), queries.end(),
                   [](const DimensionalQuery* a, const DimensionalQuery* b) {
                     const int la = a->target().TotalLevel();
                     const int lb = b->target().TotalLevel();
                     if (la != lb) return la < lb;
                     return a->id() < b->id();
                   });
  return queries;
}

std::unique_ptr<Optimizer> MakeOptimizer(OptimizerKind kind,
                                         const StarSchema& schema,
                                         const ViewSet& views,
                                         const CostModel& cost) {
  switch (kind) {
    case OptimizerKind::kTplo:
      return std::make_unique<TploOptimizer>(schema, views, cost);
    case OptimizerKind::kEtplg:
      return std::make_unique<EtplgOptimizer>(schema, views, cost);
    case OptimizerKind::kGlobalGreedy:
      return std::make_unique<GlobalGreedyOptimizer>(schema, views, cost);
    case OptimizerKind::kDagGreedy:
      return std::make_unique<DagGreedyOptimizer>(schema, views, cost);
    case OptimizerKind::kExhaustive:
      return std::make_unique<ExhaustiveOptimizer>(schema, views, cost);
  }
  SS_CHECK(false);
  return nullptr;
}

}  // namespace starshare
