#include "obs/trace.h"

#include <ctime>

#include "common/macros.h"
#include "common/str_util.h"

namespace starshare {
namespace obs {
namespace {

thread_local Tracer* g_current_tracer = nullptr;

uint64_t ThreadCpuNs() {
#if defined(__linux__)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<uint64_t>(ts.tv_nsec);
  }
#endif
  return 0;
}

// Appends the non-zero IoStats fields as " io=[k=v ...]" (nothing when the
// span charged no I/O), in a fixed field order so output is stable.
void AppendIo(const IoStats& io, std::string& out) {
  if (io == IoStats()) return;
  out += " io=[";
  bool first = true;
  auto field = [&](const char* key, uint64_t value) {
    if (value == 0) return;
    out += StrFormat("%s%s=%llu", first ? "" : " ", key,
                     static_cast<unsigned long long>(value));
    first = false;
  };
  field("seq", io.seq_pages_read);
  field("rand", io.rand_pages_read);
  field("idx", io.index_pages_read);
  field("wr", io.pages_written);
  field("cached", io.cached_pages);
  field("tuples", io.tuples_processed);
  field("probes", io.hash_probes);
  out += ']';
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void TraceSpan::AddCounter(const std::string& key, uint64_t value) {
  for (auto& [existing, total] : counters) {
    if (existing == key) {
      total += value;
      return;
    }
  }
  counters.emplace_back(key, value);
}

const TraceSpan* Trace::Find(const std::string& name) const {
  for (const TraceSpan& span : spans) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

std::vector<const TraceSpan*> Trace::FindAll(const std::string& name) const {
  std::vector<const TraceSpan*> out;
  for (const TraceSpan& span : spans) {
    if (span.name == name) out.push_back(&span);
  }
  return out;
}

std::string Trace::ToText(const TraceRenderOptions& options) const {
  std::string out;
  for (const TraceSpan& span : spans) {
    std::string line(static_cast<size_t>(span.depth) * 2, ' ');
    line += span.name;
    if (!span.detail.empty()) line += StrFormat("(%s)", span.detail.c_str());
    if (span.query_id >= 0) line += StrFormat(" q%d", span.query_id);
    if (span.rows > 0) {
      line += StrFormat(" rows=%llu",
                        static_cast<unsigned long long>(span.rows));
    }
    if (options.show_batches && span.batches > 0) {
      line += StrFormat(" batches=%llu",
                        static_cast<unsigned long long>(span.batches));
    }
    if (span.est_ms >= 0.0) {
      line += StrFormat(" est=%sms", FormatMs(span.est_ms).c_str());
    }
    // "act" is the modeled cost of the I/O this span actually charged —
    // deterministic, unlike wall time, so it survives timing masking.
    line += StrFormat(" act=%sms", FormatMs(ActualMs(span)).c_str());
    AppendIo(span.io, line);
    for (const auto& [key, value] : span.counters) {
      line += StrFormat(" %s=%llu", key.c_str(),
                        static_cast<unsigned long long>(value));
    }
    if (span.status_code != 0) {
      line += StrFormat(" status=%s", StatusCodeName(span.status_code));
    }
    if (options.mask_timings) {
      line += " wall=--ms cpu=--ms";
    } else {
      line += StrFormat(" wall=%sms cpu=%sms", FormatMs(span.wall_ms).c_str(),
                        FormatMs(span.cpu_ms).c_str());
    }
    out += line;
    out += '\n';
  }
  return out;
}

std::string Trace::ToJson() const {
  std::string out = "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& span = spans[i];
    if (i > 0) out += ", ";
    out += StrFormat(
        "{\"id\": %u, \"parent\": %d, \"name\": \"%s\"", span.id, span.parent,
        JsonEscape(span.name).c_str());
    if (!span.detail.empty()) {
      out += StrFormat(", \"detail\": \"%s\"", JsonEscape(span.detail).c_str());
    }
    if (span.query_id >= 0) out += StrFormat(", \"query\": %d", span.query_id);
    out += StrFormat(", \"rows\": %llu, \"batches\": %llu",
                     static_cast<unsigned long long>(span.rows),
                     static_cast<unsigned long long>(span.batches));
    if (span.est_ms >= 0.0) {
      out += StrFormat(", \"est_ms\": %s", FormatMs(span.est_ms).c_str());
    }
    out += StrFormat(
        ", \"act_io_ms\": %s, \"wall_ms\": %s, \"cpu_ms\": %s",
        FormatMs(ActualMs(span)).c_str(), FormatMs(span.wall_ms).c_str(),
        FormatMs(span.cpu_ms).c_str());
    out += StrFormat(
        ", \"io\": {\"seq\": %llu, \"rand\": %llu, \"index\": %llu, "
        "\"written\": %llu, \"cached\": %llu, \"tuples\": %llu, "
        "\"probes\": %llu}",
        static_cast<unsigned long long>(span.io.seq_pages_read),
        static_cast<unsigned long long>(span.io.rand_pages_read),
        static_cast<unsigned long long>(span.io.index_pages_read),
        static_cast<unsigned long long>(span.io.pages_written),
        static_cast<unsigned long long>(span.io.cached_pages),
        static_cast<unsigned long long>(span.io.tuples_processed),
        static_cast<unsigned long long>(span.io.hash_probes));
    if (span.status_code != 0) {
      out += StrFormat(", \"status\": \"%s\"",
                       StatusCodeName(span.status_code));
    }
    if (!span.counters.empty()) {
      out += ", \"counters\": {";
      for (size_t c = 0; c < span.counters.size(); ++c) {
        if (c > 0) out += ", ";
        out += StrFormat(
            "\"%s\": %llu", JsonEscape(span.counters[c].first).c_str(),
            static_cast<unsigned long long>(span.counters[c].second));
      }
      out += '}';
    }
    out += '}';
  }
  out += ']';
  return out;
}

std::string Trace::StructureSignature() const {
  std::string out;
  for (const TraceSpan& span : spans) {
    out += StrFormat("%u|%d|%s|%s|%d|rows=%llu|status=%d", span.id,
                     span.parent, span.name.c_str(), span.detail.c_str(),
                     span.query_id, static_cast<unsigned long long>(span.rows),
                     span.status_code);
    out += '|';
    AppendIo(span.io, out);
    for (const auto& [key, value] : span.counters) {
      out += StrFormat("|%s=%llu", key.c_str(),
                       static_cast<unsigned long long>(value));
    }
    out += '\n';
  }
  return out;
}

size_t Tracer::OpenSpan(std::string name, std::string detail, int query_id) {
  const size_t index = trace_.spans.size();
  TraceSpan& span = trace_.spans.emplace_back();
  span.id = static_cast<uint32_t>(index);
  span.parent = stack_.empty()
                    ? -1
                    : static_cast<int32_t>(stack_.back().index);
  span.depth = static_cast<uint32_t>(stack_.size());
  span.name = std::move(name);
  span.detail = std::move(detail);
  span.query_id = query_id;
  stack_.push_back(OpenFrame{index, disk_->stats(),
                             std::chrono::steady_clock::now(), ThreadCpuNs()});
  return index;
}

void Tracer::CloseSpan(size_t index) {
  SS_CHECK_MSG(!stack_.empty() && stack_.back().index == index,
               "trace spans must close innermost-first");
  const OpenFrame frame = stack_.back();
  stack_.pop_back();
  TraceSpan& span = trace_.spans[index];
  span.io = disk_->stats() - frame.io_at_open;
  span.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - frame.wall_at_open)
          .count();
  span.cpu_ms =
      static_cast<double>(ThreadCpuNs() - frame.cpu_ns_at_open) / 1e6;
}

Trace Tracer::Take() {
  SS_CHECK_MSG(stack_.empty(), "Tracer::Take with %zu open spans",
               stack_.size());
  Trace out = std::move(trace_);
  trace_ = Trace();
  trace_.timings = out.timings;
  return out;
}

Tracer* Tracer::Current() { return g_current_tracer; }

Tracer::Scope::Scope(Tracer* tracer) : previous_(g_current_tracer) {
  g_current_tracer = tracer;
}

Tracer::Scope::~Scope() { g_current_tracer = previous_; }

const char* StatusCodeName(int code) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kShuttingDown:
      return "SHUTTING_DOWN";
  }
  return "UNKNOWN";
}

}  // namespace obs
}  // namespace starshare
