// Process-wide metrics: named counters, gauges and fixed-bucket histograms
// fed by the buffer pool, result cache, thread pool, fault injector and the
// shared operators (see DESIGN.md "Tracing & metrics" for the catalogue of
// metric names in use).
//
// Hot-path contract: updating a metric is one relaxed atomic RMW — no lock,
// no allocation. The registry mutex is taken only when *resolving* a name
// to a metric, so call sites cache the reference once:
//
//   static obs::Counter& hits = obs::Metrics().counter("buffer_pool.hits");
//   hits.Add();
//
// Metric objects live for the process (the registry never deletes), so
// cached references stay valid across ResetAll().

#ifndef STARSHARE_OBS_METRICS_H_
#define STARSHARE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace starshare {
namespace obs {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Power-of-two buckets: bucket 0 counts the value 0, bucket i >= 1 counts
// values in [2^(i-1), 2^i). The last bucket absorbs everything from its
// lower bound up. Boundaries are fixed at compile time so histograms from
// different runs (or different builds) are always comparable.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 32;

  static size_t BucketIndex(uint64_t v) {
    if (v == 0) return 0;
    const size_t bit = 64 - static_cast<size_t>(__builtin_clzll(v));
    return bit < kNumBuckets ? bit : kNumBuckets - 1;
  }
  static uint64_t BucketLowerBound(size_t i) {
    return i == 0 ? 0 : uint64_t{1} << (i - 1);
  }

  void Observe(uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// The process-wide registry. Metrics are created on first use and never
// destroyed; ResetAll zeroes every value but keeps registrations (and the
// references call sites cached) intact.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Snapshot renderers; names are emitted sorted so output is stable.
  std::string ToText() const;
  std::string ToJson() const;

  // Zeroes every registered metric (tests and bench sections).
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;  // guards the maps, not the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

inline MetricsRegistry& Metrics() { return MetricsRegistry::Instance(); }

}  // namespace obs
}  // namespace starshare

#endif  // STARSHARE_OBS_METRICS_H_
