#include "obs/metrics.h"

#include "common/str_util.h"

namespace starshare {
namespace obs {

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += StrFormat("%-36s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    out += StrFormat("%-36s %lld\n", name.c_str(),
                     static_cast<long long>(g->value()));
  }
  for (const auto& [name, h] : histograms_) {
    out += StrFormat("%-36s count=%llu sum=%llu", name.c_str(),
                     static_cast<unsigned long long>(h->count()),
                     static_cast<unsigned long long>(h->sum()));
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (h->bucket(i) == 0) continue;
      out += StrFormat(
          " [%llu+]=%llu",
          static_cast<unsigned long long>(Histogram::BucketLowerBound(i)),
          static_cast<unsigned long long>(h->bucket(i)));
    }
    out += '\n';
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += StrFormat("%s\"%s\": %llu", first ? "" : ", ", name.c_str(),
                     static_cast<unsigned long long>(c->value()));
    first = false;
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += StrFormat("%s\"%s\": %lld", first ? "" : ", ", name.c_str(),
                     static_cast<long long>(g->value()));
    first = false;
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += StrFormat("%s\"%s\": {\"count\": %llu, \"sum\": %llu, "
                     "\"buckets\": [",
                     first ? "" : ", ", name.c_str(),
                     static_cast<unsigned long long>(h->count()),
                     static_cast<unsigned long long>(h->sum()));
    bool first_bucket = true;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (h->bucket(i) == 0) continue;
      out += StrFormat(
          "%s[%llu, %llu]", first_bucket ? "" : ", ",
          static_cast<unsigned long long>(Histogram::BucketLowerBound(i)),
          static_cast<unsigned long long>(h->bucket(i)));
      first_bucket = false;
    }
    out += "]}";
    first = false;
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, g] : gauges_) g->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace starshare
