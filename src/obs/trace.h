// Execution tracing: a span tree recorded per Engine::ExecuteTraced call
// (one span per optimizer phase, shared-class operator, per-query routing
// branch, view build), carrying IoStats deltas, row/batch counts and
// cache/fault events next to the cost model's estimates.
//
// Determinism contract (asserted by trace_test.cc): span *structure* — ids,
// nesting, names, per-span IoStats, row counts, status codes and named
// counters — is identical across thread counts and batch sizes. Only the
// wall/cpu timings and the batch tally vary. Two mechanisms make this hold
// by construction:
//
//   1. Spans are opened only on the thread that owns the Tracer (the one
//      Engine::ExecuteTraced runs on). Morsel workers never have a tracer
//      bound, so span sites reached from worker threads are no-ops, and the
//      shared-pass spans close only after ParallelContext has merged every
//      worker's DiskModel back into the parent — the PR 2/3 guarantee that
//      merged IoStats equal the serial counts then makes each span's I/O
//      delta exact at any parallelism.
//   2. No span is created per morsel or per batch; the enclosing operator
//      span carries a `batches` tally instead, which renderers and the
//      structure signature treat as non-structural.
//
// Cost when disabled: every ScopedSpan site is one thread-local load and a
// branch (no tracer bound -> no-op), mirroring FaultInjector::enabled().

#ifndef STARSHARE_OBS_TRACE_H_
#define STARSHARE_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/disk_model.h"
#include "storage/io_stats.h"

namespace starshare {
namespace obs {

// One node of the span tree. Fields up to `counters` are structural (stable
// across thread counts and batch sizes); wall_ms / cpu_ms / batches are not.
struct TraceSpan {
  uint32_t id = 0;        // preorder creation index, 0 = root
  int32_t parent = -1;    // parent span id, -1 for the root
  uint32_t depth = 0;     // nesting depth (root = 0)
  std::string name;       // site name, e.g. "exec.shared_scan"
  std::string detail;     // free-form qualifier, e.g. the base view spec
  int query_id = -1;      // owning query, -1 when not query-scoped
  uint64_t rows = 0;      // rows produced / examined at this node
  IoStats io;             // I/O charged while the span was open (inclusive)
  int status_code = 0;    // StatusCode observed at this node (0 = OK)
  double est_ms = -1.0;   // cost-model estimate, < 0 when not a plan node
  // Named structural counters (cache hits, fault events, bitmap sizes...).
  std::vector<std::pair<std::string, uint64_t>> counters;

  // Non-structural measurements.
  double wall_ms = 0.0;
  double cpu_ms = 0.0;      // thread CPU time of the opening thread
  uint64_t batches = 0;     // vectorized batches / morsels processed

  void AddCounter(const std::string& key, uint64_t value);
};

struct TraceRenderOptions {
  // Replaces wall/cpu timings with "--" so output is byte-stable across
  // runs (golden tests, cross-config structure comparisons).
  bool mask_timings = false;
  // Omits the batch tally, which varies with batch size / morsel size.
  bool show_batches = true;
};

// The completed span tree for one traced execution. Spans are stored in
// creation (preorder) order; `timings` lets renderers turn each span's
// IoStats delta into deterministic modeled-I/O "actual" milliseconds for
// the estimated-vs-actual column.
class Trace {
 public:
  std::vector<TraceSpan> spans;
  DiskTimings timings;

  bool empty() const { return spans.empty(); }
  size_t size() const { return spans.size(); }

  // First span with `name` (nullptr if absent).
  const TraceSpan* Find(const std::string& name) const;
  // All spans with `name`, in creation order.
  std::vector<const TraceSpan*> FindAll(const std::string& name) const;

  // Deterministic modeled cost of a span: modeled I/O from its page counts.
  double ActualMs(const TraceSpan& span) const {
    return timings.ModeledIoMs(span.io);
  }

  // Indented tree, one line per span (the \explain rendering).
  std::string ToText(const TraceRenderOptions& options = {}) const;

  // Flat span array keyed by id/parent (the bench profile export).
  std::string ToJson() const;

  // Canonical encoding of every structural field and nothing else; equal
  // signatures mean structurally identical traces. trace_test.cc compares
  // these across thread counts and batch sizes.
  std::string StructureSignature() const;
};

// Records one trace. A Tracer is owned and driven by a single thread (the
// one that runs Engine::ExecuteTraced); it snapshots the engine DiskModel
// at span open/close to attribute I/O deltas. Bind it to the current thread
// with Tracer::Scope so ScopedSpan sites below can find it.
class Tracer {
 public:
  explicit Tracer(const DiskModel* disk) : disk_(disk) {
    trace_.timings = disk->timings();
  }

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Opens a span as a child of the innermost open span and returns its
  // index into spans(). Spans must be closed innermost-first.
  size_t OpenSpan(std::string name, std::string detail = "",
                  int query_id = -1);
  void CloseSpan(size_t index);

  TraceSpan& span(size_t index) { return trace_.spans[index]; }

  // Finalizes and returns the trace; all spans must be closed.
  Trace Take();

  // The tracer bound to this thread, or nullptr (the common, disabled
  // case — one thread-local load and a null check).
  static Tracer* Current();

  // RAII thread binding. Worker threads never construct one, which is what
  // keeps span structure independent of parallelism.
  class Scope {
   public:
    explicit Scope(Tracer* tracer);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Tracer* previous_;
  };

 private:
  struct OpenFrame {
    size_t index;
    IoStats io_at_open;
    std::chrono::steady_clock::time_point wall_at_open;
    uint64_t cpu_ns_at_open;
  };

  const DiskModel* disk_;
  Trace trace_;
  std::vector<OpenFrame> stack_;
};

// A span site. No-op (one TLS load + branch) when no tracer is bound to
// the calling thread; otherwise opens a span for the enclosing scope.
// The mutators are safe to call either way.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, std::string detail = "",
                      int query_id = -1)
      : tracer_(Tracer::Current()) {
    if (tracer_ != nullptr) {
      index_ = tracer_->OpenSpan(name, std::move(detail), query_id);
    }
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->CloseSpan(index_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return tracer_ != nullptr; }

  void AddRows(uint64_t n) {
    if (tracer_ != nullptr) tracer_->span(index_).rows += n;
  }
  void AddBatches(uint64_t n) {
    if (tracer_ != nullptr) tracer_->span(index_).batches += n;
  }
  void SetStatus(const Status& status) {
    if (tracer_ != nullptr) {
      tracer_->span(index_).status_code = static_cast<int>(status.code());
    }
  }
  void SetEstMs(double est_ms) {
    if (tracer_ != nullptr) tracer_->span(index_).est_ms = est_ms;
  }
  void AddCounter(const char* key, uint64_t value) {
    if (tracer_ != nullptr) tracer_->span(index_).AddCounter(key, value);
  }

 private:
  Tracer* tracer_;
  size_t index_ = 0;
};

// Human-readable StatusCode name ("OK", "UNAVAILABLE", ...).
const char* StatusCodeName(int code);

}  // namespace obs
}  // namespace starshare

#endif  // STARSHARE_OBS_TRACE_H_
