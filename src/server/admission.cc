#include "server/admission.h"

#include <algorithm>

namespace starshare {

uint64_t EstimatedAggBytes(const DimensionalQuery& query,
                           const StarSchema& schema) {
  // One packed 64-bit key + one 64-bit accumulator per estimated group.
  return query.EstimatedGroups(schema) * 16;
}

bool BudgetAdmits(const MemoryBudget& budget, const DimensionalQuery& query,
                  const StarSchema& schema) {
  if (!budget.bounded()) return true;
  return EstimatedAggBytes(query, schema) <= budget.total_bytes();
}

bool ScanOnlyClass(const ClassPlan& cls) {
  for (const LocalPlan& member : cls.members) {
    if (member.method != JoinMethod::kHashScan) return false;
  }
  return !cls.members.empty();
}

JoinOrOpen EvaluateJoinOrOpen(
    const CostModel& cost, const MaterializedView& view,
    const std::vector<const DimensionalQuery*>& active,
    const ClassPlan& incoming, uint64_t cursor_rows) {
  JoinOrOpen out;
  out.open_ms = incoming.EstMs();

  double nonshared_ms = 0;
  std::vector<const DimensionalQuery*> combined = active;
  for (const LocalPlan& member : incoming.members) {
    nonshared_ms += member.EstMs();
    combined.push_back(member.query);
  }

  // Wraparound I/O: late members re-read the prefix [0, cursor) the scan
  // has already passed, a `cursor/num_rows` fraction of one full scan.
  const uint64_t num_rows = view.table().num_rows();
  const double wrap_fraction =
      num_rows == 0 ? 0.0
                    : static_cast<double>(cursor_rows) /
                          static_cast<double>(num_rows);
  const double wrap_io_ms = wrap_fraction * cost.ScanIoMs(view);

  // Marginal shared CPU of carrying the extra pass-mask bits for the rest
  // of the revolution (the §5 CostOfAdd idea applied to a scan mid-flight).
  const double cpu_delta =
      std::max(0.0, cost.SharedScanCpuMs(combined, view) -
                        cost.SharedScanCpuMs(active, view));

  out.join_ms = nonshared_ms + wrap_io_ms + cpu_delta;
  out.join = out.join_ms < out.open_ms;
  return out;
}

}  // namespace starshare
