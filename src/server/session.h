// A client session on the query server: a lightweight, copyable handle
// identifying who submitted what. Closing a session cancels its
// outstanding queries (the "client disconnected mid-scan" path); queries
// from other sessions riding the same shared scan are unaffected.

#ifndef STARSHARE_SERVER_SESSION_H_
#define STARSHARE_SERVER_SESSION_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "server/query_handle.h"

namespace starshare {

class QueryServer;

class Session {
 public:
  Session() = default;

  uint64_t id() const { return id_; }
  bool valid() const { return server_ != nullptr; }

  // Enqueues one query for admission. Returns immediately with a handle.
  QueryHandle Submit(const DimensionalQuery& query);

  // Enqueues several queries so they reach the SAME admission round — they
  // are planned together, exactly as one batch Execute would plan them.
  std::vector<QueryHandle> SubmitBatch(
      const std::vector<DimensionalQuery>& queries);

  // Disconnects: outstanding queries of this session complete with
  // kUnavailable at the server's next opportunity. Idempotent.
  void Close();

 private:
  friend class QueryServer;
  Session(QueryServer* server, uint64_t id) : server_(server), id_(id) {}

  QueryServer* server_ = nullptr;
  uint64_t id_ = 0;
};

}  // namespace starshare

#endif  // STARSHARE_SERVER_SESSION_H_
