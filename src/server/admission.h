// The online admission policy: the paper's §5/§6 "join this class or open
// a new one" arithmetic, evaluated per admission round instead of once per
// batch. Pure functions over the cost model so the policy is unit-testable
// without a running server.

#ifndef STARSHARE_SERVER_ADMISSION_H_
#define STARSHARE_SERVER_ADMISSION_H_

#include <cstdint>
#include <vector>

#include "cost/cost_model.h"
#include "cube/materialized_view.h"
#include "exec/memory_budget.h"
#include "plan/plan.h"
#include "query/query.h"
#include "schema/star_schema.h"

namespace starshare {

// Estimated resident aggregation bytes for `query` (packed key + measure
// per estimated result group) — the admission-time proxy for the memory a
// query will pin while riding a continuous scan.
uint64_t EstimatedAggBytes(const DimensionalQuery& query,
                           const StarSchema& schema);

// Admission gate on the memory budget: a query whose estimated aggregation
// state exceeds the ENTIRE budget can never finish even with the whole
// grant, so it is denied up front (kResourceExhausted) instead of failing
// mid-flight. Queries within budget are admitted — spilling handles
// overflow during execution.
bool BudgetAdmits(const MemoryBudget& budget, const DimensionalQuery& query,
                  const StarSchema& schema);

// True when every member of the class runs the §3.1 hash-scan method —
// the only shape a continuous scan (and hence late attachment) supports.
bool ScanOnlyClass(const ClassPlan& cls);

// The two sides of the join-or-open decision for a class arriving while a
// compatible shared scan is at `cursor_rows`:
//   open_ms : run the incoming class standalone from row 0 (its EstMs).
//   join_ms : ride the in-flight scan — the members' non-shared work, plus
//             the wraparound re-read of rows [0, cursor) the late members
//             owe, plus the marginal shared-scan CPU of widening the pass
//             masks from `active` to active+incoming.
// join is true iff join_ms < open_ms (ties open a fresh class, matching
// the batch optimizers' preference for the standalone plan).
struct JoinOrOpen {
  bool join = false;
  double join_ms = 0;
  double open_ms = 0;
};
JoinOrOpen EvaluateJoinOrOpen(
    const CostModel& cost, const MaterializedView& view,
    const std::vector<const DimensionalQuery*>& active,
    const ClassPlan& incoming, uint64_t cursor_rows);

}  // namespace starshare

#endif  // STARSHARE_SERVER_ADMISSION_H_
