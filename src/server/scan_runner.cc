#include "server/scan_runner.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "exec/operators/star_join_filter.h"
#include "exec/shared_operators.h"
#include "obs/metrics.h"
#include "parallel/morsel.h"
#include "parallel/morsel_pipeline.h"
#include "parallel/parallel_context.h"

namespace starshare {
namespace {

using internal::AllQueriesMask;
using internal::BuildSharedFilters;
using internal::MemberBindFault;

// One morsel's per-member match streams, ascending row order (the same
// buffer the batch class pipeline merges).
struct MorselMatches {
  std::vector<QueryMatchBatch> slots;
};

}  // namespace

ContinuousScanRun::ContinuousScanRun(const StarSchema& schema,
                                     const MaterializedView& view,
                                     DiskModel& disk,
                                     const ParallelPolicy& policy,
                                     uint64_t segment_rows)
    : schema_(schema),
      view_(view),
      disk_(disk),
      policy_(policy),
      cursor_(view.table().num_rows(), segment_rows,
              view.table().rows_per_page()),
      scan_(view.table(), disk, 0, 0, policy.batch.EffectiveBatchRows()) {
  disk_.TakeFault();  // discard faults latched by earlier, unrelated work
}

Status ContinuousScanRun::Attach(const DimensionalQuery* query,
                                 uint64_t token) {
  SS_CHECK_MSG(members_.size() < kMaxClassQueries,
               "continuous scan already carries the class limit of %zu",
               kMaxClassQueries);
  SS_RETURN_IF_ERROR(MemberBindFault(*query));
  bound_.emplace_back(schema_, *query, view_);
  Member member;
  member.query = query;
  member.token = token;
  member.attach_cursor = cursor_.cursor();
  members_.push_back(std::move(member));
  RebuildFilters();
  return Status::Ok();
}

bool ContinuousScanRun::Detach(uint64_t token) {
  std::vector<BoundQuery> keep_bound;
  std::vector<Member> keep_members;
  bool found = false;
  for (size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].token == token) {
      found = true;
      continue;
    }
    keep_bound.push_back(std::move(bound_[i]));
    keep_members.push_back(std::move(members_[i]));
  }
  if (!found) return false;
  bound_ = std::move(keep_bound);
  members_ = std::move(keep_members);
  RebuildFilters();
  return true;
}

std::vector<const DimensionalQuery*> ContinuousScanRun::queries() const {
  std::vector<const DimensionalQuery*> out;
  out.reserve(members_.size());
  for (const Member& m : members_) out.push_back(m.query);
  return out;
}

void ContinuousScanRun::RebuildFilters() {
  if (members_.empty()) {
    filters_.clear();
    all_mask_ = 0;
    return;
  }
  filters_ = BuildSharedFilters(schema_, queries(), view_);
  all_mask_ = AllQueriesMask(members_.size());
}

void ContinuousScanRun::DispatchMatches(
    uint64_t seg_begin, const std::vector<QueryMatchBatch>& matches) {
  for (size_t i = 0; i < members_.size(); ++i) {
    const QueryMatchBatch& m = matches[i];
    if (m.size() == 0) continue;
    Member& member = members_[i];
    if (member.attach_cursor > 0 && seg_begin >= member.attach_cursor) {
      // Pre-wrap rows [attach, N): out of serial order for this member —
      // park them until the post-wrap prefix has folded.
      member.buffered.Append(m.keys.data(), m.values.data(), m.size());
    } else {
      bound_[i].AccumulateRawBatch(m.keys.data(), m.values.data(), m.size());
    }
  }
}

void ContinuousScanRun::DriveSegment(const DoneFn& on_done) {
  SS_CHECK_MSG(!members_.empty(), "DriveSegment on an empty continuous scan");
  static obs::Counter& segments = obs::Metrics().counter("server.segments");
  segments.Add();

  const CircularScanCursor::Segment seg = cursor_.Next();
  const Table& table = view_.table();
  const size_t n = members_.size();
  const bool vectorized = policy_.batch.vectorized;

  if (!policy_.engaged()) {
    // Serial drive: the run's one resumable scan source, repositioned on
    // this segment, under a fresh filter over the current membership.
    scan_.Reset(seg.begin, seg.end);
    StarJoinFilterOp filter(&scan_, disk_, filters_, all_mask_, bound_, n,
                            vectorized);
    std::vector<QueryMatchBatch> matches(n);
    ClassBatch batch;
    batch.matches = &matches;
    filter.Open();
    while (filter.NextBatch(batch)) {
      DispatchMatches(seg.begin, matches);
      for (QueryMatchBatch& m : matches) m.Clear();
    }
    filter.Close();
  } else {
    const size_t workers =
        std::min(policy_.parallelism, policy_.pool->num_threads());
    ParallelContext ctx(disk_, workers);
    const uint64_t morsel_rows =
        policy_.morsel_rows > 0
            ? policy_.morsel_rows
            : MorselDispatcher::DefaultMorselRows(
                  seg.num_rows(), table.rows_per_page(), workers);
    MorselDispatcher dispatcher(seg.num_rows(), morsel_rows,
                                /*window=*/4 * workers);
    const size_t batch_rows = policy_.batch.EffectiveBatchRows();
    RunMorselPipeline<MorselMatches>(
        policy_.pool, workers, dispatcher, ctx,
        [&](const Morsel& morsel, DiskModel& wdisk, MorselMatches& buffer) {
          // Morsel offsets are relative to the segment; both the segment
          // start and the morsel grid are page-aligned, so each page is
          // still charged by exactly one worker.
          buffer.slots.resize(n);
          ScanSourceOp scan_src(table, wdisk, seg.begin + morsel.begin,
                                seg.begin + morsel.end, batch_rows);
          StarJoinFilterOp filter(&scan_src, wdisk, filters_, all_mask_,
                                  bound_, n, vectorized);
          std::vector<QueryMatchBatch> matches(n);
          ClassBatch batch;
          batch.matches = &matches;
          filter.Open();
          while (filter.NextBatch(batch)) {
            for (size_t qi = 0; qi < n; ++qi) {
              buffer.slots[qi].Append(matches[qi].keys.data(),
                                      matches[qi].values.data(),
                                      matches[qi].size());
              matches[qi].Clear();
            }
          }
          filter.Close();
        },
        [&](const Morsel&, const MorselMatches& buffer) {
          DispatchMatches(seg.begin, buffer.slots);
        });
    ctx.MergeIntoParent();
  }

  // A device fault during the segment takes down every member riding the
  // scan — the same all-or-nothing semantics as the batch shared pass; the
  // caller runs each member's fallback.
  const Status fault = disk_.TakeFault();
  if (!fault.ok()) {
    FailAll(fault, on_done);
    return;
  }

  for (Member& m : members_) m.rows_seen += seg.num_rows();

  bool any_done = false;
  for (const Member& m : members_) {
    if (m.rows_seen >= cursor_.num_rows()) {
      any_done = true;
      break;
    }
  }
  if (!any_done) return;

  std::vector<BoundQuery> keep_bound;
  std::vector<Member> keep_members;
  for (size_t i = 0; i < members_.size(); ++i) {
    Member& m = members_[i];
    if (m.rows_seen < cursor_.num_rows()) {
      keep_bound.push_back(std::move(bound_[i]));
      keep_members.push_back(std::move(m));
      continue;
    }
    SS_DCHECK(m.rows_seen == cursor_.num_rows());
    // Completion on wraparound: the aggregation already holds the fold of
    // [0, attach); replaying the buffered [attach, N) matches finishes the
    // serial order [0, N) exactly.
    bound_[i].AccumulateRawBatch(m.buffered.keys.data(),
                                 m.buffered.values.data(), m.buffered.size());
    on_done(m.token, bound_[i].Finish(), m.attach_cursor);
  }
  bound_ = std::move(keep_bound);
  members_ = std::move(keep_members);
  RebuildFilters();
}

void ContinuousScanRun::FailAll(const Status& status, const DoneFn& on_done) {
  for (const Member& m : members_) {
    on_done(m.token, status, m.attach_cursor);
  }
  members_.clear();
  bound_.clear();
  filters_.clear();
  all_mask_ = 0;
}

}  // namespace starshare
