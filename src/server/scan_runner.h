// ContinuousScanRun: one circular shared scan (§3.1 hash method) that
// queries can attach to mid-flight. The table is driven segment by segment
// on a fixed page-aligned grid (parallel/scan_cursor.h); at every segment
// boundary the admission controller may attach new members at the current
// cursor, and a member completes when the cursor comes back around to its
// attachment point ("completion on wraparound").
//
// Bit-identity invariant. The serial engine folds each query's aggregation
// in ascending row order [0, N). A member attached at cursor `a` sees the
// rows out of that order — [a, N) first, then [0, a) after the wrap — so
// the run BUFFERS its matches from rows [a, N) and folds its matches from
// rows [0, a) directly as they arrive; at completion the aggregation holds
// exactly the fold of [0, a), the buffered [a, N) matches are replayed in
// segment order, and the total fold sequence is [0, a)·[a, N) — the serial
// order, hence bit-identical results at any thread count, batch size and
// attachment point. A member attached at cursor 0 buffers nothing and
// folds every segment directly (the plain serial order).
//
// I/O. Segments are driven through the same ScanSourceOp high-water page
// charging as a batch scan, so a full-revolution member charges exactly
// the batch scan's pages; a late member's revolution additionally re-reads
// the prefix [0, a) — wraparound I/O is real modeled I/O, charged again.
//
// Threading: the whole object is confined to the controller thread.
// Within a segment, rows may be produced morsel-parallel on the engine's
// pool (the standard ordered-merge pipeline); the fold always happens on
// the controller.

#ifndef STARSHARE_SERVER_SCAN_RUNNER_H_
#define STARSHARE_SERVER_SCAN_RUNNER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "cube/materialized_view.h"
#include "exec/bound_query.h"
#include "exec/operators/operator.h"
#include "exec/operators/scan_source.h"
#include "exec/shared_star_join_internal.h"
#include "parallel/policy.h"
#include "parallel/scan_cursor.h"
#include "query/result.h"
#include "schema/star_schema.h"
#include "storage/disk_model.h"

namespace starshare {

class ContinuousScanRun {
 public:
  // `segment_rows` == 0 picks the cursor's default grid. Discards any
  // stale latched fault on `disk`, mirroring the batch class pipeline.
  ContinuousScanRun(const StarSchema& schema, const MaterializedView& view,
                    DiskModel& disk, const ParallelPolicy& policy,
                    uint64_t segment_rows);

  ContinuousScanRun(const ContinuousScanRun&) = delete;
  ContinuousScanRun& operator=(const ContinuousScanRun&) = delete;

  // Called for each member leaving the run: on completion (OK result), on
  // a device fault (every current member fails; the caller owns fallback),
  // or on detach/shutdown. `attach_cursor` is where the member joined.
  using DoneFn = std::function<void(uint64_t token, Result<QueryResult> result,
                                    uint64_t attach_cursor)>;

  // Joins `query` at the current cursor. Fails (without attaching) when the
  // per-member bind fault site fires — the caller then routes the query to
  // its fallback, exactly like a batch member failing bind. `query` must
  // outlive the run; the caller keeps membership under kMaxClassQueries.
  Status Attach(const DimensionalQuery* query, uint64_t token);

  // Drops a member before completion (client disconnect); its partial
  // state is discarded without calling `on_done`. False if unknown.
  bool Detach(uint64_t token);

  // Drives one segment of the grid, folding / buffering matches per the
  // invariant above, then reports members that completed this boundary (or
  // every member, if the device faulted) through `on_done`.
  void DriveSegment(const DoneFn& on_done);

  // Fails every remaining member with `status` (server shutdown).
  void FailAll(const Status& status, const DoneFn& on_done);

  bool empty() const { return members_.empty(); }
  size_t num_members() const { return members_.size(); }
  uint64_t cursor() const { return cursor_.cursor(); }
  uint64_t num_rows() const { return cursor_.num_rows(); }
  uint64_t revolutions() const { return cursor_.revolutions(); }
  const MaterializedView& view() const { return view_; }

  // The queries currently riding the scan (admission uses these for the
  // marginal shared-CPU term of the join-or-open decision).
  std::vector<const DimensionalQuery*> queries() const;

 private:
  struct Member {
    const DimensionalQuery* query = nullptr;
    uint64_t token = 0;
    uint64_t attach_cursor = 0;
    uint64_t rows_seen = 0;
    // Matches from pre-wrap rows [attach_cursor, N), replayed at completion.
    QueryMatchBatch buffered;
  };

  void RebuildFilters();
  // Routes one segment's per-member match slots: buffer or fold.
  void DispatchMatches(uint64_t seg_begin,
                       const std::vector<QueryMatchBatch>& matches);

  const StarSchema& schema_;
  const MaterializedView& view_;
  DiskModel& disk_;
  ParallelPolicy policy_;
  CircularScanCursor cursor_;
  ScanSourceOp scan_;  // resumable: Reset() repositions it per segment

  // Index-aligned: bound_[i] is members_[i]'s aggregation state. BoundQuery
  // is move-only, so membership changes rebuild the vectors by moving
  // survivors instead of erasing in place.
  std::vector<BoundQuery> bound_;
  std::vector<Member> members_;
  std::vector<internal::SharedDimFilter> filters_;
  uint32_t all_mask_ = 0;
};

}  // namespace starshare

#endif  // STARSHARE_SERVER_SCAN_RUNNER_H_
