// Knobs for the continuous shared-scan query server (server/query_server.h).
// Lives in its own header so core/engine.h can embed a ServerConfig in
// EngineConfig without pulling in the server itself.

#ifndef STARSHARE_SERVER_SERVER_CONFIG_H_
#define STARSHARE_SERVER_SERVER_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "opt/optimizer.h"

namespace starshare {

struct ServerConfig {
  // Optimizer used for each admission round: the queries of one round are
  // planned together, exactly as a batch Execute would plan them. Any
  // OptimizerKind works; kDagGreedy is the strongest heuristic (never a
  // costlier plan than kGlobalGreedy on tested workloads, and a faster
  // search than kExhaustive).
  OptimizerKind optimizer = OptimizerKind::kGlobalGreedy;

  // Rows per continuous-scan segment (0 = automatic: page-aligned, ~8
  // segments per revolution). Segments are the late-attachment granularity:
  // a query arriving mid-scan waits at most one segment for a boundary.
  uint64_t segment_rows = 0;

  // Submissions parked before admission; beyond this Submit is denied with
  // kResourceExhausted instead of queuing unboundedly.
  size_t max_pending = 65536;

  // Answer repeated identical queries from the engine's result cache
  // (requires EngineConfig::result_cache_entries > 0 to have any effect).
  bool use_result_cache = true;

  // Allow queries to attach to a compatible shared scan already in flight
  // (completing on wraparound). Off = every admitted class runs from row 0.
  bool allow_late_attach = true;

  // Starvation guard for allow_late_attach: once non-attachable class jobs
  // are waiting behind an in-flight continuous scan, the scan may keep
  // absorbing attachments for at most this many full revolutions before
  // attachment pauses and it drains, letting the waiters run. Attachment
  // is unlimited while nothing waits.
  uint64_t max_absorb_revolutions = 4;

  // Test hook, called on the controller thread after every continuous-scan
  // segment with the cursor position the scan is paused at. Submissions
  // made from the hook are admitted at exactly that cursor — tests use this
  // to pin late attachments to a chosen boundary. Keep it fast.
  std::function<void(uint64_t cursor_rows)> on_segment_boundary;
};

}  // namespace starshare

#endif  // STARSHARE_SERVER_SERVER_CONFIG_H_
