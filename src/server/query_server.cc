#include "server/query_server.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/macros.h"
#include "common/str_util.h"
#include "exec/shared_operators.h"
#include "obs/metrics.h"
#include "server/admission.h"

namespace starshare {
namespace {

// Process-wide server metrics (obs/metrics.h); the per-server atomics on
// QueryServer exist so tests can assert on one instance in isolation.
struct ServerMetrics {
  obs::Counter& submitted = obs::Metrics().counter("server.submitted");
  obs::Counter& completed = obs::Metrics().counter("server.completed");
  obs::Counter& admitted = obs::Metrics().counter("server.admitted");
  obs::Counter& classes_opened =
      obs::Metrics().counter("server.classes_opened");
  obs::Counter& attached = obs::Metrics().counter("server.attached");
  obs::Counter& cache_hits = obs::Metrics().counter("server.cache_hits");
  obs::Counter& denied = obs::Metrics().counter("server.denied");
  obs::Counter& cancelled = obs::Metrics().counter("server.cancelled");
  obs::Counter& fallbacks = obs::Metrics().counter("server.fallbacks");
  obs::Gauge& queue_depth = obs::Metrics().gauge("server.queue_depth");
  obs::Gauge& inflight_classes =
      obs::Metrics().gauge("server.inflight_classes");
  obs::Gauge& sessions_open = obs::Metrics().gauge("server.sessions_open");
  obs::Histogram& latency_us = obs::Metrics().histogram("server.latency_us");
};

ServerMetrics& SMetrics() {
  static ServerMetrics metrics;
  return metrics;
}

}  // namespace

// ---- Session forwarding ----------------------------------------------------

QueryHandle Session::Submit(const DimensionalQuery& query) {
  SS_CHECK_MSG(valid(), "Submit on an invalid Session");
  return server_->Submit(id_, query);
}

std::vector<QueryHandle> Session::SubmitBatch(
    const std::vector<DimensionalQuery>& queries) {
  SS_CHECK_MSG(valid(), "SubmitBatch on an invalid Session");
  return server_->SubmitBatch(id_, queries);
}

void Session::Close() {
  if (server_ != nullptr) server_->CloseSession(id_);
}

// ---- Lifecycle -------------------------------------------------------------

QueryServer::QueryServer(Engine& engine, ServerConfig config,
                         ResultCache* cache, const MemoryBudget* budget,
                         const Executor* executor)
    : engine_(engine),
      config_(std::move(config)),
      cache_(cache),
      budget_(budget),
      executor_(executor) {
  controller_ = std::thread([this] { ControllerLoop(); });
}

QueryServer::~QueryServer() { Stop(); }

void QueryServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_.store(true, std::memory_order_release);
  }
  work_ready_.notify_all();
  if (controller_.joinable()) controller_.join();
}

// ---- Sessions --------------------------------------------------------------

Session QueryServer::OpenSession() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_session_++;
  open_sessions_.insert(id);
  SMetrics().sessions_open.Add(1);
  return Session(this, id);
}

void QueryServer::CloseSession(uint64_t session_id) {
  std::vector<std::weak_ptr<serverdetail::HandleState>> states;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Session 0 is the implicit default (Engine::Submit) and always stays
    // open; ids never opened, or closed already, are ignored so the
    // sessions_open gauge only moves for real open->closed transitions.
    if (session_id == 0 || open_sessions_.erase(session_id) == 0) return;
    auto it = session_states_.find(session_id);
    if (it != session_states_.end()) {
      states = std::move(it->second);
      session_states_.erase(it);
    }
  }
  SMetrics().sessions_open.Add(-1);
  for (auto& weak : states) {
    if (auto state = weak.lock()) {
      state->cancelled.store(true, std::memory_order_release);
    }
  }
  work_ready_.notify_one();  // pending cancellations drain promptly
}

// ---- Submission ------------------------------------------------------------

QueryHandle QueryServer::Submit(uint64_t session_id,
                                const DimensionalQuery& query) {
  return SubmitBatch(session_id, {query})[0];
}

std::vector<QueryHandle> QueryServer::SubmitBatch(
    uint64_t session_id, const std::vector<DimensionalQuery>& queries) {
  std::vector<QueryHandle> handles;
  handles.reserve(queries.size());
  std::vector<std::shared_ptr<serverdetail::HandleState>> states;
  states.reserve(queries.size());
  const auto now = std::chrono::steady_clock::now();
  for (const DimensionalQuery& query : queries) {
    auto state = std::make_shared<serverdetail::HandleState>();
    state->query = query;
    state->session_id = session_id;
    state->submitted_at = now;
    handles.emplace_back(state);
    states.push_back(std::move(state));
  }

  // One lock hold for the whole batch: the controller's next admission
  // round sees either none or all of these queries, so they are planned
  // together exactly like one batch Execute.
  std::vector<std::pair<std::shared_ptr<serverdetail::HandleState>, Status>>
      refused;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Completed queries whose clients dropped the handle leave expired
    // weak_ptrs behind; prune on append so the vector tracks in-flight
    // queries instead of growing with the session's total traffic.
    auto tracked = session_states_.find(session_id);
    if (tracked != session_states_.end()) {
      auto& vec = tracked->second;
      vec.erase(std::remove_if(
                    vec.begin(), vec.end(),
                    [](const std::weak_ptr<serverdetail::HandleState>& weak) {
                      return weak.expired();
                    }),
                vec.end());
    }
    for (auto& state : states) {
      if (stop_requested_.load(std::memory_order_acquire)) {
        refused.emplace_back(state,
                             Status::ShuttingDown("query server stopped"));
        continue;
      }
      if (session_id != 0 && open_sessions_.count(session_id) == 0) {
        refused.emplace_back(
            state, Status::FailedPrecondition(StrFormat(
                       "session %llu is closed",
                       static_cast<unsigned long long>(session_id))));
        continue;
      }
      if (pending_.size() >= config_.max_pending) {
        refused.emplace_back(
            state, Status::ResourceExhausted(StrFormat(
                       "admission queue full (%zu pending)", pending_.size())));
        continue;
      }
      state->token = next_token_++;
      pending_.push_back(state);
      session_states_[session_id].emplace_back(state);
      submitted_.fetch_add(1, std::memory_order_relaxed);
      SMetrics().submitted.Add();
    }
    SMetrics().queue_depth.Set(static_cast<int64_t>(pending_.size()));
  }
  for (auto& [state, status] : refused) {
    if (status.code() == StatusCode::kResourceExhausted) {
      denied_.fetch_add(1, std::memory_order_relaxed);
      SMetrics().denied.Add();
    }
    QueryOutcome out;
    out.status = std::move(status);
    CompleteState(state, std::move(out));
  }
  work_ready_.notify_one();
  return handles;
}

// ---- Controller ------------------------------------------------------------

void QueryServer::ControllerLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] {
        return stop_requested_.load(std::memory_order_acquire) ||
               !pending_.empty();
      });
    }
    if (stop_requested()) break;
    AdmissionRound();
    while (!run_queue_.empty() && !stop_requested()) {
      ClassJob job = std::move(run_queue_.front());
      run_queue_.pop_front();
      UpdateInflightGauge();
      RunJob(std::move(job));
    }
    if (stop_requested()) break;
  }

  // Drain: everything still parked or queued completes typed, never hangs.
  const Status down = Status::ShuttingDown("query server stopped");
  std::deque<std::shared_ptr<serverdetail::HandleState>> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(pending_);
    SMetrics().queue_depth.Set(0);
  }
  for (auto& state : leftover) {
    QueryOutcome out;
    out.status = down;
    CompleteState(state, std::move(out));
  }
  for (ClassJob& job : run_queue_) {
    for (auto& state : job.states) {
      QueryOutcome out;
      out.status = down;
      CompleteState(state, std::move(out));
    }
  }
  run_queue_.clear();
  UpdateInflightGauge();
}

void QueryServer::AdmissionRound() {
  std::vector<std::shared_ptr<serverdetail::HandleState>> round;
  {
    std::lock_guard<std::mutex> lock(mu_);
    round.assign(pending_.begin(), pending_.end());
    pending_.clear();
    SMetrics().queue_depth.Set(0);
  }
  if (round.empty()) return;

  std::vector<std::shared_ptr<serverdetail::HandleState>> to_plan;
  for (auto& state : round) {
    if (state->cancelled.load(std::memory_order_acquire)) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      SMetrics().cancelled.Add();
      QueryOutcome out;
      out.status = Status::Unavailable("client disconnected");
      CompleteState(state, std::move(out));
      continue;
    }
    if (cache_ != nullptr && config_.use_result_cache) {
      const std::string key =
          ResultCache::KeyOf(state->query, engine_.schema());
      if (const QueryResult* hit = cache_->Lookup(key)) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        SMetrics().cache_hits.Add();
        QueryOutcome out;
        out.result = *hit;
        out.cache_hit = true;
        CompleteState(state, std::move(out));
        continue;
      }
    }
    if (budget_ != nullptr &&
        !BudgetAdmits(*budget_, state->query, engine_.schema())) {
      denied_.fetch_add(1, std::memory_order_relaxed);
      SMetrics().denied.Add();
      QueryOutcome out;
      out.status = Status::ResourceExhausted(StrFormat(
          "admission denied: Q%d's estimated aggregation state (%llu bytes) "
          "exceeds the whole memory budget (%llu bytes)",
          state->query.id(),
          static_cast<unsigned long long>(
              EstimatedAggBytes(state->query, engine_.schema())),
          static_cast<unsigned long long>(budget_->total_bytes())));
      CompleteState(state, std::move(out));
      continue;
    }
    to_plan.push_back(std::move(state));
  }

  // Plan in waves of distinct query ids: the optimizers (and the executor's
  // id-ordered results) assume ids are unique within one plan, which holds
  // per batch Execute but not across independent sessions.
  while (!to_plan.empty()) {
    std::vector<std::shared_ptr<serverdetail::HandleState>> wave;
    std::vector<std::shared_ptr<serverdetail::HandleState>> rest;
    std::unordered_set<int> wave_ids;
    for (auto& state : to_plan) {
      if (wave_ids.insert(state->query.id()).second) {
        wave.push_back(std::move(state));
      } else {
        rest.push_back(std::move(state));
      }
    }
    to_plan = std::move(rest);
    PlanWave(std::move(wave));
  }
}

void QueryServer::PlanWave(
    std::vector<std::shared_ptr<serverdetail::HandleState>> wave) {
  admitted_.fetch_add(wave.size(), std::memory_order_relaxed);
  SMetrics().admitted.Add(wave.size());
  std::vector<const DimensionalQuery*> queries;
  queries.reserve(wave.size());
  for (auto& state : wave) queries.push_back(&state->query);
  GlobalPlan plan = engine_.Optimize(queries, config_.optimizer);
  for (ClassPlan& cls : plan.classes) {
    ClassJob job;
    job.cls = cls;
    job.states.reserve(cls.members.size());
    for (const LocalPlan& member : cls.members) {
      for (auto& state : wave) {
        if (&state->query == member.query) {
          job.states.push_back(state);
          break;
        }
      }
    }
    SS_CHECK_MSG(job.states.size() == cls.members.size(),
                 "admission plan lost a member");
    if (TryAttach(job)) continue;
    classes_opened_.fetch_add(1, std::memory_order_relaxed);
    SMetrics().classes_opened.Add();
    run_queue_.push_back(std::move(job));
  }
  UpdateInflightGauge();
}

bool QueryServer::TryAttach(ClassJob& job) {
  if (active_run_ == nullptr || active_run_->empty()) return false;
  if (attach_paused_) return false;
  if (!config_.allow_late_attach) return false;
  if (!ScanOnlyClass(job.cls)) return false;
  if (job.cls.base != &active_run_->view()) return false;
  if (active_run_->num_members() + job.cls.members.size() > kMaxClassQueries) {
    return false;
  }
  const JoinOrOpen decision = EvaluateJoinOrOpen(
      engine_.cost_model(), active_run_->view(), active_run_->queries(),
      job.cls, active_run_->cursor());
  if (!decision.join) return false;

  const uint64_t cursor = active_run_->cursor();
  for (auto& state : job.states) {
    Status bind = active_run_->Attach(&state->query, state->token);
    if (!bind.ok()) {
      FallbackMember(state, bind, /*attached_late=*/true, cursor);
      continue;
    }
    active_states_[state->token] = ActiveMember{state, /*attached_late=*/true};
    attached_.fetch_add(1, std::memory_order_relaxed);
    SMetrics().attached.Add();
  }
  return true;
}

// ---- Execution -------------------------------------------------------------

bool QueryServer::Continuable(const ClassPlan& cls) const {
  if (!ScanOnlyClass(cls)) return false;
  if (cls.members.size() > kMaxClassQueries) return false;
  if (cls.base == nullptr || cls.base->table().num_rows() == 0) return false;
  // A bounded budget means aggregation may need to spill; the continuous
  // runner folds in memory, so budgeted servers take the batch path (which
  // spills) and forgo late attachment.
  if (budget_ != nullptr && budget_->bounded()) return false;
  return true;
}

void QueryServer::RunJob(ClassJob job) {
  // Members whose client disconnected while the job was queued drop out
  // before any work happens.
  ClassJob live;
  live.cls.base = job.cls.base;
  live.cls.est_shared_io_ms = job.cls.est_shared_io_ms;
  live.cls.est_shared_cpu_ms = job.cls.est_shared_cpu_ms;
  for (size_t i = 0; i < job.states.size(); ++i) {
    if (job.states[i]->cancelled.load(std::memory_order_acquire)) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      SMetrics().cancelled.Add();
      QueryOutcome out;
      out.status = Status::Unavailable("client disconnected");
      CompleteState(job.states[i], std::move(out));
      continue;
    }
    live.cls.members.push_back(job.cls.members[i]);
    live.states.push_back(std::move(job.states[i]));
  }
  if (live.states.empty()) return;
  if (Continuable(live.cls)) {
    RunContinuous(std::move(live));
  } else {
    RunBatch(std::move(live));
  }
}

void QueryServer::RunContinuous(ClassJob job) {
  ContinuousScanRun run(engine_.schema(), *job.cls.base, engine_.disk(),
                        executor_->parallel_policy(), config_.segment_rows);
  active_run_ = &run;

  const auto on_done = [this](uint64_t token, Result<QueryResult> result,
                              uint64_t attach_cursor) {
    auto it = active_states_.find(token);
    SS_CHECK_MSG(it != active_states_.end(),
                 "continuous scan completed an unknown member");
    ActiveMember member = std::move(it->second);
    active_states_.erase(it);
    if (result.ok()) {
      QueryOutcome out;
      out.result = std::move(result).value();
      out.attached_late = member.attached_late;
      out.attach_cursor = attach_cursor;
      CacheInsert(member.state->query, out.result);
      CompleteState(member.state, std::move(out));
      return;
    }
    if (result.status().code() == StatusCode::kShuttingDown) {
      QueryOutcome out;
      out.status = result.status();
      out.attached_late = member.attached_late;
      out.attach_cursor = attach_cursor;
      CompleteState(member.state, std::move(out));
      return;
    }
    FallbackMember(member.state, result.status(), member.attached_late,
                   attach_cursor);
  };

  for (auto& state : job.states) {
    Status bind = run.Attach(&state->query, state->token);
    if (!bind.ok()) {
      FallbackMember(state, bind, /*attached_late=*/false, 0);
      continue;
    }
    active_states_[state->token] = ActiveMember{state, false};
  }

  while (!run.empty()) {
    if (stop_requested()) {
      run.FailAll(Status::ShuttingDown("query server stopped"), on_done);
      break;
    }
    run.DriveSegment(on_done);
    // Segment boundary: the only points where membership changes. Order
    // matters for tests — the hook observes the paused cursor, then
    // disconnects detach, then new arrivals may attach at this cursor.
    if (config_.on_segment_boundary) config_.on_segment_boundary(run.cursor());
    DetachCancelled(run);
    // Starvation guard: with non-attachable class jobs waiting in
    // run_queue_, sustained attach traffic could keep this run alive for
    // ever. After max_absorb_revolutions with jobs waiting, stop absorbing
    // — new compatible classes queue behind the waiters and the run drains
    // on the wraparound of its current members.
    attach_paused_ = !run_queue_.empty() &&
                     run.revolutions() >= config_.max_absorb_revolutions;
    AdmissionRound();
  }

  attach_paused_ = false;
  active_run_ = nullptr;
  SS_CHECK_MSG(active_states_.empty(),
               "continuous scan ended with members unaccounted for");
}

void QueryServer::DetachCancelled(ContinuousScanRun& run) {
  for (auto it = active_states_.begin(); it != active_states_.end();) {
    if (!it->second.state->cancelled.load(std::memory_order_acquire)) {
      ++it;
      continue;
    }
    run.Detach(it->first);
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    SMetrics().cancelled.Add();
    QueryOutcome out;
    out.status = Status::Unavailable("client disconnected mid-scan");
    CompleteState(it->second.state, std::move(out));
    it = active_states_.erase(it);
  }
}

void QueryServer::RunBatch(ClassJob job) {
  GlobalPlan plan;
  plan.classes.push_back(job.cls);
  std::vector<ExecutedQuery> results = engine_.Execute(plan);
  for (ExecutedQuery& entry : results) {
    std::shared_ptr<serverdetail::HandleState> state;
    for (auto& candidate : job.states) {
      if (&candidate->query == entry.query) {
        state = candidate;
        break;
      }
    }
    SS_CHECK_MSG(state != nullptr, "batch job lost a member");
    QueryOutcome out;
    out.status = std::move(entry.status);
    out.result = std::move(entry.result);
    out.degraded = entry.degraded;
    if (out.ok()) CacheInsert(state->query, out.result);
    CompleteState(state, std::move(out));
  }
}

void QueryServer::FallbackMember(
    const std::shared_ptr<serverdetail::HandleState>& state,
    const Status& planned_error, bool attached_late, uint64_t attach_cursor) {
  QueryOutcome out;
  out.attached_late = attached_late;
  out.attach_cursor = attach_cursor;
  MaterializedView* base = engine_.base_view();
  if (planned_error.code() == StatusCode::kShuttingDown || base == nullptr) {
    out.status = planned_error;
    CompleteState(state, std::move(out));
    return;
  }
  SMetrics().fallbacks.Add();
  // The same degradation ladder as batch execution: the failed member
  // re-runs standalone as a hash scan of the base fact table.
  GlobalPlan plan;
  ClassPlan cls;
  cls.base = base;
  LocalPlan local;
  local.query = &state->query;
  local.method = JoinMethod::kHashScan;
  cls.members.push_back(local);
  plan.classes.push_back(cls);
  std::vector<ExecutedQuery> results = engine_.Execute(plan);
  SS_CHECK(results.size() == 1);
  out.status = std::move(results[0].status);
  out.result = std::move(results[0].result);
  out.degraded = true;
  if (out.ok()) CacheInsert(state->query, out.result);
  CompleteState(state, std::move(out));
}

void QueryServer::CacheInsert(const DimensionalQuery& query,
                              const QueryResult& result) {
  if (cache_ == nullptr || !config_.use_result_cache) return;
  cache_->Insert(ResultCache::KeyOf(query, engine_.schema()), result);
}

void QueryServer::CompleteState(
    const std::shared_ptr<serverdetail::HandleState>& state,
    QueryOutcome outcome) {
  const auto now = std::chrono::steady_clock::now();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      now - state->submitted_at)
                      .count();
  SMetrics().latency_us.Observe(static_cast<uint64_t>(std::max<int64_t>(us, 0)));
  SMetrics().completed.Add();
  completed_.fetch_add(1, std::memory_order_relaxed);
  state->Complete(std::move(outcome));
}

void QueryServer::UpdateInflightGauge() {
  SMetrics().inflight_classes.Set(
      static_cast<int64_t>(run_queue_.size() + (active_run_ != nullptr)));
}

double QueryServer::SharedClassHitRate() const {
  const uint64_t admitted = admitted_.load();
  if (admitted == 0) return 0;
  const uint64_t opened = classes_opened_.load();
  return static_cast<double>(admitted - std::min(opened, admitted)) /
         static_cast<double>(admitted);
}

}  // namespace starshare
