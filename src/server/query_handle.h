// Futures-style completion handles for queries submitted to the query
// server. A QueryHandle is a cheap copyable reference to shared completion
// state; it stays valid — and Await() returns — even if the Engine that
// accepted the submission is destroyed mid-flight (the outcome is then a
// typed kShuttingDown status, never a use-after-free).

#ifndef STARSHARE_SERVER_QUERY_HANDLE_H_
#define STARSHARE_SERVER_QUERY_HANDLE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "common/macros.h"
#include "common/status.h"
#include "query/query.h"
#include "query/result.h"

namespace starshare {

// Everything the server has to say about one submitted query.
struct QueryOutcome {
  QueryResult result;
  // OK iff `result` is valid.
  Status status;
  // The planned evaluation failed and the result came from the fact-table
  // fallback (same meaning as ExecutedQuery::degraded).
  bool degraded = false;
  // Served from the result cache without touching storage.
  bool cache_hit = false;
  // The query attached to a shared scan already in flight and completed on
  // wraparound; attach_cursor is the row the scan was at when it joined.
  bool attached_late = false;
  uint64_t attach_cursor = 0;

  bool ok() const { return status.ok(); }
};

namespace serverdetail {

// Shared between the client holding the handle and the controller thread
// completing it. The query is copied in at Submit so plans and operators
// can point at stable storage for the whole flight.
struct HandleState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;  // guarded by mu
  QueryOutcome outcome;  // guarded by mu until done
  DimensionalQuery query;
  uint64_t session_id = 0;
  uint64_t token = 0;  // server-assigned, unique per submission
  std::atomic<bool> cancelled{false};
  std::chrono::steady_clock::time_point submitted_at;

  // Publishes the outcome and wakes waiters. Later calls are ignored: the
  // first completion (e.g. a cancel racing normal completion) wins.
  void Complete(QueryOutcome out) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (done) return;
      outcome = std::move(out);
      done = true;
    }
    cv.notify_all();
  }
};

}  // namespace serverdetail

class QueryHandle {
 public:
  QueryHandle() = default;
  explicit QueryHandle(std::shared_ptr<serverdetail::HandleState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  int query_id() const { return state_->query.id(); }

  // Blocks until the server completes the query (normally, degraded, denied
  // or shut down) and returns the outcome. Idempotent.
  const QueryOutcome& Await() {
    SS_CHECK_MSG(valid(), "Await on an empty QueryHandle");
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->done; });
    return state_->outcome;
  }

  // Non-blocking: has the query completed?
  bool done() const {
    SS_CHECK_MSG(valid(), "done() on an empty QueryHandle");
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->done;
  }

  // Best-effort cancellation: a query still pending (or riding a shared
  // scan) completes with kUnavailable at the server's next opportunity; a
  // query that already finished keeps its result.
  void Cancel() {
    SS_CHECK_MSG(valid(), "Cancel on an empty QueryHandle");
    state_->cancelled.store(true, std::memory_order_release);
  }

  // Internal (server use): the shared completion state.
  const std::shared_ptr<serverdetail::HandleState>& state() const {
    return state_;
  }

 private:
  std::shared_ptr<serverdetail::HandleState> state_;
};

}  // namespace starshare

#endif  // STARSHARE_SERVER_QUERY_HANDLE_H_
