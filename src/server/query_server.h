// The continuous shared-scan query server: the engine's front end for
// asynchronously arriving queries from many client sessions.
//
// Architecture (DESIGN.md §13). Clients call Submit/SubmitBatch, which
// park the query on a pending queue and return a futures-style
// QueryHandle immediately. One controller thread drains the queue in
// ADMISSION ROUNDS: each round's queries are checked against the result
// cache and the memory budget, then planned together with the configured
// optimizer — the same §5/§6 cost models that group a batch into classes
// now group concurrently arriving queries ACROSS sessions. Each planned
// class becomes a job:
//
//   * all-hash-scan classes run as a ContinuousScanRun — a circular,
//     segment-driven shared scan that later rounds can ATTACH compatible
//     queries to mid-flight (the join-or-open decision of
//     server/admission.h); late members complete on wraparound,
//     bit-identical to standalone execution (scan_runner.h).
//   * classes with index/hybrid members, and every class when a memory
//     budget is set, run through the engine's batch Execute — identical
//     plans, fallback ladder and spilling included.
//
// Within a segment, production can be morsel-parallel on the engine's
// ThreadPool; the controller thread does all folding, cache access and
// engine calls, so the single-threaded engine internals are never raced.
// While a server is processing queries, use this API — do not call the
// engine's synchronous Execute* concurrently.
//
// Shutdown: Stop() (or destroying the Engine) wakes the controller, fails
// everything pending or mid-flight with a typed kShuttingDown status, and
// joins. Handles outlive the server: Await after shutdown returns the
// typed outcome, never dangles.

#ifndef STARSHARE_SERVER_QUERY_SERVER_H_
#define STARSHARE_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/engine.h"
#include "plan/plan.h"
#include "server/query_handle.h"
#include "server/scan_runner.h"
#include "server/server_config.h"
#include "server/session.h"

namespace starshare {

class QueryServer {
 public:
  // Constructed by Engine::server(), which passes its cache / budget /
  // executor internals; the server starts its controller thread
  // immediately. All pointers may outlive every query but must belong to
  // `engine`.
  QueryServer(Engine& engine, ServerConfig config, ResultCache* cache,
              const MemoryBudget* budget, const Executor* executor);

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  ~QueryServer();

  // Fails everything pending or in flight with kShuttingDown and joins the
  // controller. Idempotent; further Submits are refused typed.
  void Stop();
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

  // ---- Sessions ----------------------------------------------------------

  // A new client session. Session 0 is the implicit default session (used
  // by Engine::Submit) and is always open.
  Session OpenSession();
  // Disconnects `session_id`: its outstanding queries complete with
  // kUnavailable at the next admission round / segment boundary.
  void CloseSession(uint64_t session_id);

  // ---- Submission --------------------------------------------------------

  QueryHandle Submit(uint64_t session_id, const DimensionalQuery& query);

  // Enqueues all queries under one lock so they reach the SAME admission
  // round and are planned together like one batch Execute.
  std::vector<QueryHandle> SubmitBatch(
      uint64_t session_id, const std::vector<DimensionalQuery>& queries);

  const ServerConfig& config() const { return config_; }

  // ---- Accounting (for tests and benches; monotonic) ---------------------

  uint64_t submitted() const { return submitted_.load(); }
  uint64_t completed() const { return completed_.load(); }
  // Queries that passed cache + budget checks and were planned.
  uint64_t admitted() const { return admitted_.load(); }
  // Planned classes that opened a fresh run / batch job.
  uint64_t classes_opened() const { return classes_opened_.load(); }
  // Queries that attached to an in-flight continuous scan.
  uint64_t attached() const { return attached_.load(); }
  uint64_t cache_hits() const { return cache_hits_.load(); }
  // Refused at submission or admission (queue full, budget).
  uint64_t denied() const { return denied_.load(); }
  uint64_t cancelled() const { return cancelled_.load(); }

  // Fraction of admitted queries that shared work instead of opening their
  // own class: (admitted - classes_opened) / admitted. 0 before traffic.
  double SharedClassHitRate() const;

 private:
  friend class Session;

  struct ClassJob {
    ClassPlan cls;
    // Index-aligned with cls.members; each state's query is the member's
    // stable DimensionalQuery storage.
    std::vector<std::shared_ptr<serverdetail::HandleState>> states;
  };
  struct ActiveMember {
    std::shared_ptr<serverdetail::HandleState> state;
    bool attached_late = false;
  };

  void ControllerLoop();
  // Drains pending submissions: cache hits and budget denials complete
  // immediately; the rest are planned (in waves of distinct query ids) and
  // either attached to the active run or queued as class jobs.
  void AdmissionRound();
  void PlanWave(std::vector<std::shared_ptr<serverdetail::HandleState>> wave);
  // Joins `job` onto the active continuous scan when the §5/§6 arithmetic
  // says riding it beats opening fresh. True when attached.
  bool TryAttach(ClassJob& job);
  void RunJob(ClassJob job);
  void RunContinuous(ClassJob job);
  void RunBatch(ClassJob job);
  // Completes members of the active run whose session disconnected.
  void DetachCancelled(ContinuousScanRun& run);
  // Re-runs one failed member standalone on the base fact table (the same
  // degradation ladder as batch execution). kShuttingDown never falls back.
  void FallbackMember(const std::shared_ptr<serverdetail::HandleState>& state,
                      const Status& planned_error, bool attached_late,
                      uint64_t attach_cursor);
  void CacheInsert(const DimensionalQuery& query, const QueryResult& result);
  void CompleteState(const std::shared_ptr<serverdetail::HandleState>& state,
                     QueryOutcome outcome);
  bool Continuable(const ClassPlan& cls) const;
  void UpdateInflightGauge();

  Engine& engine_;
  ServerConfig config_;
  ResultCache* cache_;              // controller thread only
  const MemoryBudget* budget_;
  const Executor* executor_;

  std::mutex mu_;  // pending_, session_states_, open_sessions_, ids
  std::condition_variable work_ready_;
  std::deque<std::shared_ptr<serverdetail::HandleState>> pending_;
  // Expired entries (handle dropped after completion) are pruned on every
  // append, so the long-lived default session tracks in-flight queries
  // instead of growing with total traffic.
  std::unordered_map<uint64_t,
                     std::vector<std::weak_ptr<serverdetail::HandleState>>>
      session_states_;
  // Ids handed out by OpenSession and not yet closed. Session 0 (the
  // implicit default used by Engine::Submit) is never a member and can
  // never be closed; CloseSession ignores ids not in this set.
  std::unordered_set<uint64_t> open_sessions_;
  uint64_t next_session_ = 1;
  uint64_t next_token_ = 1;

  std::atomic<bool> stop_requested_{false};
  std::mutex stop_mu_;  // serializes Stop/join

  // Controller-thread-only state.
  std::deque<ClassJob> run_queue_;
  ContinuousScanRun* active_run_ = nullptr;
  std::unordered_map<uint64_t, ActiveMember> active_states_;
  // Starvation guard: set while the active run has absorbed attachments
  // for max_absorb_revolutions with class jobs waiting in run_queue_;
  // TryAttach refuses, so the run drains and the queued jobs get served.
  bool attach_paused_ = false;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> classes_opened_{0};
  std::atomic<uint64_t> attached_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> denied_{0};
  std::atomic<uint64_t> cancelled_{0};

  std::thread controller_;  // last member: started in the ctor body
};

}  // namespace starshare

#endif  // STARSHARE_SERVER_QUERY_SERVER_H_
