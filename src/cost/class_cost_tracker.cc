#include "cost/class_cost_tracker.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"

namespace starshare {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNsToMs = 1e-6;

// Multiplies `factor` into a (product, zero-count) pair. Zero factors are
// counted instead of multiplied so the inverse (division) stays exact-ish
// and never divides by zero.
void MulInto(double& prod, size_t& zeros, double factor, int sign) {
  if (factor == 0) {
    if (sign > 0) {
      ++zeros;
    } else {
      SS_CHECK(zeros > 0);
      --zeros;
    }
    return;
  }
  if (sign > 0) {
    prod *= factor;
  } else {
    prod /= factor;
  }
}

double ProductOf(double prod, size_t zeros) { return zeros > 0 ? 0 : prod; }
}  // namespace

ClassCostTracker::ClassCostTracker(const StarSchema& schema,
                                   const CostModel& cost,
                                   MaterializedView* base)
    : schema_(&schema),
      cost_(&cost),
      base_(base),
      memo_(std::make_shared<
            std::unordered_map<const DimensionalQuery*, MemberCost>>()) {
  SS_CHECK(base_ != nullptr);
  agg_.hash_dim_count.assign(schema.num_dims(), 0);
}

std::vector<const DimensionalQuery*> ClassCostTracker::Members() const {
  std::vector<const DimensionalQuery*> out;
  out.reserve(members_.size());
  for (const auto& m : members_) out.push_back(m.query);
  return out;
}

ClassCostTracker::MemberCost ClassCostTracker::ComputeMemberCost(
    const DimensionalQuery& query) const {
  const MaterializedView& v = *base_;
  const CpuCosts& cpu = cost_->cpu();
  const double rows = static_cast<double>(v.table().num_rows());
  const double match = cost_->MatchRows(query, v);
  const double retained =
      static_cast<double>(query.target().RetainedDims(*schema_).size());

  MemberCost m;
  m.query = &query;
  for (const auto& pred : query.predicate().conjuncts()) {
    if (v.KeyColForDim(pred.dim) != SIZE_MAX) {
      m.restricted_mask |= uint64_t{1} << pred.dim;
    }
  }

  // Scan-form increment: the cheaper of hashing on the shared scan and an
  // index lookup riding it (§3.3) — the same two candidate increments
  // CostModel::MakeClassPlan prices per member.
  const double hash_incr =
      (rows * cpu.check_ns + match * cpu.agg_ns) * kNsToMs;
  double index_incr = kInf;
  m.indexable = cost_->IndexAvailable(query, v);
  if (m.indexable) {
    const double cand = rows * cost_->CandidateSelectivity(query, v);
    const double residual =
        static_cast<double>(cost_->ResidualDims(query, v));
    index_incr =
        cost_->IndexLookupIoMs(query, v) + cost_->IndexBitmapCpuMs(query, v) +
        (rows * cpu.check_ns + cand * residual * cpu.probe_ns +
         match * (retained * cpu.probe_ns + cpu.agg_ns)) *
            kNsToMs;
  }
  m.scan_uses_hash = hash_incr <= index_incr;
  m.scan_incr = m.scan_uses_hash ? hash_incr : index_incr;

  // All-index form (§3.2) pieces. The member's CPU there is
  //   idx_const + union_rows * check_ns, with union_rows shared class-wide.
  if (m.indexable) {
    const double cand_sel = cost_->CandidateSelectivity(query, v);
    const double cand = rows * cand_sel;
    const double residual =
        static_cast<double>(cost_->ResidualDims(query, v));
    m.probe_pages = cost_->ProbeDistinctPages(query, v);
    m.cand_miss = 1.0 - cand_sel;
    m.sel_miss = 1.0 - query.Selectivity(*schema_);
    m.idx_const =
        cost_->IndexLookupIoMs(query, v) + cost_->IndexBitmapCpuMs(query, v) +
        (cand * residual * cpu.probe_ns +
         match * (retained * cpu.probe_ns + cpu.agg_ns)) *
            kNsToMs;
  }
  return m;
}

const ClassCostTracker::MemberCost& ClassCostTracker::Memoized(
    const DimensionalQuery& query) const {
  auto it = memo_->find(&query);
  if (it == memo_->end()) {
    it = memo_->emplace(&query, ComputeMemberCost(query)).first;
  }
  return it->second;
}

const ClassCostTracker::MemberCost* ClassCostTracker::Find(
    const DimensionalQuery& query) const {
  for (const auto& m : members_) {
    if (m.query == &query) return &m;
  }
  return nullptr;
}

void ClassCostTracker::Apply(Aggregates& agg, const MemberCost& m, int sign) {
  SS_CHECK(sign > 0 || agg.n > 0);
  agg.n += static_cast<size_t>(sign);
  agg.sum_scan_incr += sign * m.scan_incr;
  if (m.scan_uses_hash) {
    agg.n_hash += static_cast<size_t>(sign);
    for (size_t d = 0; d < agg.hash_dim_count.size(); ++d) {
      if (m.restricted_mask & (uint64_t{1} << d)) {
        agg.hash_dim_count[d] += static_cast<uint32_t>(sign);
      }
    }
  }
  if (!m.indexable) {
    agg.n_unindexable += static_cast<size_t>(sign);
    return;
  }
  agg.sum_probe_pages += sign * m.probe_pages;
  agg.sum_idx_const += sign * m.idx_const;
  MulInto(agg.cand_miss_prod, agg.cand_miss_zeros, m.cand_miss, sign);
  MulInto(agg.sel_miss_prod, agg.sel_miss_zeros, m.sel_miss, sign);
}

double ClassCostTracker::TotalOf(const Aggregates& agg) const {
  if (agg.n == 0) return 0;
  const MaterializedView& v = *base_;
  const CpuCosts& cpu = cost_->cpu();
  const double rows = static_cast<double>(v.table().num_rows());

  // Scan-based form: shared scan I/O + shared CPU over the union of the
  // hash members' restricted dimensions + per-member increments.
  double scan_total = kInf;
  if (agg.n_hash > 0) {
    double probes = 0;
    double build_entries = 0;
    for (size_t d = 0; d < agg.hash_dim_count.size(); ++d) {
      if (agg.hash_dim_count[d] == 0) continue;
      probes += 1;
      build_entries += schema_->dim(d).cardinality(v.StoredLevel(d));
    }
    const double shared_cpu_ns =
        rows * (cpu.tuple_ns + probes * cpu.probe_ns) +
        build_entries * cpu.build_entry_ns;
    scan_total = cost_->ScanIoMs(v) + shared_cpu_ns * kNsToMs +
                 agg.sum_scan_incr;
  }

  // All-index form (§3.2): only when every member can probe. When no member
  // picks hash in the scan form, this is also the only form left.
  double index_total = kInf;
  if (agg.n_unindexable == 0) {
    double pages = std::min(agg.sum_probe_pages,
                            static_cast<double>(v.table().num_pages()));
    if (!v.clustered()) {
      const double union_cand_rows =
          rows * (1.0 - ProductOf(agg.cand_miss_prod, agg.cand_miss_zeros));
      pages = std::min(
          pages, YaoDistinctPages(v.table().num_pages(), union_cand_rows));
    }
    const double union_rows =
        rows * (1.0 - ProductOf(agg.sel_miss_prod, agg.sel_miss_zeros));
    index_total = pages * cost_->disk().rand_page_ms + agg.sum_idx_const +
                  static_cast<double>(agg.n) * union_rows * cpu.check_ns *
                      kNsToMs;
  }
  return std::min(scan_total, index_total);
}

double ClassCostTracker::TotalMs() const { return TotalOf(agg_); }

double ClassCostTracker::AddMs(const DimensionalQuery& query) {
  SS_CHECK(Find(query) == nullptr);
  const double before = TotalOf(agg_);
  members_.push_back(Memoized(query));
  Apply(agg_, members_.back(), +1);
  return TotalOf(agg_) - before;
}

double ClassCostTracker::RemoveMs(const DimensionalQuery& query) {
  const MemberCost* m = Find(query);
  SS_CHECK(m != nullptr);
  const double before = TotalOf(agg_);
  Apply(agg_, *m, -1);
  members_.erase(members_.begin() + (m - members_.data()));
  return TotalOf(agg_) - before;
}

double ClassCostTracker::PeekAddMs(const DimensionalQuery& query) const {
  const double before = TotalOf(agg_);
  Aggregates next = agg_;
  Apply(next, Memoized(query), +1);
  return TotalOf(next) - before;
}

double ClassCostTracker::PeekRemoveMs(const DimensionalQuery& query) const {
  const MemberCost* m = Find(query);
  SS_CHECK(m != nullptr);
  const double before = TotalOf(agg_);
  Aggregates next = agg_;
  Apply(next, *m, -1);
  return TotalOf(next) - before;
}

}  // namespace starshare
