#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace starshare {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNsToMs = 1e-6;
}  // namespace

double YaoDistinctPages(uint64_t pages, double rows) {
  if (pages == 0 || rows <= 0) return 0;
  if (pages == 1) return 1;
  const double p = 1.0 / static_cast<double>(pages);
  // pages * (1 - (1 - 1/pages)^rows), computed stably.
  return static_cast<double>(pages) *
         (1.0 - std::exp(rows * std::log1p(-p)));
}

double CostModel::DimSelectivity(const DimPredicate& pred,
                                 const MaterializedView& view) const {
  if (view.has_stats() && view.KeyColForDim(pred.dim) != SIZE_MAX) {
    const std::vector<int32_t> stored = pred.MembersAtLevel(
        schema_.dim(pred.dim), view.StoredLevel(pred.dim));
    return view.SelectivityOf(pred.dim, stored);
  }
  return pred.Selectivity(schema_.dim(pred.dim));
}

double CostModel::MatchRows(const DimensionalQuery& query,
                            const MaterializedView& view) const {
  double sel = 1.0;
  for (const auto& pred : query.predicate().conjuncts()) {
    sel *= DimSelectivity(pred, view);
  }
  return static_cast<double>(view.table().num_rows()) * sel;
}

double CostModel::ScanIoMs(const MaterializedView& view) const {
  return static_cast<double>(view.table().num_pages()) * disk_.seq_page_ms;
}

std::vector<size_t> CostModel::RestrictedDims(
    const DimensionalQuery& query, const MaterializedView& view) const {
  std::vector<size_t> dims;
  for (const auto& pred : query.predicate().conjuncts()) {
    if (view.KeyColForDim(pred.dim) != SIZE_MAX) dims.push_back(pred.dim);
  }
  return dims;
}

bool CostModel::IndexAvailable(const DimensionalQuery& query,
                               const MaterializedView& view) const {
  // The §3.2 method applies as soon as one restricted dimension has an
  // index; predicates on unindexed dimensions become residual filters on
  // the retrieved tuples.
  for (size_t d : RestrictedDims(query, view)) {
    if (view.IndexOn(d) != nullptr) return true;
  }
  return false;
}

double CostModel::CandidateSelectivity(const DimensionalQuery& query,
                                       const MaterializedView& view) const {
  double sel = 1.0;
  for (const auto& pred : query.predicate().conjuncts()) {
    if (view.KeyColForDim(pred.dim) == SIZE_MAX) continue;
    if (view.IndexOn(pred.dim) == nullptr) continue;  // residual
    sel *= DimSelectivity(pred, view);
  }
  return sel;
}

size_t CostModel::ResidualDims(const DimensionalQuery& query,
                               const MaterializedView& view) const {
  size_t n = 0;
  for (size_t d : RestrictedDims(query, view)) {
    if (view.IndexOn(d) == nullptr) ++n;
  }
  return n;
}

double CostModel::IndexLookupIoMs(const DimensionalQuery& query,
                                  const MaterializedView& view) const {
  const double rows = static_cast<double>(view.table().num_rows());
  const uint64_t bitmap_bytes = (view.table().num_rows() + 7) / 8;
  double pages = 0;
  for (const auto& pred : query.predicate().conjuncts()) {
    const size_t d = pred.dim;
    if (view.KeyColForDim(d) == SIZE_MAX) continue;
    if (view.IndexOn(d) == nullptr) continue;  // residual predicate
    const Hierarchy& h = schema_.dim(d);
    // One segment per member at the level the index serves: the predicate's
    // own level when a per-level index exists, else the stored level with
    // the member set expanded to descendants.
    int level = pred.level;
    double members = static_cast<double>(pred.members.size());
    if (view.IndexOn(d, pred.level) == nullptr) {
      level = view.StoredLevel(d);
      members = members * static_cast<double>(h.cardinality(level)) /
                static_cast<double>(h.cardinality(pred.level));
    }
    const double avg_list_rows =
        rows / static_cast<double>(h.cardinality(level));
    const uint64_t segment_bytes =
        8 + std::min<uint64_t>(static_cast<uint64_t>(4 * avg_list_rows),
                               bitmap_bytes);
    pages += members * static_cast<double>(PagesForBytes(segment_bytes));
  }
  return pages * disk_.index_page_ms;
}

double CostModel::IndexBitmapCpuMs(const DimensionalQuery& query,
                                   const MaterializedView& view) const {
  const double rows = static_cast<double>(view.table().num_rows());
  const double words = rows / 64.0;
  double ns = 0;
  size_t restricted = 0;
  for (const auto& pred : query.predicate().conjuncts()) {
    if (view.KeyColForDim(pred.dim) == SIZE_MAX) continue;
    if (view.IndexOn(pred.dim) == nullptr) continue;  // residual predicate
    ++restricted;
    ns += rows * DimSelectivity(pred, view) * cpu_.rid_ns;  // RID bits
  }
  ns += static_cast<double>(restricted) * words * cpu_.bitmap_word_ns;  // ANDs
  return ns * kNsToMs;
}

double CostModel::ProbeDistinctPages(const DimensionalQuery& query,
                                     const MaterializedView& view) const {
  const double rows = static_cast<double>(view.table().num_rows());
  const uint64_t pages = view.table().num_pages();
  // Probes retrieve the *candidates* selected by the indexed predicates;
  // residual predicates filter afterwards and do not shrink the probe.
  const double match = rows * CandidateSelectivity(query, view);
  if (rows == 0 || match <= 0) return 0;
  if (!view.clustered()) {
    // Matches spread uniformly: Yao's formula.
    return YaoDistinctPages(pages, match);
  }

  // Clustered table: sorted lexicographically by its key columns, so the
  // matches of a conjunctive member predicate form `runs` contiguous runs —
  // one per selected combination of the dimensions *before* the last
  // restricted column — each holding a few blocks of matching tuples.
  const auto cols = view.spec().RetainedDims(schema_);
  const auto indexed_pred = [&](size_t d) -> const DimPredicate* {
    if (view.IndexOn(d) == nullptr) return nullptr;
    return query.predicate().ForDim(d);
  };
  int last = -1;
  for (size_t i = 0; i < cols.size(); ++i) {
    if (indexed_pred(cols[i]) != nullptr) last = static_cast<int>(i);
  }
  if (last < 0) return static_cast<double>(pages);  // unrestricted

  double runs = 1;
  double run_rows = rows;
  for (int i = 0; i < last; ++i) {
    const size_t d = cols[static_cast<size_t>(i)];
    const Hierarchy& h = schema_.dim(d);
    const double card = h.cardinality(view.StoredLevel(d));
    const DimPredicate* p = indexed_pred(d);
    const double cnt =
        p == nullptr ? card
                     : static_cast<double>(p->members.size()) * card /
                           static_cast<double>(h.cardinality(p->level));
    runs *= cnt;
    run_rows /= card;
  }

  // Within each run, rows are sorted by the last restricted dimension; its
  // predicate selects one contiguous id range per predicate member.
  const DimPredicate* p = indexed_pred(cols[static_cast<size_t>(last)]);
  const double rpp = static_cast<double>(view.table().rows_per_page());
  const double run_pages = std::max(1.0, run_rows / rpp);
  const double blocks = static_cast<double>(p->members.size());

  // Sparse selections leave most runs empty: expected runs actually hit is
  // Yao over the runs themselves.
  const double nonempty_runs = YaoDistinctPages(
      static_cast<uint64_t>(std::ceil(std::max(1.0, runs))), match);
  if (nonempty_runs <= 0) return 0;
  const double matched_per_hit_run = match / nonempty_runs;
  const double per_run =
      std::max(1.0, std::min(YaoDistinctPages(static_cast<uint64_t>(
                                                  std::ceil(run_pages)),
                                              matched_per_hit_run),
                             blocks + matched_per_hit_run / rpp));
  return std::min(nonempty_runs * per_run, static_cast<double>(pages));
}

double CostModel::ProbeIoMs(const DimensionalQuery& query,
                            const MaterializedView& view) const {
  return ProbeDistinctPages(query, view) * disk_.rand_page_ms;
}

double CostModel::SharedProbeIoMs(
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view) const {
  // Upper-bounded by the sum of per-query probes (the union can only be
  // smaller) and, for unclustered tables, refined by Yao on the union
  // cardinality.
  double sum_pages = 0;
  for (const auto* q : queries) sum_pages += ProbeDistinctPages(*q, view);
  double pages = std::min(sum_pages,
                          static_cast<double>(view.table().num_pages()));
  if (!view.clustered()) {
    double miss_all = 1.0;
    for (const auto* q : queries) {
      miss_all *= 1.0 - CandidateSelectivity(*q, view);
    }
    const double union_rows =
        static_cast<double>(view.table().num_rows()) * (1.0 - miss_all);
    pages = std::min(
        pages, YaoDistinctPages(view.table().num_pages(), union_rows));
  }
  return pages * disk_.rand_page_ms;
}

double CostModel::SharedScanCpuMs(
    const std::vector<const DimensionalQuery*>& hash_members,
    const MaterializedView& view) const {
  const double rows = static_cast<double>(view.table().num_rows());
  std::vector<bool> in_union(schema_.num_dims(), false);
  for (const auto* q : hash_members) {
    for (size_t d : RestrictedDims(*q, view)) in_union[d] = true;
  }
  double probes = 0;
  double build_entries = 0;
  for (size_t d = 0; d < schema_.num_dims(); ++d) {
    if (!in_union[d]) continue;
    probes += 1;
    build_entries += schema_.dim(d).cardinality(view.StoredLevel(d));
  }
  const double ns = rows * (cpu_.tuple_ns + probes * cpu_.probe_ns) +
                    build_entries * cpu_.build_entry_ns;
  return ns * kNsToMs;
}

double CostModel::HashJoinCostMs(const DimensionalQuery& query,
                                 const MaterializedView& view) const {
  const double rows = static_cast<double>(view.table().num_rows());
  const double nonshared_ns =
      rows * cpu_.check_ns + MatchRows(query, view) * cpu_.agg_ns;
  return ScanIoMs(view) + SharedScanCpuMs({&query}, view) +
         nonshared_ns * kNsToMs;
}

double CostModel::IndexJoinCostMs(const DimensionalQuery& query,
                                  const MaterializedView& view) const {
  if (!IndexAvailable(query, view)) return kInf;
  const double cand = static_cast<double>(view.table().num_rows()) *
                      CandidateSelectivity(query, view);
  const double match = MatchRows(query, view);
  const double retained =
      static_cast<double>(query.target().RetainedDims(schema_).size());
  const double residual =
      static_cast<double>(ResidualDims(query, view));
  const double result_ns =
      cand * (residual * cpu_.probe_ns + cpu_.check_ns) +
      match * (retained * cpu_.probe_ns + cpu_.agg_ns);
  return IndexLookupIoMs(query, view) + IndexBitmapCpuMs(query, view) +
         ProbeIoMs(query, view) + result_ns * kNsToMs;
}

std::pair<JoinMethod, double> CostModel::BestSingleCost(
    const DimensionalQuery& query, const MaterializedView& view) const {
  const double hash = HashJoinCostMs(query, view);
  const double index = IndexJoinCostMs(query, view);
  if (index < hash) return {JoinMethod::kIndexProbe, index};
  return {JoinMethod::kHashScan, hash};
}

std::vector<const DimensionalQuery*> CostModel::Queries(
    const ClassPlan& cls) {
  std::vector<const DimensionalQuery*> out;
  out.reserve(cls.members.size());
  for (const auto& m : cls.members) out.push_back(m.query);
  return out;
}

void CostModel::ComputeClassEstimates(ClassPlan& cls) const {
  SS_CHECK(cls.base != nullptr);
  const MaterializedView& v = *cls.base;
  const double rows = static_cast<double>(v.table().num_rows());

  if (cls.HasHashMember() || !cls.HasIndexMember()) {
    // Scan-based class (§3.1, or §3.3 when index members ride the scan).
    std::vector<const DimensionalQuery*> hash_queries;
    for (const auto& m : cls.members) {
      if (m.method == JoinMethod::kHashScan) hash_queries.push_back(m.query);
    }
    cls.est_shared_io_ms = ScanIoMs(v);
    cls.est_shared_cpu_ms = SharedScanCpuMs(hash_queries, v);
    for (auto& m : cls.members) {
      const double match = MatchRows(*m.query, v);
      const double retained = static_cast<double>(
          m.query->target().RetainedDims(schema_).size());
      if (m.method == JoinMethod::kHashScan) {
        m.est_nonshared_cpu_ms =
            (rows * cpu_.check_ns + match * cpu_.agg_ns) * kNsToMs;
        m.est_nonshared_io_ms = 0;
      } else {
        // §3.3: probe converted to riding the scan behind a bitmap filter;
        // residual predicates checked on candidate rows only.
        const double cand = rows * CandidateSelectivity(*m.query, v);
        const double residual =
            static_cast<double>(ResidualDims(*m.query, v));
        m.est_nonshared_cpu_ms =
            IndexBitmapCpuMs(*m.query, v) +
            (rows * cpu_.check_ns + cand * residual * cpu_.probe_ns +
             match * (retained * cpu_.probe_ns + cpu_.agg_ns)) *
                kNsToMs;
        m.est_nonshared_io_ms = IndexLookupIoMs(*m.query, v);
      }
    }
  } else {
    // All-index class (§3.2): one probe pass over the OR of result bitmaps.
    const auto queries = Queries(cls);
    cls.est_shared_io_ms = SharedProbeIoMs(queries, v);
    cls.est_shared_cpu_ms = 0;
    double miss_all = 1.0;
    for (const auto* q : queries) miss_all *= 1.0 - q->Selectivity(schema_);
    const double union_rows = rows * (1.0 - miss_all);
    for (auto& m : cls.members) {
      const double match = MatchRows(*m.query, v);
      const double cand = rows * CandidateSelectivity(*m.query, v);
      const double residual =
          static_cast<double>(ResidualDims(*m.query, v));
      const double retained = static_cast<double>(
          m.query->target().RetainedDims(schema_).size());
      m.est_nonshared_cpu_ms =
          IndexBitmapCpuMs(*m.query, v) +
          (union_rows * cpu_.check_ns + cand * residual * cpu_.probe_ns +
           match * (retained * cpu_.probe_ns + cpu_.agg_ns)) *
              kNsToMs;
      m.est_nonshared_io_ms = IndexLookupIoMs(*m.query, v);
    }
  }
}

ClassPlan CostModel::MakeClassPlan(
    MaterializedView* base,
    std::vector<const DimensionalQuery*> queries) const {
  SS_CHECK(base != nullptr);
  SS_CHECK(!queries.empty());
  const MaterializedView& v = *base;
  const double rows = static_cast<double>(v.table().num_rows());

  // Scan-based candidate: each member independently picks the cheaper of
  // (hash on the shared scan) vs (index lookup riding the shared scan).
  ClassPlan scan_plan;
  scan_plan.base = base;
  for (const auto* q : queries) {
    const double match = MatchRows(*q, v);
    const double retained =
        static_cast<double>(q->target().RetainedDims(schema_).size());
    const double hash_incr =
        (rows * cpu_.check_ns + match * cpu_.agg_ns) * kNsToMs;
    double index_incr = kInf;
    if (IndexAvailable(*q, v)) {
      const double cand = rows * CandidateSelectivity(*q, v);
      const double residual = static_cast<double>(ResidualDims(*q, v));
      index_incr = IndexLookupIoMs(*q, v) + IndexBitmapCpuMs(*q, v) +
                   (rows * cpu_.check_ns + cand * residual * cpu_.probe_ns +
                    match * (retained * cpu_.probe_ns + cpu_.agg_ns)) *
                       kNsToMs;
    }
    LocalPlan lp;
    lp.query = q;
    lp.method = hash_incr <= index_incr ? JoinMethod::kHashScan
                                        : JoinMethod::kIndexProbe;
    scan_plan.members.push_back(lp);
  }
  ComputeClassEstimates(scan_plan);

  // All-index candidate, when every member can use its indexes.
  bool all_indexable = true;
  for (const auto* q : queries) {
    if (!IndexAvailable(*q, v)) {
      all_indexable = false;
      break;
    }
  }
  if (all_indexable) {
    ClassPlan index_plan;
    index_plan.base = base;
    for (const auto* q : queries) {
      LocalPlan lp;
      lp.query = q;
      lp.method = JoinMethod::kIndexProbe;
      index_plan.members.push_back(lp);
    }
    ComputeClassEstimates(index_plan);
    if (index_plan.EstMs() < scan_plan.EstMs()) return index_plan;
  }
  return scan_plan;
}

double CostModel::ClassCostMs(
    MaterializedView* base,
    std::vector<const DimensionalQuery*> queries) const {
  return MakeClassPlan(base, std::move(queries)).EstMs();
}

double CostModel::CostOfAddMs(const ClassPlan& cls,
                              const DimensionalQuery& query) const {
  std::vector<const DimensionalQuery*> queries = Queries(cls);
  const double before = ClassCostMs(cls.base, queries);
  queries.push_back(&query);
  const double after = ClassCostMs(cls.base, std::move(queries));
  return after - before;
}

void CostModel::AnnotatePlan(GlobalPlan& plan) const {
  for (auto& cls : plan.classes) ComputeClassEstimates(cls);
}

double CostModel::RollupCpuMs(double parent_rows,
                              const DimensionalQuery& child) const {
  const double lanes =
      static_cast<double>(child.target().RetainedDims(schema_).size());
  return parent_rows * (cpu_.tuple_ns + lanes * cpu_.probe_ns + cpu_.agg_ns) *
         1e-6;
}

}  // namespace starshare
