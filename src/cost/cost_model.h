// The optimizer's cost model, implementing §5.1 of the paper.
//
// Costs are in modeled milliseconds: I/O terms are exact page counts times
// the DiskTimings constants (the same constants the benches use to convert
// measured page counts into modeled time), CPU terms are per-tuple /
// per-probe constants calibrated to the executor's in-memory speeds.
//
// The central §5.1 quantities:
//   * hash star join of query X from shared base B:
//       C_{B->X} = Cost_CPU + ΔCost_IO          (ΔIO = what X adds to the
//                                                class's shared I/O)
//   * index star join of X from shared base B:
//       C_{B->X} = Cost_CPU + Cost_IO_index + ΔCost_IO
//   * unused table U: the full scan / probe I/O is charged, nothing shared.
//   * class cost = Σ_k (nonshared CPU_k + nonshared IO_k)
//                  + Cost(shared IO) + Cost(shared CPU).
//
// Class composition rules (paper §3 and §5.1):
//   * if any member scans (hash join), the scan is the shared I/O and every
//     index member rides it (§3.3): its probe I/O vanishes, it keeps its
//     index-lookup I/O and bitmap CPU and filters tuples during the scan;
//   * if all members probe (index join), the shared I/O is one probe pass
//     with the OR of the result bitmaps (§3.2), estimated with Yao's
//     distinct-page formula on the union cardinality.

#ifndef STARSHARE_COST_COST_MODEL_H_
#define STARSHARE_COST_COST_MODEL_H_

#include <vector>

#include "cube/materialized_view.h"
#include "plan/plan.h"
#include "query/query.h"
#include "schema/star_schema.h"
#include "storage/disk_model.h"

namespace starshare {

// Per-operation CPU constants (nanoseconds). Defaults are calibrated to the
// StarShare executor on commodity hardware; scale them together to model
// slower CPUs (the paper's Pentium Pro would be ~50x).
struct CpuCosts {
  double tuple_ns = 6;          // streaming a tuple through a scan
  double probe_ns = 10;         // one dimension-hash-table probe
  double check_ns = 2;          // per-tuple per-query mask/bitmap test
  double agg_ns = 28;           // one aggregation-hash-table update
  double build_entry_ns = 45;   // one dimension-hash-table entry build
  double rid_ns = 3;            // materializing one RID into a bitmap
  double bitmap_word_ns = 0.6;  // one 64-bit word of bitmap AND/OR
};

// Expected distinct pages touched when probing `rows` uniformly distributed
// matches in a table of `pages` pages (Yao's formula, binomial form).
double YaoDistinctPages(uint64_t pages, double rows);

class CostModel {
 public:
  CostModel(const StarSchema& schema, DiskTimings disk, CpuCosts cpu)
      : schema_(schema), disk_(disk), cpu_(cpu) {}

  const DiskTimings& disk() const { return disk_; }
  const CpuCosts& cpu() const { return cpu_; }

  // ---- Per-(query, view) estimates -------------------------------------

  // Selectivity of one predicate against `view`: exact (from the view's
  // per-member statistics) when available, uniform otherwise.
  double DimSelectivity(const DimPredicate& pred,
                        const MaterializedView& view) const;

  // Expected rows of `view` passing `query`'s selection (product of
  // per-dimension selectivities; exact per dimension with statistics).
  double MatchRows(const DimensionalQuery& query,
                   const MaterializedView& view) const;

  // Full sequential scan of `view`, in ms.
  double ScanIoMs(const MaterializedView& view) const;

  // True if `view` has a bitmap join index on at least one dimension
  // `query` restricts: the §3.2 method applies (unindexed predicates are
  // applied as residual filters on retrieved tuples).
  bool IndexAvailable(const DimensionalQuery& query,
                      const MaterializedView& view) const;

  // Fraction of view rows the *indexed* predicates select — the probe
  // cardinality of an index plan (residual predicates filter afterwards).
  double CandidateSelectivity(const DimensionalQuery& query,
                              const MaterializedView& view) const;

  // Restricted dimensions without an index on `view`.
  size_t ResidualDims(const DimensionalQuery& query,
                      const MaterializedView& view) const;

  // Index-segment I/O to fetch the predicate bitmaps (Cost_IO_index).
  double IndexLookupIoMs(const DimensionalQuery& query,
                         const MaterializedView& view) const;

  // CPU of building/ANDing the per-dimension bitmaps.
  double IndexBitmapCpuMs(const DimensionalQuery& query,
                          const MaterializedView& view) const;

  // Expected distinct pages touched when probing the matches of `query`:
  // Yao's uniform-spread formula for unclustered tables, a contiguous-runs
  // model for clustered views (ViewBuilder output is sorted by key, so
  // matches of prefix-structured predicates land on few pages).
  double ProbeDistinctPages(const DimensionalQuery& query,
                            const MaterializedView& view) const;

  // Random I/O of probing the matches of `query` alone.
  double ProbeIoMs(const DimensionalQuery& query,
                   const MaterializedView& view) const;

  // Random I/O of one shared probe pass over the OR of all members' result
  // bitmaps.
  double SharedProbeIoMs(const std::vector<const DimensionalQuery*>& queries,
                         const MaterializedView& view) const;

  // Shared CPU of a scan-based class: streaming every tuple plus probing
  // the union of the hash members' restricted dimensions, plus building
  // those dimension hash tables.
  double SharedScanCpuMs(
      const std::vector<const DimensionalQuery*>& hash_members,
      const MaterializedView& view) const;

  // Standalone (class-of-one) cost of each method; index returns +inf when
  // unavailable.
  double HashJoinCostMs(const DimensionalQuery& query,
                        const MaterializedView& view) const;
  double IndexJoinCostMs(const DimensionalQuery& query,
                         const MaterializedView& view) const;

  // The paper's X.CostOfUsing(U) for an unused table: best method, full
  // I/O charged. Returns (method, ms).
  std::pair<JoinMethod, double> BestSingleCost(
      const DimensionalQuery& query, const MaterializedView& view) const;

  // ---- Class-level estimates --------------------------------------------

  // Builds the cheapest ClassPlan for `queries` on `base`: chooses each
  // member's join method, decides between the scan-based (§3.1/§3.3) and
  // all-index (§3.2) shared forms, and fills every estimate field.
  ClassPlan MakeClassPlan(MaterializedView* base,
                          std::vector<const DimensionalQuery*> queries) const;

  // Total estimated ms of the cheapest class plan (convenience).
  double ClassCostMs(MaterializedView* base,
                     std::vector<const DimensionalQuery*> queries) const;

  // The paper's CostOfAdd(N) for class i:
  //   Cost(Class_i ∪ N | base) - Cost(Class_i | base).
  double CostOfAddMs(const ClassPlan& cls, const DimensionalQuery& query) const;

  // Re-derives estimates for an externally assembled plan (methods fixed).
  void AnnotatePlan(GlobalPlan& plan) const;

  // ---- Rollup (derived-input) estimates ---------------------------------

  // CPU of re-aggregating `parent_rows` already-computed groups into
  // `child`'s coarser target: per group one streaming touch, one key
  // translation per retained child dimension, one aggregation update — the
  // same per-tuple terms SharedScanCpuMs charges a base scan, with no I/O
  // term at all because derived rows live in memory. The lattice scheduler
  // weighs this against CostOfAddMs (joining the base-scan class) when
  // picking each level's parent.
  double RollupCpuMs(double parent_rows, const DimensionalQuery& child) const;

 private:
  // Queries of a class as raw pointers.
  static std::vector<const DimensionalQuery*> Queries(const ClassPlan& cls);

  // Restricted dimensions of `query` that exist on `view`.
  std::vector<size_t> RestrictedDims(const DimensionalQuery& query,
                                     const MaterializedView& view) const;

  // Fills the estimate fields of `cls` given fixed member methods.
  void ComputeClassEstimates(ClassPlan& cls) const;

  const StarSchema& schema_;
  DiskTimings disk_;
  CpuCosts cpu_;
};

}  // namespace starshare

#endif  // STARSHARE_COST_COST_MODEL_H_
