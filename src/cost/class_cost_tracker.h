// Incremental class-cost accounting — the cost-delta API behind the
// DAG-greedy optimizer's benefit recomputation (opt/dag_greedy.h).
//
// CostModel::ClassCostMs re-prices a whole class from scratch: O(members)
// per call, which makes a greedy loop that repeatedly asks "what if query q
// moved to class S?" quadratic in the member count. A ClassCostTracker
// holds one class (one base view plus a member set) and maintains the
// aggregate quantities the §5.1 class cost is built from, so adding or
// removing one member — or just *peeking* at the delta without mutating —
// costs O(dimensions), independent of how many members the class has:
//
//   * scan form: the shared scan I/O is constant; the shared CPU depends
//     only on the union of restricted dimensions over hash members (kept as
//     per-dimension counts); each member's non-shared increment depends on
//     (query, view) alone and is cached at first sight;
//   * all-index form: the shared probe I/O needs Σ per-query probe pages
//     and the product Π(1 - candidate selectivity); the per-member CPU
//     needs Π(1 - selectivity) for the union row count. Products are
//     maintained with a zero-factor count so removal never divides by zero.
//
// The tracked total mirrors CostModel::MakeClassPlan exactly in structure
// (same formulas, same scan-vs-all-index choice, same per-member method
// choice); floating-point accumulation order differs, so totals agree to
// rounding error, not bit-for-bit — callers doing exact comparisons should
// re-price final plans with CostModel::MakeClassPlan (as opt/dag_greedy
// does) and use the tracker only to steer the search.

#ifndef STARSHARE_COST_CLASS_COST_TRACKER_H_
#define STARSHARE_COST_CLASS_COST_TRACKER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cost/cost_model.h"

namespace starshare {

class ClassCostTracker {
 public:
  ClassCostTracker(const StarSchema& schema, const CostModel& cost,
                   MaterializedView* base);

  // Copyable: the greedy loop simulates multi-member consolidations on
  // scratch copies before committing them.
  ClassCostTracker(const ClassCostTracker&) = default;
  ClassCostTracker& operator=(const ClassCostTracker&) = default;

  MaterializedView* base() const { return base_; }
  size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  // Member queries in insertion order.
  std::vector<const DimensionalQuery*> Members() const;

  // Estimated cost of the tracked class (0 when empty), equal to
  // CostModel::ClassCostMs(base, Members()) up to accumulation rounding.
  double TotalMs() const;

  // Adds / removes `query` and returns the cost delta (new − old total).
  // Remove aborts if `query` is not a member.
  double AddMs(const DimensionalQuery& query);
  double RemoveMs(const DimensionalQuery& query);

  // The delta Add/Remove would return, without mutating the tracker.
  double PeekAddMs(const DimensionalQuery& query) const;
  double PeekRemoveMs(const DimensionalQuery& query) const;

 private:
  // Per-(query, base) quantities, computed once when the member is first
  // seen; everything the class total needs from this member alone.
  struct MemberCost {
    const DimensionalQuery* query = nullptr;
    double scan_incr = 0;        // min(hash, index-ride) increment
    bool scan_uses_hash = true;  // which of the two the scan form picks
    uint64_t restricted_mask = 0;  // restricted dims present on the view
    bool indexable = false;        // §3.2 applicable for this member
    double probe_pages = 0;        // expected distinct pages, probing alone
    double cand_miss = 1;          // 1 − candidate selectivity
    double sel_miss = 1;           // 1 − full predicate selectivity
    double idx_const = 0;  // index-form member cost minus the union term
  };

  // The aggregates the two class forms are computed from. Kept in one
  // struct so Peek* can evaluate a hypothetical state without mutation.
  struct Aggregates {
    size_t n = 0;
    size_t n_hash = 0;  // members the scan form joins by hashing
    double sum_scan_incr = 0;
    std::vector<uint32_t> hash_dim_count;  // per-dim hash-member count
    size_t n_unindexable = 0;
    double sum_probe_pages = 0;
    double sum_idx_const = 0;
    double cand_miss_prod = 1;
    size_t cand_miss_zeros = 0;
    double sel_miss_prod = 1;
    size_t sel_miss_zeros = 0;
  };

  MemberCost ComputeMemberCost(const DimensionalQuery& query) const;
  // ComputeMemberCost through the shared memo: a member's cost on a fixed
  // base never changes, so once any copy of this tracker has priced a
  // query, every copy reuses the result (the greedy loop peeks at the same
  // (query, view) pairs round after round).
  const MemberCost& Memoized(const DimensionalQuery& query) const;
  const MemberCost* Find(const DimensionalQuery& query) const;
  static void Apply(Aggregates& agg, const MemberCost& m, int sign);
  double TotalOf(const Aggregates& agg) const;

  const StarSchema* schema_;
  const CostModel* cost_;
  MaterializedView* base_;
  std::vector<MemberCost> members_;
  Aggregates agg_;
  // Append-only price cache shared between a tracker and its copies (the
  // search's scratch clones), keyed by query identity.
  std::shared_ptr<std::unordered_map<const DimensionalQuery*, MemberCost>>
      memo_;
};

}  // namespace starshare

#endif  // STARSHARE_COST_CLASS_COST_TRACKER_H_
