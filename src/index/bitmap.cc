#include "index/bitmap.h"

namespace starshare {

void Bitmap::SetAll() {
  for (auto& w : words_) w = ~0ULL;
  // Keep bits past num_bits_ zero so CountSetBits stays exact.
  const uint64_t tail = num_bits_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

void Bitmap::ClearAll() {
  for (auto& w : words_) w = 0;
}

void Bitmap::OrWith(const Bitmap& other) {
  SS_CHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void Bitmap::AndWith(const Bitmap& other) {
  SS_CHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void Bitmap::AndNotWith(const Bitmap& other) {
  SS_CHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
}

void Bitmap::Invert() {
  for (auto& w : words_) w = ~w;
  const uint64_t tail = num_bits_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

Bitmap Bitmap::Or(const Bitmap& a, const Bitmap& b) {
  Bitmap out = a;
  out.OrWith(b);
  return out;
}

Bitmap Bitmap::And(const Bitmap& a, const Bitmap& b) {
  Bitmap out = a;
  out.AndWith(b);
  return out;
}

uint64_t Bitmap::CountSetBits() const {
  uint64_t count = 0;
  for (uint64_t w : words_) count += __builtin_popcountll(w);
  return count;
}

bool Bitmap::AnySet() const {
  for (uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

bool Bitmap::IntersectsWith(const Bitmap& other) const {
  SS_CHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

std::vector<uint64_t> Bitmap::ToPositions() const {
  std::vector<uint64_t> out;
  out.reserve(CountSetBits());
  ForEachSetBit([&out](uint64_t pos) { out.push_back(pos); });
  return out;
}

}  // namespace starshare
