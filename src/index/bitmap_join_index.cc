#include "index/bitmap_join_index.h"

namespace starshare {

BitmapJoinIndex::BitmapJoinIndex(const Table& table, size_t key_col,
                                 uint32_t num_values,
                                 const std::vector<int32_t>& value_map,
                                 DiskModel& disk)
    : key_col_(key_col), num_values_(num_values), num_rows_(table.num_rows()) {
  SS_CHECK(key_col < table.num_key_columns());
  rid_lists_.resize(num_values);
  const KeyColumn& keys = table.key_column(key_col);
  // Index construction scans the table once.
  table.ScanPages(disk, [&](uint64_t begin, uint64_t end) {
    keys.ForEach(begin, end, [&](uint64_t row, int32_t key) {
      SS_CHECK_MSG(key >= 0 && static_cast<size_t>(key) < value_map.size(),
                   "key %d outside the value map (%zu entries)", key,
                   value_map.size());
      const int32_t v = value_map[static_cast<size_t>(key)];
      SS_CHECK_MSG(v >= 0 && static_cast<uint32_t>(v) < num_values,
                   "mapped value %d out of index domain [0,%u)", v,
                   num_values);
      rid_lists_[static_cast<size_t>(v)].push_back(
          static_cast<uint32_t>(row));
    });
  });
  disk.WritePages(TotalPages());
}

BitmapJoinIndex::BitmapJoinIndex(size_t key_col, uint64_t num_rows,
                                 std::vector<std::vector<uint32_t>> rid_lists,
                                 DiskModel& disk)
    : key_col_(key_col),
      num_values_(static_cast<uint32_t>(rid_lists.size())),
      num_rows_(num_rows),
      rid_lists_(std::move(rid_lists)) {
  disk.WritePages(TotalPages());
}

Bitmap BitmapJoinIndex::Lookup(std::span<const int32_t> values,
                               DiskModel& disk) const {
  Bitmap out(num_rows_);
  uint64_t pages = 0;
  for (int32_t v : values) {
    if (v < 0 || static_cast<uint32_t>(v) >= num_values_) continue;
    const auto& list = rid_lists_[static_cast<size_t>(v)];
    pages += PagesForBytes(SegmentBytes(list.size()));
    for (uint32_t row : list) out.Set(row);
  }
  disk.ReadIndexPages(pages);
  return out;
}

uint64_t BitmapJoinIndex::PagesForValue(int32_t value) const {
  if (value < 0 || static_cast<uint32_t>(value) >= num_values_) return 0;
  return PagesForBytes(
      SegmentBytes(rid_lists_[static_cast<size_t>(value)].size()));
}

uint64_t BitmapJoinIndex::TotalPages() const {
  uint64_t total_bytes = 0;
  for (const auto& list : rid_lists_) total_bytes += SegmentBytes(list.size());
  return PagesForBytes(total_bytes);
}

std::vector<int32_t> BitmapJoinIndex::IdentityMap(uint32_t num_values) {
  std::vector<int32_t> map(num_values);
  for (uint32_t i = 0; i < num_values; ++i) map[i] = static_cast<int32_t>(i);
  return map;
}

}  // namespace starshare
