// Star-join bitmap index (paper §3.2, [OQ97]).
//
// One index covers one *hierarchy level* of one dimension of one table: for
// every member at that level, the index records the positions of the tuples
// under it (the paper's "join bitmap index mapping Adim's A' attribute to
// tuples of F"). Internally each member's position set is an RID list;
// Lookup materializes the OR of the requested members' sets as a Bitmap
// over the table's tuple positions.
//
// I/O charging models the segment a real system would store per member:
// the *smaller* of the compressed RID list (4 bytes/position) and the plain
// bitmap (1 bit/row) — dense members ship as bitmaps, sparse members as RID
// lists.

#ifndef STARSHARE_INDEX_BITMAP_JOIN_INDEX_H_
#define STARSHARE_INDEX_BITMAP_JOIN_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "index/bitmap.h"
#include "storage/disk_model.h"
#include "storage/table.h"

namespace starshare {

class BitmapJoinIndex {
 public:
  // Builds the index over `table`'s key column `key_col`. Stored keys are
  // translated through `value_map` (stored key id -> indexed member id in
  // [0, num_values)); pass an identity map to index the stored level
  // itself. Build cost (one scan + segment writes) is charged to `disk`.
  BitmapJoinIndex(const Table& table, size_t key_col, uint32_t num_values,
                  const std::vector<int32_t>& value_map, DiskModel& disk);

  // Adopts prebuilt RID lists (used when several levels' indexes are built
  // from one shared scan — see MaterializedView::BuildIndex). Charges only
  // the segment writes.
  BitmapJoinIndex(size_t key_col, uint64_t num_rows,
                  std::vector<std::vector<uint32_t>> rid_lists,
                  DiskModel& disk);

  BitmapJoinIndex(const BitmapJoinIndex&) = delete;
  BitmapJoinIndex& operator=(const BitmapJoinIndex&) = delete;
  BitmapJoinIndex(BitmapJoinIndex&&) = default;

  size_t key_col() const { return key_col_; }
  uint32_t num_values() const { return num_values_; }
  uint64_t num_rows() const { return num_rows_; }

  // OR of the bitmaps for `values`; charges the index segments read.
  // Values outside [0, num_values) are ignored (empty bitmap contribution).
  Bitmap Lookup(std::span<const int32_t> values, DiskModel& disk) const;

  // Pages occupied by the segment of a single member (what one Lookup of
  // that member charges; used by the cost model).
  uint64_t PagesForValue(int32_t value) const;

  // Total index footprint in pages.
  uint64_t TotalPages() const;

  // Identity map for indexing a column's own values.
  static std::vector<int32_t> IdentityMap(uint32_t num_values);

 private:
  uint64_t SegmentBytes(size_t list_size) const {
    // Smaller of an RID list and a plain bitmap, plus a small header.
    return 8 + std::min<uint64_t>(4 * list_size, (num_rows_ + 7) / 8);
  }

  size_t key_col_;
  uint32_t num_values_;
  uint64_t num_rows_;
  std::vector<std::vector<uint32_t>> rid_lists_;
};

}  // namespace starshare

#endif  // STARSHARE_INDEX_BITMAP_JOIN_INDEX_H_
