// Word-aligned bitmap over tuple positions, the currency of index-based star
// joins (paper §3.2): predicate -> per-dimension bitmaps, OR within a
// dimension, AND across dimensions, OR across queries for the shared probe.

#ifndef STARSHARE_INDEX_BITMAP_H_
#define STARSHARE_INDEX_BITMAP_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "storage/page.h"

namespace starshare {

class Bitmap {
 public:
  Bitmap() : num_bits_(0) {}
  explicit Bitmap(uint64_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  Bitmap(const Bitmap&) = default;
  Bitmap& operator=(const Bitmap&) = default;
  Bitmap(Bitmap&&) = default;
  Bitmap& operator=(Bitmap&&) = default;

  uint64_t num_bits() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  void Set(uint64_t i) {
    SS_DCHECK(i < num_bits_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }
  void Reset(uint64_t i) {
    SS_DCHECK(i < num_bits_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }
  bool Test(uint64_t i) const {
    SS_DCHECK(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void SetAll();
  void ClearAll();

  // In-place boolean algebra. Operands must have equal num_bits().
  void OrWith(const Bitmap& other);
  void AndWith(const Bitmap& other);
  void AndNotWith(const Bitmap& other);  // this &= ~other
  void Invert();                         // this = ~this (trailing bits kept 0)

  static Bitmap Or(const Bitmap& a, const Bitmap& b);
  static Bitmap And(const Bitmap& a, const Bitmap& b);

  // Number of set bits (word-at-a-time popcount).
  uint64_t CountSetBits() const;
  bool AnySet() const;
  bool IntersectsWith(const Bitmap& other) const;

  // Calls fn(position) for every set bit, ascending. Iterates 64-bit words
  // with ctz, so sparse bitmaps cost one branch per set bit, not per row.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<uint64_t>(w) * 64 + static_cast<uint64_t>(bit));
        word &= word - 1;
      }
    }
  }

  // Calls fn(position) for every set bit in [begin, end), ascending. The
  // first and last words are masked so positions outside the range never
  // fire — the batch form the vectorized operators use to turn a bitmap
  // slice into a selection vector.
  template <typename Fn>
  void ForEachSetBitInRange(uint64_t begin, uint64_t end, Fn&& fn) const {
    SS_DCHECK(end <= num_bits_);
    if (begin >= end) return;
    const size_t first_word = begin >> 6;
    const size_t last_word = (end - 1) >> 6;
    for (size_t w = first_word; w <= last_word; ++w) {
      uint64_t word = words_[w];
      if (w == first_word) {
        word &= ~0ULL << (begin & 63);
      }
      if (w == last_word) {
        const uint64_t tail = end - static_cast<uint64_t>(w) * 64;
        if (tail < 64) word &= (1ULL << tail) - 1;
      }
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<uint64_t>(w) * 64 + static_cast<uint64_t>(bit));
        word &= word - 1;
      }
    }
  }

  // Ascending positions of all set bits.
  std::vector<uint64_t> ToPositions() const;

  // Uncompressed footprint, used when charging bitmap materialization.
  uint64_t SizeBytes() const { return words_.size() * 8; }
  uint64_t NumPages() const { return PagesForBytes(SizeBytes()); }

  bool operator==(const Bitmap& other) const = default;

 private:
  uint64_t num_bits_;
  std::vector<uint64_t> words_;
};

}  // namespace starshare

#endif  // STARSHARE_INDEX_BITMAP_H_
