#include "plan/lowering.h"

#include <algorithm>

#include "common/macros.h"
#include "exec/shared_operators.h"

namespace starshare {

LoweredClassNodes LowerSharedClass(PhysicalPlan& plan, size_t parent,
                                   const std::string& detail, size_t n_hash,
                                   size_t n_index, bool probe, int query_id,
                                   const ClassPlan* cls) {
  SS_DCHECK(!probe || n_hash == 0);
  LoweredClassNodes nodes;
  const size_t members = n_hash + n_index;

  double agg_est = -1.0, route_est = -1.0, cpu_est = -1.0, io_est = -1.0;
  if (cls != nullptr) {
    agg_est = cls->EstMs();
    route_est = 0.0;
    for (const LocalPlan& m : cls->members) route_est += m.EstMs();
    cpu_est = cls->est_shared_cpu_ms;
    io_est = cls->est_shared_io_ms;
  }

  nodes.aggregate =
      plan.AddNode(PhysOpKind::kAggregate, detail, query_id, parent);
  plan.node(nodes.aggregate).est_ms = agg_est;
  size_t tail = nodes.aggregate;

  if (members > 1) {
    nodes.route = plan.AddNode(PhysOpKind::kRoute, "", query_id, tail);
    plan.node(nodes.route).est_ms = route_est;
    tail = nodes.route;
  }
  if (n_index > 0) {
    nodes.bitmap_filter =
        plan.AddNode(PhysOpKind::kBitmapFilter, "", query_id, tail);
    if (probe) plan.node(nodes.bitmap_filter).est_ms = cpu_est;
    tail = nodes.bitmap_filter;
  }
  if (!probe) {
    nodes.star_join_filter =
        plan.AddNode(PhysOpKind::kStarJoinFilter, "", query_id, tail);
    plan.node(nodes.star_join_filter).est_ms = cpu_est;
    tail = nodes.star_join_filter;
  }
  nodes.source = plan.AddNode(
      probe ? PhysOpKind::kIndexUnionProbe : PhysOpKind::kScan, detail,
      query_id, tail);
  plan.node(nodes.source).est_ms = io_est;
  return nodes;
}

LoweredClassNodes LowerDerivedClass(PhysicalPlan& plan, size_t parent,
                                    const std::string& detail,
                                    size_t n_members, int query_id,
                                    size_t input, double rollup_cpu_est_ms,
                                    const std::vector<double>* member_est_ms) {
  SS_DCHECK(n_members > 0);
  LoweredClassNodes nodes;
  nodes.aggregate =
      plan.AddNode(PhysOpKind::kAggregate, detail, query_id, parent);
  plan.node(nodes.aggregate).est_ms = rollup_cpu_est_ms;
  size_t tail = nodes.aggregate;
  if (n_members > 1) {
    nodes.route = plan.AddNode(PhysOpKind::kRoute, "", query_id, tail);
    if (member_est_ms != nullptr) {
      double total = 0.0;
      for (const double est : *member_est_ms) total += est;
      plan.node(nodes.route).est_ms = total;
    }
    tail = nodes.route;
  }
  // The star-join filter runs predicate-free over derived rows (the parent
  // already applied every restriction), so it carries no shared dimension
  // tables — but keeping it in the chain preserves the §3.1 shape, the
  // fan-out point, and the per-member EmitRows path unchanged.
  nodes.star_join_filter =
      plan.AddNode(PhysOpKind::kStarJoinFilter, "", query_id, tail);
  plan.node(nodes.star_join_filter).est_ms = rollup_cpu_est_ms;
  nodes.source = plan.AddNode(PhysOpKind::kDerivedScan, detail, query_id,
                              nodes.star_join_filter);
  plan.node(nodes.source).est_ms = 0.0;
  if (input != kNoPhysNode) plan.AddInput(nodes.source, input);
  return nodes;
}

LoweredClassNodes LowerSingleQuery(PhysicalPlan& plan, size_t parent,
                                   const std::string& detail, int query_id,
                                   JoinMethod method, const LocalPlan* local) {
  const bool probe = method == JoinMethod::kIndexProbe;
  LoweredClassNodes nodes = LowerSharedClass(
      plan, parent, detail, probe ? 0 : 1, probe ? 1 : 0, probe, query_id,
      /*cls=*/nullptr);
  if (local != nullptr) {
    plan.node(nodes.aggregate).est_ms = local->EstMs();
    plan.node(nodes.source).est_ms = local->est_nonshared_io_ms;
    const size_t filter =
        probe ? nodes.bitmap_filter : nodes.star_join_filter;
    plan.node(filter).est_ms = local->est_nonshared_cpu_ms;
  }
  return nodes;
}

LoweredViewBuild LowerViewBuild(PhysicalPlan& plan, const std::string& detail,
                                size_t num_scans) {
  LoweredViewBuild build;
  build.aggregate = plan.AddNode(PhysOpKind::kAggregate, detail);
  for (size_t i = 0; i < num_scans; ++i) {
    build.scans.push_back(
        plan.AddNode(PhysOpKind::kScan, detail, -1, build.aggregate));
  }
  return build;
}

void LowerGlobalPlan(PhysicalPlan& phys, const GlobalPlan& plan,
                     const StarSchema& schema) {
  for (const ClassPlan& cls : plan.classes) {
    if (cls.base == nullptr || cls.members.empty()) continue;
    const std::string detail = cls.base->spec().ToString(schema);
    // Mirror the executor's oversized-class chunking: members sliced in
    // order into runs of kMaxClassQueries, each run its own chain whose
    // source is a probe only when the run has no hash member.
    for (size_t begin = 0; begin < cls.members.size();
         begin += kMaxClassQueries) {
      const size_t end =
          std::min(cls.members.size(), begin + kMaxClassQueries);
      size_t n_hash = 0, n_index = 0;
      for (size_t i = begin; i < end; ++i) {
        if (cls.members[i].method == JoinMethod::kHashScan) {
          ++n_hash;
        } else {
          ++n_index;
        }
      }
      if (begin == 0 && end == cls.members.size()) {
        LowerSharedClass(phys, kNoPhysNode, detail, n_hash, n_index,
                         /*probe=*/n_hash == 0, /*query_id=*/-1, &cls);
      } else {
        // Chunks re-run through ExecuteClass with a sliced ClassPlan whose
        // class-level estimates are zeroed; reproduce that exactly.
        ClassPlan chunk;
        chunk.base = cls.base;
        chunk.members.assign(cls.members.begin() + begin,
                             cls.members.begin() + end);
        LowerSharedClass(phys, kNoPhysNode, detail, n_hash, n_index,
                         /*probe=*/n_hash == 0, /*query_id=*/-1, &chunk);
      }
    }
  }
}

}  // namespace starshare
