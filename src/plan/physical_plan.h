// The explicit physical plan DAG every execution path runs through: the
// optimizer's GlobalPlan is lowered (plan/lowering.h) into a tree of
// physical nodes — the paper-§3 operator shapes — and the exec layer walks
// that exact tree, annotating each node with the I/O, row counts and status
// it actually observed. EXPLAIN ANALYZE renders the executed tree, so what
// the user reads is the structure that ran, not a description of it.
//
// Nodes are arena-allocated inside PhysicalPlan and reference children by
// index; a plan may hold several roots (one per executed class, plus
// CacheLookup / Fallback roots the engine adds around them). Beyond the
// child tree, a node may carry `inputs` — cross-tree DAG edges naming the
// sibling nodes whose *output* it consumes. DerivedScan uses them to point
// at the Aggregate (or Fallback) node whose finished groups it re-batches,
// which is what lets a coarser group-by roll up from a finer one instead of
// rescanning the fact table.

#ifndef STARSHARE_PLAN_PHYSICAL_PLAN_H_
#define STARSHARE_PLAN_PHYSICAL_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/mem_stats.h"
#include "common/status.h"
#include "obs/trace.h"
#include "storage/disk_model.h"
#include "storage/io_stats.h"

namespace starshare {

inline constexpr size_t kNoPhysNode = static_cast<size_t>(-1);

// The nine physical operator kinds. Scan and IndexUnionProbe are sources
// (§3.1 shared table scan; §3.2 OR-ed bitmap probe); StarJoinFilter carries
// the shared dimension pass masks, BitmapFilter the per-member candidate
// bitmaps (§3.3 hybrid stacks both); Route fans one shared match stream out
// to the class members; Aggregate folds each member's stream; CacheLookup
// and Fallback are the engine-level wrappers (result cache, fact-table
// degradation) made visible as plan structure. DerivedScan is the third
// source kind: it re-batches the in-memory output of a sibling Aggregate
// node (named by `PhysicalNode::inputs`) so coarser group-bys in a
// CUBE/ROLLUP lattice aggregate their parent's groups instead of the fact
// table — it charges no modeled I/O at all. New kinds append here:
// ShapeHash folds the numeric kind value, so reordering would silently
// re-digest every existing plan.
enum class PhysOpKind {
  kScan,
  kIndexUnionProbe,
  kBitmapFilter,
  kRoute,
  kStarJoinFilter,
  kAggregate,
  kCacheLookup,
  kFallback,
  kDerivedScan,
};

// Stable display name ("Scan", "Route", ...).
const char* PhysOpKindName(PhysOpKind kind);

// The trace span name derived for a node of this kind — obs/ emits exactly
// one span per executed node, so span taxonomy and plan taxonomy coincide.
const char* PhysOpSpanName(PhysOpKind kind);

// Per-member outcome recorded at the node that fans out to the members
// (Route when present, otherwise Aggregate).
struct PhysicalMemberStat {
  int query_id = -1;
  std::string method;  // JoinMethodName of the member's local plan
  double est_ms = -1.0;
  uint64_t rows = 0;
  int status_code = 0;  // StatusCode as int; 0 == OK
};

struct PhysicalNode {
  PhysOpKind kind;
  std::string detail;  // view / spec the node works over
  int query_id = -1;   // single-query chains and fallbacks
  std::vector<size_t> children;
  // Cross-tree DAG edges: indices of sibling nodes whose finished output
  // this node consumes (DerivedScan -> producing Aggregate/Fallback). Unlike
  // `children` these never imply execution nesting — the producer ran
  // earlier under its own root — so Render shows them as `reads=[#i ...]`
  // references rather than indentation.
  std::vector<size_t> inputs;

  // Planning-time annotation (cost model estimate; < 0 when unannotated).
  double est_ms = -1.0;

  // Execution-time annotations, filled by NodeExec as the tree runs. The
  // I/O delta is inclusive of children, mirroring trace span semantics.
  bool executed = false;
  uint64_t actual_rows = 0;
  uint64_t batches = 0;
  IoStats actual_io;
  // High-water memory gauge of the node's transient structures (match
  // buffers, hash tables, bitmaps, batch scratch); rendered as `mem=` next
  // to `io=`. Lives on the node only — never on the trace span, whose
  // structural fields must stay identical across thread counts and batch
  // sizes while buffer capacities may not.
  MemStats mem;
  int status_code = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<PhysicalMemberStat> member_stats;
};

class PhysicalPlan {
 public:
  // Adds a node; with parent == kNoPhysNode it becomes a new root,
  // otherwise it is appended to the parent's children. Returns its index.
  size_t AddNode(PhysOpKind kind, std::string detail = "", int query_id = -1,
                 size_t parent = kNoPhysNode);

  PhysicalNode& node(size_t i) { return nodes_[i]; }
  const PhysicalNode& node(size_t i) const { return nodes_[i]; }
  const std::vector<PhysicalNode>& nodes() const { return nodes_; }
  const std::vector<size_t>& roots() const { return roots_; }
  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  // Records a DAG edge: `node` consumes the finished output of `input`.
  // The producer must already exist (it ran, or was lowered, first).
  void AddInput(size_t node, size_t input);

  // Reparents every root from ordinal `first_root` onward under `parent` —
  // how the engine nests the miss-execution trees of a cached run beneath
  // the CacheLookup node after they ran.
  void AdoptRootsAsChildren(size_t parent, size_t first_root);

  // Structure-only rendering (kinds, details, estimates).
  std::string ToText() const;

  // Estimated-vs-actual rendering of the executed tree: per node the cost
  // model estimate, the modeled actual milliseconds of its inclusive
  // IoStats delta under `timings`, rows, I/O and status.
  std::string ExplainAnalyze(const DiskTimings& timings) const;

  // The same executed tree as a JSON array of root objects (children
  // nested), for tooling that post-processes EXPLAIN ANALYZE output.
  std::string ExplainAnalyzeJson(const DiskTimings& timings) const;

  // Stable 16-hex-digit digest of the lowered tree's *shape* — node kinds,
  // details, query ids and child structure, never actuals or estimates.
  // Stamped into BENCH_*.json so plan drift across changes is detectable.
  std::string ShapeHash() const;

 private:
  void Render(size_t index, int depth, bool analyze,
              const DiskTimings* timings, std::string& out) const;

  std::vector<PhysicalNode> nodes_;
  std::vector<size_t> roots_;
};

// Feeds one node's sealed memory gauge into the MetricsRegistry
// ("exec.mem.node_peak_bytes" histogram, "exec.mem.peak_bytes" gauge).
void PublishNodeMemMetrics(const MemStats& mem);

// RAII execution scope for one physical node: opens the node's trace span
// (name derived from the kind, estimate attached when annotated), snapshots
// the executing DiskModel's stats, and on destruction stores the inclusive
// IoStats delta plus rows/batches/status/counters back into the node.
// Construct in node order, destroy innermost-first — exactly the span
// nesting discipline — and only on the tracer thread.
class NodeExec {
 public:
  NodeExec(PhysicalPlan& plan, size_t index, DiskModel& disk)
      : plan_(plan),
        index_(index),
        disk_(disk),
        at_open_(disk.stats()),
        span_(PhysOpSpanName(plan.node(index).kind), plan.node(index).detail,
              plan.node(index).query_id) {
    if (plan_.node(index_).est_ms >= 0) {
      span_.SetEstMs(plan_.node(index_).est_ms);
    }
  }
  ~NodeExec() { Finish(); }

  NodeExec(const NodeExec&) = delete;
  NodeExec& operator=(const NodeExec&) = delete;

  void AddRows(uint64_t n) {
    span_.AddRows(n);
    plan_.node(index_).actual_rows += n;
  }
  void AddBatches(uint64_t n) {
    span_.AddBatches(n);
    plan_.node(index_).batches += n;
  }
  void SetStatus(const Status& status) {
    span_.SetStatus(status);
    plan_.node(index_).status_code = static_cast<int>(status.code());
  }
  void AddCounter(const char* key, uint64_t value) {
    span_.AddCounter(key, value);
    plan_.node(index_).counters.emplace_back(key, value);
  }
  // Counter recorded on the plan node but NOT the trace span — for values
  // (spill run counts) that legitimately vary with batch size while traces
  // must stay structurally identical across batch configurations.
  void AddNodeOnlyCounter(const char* key, uint64_t value) {
    plan_.node(index_).counters.emplace_back(key, value);
  }
  // Folds a memory snapshot into the node's high-water gauge. Deliberately
  // not mirrored onto the span: capacities (hash-table geometry, vector
  // growth) vary across configurations that must trace identically.
  void RecordMem(const MemStats& snapshot) {
    plan_.node(index_).mem.MergePeak(snapshot);
  }

  size_t index() const { return index_; }

 private:
  // Seals the node's execution record; the span closes (and takes its own
  // identical disk delta) when the member destructor runs right after.
  void Finish() {
    if (finished_) return;
    finished_ = true;
    PhysicalNode& node = plan_.node(index_);
    node.executed = true;
    node.actual_io += disk_.stats() - at_open_;
    if (!node.mem.empty()) PublishNodeMemMetrics(node.mem);
  }

  PhysicalPlan& plan_;
  size_t index_;
  DiskModel& disk_;
  IoStats at_open_;
  bool finished_ = false;
  obs::ScopedSpan span_;  // last member: closes before the delta is stale
};

}  // namespace starshare

#endif  // STARSHARE_PLAN_PHYSICAL_PLAN_H_
