#include "plan/physical_plan.h"

#include "common/macros.h"
#include "common/str_util.h"

namespace starshare {
namespace {

// Matches the trace renderer's compact io form: non-zero fields only, fixed
// order, nothing at all when the node charged no I/O.
void AppendIo(const IoStats& io, std::string& out) {
  if (io == IoStats()) return;
  out += " io=[";
  bool first = true;
  auto field = [&](const char* key, uint64_t value) {
    if (value == 0) return;
    out += StrFormat("%s%s=%llu", first ? "" : " ", key,
                     static_cast<unsigned long long>(value));
    first = false;
  };
  field("seq", io.seq_pages_read);
  field("rand", io.rand_pages_read);
  field("idx", io.index_pages_read);
  field("wr", io.pages_written);
  field("cached", io.cached_pages);
  field("tuples", io.tuples_processed);
  field("probes", io.hash_probes);
  out += ']';
}

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

void HashBytes(const void* data, size_t n, uint64_t& h) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

void HashU64(uint64_t v, uint64_t& h) { HashBytes(&v, sizeof(v), h); }

}  // namespace

const char* PhysOpKindName(PhysOpKind kind) {
  switch (kind) {
    case PhysOpKind::kScan:
      return "Scan";
    case PhysOpKind::kIndexUnionProbe:
      return "IndexUnionProbe";
    case PhysOpKind::kBitmapFilter:
      return "BitmapFilter";
    case PhysOpKind::kRoute:
      return "Route";
    case PhysOpKind::kStarJoinFilter:
      return "StarJoinFilter";
    case PhysOpKind::kAggregate:
      return "Aggregate";
    case PhysOpKind::kCacheLookup:
      return "CacheLookup";
    case PhysOpKind::kFallback:
      return "Fallback";
  }
  return "?";
}

const char* PhysOpSpanName(PhysOpKind kind) {
  switch (kind) {
    case PhysOpKind::kScan:
      return "exec.shared_scan";
    case PhysOpKind::kIndexUnionProbe:
      return "exec.shared_probe";
    case PhysOpKind::kBitmapFilter:
      return "exec.bitmap_filter";
    case PhysOpKind::kRoute:
      return "exec.route";
    case PhysOpKind::kStarJoinFilter:
      return "exec.star_join_filter";
    case PhysOpKind::kAggregate:
      return "exec.aggregate";
    case PhysOpKind::kCacheLookup:
      return "exec.cache_lookup";
    case PhysOpKind::kFallback:
      return "exec.fallback";
  }
  return "?";
}

size_t PhysicalPlan::AddNode(PhysOpKind kind, std::string detail,
                             int query_id, size_t parent) {
  const size_t index = nodes_.size();
  PhysicalNode& node = nodes_.emplace_back();
  node.kind = kind;
  node.detail = std::move(detail);
  node.query_id = query_id;
  if (parent == kNoPhysNode) {
    roots_.push_back(index);
  } else {
    SS_DCHECK(parent < index);
    nodes_[parent].children.push_back(index);
  }
  return index;
}

void PhysicalPlan::AdoptRootsAsChildren(size_t parent, size_t first_root) {
  SS_CHECK(parent < nodes_.size());
  SS_CHECK(first_root <= roots_.size());
  for (size_t i = first_root; i < roots_.size(); ++i) {
    if (roots_[i] == parent) continue;
    nodes_[parent].children.push_back(roots_[i]);
  }
  roots_.resize(first_root);
}

void PhysicalPlan::Render(size_t index, int depth, bool analyze,
                          const DiskTimings* timings,
                          std::string& out) const {
  const PhysicalNode& node = nodes_[index];
  out.append(static_cast<size_t>(depth) * 2, ' ');
  out += PhysOpKindName(node.kind);
  if (!node.detail.empty()) out += StrFormat("(%s)", node.detail.c_str());
  if (node.query_id >= 0) out += StrFormat(" q%d", node.query_id);
  if (node.est_ms >= 0.0) out += StrFormat(" est=%.3fms", node.est_ms);
  if (analyze && node.executed) {
    out += StrFormat(" act=%.3fms", timings->ModeledIoMs(node.actual_io));
    if (node.actual_rows > 0) {
      out += StrFormat(" rows=%llu",
                       static_cast<unsigned long long>(node.actual_rows));
    }
    AppendIo(node.actual_io, out);
    for (const auto& [key, value] : node.counters) {
      out += StrFormat(" %s=%llu", key.c_str(),
                       static_cast<unsigned long long>(value));
    }
    if (node.status_code != 0) {
      out += StrFormat(" status=%s", obs::StatusCodeName(node.status_code));
    }
  } else if (analyze) {
    out += " (not executed)";
  }
  out += '\n';
  for (const PhysicalMemberStat& member : node.member_stats) {
    out.append(static_cast<size_t>(depth + 1) * 2, ' ');
    out += StrFormat("-> member q%d (%s)", member.query_id,
                     member.method.c_str());
    if (member.est_ms >= 0.0) out += StrFormat(" est=%.3fms", member.est_ms);
    if (analyze) {
      out += StrFormat(" rows=%llu",
                       static_cast<unsigned long long>(member.rows));
      if (member.status_code != 0) {
        out += StrFormat(" status=%s",
                         obs::StatusCodeName(member.status_code));
      }
    }
    out += '\n';
  }
  for (const size_t child : node.children) {
    Render(child, depth + 1, analyze, timings, out);
  }
}

std::string PhysicalPlan::ToText() const {
  std::string out;
  for (const size_t root : roots_) {
    Render(root, 0, /*analyze=*/false, nullptr, out);
  }
  return out;
}

std::string PhysicalPlan::ExplainAnalyze(const DiskTimings& timings) const {
  std::string out;
  for (const size_t root : roots_) {
    Render(root, 0, /*analyze=*/true, &timings, out);
  }
  return out;
}

std::string PhysicalPlan::ShapeHash() const {
  uint64_t h = kFnvOffset;
  // Preorder walk from the roots; node kind, identity and fan-out feed the
  // digest, execution annotations never do.
  const auto walk = [&](auto&& self, size_t index) -> void {
    const PhysicalNode& node = nodes_[index];
    HashU64(static_cast<uint64_t>(node.kind), h);
    HashU64(static_cast<uint64_t>(node.query_id) + 1, h);
    HashBytes(node.detail.data(), node.detail.size(), h);
    HashU64(node.children.size(), h);
    for (const size_t child : node.children) self(self, child);
  };
  HashU64(roots_.size(), h);
  for (const size_t root : roots_) walk(walk, root);
  return StrFormat("%016llx", static_cast<unsigned long long>(h));
}

}  // namespace starshare
