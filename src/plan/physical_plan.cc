#include "plan/physical_plan.h"

#include "common/macros.h"
#include "common/str_util.h"
#include "obs/metrics.h"

namespace starshare {
namespace {

// Matches the trace renderer's compact io form: non-zero fields only, fixed
// order, nothing at all when the node charged no I/O.
void AppendIo(const IoStats& io, std::string& out) {
  if (io == IoStats()) return;
  out += " io=[";
  bool first = true;
  auto field = [&](const char* key, uint64_t value) {
    if (value == 0) return;
    out += StrFormat("%s%s=%llu", first ? "" : " ", key,
                     static_cast<unsigned long long>(value));
    first = false;
  };
  field("seq", io.seq_pages_read);
  field("rand", io.rand_pages_read);
  field("idx", io.index_pages_read);
  field("wr", io.pages_written);
  field("cached", io.cached_pages);
  field("tuples", io.tuples_processed);
  field("probes", io.hash_probes);
  out += ']';
}

// Same compact form for the memory gauge: non-zero fields only, fixed
// order, nothing when the node recorded no memory. Goldens mask the bracket
// body (`mem=[--]`) because capacities vary across standard libraries.
void AppendMem(const MemStats& mem, std::string& out) {
  if (mem.empty()) return;
  out += " mem=[";
  bool first = true;
  auto field = [&](const char* key, uint64_t value) {
    if (value == 0) return;
    out += StrFormat("%s%s=%llu", first ? "" : " ", key,
                     static_cast<unsigned long long>(value));
    first = false;
  };
  field("match", mem.match_bytes);
  field("hash", mem.hash_bytes);
  field("bitmap", mem.bitmap_bytes);
  field("batch", mem.batch_bytes);
  field("peak", mem.peak_bytes);
  out += ']';
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

void HashBytes(const void* data, size_t n, uint64_t& h) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

void HashU64(uint64_t v, uint64_t& h) { HashBytes(&v, sizeof(v), h); }

}  // namespace

const char* PhysOpKindName(PhysOpKind kind) {
  switch (kind) {
    case PhysOpKind::kScan:
      return "Scan";
    case PhysOpKind::kIndexUnionProbe:
      return "IndexUnionProbe";
    case PhysOpKind::kBitmapFilter:
      return "BitmapFilter";
    case PhysOpKind::kRoute:
      return "Route";
    case PhysOpKind::kStarJoinFilter:
      return "StarJoinFilter";
    case PhysOpKind::kAggregate:
      return "Aggregate";
    case PhysOpKind::kCacheLookup:
      return "CacheLookup";
    case PhysOpKind::kFallback:
      return "Fallback";
    case PhysOpKind::kDerivedScan:
      return "DerivedScan";
  }
  return "?";
}

const char* PhysOpSpanName(PhysOpKind kind) {
  switch (kind) {
    case PhysOpKind::kScan:
      return "exec.shared_scan";
    case PhysOpKind::kIndexUnionProbe:
      return "exec.shared_probe";
    case PhysOpKind::kBitmapFilter:
      return "exec.bitmap_filter";
    case PhysOpKind::kRoute:
      return "exec.route";
    case PhysOpKind::kStarJoinFilter:
      return "exec.star_join_filter";
    case PhysOpKind::kAggregate:
      return "exec.aggregate";
    case PhysOpKind::kCacheLookup:
      return "exec.cache_lookup";
    case PhysOpKind::kFallback:
      return "exec.fallback";
    case PhysOpKind::kDerivedScan:
      return "exec.derived_scan";
  }
  return "?";
}

size_t PhysicalPlan::AddNode(PhysOpKind kind, std::string detail,
                             int query_id, size_t parent) {
  const size_t index = nodes_.size();
  PhysicalNode& node = nodes_.emplace_back();
  node.kind = kind;
  node.detail = std::move(detail);
  node.query_id = query_id;
  if (parent == kNoPhysNode) {
    roots_.push_back(index);
  } else {
    SS_DCHECK(parent < index);
    nodes_[parent].children.push_back(index);
  }
  return index;
}

void PhysicalPlan::AddInput(size_t node, size_t input) {
  SS_CHECK(node < nodes_.size());
  SS_CHECK(input < nodes_.size());
  nodes_[node].inputs.push_back(input);
}

void PhysicalPlan::AdoptRootsAsChildren(size_t parent, size_t first_root) {
  SS_CHECK(parent < nodes_.size());
  SS_CHECK(first_root <= roots_.size());
  for (size_t i = first_root; i < roots_.size(); ++i) {
    if (roots_[i] == parent) continue;
    nodes_[parent].children.push_back(roots_[i]);
  }
  roots_.resize(first_root);
}

void PhysicalPlan::Render(size_t index, int depth, bool analyze,
                          const DiskTimings* timings,
                          std::string& out) const {
  const PhysicalNode& node = nodes_[index];
  out.append(static_cast<size_t>(depth) * 2, ' ');
  out += PhysOpKindName(node.kind);
  if (!node.detail.empty()) out += StrFormat("(%s)", node.detail.c_str());
  if (node.query_id >= 0) out += StrFormat(" q%d", node.query_id);
  if (!node.inputs.empty()) {
    out += " reads=[";
    for (size_t i = 0; i < node.inputs.size(); ++i) {
      out += StrFormat("%s#%llu", i > 0 ? " " : "",
                       static_cast<unsigned long long>(node.inputs[i]));
    }
    out += ']';
  }
  if (node.est_ms >= 0.0) out += StrFormat(" est=%.3fms", node.est_ms);
  if (analyze && node.executed) {
    out += StrFormat(" act=%.3fms", timings->ModeledIoMs(node.actual_io));
    if (node.actual_rows > 0) {
      out += StrFormat(" rows=%llu",
                       static_cast<unsigned long long>(node.actual_rows));
    }
    AppendIo(node.actual_io, out);
    AppendMem(node.mem, out);
    for (const auto& [key, value] : node.counters) {
      out += StrFormat(" %s=%llu", key.c_str(),
                       static_cast<unsigned long long>(value));
    }
    if (node.status_code != 0) {
      out += StrFormat(" status=%s", obs::StatusCodeName(node.status_code));
    }
  } else if (analyze) {
    out += " (not executed)";
  }
  out += '\n';
  for (const PhysicalMemberStat& member : node.member_stats) {
    out.append(static_cast<size_t>(depth + 1) * 2, ' ');
    out += StrFormat("-> member q%d (%s)", member.query_id,
                     member.method.c_str());
    if (member.est_ms >= 0.0) out += StrFormat(" est=%.3fms", member.est_ms);
    if (analyze) {
      out += StrFormat(" rows=%llu",
                       static_cast<unsigned long long>(member.rows));
      if (member.status_code != 0) {
        out += StrFormat(" status=%s",
                         obs::StatusCodeName(member.status_code));
      }
    }
    out += '\n';
  }
  for (const size_t child : node.children) {
    Render(child, depth + 1, analyze, timings, out);
  }
}

std::string PhysicalPlan::ToText() const {
  std::string out;
  for (const size_t root : roots_) {
    Render(root, 0, /*analyze=*/false, nullptr, out);
  }
  return out;
}

std::string PhysicalPlan::ExplainAnalyze(const DiskTimings& timings) const {
  std::string out;
  for (const size_t root : roots_) {
    Render(root, 0, /*analyze=*/true, &timings, out);
  }
  return out;
}

void PublishNodeMemMetrics(const MemStats& mem) {
  static obs::Histogram& node_peak =
      obs::Metrics().histogram("exec.mem.node_peak_bytes");
  static obs::Gauge& peak = obs::Metrics().gauge("exec.mem.peak_bytes");
  node_peak.Observe(mem.peak_bytes);
  // NodeExec seals on the tracer thread only, so max-update is race-free.
  if (static_cast<int64_t>(mem.peak_bytes) > peak.value()) {
    peak.Set(static_cast<int64_t>(mem.peak_bytes));
  }
}

std::string PhysicalPlan::ExplainAnalyzeJson(const DiskTimings& timings) const {
  std::string out = "[";
  // Iterative-free recursive lambda mirroring Render's walk.
  const auto walk = [&](auto&& self, size_t index) -> void {
    const PhysicalNode& node = nodes_[index];
    out += StrFormat("{\"op\": \"%s\"", PhysOpKindName(node.kind));
    if (!node.detail.empty()) {
      out += StrFormat(", \"detail\": \"%s\"", JsonEscape(node.detail).c_str());
    }
    if (node.query_id >= 0) out += StrFormat(", \"query\": %d", node.query_id);
    if (!node.inputs.empty()) {
      out += ", \"inputs\": [";
      for (size_t i = 0; i < node.inputs.size(); ++i) {
        if (i > 0) out += ", ";
        out += StrFormat("%llu",
                         static_cast<unsigned long long>(node.inputs[i]));
      }
      out += ']';
    }
    if (node.est_ms >= 0.0) out += StrFormat(", \"est_ms\": %.3f", node.est_ms);
    out += StrFormat(", \"executed\": %s", node.executed ? "true" : "false");
    if (node.executed) {
      out += StrFormat(", \"act_io_ms\": %.3f",
                       timings.ModeledIoMs(node.actual_io));
      out += StrFormat(", \"rows\": %llu, \"batches\": %llu",
                       static_cast<unsigned long long>(node.actual_rows),
                       static_cast<unsigned long long>(node.batches));
      out += StrFormat(
          ", \"io\": {\"seq\": %llu, \"rand\": %llu, \"index\": %llu, "
          "\"written\": %llu, \"cached\": %llu, \"tuples\": %llu, "
          "\"probes\": %llu}",
          static_cast<unsigned long long>(node.actual_io.seq_pages_read),
          static_cast<unsigned long long>(node.actual_io.rand_pages_read),
          static_cast<unsigned long long>(node.actual_io.index_pages_read),
          static_cast<unsigned long long>(node.actual_io.pages_written),
          static_cast<unsigned long long>(node.actual_io.cached_pages),
          static_cast<unsigned long long>(node.actual_io.tuples_processed),
          static_cast<unsigned long long>(node.actual_io.hash_probes));
      if (!node.mem.empty()) {
        out += StrFormat(
            ", \"mem\": {\"match\": %llu, \"hash\": %llu, \"bitmap\": %llu, "
            "\"batch\": %llu, \"peak\": %llu}",
            static_cast<unsigned long long>(node.mem.match_bytes),
            static_cast<unsigned long long>(node.mem.hash_bytes),
            static_cast<unsigned long long>(node.mem.bitmap_bytes),
            static_cast<unsigned long long>(node.mem.batch_bytes),
            static_cast<unsigned long long>(node.mem.peak_bytes));
      }
      if (!node.counters.empty()) {
        out += ", \"counters\": {";
        for (size_t c = 0; c < node.counters.size(); ++c) {
          if (c > 0) out += ", ";
          out += StrFormat(
              "\"%s\": %llu", JsonEscape(node.counters[c].first).c_str(),
              static_cast<unsigned long long>(node.counters[c].second));
        }
        out += '}';
      }
      if (node.status_code != 0) {
        out += StrFormat(", \"status\": \"%s\"",
                         obs::StatusCodeName(node.status_code));
      }
    }
    if (!node.member_stats.empty()) {
      out += ", \"members\": [";
      for (size_t m = 0; m < node.member_stats.size(); ++m) {
        const PhysicalMemberStat& member = node.member_stats[m];
        if (m > 0) out += ", ";
        out += StrFormat("{\"query\": %d, \"method\": \"%s\", \"rows\": %llu",
                         member.query_id, JsonEscape(member.method).c_str(),
                         static_cast<unsigned long long>(member.rows));
        if (member.status_code != 0) {
          out += StrFormat(", \"status\": \"%s\"",
                           obs::StatusCodeName(member.status_code));
        }
        out += '}';
      }
      out += ']';
    }
    if (!node.children.empty()) {
      out += ", \"children\": [";
      for (size_t c = 0; c < node.children.size(); ++c) {
        if (c > 0) out += ", ";
        self(self, node.children[c]);
      }
      out += ']';
    }
    out += '}';
  };
  for (size_t i = 0; i < roots_.size(); ++i) {
    if (i > 0) out += ", ";
    walk(walk, roots_[i]);
  }
  out += ']';
  return out;
}

std::string PhysicalPlan::ShapeHash() const {
  uint64_t h = kFnvOffset;
  // Preorder walk from the roots; node kind, identity and fan-out feed the
  // digest, execution annotations never do.
  const auto walk = [&](auto&& self, size_t index) -> void {
    const PhysicalNode& node = nodes_[index];
    HashU64(static_cast<uint64_t>(node.kind), h);
    HashU64(static_cast<uint64_t>(node.query_id) + 1, h);
    HashBytes(node.detail.data(), node.detail.size(), h);
    // DAG edges are shape: a rollup reading producer #3 differs from one
    // reading #5 even when the subtrees below each look alike.
    HashU64(node.inputs.size(), h);
    for (const size_t input : node.inputs) HashU64(input + 1, h);
    HashU64(node.children.size(), h);
    for (const size_t child : node.children) self(self, child);
  };
  HashU64(roots_.size(), h);
  for (const size_t root : roots_) walk(walk, root);
  return StrFormat("%016llx", static_cast<unsigned long long>(h));
}

}  // namespace starshare
