// Lowering: GlobalPlan (the optimizer's class/member structure) down to the
// PhysicalPlan DAG the exec layer runs. One shared class becomes the §3
// operator chain its members' methods call for:
//
//   hash-only (§3.1)   Aggregate <- [Route] <- StarJoinFilter <- Scan
//   index-only (§3.2)  Aggregate <- [Route] <- BitmapFilter <- IndexUnionProbe
//   hybrid (§3.3)      Aggregate <- [Route] <- BitmapFilter
//                        <- StarJoinFilter <- Scan
//   rollup (cube)      Aggregate <- [Route] <- StarJoinFilter <- DerivedScan
//
// A class tree is therefore no longer always rooted at a base-table source:
// the rollup chain's DerivedScan reads the in-memory groups of an earlier
// Aggregate, named by a `PhysicalNode::inputs` DAG edge rather than a child
// edge (the producer already ran under its own root).
//
// Route appears only when the class has more than one member. Cost-model
// estimates annotate the nodes: shared I/O on the source, shared CPU on the
// top filter, per-member totals on Route, the class total on Aggregate.
// The executor lowers through these same helpers at run time, so a plan
// lowered here and the tree that actually executed have identical shape
// (PhysicalPlan::ShapeHash) by construction.

#ifndef STARSHARE_PLAN_LOWERING_H_
#define STARSHARE_PLAN_LOWERING_H_

#include <cstddef>
#include <string>
#include <vector>

#include "plan/physical_plan.h"
#include "plan/plan.h"

namespace starshare {

// The nodes of one lowered class chain; absent nodes are kNoPhysNode.
struct LoweredClassNodes {
  size_t aggregate = kNoPhysNode;
  size_t route = kNoPhysNode;
  size_t bitmap_filter = kNoPhysNode;
  size_t star_join_filter = kNoPhysNode;
  size_t source = kNoPhysNode;  // Scan, IndexUnionProbe or DerivedScan
};

// Lowers one shared class of n_hash hash-scan members and n_index
// index-probe members over the view named by `detail`. `probe` selects the
// §3.2 IndexUnionProbe source (callers pass n_hash == 0 then); otherwise
// the chain scans (§3.1, or §3.3 when n_index > 0). `cls` optionally
// carries cost estimates; `query_id` tags single-query chains.
LoweredClassNodes LowerSharedClass(PhysicalPlan& plan, size_t parent,
                                   const std::string& detail, size_t n_hash,
                                   size_t n_index, bool probe, int query_id,
                                   const ClassPlan* cls);

// Lowers one derived (rollup) class: `n_members` coarser group-bys
// re-aggregating the finished groups of the producer node `input` (its
// Aggregate, or the Fallback that recovered it; pass kNoPhysNode for a
// throwaway lowering with no recorded edge). The chain is
// Aggregate <- [Route] <- StarJoinFilter <- DerivedScan; the DerivedScan
// carries est_ms = 0 — derived rows are in memory, so the cost model
// charges the rollup's CPU (`rollup_cpu_est_ms`, on the filter) and no I/O.
// `member_est_ms` (optional, per member in order) annotates Route.
LoweredClassNodes LowerDerivedClass(PhysicalPlan& plan, size_t parent,
                                    const std::string& detail,
                                    size_t n_members, int query_id,
                                    size_t input, double rollup_cpu_est_ms,
                                    const std::vector<double>* member_est_ms);

// Lowers the single-query chain (unshared baseline, naive mode, fact-table
// fallback): a one-member class of the query's join method.
LoweredClassNodes LowerSingleQuery(PhysicalPlan& plan, size_t parent,
                                   const std::string& detail, int query_id,
                                   JoinMethod method, const LocalPlan* local);

// The view-build plan shape: one Aggregate folding `num_scans` source
// scans (1 for Build/BuildMany, 2 for Refresh: the view then the delta).
struct LoweredViewBuild {
  size_t aggregate = kNoPhysNode;
  std::vector<size_t> scans;
};
LoweredViewBuild LowerViewBuild(PhysicalPlan& plan, const std::string& detail,
                                size_t num_scans);

// Lowers every class of a GlobalPlan (one root chain per executed class,
// mirroring the executor's oversized-class chunking exactly). This is the
// planning-time twin of execution: its ShapeHash equals the executed
// tree's for a fault-free shared run, and benches stamp it into
// BENCH_*.json to make plan drift visible.
void LowerGlobalPlan(PhysicalPlan& phys, const GlobalPlan& plan,
                     const StarSchema& schema);

}  // namespace starshare

#endif  // STARSHARE_PLAN_LOWERING_H_
