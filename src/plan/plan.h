// Plan representation for multiple-dimensional-query evaluation.
//
// A GlobalPlan partitions the component queries of an MDX expression into
// classes (the paper's "Class"es): every query in a class is computed from
// the same base table (a materialized group-by), so the class can be
// evaluated with one of the shared operators of §3. Within a class each
// query has a LocalPlan naming its star-join method.

#ifndef STARSHARE_PLAN_PLAN_H_
#define STARSHARE_PLAN_PLAN_H_

#include <optional>
#include <string>
#include <vector>

#include "cube/materialized_view.h"
#include "query/query.h"

namespace starshare {

enum class JoinMethod {
  kHashScan,    // pipelined right-deep hash star join fed by a table scan
  kIndexProbe,  // bitmap join-index star join probing matching tuples
};

const char* JoinMethodName(JoinMethod method);

// One query's plan within a class: which view it reads and how.
struct LocalPlan {
  const DimensionalQuery* query = nullptr;
  JoinMethod method = JoinMethod::kHashScan;

  // Cost-model estimates (milliseconds), filled by the optimizer.
  double est_nonshared_cpu_ms = 0;
  double est_nonshared_io_ms = 0;  // e.g. index-lookup I/O

  double EstMs() const { return est_nonshared_cpu_ms + est_nonshared_io_ms; }
};

// Queries sharing one base table, evaluated by a shared operator.
struct ClassPlan {
  MaterializedView* base = nullptr;
  std::vector<LocalPlan> members;

  // Cost-model estimates for the shared portions (milliseconds).
  double est_shared_io_ms = 0;
  double est_shared_cpu_ms = 0;

  bool HasHashMember() const;
  bool HasIndexMember() const;

  double EstMs() const;
};

struct GlobalPlan {
  std::vector<ClassPlan> classes;

  double EstMs() const;
  size_t NumQueries() const;

  // Finds the class index containing query id `query_id`; nullopt when no
  // class plans that query.
  std::optional<size_t> ClassOf(int query_id) const;

  // Multi-line human-readable description, e.g.
  //   Class A'B'C'D (1,020,600 rows):
  //     Q2 [hash-scan]  est 13.9ms  (A''B'C''D <= A'B'C'D)
  std::string Explain(const StarSchema& schema) const;
};

}  // namespace starshare

#endif  // STARSHARE_PLAN_PLAN_H_
