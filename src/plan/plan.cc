#include "plan/plan.h"

#include "common/str_util.h"

namespace starshare {

const char* JoinMethodName(JoinMethod method) {
  switch (method) {
    case JoinMethod::kHashScan:
      return "hash-scan";
    case JoinMethod::kIndexProbe:
      return "index-probe";
  }
  return "?";
}

bool ClassPlan::HasHashMember() const {
  for (const auto& m : members) {
    if (m.method == JoinMethod::kHashScan) return true;
  }
  return false;
}

bool ClassPlan::HasIndexMember() const {
  for (const auto& m : members) {
    if (m.method == JoinMethod::kIndexProbe) return true;
  }
  return false;
}

double ClassPlan::EstMs() const {
  double total = est_shared_io_ms + est_shared_cpu_ms;
  for (const auto& m : members) total += m.EstMs();
  return total;
}

double GlobalPlan::EstMs() const {
  double total = 0;
  for (const auto& c : classes) total += c.EstMs();
  return total;
}

size_t GlobalPlan::NumQueries() const {
  size_t n = 0;
  for (const auto& c : classes) n += c.members.size();
  return n;
}

std::optional<size_t> GlobalPlan::ClassOf(int query_id) const {
  for (size_t i = 0; i < classes.size(); ++i) {
    for (const auto& m : classes[i].members) {
      if (m.query->id() == query_id) return i;
    }
  }
  return std::nullopt;
}

std::string GlobalPlan::Explain(const StarSchema& schema) const {
  std::string out;
  for (const auto& cls : classes) {
    out += StrFormat(
        "Class %s (%s rows): shared io %.3fms, shared cpu %.3fms\n",
        cls.base->name().c_str(),
        WithCommas(cls.base->table().num_rows()).c_str(),
        cls.est_shared_io_ms, cls.est_shared_cpu_ms);
    for (const auto& m : cls.members) {
      out += StrFormat(
          "  Q%d %s => %s [%s]  nonshared cpu %.3fms io %.3fms\n",
          m.query->id(), m.query->target().ToString(schema).c_str(),
          cls.base->name().c_str(), JoinMethodName(m.method),
          m.est_nonshared_cpu_ms, m.est_nonshared_io_ms);
    }
  }
  out += StrFormat("Estimated total: %.3fms\n", EstMs());
  return out;
}

}  // namespace starshare
