// The paper's experimental setup (§7.2–§7.3), shared by the benchmark
// harness, the integration tests and the examples:
//   * the 4-dimension test schema (A, B, C with 45/9/3-member hierarchies,
//     D with 1400/35/7),
//   * the six materialized group-bys of Table 1 (ABCD = the base data),
//   * bitmap join indexes on the A'B'C'D view (the view the index-join
//     tests read),
//   * MDX Queries 1–9 exactly as §7.3, with FILTER(D.DD1) on each.
//
// Member ordinals inside a few CHILDREN chains are adjusted to be
// hierarchy-consistent (the OCR of §7.3 garbles some: e.g. Query 7's
// "A''.A3.CHILDREN.AA2" names a child that does not belong to A3; we use
// AA7). Selectivity classes are preserved: Queries 1–4 are not selective,
// Queries 5–8 are selective, Query 9 is not selective.

#ifndef STARSHARE_CORE_PAPER_WORKLOAD_H_
#define STARSHARE_CORE_PAPER_WORKLOAD_H_

#include <string>
#include <vector>

#include "core/engine.h"

namespace starshare {

class PaperWorkload {
 public:
  static constexpr int kNumQueries = 9;

  // MDX text of paper query i (1-based, 1..9).
  static const char* QueryMdx(int i);

  // The non-base materialized group-bys of Table 1 (spec syntax).
  static std::vector<std::string> ViewSpecs();

  // The view carrying bitmap join indexes, and the indexed dimensions.
  static const char* IndexedViewSpec() { return "A'B'C'D"; }
  static std::vector<std::string> IndexedDims() {
    return {"A", "B", "C", "D"};
  }

  // Loads `rows` fact tuples, materializes every Table 1 view and builds
  // the indexes. The engine must be freshly constructed with
  // StarSchema::PaperTestSchema().
  static void Setup(Engine& engine, uint64_t rows,
                    uint64_t seed = 19980601);

  // Expands paper query i; the expansion is always a single component
  // query, returned with id = i.
  static DimensionalQuery MakeQuery(const Engine& engine, int i);

  // Queries for a test's MDX expression, e.g. {1, 2, 3} for Test 4.
  static std::vector<DimensionalQuery> MakeQueries(
      const Engine& engine, const std::vector<int>& ids);

  // Scale selection for benches: $STARSHARE_ROWS or `fallback`.
  static uint64_t RowsFromEnv(uint64_t fallback = 400'000);
};

}  // namespace starshare

#endif  // STARSHARE_CORE_PAPER_WORKLOAD_H_
