#include "core/engine.h"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string_view>
#include <utility>

#include "opt/local_optimizer.h"
#include "common/str_util.h"
#include "exec/derived_table.h"
#include "obs/metrics.h"
#include "server/query_server.h"
#include "storage/table_io.h"

namespace starshare {

bool DefaultCompressedPages() {
  const char* env = std::getenv("STARSHARE_UNCOMPRESSED");
  return env == nullptr || *env == '\0' || std::string_view(env) == "0";
}

Engine::~Engine() {
  // Joins the server's controller thread before any member it references
  // (executor_, disk_, result_cache_, memory_budget_) is destroyed.
  server_.reset();
}

QueryServer& Engine::server() {
  std::lock_guard<std::mutex> lock(server_mu_);
  if (server_ == nullptr) {
    server_ = std::make_unique<QueryServer>(*this, config_.server,
                                            result_cache_.get(),
                                            &memory_budget_, &executor_);
  }
  return *server_;
}

Session Engine::OpenSession() { return server().OpenSession(); }

QueryHandle Engine::Submit(const DimensionalQuery& query) {
  return server().Submit(/*session_id=*/0, query);
}

void Engine::StopServer() {
  std::lock_guard<std::mutex> lock(server_mu_);
  if (server_ != nullptr) server_->Stop();
}

Engine::Engine(StarSchema schema, EngineConfig config)
    : schema_(std::move(schema)),
      config_(config),
      disk_(config.disk_timings),
      cost_(schema_, config.disk_timings, config.cpu_costs),
      memory_budget_(config.memory_budget_bytes),
      builder_(schema_),
      executor_(schema_, disk_) {
  if (config_.buffer_pool_pages > 0) {
    pool_ = std::make_unique<BufferPool>(config_.buffer_pool_pages);
    disk_.AttachBufferPool(pool_.get());
  }
  if (config_.result_cache_entries > 0) {
    result_cache_ =
        std::make_unique<ResultCache>(config_.result_cache_entries);
  }
  builder_.set_batch_config(config_.batch);
  set_parallelism(config_.parallelism);
  // Compressed layout: the catalog normalizes every registered table
  // (generator output, view builds, cube loads, attached fact tables), the
  // builder packs before charging view-write I/O, and spill runs reuse the
  // bit-packed key encoding.
  catalog_.set_compressed_default(config_.compressed_pages);
  builder_.set_compressed_pages(config_.compressed_pages);
  SpillConfig spill{config_.scratch_dir};
  spill.packed_keys = config_.compressed_pages;
  executor_.set_memory_budget(&memory_budget_, spill);
  builder_.set_memory_budget(&memory_budget_, spill);
}

void Engine::set_memory_budget_bytes(uint64_t bytes) {
  config_.memory_budget_bytes = bytes;
  memory_budget_ = MemoryBudget(bytes);
}

void Engine::set_batch_config(const BatchConfig& batch) {
  config_.batch = batch;
  builder_.set_batch_config(batch);
  set_parallelism(parallelism_);  // rebuild the policy with the new style
}

void Engine::set_parallelism(size_t parallelism) {
  if (parallelism == 0) parallelism = ThreadPool::HardwareThreads();
  parallelism_ = parallelism;
  ParallelPolicy policy;
  policy.morsel_rows = config_.morsel_rows;
  policy.batch = config_.batch;
  if (parallelism > 1) {
    if (thread_pool_ == nullptr ||
        thread_pool_->num_threads() != parallelism) {
      thread_pool_.reset();  // join the old workers before respawning
      thread_pool_ = std::make_unique<ThreadPool>(parallelism);
    }
    policy.pool = thread_pool_.get();
    policy.parallelism = parallelism;
  } else {
    thread_pool_.reset();
  }
  executor_.set_parallel_policy(policy);
}

MaterializedView* Engine::LoadFactTable(const DataGeneratorConfig& config) {
  DataGenerator generator(schema_, config);
  const GroupBySpec base = GroupBySpec::Base(schema_);
  Result<MaterializedView*> view =
      AttachFactTable(generator.Generate(base.ToString(schema_)));
  SS_CHECK_MSG(view.ok(), "%s", view.status().ToString().c_str());
  return view.value();
}

Result<MaterializedView*> Engine::AttachFactTable(
    std::unique_ptr<Table> table) {
  if (base_view_ != nullptr) {
    return Status::FailedPrecondition("fact table already loaded");
  }
  if (table->num_key_columns() != schema_.num_dims()) {
    return Status::InvalidArgument(
        "fact table must have one key column per dimension");
  }
  Result<Table*> registered = catalog_.Register(std::move(table));
  if (!registered.ok()) return registered.status();
  auto view = std::make_unique<MaterializedView>(
      schema_, GroupBySpec::Base(schema_), registered.value());
  view->ComputeStats(schema_);
  base_view_ = views_.Add(std::move(view));
  return base_view_;
}

Status Engine::AppendFacts(const DataGeneratorConfig& config) {
  DataGenerator generator(schema_, config);
  return AppendFactTable(generator.Generate("delta"));
}

Status Engine::AppendFactTable(std::unique_ptr<Table> delta) {
  if (config_.trace && obs::Tracer::Current() == nullptr) {
    return Traced("engine.append_facts",
                  [&] { return AppendFactTable(std::move(delta)); });
  }
  if (base_view_ == nullptr) {
    return Status::FailedPrecondition("load the fact table first");
  }
  if (delta == nullptr || delta->num_key_columns() != schema_.num_dims()) {
    return Status::InvalidArgument(
        "delta must have one key column per dimension");
  }
  if (delta->num_measures() != schema_.num_measures()) {
    return Status::InvalidArgument(
        "delta must carry one column per schema measure");
  }
  for (size_t d = 0; d < schema_.num_dims(); ++d) {
    const int32_t card = static_cast<int32_t>(schema_.dim(d).cardinality(0));
    const KeyColumn& col = delta->key_column(d);
    bool in_range = true;
    col.ForEach(0, col.size(), [&](uint64_t, int32_t key) {
      if (key < 0 || key >= card) in_range = false;
    });
    if (!in_range) {
      return Status::InvalidArgument("delta key out of range on dimension " +
                                     schema_.dim(d).dim_name());
    }
  }
  const MaterializedView delta_view(schema_, GroupBySpec::Base(schema_),
                                    delta.get());

  // 1. Append to the base table (new pages written).
  Table& base = base_view_->table();
  const uint64_t old_pages = base.num_pages();
  std::vector<int32_t> key(schema_.num_dims());
  std::vector<double> values(schema_.num_measures());
  for (uint64_t r = 0; r < delta->num_rows(); ++r) {
    for (size_t d = 0; d < schema_.num_dims(); ++d) {
      key[d] = delta->key(d, r);
    }
    for (size_t m = 0; m < values.size(); ++m) {
      values[m] = delta->measure(r, m);
    }
    base.AppendRowM(key.data(), values.data());
  }
  disk_.WritePages(base.num_pages() - old_pages);
  const std::vector<size_t> base_indexed = base_view_->IndexedDims();
  base_view_->ReplaceTable(schema_, &base);  // drops stale indexes/stats
  base_view_->ComputeStats(schema_);
  for (size_t d : base_indexed) base_view_->BuildIndex(schema_, d, disk_);

  if (result_cache_ != nullptr) result_cache_->Clear();  // data changed

  // 2. Refresh every view from (old view + delta): never rescans the base.
  for (const auto& view : views_.all()) {
    if (view.get() == base_view_) continue;
    std::unique_ptr<Table> refreshed =
        builder_.Refresh(*view, delta_view, disk_);
    Result<Table*> registered = catalog_.Replace(std::move(refreshed));
    if (!registered.ok()) return registered.status();
    const std::vector<size_t> indexed = view->IndexedDims();
    view->ReplaceTable(schema_, registered.value());
    view->ComputeStats(schema_);
    for (size_t d : indexed) view->BuildIndex(schema_, d, disk_);
  }
  return Status::Ok();
}

Result<MaterializedView*> Engine::MaterializeView(
    const std::string& spec_text, bool clustered) {
  Result<GroupBySpec> spec = GroupBySpec::Parse(spec_text, schema_);
  if (!spec.ok()) return spec.status();
  return MaterializeView(spec.value(), clustered);
}

Result<MaterializedView*> Engine::MaterializeView(const GroupBySpec& spec,
                                                  bool clustered) {
  if (config_.trace && obs::Tracer::Current() == nullptr) {
    return Traced("engine.materialize",
                  [&] { return MaterializeView(spec, clustered); });
  }
  if (base_view_ == nullptr) {
    return Status::FailedPrecondition("load the fact table first");
  }
  if (views_.Find(spec) != nullptr) {
    return Status::InvalidArgument("view already materialized: " +
                                   spec.ToString(schema_));
  }
  // Aggregate from the smallest existing view able to produce it.
  const auto sources = views_.CandidatesFor(spec);
  if (sources.empty()) {
    return Status::InvalidArgument("no source can materialize " +
                                   spec.ToString(schema_));
  }
  Result<Table*> table = catalog_.Register(builder_.Build(
      *sources.front(), spec, disk_, /*name=*/"", clustered));
  if (!table.ok()) return table.status();
  auto view = std::make_unique<MaterializedView>(schema_, spec, table.value());
  view->set_clustered(clustered);
  view->ComputeStats(schema_);
  return views_.Add(std::move(view));
}

Result<std::vector<MaterializedView*>> Engine::MaterializeViews(
    const std::vector<std::string>& spec_texts, bool clustered) {
  if (config_.trace && obs::Tracer::Current() == nullptr) {
    return Traced("engine.materialize",
                  [&] { return MaterializeViews(spec_texts, clustered); });
  }
  if (base_view_ == nullptr) {
    return Status::FailedPrecondition("load the fact table first");
  }
  if (spec_texts.empty()) {
    return Status::InvalidArgument("no group-bys to materialize");
  }
  std::vector<GroupBySpec> specs;
  std::vector<int> combined(schema_.num_dims(),
                            std::numeric_limits<int>::max());
  for (const std::string& text : spec_texts) {
    Result<GroupBySpec> spec = GroupBySpec::Parse(text, schema_);
    if (!spec.ok()) return spec.status();
    if (views_.Find(spec.value()) != nullptr) {
      return Status::InvalidArgument("view already materialized: " + text);
    }
    for (size_t d = 0; d < schema_.num_dims(); ++d) {
      combined[d] = std::min(combined[d], spec.value().level(d));
    }
    specs.push_back(std::move(spec.value()));
  }
  // Smallest existing view able to produce every target.
  const auto sources = views_.CandidatesFor(GroupBySpec(std::move(combined)));
  if (sources.empty()) {
    return Status::InvalidArgument(
        "no single source can materialize all requested group-bys");
  }
  std::vector<std::unique_ptr<Table>> tables = builder_.BuildManyParallel(
      *sources.front(), specs, disk_, executor_.parallel_policy(), clustered);
  std::vector<MaterializedView*> out;
  out.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    Result<Table*> registered = catalog_.Register(std::move(tables[i]));
    if (!registered.ok()) return registered.status();
    auto view = std::make_unique<MaterializedView>(schema_, specs[i],
                                                   registered.value());
    view->set_clustered(clustered);
    view->ComputeStats(schema_);
    out.push_back(views_.Add(std::move(view)));
  }
  return out;
}

Status Engine::BuildIndexes(const std::string& spec_text,
                            const std::vector<std::string>& dims) {
  Result<GroupBySpec> spec = GroupBySpec::Parse(spec_text, schema_);
  if (!spec.ok()) return spec.status();
  MaterializedView* view = views_.Find(spec.value());
  if (view == nullptr) {
    return Status::NotFound("view not materialized: " + spec_text);
  }
  for (const std::string& name : dims) {
    Result<size_t> dim = schema_.DimIndex(name);
    if (!dim.ok()) return dim.status();
    if (view->KeyColForDim(dim.value()) == SIZE_MAX) {
      return Status::InvalidArgument("dimension " + name +
                                     " is aggregated away in " + spec_text);
    }
    view->BuildIndex(schema_, dim.value(), disk_);
  }
  return Status::Ok();
}

Status Engine::DropView(const std::string& spec_text) {
  Result<GroupBySpec> spec = GroupBySpec::Parse(spec_text, schema_);
  if (!spec.ok()) return spec.status();
  if (spec.value() == GroupBySpec::Base(schema_)) {
    return Status::InvalidArgument("cannot drop the base table");
  }
  MaterializedView* view = views_.Find(spec.value());
  if (view == nullptr) {
    return Status::NotFound("view not materialized: " + spec_text);
  }
  const std::string table_name = view->name();
  SS_CHECK(views_.Remove(spec.value()));
  return catalog_.Drop(table_name);
}

Result<std::vector<DimensionalQuery>> Engine::ParseMdx(
    const std::string& text, int first_id) const {
  return mdx::ParseAndExpandMdx(text, schema_, first_id);
}

Result<CubeQuery> Engine::ParseCube(const std::string& text) const {
  return mdx::ParseAndExpandCube(text, schema_);
}

GlobalPlan Engine::Optimize(const std::vector<DimensionalQuery>& queries,
                            OptimizerKind kind) const {
  std::vector<const DimensionalQuery*> ptrs;
  ptrs.reserve(queries.size());
  for (const auto& q : queries) ptrs.push_back(&q);
  return Optimize(ptrs, kind);
}

GlobalPlan Engine::Optimize(
    const std::vector<const DimensionalQuery*>& queries,
    OptimizerKind kind) const {
  SS_CHECK_MSG(base_view_ != nullptr, "load the fact table first");
  SS_CHECK_MSG(!queries.empty(), "nothing to optimize");
  return MakeOptimizer(kind, schema_, views_, cost_)->Plan(queries);
}

std::vector<ExecutedQuery> Engine::Execute(const GlobalPlan& plan) {
  if (config_.trace && obs::Tracer::Current() == nullptr) {
    return std::move(ExecuteTraced(plan).results);
  }
  return RunPlanWithFallback(plan);
}

TracedExecution Engine::ExecuteTraced(const GlobalPlan& plan) {
  TracedExecution out;
  out.results = Traced("engine.execute",
                       [&] { return RunPlanWithFallback(plan); });
  out.trace = last_trace_;
  return out;
}

TracedExecution Engine::ExecuteTraced(
    const std::vector<DimensionalQuery>& queries, OptimizerKind kind) {
  TracedExecution out;
  out.results = Traced("engine.session", [&] {
    GlobalPlan plan;
    {
      obs::ScopedSpan opt_span("engine.optimize", OptimizerKindName(kind));
      plan = Optimize(queries, kind);
      opt_span.AddCounter("classes", plan.classes.size());
      opt_span.AddCounter("queries", plan.NumQueries());
      opt_span.SetEstMs(plan.EstMs());
    }
    obs::ScopedSpan exec_span("engine.execute");
    return RunPlanWithFallback(plan);
  });
  out.trace = last_trace_;
  return out;
}

void Engine::RecoverQuery(ExecutedQuery& entry, PhysicalPlan& phys) {
  static obs::Counter& fallbacks = obs::Metrics().counter("engine.fallbacks");
  fallbacks.Add();
  const size_t fb =
      phys.AddNode(PhysOpKind::kFallback, "", entry.query->id());
  NodeExec span(phys, fb, disk_);
  span.SetStatus(entry.status);  // the planned evaluation's failure

  ExecutionReport::Event event;
  event.query_id = entry.query->id();
  event.error = entry.status;
  // Re-plan as a single-query hash star join against the fact table: the
  // base answers every query (any aggregate, any predicate), needs no
  // index, and shares no state with whatever just failed. Its chain lowers
  // under the Fallback node, so the retry is visible plan structure.
  if (base_view_ != nullptr) {
    Result<QueryResult> fallback = executor_.ExecuteSingle(
        *entry.query, *base_view_, JoinMethod::kHashScan, &phys, fb);
    if (fallback.ok()) {
      entry.result = std::move(fallback.value());
      entry.status = Status::Ok();
      entry.degraded = true;
      event.recovered = true;
      span.AddRows(entry.result.num_rows());
      span.AddCounter("recovered", 1);
    } else {
      event.fallback_error = fallback.status();
      entry.status = Status(
          fallback.status().code(),
          event.error.message() +
              "; fact-table fallback also failed: " +
              fallback.status().message());
    }
  }
  report_.events.push_back(std::move(event));
}

std::vector<ExecutedQuery> Engine::RunPlanWithFallbackInto(
    const GlobalPlan& plan, PhysicalPlan& phys) {
  static obs::Counter& executions = obs::Metrics().counter("engine.executions");
  executions.Add();
  report_ = ExecutionReport();
  std::vector<ExecutedQuery> out = executor_.ExecutePlan(plan, &phys);
  for (ExecutedQuery& entry : out) {
    if (!entry.status.ok()) RecoverQuery(entry, phys);
  }
  return out;
}

std::vector<ExecutedQuery> Engine::RunPlanWithFallback(
    const GlobalPlan& plan) {
  PhysicalPlan phys;
  std::vector<ExecutedQuery> out = RunPlanWithFallbackInto(plan, phys);
  last_physical_plan_ = std::move(phys);
  return out;
}

Result<CubeExecution> Engine::ExecuteCube(const CubeQuery& cube,
                                          OptimizerKind kind, int first_id) {
  if (config_.trace && obs::Tracer::Current() == nullptr) {
    return Traced("engine.execute_cube",
                  [&] { return ExecuteCube(cube, kind, first_id); });
  }
  if (base_view_ == nullptr) {
    return Status::FailedPrecondition("load the fact table first");
  }
  static obs::Counter& cubes =
      obs::Metrics().counter("engine.cube_executions");
  cubes.Add();

  Result<LatticePlan> planned =
      PlanLattice(cube, schema_, views_, cost_, first_id);
  if (!planned.ok()) return planned.status();

  CubeExecution out;
  out.lattice = std::move(planned.value());
  std::vector<LatticeStep>& steps = out.lattice.steps;
  out.results.resize(steps.size());

  report_ = ExecutionReport();
  PhysicalPlan phys;

  // 1. The base levels run as one ordinary related-query batch: whatever
  //    sharing `kind` finds applies unchanged, and the fact (or view) pages
  //    are read here — once for the whole lattice.
  GlobalPlan plan;
  {
    obs::ScopedSpan opt_span("engine.optimize", OptimizerKindName(kind));
    plan = Optimize(out.lattice.BaseQueries(), kind);
    opt_span.AddCounter("classes", plan.classes.size());
    opt_span.AddCounter("queries", plan.NumQueries());
    opt_span.SetEstMs(plan.EstMs());
  }
  std::vector<ExecutedQuery> base_results = executor_.ExecutePlan(plan, &phys);
  for (ExecutedQuery& entry : base_results) {
    if (!entry.status.ok()) RecoverQuery(entry, phys);
  }
  for (ExecutedQuery& entry : base_results) {
    const size_t step = static_cast<size_t>(entry.query->id() - first_id);
    SS_CHECK(step < steps.size());
    out.results[step] = std::move(entry);
  }

  // Producer map: for every finished step, the physical node whose output a
  // child rollup reads — the member's class-chunk Aggregate root, or the
  // Fallback that recovered it (fallback roots come later, so they win).
  std::vector<size_t> producer(steps.size(), kNoPhysNode);
  for (const size_t root : phys.roots()) {
    const PhysicalNode& node = phys.node(root);
    const std::vector<PhysicalMemberStat>* stats = nullptr;
    if (node.kind == PhysOpKind::kAggregate) {
      if (!node.member_stats.empty()) {
        stats = &node.member_stats;
      } else {
        for (const size_t child : node.children) {
          if (phys.node(child).kind == PhysOpKind::kRoute &&
              !phys.node(child).member_stats.empty()) {
            stats = &phys.node(child).member_stats;
            break;
          }
        }
      }
    }
    if (stats != nullptr) {
      for (const PhysicalMemberStat& stat : *stats) {
        const size_t step = static_cast<size_t>(stat.query_id - first_id);
        if (step < steps.size()) producer[step] = root;
      }
    } else if (node.kind == PhysOpKind::kFallback &&
               node.query_id >= first_id) {
      const size_t step = static_cast<size_t>(node.query_id - first_id);
      if (step < steps.size()) producer[step] = root;
    }
  }

  // 2. Rollup levels, grouped by scheduled parent in step order: parents
  //    always precede their children and rollups cascade, so by induction
  //    every parent's result is finished when its group runs. Each group
  //    re-batches the parent's groups through the derived pipeline — zero
  //    fact I/O by construction (DerivedSourceOp charges nothing).
  for (size_t p = 0; p < steps.size(); ++p) {
    std::vector<size_t> children;
    for (size_t c = p + 1; c < steps.size(); ++c) {
      if (steps[c].parent == p) children.push_back(c);
    }
    if (children.empty()) continue;

    if (!out.results[p].ok()) {
      // The parent produced no groups (even its fallback failed); each
      // child degrades through the fact-table fallback on its own.
      for (const size_t c : children) {
        ExecutedQuery& entry = out.results[c];
        entry.query = &steps[c].query;
        entry.status = Status::FailedPrecondition(
            StrFormat("rollup parent q%d failed", steps[p].query.id()));
        RecoverQuery(entry, phys);
        producer[c] = phys.roots().back();
      }
      continue;
    }

    std::unique_ptr<Table> derived = MakeDerivedTable(
        schema_, steps[p].query.target(), out.results[p].result,
        "rollup(" + steps[p].query.target().ToString(schema_) + ")");
    MaterializedView derived_view(schema_, steps[p].query.target(),
                                  derived.get());
    derived_view.ComputeStats(schema_);

    std::vector<DimensionalQuery> rollup_queries;
    rollup_queries.reserve(children.size());
    std::vector<double> member_est;
    member_est.reserve(children.size());
    double class_est = 0.0;
    for (const size_t c : children) {
      rollup_queries.push_back(RollupQueryFor(steps[c].query));
      member_est.push_back(steps[c].est_rollup_ms);
      if (steps[c].est_rollup_ms > 0.0) class_est += steps[c].est_rollup_ms;
    }
    std::vector<const DimensionalQuery*> rollup_ptrs;
    rollup_ptrs.reserve(children.size());
    for (const DimensionalQuery& q : rollup_queries) rollup_ptrs.push_back(&q);

    std::vector<size_t> agg_nodes;
    std::vector<ExecutedQuery> rolled = executor_.ExecuteDerivedClass(
        rollup_ptrs, derived_view, class_est, &member_est, &phys,
        producer[p], &agg_nodes);
    SS_CHECK(rolled.size() == children.size());
    for (size_t i = 0; i < children.size(); ++i) {
      const size_t c = children[i];
      ExecutedQuery& entry = out.results[c];
      entry.query = &steps[c].query;
      if (rolled[i].ok()) {
        entry.result = std::move(rolled[i].result);
        // COUNT rolls up as a SUM of the parent's per-group counts;
        // relabel the result as what the user asked for.
        entry.result.set_agg(steps[c].query.agg());
        entry.status = Status::Ok();
        producer[c] = agg_nodes[i];
      } else {
        entry.status = std::move(rolled[i].status);
        RecoverQuery(entry, phys);
        producer[c] = phys.roots().back();
      }
    }
  }

  last_physical_plan_ = std::move(phys);
  return out;
}

std::vector<ExecutedQuery> Engine::ExecuteNaive(
    const std::vector<DimensionalQuery>& queries) {
  if (config_.trace && obs::Tracer::Current() == nullptr) {
    return Traced("engine.execute_naive",
                  [&] { return ExecuteNaive(queries); });
  }
  report_ = ExecutionReport();
  PhysicalPlan phys;
  std::vector<ExecutedQuery> out;
  out.reserve(queries.size());
  for (const DimensionalQuery& q : queries) {
    std::vector<MaterializedView*> candidates;
    if (q.agg() != AggOp::kSum) {
      candidates = {base_view_};
    } else {
      candidates = views_.CandidatesFor(q.RequiredSpec(schema_));
    }
    const LocalChoice choice = BestLocalPlan(q, candidates, cost_);
    Result<QueryResult> r =
        executor_.ExecuteSingle(q, *choice.view, choice.method, &phys);
    ExecutedQuery entry;
    entry.query = &q;
    if (r.ok()) {
      entry.result = std::move(r.value());
    } else {
      entry.status = r.status();
      RecoverQuery(entry, phys);
    }
    out.push_back(std::move(entry));
  }
  last_physical_plan_ = std::move(phys);
  return out;
}

std::vector<ExecutedQuery> Engine::ExecuteUnshared(const GlobalPlan& plan) {
  PhysicalPlan phys;
  std::vector<ExecutedQuery> out = executor_.ExecutePlanUnshared(plan, &phys);
  last_physical_plan_ = std::move(phys);
  return out;
}

std::vector<ExecutedQuery> Engine::ExecuteCached(
    const std::vector<DimensionalQuery>& queries, OptimizerKind kind) {
  SS_CHECK_MSG(result_cache_ != nullptr,
               "result cache disabled; set result_cache_entries");
  if (config_.trace && obs::Tracer::Current() == nullptr) {
    return Traced("engine.execute_cached",
                  [&] { return ExecuteCached(queries, kind); });
  }
  report_ = ExecutionReport();
  PhysicalPlan phys;
  std::vector<ExecutedQuery> out(queries.size());
  std::vector<const DimensionalQuery*> misses;
  std::vector<size_t> miss_slots;
  std::vector<std::string> miss_keys;
  const size_t cache_node = phys.AddNode(PhysOpKind::kCacheLookup);
  {
    NodeExec lookup(phys, cache_node, disk_);
    for (size_t i = 0; i < queries.size(); ++i) {
      const std::string key = ResultCache::KeyOf(queries[i], schema_);
      const QueryResult* cached = result_cache_->Lookup(key);
      if (cached != nullptr) {
        out[i].query = &queries[i];
        out[i].result = *cached;
      } else {
        misses.push_back(&queries[i]);
        miss_slots.push_back(i);
        miss_keys.push_back(key);
      }
    }
    lookup.AddCounter("hits", queries.size() - misses.size());
    lookup.AddCounter("misses", misses.size());
  }
  if (!misses.empty()) {
    const GlobalPlan plan = Optimize(misses, kind);
    std::vector<ExecutedQuery> fresh = RunPlanWithFallbackInto(plan, phys);
    // The miss-execution chains ran as their own roots; hang them under the
    // lookup node so the stored tree reads as one cached run.
    phys.AdoptRootsAsChildren(cache_node, 1);
    // ExecutePlan returns by ascending query id; map back to input slots.
    for (ExecutedQuery& r : fresh) {
      for (size_t m = 0; m < misses.size(); ++m) {
        if (misses[m] == r.query) {
          // Never cache a failed (empty) result; a later call retries it.
          if (r.status.ok()) result_cache_->Insert(miss_keys[m], r.result);
          out[miss_slots[m]] = std::move(r);
          break;
        }
      }
    }
  }
  last_physical_plan_ = std::move(phys);
  return out;
}

Status Engine::SaveCube(const std::string& directory) const {
  if (base_view_ == nullptr) {
    return Status::FailedPrecondition("nothing to save: no fact table");
  }
  ::mkdir(directory.c_str(), 0755);  // ok if it already exists

  // Base first so LoadCube can attach it before the views.
  std::vector<const MaterializedView*> ordered = {base_view_};
  for (const auto& view : views_.all()) {
    if (view.get() != base_view_) ordered.push_back(view.get());
  }

  std::string manifest;
  for (size_t i = 0; i < ordered.size(); ++i) {
    const std::string filename = StrFormat("view_%zu.sstb", i);
    SS_RETURN_IF_ERROR(
        WriteTableFile(ordered[i]->table(), directory + "/" + filename));
    manifest += StrFormat("%s\t%d\t%s\n",
                          ordered[i]->spec().ToString(schema_).c_str(),
                          ordered[i]->clustered() ? 1 : 0, filename.c_str());
  }

  FILE* f = std::fopen((directory + "/cube.manifest").c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot write manifest in " + directory);
  }
  const size_t written = std::fwrite(manifest.data(), 1, manifest.size(), f);
  std::fclose(f);
  if (written != manifest.size()) {
    return Status::Internal("short manifest write in " + directory);
  }
  return Status::Ok();
}

Status Engine::LoadCube(const std::string& directory,
                        std::vector<std::string>* skipped_views) {
  if (base_view_ != nullptr) {
    return Status::FailedPrecondition("engine already has a fact table");
  }
  std::ifstream manifest(directory + "/cube.manifest");
  if (!manifest.is_open()) {
    return Status::NotFound("no cube.manifest in " + directory);
  }
  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    const size_t tab1 = line.find('\t');
    const size_t tab2 = line.find('\t', tab1 + 1);
    if (tab1 == std::string::npos || tab2 == std::string::npos) {
      return Status::InvalidArgument("malformed manifest line: " + line);
    }
    const std::string spec_text = line.substr(0, tab1);
    const bool clustered = line.substr(tab1 + 1, tab2 - tab1 - 1) == "1";
    const std::string filename = line.substr(tab2 + 1);

    Result<GroupBySpec> spec = GroupBySpec::Parse(spec_text, schema_);
    if (!spec.ok()) return spec.status();
    const bool is_base = spec.value() == GroupBySpec::Base(schema_);
    Result<std::unique_ptr<Table>> table =
        ReadTableFile(directory + "/" + filename);
    if (!table.ok()) {
      // A view is derived data: when the caller opts in, skip it (it can be
      // re-materialized from the base) rather than failing the whole cube.
      // The base table itself is irreplaceable and always a hard error.
      if (!is_base && skipped_views != nullptr) {
        skipped_views->push_back(spec_text);
        continue;
      }
      return table.status();
    }

    if (is_base) {
      Result<MaterializedView*> base =
          AttachFactTable(std::move(table.value()));
      if (!base.ok()) return base.status();
    } else {
      if (base_view_ == nullptr) {
        return Status::InvalidArgument(
            "manifest must list the base table first");
      }
      Result<Table*> registered =
          catalog_.Register(std::move(table.value()));
      if (!registered.ok()) return registered.status();
      auto view = std::make_unique<MaterializedView>(schema_, spec.value(),
                                                     registered.value());
      view->set_clustered(clustered);
      view->ComputeStats(schema_);
      views_.Add(std::move(view));
    }
  }
  if (base_view_ == nullptr) {
    return Status::InvalidArgument("manifest lists no base table");
  }
  return Status::Ok();
}

IoStats Engine::ConsumeIoStats() {
  IoStats stats = disk_.stats();
  disk_.ResetStats();
  return stats;
}

void Engine::FlushCaches() {
  if (pool_ != nullptr) pool_->Clear();
}

}  // namespace starshare
