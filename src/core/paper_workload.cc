#include "core/paper_workload.h"

#include <cstdlib>

namespace starshare {
namespace {

// §7.3, with FILTER(D.DD1) on every query. One string per query, 1-based.
const char* const kQueryMdx[PaperWorkload::kNumQueries + 1] = {
    "",
    // Query 1: group-by A'B''C''; not selective.
    "{A''.A1.CHILDREN} on COLUMNS {B''.B1} on ROWS {C''.C1} on PAGES "
    "CONTEXT ABCD FILTER (D.DD1);",
    // Query 2: group-by A''B'C''; not selective (A'' covers its level).
    "{A''.A1, A''.A2, A''.A3} on COLUMNS {B''.B2.CHILDREN} on ROWS "
    "{C''.C2} on PAGES CONTEXT ABCD FILTER (D.DD1);",
    // Query 3: group-by A''B''C''; not selective.
    "{A''.A2} on COLUMNS {B''.B2} on ROWS {C''.C1, C''.C3} on PAGES "
    "CONTEXT ABCD FILTER (D.DD1);",
    // Query 4: group-by A''B''C''; not selective (C'' covers its level).
    "{A''.A3, A''.A2} on COLUMNS {B''.B3} on ROWS "
    "{C''.C1, C''.C2, C''.C3} on PAGES CONTEXT ABCD FILTER (D.DD1);",
    // Query 5: group-by A'B''C''; selective on A.
    "{A''.A1.CHILDREN.AA2} on COLUMNS {B''.B1} on ROWS {C''.C3} on PAGES "
    "CONTEXT ABCD FILTER (D.DD1);",
    // Query 6: group-by A'B'C'; selective on A, B and C.
    "{A''.A2.CHILDREN.AA5} on COLUMNS {B''.B1.CHILDREN.BB3} on ROWS "
    "{C''.C3.CHILDREN.CC8} on PAGES CONTEXT ABCD FILTER (D.DD1);",
    // Query 7: group-by A'B'C'; selective on A, B and C.
    "{A''.A3.CHILDREN.AA7} on COLUMNS {B''.B2.CHILDREN.BB5} on ROWS "
    "{C''.C1.CHILDREN.CC1} on PAGES CONTEXT ABCD FILTER (D.DD1);",
    // Query 8: group-by A'B'C''; selective on A and B.
    "{A''.A1.CHILDREN.AA2} on COLUMNS {B''.B2.CHILDREN.BB4} on ROWS "
    "{C''.C1} on PAGES CONTEXT ABCD FILTER (D.DD1);",
    // Query 9: group-by A'B''C'; not selective.
    "{A''.A1.CHILDREN} on COLUMNS {B''.B2, B''.B3} on ROWS "
    "{C''.C1.CHILDREN} on PAGES CONTEXT ABCD FILTER (D.DD1);",
};

}  // namespace

const char* PaperWorkload::QueryMdx(int i) {
  SS_CHECK(i >= 1 && i <= kNumQueries);
  return kQueryMdx[i];
}

std::vector<std::string> PaperWorkload::ViewSpecs() {
  return {"A'B'C'D", "A'B''C''D", "A''B'C'D", "A''B''C''D", "AB'C'D"};
}

void PaperWorkload::Setup(Engine& engine, uint64_t rows, uint64_t seed) {
  DataGeneratorConfig config;
  config.num_rows = rows;
  config.seed = seed;
  engine.LoadFactTable(config);
  // All Table 1 views in one shared scan of the base (batch cube build).
  Result<std::vector<MaterializedView*>> views =
      engine.MaterializeViews(ViewSpecs());
  SS_CHECK_MSG(views.ok(), "%s", views.status().ToString().c_str());
  const Status indexed = engine.BuildIndexes(IndexedViewSpec(), IndexedDims());
  SS_CHECK_MSG(indexed.ok(), "%s", indexed.ToString().c_str());
  // View/index construction I/O is setup, not query work.
  engine.ConsumeIoStats();
}

DimensionalQuery PaperWorkload::MakeQuery(const Engine& engine, int i) {
  Result<std::vector<DimensionalQuery>> queries =
      engine.ParseMdx(QueryMdx(i), /*first_id=*/i);
  SS_CHECK_MSG(queries.ok(), "query %d: %s", i,
               queries.status().ToString().c_str());
  SS_CHECK_MSG(queries.value().size() == 1,
               "paper query %d expanded to %zu component queries", i,
               queries.value().size());
  return std::move(queries.value()[0]);
}

std::vector<DimensionalQuery> PaperWorkload::MakeQueries(
    const Engine& engine, const std::vector<int>& ids) {
  std::vector<DimensionalQuery> out;
  out.reserve(ids.size());
  for (int i : ids) out.push_back(MakeQuery(engine, i));
  return out;
}

uint64_t PaperWorkload::RowsFromEnv(uint64_t fallback) {
  const char* env = std::getenv("STARSHARE_ROWS");
  if (env == nullptr || *env == '\0') return fallback;
  const long long value = std::atoll(env);
  return value > 0 ? static_cast<uint64_t>(value) : fallback;
}

}  // namespace starshare
