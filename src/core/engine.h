// Engine — StarShare's public API.
//
// Typical use (see examples/quickstart.cpp):
//
//   StarSchema schema = StarSchema::PaperTestSchema();
//   Engine engine(std::move(schema));
//   engine.LoadFactTable({.num_rows = 500'000});
//   engine.MaterializeView("A'B'C'D");
//   engine.BuildIndexes("A'B'C'D", {"A", "B", "C"});
//   auto queries = engine.ParseMdx("{A''.A1.CHILDREN} on COLUMNS ... ");
//   GlobalPlan plan =
//       engine.Optimize(queries.value(), OptimizerKind::kGlobalGreedy);
//   auto results = engine.Execute(plan);
//
// The engine owns all storage (catalog), the materialized-view set, the
// disk model / buffer pool, and the cost model. Execution charges page
// touches to the disk model; ConsumeIoStats() reads and resets the counters
// so callers can attribute I/O to individual steps.

#ifndef STARSHARE_CORE_ENGINE_H_
#define STARSHARE_CORE_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "cube/lattice.h"
#include "cube/view_builder.h"
#include "cube/view_set.h"
#include "exec/executor.h"
#include "exec/result_cache.h"
#include "mdx/binder.h"
#include "obs/trace.h"
#include "opt/optimizer.h"
#include "parallel/thread_pool.h"
#include "plan/physical_plan.h"
#include "schema/data_generator.h"
#include "schema/star_schema.h"
#include "server/query_handle.h"
#include "server/server_config.h"
#include "server/session.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"

namespace starshare {

class QueryServer;

// Default for EngineConfig::compressed_pages: true unless the
// STARSHARE_UNCOMPRESSED environment variable is set to a non-empty,
// non-"0" value.
bool DefaultCompressedPages();

struct EngineConfig {
  DiskTimings disk_timings;
  CpuCosts cpu_costs;
  // 0 = run cold, as the paper does (it flushed all buffers before tests).
  uint64_t buffer_pool_pages = 0;
  // Entries in the query result cache (0 = disabled). The cache serves
  // repeated identical component queries without touching storage and is
  // invalidated whenever facts are appended.
  size_t result_cache_entries = 0;
  // Worker threads for shared-class execution and batch view builds.
  // 1 (the default) keeps everything on the calling thread — exactly the
  // pre-parallel engine, so the 1998 cost-model benchmarks are untouched.
  // Values > 1 spawn a ThreadPool; results and charged I/O stay
  // bit-identical to serial at any setting (see DESIGN.md "Parallel
  // execution model"). 0 means ThreadPool::HardwareThreads().
  size_t parallelism = 1;
  // Rows per morsel for parallel passes (0 = automatic, page aligned).
  uint64_t morsel_rows = 0;
  // CPU execution style for the shared operators and view builds:
  // vectorized batch-at-a-time by default. BatchConfig::TupleAtATime()
  // restores the original fused per-tuple loops (the reference
  // implementation). Either style produces bit-identical results and
  // charges identical modeled I/O (see DESIGN.md "Vectorized execution
  // model"); the knob exists for benchmarking and verification.
  BatchConfig batch;
  // Aggregation memory budget in bytes for query execution and view builds
  // (0 = unbounded, the default). When set, each shared class's budget is
  // split evenly across its live members; a member whose aggregation state
  // would exceed its share spills sorted runs to scratch files and merges
  // them at finish — results stay bit-identical to the unbudgeted run, and
  // modeled IoStats are unchanged (spill I/O is real scratch-file I/O,
  // reported separately as spill_runs/spill_bytes). A member that cannot
  // proceed even by spilling fails with kResourceExhausted and degrades
  // through the fact-table fallback alone.
  uint64_t memory_budget_bytes = 0;
  // Directory for spill run files (empty = $TMPDIR, else /tmp). Files are
  // uniquely named per query and removed on success and error paths alike.
  std::string scratch_dir;
  // Records an execution trace (span tree with per-node IoStats deltas and
  // row counts; see obs/trace.h) for every Execute* / MaterializeView(s) /
  // AppendFacts call, retrievable via Engine::last_trace(). Off by default:
  // with tracing off every span site costs one thread-local load and a
  // branch (<2% on the scan benches — asserted by bench_vectorized_scan).
  // Engine::ExecuteTraced records a trace regardless of this knob.
  bool trace = false;
  // Compressed physical layout (DESIGN.md §14), on by default: every
  // registered table bit-packs its key columns (frame-of-reference +
  // ceil(log2(domain)) bits per value) and the modeled page geometry —
  // rows_per_page(), num_pages(), every charged page — shrinks in exact
  // proportion (the paper's 24-byte fact tuple drops to ~11 bytes, ~2.4x
  // fewer pages). Packing is lossless: results are bit-identical to the
  // uncompressed layout at any parallelism x batch x memory budget, and
  // the cost model prices the same geometry the scans charge, so EXPLAIN
  // ANALYZE estimated == actual either way. Spill runs reuse the same
  // encoding (SpillConfig::packed_keys). false restores the historical
  // 4k + 8m byte layout exactly. The default is true; setting
  // STARSHARE_UNCOMPRESSED=1 in the environment flips the default to
  // false (verify.sh uses this to run the whole tier-1 suite on the raw
  // layout) — explicit assignments always win over the env.
  bool compressed_pages = DefaultCompressedPages();
  // Knobs for the continuous query server (Engine::server(); DESIGN.md §13):
  // admission optimizer, scan segment granularity, queue depth, late
  // attachment. The server itself starts lazily on first use.
  ServerConfig server;
};

// An Execute run plus the trace recorded for it (EXPLAIN ANALYZE).
struct TracedExecution {
  std::vector<ExecutedQuery> results;
  obs::Trace trace;
};

// One ExecuteCube run: the scheduled lattice and, aligned with its steps,
// every level's result. results[i].query points at lattice.steps[i].query,
// so the pair stays self-describing after the call returns.
struct CubeExecution {
  LatticePlan lattice;
  std::vector<ExecutedQuery> results;

  bool all_ok() const {
    for (const ExecutedQuery& r : results) {
      if (!r.ok()) return false;
    }
    return true;
  }
};

class Engine {
 public:
  explicit Engine(StarSchema schema, EngineConfig config = EngineConfig());

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Stops the query server first (failing in-flight queries with a typed
  // kShuttingDown outcome), then tears down the engine. Outstanding
  // QueryHandles stay valid past destruction.
  ~Engine();

  const StarSchema& schema() const { return schema_; }
  const CostModel& cost_model() const { return cost_; }
  const ViewSet& views() const { return views_; }
  const Catalog& catalog() const { return catalog_; }
  DiskModel& disk() { return disk_; }

  // Runtime form of EngineConfig::parallelism: resizes (or drops) the
  // worker pool. Safe between queries; must not be called while an Execute
  // or MaterializeViews is in flight.
  void set_parallelism(size_t parallelism);
  size_t parallelism() const { return parallelism_; }

  // Runtime form of EngineConfig::batch: switches the shared operators and
  // the view builder between vectorized and tuple-at-a-time execution, or
  // adjusts the batch size. Safe between queries, like set_parallelism.
  void set_batch_config(const BatchConfig& batch);
  void set_vectorized(bool vectorized) {
    BatchConfig batch = config_.batch;
    batch.vectorized = vectorized;
    set_batch_config(batch);
  }
  void set_batch_rows(size_t batch_rows) {
    BatchConfig batch = config_.batch;
    batch.batch_rows = batch_rows;
    set_batch_config(batch);
  }
  const BatchConfig& batch_config() const { return config_.batch; }

  // Runtime form of EngineConfig::memory_budget_bytes. Safe between
  // queries, like set_parallelism; 0 restores unbounded execution.
  void set_memory_budget_bytes(uint64_t bytes);
  uint64_t memory_budget_bytes() const {
    return config_.memory_budget_bytes;
  }

  // ---- Data -------------------------------------------------------------

  // Generates the synthetic base fact table and registers it as the base
  // view (the paper's LL). Must be called (or AttachFactTable) before
  // anything else.
  MaterializedView* LoadFactTable(const DataGeneratorConfig& config);

  // Registers caller-provided base data instead (key columns must be
  // base-level member ids per dimension, in schema order).
  Result<MaterializedView*> AttachFactTable(std::unique_ptr<Table> table);

  MaterializedView* base_view() const { return base_view_; }

  // Appends newly generated facts (config.num_rows, config.seed) to the
  // base table and incrementally refreshes every materialized view from
  // (old view + delta) — SUM views are self-maintainable, so the base is
  // never rescanned (paper intro: "maintaining precomputed group-bys").
  // Indexes and statistics of affected views are rebuilt.
  Status AppendFacts(const DataGeneratorConfig& config);

  // Same, with caller-provided delta rows (base-level member ids per
  // dimension, in schema order).
  Status AppendFactTable(std::unique_ptr<Table> delta);

  // ---- Materialized group-bys -------------------------------------------

  // Materializes the group-by written in spec syntax ("A'B''C''D"),
  // aggregating from the smallest existing view that can produce it.
  // `clustered` selects the physical layout: false (default) emits the
  // paper-era heap/hash order, true emits an index-organized table sorted
  // by key (cheap contiguous probes for prefix predicates).
  Result<MaterializedView*> MaterializeView(const std::string& spec_text,
                                            bool clustered = false);
  Result<MaterializedView*> MaterializeView(const GroupBySpec& spec,
                                            bool clustered = false);

  // Materializes several group-bys with ONE shared scan of the smallest
  // view able to produce all of them (batch cube construction). Returns
  // the views in spec order; fails atomically before any work if a spec is
  // malformed, already materialized, or unanswerable.
  Result<std::vector<MaterializedView*>> MaterializeViews(
      const std::vector<std::string>& spec_texts, bool clustered = false);

  // Builds bitmap join indexes on `dims` (dimension names) of a view.
  Status BuildIndexes(const std::string& spec_text,
                      const std::vector<std::string>& dims);

  // Drops a materialized view (its table, indexes and statistics). The
  // base table cannot be dropped. Plans holding the view become invalid.
  Status DropView(const std::string& spec_text);

  // ---- Queries ------------------------------------------------------------

  // Parses one MDX expression and expands it into its component queries.
  Result<std::vector<DimensionalQuery>> ParseMdx(const std::string& text,
                                                 int first_id = 1) const;

  // Parses one MDX expression carrying a trailing WITH CUBE / WITH ROLLUP
  // clause into the cube request it names: each axis group contributes one
  // cubed (dimension, level) pair, restricting members and FILTER slicers
  // land in the shared predicate (mdx/binder.h documents the mapping).
  Result<CubeQuery> ParseCube(const std::string& text) const;

  // Produces a global plan with the chosen algorithm. The returned plan
  // holds pointers into `queries`, which must outlive it.
  GlobalPlan Optimize(const std::vector<DimensionalQuery>& queries,
                      OptimizerKind kind) const;
  GlobalPlan Optimize(const std::vector<const DimensionalQuery*>& queries,
                      OptimizerKind kind) const;

  // Executes a plan with the §3 shared operators, degrading gracefully:
  // when a member of a shared class fails (e.g. an injected device fault),
  // the remaining members still produce their results, and the failed
  // query is re-planned as a single-query hash star join against the base
  // fact table. Only if that fallback also fails does the entry come back
  // with an error Status. Degradations are recorded in
  // last_execution_report(). The process never aborts on a query failure.
  std::vector<ExecutedQuery> Execute(const GlobalPlan& plan);

  // EXPLAIN ANALYZE: like Execute, but records and returns the span tree of
  // the run (per-class and per-member spans with IoStats deltas, row counts
  // and estimated-vs-actual cost; obs/trace.h documents the determinism
  // contract). Works whether or not EngineConfig::trace is set.
  TracedExecution ExecuteTraced(const GlobalPlan& plan);

  // Optimize + execute under one trace: the optimizer's phase spans appear
  // under "engine.optimize" and the execution under "engine.execute".
  TracedExecution ExecuteTraced(const std::vector<DimensionalQuery>& queries,
                                OptimizerKind kind);

  // The trace of the most recent traced call (ExecuteTraced always; every
  // Execute* / MaterializeView(s) / AppendFacts when EngineConfig::trace is
  // set). Empty when nothing has been traced.
  const obs::Trace& last_trace() const { return last_trace_; }

  // The physical plan tree the most recent Execute / ExecuteCached /
  // ExecuteNaive / ExecuteUnshared call actually ran — every node annotated
  // with its cost estimate and the I/O, rows and status it observed. Empty
  // before the first execution.
  const PhysicalPlan& last_physical_plan() const {
    return last_physical_plan_;
  }

  // EXPLAIN ANALYZE: estimated-vs-actual rendering of last_physical_plan()
  // under this engine's disk timings.
  std::string ExplainAnalyze() const {
    return last_physical_plan_.ExplainAnalyze(config_.disk_timings);
  }

  // The same executed tree as JSON (nested children, io/mem/counters per
  // node) for tooling.
  std::string ExplainAnalyzeJson() const {
    return last_physical_plan_.ExplainAnalyzeJson(config_.disk_timings);
  }

  // What degraded (and what recovered) during the most recent Execute /
  // ExecuteCached / ExecuteNaive call. clean() when nothing did.
  const ExecutionReport& last_execution_report() const { return report_; }

  // Cache-aware execution: answers what it can from the result cache, then
  // plans (with `kind`) and executes only the misses as one shared batch.
  // Results are returned in input order. Requires result_cache_entries > 0.
  std::vector<ExecutedQuery> ExecuteCached(
      const std::vector<DimensionalQuery>& queries, OptimizerKind kind);

  // The cache, or nullptr when disabled.
  const ResultCache* result_cache() const { return result_cache_.get(); }

  // Executes a WITH CUBE / WITH ROLLUP request as one shared submission:
  // plans the group-by lattice with smallest-parent scheduling
  // (cube/lattice.h), runs the base levels as an ordinary related-query
  // batch under `kind` — so the fact pages are read exactly once for the
  // whole lattice — then rolls every remaining level up from its scheduled
  // parent's in-memory groups through the derived pipeline, which charges
  // no fact I/O at all. Per-level failures degrade through the same
  // fact-table fallback as Execute (see last_execution_report()). Component
  // ids are first_id, first_id + 1, ... in lattice step order, and the
  // executed tree — rollup chains reading their producers via DAG edges —
  // lands in last_physical_plan() for EXPLAIN ANALYZE.
  Result<CubeExecution> ExecuteCube(const CubeQuery& cube, OptimizerKind kind,
                                    int first_id = 1);

  // The no-sharing baseline: each query separately on its locally optimal
  // (view, method) — what a data source that ignores query relationships
  // would do.
  std::vector<ExecutedQuery> ExecuteNaive(
      const std::vector<DimensionalQuery>& queries);

  // Executes `plan`'s members one at a time with no shared operators (the
  // "queries running separately" bars of the paper's Figures 10-12).
  std::vector<ExecutedQuery> ExecuteUnshared(const GlobalPlan& plan);

  // ---- Query server -------------------------------------------------------

  // The continuous shared-scan query server (DESIGN.md §13), started lazily
  // on first use with EngineConfig::server. While it is processing queries,
  // submit through it instead of calling the synchronous Execute* methods —
  // the server's controller thread owns the engine internals.
  QueryServer& server();

  // Opens a new client session on the server.
  Session OpenSession();

  // Asynchronously submits one query on the default session and returns a
  // futures-style handle; Await blocks for the outcome. Sugar over
  // server().Submit / QueryHandle::Await.
  QueryHandle Submit(const DimensionalQuery& query);
  const QueryOutcome& Await(QueryHandle& handle) { return handle.Await(); }

  // Stops the server (idempotent; no-op when it never started). In-flight
  // and pending queries complete with kShuttingDown.
  void StopServer();

  // ---- Persistence --------------------------------------------------------

  // Writes the base table, every materialized view and a manifest into
  // `directory` (created if missing). Indexes are not persisted.
  Status SaveCube(const std::string& directory) const;

  // Loads a cube saved by SaveCube into this engine (which must not have a
  // fact table yet). Statistics are recomputed; rebuild indexes with
  // BuildIndexes as needed. Table files are read with bounded
  // retry-with-backoff, and a corrupt file surfaces as kCorruption, never
  // an abort. When `skipped_views` is non-null, a corrupt or unreadable
  // *view* file (derived, rebuildable data) is skipped and its spec
  // appended there instead of failing the load; the base table must always
  // load.
  Status LoadCube(const std::string& directory,
                  std::vector<std::string>* skipped_views = nullptr);

  // ---- Accounting ---------------------------------------------------------

  // Returns the I/O counters accumulated since the last call and resets
  // them (the buffer pool, if any, is not cleared).
  IoStats ConsumeIoStats();

  // Clears the buffer pool ("flush caches").
  void FlushCaches();

  double ModeledIoMs(const IoStats& stats) const {
    return config_.disk_timings.ModeledIoMs(stats);
  }

 private:
  // Runs the plan, then applies the fact-table fallback to failed entries
  // and records events in report_ (which it resets first). The executed
  // tree is stored into last_physical_plan_.
  std::vector<ExecutedQuery> RunPlanWithFallback(const GlobalPlan& plan);

  // Same, but records the executed tree into `phys` instead of replacing
  // last_physical_plan_ — lets ExecuteCached nest the miss execution under
  // its CacheLookup node.
  std::vector<ExecutedQuery> RunPlanWithFallbackInto(const GlobalPlan& plan,
                                                     PhysicalPlan& phys);

  // Runs `fn` under a tracer rooted at a span named `root`, stores the
  // trace in last_trace_, and returns fn's result.
  template <typename Fn>
  auto Traced(const char* root, Fn&& fn) {
    obs::Tracer tracer(&disk_);
    auto out = [&] {
      obs::Tracer::Scope bind(&tracer);
      obs::ScopedSpan span(root);
      return fn();
    }();
    last_trace_ = tracer.Take();
    return out;
  }

  // Applies the fallback to one failed entry, appending its report event
  // and a Fallback node (with its single-query chain) to `phys`.
  void RecoverQuery(ExecutedQuery& entry, PhysicalPlan& phys);

  // The executor's ParallelPolicy points at thread_pool_; both are updated
  // together by set_parallelism.
  StarSchema schema_;
  EngineConfig config_;
  Catalog catalog_;
  ViewSet views_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<ResultCache> result_cache_;
  DiskModel disk_;
  CostModel cost_;
  MemoryBudget memory_budget_;
  ViewBuilder builder_;
  Executor executor_;
  std::unique_ptr<ThreadPool> thread_pool_;
  size_t parallelism_ = 1;
  MaterializedView* base_view_ = nullptr;
  ExecutionReport report_;
  obs::Trace last_trace_;
  PhysicalPlan last_physical_plan_;

  // The query server references the members above, so it is declared last:
  // ~Engine stops it before anything it points at dies.
  std::mutex server_mu_;  // guards lazy construction of server_
  std::unique_ptr<QueryServer> server_;
};

}  // namespace starshare

#endif  // STARSHARE_CORE_ENGINE_H_
