#include "exec/hash_aggregator.h"

namespace starshare {

HashAggregator::HashAggregator(const StarSchema& schema,
                               const GroupBySpec& target, AggOp op,
                               size_t expected_groups)
    : target_(target),
      op_(op),
      packer_(schema, target),
      groups_(expected_groups) {}

QueryResult HashAggregator::Finish() const {
  QueryResult result(target_, op_);
  groups_.ForEach([this, &result](uint64_t key, const Accum& a) {
    double value = a.agg;
    switch (op_) {
      case AggOp::kCount:
        value = static_cast<double>(a.count);
        break;
      case AggOp::kAvg:
        value = a.count == 0 ? 0 : a.agg / static_cast<double>(a.count);
        break;
      default:
        break;
    }
    result.AddRow(packer_.Unpack(key), value);
  });
  result.Canonicalize();
  return result;
}

}  // namespace starshare
