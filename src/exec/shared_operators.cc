#include "exec/shared_operators.h"

#include "common/fault_injector.h"
#include "common/str_util.h"
#include "exec/operators/class_pipeline.h"
#include "exec/shared_star_join_internal.h"
#include "exec/star_join.h"
#include "index/bitmap.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace starshare {
namespace internal {

std::vector<SharedDimFilter> BuildSharedFilters(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view) {
  SS_CHECK(queries.size() <= kMaxClassQueries);
  obs::ScopedSpan span("exec.dim_filters");
  const uint32_t all_mask = AllQueriesMask(queries.size());
  std::vector<SharedDimFilter> filters;
  for (size_t d = 0; d < schema.num_dims(); ++d) {
    bool restricted = false;
    for (const auto* q : queries) {
      if (q->predicate().ForDim(d) != nullptr) {
        restricted = true;
        break;
      }
    }
    if (!restricted) continue;
    const size_t col = view.KeyColForDim(d);
    SS_CHECK(col != SIZE_MAX);
    SharedDimFilter filter;
    filter.col = &view.table().key_column(col);
    filter.masks.assign(
        schema.dim(d).cardinality(view.StoredLevel(d)), all_mask);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const DimPredicate* pred = queries[qi]->predicate().ForDim(d);
      if (pred == nullptr) continue;  // query unrestricted on d: bit stays set
      const std::vector<uint8_t> pass = BuildPassTable(schema, view, *pred);
      const uint32_t bit = uint32_t{1} << qi;
      for (size_t m = 0; m < pass.size(); ++m) {
        if (!pass[m]) filter.masks[m] &= ~bit;
      }
    }
    filters.push_back(std::move(filter));
  }
  span.AddCounter("dims", filters.size());
  return filters;
}

Status MemberBindFault(const DimensionalQuery& query) {
  if (FaultHit("exec.bind_query", query.id())) {
    return Status::Internal(
        StrFormat("injected execution fault binding query %d", query.id()));
  }
  return Status::Ok();
}

Status BuildMemberBitmap(const StarSchema& schema,
                         const DimensionalQuery& query,
                         const MaterializedView& view, DiskModel& disk,
                         Bitmap* bitmap,
                         std::vector<const DimPredicate*>* residual) {
  static obs::Counter& bitmaps = obs::Metrics().counter("exec.bitmaps");
  bitmaps.Add();
  obs::ScopedSpan span("exec.bitmap", "", query.id());
  if (FaultHit("exec.build_bitmap", query.id())) {
    Status fault = Status::Internal(StrFormat(
        "injected fault building result bitmap for query %d", query.id()));
    span.SetStatus(fault);
    return fault;
  }
  *bitmap = BuildResultBitmap(schema, query, view, disk, residual);
  Status device = disk.TakeFault();
  if (!device.ok()) {
    Status fault =
        Status(device.code(),
               StrFormat("query %d bitmap construction: %s", query.id(),
                         device.message().c_str()));
    span.SetStatus(fault);
    return fault;
  }
  if (span.active()) span.AddRows(bitmap->CountSetBits());
  return Status::Ok();
}

}  // namespace internal

// The operator-level entry points are thin shells over the unified class
// pipeline: one lowered physical chain, serial driver (no pool).

Result<SharedOutcome> TrySharedHybridStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& hash_queries,
    const std::vector<const DimensionalQuery*>& index_queries,
    const MaterializedView& view, DiskModel& disk,
    const BatchConfig& batch) {
  SharedClassRequest req;
  req.schema = &schema;
  req.hash_queries = hash_queries;
  req.index_queries = index_queries;
  req.view = &view;
  req.disk = &disk;
  req.policy.batch = batch;
  req.probe = false;
  return ExecuteSharedClass(req);
}

Result<SharedOutcome> TrySharedIndexStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk,
    const BatchConfig& batch) {
  SharedClassRequest req;
  req.schema = &schema;
  req.index_queries = queries;
  req.view = &view;
  req.disk = &disk;
  req.policy.batch = batch;
  req.probe = true;
  return ExecuteSharedClass(req);
}

std::vector<QueryResult> SharedHybridStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& hash_queries,
    const std::vector<const DimensionalQuery*>& index_queries,
    const MaterializedView& view, DiskModel& disk, const BatchConfig& batch) {
  SS_CHECK(!hash_queries.empty() || !index_queries.empty());
  Result<SharedOutcome> outcome = TrySharedHybridStarJoin(
      schema, hash_queries, index_queries, view, disk, batch);
  SS_CHECK_MSG(outcome.ok(), "%s", outcome.status().ToString().c_str());
  for (const Status& s : outcome->statuses) {
    SS_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
  }
  return std::move(outcome->results);
}

std::vector<QueryResult> SharedScanStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk, const BatchConfig& batch) {
  return SharedHybridStarJoin(schema, queries, {}, view, disk, batch);
}

std::vector<QueryResult> SharedIndexStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk, const BatchConfig& batch) {
  SS_CHECK(!queries.empty());
  Result<SharedOutcome> outcome =
      TrySharedIndexStarJoin(schema, queries, view, disk, batch);
  SS_CHECK_MSG(outcome.ok(), "%s", outcome.status().ToString().c_str());
  for (const Status& s : outcome->statuses) {
    SS_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
  }
  return std::move(outcome->results);
}

Result<SharedOutcome> ParallelSharedHybridStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& hash_queries,
    const std::vector<const DimensionalQuery*>& index_queries,
    const MaterializedView& view, DiskModel& disk,
    const ParallelPolicy& policy) {
  SharedClassRequest req;
  req.schema = &schema;
  req.hash_queries = hash_queries;
  req.index_queries = index_queries;
  req.view = &view;
  req.disk = &disk;
  req.policy = policy;
  req.probe = false;
  return ExecuteSharedClass(req);
}

Result<SharedOutcome> ParallelSharedScanStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk,
    const ParallelPolicy& policy) {
  return ParallelSharedHybridStarJoin(schema, queries, {}, view, disk,
                                      policy);
}

Result<SharedOutcome> ParallelSharedIndexStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk,
    const ParallelPolicy& policy) {
  SharedClassRequest req;
  req.schema = &schema;
  req.index_queries = queries;
  req.view = &view;
  req.disk = &disk;
  req.policy = policy;
  req.probe = true;
  return ExecuteSharedClass(req);
}

}  // namespace starshare
