#include "exec/shared_operators.h"

#include "common/fault_injector.h"
#include "common/str_util.h"
#include "exec/bound_query.h"
#include "exec/shared_star_join_internal.h"
#include "exec/star_join.h"
#include "index/bitmap.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace starshare {
namespace internal {

std::vector<SharedDimFilter> BuildSharedFilters(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view) {
  SS_CHECK(queries.size() <= kMaxClassQueries);
  obs::ScopedSpan span("exec.dim_filters");
  const uint32_t all_mask = AllQueriesMask(queries.size());
  std::vector<SharedDimFilter> filters;
  for (size_t d = 0; d < schema.num_dims(); ++d) {
    bool restricted = false;
    for (const auto* q : queries) {
      if (q->predicate().ForDim(d) != nullptr) {
        restricted = true;
        break;
      }
    }
    if (!restricted) continue;
    const size_t col = view.KeyColForDim(d);
    SS_CHECK(col != SIZE_MAX);
    SharedDimFilter filter;
    filter.col = &view.table().key_column(col);
    filter.masks.assign(
        schema.dim(d).cardinality(view.StoredLevel(d)), all_mask);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const DimPredicate* pred = queries[qi]->predicate().ForDim(d);
      if (pred == nullptr) continue;  // query unrestricted on d: bit stays set
      const std::vector<uint8_t> pass = BuildPassTable(schema, view, *pred);
      const uint32_t bit = uint32_t{1} << qi;
      for (size_t m = 0; m < pass.size(); ++m) {
        if (!pass[m]) filter.masks[m] &= ~bit;
      }
    }
    filters.push_back(std::move(filter));
  }
  span.AddCounter("dims", filters.size());
  return filters;
}

Status MemberBindFault(const DimensionalQuery& query) {
  if (FaultHit("exec.bind_query", query.id())) {
    return Status::Internal(
        StrFormat("injected execution fault binding query %d", query.id()));
  }
  return Status::Ok();
}

Status BuildMemberBitmap(const StarSchema& schema,
                         const DimensionalQuery& query,
                         const MaterializedView& view, DiskModel& disk,
                         Bitmap* bitmap,
                         std::vector<const DimPredicate*>* residual) {
  static obs::Counter& bitmaps = obs::Metrics().counter("exec.bitmaps");
  bitmaps.Add();
  obs::ScopedSpan span("exec.bitmap", "", query.id());
  if (FaultHit("exec.build_bitmap", query.id())) {
    Status fault = Status::Internal(StrFormat(
        "injected fault building result bitmap for query %d", query.id()));
    span.SetStatus(fault);
    return fault;
  }
  *bitmap = BuildResultBitmap(schema, query, view, disk, residual);
  Status device = disk.TakeFault();
  if (!device.ok()) {
    Status fault =
        Status(device.code(),
               StrFormat("query %d bitmap construction: %s", query.id(),
                         device.message().c_str()));
    span.SetStatus(fault);
    return fault;
  }
  if (span.active()) span.AddRows(bitmap->CountSetBits());
  return Status::Ok();
}

void SharedScanKernel::EmitSelected(const BoundQuery& bound,
                                    QueryMatchBatch& out) {
  const size_t n = sel_.size();
  if (n == 0) return;
  const size_t base = out.keys.size();
  out.keys.resize(base + n);
  out.values.resize(base + n);
  bound.translator().PackRows(sel_.data(), n, out.keys.data() + base);
  const double* measures = bound.measure_data();
  double* values = out.values.data() + base;
  const uint64_t* rows = sel_.data();
  for (size_t i = 0; i < n; ++i) values[i] = measures[rows[i]];
}

void SharedScanKernel::ProcessBatch(uint64_t begin, uint64_t end,
                                    std::vector<QueryMatchBatch>& out) {
  const size_t n = static_cast<size_t>(end - begin);
  for (QueryMatchBatch& o : out) o.Clear();

  if (n_hash_ > 0) {
    // Pass masks for the whole batch, one shared dimension filter at a
    // time: a single dense-array load per (row, filter).
    masks_.resize(n);
    uint32_t any = all_mask_;
    if (filters_.empty()) {
      std::fill(masks_.begin(), masks_.end(), all_mask_);
    } else {
      {
        const SharedDimFilter& f = filters_[0];
        const int32_t* col = f.col->data() + begin;
        const uint32_t* masks = f.masks.data();
        for (size_t i = 0; i < n; ++i) {
          masks_[i] = masks[static_cast<size_t>(col[i])];
        }
      }
      for (size_t fi = 1; fi < filters_.size(); ++fi) {
        const SharedDimFilter& f = filters_[fi];
        const int32_t* col = f.col->data() + begin;
        const uint32_t* masks = f.masks.data();
        for (size_t i = 0; i < n; ++i) {
          masks_[i] &= masks[static_cast<size_t>(col[i])];
        }
      }
      any = 0;
      for (size_t i = 0; i < n; ++i) any |= masks_[i];
    }
    // Per hash member: selection vector, then pack + gather + emit.
    for (size_t qi = 0; qi < n_hash_; ++qi) {
      const uint32_t bit = uint32_t{1} << qi;
      if ((any & bit) == 0) continue;
      sel_.clear();
      for (size_t i = 0; i < n; ++i) {
        if (masks_[i] & bit) sel_.push_back(begin + i);
      }
      EmitSelected(bound_[qi], out[qi]);
    }
  }

  // Index members: slice each candidate bitmap word-at-a-time instead of
  // Test(row) per scanned tuple, then apply the residual predicates to the
  // (usually far smaller) candidate set.
  for (size_t k = 0; k < index_bitmaps_.size(); ++k) {
    sel_.clear();
    index_bitmaps_[k].ForEachSetBitInRange(
        begin, end, [this](uint64_t row) { sel_.push_back(row); });
    const ResidualFilter& residual = index_residuals_[k];
    if (!residual.empty()) {
      size_t kept = 0;
      for (const uint64_t row : sel_) {
        if (residual.Matches(row)) sel_[kept++] = row;
      }
      sel_.resize(kept);
    }
    EmitSelected(bound_[n_hash_ + k], out[n_hash_ + k]);
  }
}

}  // namespace internal

using internal::AllQueriesMask;
using internal::BuildMemberBitmap;
using internal::BuildSharedFilters;
using internal::MemberBindFault;
using internal::QueryMatchBatch;
using internal::SharedDimFilter;
using internal::SharedScanKernel;

Result<SharedOutcome> TrySharedHybridStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& hash_queries,
    const std::vector<const DimensionalQuery*>& index_queries,
    const MaterializedView& view, DiskModel& disk,
    const BatchConfig& batch) {
  if (hash_queries.empty() && index_queries.empty()) {
    return Status::InvalidArgument("shared hybrid star join with no queries");
  }
  if (hash_queries.size() > kMaxClassQueries) {
    // The shared-scan pass masks carry one bit per hash member; a larger
    // class is the planner's mistake, reported as a typed error so callers
    // with a degradation path (Engine's fact-table fallback) can recover
    // instead of aborting. Executor::ExecuteClass chunks oversized classes
    // before ever reaching this operator.
    return Status::InvalidArgument(StrFormat(
        "shared hybrid star join: %zu hash members exceed the class limit "
        "of %zu",
        hash_queries.size(), kMaxClassQueries));
  }
  const size_t n_hash = hash_queries.size();
  SharedOutcome out;
  out.results.resize(n_hash + index_queries.size());
  out.statuses.resize(n_hash + index_queries.size());

  disk.TakeFault();  // discard faults latched by earlier, unrelated work

  // Per-member private phases. A member failing here drops out; the shared
  // pass runs with the survivors.
  std::vector<const DimensionalQuery*> live_hash;
  std::vector<size_t> live_hash_slots;
  for (size_t i = 0; i < hash_queries.size(); ++i) {
    Status s = MemberBindFault(*hash_queries[i]);
    if (!s.ok()) {
      out.statuses[i] = std::move(s);
      continue;
    }
    live_hash.push_back(hash_queries[i]);
    live_hash_slots.push_back(i);
  }

  std::vector<const DimensionalQuery*> live_index;
  std::vector<size_t> live_index_slots;
  std::vector<Bitmap> index_bitmaps;
  std::vector<std::vector<const DimPredicate*>> index_residual_preds;
  for (size_t i = 0; i < index_queries.size(); ++i) {
    const size_t slot = n_hash + i;
    Status s = MemberBindFault(*index_queries[i]);
    if (s.ok()) {
      Bitmap bitmap;
      std::vector<const DimPredicate*> residual;
      s = BuildMemberBitmap(schema, *index_queries[i], view, disk, &bitmap,
                            &residual);
      if (s.ok()) {
        live_index.push_back(index_queries[i]);
        live_index_slots.push_back(slot);
        index_bitmaps.push_back(std::move(bitmap));
        index_residual_preds.push_back(std::move(residual));
        continue;
      }
    }
    out.statuses[slot] = std::move(s);
  }

  if (live_hash.empty() && live_index.empty()) return out;  // nothing left

  std::vector<BoundQuery> bound;  // live hash members, then live index
  bound.reserve(live_hash.size() + live_index.size());
  for (const auto* q : live_hash) bound.emplace_back(schema, *q, view);
  std::vector<ResidualFilter> index_residuals;
  index_residuals.reserve(live_index.size());
  for (size_t i = 0; i < live_index.size(); ++i) {
    bound.emplace_back(schema, *live_index[i], view);
    index_residuals.emplace_back(schema, view, index_residual_preds[i]);
  }

  const std::vector<SharedDimFilter> filters =
      BuildSharedFilters(schema, live_hash, view);
  const uint32_t all_mask = AllQueriesMask(live_hash.size());
  const size_t n_live_hash = live_hash.size();

  static obs::Counter& scan_passes = obs::Metrics().counter("exec.scan_passes");
  scan_passes.Add();
  obs::ScopedSpan scan_span("exec.shared_scan");
  scan_span.AddRows(view.table().num_rows());
  scan_span.AddCounter("members", bound.size());
  if (batch.vectorized) {
    // Batch-at-a-time: the scan callbacks only charge I/O and feed the
    // batcher; the kernel does the CPU work per batch. Batches span page
    // boundaries freely — page charging is untouched.
    SharedScanKernel kernel(filters, all_mask, bound, n_live_hash,
                            index_bitmaps, index_residuals);
    std::vector<QueryMatchBatch> matches(bound.size());
    RowBatcher batcher(batch.EffectiveBatchRows(),
                       [&](uint64_t b, uint64_t e) {
                         scan_span.AddBatches(1);
                         kernel.ProcessBatch(b, e, matches);
                         for (size_t qi = 0; qi < bound.size(); ++qi) {
                           bound[qi].AccumulateRawBatch(
                               matches[qi].keys.data(),
                               matches[qi].values.data(), matches[qi].size());
                         }
                       });
    view.table().ScanPages(disk, [&](uint64_t begin, uint64_t end) {
      disk.CountTuples(end - begin);
      disk.CountHashProbes((end - begin) * filters.size());
      batcher.AddRange(begin, end);
    });
    batcher.Finish();
  } else {
    view.table().ScanPages(disk, [&](uint64_t begin, uint64_t end) {
      disk.CountTuples(end - begin);
      for (uint64_t row = begin; row < end; ++row) {
        // Hash members: one probe per shared dimension filter for all of
        // them.
        uint32_t mask = all_mask;
        for (const SharedDimFilter& f : filters) {
          mask &= f.masks[static_cast<size_t>((*f.col)[row])];
          if (mask == 0) break;
        }
        disk.CountHashProbes(filters.size());
        while (mask != 0) {
          const int qi = __builtin_ctz(mask);
          bound[static_cast<size_t>(qi)].Accumulate(row);
          mask &= mask - 1;
        }
        // Index members: candidate bitmap + residual predicates used as
        // the selection filter (§3.3).
        for (size_t i = 0; i < index_bitmaps.size(); ++i) {
          if (index_bitmaps[i].Test(row) && index_residuals[i].Matches(row)) {
            bound[n_live_hash + i].Accumulate(row);
          }
        }
      }
    });
  }

  // A device fault during the shared scan takes down every member that
  // depended on it — but only those; members failed above keep their own
  // (more precise) statuses.
  const Status scan_fault = disk.TakeFault();
  if (!scan_fault.ok()) {
    for (size_t slot : live_hash_slots) out.statuses[slot] = scan_fault;
    for (size_t slot : live_index_slots) out.statuses[slot] = scan_fault;
    return out;
  }

  for (size_t i = 0; i < live_hash_slots.size(); ++i) {
    out.results[live_hash_slots[i]] = bound[i].Finish();
  }
  for (size_t i = 0; i < live_index_slots.size(); ++i) {
    out.results[live_index_slots[i]] = bound[n_live_hash + i].Finish();
  }
  return out;
}

Result<SharedOutcome> TrySharedIndexStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk,
    const BatchConfig& batch) {
  if (queries.empty()) {
    return Status::InvalidArgument("shared index star join with no queries");
  }
  if (queries.size() > kMaxClassQueries) {
    return Status::InvalidArgument(
        StrFormat("shared index star join: %zu members exceed the class "
                  "limit of %zu",
                  queries.size(), kMaxClassQueries));
  }
  SharedOutcome out;
  out.results.resize(queries.size());
  out.statuses.resize(queries.size());

  disk.TakeFault();

  std::vector<size_t> live_slots;
  std::vector<BoundQuery> bound;
  std::vector<Bitmap> bitmaps;
  std::vector<ResidualFilter> residuals;
  for (size_t i = 0; i < queries.size(); ++i) {
    Status s = MemberBindFault(*queries[i]);
    if (s.ok()) {
      Bitmap bitmap;
      std::vector<const DimPredicate*> residual;
      s = BuildMemberBitmap(schema, *queries[i], view, disk, &bitmap,
                            &residual);
      if (s.ok()) {
        live_slots.push_back(i);
        bound.emplace_back(schema, *queries[i], view);
        bitmaps.push_back(std::move(bitmap));
        residuals.emplace_back(schema, view, residual);
        continue;
      }
    }
    out.statuses[i] = std::move(s);
  }
  if (live_slots.empty()) return out;

  // Step 1 of §3.2's shared operator: OR the per-query result bitmaps.
  Bitmap unioned = bitmaps[0];
  for (size_t i = 1; i < bitmaps.size(); ++i) unioned.OrWith(bitmaps[i]);

  // Steps 2–4: one probe pass; split tuples to their group-bys by testing
  // each query's bitmap at the tuple position.
  const std::vector<uint64_t> positions = unioned.ToPositions();
  static obs::Counter& probe_passes =
      obs::Metrics().counter("exec.probe_passes");
  probe_passes.Add();
  obs::ScopedSpan probe_span("exec.shared_probe");
  probe_span.AddRows(positions.size());
  probe_span.AddCounter("members", bound.size());
  if (batch.vectorized) {
    // Charge the shared probe exactly as the tuple path does (one random
    // read per distinct page of the union), then route tuples per member by
    // slicing that member's own bitmap word-at-a-time — its set rows are a
    // subset of the probed union, visited in the same ascending order.
    view.table().ProbePositions(disk, positions, [](uint64_t) {});
    disk.CountTuples(positions.size());
    for (size_t qi = 0; qi < bound.size(); ++qi) {
      internal::ForEachIndexMemberBatch(
          bitmaps[qi], 0, bitmaps[qi].num_bits(), residuals[qi], bound[qi],
          batch.EffectiveBatchRows(),
          [&](const uint64_t* keys, const double* values, size_t n) {
            bound[qi].AccumulateRawBatch(keys, values, n);
          });
    }
  } else {
    view.table().ProbePositions(disk, positions, [&](uint64_t row) {
      for (size_t qi = 0; qi < bound.size(); ++qi) {
        if (bitmaps[qi].Test(row) && residuals[qi].Matches(row)) {
          bound[qi].Accumulate(row);
        }
      }
    });
    disk.CountTuples(positions.size());
  }

  const Status probe_fault = disk.TakeFault();
  if (!probe_fault.ok()) {
    for (size_t slot : live_slots) out.statuses[slot] = probe_fault;
    return out;
  }
  for (size_t i = 0; i < live_slots.size(); ++i) {
    out.results[live_slots[i]] = bound[i].Finish();
  }
  return out;
}

std::vector<QueryResult> SharedHybridStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& hash_queries,
    const std::vector<const DimensionalQuery*>& index_queries,
    const MaterializedView& view, DiskModel& disk, const BatchConfig& batch) {
  SS_CHECK(!hash_queries.empty() || !index_queries.empty());
  Result<SharedOutcome> outcome = TrySharedHybridStarJoin(
      schema, hash_queries, index_queries, view, disk, batch);
  SS_CHECK_MSG(outcome.ok(), "%s", outcome.status().ToString().c_str());
  for (const Status& s : outcome->statuses) {
    SS_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
  }
  return std::move(outcome->results);
}

std::vector<QueryResult> SharedScanStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk, const BatchConfig& batch) {
  return SharedHybridStarJoin(schema, queries, {}, view, disk, batch);
}

std::vector<QueryResult> SharedIndexStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk, const BatchConfig& batch) {
  SS_CHECK(!queries.empty());
  Result<SharedOutcome> outcome =
      TrySharedIndexStarJoin(schema, queries, view, disk, batch);
  SS_CHECK_MSG(outcome.ok(), "%s", outcome.status().ToString().c_str());
  for (const Status& s : outcome->statuses) {
    SS_CHECK_MSG(s.ok(), "%s", s.ToString().c_str());
  }
  return std::move(outcome->results);
}

}  // namespace starshare
