#include "exec/shared_operators.h"

#include "exec/bound_query.h"
#include "exec/star_join.h"
#include "index/bitmap.h"

namespace starshare {
namespace {

// One shared dimension filter: a pass mask per stored member, bit q set iff
// hash query q accepts that member (queries that do not restrict the
// dimension accept everything). This is the shared dimension hash table of
// Fig. 2 carrying per-query predicate flags.
struct SharedDimFilter {
  const std::vector<int32_t>* col;
  std::vector<uint32_t> masks;
};

std::vector<SharedDimFilter> BuildSharedFilters(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view) {
  SS_CHECK(queries.size() <= kMaxClassQueries);
  const uint32_t all_mask =
      queries.empty() ? 0
                      : static_cast<uint32_t>((uint64_t{1} << queries.size()) - 1);
  std::vector<SharedDimFilter> filters;
  for (size_t d = 0; d < schema.num_dims(); ++d) {
    bool restricted = false;
    for (const auto* q : queries) {
      if (q->predicate().ForDim(d) != nullptr) {
        restricted = true;
        break;
      }
    }
    if (!restricted) continue;
    const size_t col = view.KeyColForDim(d);
    SS_CHECK(col != SIZE_MAX);
    SharedDimFilter filter;
    filter.col = &view.table().key_column(col);
    filter.masks.assign(
        schema.dim(d).cardinality(view.StoredLevel(d)), all_mask);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const DimPredicate* pred = queries[qi]->predicate().ForDim(d);
      if (pred == nullptr) continue;  // query unrestricted on d: bit stays set
      const std::vector<uint8_t> pass = BuildPassTable(schema, view, *pred);
      const uint32_t bit = uint32_t{1} << qi;
      for (size_t m = 0; m < pass.size(); ++m) {
        if (!pass[m]) filter.masks[m] &= ~bit;
      }
    }
    filters.push_back(std::move(filter));
  }
  return filters;
}

}  // namespace

std::vector<QueryResult> SharedHybridStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& hash_queries,
    const std::vector<const DimensionalQuery*>& index_queries,
    const MaterializedView& view, DiskModel& disk) {
  SS_CHECK(!hash_queries.empty() || !index_queries.empty());

  std::vector<BoundQuery> hash_bound;
  hash_bound.reserve(hash_queries.size());
  for (const auto* q : hash_queries) hash_bound.emplace_back(schema, *q, view);

  // Index members: build candidate bitmaps up front (index I/O + bitmap
  // CPU); their probe phase is replaced by filtering during the shared
  // scan. Unindexed predicates become residual filters.
  std::vector<BoundQuery> index_bound;
  std::vector<Bitmap> index_bitmaps;
  std::vector<ResidualFilter> index_residuals;
  index_bound.reserve(index_queries.size());
  index_bitmaps.reserve(index_queries.size());
  index_residuals.reserve(index_queries.size());
  for (const auto* q : index_queries) {
    index_bound.emplace_back(schema, *q, view);
    std::vector<const DimPredicate*> residual_preds;
    index_bitmaps.push_back(
        BuildResultBitmap(schema, *q, view, disk, &residual_preds));
    index_residuals.emplace_back(schema, view, residual_preds);
  }

  const std::vector<SharedDimFilter> filters =
      BuildSharedFilters(schema, hash_queries, view);
  const uint32_t all_mask =
      hash_queries.empty()
          ? 0
          : static_cast<uint32_t>((uint64_t{1} << hash_queries.size()) - 1);

  view.table().ScanPages(disk, [&](uint64_t begin, uint64_t end) {
    disk.CountTuples(end - begin);
    for (uint64_t row = begin; row < end; ++row) {
      // Hash members: one probe per shared dimension filter for all of them.
      uint32_t mask = all_mask;
      for (const SharedDimFilter& f : filters) {
        mask &= f.masks[static_cast<size_t>((*f.col)[row])];
        if (mask == 0) break;
      }
      disk.CountHashProbes(filters.size());
      while (mask != 0) {
        const int qi = __builtin_ctz(mask);
        hash_bound[static_cast<size_t>(qi)].Accumulate(row);
        mask &= mask - 1;
      }
      // Index members: candidate bitmap + residual predicates used as the
      // selection filter (§3.3).
      for (size_t qi = 0; qi < index_bound.size(); ++qi) {
        if (index_bitmaps[qi].Test(row) &&
            index_residuals[qi].Matches(row)) {
          index_bound[qi].Accumulate(row);
        }
      }
    }
  });

  std::vector<QueryResult> results;
  results.reserve(hash_bound.size() + index_bound.size());
  for (const auto& b : hash_bound) results.push_back(b.Finish());
  for (const auto& b : index_bound) results.push_back(b.Finish());
  return results;
}

std::vector<QueryResult> SharedScanStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk) {
  return SharedHybridStarJoin(schema, queries, {}, view, disk);
}

std::vector<QueryResult> SharedIndexStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk) {
  SS_CHECK(!queries.empty());
  SS_CHECK(queries.size() <= kMaxClassQueries);

  std::vector<BoundQuery> bound;
  std::vector<Bitmap> bitmaps;
  std::vector<ResidualFilter> residuals;
  bound.reserve(queries.size());
  bitmaps.reserve(queries.size());
  residuals.reserve(queries.size());
  for (const auto* q : queries) {
    bound.emplace_back(schema, *q, view);
    std::vector<const DimPredicate*> residual_preds;
    bitmaps.push_back(
        BuildResultBitmap(schema, *q, view, disk, &residual_preds));
    residuals.emplace_back(schema, view, residual_preds);
  }

  // Step 1 of §3.2's shared operator: OR the per-query result bitmaps.
  Bitmap unioned = bitmaps[0];
  for (size_t i = 1; i < bitmaps.size(); ++i) unioned.OrWith(bitmaps[i]);

  // Steps 2–4: one probe pass; split tuples to their group-bys by testing
  // each query's bitmap at the tuple position.
  const std::vector<uint64_t> positions = unioned.ToPositions();
  view.table().ProbePositions(disk, positions, [&](uint64_t row) {
    for (size_t qi = 0; qi < bound.size(); ++qi) {
      if (bitmaps[qi].Test(row) && residuals[qi].Matches(row)) {
        bound[qi].Accumulate(row);
      }
    }
  });
  disk.CountTuples(positions.size());

  std::vector<QueryResult> results;
  results.reserve(bound.size());
  for (const auto& b : bound) results.push_back(b.Finish());
  return results;
}

}  // namespace starshare
