// Spill files for budgeted aggregation (exec/memory_budget.h): when a
// consumer's staged raw records exceed its grant, it stable-sorts them by
// packed key and appends them as one checksummed run; Finish() merges the
// runs back with bounded memory.
//
// Bit-identity contract. Floating-point aggregation folds are order
// sensitive, so a spilled execution must replay each group's values in the
// exact order the unbudgeted path would have folded them. Runs are staged
// in arrival order and sorted *stably* by key, so within a run equal keys
// keep arrival order; runs are flushed in arrival order, so across runs
// every record of run i arrived before any record of run j > i. The merge
// pops records in (key, run index, position-in-run) order — for each key,
// precisely arrival order — making the merged fold bit-identical to the
// in-memory fold at any thread count, batch size and budget.
//
// On-disk formats (raw little-endian sections, each closed by a CRC32, the
// format-v3/v4 conventions from storage/table_io.h):
//
//   interleaved (packed_keys = false, the legacy layout):
//     run := rows u64 | rows x (key u64, m x double) | CRC32 u32
//
//   packed (packed_keys = true, the default under compressed pages):
//     run := rows u64 | bits u32 | ref u64
//            | ceil(rows*bits/64) x u64 key words | key CRC32 u32
//            | rows x (m x double) | value CRC32 u32
//     Keys in a run are sorted ascending, so ref is the first key and
//     bits = ceil(log2(last - first + 1)) — the same frame-of-reference
//     bit-packing as storage/packed_column.h, applied to u64 group keys.
//     Spill bytes shrink with the key-domain width exactly like pages do.
//
// Runs are appended back-to-back in one file per consumer, created lazily
// under the scratch directory with a unique per-query name and removed by
// the destructor on success and error paths alike.
//
// Failure model: every spill failure — a failed write, a failed or
// short read, a CRC mismatch — surfaces as StatusCode::kResourceExhausted:
// the member's memory pressure could not be relieved, and the engine's
// fallback ladder degrades that member alone. Fault sites "spill.write" and
// "spill.read" (keyed by query id) force each path; a kBitFlip read fault
// corrupts the buffer *before* checksumming, exactly as at-rest damage
// would. Merge emits records before its run's final CRC is validated; a
// late mismatch still fails the member, whose partial fold is discarded.

#ifndef STARSHARE_EXEC_SPILL_H_
#define STARSHARE_EXEC_SPILL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/status.h"

namespace starshare {

// Where spill files live (empty scratch_dir resolves to DefaultScratchDir()
// at SpillFile construction) and which run layout to write.
struct SpillConfig {
  std::string scratch_dir;
  // Bit-pack run keys (EngineConfig::compressed_pages sets this). Either
  // layout merges bit-identically; this only changes scratch-file bytes.
  bool packed_keys = false;
};

// $TMPDIR when set, else /tmp.
std::string DefaultScratchDir();

class SpillFile {
 public:
  // One spill file for one consumer: records carry one packed u64 key and
  // `doubles_per_record` measure values. Nothing touches the filesystem
  // until the first AppendRun.
  SpillFile(const SpillConfig& config, int query_id,
            size_t doubles_per_record);
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  // Appends one run of `rows` records already stable-sorted by key.
  // `values` is row-major, doubles_per_record() per record. Fault site
  // "spill.write" (keyed by the query id).
  Status AppendRun(const uint64_t* keys, const double* values, uint64_t rows);

  // K-way merges every run, calling emit(key, values) once per spilled
  // record in (key, run index, in-run position) order. Read buffers across
  // all runs are bounded by chunk_budget_bytes (floored at one record per
  // run). Each run's CRC(s) are verified as its last chunk drains. Fault
  // site "spill.read" (keyed by the query id).
  Status Merge(uint64_t chunk_budget_bytes,
               const std::function<void(uint64_t, const double*)>& emit);

  size_t num_runs() const { return runs_.size(); }
  uint64_t spilled_rows() const { return spilled_rows_; }
  uint64_t spilled_bytes() const { return spilled_bytes_; }
  bool empty() const { return runs_.empty(); }
  size_t doubles_per_record() const { return doubles_; }
  bool packed_keys() const { return packed_; }
  const std::string& path() const { return path_; }

 private:
  struct RunInfo {
    uint64_t payload_offset = 0;  // first payload byte (after run header)
    uint64_t rows = 0;
    // Packed layout only: per-run key geometry (also persisted in the run
    // header for file self-containedness).
    uint32_t key_bits = 0;
    uint64_t key_ref = 0;
  };

  // Interleaved record size (legacy layout).
  size_t record_size() const { return 8 + 8 * doubles_; }
  // Bytes of one record's values section (packed layout).
  size_t value_size() const { return 8 * doubles_; }
  // Packed key words of a whole run.
  static uint64_t KeyWords(uint64_t rows, uint32_t bits) {
    return (rows * bits + 63) / 64;
  }

  Status AppendRunInterleaved(const uint64_t* keys, const double* values,
                              uint64_t rows);
  Status AppendRunPacked(const uint64_t* keys, const double* values,
                         uint64_t rows);
  Status MergeInterleaved(
      uint64_t chunk_budget_bytes,
      const std::function<void(uint64_t, const double*)>& emit);
  Status MergePacked(
      uint64_t chunk_budget_bytes,
      const std::function<void(uint64_t, const double*)>& emit);
  Status OpenAndSeek(uint64_t offset, const char* what);

  int query_id_;
  size_t doubles_;
  bool packed_;
  std::string path_;
  FILE* file_ = nullptr;
  uint64_t end_offset_ = 0;  // where the next run starts
  std::vector<RunInfo> runs_;
  uint64_t spilled_rows_ = 0;
  uint64_t spilled_bytes_ = 0;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_SPILL_H_
