#include "exec/derived_table.h"

#include <vector>

#include "common/macros.h"

namespace starshare {

std::unique_ptr<Table> MakeDerivedTable(const StarSchema& schema,
                                        const GroupBySpec& spec,
                                        const QueryResult& result,
                                        const std::string& name) {
  const std::vector<size_t> retained = spec.RetainedDims(schema);
  std::vector<std::string> key_names;
  key_names.reserve(retained.size());
  for (const size_t d : retained) key_names.push_back(schema.dim(d).dim_name());
  auto table = std::make_unique<Table>(name, std::move(key_names), "value");
  table->Reserve(result.num_rows());
  for (const QueryResult::Row& row : result.rows()) {
    SS_CHECK(row.keys.size() == retained.size());
    table->AppendRow(row.keys.data(), row.value);
  }
  return table;
}

}  // namespace starshare
