#include "exec/memory_budget.h"

#include "common/fault_injector.h"
#include "common/str_util.h"
#include "obs/metrics.h"

namespace starshare {

Result<MemoryGrant> MemoryBudget::Grant(int query_id,
                                        uint64_t consumers) const {
  static obs::Counter& grants = obs::Metrics().counter("exec.mem.grants");
  static obs::Counter& denials =
      obs::Metrics().counter("exec.mem.grant_denials");
  if (FaultHit("budget.grant", query_id)) {
    denials.Add();
    return Status::ResourceExhausted(
        StrFormat("memory grant denied for q%d", query_id));
  }
  grants.Add();
  if (!bounded()) return MemoryGrant{};
  MemoryGrant grant;
  grant.unbounded = false;
  grant.cap_bytes = consumers == 0 ? total_ : total_ / consumers;
  return grant;
}

}  // namespace starshare
