#include "exec/star_join.h"

#include "common/fault_injector.h"
#include "common/str_util.h"
#include "exec/bound_query.h"
#include "obs/trace.h"

namespace starshare {
namespace {

// Fires the per-query execution fault site, if armed for this query.
Status BindFault(const DimensionalQuery& query) {
  if (FaultHit("exec.bind_query", query.id())) {
    return Status::Internal(
        StrFormat("injected execution fault binding query %d", query.id()));
  }
  return Status::Ok();
}

}  // namespace

std::vector<uint8_t> BuildPassTable(const StarSchema& schema,
                                    const MaterializedView& view,
                                    const DimPredicate& pred) {
  const Hierarchy& h = schema.dim(pred.dim);
  const int stored = view.StoredLevel(pred.dim);
  SS_CHECK_MSG(stored <= pred.level,
               "predicate level %d below stored level %d on %s", pred.level,
               stored, view.name().c_str());
  std::vector<uint8_t> pass(h.cardinality(stored), 0);
  for (int32_t m : pred.MembersAtLevel(h, stored)) {
    pass[static_cast<size_t>(m)] = 1;
  }
  return pass;
}

QueryResult HashStarJoin(const StarSchema& schema,
                         const DimensionalQuery& query,
                         const MaterializedView& view, DiskModel& disk) {
  BoundQuery bound(schema, query, view);

  // "Build hash tables on each dimension table" (restricted dims only; an
  // unrestricted dimension needs no filtering, and its level mapping lives
  // in the BoundQuery).
  struct Filter {
    const KeyColumn* col;
    std::vector<uint8_t> pass;
  };
  std::vector<Filter> filters;
  for (const auto& pred : query.predicate().conjuncts()) {
    const size_t col = view.KeyColForDim(pred.dim);
    SS_CHECK(col != SIZE_MAX);
    filters.push_back(
        Filter{&view.table().key_column(col), BuildPassTable(schema, view, pred)});
  }

  view.table().ScanPages(disk, [&](uint64_t begin, uint64_t end) {
    disk.CountTuples(end - begin);
    for (uint64_t row = begin; row < end; ++row) {
      bool pass = true;
      for (const Filter& f : filters) {
        if (!f.pass[static_cast<size_t>(f.col->Get(row))]) {
          pass = false;
          break;
        }
      }
      disk.CountHashProbes(filters.size());
      if (pass) bound.Accumulate(row);
    }
  });
  return bound.Finish();
}

ResidualFilter::ResidualFilter(
    const StarSchema& schema, const MaterializedView& view,
    const std::vector<const DimPredicate*>& preds) {
  for (const DimPredicate* pred : preds) {
    const size_t col = view.KeyColForDim(pred->dim);
    SS_CHECK(col != SIZE_MAX);
    filters_.push_back(Filter{&view.table().key_column(col),
                              BuildPassTable(schema, view, *pred)});
  }
}

Bitmap BuildResultBitmap(const StarSchema& schema,
                         const DimensionalQuery& query,
                         const MaterializedView& view, DiskModel& disk,
                         std::vector<const DimPredicate*>* residual) {
  Bitmap result;
  bool first = true;
  for (const auto& pred : query.predicate().conjuncts()) {
    // Prefer the index at the predicate's own level (one segment per
    // predicate member); fall back to the stored-level index with the
    // member set expanded to descendants; predicates on unindexed
    // dimensions become residual filters applied per retrieved tuple.
    const BitmapJoinIndex* index = view.IndexOn(pred.dim, pred.level);
    std::vector<int32_t> members = pred.members;
    if (index == nullptr) {
      index = view.IndexOn(pred.dim);
      members = pred.MembersAtLevel(schema.dim(pred.dim),
                                    view.StoredLevel(pred.dim));
    }
    if (index == nullptr) {
      SS_CHECK_MSG(residual != nullptr,
                   "no bitmap index on dim %s of view %s and no residual "
                   "filtering requested",
                   schema.dim(pred.dim).dim_name().c_str(),
                   view.name().c_str());
      residual->push_back(&pred);
      continue;
    }
    Bitmap dim_bitmap = index->Lookup(members, disk);  // ORed per §3.2
    if (first) {
      result = std::move(dim_bitmap);
      first = false;
    } else {
      result.AndWith(dim_bitmap);
    }
  }
  SS_CHECK_MSG(!first,
               "index star join requires >= 1 indexed restricted dimension");
  return result;
}

QueryResult IndexStarJoin(const StarSchema& schema,
                          const DimensionalQuery& query,
                          const MaterializedView& view, DiskModel& disk) {
  BoundQuery bound(schema, query, view);
  std::vector<const DimPredicate*> residual_preds;
  const Bitmap result =
      BuildResultBitmap(schema, query, view, disk, &residual_preds);
  const ResidualFilter residual(schema, view, residual_preds);
  const std::vector<uint64_t> positions = result.ToPositions();
  view.table().ProbePositions(disk, positions, [&](uint64_t row) {
    if (residual.Matches(row)) bound.Accumulate(row);
  });
  disk.CountTuples(positions.size());
  return bound.Finish();
}

Result<QueryResult> TryHashStarJoin(const StarSchema& schema,
                                    const DimensionalQuery& query,
                                    const MaterializedView& view,
                                    DiskModel& disk) {
  obs::ScopedSpan span("exec.hash_join", view.name(), query.id());
  Status bind = BindFault(query);
  if (!bind.ok()) {
    span.SetStatus(bind);
    return bind;
  }
  disk.TakeFault();  // discard faults latched by earlier, unrelated work
  QueryResult result = HashStarJoin(schema, query, view, disk);
  Status fault = disk.TakeFault();
  if (!fault.ok()) {
    span.SetStatus(fault);
    return fault;
  }
  span.AddRows(result.num_rows());
  return result;
}

Result<QueryResult> TryIndexStarJoin(const StarSchema& schema,
                                     const DimensionalQuery& query,
                                     const MaterializedView& view,
                                     DiskModel& disk) {
  obs::ScopedSpan span("exec.index_join", view.name(), query.id());
  Status bind = BindFault(query);
  if (!bind.ok()) {
    span.SetStatus(bind);
    return bind;
  }
  disk.TakeFault();
  QueryResult result = IndexStarJoin(schema, query, view, disk);
  Status fault = disk.TakeFault();
  if (!fault.ok()) {
    span.SetStatus(fault);
    return fault;
  }
  span.AddRows(result.num_rows());
  return result;
}

}  // namespace starshare
