// Dense translation arrays: the vectorized engine's replacement for the
// per-tuple "dimension hash table" probes of the paper's plans.
//
// Stored member ids are small contiguous ints, so for each retained
// dimension of a group-by target the whole map
//
//   stored member id -> (member id at the target level) << field shift
//
// is precomputed into one flat array of pre-shifted key bits. Packing a
// row's group key is then one load per retained dimension ORed together —
// no per-row MapUp walk, no shift, no range check. The produced keys are
// bit-identical to KeyPacker::Pack over MapUp'd members (PackField is the
// single source of the field layout).

#ifndef STARSHARE_EXEC_DIM_TRANSLATOR_H_
#define STARSHARE_EXEC_DIM_TRANSLATOR_H_

#include <cstdint>
#include <vector>

#include "cube/materialized_view.h"
#include "exec/key_packer.h"
#include "schema/groupby_spec.h"
#include "schema/star_schema.h"

namespace starshare {

class DimTranslator {
 public:
  DimTranslator() = default;

  // Builds one translation array per retained dimension of `target`, from
  // the stored level of `view` up to the target's level. `packer` supplies
  // the key layout and must have been built for the same target.
  DimTranslator(const StarSchema& schema, const GroupBySpec& target,
                const MaterializedView& view, const KeyPacker& packer);

  size_t num_lanes() const { return lanes_.size(); }

  // Packed group key of one row.
  uint64_t PackRow(uint64_t row) const {
    uint64_t key = 0;
    for (const Lane& lane : lanes_) {
      key |= lane.keybits[static_cast<size_t>(lane.col->Get(row))];
    }
    return key;
  }

  // Packed keys of the contiguous rows [base, base + n), column-at-a-time:
  // out[i] is the key of row base + i.
  void PackRange(uint64_t base, size_t n, uint64_t* out) const;

  // Packed keys of `n` gathered row positions (a selection vector):
  // out[i] is the key of rows[i].
  void PackRows(const uint64_t* rows, size_t n, uint64_t* out) const;

 private:
  struct Lane {
    const KeyColumn* col;           // view key column of the dimension
    std::vector<uint64_t> keybits;  // stored member -> pre-shifted bits
  };
  std::vector<Lane> lanes_;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_DIM_TRANSLATOR_H_
