// Hash-based aggregation (the final operator of every star-join plan,
// paper Fig. 1). Accumulates packed group keys -> running aggregate and
// emits a canonical QueryResult.

#ifndef STARSHARE_EXEC_HASH_AGGREGATOR_H_
#define STARSHARE_EXEC_HASH_AGGREGATOR_H_

#include <cstdint>

#include "exec/flat_hash.h"
#include "exec/key_packer.h"
#include "query/query.h"
#include "query/result.h"

namespace starshare {

class HashAggregator {
 public:
  HashAggregator(const StarSchema& schema, const GroupBySpec& target,
                 AggOp op, size_t expected_groups = 64);

  const KeyPacker& packer() const { return packer_; }

  // Adds one input tuple to group `packed_key`.
  void Add(uint64_t packed_key, double value) {
    Accum& a = groups_.FindOrInsert(packed_key);
    switch (op_) {
      case AggOp::kSum:
      case AggOp::kAvg:
        a.agg += value;
        break;
      case AggOp::kCount:
        break;  // count tracked below
      case AggOp::kMin:
        a.agg = (a.count == 0 || value < a.agg) ? value : a.agg;
        break;
      case AggOp::kMax:
        a.agg = (a.count == 0 || value > a.agg) ? value : a.agg;
        break;
    }
    ++a.count;
  }

  // Batch form of Add: equivalent to Add(keys[i], values[i]) for i in
  // [0, n) in order (so the fold is bit-identical), but with the AggOp
  // dispatch hoisted out of the inner loop via template specialization.
  void AddBatch(const uint64_t* keys, const double* values, size_t n) {
    switch (op_) {
      case AggOp::kSum:
      case AggOp::kAvg:
        AddBatchImpl<AggOp::kSum>(keys, values, n);
        break;
      case AggOp::kCount:
        AddBatchImpl<AggOp::kCount>(keys, values, n);
        break;
      case AggOp::kMin:
        AddBatchImpl<AggOp::kMin>(keys, values, n);
        break;
      case AggOp::kMax:
        AddBatchImpl<AggOp::kMax>(keys, values, n);
        break;
    }
  }

  size_t num_groups() const { return groups_.size(); }

  // Resident bytes of the group table (per-node memory accounting).
  uint64_t MemoryBytes() const { return groups_.MemoryBytes(); }

  // Finalizes into a canonically sorted QueryResult.
  QueryResult Finish() const;

  // Iterates raw (packed key, sum, count) — used by the view builder.
  template <typename Fn>
  void ForEachRaw(Fn&& fn) const {
    groups_.ForEach([&fn](uint64_t key, const Accum& a) {
      fn(key, a.agg, a.count);
    });
  }

 private:
  struct Accum {
    double agg = 0;
    uint64_t count = 0;
  };

  template <AggOp kOp>
  void AddBatchImpl(const uint64_t* keys, const double* values, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      Accum& a = groups_.FindOrInsert(keys[i]);
      if constexpr (kOp == AggOp::kSum) {  // also kAvg: same accumulation
        a.agg += values[i];
      } else if constexpr (kOp == AggOp::kMin) {
        a.agg = (a.count == 0 || values[i] < a.agg) ? values[i] : a.agg;
      } else if constexpr (kOp == AggOp::kMax) {
        a.agg = (a.count == 0 || values[i] > a.agg) ? values[i] : a.agg;
      }
      ++a.count;
    }
  }

  GroupBySpec target_;
  AggOp op_;
  KeyPacker packer_;
  FlatHashMap<Accum> groups_;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_HASH_AGGREGATOR_H_
