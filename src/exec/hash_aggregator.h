// Hash-based aggregation (the final operator of every star-join plan,
// paper Fig. 1). Accumulates packed group keys -> running aggregate and
// emits a canonical QueryResult.

#ifndef STARSHARE_EXEC_HASH_AGGREGATOR_H_
#define STARSHARE_EXEC_HASH_AGGREGATOR_H_

#include <cstdint>

#include "exec/flat_hash.h"
#include "exec/key_packer.h"
#include "query/query.h"
#include "query/result.h"

namespace starshare {

class HashAggregator {
 public:
  HashAggregator(const StarSchema& schema, const GroupBySpec& target,
                 AggOp op, size_t expected_groups = 64);

  const KeyPacker& packer() const { return packer_; }

  // Adds one input tuple to group `packed_key`.
  void Add(uint64_t packed_key, double value) {
    Accum& a = groups_.FindOrInsert(packed_key);
    switch (op_) {
      case AggOp::kSum:
      case AggOp::kAvg:
        a.agg += value;
        break;
      case AggOp::kCount:
        break;  // count tracked below
      case AggOp::kMin:
        a.agg = (a.count == 0 || value < a.agg) ? value : a.agg;
        break;
      case AggOp::kMax:
        a.agg = (a.count == 0 || value > a.agg) ? value : a.agg;
        break;
    }
    ++a.count;
  }

  size_t num_groups() const { return groups_.size(); }

  // Finalizes into a canonically sorted QueryResult.
  QueryResult Finish() const;

  // Iterates raw (packed key, sum, count) — used by the view builder.
  template <typename Fn>
  void ForEachRaw(Fn&& fn) const {
    groups_.ForEach([&fn](uint64_t key, const Accum& a) {
      fn(key, a.agg, a.count);
    });
  }

 private:
  struct Accum {
    double agg = 0;
    uint64_t count = 0;
  };

  GroupBySpec target_;
  AggOp op_;
  KeyPacker packer_;
  FlatHashMap<Accum> groups_;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_HASH_AGGREGATOR_H_
