// Internals shared by the serial (shared_operators.cc) and morsel-parallel
// (parallel_operators.cc) implementations of the §3 shared operators. Not
// part of the public operator API.

#ifndef STARSHARE_EXEC_SHARED_STAR_JOIN_INTERNAL_H_
#define STARSHARE_EXEC_SHARED_STAR_JOIN_INTERNAL_H_

#include <vector>

#include "common/status.h"
#include "cube/materialized_view.h"
#include "exec/bound_query.h"
#include "exec/star_join.h"
#include "exec/vector_batch.h"
#include "index/bitmap.h"
#include "query/query.h"
#include "storage/disk_model.h"

namespace starshare {
namespace internal {

// One shared dimension filter: a pass mask per stored member, bit q set iff
// hash query q accepts that member (queries that do not restrict the
// dimension accept everything). This is the shared dimension hash table of
// Fig. 2 carrying per-query predicate flags. Read-only once built, so
// parallel workers share one copy.
struct SharedDimFilter {
  const std::vector<int32_t>* col;
  std::vector<uint32_t> masks;
};

// Builds the filters for up to kMaxClassQueries hash queries (callers have
// already rejected larger classes with a Status).
std::vector<SharedDimFilter> BuildSharedFilters(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view);

// Mask with one bit per query in [0, n).
inline uint32_t AllQueriesMask(size_t n) {
  return n == 0 ? 0 : static_cast<uint32_t>((uint64_t{1} << n) - 1);
}

// Fires the per-member execution fault sites, if armed for this query.
Status MemberBindFault(const DimensionalQuery& query);

// Builds the candidate bitmap for one index member, attributing any fault
// during its (private) index I/O to that member alone.
Status BuildMemberBitmap(const StarSchema& schema,
                         const DimensionalQuery& query,
                         const MaterializedView& view, DiskModel& disk,
                         Bitmap* bitmap,
                         std::vector<const DimPredicate*>* residual);

// ---------------------------------------------------------------------------
// Vectorized batch kernels (DESIGN.md "Vectorized execution model"). Shared
// by the serial (shared_operators.cc) and morsel-parallel
// (parallel_operators.cc) operators so both paths compute the exact same
// per-query match streams — ascending row order within a batch, batches in
// ascending row order — and therefore the exact same aggregation fold as
// tuple-at-a-time execution.

// One query's matches from one batch: parallel (packed key, measure value)
// arrays, ascending row order.
struct QueryMatchBatch {
  std::vector<uint64_t> keys;
  std::vector<double> values;

  void Clear() {
    keys.clear();
    values.clear();
  }
  size_t size() const { return keys.size(); }
};

// Batch kernel for one shared scan pass over a class (hash members first,
// then index members, matching the `bound` layout). Per batch it evaluates
// every shared dimension filter column-at-a-time into per-row pass masks,
// turns each hash member's mask bit into a selection vector, slices each
// index member's candidate bitmap word-at-a-time (ctz), applies residual
// predicates, and emits per-query matches through the members' dense
// translation arrays. Owns the batch scratch: one instance per executing
// thread.
class SharedScanKernel {
 public:
  SharedScanKernel(const std::vector<SharedDimFilter>& filters,
                   uint32_t all_mask, const std::vector<BoundQuery>& bound,
                   size_t n_hash, const std::vector<Bitmap>& index_bitmaps,
                   const std::vector<ResidualFilter>& index_residuals)
      : filters_(filters),
        all_mask_(all_mask),
        bound_(bound),
        n_hash_(n_hash),
        index_bitmaps_(index_bitmaps),
        index_residuals_(index_residuals) {}

  // Processes the contiguous rows [begin, end). `out` must hold one entry
  // per bound query; every entry is cleared and refilled.
  void ProcessBatch(uint64_t begin, uint64_t end,
                    std::vector<QueryMatchBatch>& out);

 private:
  // Packs keys and gathers measures for the rows in sel_ into `out`.
  void EmitSelected(const BoundQuery& bound, QueryMatchBatch& out);

  const std::vector<SharedDimFilter>& filters_;
  uint32_t all_mask_;
  const std::vector<BoundQuery>& bound_;
  size_t n_hash_;
  const std::vector<Bitmap>& index_bitmaps_;
  const std::vector<ResidualFilter>& index_residuals_;

  std::vector<uint32_t> masks_;  // per-row pass masks of the current batch
  std::vector<uint64_t> sel_;    // selection vector (absolute row ids)
};

// Streams one index member's candidate rows in [row_begin, row_end) —
// its bitmap sliced word-at-a-time, residual-filtered — through
// `sink(keys, values, n)` in ascending row order, batch-at-a-time. Used by
// the shared index operator, where each member filters the shared probe
// stream through its own bitmap.
template <typename Sink>
void ForEachIndexMemberBatch(const Bitmap& bitmap, uint64_t row_begin,
                             uint64_t row_end,
                             const ResidualFilter& residual,
                             const BoundQuery& bound, size_t batch_rows,
                             Sink&& sink) {
  if (batch_rows == 0) batch_rows = kDefaultBatchRows;
  std::vector<uint64_t> rows;
  rows.reserve(batch_rows);
  std::vector<uint64_t> keys;
  std::vector<double> values;
  const auto flush = [&] {
    if (rows.empty()) return;
    if (!residual.empty()) {
      size_t kept = 0;
      for (const uint64_t row : rows) {
        if (residual.Matches(row)) rows[kept++] = row;
      }
      rows.resize(kept);
      if (rows.empty()) return;
    }
    keys.resize(rows.size());
    values.resize(rows.size());
    bound.translator().PackRows(rows.data(), rows.size(), keys.data());
    const double* measures = bound.measure_data();
    for (size_t i = 0; i < rows.size(); ++i) values[i] = measures[rows[i]];
    sink(keys.data(), values.data(), keys.size());
    rows.clear();
  };
  bitmap.ForEachSetBitInRange(row_begin, row_end, [&](uint64_t row) {
    rows.push_back(row);
    if (rows.size() == batch_rows) flush();
  });
  flush();
}

}  // namespace internal
}  // namespace starshare

#endif  // STARSHARE_EXEC_SHARED_STAR_JOIN_INTERNAL_H_
