// Internals shared by the §3 class pipeline (exec/operators/) and its
// operator-level entry points (shared_operators.cc). Not part of the public
// operator API.

#ifndef STARSHARE_EXEC_SHARED_STAR_JOIN_INTERNAL_H_
#define STARSHARE_EXEC_SHARED_STAR_JOIN_INTERNAL_H_

#include <vector>

#include "common/status.h"
#include "cube/materialized_view.h"
#include "exec/star_join.h"
#include "index/bitmap.h"
#include "query/query.h"
#include "storage/disk_model.h"

namespace starshare {
namespace internal {

// One shared dimension filter: a pass mask per stored member, bit q set iff
// hash query q accepts that member (queries that do not restrict the
// dimension accept everything). This is the shared dimension hash table of
// Fig. 2 carrying per-query predicate flags. Read-only once built, so
// parallel workers share one copy.
struct SharedDimFilter {
  const KeyColumn* col;
  std::vector<uint32_t> masks;
};

// Builds the filters for up to kMaxClassQueries hash queries (callers have
// already rejected larger classes with a Status).
std::vector<SharedDimFilter> BuildSharedFilters(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view);

// Mask with one bit per query in [0, n).
inline uint32_t AllQueriesMask(size_t n) {
  return n == 0 ? 0 : static_cast<uint32_t>((uint64_t{1} << n) - 1);
}

// Fires the per-member execution fault sites, if armed for this query.
Status MemberBindFault(const DimensionalQuery& query);

// Builds the candidate bitmap for one index member, attributing any fault
// during its (private) index I/O to that member alone.
Status BuildMemberBitmap(const StarSchema& schema,
                         const DimensionalQuery& query,
                         const MaterializedView& view, DiskModel& disk,
                         Bitmap* bitmap,
                         std::vector<const DimPredicate*>* residual);

}  // namespace internal
}  // namespace starshare

#endif  // STARSHARE_EXEC_SHARED_STAR_JOIN_INTERNAL_H_
