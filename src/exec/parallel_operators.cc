#include "exec/parallel_operators.h"

#include <algorithm>
#include <span>
#include <utility>

#include "common/str_util.h"
#include "exec/bound_query.h"
#include "exec/shared_star_join_internal.h"
#include "exec/star_join.h"
#include "index/bitmap.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/morsel.h"
#include "parallel/morsel_pipeline.h"
#include "parallel/parallel_context.h"

namespace starshare {
namespace {

using internal::AllQueriesMask;
using internal::BuildMemberBitmap;
using internal::BuildSharedFilters;
using internal::MemberBindFault;
using internal::QueryMatchBatch;
using internal::SharedDimFilter;
using internal::SharedScanKernel;

// Matches one morsel produced for the live queries of a shared pass:
// parallel (packed key, measure) streams, one per live query, each in
// ascending row order. Concatenating buffers in morsel order therefore
// replays the serial operator's exact aggregation sequence per query.
struct MatchBuffer {
  std::vector<std::vector<uint64_t>> keys;
  std::vector<std::vector<double>> values;

  void InitSlots(size_t n) {
    keys.resize(n);
    values.resize(n);
  }
  void Push(size_t slot, uint64_t key, double value) {
    keys[slot].push_back(key);
    values[slot].push_back(value);
  }
  void Append(size_t slot, const uint64_t* k, const double* v, size_t n) {
    keys[slot].insert(keys[slot].end(), k, k + n);
    values[slot].insert(values[slot].end(), v, v + n);
  }
};

size_t EffectiveWorkers(const ParallelPolicy& policy) {
  if (!policy.engaged()) return 1;
  return std::min(policy.parallelism, policy.pool->num_threads());
}

uint64_t MorselRowsFor(const ParallelPolicy& policy, uint64_t num_rows,
                       uint64_t rows_per_page, size_t workers) {
  if (policy.morsel_rows > 0) return policy.morsel_rows;
  return MorselDispatcher::DefaultMorselRows(num_rows, rows_per_page,
                                             workers);
}

// Feeds one morsel's buffer to the live queries' aggregators, in slot
// order. Per-aggregator order is all that matters for bit-identity: each
// query's stream is row-ascending within the morsel, and the batch fold is
// element-wise identical to per-tuple Add.
void MergeBuffer(const MatchBuffer& buffer, std::vector<BoundQuery>& bound) {
  for (size_t slot = 0; slot < bound.size(); ++slot) {
    bound[slot].AccumulateRawBatch(buffer.keys[slot].data(),
                                   buffer.values[slot].data(),
                                   buffer.keys[slot].size());
  }
}

}  // namespace

Result<SharedOutcome> ParallelSharedHybridStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& hash_queries,
    const std::vector<const DimensionalQuery*>& index_queries,
    const MaterializedView& view, DiskModel& disk,
    const ParallelPolicy& policy) {
  if (hash_queries.empty() && index_queries.empty()) {
    return Status::InvalidArgument("shared hybrid star join with no queries");
  }
  if (hash_queries.size() > kMaxClassQueries) {
    return Status::InvalidArgument(StrFormat(
        "shared hybrid star join: %zu hash members exceed the class limit "
        "of %zu",
        hash_queries.size(), kMaxClassQueries));
  }
  const size_t n_hash = hash_queries.size();
  SharedOutcome out;
  out.results.resize(n_hash + index_queries.size());
  out.statuses.resize(n_hash + index_queries.size());

  disk.TakeFault();  // discard faults latched by earlier, unrelated work

  // Per-member private phases run on the calling thread, exactly as in the
  // serial operator: faults here are attributed to one member and charged
  // to the parent DiskModel.
  std::vector<const DimensionalQuery*> live_hash;
  std::vector<size_t> live_hash_slots;
  for (size_t i = 0; i < hash_queries.size(); ++i) {
    Status s = MemberBindFault(*hash_queries[i]);
    if (!s.ok()) {
      out.statuses[i] = std::move(s);
      continue;
    }
    live_hash.push_back(hash_queries[i]);
    live_hash_slots.push_back(i);
  }

  std::vector<const DimensionalQuery*> live_index;
  std::vector<size_t> live_index_slots;
  std::vector<Bitmap> index_bitmaps;
  std::vector<std::vector<const DimPredicate*>> index_residual_preds;
  for (size_t i = 0; i < index_queries.size(); ++i) {
    const size_t slot = n_hash + i;
    Status s = MemberBindFault(*index_queries[i]);
    if (s.ok()) {
      Bitmap bitmap;
      std::vector<const DimPredicate*> residual;
      s = BuildMemberBitmap(schema, *index_queries[i], view, disk, &bitmap,
                            &residual);
      if (s.ok()) {
        live_index.push_back(index_queries[i]);
        live_index_slots.push_back(slot);
        index_bitmaps.push_back(std::move(bitmap));
        index_residual_preds.push_back(std::move(residual));
        continue;
      }
    }
    out.statuses[slot] = std::move(s);
  }

  if (live_hash.empty() && live_index.empty()) return out;  // nothing left

  std::vector<BoundQuery> bound;  // live hash members, then live index
  bound.reserve(live_hash.size() + live_index.size());
  for (const auto* q : live_hash) bound.emplace_back(schema, *q, view);
  std::vector<ResidualFilter> index_residuals;
  index_residuals.reserve(live_index.size());
  for (size_t i = 0; i < live_index.size(); ++i) {
    bound.emplace_back(schema, *live_index[i], view);
    index_residuals.emplace_back(schema, view, index_residual_preds[i]);
  }

  const std::vector<SharedDimFilter> filters =
      BuildSharedFilters(schema, live_hash, view);
  const uint32_t all_mask = AllQueriesMask(live_hash.size());
  const size_t n_live_hash = live_hash.size();
  const size_t n_live = bound.size();

  // Same span site as the serial operator. It is opened on the calling
  // thread (workers never have a tracer bound) and stays open across
  // ctx.MergeIntoParent(), so its I/O delta covers the merged worker
  // counters — exactly the serial scan's counts, by the PR 2/3 guarantee.
  static obs::Counter& scan_passes = obs::Metrics().counter("exec.scan_passes");
  scan_passes.Add();
  obs::ScopedSpan scan_span("exec.shared_scan");
  scan_span.AddRows(view.table().num_rows());
  scan_span.AddCounter("members", bound.size());

  const Table& table = view.table();
  const size_t workers = EffectiveWorkers(policy);
  const uint64_t morsel_rows = MorselRowsFor(
      policy, table.num_rows(), table.rows_per_page(), workers);
  MorselDispatcher dispatcher(table.num_rows(), morsel_rows,
                              /*window=*/4 * workers);
  ParallelContext ctx(disk, workers);

  RunMorselPipeline<MatchBuffer>(
      policy.engaged() ? policy.pool : nullptr, workers, dispatcher, ctx,
      [&](const Morsel& morsel, DiskModel& wdisk, MatchBuffer& buffer) {
        buffer.InitSlots(n_live);
        if (policy.batch.vectorized) {
          // Same batch kernel as the serial operator, one instance (and
          // scratch) per morsel. Morsels are contiguous row ranges, so the
          // per-query streams stay row-ascending.
          SharedScanKernel kernel(filters, all_mask, bound, n_live_hash,
                                  index_bitmaps, index_residuals);
          std::vector<QueryMatchBatch> matches(n_live);
          RowBatcher batcher(
              policy.batch.EffectiveBatchRows(),
              [&](uint64_t b, uint64_t e) {
                kernel.ProcessBatch(b, e, matches);
                for (size_t qi = 0; qi < n_live; ++qi) {
                  buffer.Append(qi, matches[qi].keys.data(),
                                matches[qi].values.data(),
                                matches[qi].size());
                }
              });
          table.ScanRowRange(wdisk, morsel.begin, morsel.end,
                             [&](uint64_t begin, uint64_t end) {
                               wdisk.CountTuples(end - begin);
                               wdisk.CountHashProbes((end - begin) *
                                                     filters.size());
                               batcher.AddRange(begin, end);
                             });
          batcher.Finish();
          return;
        }
        table.ScanRowRange(
            wdisk, morsel.begin, morsel.end,
            [&](uint64_t begin, uint64_t end) {
              wdisk.CountTuples(end - begin);
              wdisk.CountHashProbes((end - begin) * filters.size());
              for (uint64_t row = begin; row < end; ++row) {
                uint32_t mask = all_mask;
                for (const SharedDimFilter& f : filters) {
                  mask &= f.masks[static_cast<size_t>((*f.col)[row])];
                  if (mask == 0) break;
                }
                while (mask != 0) {
                  const size_t qi =
                      static_cast<size_t>(__builtin_ctz(mask));
                  buffer.Push(qi, bound[qi].PackedKeyAt(row),
                              bound[qi].MeasureAt(row));
                  mask &= mask - 1;
                }
                for (size_t i = 0; i < live_index.size(); ++i) {
                  const size_t qi = n_live_hash + i;
                  if (index_bitmaps[i].Test(row) &&
                      index_residuals[i].Matches(row)) {
                    buffer.Push(qi, bound[qi].PackedKeyAt(row),
                                bound[qi].MeasureAt(row));
                  }
                }
              }
            });
      },
      [&](const Morsel&, const MatchBuffer& buffer) {
        scan_span.AddBatches(1);  // one tally per merged morsel
        MergeBuffer(buffer, bound);
      });
  ctx.MergeIntoParent();

  // A device fault during the shared scan takes down every member that
  // depended on it — but only those; members failed above keep their own
  // (more precise) statuses.
  const Status scan_fault = disk.TakeFault();
  if (!scan_fault.ok()) {
    for (size_t slot : live_hash_slots) out.statuses[slot] = scan_fault;
    for (size_t slot : live_index_slots) out.statuses[slot] = scan_fault;
    return out;
  }

  for (size_t i = 0; i < live_hash_slots.size(); ++i) {
    out.results[live_hash_slots[i]] = bound[i].Finish();
  }
  for (size_t i = 0; i < live_index_slots.size(); ++i) {
    out.results[live_index_slots[i]] = bound[n_live_hash + i].Finish();
  }
  return out;
}

Result<SharedOutcome> ParallelSharedScanStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk,
    const ParallelPolicy& policy) {
  return ParallelSharedHybridStarJoin(schema, queries, {}, view, disk,
                                      policy);
}

Result<SharedOutcome> ParallelSharedIndexStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk,
    const ParallelPolicy& policy) {
  if (queries.empty()) {
    return Status::InvalidArgument("shared index star join with no queries");
  }
  if (queries.size() > kMaxClassQueries) {
    return Status::InvalidArgument(
        StrFormat("shared index star join: %zu members exceed the class "
                  "limit of %zu",
                  queries.size(), kMaxClassQueries));
  }
  SharedOutcome out;
  out.results.resize(queries.size());
  out.statuses.resize(queries.size());

  disk.TakeFault();

  std::vector<size_t> live_slots;
  std::vector<BoundQuery> bound;
  std::vector<Bitmap> bitmaps;
  std::vector<ResidualFilter> residuals;
  for (size_t i = 0; i < queries.size(); ++i) {
    Status s = MemberBindFault(*queries[i]);
    if (s.ok()) {
      Bitmap bitmap;
      std::vector<const DimPredicate*> residual;
      s = BuildMemberBitmap(schema, *queries[i], view, disk, &bitmap,
                            &residual);
      if (s.ok()) {
        live_slots.push_back(i);
        bound.emplace_back(schema, *queries[i], view);
        bitmaps.push_back(std::move(bitmap));
        residuals.emplace_back(schema, view, residual);
        continue;
      }
    }
    out.statuses[i] = std::move(s);
  }
  if (live_slots.empty()) return out;

  // Step 1 of §3.2's shared operator: OR the per-query result bitmaps.
  Bitmap unioned = bitmaps[0];
  for (size_t i = 1; i < bitmaps.size(); ++i) unioned.OrWith(bitmaps[i]);
  const std::vector<uint64_t> positions = unioned.ToPositions();

  // Same span site as the serial operator; closes after MergeIntoParent so
  // the merged worker I/O lands in its delta.
  static obs::Counter& probe_passes =
      obs::Metrics().counter("exec.probe_passes");
  probe_passes.Add();
  obs::ScopedSpan probe_span("exec.shared_probe");
  probe_span.AddRows(positions.size());
  probe_span.AddCounter("members", bound.size());

  // Steps 2–4, morsel-parallel: the positions array is split into ranges
  // whose effective boundaries are snapped forward to page changes, so no
  // page is probed (or charged) by two workers and the union of effective
  // ranges covers every position exactly once.
  const Table& table = view.table();
  const uint64_t rpp = table.rows_per_page();
  const auto effective_begin = [&](uint64_t i) {
    while (i > 0 && i < positions.size() &&
           positions[i] / rpp == positions[i - 1] / rpp) {
      ++i;
    }
    return i;
  };

  const size_t workers = EffectiveWorkers(policy);
  uint64_t chunk = policy.morsel_rows;
  if (chunk == 0) {
    chunk = std::max<uint64_t>(
        rpp, positions.size() /
                 std::max<uint64_t>(
                     1, workers * MorselDispatcher::kMorselsPerWorker));
  }
  MorselDispatcher dispatcher(positions.size(), chunk,
                              /*window=*/4 * workers);
  ParallelContext ctx(disk, workers);

  RunMorselPipeline<MatchBuffer>(
      policy.engaged() ? policy.pool : nullptr, workers, dispatcher, ctx,
      [&](const Morsel& morsel, DiskModel& wdisk, MatchBuffer& buffer) {
        buffer.InitSlots(bound.size());
        const uint64_t begin = effective_begin(morsel.begin);
        const uint64_t end = effective_begin(morsel.end);
        if (begin >= end) return;
        if (policy.batch.vectorized) {
          // Charge the probe exactly as the tuple path (one random read per
          // distinct page in the sub-range), then route tuples per member
          // by slicing its own bitmap over the sub-range's row span — the
          // member's set rows there are exactly the probed rows it passes.
          table.ProbePositions(
              wdisk,
              std::span<const uint64_t>(positions).subspan(begin,
                                                           end - begin),
              [](uint64_t) {});
          wdisk.CountTuples(end - begin);
          const uint64_t row_begin = positions[begin];
          const uint64_t row_end = positions[end - 1] + 1;
          for (size_t qi = 0; qi < bound.size(); ++qi) {
            internal::ForEachIndexMemberBatch(
                bitmaps[qi], row_begin, row_end, residuals[qi], bound[qi],
                policy.batch.EffectiveBatchRows(),
                [&](const uint64_t* keys, const double* values, size_t n) {
                  buffer.Append(qi, keys, values, n);
                });
          }
          return;
        }
        table.ProbePositions(
            wdisk,
            std::span<const uint64_t>(positions).subspan(begin, end - begin),
            [&](uint64_t row) {
              for (size_t qi = 0; qi < bound.size(); ++qi) {
                if (bitmaps[qi].Test(row) && residuals[qi].Matches(row)) {
                  buffer.Push(qi, bound[qi].PackedKeyAt(row),
                              bound[qi].MeasureAt(row));
                }
              }
            });
        wdisk.CountTuples(end - begin);
      },
      [&](const Morsel&, const MatchBuffer& buffer) {
        probe_span.AddBatches(1);  // one tally per merged morsel
        MergeBuffer(buffer, bound);
      });
  ctx.MergeIntoParent();

  const Status probe_fault = disk.TakeFault();
  if (!probe_fault.ok()) {
    for (size_t slot : live_slots) out.statuses[slot] = probe_fault;
    return out;
  }
  for (size_t i = 0; i < live_slots.size(); ++i) {
    out.results[live_slots[i]] = bound[i].Finish();
  }
  return out;
}

}  // namespace starshare
