#include "exec/parallel_operators.h"

#include "exec/operators/class_pipeline.h"

// The morsel-parallel operator entry points are the same unified class
// pipeline as the serial ones — parallelism is a property of the pipeline
// driver, selected by the policy, not a separate implementation. These
// shells exist for callers (and tests) that address the parallel variants
// directly.

namespace starshare {

Result<SharedOutcome> ParallelSharedHybridStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& hash_queries,
    const std::vector<const DimensionalQuery*>& index_queries,
    const MaterializedView& view, DiskModel& disk,
    const ParallelPolicy& policy) {
  SharedClassRequest req;
  req.schema = &schema;
  req.hash_queries = hash_queries;
  req.index_queries = index_queries;
  req.view = &view;
  req.disk = &disk;
  req.policy = policy;
  req.probe = false;
  return ExecuteSharedClass(req);
}

Result<SharedOutcome> ParallelSharedScanStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk,
    const ParallelPolicy& policy) {
  return ParallelSharedHybridStarJoin(schema, queries, {}, view, disk,
                                      policy);
}

Result<SharedOutcome> ParallelSharedIndexStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk,
    const ParallelPolicy& policy) {
  SharedClassRequest req;
  req.schema = &schema;
  req.index_queries = queries;
  req.view = &view;
  req.disk = &disk;
  req.policy = policy;
  req.probe = true;
  return ExecuteSharedClass(req);
}

}  // namespace starshare
