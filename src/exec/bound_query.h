// BoundQuery: one dimensional query bound to the view it is evaluated from.
// Precomputes, per retained target dimension, the view column to read and a
// dense stored-level -> target-level mapping array (the "dimension hash
// table" of the paper's plans, realized as a perfect-hash array because
// member ids are dense), plus the aggregation hash table. Every star-join
// operator — single or shared — funnels matching tuples through
// Accumulate().

#ifndef STARSHARE_EXEC_BOUND_QUERY_H_
#define STARSHARE_EXEC_BOUND_QUERY_H_

#include <vector>

#include "cube/materialized_view.h"
#include "exec/hash_aggregator.h"
#include "query/query.h"
#include "query/result.h"

namespace starshare {

class BoundQuery {
 public:
  BoundQuery(const StarSchema& schema, const DimensionalQuery& query,
             const MaterializedView& view)
      : query_(&query),
        agg_(schema, query.target(), query.agg(),
             std::min<uint64_t>(query.EstimatedGroups(schema),
                                view.table().num_rows())),
        measures_(&view.table().measure_column(query.measure())) {
    SS_CHECK_MSG(view.spec().CanAnswer(query.RequiredSpec(schema)),
                 "view %s cannot answer query Q%d", view.name().c_str(),
                 query.id());
    SS_CHECK_MSG(query.measure() < view.table().num_measures(),
                 "query Q%d aggregates measure %zu but view %s has %zu",
                 query.id(), query.measure(), view.name().c_str(),
                 view.table().num_measures());
    const auto retained = query.target().RetainedDims(schema);
    for (size_t d : retained) {
      const size_t col = view.KeyColForDim(d);
      SS_CHECK(col != SIZE_MAX);
      cols_.push_back(&view.table().key_column(col));
      const Hierarchy& h = schema.dim(d);
      const int from = view.StoredLevel(d);
      const int to = query.target().level(d);
      std::vector<int32_t> map(h.cardinality(from));
      for (uint32_t m = 0; m < map.size(); ++m) {
        map[m] = h.MapUp(from, to, static_cast<int32_t>(m));
      }
      maps_.push_back(std::move(map));
    }
    scratch_.resize(retained.size());
  }

  BoundQuery(const BoundQuery&) = delete;
  BoundQuery& operator=(const BoundQuery&) = delete;
  BoundQuery(BoundQuery&&) = default;

  const DimensionalQuery& query() const { return *query_; }

  // Adds view row `row` (already known to pass the query's selection) to
  // the aggregation, reading the query's own measure column.
  void Accumulate(uint64_t row) {
    agg_.Add(PackedKeyAt(row, scratch_), MeasureAt(row));
  }

  // The split form of Accumulate used by morsel-parallel workers: the
  // read-only half (map the row's keys up to the target levels and pack
  // them) runs concurrently with a caller-supplied scratch buffer of
  // num_retained() entries; the mutating half (AccumulateRaw) runs only on
  // the merging thread, in serial row order, so the aggregation folds
  // bit-identically to the serial operator.
  uint64_t PackedKeyAt(uint64_t row, std::vector<int32_t>& scratch) const {
    for (size_t i = 0; i < cols_.size(); ++i) {
      scratch[i] = maps_[i][(*cols_[i])[row]];
    }
    return agg_.packer().Pack(scratch.data());
  }
  double MeasureAt(uint64_t row) const { return (*measures_)[row]; }
  void AccumulateRaw(uint64_t packed_key, double value) {
    agg_.Add(packed_key, value);
  }

  size_t num_retained() const { return cols_.size(); }

  QueryResult Finish() const { return agg_.Finish(); }

 private:
  const DimensionalQuery* query_;
  HashAggregator agg_;
  const std::vector<double>* measures_;
  std::vector<const std::vector<int32_t>*> cols_;
  std::vector<std::vector<int32_t>> maps_;
  std::vector<int32_t> scratch_;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_BOUND_QUERY_H_
