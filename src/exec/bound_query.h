// BoundQuery: one dimensional query bound to the view it is evaluated from.
// Precomputes the dense translation arrays (exec/dim_translator.h) mapping
// the view's stored member ids to pre-shifted packed-key bits at the query's
// target levels — the "dimension hash table" of the paper's plans realized
// as perfect-hash arrays — plus the aggregation hash table. Every star-join
// operator — single or shared, tuple-at-a-time or vectorized — funnels
// matching tuples through Accumulate() / AccumulateBatch().

#ifndef STARSHARE_EXEC_BOUND_QUERY_H_
#define STARSHARE_EXEC_BOUND_QUERY_H_

#include <vector>

#include "cube/materialized_view.h"
#include "exec/dim_translator.h"
#include "exec/hash_aggregator.h"
#include "query/query.h"
#include "query/result.h"

namespace starshare {

class BoundQuery {
 public:
  BoundQuery(const StarSchema& schema, const DimensionalQuery& query,
             const MaterializedView& view)
      : query_(&query),
        agg_(schema, query.target(), query.agg(),
             std::min<uint64_t>(query.EstimatedGroups(schema),
                                view.table().num_rows())),
        measures_(&view.table().measure_column(query.measure())) {
    SS_CHECK_MSG(view.spec().CanAnswer(query.RequiredSpec(schema)),
                 "view %s cannot answer query Q%d", view.name().c_str(),
                 query.id());
    SS_CHECK_MSG(query.measure() < view.table().num_measures(),
                 "query Q%d aggregates measure %zu but view %s has %zu",
                 query.id(), query.measure(), view.name().c_str(),
                 view.table().num_measures());
    translator_ =
        DimTranslator(schema, query.target(), view, agg_.packer());
  }

  BoundQuery(const BoundQuery&) = delete;
  BoundQuery& operator=(const BoundQuery&) = delete;
  BoundQuery(BoundQuery&&) = default;

  const DimensionalQuery& query() const { return *query_; }

  // Adds view row `row` (already known to pass the query's selection) to
  // the aggregation, reading the query's own measure column.
  void Accumulate(uint64_t row) {
    agg_.Add(translator_.PackRow(row), MeasureAt(row));
  }

  // The split form of Accumulate used by morsel-parallel workers: the
  // read-only half (translate the row's keys and pack them) runs
  // concurrently; the mutating half (AccumulateRaw / AccumulateRawBatch)
  // runs only on the merging thread, in serial row order, so the
  // aggregation folds bit-identically to the serial operator.
  uint64_t PackedKeyAt(uint64_t row) const { return translator_.PackRow(row); }
  double MeasureAt(uint64_t row) const { return (*measures_)[row]; }
  void AccumulateRaw(uint64_t packed_key, double value) {
    agg_.Add(packed_key, value);
  }
  void AccumulateRawBatch(const uint64_t* keys, const double* values,
                          size_t n) {
    agg_.AddBatch(keys, values, n);
  }

  // Vectorized accessors: the translation arrays and the raw measure
  // column, for batch kernels that pack keys and gather values themselves.
  const DimTranslator& translator() const { return translator_; }
  const double* measure_data() const { return measures_->data(); }

  size_t num_retained() const { return translator_.num_lanes(); }

  // Resident bytes of the aggregation table (per-node memory accounting).
  uint64_t AggMemoryBytes() const { return agg_.MemoryBytes(); }

  QueryResult Finish() const { return agg_.Finish(); }

 private:
  const DimensionalQuery* query_;
  HashAggregator agg_;
  const std::vector<double>* measures_;
  DimTranslator translator_;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_BOUND_QUERY_H_
