// Batch-at-a-time (vectorized) execution plumbing shared by the star-join
// operators and the view builder.
//
// The vectorized paths regroup the rows a scan hands them into fixed-size
// batches and run each physical step — shared dimension filtering, selection,
// key translation, measure gather, aggregation — as a tight loop over the
// whole batch instead of one fused loop per tuple. Batching is purely a
// CPU-side regrouping: page-exact I/O charging happens in the scan callbacks
// exactly as on the tuple-at-a-time path, so every page count (and therefore
// the 1998 modeled I/O time) is unchanged by construction. Per-query
// aggregation order is also unchanged — batches are contiguous, ascending row
// ranges and every kernel preserves ascending row order within a batch — so
// results are bit-identical to tuple-at-a-time execution (DESIGN.md
// "Vectorized execution model").

#ifndef STARSHARE_EXEC_VECTOR_BATCH_H_
#define STARSHARE_EXEC_VECTOR_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/macros.h"

namespace starshare {

// Default rows per execution batch. Large enough to amortize per-batch
// setup and keep the per-step loops tight, small enough that the batch's
// masks / selection / key / value scratch stays cache-resident.
inline constexpr size_t kDefaultBatchRows = 1024;

// How an operator should run its CPU loop. The default is the vectorized
// engine; tuple-at-a-time remains available as the reference implementation
// (benchmark baseline, determinism oracle in tests).
struct BatchConfig {
  bool vectorized = true;
  // Rows per batch; 0 falls back to kDefaultBatchRows.
  size_t batch_rows = kDefaultBatchRows;

  size_t EffectiveBatchRows() const {
    return batch_rows == 0 ? kDefaultBatchRows : batch_rows;
  }

  static BatchConfig TupleAtATime() { return BatchConfig{false, 0}; }
};

// Regroups the contiguous, ascending (begin, end) row ranges a page scan
// produces into fixed-size batches and hands each batch to `flush(b, e)`.
// Ranges must be adjacent (end of one == begin of the next), which both
// ScanPages and ScanRowRange guarantee; batches may therefore span page
// boundaries without touching how those pages were charged.
template <typename FlushFn>
class RowBatcher {
 public:
  RowBatcher(size_t batch_rows, FlushFn flush)
      : batch_rows_(batch_rows == 0 ? kDefaultBatchRows : batch_rows),
        flush_(std::move(flush)) {}

  void AddRange(uint64_t begin, uint64_t end) {
    if (begin == end) return;
    if (begin_ == end_) {
      begin_ = begin;
      end_ = end;
    } else {
      SS_DCHECK(begin == end_);
      end_ = end;
    }
    while (end_ - begin_ >= batch_rows_) {
      flush_(begin_, begin_ + batch_rows_);
      begin_ += batch_rows_;
    }
  }

  // Flushes the trailing partial batch. Call once, after the scan.
  void Finish() {
    if (end_ > begin_) flush_(begin_, end_);
    begin_ = end_ = 0;
  }

 private:
  size_t batch_rows_;
  FlushFn flush_;
  uint64_t begin_ = 0;
  uint64_t end_ = 0;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_VECTOR_BATCH_H_
