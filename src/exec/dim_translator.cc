#include "exec/dim_translator.h"

#include <cstring>

namespace starshare {

DimTranslator::DimTranslator(const StarSchema& schema,
                             const GroupBySpec& target,
                             const MaterializedView& view,
                             const KeyPacker& packer) {
  const std::vector<size_t> retained = target.RetainedDims(schema);
  SS_CHECK(retained.size() == packer.num_keys());
  lanes_.reserve(retained.size());
  for (size_t i = 0; i < retained.size(); ++i) {
    const size_t d = retained[i];
    const size_t col = view.KeyColForDim(d);
    SS_CHECK(col != SIZE_MAX);
    Lane lane;
    lane.col = &view.table().key_column(col);
    const Hierarchy& h = schema.dim(d);
    const int from = view.StoredLevel(d);
    const int to = target.level(d);
    lane.keybits.resize(h.cardinality(from));
    for (uint32_t m = 0; m < lane.keybits.size(); ++m) {
      lane.keybits[m] =
          packer.PackField(i, h.MapUp(from, to, static_cast<int32_t>(m)));
    }
    lanes_.push_back(std::move(lane));
  }
}

void DimTranslator::PackRange(uint64_t base, size_t n, uint64_t* out) const {
  if (lanes_.empty()) {
    std::memset(out, 0, n * sizeof(uint64_t));
    return;
  }
  {
    const Lane& lane = lanes_[0];
    const int32_t* col = lane.col->data() + base;
    const uint64_t* keybits = lane.keybits.data();
    for (size_t i = 0; i < n; ++i) {
      out[i] = keybits[static_cast<size_t>(col[i])];
    }
  }
  for (size_t l = 1; l < lanes_.size(); ++l) {
    const Lane& lane = lanes_[l];
    const int32_t* col = lane.col->data() + base;
    const uint64_t* keybits = lane.keybits.data();
    for (size_t i = 0; i < n; ++i) {
      out[i] |= keybits[static_cast<size_t>(col[i])];
    }
  }
}

void DimTranslator::PackRows(const uint64_t* rows, size_t n,
                             uint64_t* out) const {
  if (lanes_.empty()) {
    std::memset(out, 0, n * sizeof(uint64_t));
    return;
  }
  {
    const Lane& lane = lanes_[0];
    const int32_t* col = lane.col->data();
    const uint64_t* keybits = lane.keybits.data();
    for (size_t i = 0; i < n; ++i) {
      out[i] = keybits[static_cast<size_t>(col[rows[i]])];
    }
  }
  for (size_t l = 1; l < lanes_.size(); ++l) {
    const Lane& lane = lanes_[l];
    const int32_t* col = lane.col->data();
    const uint64_t* keybits = lane.keybits.data();
    for (size_t i = 0; i < n; ++i) {
      out[i] |= keybits[static_cast<size_t>(col[rows[i]])];
    }
  }
}

}  // namespace starshare
