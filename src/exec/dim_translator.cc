#include "exec/dim_translator.h"

#include <cstring>

namespace starshare {

DimTranslator::DimTranslator(const StarSchema& schema,
                             const GroupBySpec& target,
                             const MaterializedView& view,
                             const KeyPacker& packer) {
  const std::vector<size_t> retained = target.RetainedDims(schema);
  SS_CHECK(retained.size() == packer.num_keys());
  lanes_.reserve(retained.size());
  for (size_t i = 0; i < retained.size(); ++i) {
    const size_t d = retained[i];
    const size_t col = view.KeyColForDim(d);
    SS_CHECK(col != SIZE_MAX);
    Lane lane;
    lane.col = &view.table().key_column(col);
    const Hierarchy& h = schema.dim(d);
    const int from = view.StoredLevel(d);
    const int to = target.level(d);
    lane.keybits.resize(h.cardinality(from));
    for (uint32_t m = 0; m < lane.keybits.size(); ++m) {
      lane.keybits[m] =
          packer.PackField(i, h.MapUp(from, to, static_cast<int32_t>(m)));
    }
    lanes_.push_back(std::move(lane));
  }
}

// Contiguous ranges translate straight off the column's physical layout:
// KeyColumn::ForEach decodes packed words 64 bits at a time (or walks the
// raw array) and the fused lambda maps each stored code through the dense
// translation array in the same pass — no intermediate decode buffer, so
// this stays safe for concurrent morsel workers sharing one translator.
void DimTranslator::PackRange(uint64_t base, size_t n, uint64_t* out) const {
  if (lanes_.empty()) {
    std::memset(out, 0, n * sizeof(uint64_t));
    return;
  }
  {
    const Lane& lane = lanes_[0];
    const uint64_t* keybits = lane.keybits.data();
    lane.col->ForEach(base, base + n, [&](uint64_t row, int32_t v) {
      out[row - base] = keybits[static_cast<size_t>(v)];
    });
  }
  for (size_t l = 1; l < lanes_.size(); ++l) {
    const Lane& lane = lanes_[l];
    const uint64_t* keybits = lane.keybits.data();
    lane.col->ForEach(base, base + n, [&](uint64_t row, int32_t v) {
      out[row - base] |= keybits[static_cast<size_t>(v)];
    });
  }
}

void DimTranslator::PackRows(const uint64_t* rows, size_t n,
                             uint64_t* out) const {
  if (lanes_.empty()) {
    std::memset(out, 0, n * sizeof(uint64_t));
    return;
  }
  {
    const Lane& lane = lanes_[0];
    const KeyColumn& col = *lane.col;
    const uint64_t* keybits = lane.keybits.data();
    for (size_t i = 0; i < n; ++i) {
      out[i] = keybits[static_cast<size_t>(col.Get(rows[i]))];
    }
  }
  for (size_t l = 1; l < lanes_.size(); ++l) {
    const Lane& lane = lanes_[l];
    const KeyColumn& col = *lane.col;
    const uint64_t* keybits = lane.keybits.data();
    for (size_t i = 0; i < n; ++i) {
      out[i] |= keybits[static_cast<size_t>(col.Get(rows[i]))];
    }
  }
}

}  // namespace starshare
