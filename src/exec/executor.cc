#include "exec/executor.h"

#include <algorithm>

#include "exec/shared_operators.h"
#include "exec/star_join.h"

namespace starshare {
namespace {

void SortById(std::vector<ExecutedQuery>& out) {
  std::sort(out.begin(), out.end(),
            [](const ExecutedQuery& a, const ExecutedQuery& b) {
              return a.query->id() < b.query->id();
            });
}

}  // namespace

QueryResult Executor::ExecuteSingle(const DimensionalQuery& query,
                                    const MaterializedView& view,
                                    JoinMethod method) const {
  switch (method) {
    case JoinMethod::kHashScan:
      return HashStarJoin(schema_, query, view, disk_);
    case JoinMethod::kIndexProbe:
      return IndexStarJoin(schema_, query, view, disk_);
  }
  SS_CHECK(false);
  return QueryResult();
}

std::vector<ExecutedQuery> Executor::ExecuteClass(const ClassPlan& cls) const {
  SS_CHECK(cls.base != nullptr && !cls.members.empty());
  std::vector<const DimensionalQuery*> hash_queries;
  std::vector<const DimensionalQuery*> index_queries;
  for (const auto& m : cls.members) {
    (m.method == JoinMethod::kHashScan ? hash_queries : index_queries)
        .push_back(m.query);
  }

  // The shared-scan pass masks are 32 bits wide; an oversized class is
  // evaluated in chunks (one extra scan per 32 hash members — still far
  // cheaper than per-query scans, and correct).
  if (cls.members.size() > kMaxClassQueries) {
    std::vector<ExecutedQuery> out;
    for (size_t begin = 0; begin < cls.members.size();
         begin += kMaxClassQueries) {
      ClassPlan chunk;
      chunk.base = cls.base;
      const size_t end =
          std::min(begin + kMaxClassQueries, cls.members.size());
      chunk.members.assign(cls.members.begin() + static_cast<long>(begin),
                           cls.members.begin() + static_cast<long>(end));
      for (auto& r : ExecuteClass(chunk)) out.push_back(std::move(r));
    }
    return out;
  }

  std::vector<QueryResult> results;
  std::vector<const DimensionalQuery*> order;
  if (hash_queries.empty()) {
    results = SharedIndexStarJoin(schema_, index_queries, *cls.base, disk_);
    order = index_queries;
  } else {
    results = SharedHybridStarJoin(schema_, hash_queries, index_queries,
                                   *cls.base, disk_);
    order = hash_queries;
    order.insert(order.end(), index_queries.begin(), index_queries.end());
  }

  std::vector<ExecutedQuery> out;
  out.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    out.push_back(ExecutedQuery{order[i], std::move(results[i])});
  }
  return out;
}

std::vector<ExecutedQuery> Executor::ExecutePlan(
    const GlobalPlan& plan) const {
  std::vector<ExecutedQuery> out;
  for (const auto& cls : plan.classes) {
    std::vector<ExecutedQuery> cls_results = ExecuteClass(cls);
    for (auto& r : cls_results) out.push_back(std::move(r));
  }
  SortById(out);
  return out;
}

std::vector<ExecutedQuery> Executor::ExecutePlanUnshared(
    const GlobalPlan& plan) const {
  std::vector<ExecutedQuery> out;
  for (const auto& cls : plan.classes) {
    for (const auto& m : cls.members) {
      out.push_back(ExecutedQuery{
          m.query, ExecuteSingle(*m.query, *cls.base, m.method)});
    }
  }
  SortById(out);
  return out;
}

}  // namespace starshare
