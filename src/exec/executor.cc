#include "exec/executor.h"

#include <algorithm>

#include "common/str_util.h"
#include "exec/operators/class_pipeline.h"
#include "exec/shared_operators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/lowering.h"

namespace starshare {
namespace {

void SortById(std::vector<ExecutedQuery>& out) {
  std::sort(out.begin(), out.end(),
            [](const ExecutedQuery& a, const ExecutedQuery& b) {
              return a.query->id() < b.query->id();
            });
}

ExecutedQuery FromOutcome(const DimensionalQuery* query, QueryResult result,
                          Status status) {
  ExecutedQuery out;
  out.query = query;
  out.result = std::move(result);
  out.status = std::move(status);
  return out;
}

}  // namespace

size_t ExecutionReport::num_recovered() const {
  size_t n = 0;
  for (const Event& e : events) n += e.recovered ? 1 : 0;
  return n;
}

size_t ExecutionReport::num_failed() const {
  return events.size() - num_recovered();
}

std::string ExecutionReport::ToString() const {
  if (clean()) return "all queries ran on their planned paths";
  std::string out = StrFormat("%zu quer%s degraded (%zu recovered):\n",
                              events.size(),
                              events.size() == 1 ? "y" : "ies",
                              num_recovered());
  for (const Event& e : events) {
    out += StrFormat("  Q%d: %s", e.query_id, e.error.ToString().c_str());
    if (e.recovered) {
      out += " -> recovered via fact-table fallback";
    } else if (!e.fallback_error.ok()) {
      out += StrFormat(" -> fallback failed: %s",
                       e.fallback_error.ToString().c_str());
    } else {
      out += " -> no fallback available";
    }
    out += "\n";
  }
  return out;
}

Result<QueryResult> Executor::ExecuteSingle(const DimensionalQuery& query,
                                            const MaterializedView& view,
                                            JoinMethod method,
                                            PhysicalPlan* phys, size_t parent,
                                            const LocalPlan* local) const {
  SharedClassRequest req;
  req.schema = &schema_;
  req.view = &view;
  req.disk = &disk_;
  req.policy.batch = policy_.batch;  // always serial: the paper's per-query costs
  req.budget = budget_;
  req.spill = spill_;
  switch (method) {
    case JoinMethod::kHashScan:
      req.hash_queries.push_back(&query);
      req.probe = false;
      break;
    case JoinMethod::kIndexProbe:
      req.index_queries.push_back(&query);
      req.probe = true;
      break;
    default:
      return Status::Internal(
          StrFormat("unknown join method %d for query %d",
                    static_cast<int>(method), query.id()));
  }
  LoweredClassNodes nodes;
  if (phys != nullptr) {
    nodes = LowerSingleQuery(*phys, parent, view.name(), query.id(), method,
                             local);
    req.phys = phys;
    req.nodes = &nodes;
  }
  Result<SharedOutcome> outcome = ExecuteSharedClass(req);
  if (!outcome.ok()) return outcome.status();
  if (!outcome->statuses[0].ok()) return outcome->statuses[0];
  return std::move(outcome->results[0]);
}

std::vector<ExecutedQuery> Executor::ExecuteClass(const ClassPlan& cls,
                                                  PhysicalPlan* phys) const {
  SS_CHECK(cls.base != nullptr && !cls.members.empty());
  static obs::Counter& classes = obs::Metrics().counter("exec.classes");
  static obs::Counter& member_failures =
      obs::Metrics().counter("exec.member_failures");
  static obs::Histogram& class_members =
      obs::Metrics().histogram("exec.class_members");
  classes.Add();
  class_members.Observe(cls.members.size());

  const std::string detail = cls.base->spec().ToString(schema_);
  obs::ScopedSpan class_span("exec.class", detail);
  class_span.SetEstMs(cls.EstMs());
  std::vector<const DimensionalQuery*> hash_queries;
  std::vector<const DimensionalQuery*> index_queries;
  for (const auto& m : cls.members) {
    (m.method == JoinMethod::kHashScan ? hash_queries : index_queries)
        .push_back(m.query);
  }

  // The shared-scan pass masks are 32 bits wide; an oversized class is
  // evaluated in chunks (one extra scan per 32 hash members — still far
  // cheaper than per-query scans, and correct). Each chunk lowers and runs
  // its own chain, mirrored exactly by LowerGlobalPlan.
  if (cls.members.size() > kMaxClassQueries) {
    std::vector<ExecutedQuery> out;
    for (size_t begin = 0; begin < cls.members.size();
         begin += kMaxClassQueries) {
      ClassPlan chunk;
      chunk.base = cls.base;
      const size_t end =
          std::min(begin + kMaxClassQueries, cls.members.size());
      chunk.members.assign(cls.members.begin() + static_cast<long>(begin),
                           cls.members.begin() + static_cast<long>(end));
      for (auto& r : ExecuteClass(chunk, phys)) out.push_back(std::move(r));
    }
    return out;
  }

  const bool probe = hash_queries.empty();
  SharedClassRequest req;
  req.schema = &schema_;
  req.hash_queries = hash_queries;
  req.index_queries = index_queries;
  req.view = cls.base;
  req.disk = &disk_;
  req.policy = policy_;  // serial or morsel-parallel: the driver's choice
  req.probe = probe;
  req.budget = budget_;
  req.spill = spill_;
  LoweredClassNodes nodes;
  if (phys != nullptr) {
    nodes = LowerSharedClass(*phys, kNoPhysNode, detail, hash_queries.size(),
                             index_queries.size(), probe, /*query_id=*/-1,
                             &cls);
    req.phys = phys;
    req.nodes = &nodes;
  }
  Result<SharedOutcome> outcome = ExecuteSharedClass(req);

  std::vector<const DimensionalQuery*> order = hash_queries;
  order.insert(order.end(), index_queries.begin(), index_queries.end());

  const auto find_local = [&](const DimensionalQuery* query) -> const LocalPlan* {
    for (const auto& m : cls.members) {
      if (m.query == query) return &m;
    }
    return nullptr;
  };
  // Per-member routing leaves: one span per query of the class, carrying
  // the member's estimate, its produced row count and its status. Created
  // post-hoc (the shared pipeline works on all members at once), so they
  // charge no I/O of their own. The same record lands on the physical
  // routing node (Route when present, Aggregate for one-member classes).
  const auto emit_member = [&](const ExecutedQuery& entry) {
    const LocalPlan* local = find_local(entry.query);
    if (class_span.active()) {
      obs::ScopedSpan span(
          "exec.member",
          local != nullptr ? JoinMethodName(local->method) : "",
          entry.query->id());
      if (local != nullptr) span.SetEstMs(local->EstMs());
      span.AddRows(entry.result.num_rows());
      span.SetStatus(entry.status);
    }
    if (phys != nullptr) {
      const size_t stat_node =
          nodes.route != kNoPhysNode ? nodes.route : nodes.aggregate;
      PhysicalMemberStat stat;
      stat.query_id = entry.query->id();
      stat.method = local != nullptr ? JoinMethodName(local->method) : "";
      stat.est_ms = local != nullptr ? local->EstMs() : -1.0;
      stat.rows = entry.result.num_rows();
      stat.status_code = static_cast<int>(entry.status.code());
      phys->node(stat_node).member_stats.push_back(std::move(stat));
    }
  };

  std::vector<ExecutedQuery> out;
  out.reserve(order.size());
  if (!outcome.ok()) {
    // Whole-class failure (malformed class): every member inherits it.
    for (const auto* q : order) {
      out.push_back(FromOutcome(q, QueryResult(), outcome.status()));
      member_failures.Add();
      emit_member(out.back());
    }
    return out;
  }
  for (size_t i = 0; i < order.size(); ++i) {
    out.push_back(FromOutcome(order[i],
                              std::move(outcome->results[i]),
                              std::move(outcome->statuses[i])));
    if (!out.back().status.ok()) member_failures.Add();
    emit_member(out.back());
  }
  return out;
}

std::vector<ExecutedQuery> Executor::ExecuteDerivedClass(
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, double rollup_est_ms,
    const std::vector<double>* member_est_ms, PhysicalPlan* phys,
    size_t input_node, std::vector<size_t>* aggregate_nodes) const {
  SS_CHECK(!queries.empty());
  SS_CHECK(member_est_ms == nullptr || member_est_ms->size() == queries.size());
  static obs::Counter& classes =
      obs::Metrics().counter("exec.derived_classes");
  static obs::Counter& member_failures =
      obs::Metrics().counter("exec.member_failures");
  classes.Add();

  // Same 32-wide pass-mask limit as the shared scan: oversized rollup
  // classes re-read the derived table once per chunk — in-memory rows, so
  // the extra passes cost CPU only.
  if (queries.size() > kMaxClassQueries) {
    std::vector<ExecutedQuery> out;
    for (size_t begin = 0; begin < queries.size();
         begin += kMaxClassQueries) {
      const size_t end = std::min(begin + kMaxClassQueries, queries.size());
      const std::vector<const DimensionalQuery*> chunk(
          queries.begin() + static_cast<long>(begin),
          queries.begin() + static_cast<long>(end));
      std::vector<double> chunk_est;
      if (member_est_ms != nullptr) {
        chunk_est.assign(member_est_ms->begin() + static_cast<long>(begin),
                         member_est_ms->begin() + static_cast<long>(end));
      }
      double chunk_total = 0.0;
      for (const double est : chunk_est) chunk_total += est;
      for (auto& r : ExecuteDerivedClass(
               chunk, view, member_est_ms != nullptr ? chunk_total : -1.0,
               member_est_ms != nullptr ? &chunk_est : nullptr, phys,
               input_node, aggregate_nodes)) {
        out.push_back(std::move(r));
      }
    }
    return out;
  }

  const std::string detail = view.name();
  obs::ScopedSpan class_span("exec.class", detail);
  if (rollup_est_ms >= 0.0) class_span.SetEstMs(rollup_est_ms);

  SharedClassRequest req;
  req.schema = &schema_;
  req.hash_queries = queries;
  req.view = &view;
  req.disk = &disk_;
  req.policy = policy_;
  req.derived = true;
  req.budget = budget_;
  req.spill = spill_;
  LoweredClassNodes nodes;
  if (phys != nullptr) {
    nodes = LowerDerivedClass(*phys, kNoPhysNode, detail, queries.size(),
                              /*query_id=*/-1, input_node, rollup_est_ms,
                              member_est_ms);
    req.phys = phys;
    req.nodes = &nodes;
  }
  if (aggregate_nodes != nullptr) {
    aggregate_nodes->insert(aggregate_nodes->end(), queries.size(),
                            phys != nullptr ? nodes.aggregate : kNoPhysNode);
  }
  Result<SharedOutcome> outcome = ExecuteSharedClass(req);

  // Per-member leaves, as in ExecuteClass, with method "rollup".
  const auto emit_member = [&](const ExecutedQuery& entry, size_t i) {
    const double est =
        member_est_ms != nullptr ? (*member_est_ms)[i] : -1.0;
    if (class_span.active()) {
      obs::ScopedSpan span("exec.member", "rollup", entry.query->id());
      if (est >= 0.0) span.SetEstMs(est);
      span.AddRows(entry.result.num_rows());
      span.SetStatus(entry.status);
    }
    if (phys != nullptr) {
      const size_t stat_node =
          nodes.route != kNoPhysNode ? nodes.route : nodes.aggregate;
      PhysicalMemberStat stat;
      stat.query_id = entry.query->id();
      stat.method = "rollup";
      stat.est_ms = est;
      stat.rows = entry.result.num_rows();
      stat.status_code = static_cast<int>(entry.status.code());
      phys->node(stat_node).member_stats.push_back(std::move(stat));
    }
  };

  std::vector<ExecutedQuery> out;
  out.reserve(queries.size());
  if (!outcome.ok()) {
    for (size_t i = 0; i < queries.size(); ++i) {
      out.push_back(FromOutcome(queries[i], QueryResult(), outcome.status()));
      member_failures.Add();
      emit_member(out.back(), i);
    }
    return out;
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    out.push_back(FromOutcome(queries[i], std::move(outcome->results[i]),
                              std::move(outcome->statuses[i])));
    if (!out.back().status.ok()) member_failures.Add();
    emit_member(out.back(), i);
  }
  return out;
}

std::vector<ExecutedQuery> Executor::ExecutePlan(const GlobalPlan& plan,
                                                 PhysicalPlan* phys) const {
  std::vector<ExecutedQuery> out;
  for (const auto& cls : plan.classes) {
    std::vector<ExecutedQuery> cls_results = ExecuteClass(cls, phys);
    for (auto& r : cls_results) out.push_back(std::move(r));
  }
  SortById(out);
  return out;
}

std::vector<ExecutedQuery> Executor::ExecutePlanUnshared(
    const GlobalPlan& plan, PhysicalPlan* phys) const {
  std::vector<ExecutedQuery> out;
  for (const auto& cls : plan.classes) {
    for (const auto& m : cls.members) {
      Result<QueryResult> r = ExecuteSingle(*m.query, *cls.base, m.method,
                                            phys, kNoPhysNode, &m);
      if (r.ok()) {
        out.push_back(FromOutcome(m.query, std::move(r.value()), Status::Ok()));
      } else {
        out.push_back(FromOutcome(m.query, QueryResult(), r.status()));
      }
    }
  }
  SortById(out);
  return out;
}

}  // namespace starshare
