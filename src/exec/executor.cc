#include "exec/executor.h"

#include <algorithm>

#include "common/str_util.h"
#include "exec/parallel_operators.h"
#include "exec/shared_operators.h"
#include "exec/star_join.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace starshare {
namespace {

void SortById(std::vector<ExecutedQuery>& out) {
  std::sort(out.begin(), out.end(),
            [](const ExecutedQuery& a, const ExecutedQuery& b) {
              return a.query->id() < b.query->id();
            });
}

ExecutedQuery FromOutcome(const DimensionalQuery* query, QueryResult result,
                          Status status) {
  ExecutedQuery out;
  out.query = query;
  out.result = std::move(result);
  out.status = std::move(status);
  return out;
}

}  // namespace

size_t ExecutionReport::num_recovered() const {
  size_t n = 0;
  for (const Event& e : events) n += e.recovered ? 1 : 0;
  return n;
}

size_t ExecutionReport::num_failed() const {
  return events.size() - num_recovered();
}

std::string ExecutionReport::ToString() const {
  if (clean()) return "all queries ran on their planned paths";
  std::string out = StrFormat("%zu quer%s degraded (%zu recovered):\n",
                              events.size(),
                              events.size() == 1 ? "y" : "ies",
                              num_recovered());
  for (const Event& e : events) {
    out += StrFormat("  Q%d: %s", e.query_id, e.error.ToString().c_str());
    if (e.recovered) {
      out += " -> recovered via fact-table fallback";
    } else if (!e.fallback_error.ok()) {
      out += StrFormat(" -> fallback failed: %s",
                       e.fallback_error.ToString().c_str());
    } else {
      out += " -> no fallback available";
    }
    out += "\n";
  }
  return out;
}

Result<QueryResult> Executor::ExecuteSingle(const DimensionalQuery& query,
                                            const MaterializedView& view,
                                            JoinMethod method) const {
  switch (method) {
    case JoinMethod::kHashScan:
      return TryHashStarJoin(schema_, query, view, disk_);
    case JoinMethod::kIndexProbe:
      return TryIndexStarJoin(schema_, query, view, disk_);
  }
  return Status::Internal(
      StrFormat("unknown join method %d for query %d",
                static_cast<int>(method), query.id()));
}

std::vector<ExecutedQuery> Executor::ExecuteClass(const ClassPlan& cls) const {
  SS_CHECK(cls.base != nullptr && !cls.members.empty());
  static obs::Counter& classes = obs::Metrics().counter("exec.classes");
  static obs::Counter& member_failures =
      obs::Metrics().counter("exec.member_failures");
  static obs::Histogram& class_members =
      obs::Metrics().histogram("exec.class_members");
  classes.Add();
  class_members.Observe(cls.members.size());

  obs::ScopedSpan class_span("exec.class",
                             cls.base->spec().ToString(schema_));
  class_span.SetEstMs(cls.EstMs());
  std::vector<const DimensionalQuery*> hash_queries;
  std::vector<const DimensionalQuery*> index_queries;
  for (const auto& m : cls.members) {
    (m.method == JoinMethod::kHashScan ? hash_queries : index_queries)
        .push_back(m.query);
  }

  // The shared-scan pass masks are 32 bits wide; an oversized class is
  // evaluated in chunks (one extra scan per 32 hash members — still far
  // cheaper than per-query scans, and correct).
  if (cls.members.size() > kMaxClassQueries) {
    std::vector<ExecutedQuery> out;
    for (size_t begin = 0; begin < cls.members.size();
         begin += kMaxClassQueries) {
      ClassPlan chunk;
      chunk.base = cls.base;
      const size_t end =
          std::min(begin + kMaxClassQueries, cls.members.size());
      chunk.members.assign(cls.members.begin() + static_cast<long>(begin),
                           cls.members.begin() + static_cast<long>(end));
      for (auto& r : ExecuteClass(chunk)) out.push_back(std::move(r));
    }
    return out;
  }

  Result<SharedOutcome> outcome = Status::Internal("unreachable");
  std::vector<const DimensionalQuery*> order;
  if (hash_queries.empty()) {
    outcome = policy_.engaged()
                  ? ParallelSharedIndexStarJoin(schema_, index_queries,
                                                *cls.base, disk_, policy_)
                  : TrySharedIndexStarJoin(schema_, index_queries, *cls.base,
                                           disk_, policy_.batch);
    order = index_queries;
  } else {
    outcome = policy_.engaged()
                  ? ParallelSharedHybridStarJoin(schema_, hash_queries,
                                                 index_queries, *cls.base,
                                                 disk_, policy_)
                  : TrySharedHybridStarJoin(schema_, hash_queries,
                                            index_queries, *cls.base, disk_,
                                            policy_.batch);
    order = hash_queries;
    order.insert(order.end(), index_queries.begin(), index_queries.end());
  }

  std::vector<ExecutedQuery> out;
  out.reserve(order.size());
  // Per-member routing leaves: one span per query of the class, carrying
  // the member's estimate, its produced row count and its status. Created
  // post-hoc (the shared operators work on all members at once), so they
  // charge no I/O of their own.
  const auto emit_member_span = [&](const ExecutedQuery& entry) {
    if (!class_span.active()) return;
    const LocalPlan* local = nullptr;
    for (const auto& m : cls.members) {
      if (m.query == entry.query) {
        local = &m;
        break;
      }
    }
    obs::ScopedSpan span("exec.member",
                         local != nullptr ? JoinMethodName(local->method) : "",
                         entry.query->id());
    if (local != nullptr) span.SetEstMs(local->EstMs());
    span.AddRows(entry.result.num_rows());
    span.SetStatus(entry.status);
  };
  if (!outcome.ok()) {
    // Whole-class failure (malformed class): every member inherits it.
    for (const auto* q : order) {
      out.push_back(FromOutcome(q, QueryResult(), outcome.status()));
      member_failures.Add();
      emit_member_span(out.back());
    }
    return out;
  }
  for (size_t i = 0; i < order.size(); ++i) {
    out.push_back(FromOutcome(order[i],
                              std::move(outcome->results[i]),
                              std::move(outcome->statuses[i])));
    if (!out.back().status.ok()) member_failures.Add();
    emit_member_span(out.back());
  }
  return out;
}

std::vector<ExecutedQuery> Executor::ExecutePlan(
    const GlobalPlan& plan) const {
  std::vector<ExecutedQuery> out;
  for (const auto& cls : plan.classes) {
    std::vector<ExecutedQuery> cls_results = ExecuteClass(cls);
    for (auto& r : cls_results) out.push_back(std::move(r));
  }
  SortById(out);
  return out;
}

std::vector<ExecutedQuery> Executor::ExecutePlanUnshared(
    const GlobalPlan& plan) const {
  std::vector<ExecutedQuery> out;
  for (const auto& cls : plan.classes) {
    for (const auto& m : cls.members) {
      Result<QueryResult> r = ExecuteSingle(*m.query, *cls.base, m.method);
      if (r.ok()) {
        out.push_back(FromOutcome(m.query, std::move(r.value()), Status::Ok()));
      } else {
        out.push_back(FromOutcome(m.query, QueryResult(), r.status()));
      }
    }
  }
  SortById(out);
  return out;
}

}  // namespace starshare
