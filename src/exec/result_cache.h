// An LRU cache of query results keyed by the query's semantic signature
// (target + predicate + aggregate). OLAP dashboards re-issue identical
// component queries constantly; a hit skips planning and evaluation
// entirely. The engine invalidates the cache whenever the data changes
// (AppendFacts).

#ifndef STARSHARE_EXEC_RESULT_CACHE_H_
#define STARSHARE_EXEC_RESULT_CACHE_H_

#include <list>
#include <string>
#include <unordered_map>

#include "query/query.h"
#include "query/result.h"

namespace starshare {

class ResultCache {
 public:
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // The semantic key: independent of query id and label.
  static std::string KeyOf(const DimensionalQuery& query,
                           const StarSchema& schema);

  // Returns the cached result or nullptr; a hit refreshes recency.
  const QueryResult* Lookup(const std::string& key);

  // Inserts (or refreshes) a result, evicting the LRU entry beyond
  // capacity.
  void Insert(const std::string& key, QueryResult result);

  // Drops everything (data changed).
  void Clear();

  size_t size() const { return lru_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  // Entries dropped because an insert pushed the cache past capacity.
  uint64_t evictions() const { return evictions_; }
  // Entries dropped by Clear() (data changed under the cache).
  uint64_t invalidations() const { return invalidations_; }

 private:
  struct Entry {
    std::string key;
    QueryResult result;
  };

  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_RESULT_CACHE_H_
