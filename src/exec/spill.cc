#include "exec/spill.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <queue>
#include <utility>

#include "common/fault_injector.h"
#include "common/str_util.h"
#include "obs/metrics.h"

namespace starshare {
namespace {

// Process-wide uniquifier so two consumers of the same query (or two
// engines in one process) never collide on a name.
std::atomic<uint64_t> g_spill_sequence{0};

Status SpillError(const char* what, const std::string& path) {
  return Status::ResourceExhausted(
      StrFormat("spill %s failed: %s", what, path.c_str()));
}

obs::Counter& RunCounter() {
  static obs::Counter& c = obs::Metrics().counter("exec.spill.runs");
  return c;
}
obs::Counter& ByteCounter() {
  static obs::Counter& c = obs::Metrics().counter("exec.spill.bytes");
  return c;
}

}  // namespace

std::string DefaultScratchDir() {
  const char* env = std::getenv("TMPDIR");
  return (env != nullptr && *env != '\0') ? env : "/tmp";
}

SpillFile::SpillFile(const SpillConfig& config, int query_id,
                     size_t doubles_per_record)
    : query_id_(query_id),
      doubles_(doubles_per_record),
      packed_(config.packed_keys) {
  const std::string dir =
      config.scratch_dir.empty() ? DefaultScratchDir() : config.scratch_dir;
  path_ = StrFormat(
      "%s/starshare-spill-q%d-p%ld-%llu.run", dir.c_str(), query_id,
      static_cast<long>(getpid()),
      static_cast<unsigned long long>(
          g_spill_sequence.fetch_add(1, std::memory_order_relaxed)));
}

SpillFile::~SpillFile() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(path_.c_str());
  }
}

Status SpillFile::OpenAndSeek(uint64_t offset, const char* what) {
  if (file_ == nullptr) {
    file_ = std::fopen(path_.c_str(), "wb+");
    if (file_ == nullptr) return SpillError("open", path_);
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return SpillError(what, path_);
  }
  return Status::Ok();
}

Status SpillFile::AppendRun(const uint64_t* keys, const double* values,
                            uint64_t rows) {
  if (FaultHit("spill.write", query_id_) == FaultKind::kError) {
    return SpillError("write (injected)", path_);
  }
  SS_RETURN_IF_ERROR(OpenAndSeek(end_offset_, "seek"));
  return packed_ ? AppendRunPacked(keys, values, rows)
                 : AppendRunInterleaved(keys, values, rows);
}

Status SpillFile::AppendRunInterleaved(const uint64_t* keys,
                                       const double* values, uint64_t rows) {
  if (std::fwrite(&rows, 1, 8, file_) != 8) return SpillError("write", path_);

  // Interleave (key, m doubles) records through a bounded scratch buffer so
  // one run is a handful of fwrites, not one per record.
  Crc32Accumulator crc;
  const size_t rec = record_size();
  std::vector<uint8_t> chunk;
  chunk.reserve(std::min<uint64_t>(rows, 1024) * rec);
  uint64_t row = 0;
  while (row < rows) {
    const uint64_t n = std::min<uint64_t>(rows - row, 1024);
    chunk.resize(static_cast<size_t>(n) * rec);
    uint8_t* out = chunk.data();
    for (uint64_t i = 0; i < n; ++i) {
      std::memcpy(out, &keys[row + i], 8);
      std::memcpy(out + 8, &values[(row + i) * doubles_], 8 * doubles_);
      out += rec;
    }
    crc.Update(chunk.data(), chunk.size());
    if (std::fwrite(chunk.data(), 1, chunk.size(), file_) != chunk.size()) {
      return SpillError("write", path_);
    }
    row += n;
  }
  const uint32_t checksum = crc.value();
  if (std::fwrite(&checksum, 1, 4, file_) != 4) {
    return SpillError("write", path_);
  }

  RunInfo info;
  info.payload_offset = end_offset_ + 8;
  info.rows = rows;
  runs_.push_back(info);
  const uint64_t run_bytes = 8 + rows * rec + 4;
  end_offset_ += run_bytes;
  spilled_rows_ += rows;
  spilled_bytes_ += run_bytes;
  RunCounter().Add();
  ByteCounter().Add(run_bytes);
  return Status::Ok();
}

Status SpillFile::AppendRunPacked(const uint64_t* keys, const double* values,
                                  uint64_t rows) {
  // Keys arrive sorted ascending, so the first key is the frame of
  // reference and the last key bounds the delta domain.
  const uint64_t ref = rows > 0 ? keys[0] : 0;
  const uint64_t range = rows > 0 ? keys[rows - 1] - ref : 0;
  const uint32_t bits =
      range == 0 ? 1 : static_cast<uint32_t>(std::bit_width(range));

  if (std::fwrite(&rows, 1, 8, file_) != 8 ||
      std::fwrite(&bits, 1, 4, file_) != 4 ||
      std::fwrite(&ref, 1, 8, file_) != 8) {
    return SpillError("write", path_);
  }

  std::vector<uint64_t> words(KeyWords(rows, bits), 0);
  for (uint64_t i = 0; i < rows; ++i) {
    const uint64_t delta = keys[i] - ref;
    const uint64_t pos = i * bits;
    const uint64_t off = pos & 63;
    words[pos >> 6] |= delta << off;
    if (off + bits > 64) words[(pos >> 6) + 1] |= delta >> (64 - off);
  }
  const size_t key_bytes = words.size() * 8;
  const uint32_t key_crc = Crc32(words.data(), key_bytes);
  if (std::fwrite(words.data(), 1, key_bytes, file_) != key_bytes ||
      std::fwrite(&key_crc, 1, 4, file_) != 4) {
    return SpillError("write", path_);
  }

  const size_t val_bytes = static_cast<size_t>(rows) * value_size();
  const uint32_t val_crc = Crc32(values, val_bytes);
  if ((val_bytes > 0 &&
       std::fwrite(values, 1, val_bytes, file_) != val_bytes) ||
      std::fwrite(&val_crc, 1, 4, file_) != 4) {
    return SpillError("write", path_);
  }

  RunInfo info;
  info.payload_offset = end_offset_ + 8 + 4 + 8;
  info.rows = rows;
  info.key_bits = bits;
  info.key_ref = ref;
  runs_.push_back(info);
  const uint64_t run_bytes = 8 + 4 + 8 + key_bytes + 4 + val_bytes + 4;
  end_offset_ += run_bytes;
  spilled_rows_ += rows;
  spilled_bytes_ += run_bytes;
  RunCounter().Add();
  ByteCounter().Add(run_bytes);
  return Status::Ok();
}

Status SpillFile::Merge(
    uint64_t chunk_budget_bytes,
    const std::function<void(uint64_t, const double*)>& emit) {
  if (runs_.empty()) return Status::Ok();
  if (std::fflush(file_) != 0) return SpillError("flush", path_);
  return packed_ ? MergePacked(chunk_budget_bytes, emit)
                 : MergeInterleaved(chunk_budget_bytes, emit);
}

Status SpillFile::MergeInterleaved(
    uint64_t chunk_budget_bytes,
    const std::function<void(uint64_t, const double*)>& emit) {
  const size_t rec = record_size();
  // Bound total read-buffer bytes by the budget: with R runs each buffer
  // holds budget/(rec*R) records, floored at 1 (a 1-byte budget still
  // merges, one record at a time) and capped at 1024.
  const uint64_t chunk_rows = std::clamp<uint64_t>(
      chunk_budget_bytes / (rec * runs_.size()), 1, 1024);

  struct Cursor {
    uint64_t next_offset = 0;  // next unread payload byte
    uint64_t rows_left = 0;    // rows not yet read into the buffer
    Crc32Accumulator crc;
    std::vector<uint8_t> buffer;
    size_t buffer_pos = 0;  // byte position of the current record
  };
  std::vector<Cursor> cursors(runs_.size());

  // Reads the next chunk of run `r`; validates the run CRC when the last
  // chunk comes in. Bit-flip faults land in the buffer before checksumming.
  const auto refill = [&](size_t r) -> Status {
    Cursor& cur = cursors[r];
    const std::optional<FaultKind> fault = FaultHit("spill.read", query_id_);
    if (fault == FaultKind::kError) {
      return SpillError("read (injected)", path_);
    }
    const uint64_t n = std::min(cur.rows_left, chunk_rows);
    cur.buffer.resize(static_cast<size_t>(n) * rec);
    cur.buffer_pos = 0;
    if (std::fseek(file_, static_cast<long>(cur.next_offset), SEEK_SET) != 0) {
      return SpillError("seek", path_);
    }
    size_t want = cur.buffer.size();
    if (fault == FaultKind::kShortRead && want > 0) {
      std::fread(cur.buffer.data(), 1, want - 1, file_);
      return SpillError("short read (injected)", path_);
    }
    if (std::fread(cur.buffer.data(), 1, want, file_) != want) {
      return SpillError("read", path_);
    }
    if (fault == FaultKind::kBitFlip && want > 0) {
      const uint64_t bit = FaultInjector::Instance().NextBitIndex(want);
      cur.buffer[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    cur.crc.Update(cur.buffer.data(), want);
    cur.next_offset += want;
    cur.rows_left -= n;
    if (cur.rows_left == 0) {
      uint32_t stored = 0;
      if (std::fseek(file_, static_cast<long>(cur.next_offset), SEEK_SET) !=
              0 ||
          std::fread(&stored, 1, 4, file_) != 4) {
        return SpillError("read", path_);
      }
      if (stored != cur.crc.value()) {
        return SpillError("checksum", path_);
      }
    }
    return Status::Ok();
  };

  // Min-heap over (key, run index): equal keys drain lower-numbered (older)
  // runs first, and within a run the buffer replays file order — together,
  // arrival order per key.
  using Entry = std::pair<uint64_t, size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  const auto current_key = [&](size_t r) {
    uint64_t key = 0;
    std::memcpy(&key, cursors[r].buffer.data() + cursors[r].buffer_pos, 8);
    return key;
  };
  for (size_t r = 0; r < runs_.size(); ++r) {
    cursors[r].next_offset = runs_[r].payload_offset;
    cursors[r].rows_left = runs_[r].rows;
    if (runs_[r].rows == 0) continue;
    SS_RETURN_IF_ERROR(refill(r));
    heap.emplace(current_key(r), r);
  }

  std::vector<double> values(doubles_);
  while (!heap.empty()) {
    const auto [key, r] = heap.top();
    heap.pop();
    Cursor& cur = cursors[r];
    std::memcpy(values.data(), cur.buffer.data() + cur.buffer_pos + 8,
                8 * doubles_);
    emit(key, values.data());
    cur.buffer_pos += rec;
    if (cur.buffer_pos >= cur.buffer.size()) {
      if (cur.rows_left == 0) continue;  // run exhausted
      SS_RETURN_IF_ERROR(refill(r));
    }
    heap.emplace(current_key(r), r);
  }
  return Status::Ok();
}

Status SpillFile::MergePacked(
    uint64_t chunk_budget_bytes,
    const std::function<void(uint64_t, const double*)>& emit) {
  const size_t val_rec = value_size();
  // Budget a chunk as if records were interleaved (key word bytes amortize
  // to <= 8 per record), same floor/cap as the legacy path.
  const uint64_t chunk_rows = std::clamp<uint64_t>(
      chunk_budget_bytes / (record_size() * runs_.size()), 1, 1024);

  struct Cursor {
    uint64_t rows_left = 0;   // rows not yet buffered
    uint64_t rec = 0;         // current record index within the run
    uint64_t buf_first = 0;   // first buffered record index
    uint64_t buf_end = 0;     // one past the last buffered record
    // Key word window [word_lo, word_lo + words.size()). Chunk boundaries
    // rarely align to words, so consecutive windows overlap by at most one
    // word; crc_words is the watermark of words already checksummed, which
    // keeps the linear key CRC exact despite the overlap.
    std::vector<uint64_t> words;
    uint64_t word_lo = 0;
    uint64_t crc_words = 0;
    Crc32Accumulator key_crc;
    std::vector<uint8_t> vals;  // value bytes of the buffered records
    Crc32Accumulator val_crc;
  };
  std::vector<Cursor> cursors(runs_.size());

  const auto refill = [&](size_t r) -> Status {
    Cursor& cur = cursors[r];
    const RunInfo& run = runs_[r];
    const std::optional<FaultKind> fault = FaultHit("spill.read", query_id_);
    if (fault == FaultKind::kError) {
      return SpillError("read (injected)", path_);
    }
    const uint64_t first = cur.buf_end;
    const uint64_t n = std::min(cur.rows_left, chunk_rows);
    const uint32_t bits = run.key_bits;
    const uint64_t total_words = KeyWords(run.rows, bits);
    const uint64_t wlo = first * bits / 64;
    const uint64_t whi = ((first + n) * bits + 63) / 64;
    const uint64_t val_off =
        run.payload_offset + total_words * 8 + 4 + first * val_rec;

    cur.words.resize(whi - wlo);
    if (std::fseek(file_,
                   static_cast<long>(run.payload_offset + wlo * 8),
                   SEEK_SET) != 0) {
      return SpillError("seek", path_);
    }
    const size_t key_want = cur.words.size() * 8;
    if (fault == FaultKind::kShortRead && key_want > 0) {
      std::fread(cur.words.data(), 1, key_want - 1, file_);
      return SpillError("short read (injected)", path_);
    }
    if (std::fread(cur.words.data(), 1, key_want, file_) != key_want) {
      return SpillError("read", path_);
    }
    cur.vals.resize(static_cast<size_t>(n) * val_rec);
    if (std::fseek(file_, static_cast<long>(val_off), SEEK_SET) != 0) {
      return SpillError("seek", path_);
    }
    if (std::fread(cur.vals.data(), 1, cur.vals.size(), file_) !=
        cur.vals.size()) {
      return SpillError("read", path_);
    }
    // Bytes not yet checksummed this refill: the key words past the
    // watermark plus the freshly read values. A bit flip lands among them,
    // so the damage is always inside what the CRCs still cover.
    const size_t new_key_bytes =
        static_cast<size_t>(whi - cur.crc_words) * 8;
    if (fault == FaultKind::kBitFlip &&
        new_key_bytes + cur.vals.size() > 0) {
      const uint64_t bit = FaultInjector::Instance().NextBitIndex(
          new_key_bytes + cur.vals.size());
      if (bit / 8 < new_key_bytes) {
        const size_t byte = (cur.crc_words - wlo) * 8 + bit / 8;
        reinterpret_cast<uint8_t*>(cur.words.data())[byte] ^=
            static_cast<uint8_t>(1u << (bit % 8));
      } else {
        const size_t byte = bit / 8 - new_key_bytes;
        cur.vals[byte] ^= static_cast<uint8_t>(1u << (bit % 8));
      }
    }
    cur.key_crc.Update(
        reinterpret_cast<const uint8_t*>(cur.words.data()) +
            (cur.crc_words - wlo) * 8,
        new_key_bytes);
    cur.crc_words = whi;
    cur.val_crc.Update(cur.vals.data(), cur.vals.size());

    cur.word_lo = wlo;
    cur.buf_first = first;
    cur.buf_end = first + n;
    cur.rec = first;
    cur.rows_left -= n;

    if (cur.rows_left == 0) {
      // Last chunk: both section CRCs are now complete; compare them with
      // the stored ones.
      uint32_t stored_key = 0;
      uint32_t stored_val = 0;
      if (std::fseek(file_,
                     static_cast<long>(run.payload_offset + total_words * 8),
                     SEEK_SET) != 0 ||
          std::fread(&stored_key, 1, 4, file_) != 4) {
        return SpillError("read", path_);
      }
      if (std::fseek(file_,
                     static_cast<long>(run.payload_offset + total_words * 8 +
                                       4 + run.rows * val_rec),
                     SEEK_SET) != 0 ||
          std::fread(&stored_val, 1, 4, file_) != 4) {
        return SpillError("read", path_);
      }
      if (stored_key != cur.key_crc.value() ||
          stored_val != cur.val_crc.value()) {
        return SpillError("checksum", path_);
      }
    }
    return Status::Ok();
  };

  const auto current_key = [&](size_t r) {
    const Cursor& cur = cursors[r];
    const RunInfo& run = runs_[r];
    const uint32_t bits = run.key_bits;
    const uint64_t mask =
        bits == 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
    const uint64_t pos = cur.rec * bits - cur.word_lo * 64;
    const uint64_t off = pos & 63;
    uint64_t v = cur.words[pos >> 6] >> off;
    if (off + bits > 64) v |= cur.words[(pos >> 6) + 1] << (64 - off);
    return run.key_ref + (v & mask);
  };

  using Entry = std::pair<uint64_t, size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (size_t r = 0; r < runs_.size(); ++r) {
    cursors[r].rows_left = runs_[r].rows;
    if (runs_[r].rows == 0) continue;
    SS_RETURN_IF_ERROR(refill(r));
    heap.emplace(current_key(r), r);
  }

  while (!heap.empty()) {
    const auto [key, r] = heap.top();
    heap.pop();
    Cursor& cur = cursors[r];
    emit(key, reinterpret_cast<const double*>(
                  cur.vals.data() +
                  static_cast<size_t>(cur.rec - cur.buf_first) * val_rec));
    ++cur.rec;
    if (cur.rec >= cur.buf_end) {
      if (cur.rows_left == 0) continue;  // run exhausted
      SS_RETURN_IF_ERROR(refill(r));
    }
    heap.emplace(current_key(r), r);
  }
  return Status::Ok();
}

}  // namespace starshare
