#include "exec/spill.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <queue>
#include <utility>

#include "common/crc32.h"
#include "common/fault_injector.h"
#include "common/str_util.h"
#include "obs/metrics.h"

namespace starshare {
namespace {

// Process-wide uniquifier so two consumers of the same query (or two
// engines in one process) never collide on a name.
std::atomic<uint64_t> g_spill_sequence{0};

Status SpillError(const char* what, const std::string& path) {
  return Status::ResourceExhausted(
      StrFormat("spill %s failed: %s", what, path.c_str()));
}

}  // namespace

std::string DefaultScratchDir() {
  const char* env = std::getenv("TMPDIR");
  return (env != nullptr && *env != '\0') ? env : "/tmp";
}

SpillFile::SpillFile(const SpillConfig& config, int query_id,
                     size_t doubles_per_record)
    : query_id_(query_id), doubles_(doubles_per_record) {
  const std::string dir =
      config.scratch_dir.empty() ? DefaultScratchDir() : config.scratch_dir;
  path_ = StrFormat(
      "%s/starshare-spill-q%d-p%ld-%llu.run", dir.c_str(), query_id,
      static_cast<long>(getpid()),
      static_cast<unsigned long long>(
          g_spill_sequence.fetch_add(1, std::memory_order_relaxed)));
}

SpillFile::~SpillFile() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(path_.c_str());
  }
}

Status SpillFile::AppendRun(const uint64_t* keys, const double* values,
                            uint64_t rows) {
  static obs::Counter& run_count = obs::Metrics().counter("exec.spill.runs");
  static obs::Counter& byte_count = obs::Metrics().counter("exec.spill.bytes");
  if (file_ == nullptr) {
    file_ = std::fopen(path_.c_str(), "wb+");
    if (file_ == nullptr) return SpillError("open", path_);
  }
  if (FaultHit("spill.write", query_id_) == FaultKind::kError) {
    return SpillError("write (injected)", path_);
  }
  if (std::fseek(file_, static_cast<long>(end_offset_), SEEK_SET) != 0) {
    return SpillError("seek", path_);
  }
  if (std::fwrite(&rows, 1, 8, file_) != 8) return SpillError("write", path_);

  // Interleave (key, m doubles) records through a bounded scratch buffer so
  // one run is a handful of fwrites, not one per record.
  Crc32Accumulator crc;
  const size_t rec = record_size();
  std::vector<uint8_t> chunk;
  chunk.reserve(std::min<uint64_t>(rows, 1024) * rec);
  uint64_t row = 0;
  while (row < rows) {
    const uint64_t n = std::min<uint64_t>(rows - row, 1024);
    chunk.resize(static_cast<size_t>(n) * rec);
    uint8_t* out = chunk.data();
    for (uint64_t i = 0; i < n; ++i) {
      std::memcpy(out, &keys[row + i], 8);
      std::memcpy(out + 8, &values[(row + i) * doubles_], 8 * doubles_);
      out += rec;
    }
    crc.Update(chunk.data(), chunk.size());
    if (std::fwrite(chunk.data(), 1, chunk.size(), file_) != chunk.size()) {
      return SpillError("write", path_);
    }
    row += n;
  }
  const uint32_t checksum = crc.value();
  if (std::fwrite(&checksum, 1, 4, file_) != 4) {
    return SpillError("write", path_);
  }

  RunInfo info;
  info.payload_offset = end_offset_ + 8;
  info.rows = rows;
  runs_.push_back(info);
  const uint64_t run_bytes = 8 + rows * rec + 4;
  end_offset_ += run_bytes;
  spilled_rows_ += rows;
  spilled_bytes_ += run_bytes;
  run_count.Add();
  byte_count.Add(run_bytes);
  return Status::Ok();
}

Status SpillFile::Merge(
    uint64_t chunk_budget_bytes,
    const std::function<void(uint64_t, const double*)>& emit) {
  if (runs_.empty()) return Status::Ok();
  if (std::fflush(file_) != 0) return SpillError("flush", path_);

  const size_t rec = record_size();
  // Bound total read-buffer bytes by the budget: with R runs each buffer
  // holds budget/(rec*R) records, floored at 1 (a 1-byte budget still
  // merges, one record at a time) and capped at 1024.
  const uint64_t chunk_rows = std::clamp<uint64_t>(
      chunk_budget_bytes / (rec * runs_.size()), 1, 1024);

  struct Cursor {
    uint64_t next_offset = 0;  // next unread payload byte
    uint64_t rows_left = 0;    // rows not yet read into the buffer
    Crc32Accumulator crc;
    std::vector<uint8_t> buffer;
    size_t buffer_pos = 0;  // byte position of the current record
  };
  std::vector<Cursor> cursors(runs_.size());

  // Reads the next chunk of run `r`; validates the run CRC when the last
  // chunk comes in. Bit-flip faults land in the buffer before checksumming.
  const auto refill = [&](size_t r) -> Status {
    Cursor& cur = cursors[r];
    const std::optional<FaultKind> fault = FaultHit("spill.read", query_id_);
    if (fault == FaultKind::kError) {
      return SpillError("read (injected)", path_);
    }
    const uint64_t n = std::min(cur.rows_left, chunk_rows);
    cur.buffer.resize(static_cast<size_t>(n) * rec);
    cur.buffer_pos = 0;
    if (std::fseek(file_, static_cast<long>(cur.next_offset), SEEK_SET) != 0) {
      return SpillError("seek", path_);
    }
    size_t want = cur.buffer.size();
    if (fault == FaultKind::kShortRead && want > 0) {
      std::fread(cur.buffer.data(), 1, want - 1, file_);
      return SpillError("short read (injected)", path_);
    }
    if (std::fread(cur.buffer.data(), 1, want, file_) != want) {
      return SpillError("read", path_);
    }
    if (fault == FaultKind::kBitFlip && want > 0) {
      const uint64_t bit = FaultInjector::Instance().NextBitIndex(want);
      cur.buffer[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    cur.crc.Update(cur.buffer.data(), want);
    cur.next_offset += want;
    cur.rows_left -= n;
    if (cur.rows_left == 0) {
      uint32_t stored = 0;
      if (std::fseek(file_, static_cast<long>(cur.next_offset), SEEK_SET) !=
              0 ||
          std::fread(&stored, 1, 4, file_) != 4) {
        return SpillError("read", path_);
      }
      if (stored != cur.crc.value()) {
        return SpillError("checksum", path_);
      }
    }
    return Status::Ok();
  };

  // Min-heap over (key, run index): equal keys drain lower-numbered (older)
  // runs first, and within a run the buffer replays file order — together,
  // arrival order per key.
  using Entry = std::pair<uint64_t, size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  const auto current_key = [&](size_t r) {
    uint64_t key = 0;
    std::memcpy(&key, cursors[r].buffer.data() + cursors[r].buffer_pos, 8);
    return key;
  };
  for (size_t r = 0; r < runs_.size(); ++r) {
    cursors[r].next_offset = runs_[r].payload_offset;
    cursors[r].rows_left = runs_[r].rows;
    if (runs_[r].rows == 0) continue;
    SS_RETURN_IF_ERROR(refill(r));
    heap.emplace(current_key(r), r);
  }

  std::vector<double> values(doubles_);
  while (!heap.empty()) {
    const auto [key, r] = heap.top();
    heap.pop();
    Cursor& cur = cursors[r];
    std::memcpy(values.data(), cur.buffer.data() + cur.buffer_pos + 8,
                8 * doubles_);
    emit(key, values.data());
    cur.buffer_pos += rec;
    if (cur.buffer_pos >= cur.buffer.size()) {
      if (cur.rows_left == 0) continue;  // run exhausted
      SS_RETURN_IF_ERROR(refill(r));
    }
    heap.emplace(current_key(r), r);
  }
  return Status::Ok();
}

}  // namespace starshare
