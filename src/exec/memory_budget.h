// The memory arbiter behind EngineConfig::memory_budget_bytes: execution
// asks for a grant per aggregation consumer, and the grant is the ceiling
// that consumer may hold in memory before it must spill (exec/spill.h).
//
// Grants are ceilings, not allocations — the arbiter never reserves real
// memory; it divides the configured budget across the consumers that are
// live at grant time and lets each enforce its own cap. A zero budget means
// "unbounded": every grant is infinite and the spill path never engages,
// which keeps the default engine behaviour byte-for-byte what it was before
// budgets existed.
//
// Failure path: the fault site "budget.grant" (keyed by query id) can deny
// a grant, producing StatusCode::kResourceExhausted for exactly that
// member; the engine's fallback ladder then degrades the member without
// touching its shared-class siblings.

#ifndef STARSHARE_EXEC_MEMORY_BUDGET_H_
#define STARSHARE_EXEC_MEMORY_BUDGET_H_

#include <cstdint>
#include <limits>

#include "common/status.h"

namespace starshare {

// The per-consumer ceiling handed out by MemoryBudget::Grant. `unbounded`
// grants never trigger spilling regardless of bytes held.
struct MemoryGrant {
  uint64_t cap_bytes = std::numeric_limits<uint64_t>::max();
  bool unbounded = true;

  // True when holding `held` bytes (with `incoming` more about to be
  // staged) would exceed the ceiling.
  bool WouldExceed(uint64_t held, uint64_t incoming = 0) const {
    if (unbounded) return false;
    return held + incoming > cap_bytes;
  }
};

class MemoryBudget {
 public:
  // total_bytes == 0 disables budgeting (every grant unbounded).
  explicit MemoryBudget(uint64_t total_bytes = 0) : total_(total_bytes) {}

  uint64_t total_bytes() const { return total_; }
  bool bounded() const { return total_ > 0; }

  // Splits the budget across `consumers` live members and returns the share
  // for the member `query_id`. A share of zero is legal — it means every
  // batch spills. Fails with kResourceExhausted when the "budget.grant"
  // fault site fires for this query id.
  Result<MemoryGrant> Grant(int query_id, uint64_t consumers) const;

 private:
  uint64_t total_;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_MEMORY_BUDGET_H_
