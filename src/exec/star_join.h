// Single-query star-join operators — the building blocks the paper starts
// from (§3, Figs. 1 and 3) and the evaluation path of plans that share
// nothing.

#ifndef STARSHARE_EXEC_STAR_JOIN_H_
#define STARSHARE_EXEC_STAR_JOIN_H_

#include "common/status.h"
#include "cube/materialized_view.h"
#include "index/bitmap.h"
#include "query/query.h"
#include "query/result.h"
#include "storage/disk_model.h"

namespace starshare {

// Pipelined right-deep hash-based star join + aggregation (Fig. 1): builds
// a pass table per restricted dimension, streams the view once, aggregates
// passing tuples.
QueryResult HashStarJoin(const StarSchema& schema,
                         const DimensionalQuery& query,
                         const MaterializedView& view, DiskModel& disk);

// Bitmap join-index star join (Fig. 3): OR the per-member bitmaps within
// each indexed restricted dimension, AND across dimensions, probe the
// candidate tuples, apply any residual (unindexed) predicates, aggregate.
// Requires a view index on at least one restricted dimension.
QueryResult IndexStarJoin(const StarSchema& schema,
                          const DimensionalQuery& query,
                          const MaterializedView& view, DiskModel& disk);

// Fallible variants: identical evaluation, but injected faults — at the
// "exec.bind_query" site (keyed by query id) or latched on the DiskModel
// during the scan/probe ("disk.read_*") — surface as an error Status
// instead of going unnoticed. With no fault armed these are exactly the
// functions above. The non-Try forms remain for callers that have no
// recovery story (benches, brute-force comparisons).
Result<QueryResult> TryHashStarJoin(const StarSchema& schema,
                                    const DimensionalQuery& query,
                                    const MaterializedView& view,
                                    DiskModel& disk);
Result<QueryResult> TryIndexStarJoin(const StarSchema& schema,
                                     const DimensionalQuery& query,
                                     const MaterializedView& view,
                                     DiskModel& disk);

// Applies the restricted dimensions of a query that have no usable index:
// dense pass tables over the view's stored keys, tested per retrieved
// tuple.
class ResidualFilter {
 public:
  ResidualFilter(const StarSchema& schema, const MaterializedView& view,
                 const std::vector<const DimPredicate*>& preds);

  bool Matches(uint64_t row) const {
    for (const auto& f : filters_) {
      if (!f.pass[static_cast<size_t>(f.col->Get(row))]) return false;
    }
    return true;
  }

  bool empty() const { return filters_.empty(); }
  size_t num_predicates() const { return filters_.size(); }

 private:
  struct Filter {
    const KeyColumn* col;
    std::vector<uint8_t> pass;
  };
  std::vector<Filter> filters_;
};

// The query's candidate bitmap over `view` (steps 1–5 of §3.2) from the
// indexed restricted dimensions, shared by IndexStarJoin and the shared
// index operators. Charges index I/O. Predicates without an index are
// appended to `residual` (may be null only if the caller knows every
// restricted dimension is indexed). At least one restricted dimension must
// be indexed.
Bitmap BuildResultBitmap(const StarSchema& schema,
                         const DimensionalQuery& query,
                         const MaterializedView& view, DiskModel& disk,
                         std::vector<const DimPredicate*>* residual = nullptr);

// Dense pass table for one predicate on the view's stored level of the
// predicate's dimension: pass[key] == 1 iff `key` maps up into the member
// set. (The hash table a relational engine would build on the dimension
// table, realized as an array because member ids are dense.)
std::vector<uint8_t> BuildPassTable(const StarSchema& schema,
                                    const MaterializedView& view,
                                    const DimPredicate& pred);

}  // namespace starshare

#endif  // STARSHARE_EXEC_STAR_JOIN_H_
