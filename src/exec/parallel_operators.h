// Morsel-parallel variants of the three shared star-join operators
// (exec/shared_operators.h), built on src/parallel/.
//
// Execution model: the fact/view scan (or the shared probe of the union
// bitmap) is split into page-aligned morsels handed to pool workers by an
// atomic cursor. Workers do the read-mostly work — evaluate the shared
// dimension pass masks, test per-query bitmaps and residual predicates,
// map keys up the hierarchies and pack group keys — and emit per-morsel
// match buffers of (packed key, measure value) per query. The calling
// thread merges buffers in ascending morsel order into each query's
// HashAggregator, overlapping the workers.
//
// Determinism guarantee: because the merge replays every aggregation in
// exactly the serial row order, results are BIT-IDENTICAL to the serial
// operators for any thread count and any morsel size — floating-point
// sums fold in the same sequence. Merged IoStats page counts also equal
// the serial counts exactly (morsels are page-aligned; each page is
// charged by one worker), so the 1998 modeled I/O time is unchanged; only
// wall-clock CPU time is divided across cores. See DESIGN.md "Parallel
// execution model".
//
// Failure contract: identical to the Try* serial operators — a fault in a
// member's private phase fails only that member; a device fault latched by
// any worker during the shared pass fails every surviving member.

#ifndef STARSHARE_EXEC_PARALLEL_OPERATORS_H_
#define STARSHARE_EXEC_PARALLEL_OPERATORS_H_

#include <vector>

#include "common/status.h"
#include "cube/materialized_view.h"
#include "exec/shared_operators.h"
#include "parallel/policy.h"
#include "query/query.h"
#include "storage/disk_model.h"

namespace starshare {

Result<SharedOutcome> ParallelSharedScanStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk,
    const ParallelPolicy& policy);

Result<SharedOutcome> ParallelSharedIndexStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk,
    const ParallelPolicy& policy);

Result<SharedOutcome> ParallelSharedHybridStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& hash_queries,
    const std::vector<const DimensionalQuery*>& index_queries,
    const MaterializedView& view, DiskModel& disk,
    const ParallelPolicy& policy);

}  // namespace starshare

#endif  // STARSHARE_EXEC_PARALLEL_OPERATORS_H_
