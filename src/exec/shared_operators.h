// The paper's three shared star-join operators (§3): the reason related
// queries should be planned onto a common base table at all.
//
// All operators require every query to be answerable from `view` and return
// per-query results in input order. Queries sharing a class may have
// *disjoint* predicates — sharing is of the scan / probe / dimension hash
// tables, not of selections.

#ifndef STARSHARE_EXEC_SHARED_OPERATORS_H_
#define STARSHARE_EXEC_SHARED_OPERATORS_H_

#include <vector>

#include "common/status.h"
#include "cube/materialized_view.h"
#include "exec/vector_batch.h"
#include "parallel/policy.h"
#include "query/query.h"
#include "query/result.h"
#include "storage/disk_model.h"

namespace starshare {

// Maximum queries per shared class (per-dimension pass masks are 32-bit).
inline constexpr size_t kMaxClassQueries = 32;

// Per-class outcome of a fallible shared operator: `statuses[i]` pairs with
// `results[i]` (same order as the plain operators — hash members first for
// the hybrid). A member with an error status produced no result, but the
// other members' results are still valid: sharing couples the queries'
// I/O, not their fates.
struct SharedOutcome {
  std::vector<QueryResult> results;
  std::vector<Status> statuses;
};

// All operators take a BatchConfig selecting the CPU execution style: the
// default is the vectorized batch engine; `BatchConfig::TupleAtATime()`
// runs the original fused per-tuple loops. Both styles produce bit-identical
// results and charge exactly the same IoStats (batching regroups CPU work
// only; see DESIGN.md "Vectorized execution model").

// Shared scan hash-based star join (§3.1, Fig. 2): one scan of `view`, one
// pass-mask table per restricted dimension shared by all queries, one
// aggregation per query.
std::vector<QueryResult> SharedScanStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk,
    const BatchConfig& batch = BatchConfig());

// Shared join-index-based star join (§3.2, Fig. 4): per-query result
// bitmaps are ORed, the base table is probed once with the union, and each
// retrieved tuple is routed to the queries whose bitmap has its position
// set ("Filter tuples").
std::vector<QueryResult> SharedIndexStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk,
    const BatchConfig& batch = BatchConfig());

// Shared scan for hash-based + index-based star join (§3.3, Fig. 5):
// `hash_queries` run as a shared scan; each of `index_queries` builds its
// result bitmap from the indexes but, instead of probing, filters the
// scanned tuples through the bitmap — its probe I/O is absorbed by the scan
// the hash queries need anyway. Results: hash queries first, then index
// queries, each in input order.
std::vector<QueryResult> SharedHybridStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& hash_queries,
    const std::vector<const DimensionalQuery*>& index_queries,
    const MaterializedView& view, DiskModel& disk,
    const BatchConfig& batch = BatchConfig());

// Fallible variants with graceful per-member degradation. A fault hitting
// one member during its private phase (binding at "exec.bind_query",
// bitmap construction at "exec.build_bitmap" / "disk.read_index", keyed by
// query id) fails only that member; the survivors run the shared pass and
// produce normal results. A fault during the shared pass itself (the scan
// or probe, "disk.read_seq"/"disk.read_rand") fails every surviving
// member. The whole call returns an error Status only for malformed input
// (nothing to execute). With no faults armed these evaluate exactly like
// the plain operators above, which remain for callers without a recovery
// path.
Result<SharedOutcome> TrySharedIndexStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk,
    const BatchConfig& batch = BatchConfig());

Result<SharedOutcome> TrySharedHybridStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& hash_queries,
    const std::vector<const DimensionalQuery*>& index_queries,
    const MaterializedView& view, DiskModel& disk,
    const BatchConfig& batch = BatchConfig());

// Morsel-parallel entry points: the same unified class pipeline with an
// engaged policy — parallelism is a property of the pipeline driver, not a
// separate operator family. The merge replays every aggregation in serial
// row order, so results are bit-identical to the serial operators (and
// merged IoStats exactly equal) at any thread count and morsel size; the
// failure contract matches the Try* variants. See DESIGN.md "Parallel
// execution model".
Result<SharedOutcome> ParallelSharedScanStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk,
    const ParallelPolicy& policy);

Result<SharedOutcome> ParallelSharedIndexStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& queries,
    const MaterializedView& view, DiskModel& disk,
    const ParallelPolicy& policy);

Result<SharedOutcome> ParallelSharedHybridStarJoin(
    const StarSchema& schema,
    const std::vector<const DimensionalQuery*>& hash_queries,
    const std::vector<const DimensionalQuery*>& index_queries,
    const MaterializedView& view, DiskModel& disk,
    const ParallelPolicy& policy);

}  // namespace starshare

#endif  // STARSHARE_EXEC_SHARED_OPERATORS_H_
