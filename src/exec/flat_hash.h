// A minimal open-addressing hash map from uint64 keys to a POD value,
// used on the hot aggregation and dimension-join paths. Linear probing,
// power-of-two capacity, max load factor 0.7. Keys must not equal
// kEmptyKey (all ones) — packed group-by keys never do (checked by callers).

#ifndef STARSHARE_EXEC_FLAT_HASH_H_
#define STARSHARE_EXEC_FLAT_HASH_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace starshare {

template <typename V>
class FlatHashMap {
 public:
  static constexpr uint64_t kEmptyKey = ~0ULL;

  explicit FlatHashMap(size_t expected_entries = 16) {
    size_t cap = 16;
    while (cap * 7 < expected_entries * 10) cap <<= 1;
    slots_.assign(cap, Slot{kEmptyKey, V{}});
  }

  // Returns the value slot for `key`, inserting a default-constructed value
  // if absent.
  V& FindOrInsert(uint64_t key) {
    SS_DCHECK(key != kEmptyKey);
    if ((size_ + 1) * 10 > slots_.size() * 7) Grow();
    size_t i = Hash(key) & (slots_.size() - 1);
    for (;;) {
      Slot& slot = slots_[i];
      if (slot.key == key) return slot.value;
      if (slot.key == kEmptyKey) {
        slot.key = key;
        ++size_;
        return slot.value;
      }
      i = (i + 1) & (slots_.size() - 1);
    }
  }

  // Returns the value for `key` or nullptr.
  const V* Find(uint64_t key) const {
    SS_DCHECK(key != kEmptyKey);
    size_t i = Hash(key) & (slots_.size() - 1);
    for (;;) {
      const Slot& slot = slots_[i];
      if (slot.key == key) return &slot.value;
      if (slot.key == kEmptyKey) return nullptr;
      i = (i + 1) & (slots_.size() - 1);
    }
  }
  V* Find(uint64_t key) {
    return const_cast<V*>(static_cast<const FlatHashMap*>(this)->Find(key));
  }

  size_t size() const { return size_; }

  // Current slot-array capacity (a power of two). Exposed so tests can
  // observe rehashes when inserting past the load-factor threshold.
  size_t capacity() const { return slots_.size(); }

  // Resident bytes of the slot array — the map's only allocation. Feeds the
  // hash_bytes field of per-node memory accounting (common/mem_stats.h).
  uint64_t MemoryBytes() const { return slots_.size() * sizeof(Slot); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.key != kEmptyKey) fn(slot.key, slot.value);
    }
  }

 private:
  struct Slot {
    uint64_t key;
    V value;
  };

  static uint64_t Hash(uint64_t x) {
    // splitmix64 finalizer: strong enough for packed keys.
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{kEmptyKey, V{}});
    size_ = 0;
    for (const Slot& slot : old) {
      if (slot.key != kEmptyKey) FindOrInsert(slot.key) = slot.value;
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_FLAT_HASH_H_
