#include "exec/result_cache.h"

#include "common/str_util.h"

namespace starshare {

std::string ResultCache::KeyOf(const DimensionalQuery& query,
                               const StarSchema& schema) {
  // Target, aggregate, measure and normalized predicate fully determine
  // the result.
  std::string key = query.target().ToString(schema);
  key += '|';
  key += AggOpName(query.agg());
  key += StrFormat("|m%zu|", query.measure());
  for (const DimPredicate& pred : query.predicate().conjuncts()) {
    key += StrFormat("d%zu@%d:", pred.dim, pred.level);
    for (int32_t m : pred.members) key += StrFormat("%d,", m);
    key += ';';
  }
  return key;
}

const QueryResult* ResultCache::Lookup(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return &lru_.front().result;
}

void ResultCache::Insert(const std::string& key, QueryResult result) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(result)});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void ResultCache::Clear() {
  lru_.clear();
  index_.clear();
}

}  // namespace starshare
