#include "exec/result_cache.h"

#include "common/str_util.h"
#include "obs/metrics.h"

namespace starshare {

std::string ResultCache::KeyOf(const DimensionalQuery& query,
                               const StarSchema& schema) {
  // Target, aggregate, measure and normalized predicate fully determine
  // the result.
  std::string key = query.target().ToString(schema);
  key += '|';
  key += AggOpName(query.agg());
  key += StrFormat("|m%zu|", query.measure());
  for (const DimPredicate& pred : query.predicate().conjuncts()) {
    key += StrFormat("d%zu@%d:", pred.dim, pred.level);
    for (int32_t m : pred.members) key += StrFormat("%d,", m);
    key += ';';
  }
  return key;
}

const QueryResult* ResultCache::Lookup(const std::string& key) {
  static obs::Counter& hit_metric = obs::Metrics().counter("result_cache.hits");
  static obs::Counter& miss_metric =
      obs::Metrics().counter("result_cache.misses");
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    miss_metric.Add();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  hit_metric.Add();
  return &lru_.front().result;
}

void ResultCache::Insert(const std::string& key, QueryResult result) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(result)});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    static obs::Counter& eviction_metric =
        obs::Metrics().counter("result_cache.evictions");
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    eviction_metric.Add();
  }
}

void ResultCache::Clear() {
  if (!lru_.empty()) {
    static obs::Counter& invalidation_metric =
        obs::Metrics().counter("result_cache.invalidations");
    invalidations_ += lru_.size();
    invalidation_metric.Add(lru_.size());
  }
  lru_.clear();
  index_.clear();
}

}  // namespace starshare
