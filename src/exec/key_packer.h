// Packs a group-by key (one member id per retained dimension, at the
// target's levels) into a single uint64 for the aggregation hash table.
// Bit widths come from level cardinalities; the packer checks the total
// fits in 63 bits (so the packed key never collides with the hash map's
// empty sentinel).

#ifndef STARSHARE_EXEC_KEY_PACKER_H_
#define STARSHARE_EXEC_KEY_PACKER_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "schema/groupby_spec.h"
#include "schema/star_schema.h"

namespace starshare {

class KeyPacker {
 public:
  KeyPacker(const StarSchema& schema, const GroupBySpec& target);

  size_t num_keys() const { return shifts_.size(); }
  const std::vector<size_t>& retained_dims() const { return retained_dims_; }

  // `members[i]` is the member id (at the target level) of retained
  // dimension i.
  uint64_t Pack(const int32_t* members) const {
    uint64_t key = 0;
    for (size_t i = 0; i < shifts_.size(); ++i) {
      key |= PackField(i, members[i]);
    }
    return key;
  }

  // The bits field i contributes to a packed key when it holds `member`.
  // ORing PackField over all fields is exactly Pack — the dense translation
  // arrays of the vectorized engine (exec/dim_translator.h) precompute these
  // per stored member so the hot loop is one load per dimension.
  uint64_t PackField(size_t i, int32_t member) const {
    SS_DCHECK(static_cast<uint64_t>(member) <= masks_[i]);
    return static_cast<uint64_t>(static_cast<uint32_t>(member)) << shifts_[i];
  }

  std::vector<int32_t> Unpack(uint64_t key) const {
    std::vector<int32_t> out(shifts_.size());
    for (size_t i = 0; i < shifts_.size(); ++i) {
      out[i] = static_cast<int32_t>((key >> shifts_[i]) & masks_[i]);
    }
    return out;
  }

 private:
  std::vector<size_t> retained_dims_;
  std::vector<uint32_t> shifts_;
  std::vector<uint64_t> masks_;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_KEY_PACKER_H_
