#include "exec/key_packer.h"

#include <vector>

namespace starshare {
namespace {

uint32_t BitsFor(uint64_t cardinality) {
  uint32_t bits = 1;
  while ((1ULL << bits) < cardinality) ++bits;
  return bits;
}

}  // namespace

KeyPacker::KeyPacker(const StarSchema& schema, const GroupBySpec& target) {
  retained_dims_ = target.RetainedDims(schema);
  // The first retained dimension occupies the *high* bits, so packed-key
  // order equals lexicographic order of the unpacked key vector (the view
  // builder relies on this to emit lexicographically clustered tables).
  uint32_t total_bits = 0;
  std::vector<uint32_t> bits(retained_dims_.size());
  for (size_t i = 0; i < retained_dims_.size(); ++i) {
    const size_t d = retained_dims_[i];
    bits[i] = BitsFor(schema.dim(d).cardinality(target.level(d)));
    total_bits += bits[i];
  }
  SS_CHECK_MSG(total_bits <= 63,
               "group-by key needs %u bits; widen KeyPacker to multi-word "
               "keys for this schema",
               total_bits);
  uint32_t shift = total_bits;
  for (size_t i = 0; i < retained_dims_.size(); ++i) {
    shift -= bits[i];
    shifts_.push_back(shift);
    masks_.push_back((1ULL << bits[i]) - 1);
  }
}

}  // namespace starshare
