// Top-level plan execution: dispatches each class of a GlobalPlan to the
// appropriate shared operator, or runs queries one at a time for the naive
// (no-sharing) baseline the paper compares against.

#ifndef STARSHARE_EXEC_EXECUTOR_H_
#define STARSHARE_EXEC_EXECUTOR_H_

#include <vector>

#include "plan/plan.h"
#include "query/result.h"
#include "storage/disk_model.h"

namespace starshare {

struct ExecutedQuery {
  const DimensionalQuery* query = nullptr;
  QueryResult result;
};

class Executor {
 public:
  Executor(const StarSchema& schema, DiskModel& disk)
      : schema_(schema), disk_(disk) {}

  // One query, one view, one method — no sharing.
  QueryResult ExecuteSingle(const DimensionalQuery& query,
                            const MaterializedView& view,
                            JoinMethod method) const;

  // One class with the §3 operator its member methods call for:
  //   * any hash member  -> shared scan / hybrid shared scan,
  //   * all index members -> shared index join.
  // Results in member order.
  std::vector<ExecutedQuery> ExecuteClass(const ClassPlan& cls) const;

  // Whole plan; results ordered by query id ascending.
  std::vector<ExecutedQuery> ExecutePlan(const GlobalPlan& plan) const;

  // Naive baseline: every member of every class evaluated separately (its
  // own scan or probe), as if the queries had been submitted one at a time.
  // Results ordered by query id ascending.
  std::vector<ExecutedQuery> ExecutePlanUnshared(const GlobalPlan& plan) const;

 private:
  const StarSchema& schema_;
  DiskModel& disk_;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_EXECUTOR_H_
