// Top-level plan execution: dispatches each class of a GlobalPlan to the
// appropriate shared operator, or runs queries one at a time for the naive
// (no-sharing) baseline the paper compares against.
//
// Execution never aborts on a per-query failure: every entry of the
// returned vector carries a Status, and a failed member of a shared class
// does not disturb its siblings (the Engine layers fact-table fallback on
// top; see core/engine.h).

#ifndef STARSHARE_EXEC_EXECUTOR_H_
#define STARSHARE_EXEC_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "exec/parallel_operators.h"
#include "plan/plan.h"
#include "query/result.h"
#include "storage/disk_model.h"

namespace starshare {

struct ExecutedQuery {
  const DimensionalQuery* query = nullptr;
  QueryResult result;
  // OK iff `result` is valid. Failed queries keep an empty result.
  Status status;
  // True when the result came from the fact-table fallback path after the
  // planned evaluation failed (see ExecutionReport).
  bool degraded = false;

  bool ok() const { return status.ok(); }
};

// What went wrong (and what was saved) during one Engine::Execute call.
// Empty when every query ran on its planned path.
struct ExecutionReport {
  struct Event {
    int query_id = 0;
    Status error;           // the planned evaluation's failure
    bool recovered = false; // fact-table fallback produced the result
    Status fallback_error;  // set when the fallback also failed
  };
  std::vector<Event> events;

  bool clean() const { return events.empty(); }
  size_t num_recovered() const;
  size_t num_failed() const;  // events that did not recover
  std::string ToString() const;
};

class Executor {
 public:
  Executor(const StarSchema& schema, DiskModel& disk)
      : schema_(schema), disk_(disk) {}

  // Morsel-parallel evaluation of shared classes. With the default policy
  // (no pool, parallelism 1) every class runs the serial operators — the
  // 1998 cost-model behavior. When engaged, ExecuteClass dispatches to the
  // Parallel* operators, which are bit-identical to serial by construction
  // (exec/parallel_operators.h). ExecuteSingle and the unshared baseline
  // always stay serial: they exist to reproduce the paper's per-query
  // costs, not to be fast.
  void set_parallel_policy(const ParallelPolicy& policy) { policy_ = policy; }
  const ParallelPolicy& parallel_policy() const { return policy_; }

  // One query, one view, one method — no sharing. An unknown method or an
  // injected fault is an error Status, never an abort.
  Result<QueryResult> ExecuteSingle(const DimensionalQuery& query,
                                    const MaterializedView& view,
                                    JoinMethod method) const;

  // One class with the §3 operator its member methods call for:
  //   * any hash member  -> shared scan / hybrid shared scan,
  //   * all index members -> shared index join.
  // Results in member order; per-member failures are carried in each
  // entry's `status` and do not affect the other members.
  std::vector<ExecutedQuery> ExecuteClass(const ClassPlan& cls) const;

  // Whole plan; results ordered by query id ascending.
  std::vector<ExecutedQuery> ExecutePlan(const GlobalPlan& plan) const;

  // Naive baseline: every member of every class evaluated separately (its
  // own scan or probe), as if the queries had been submitted one at a time.
  // Results ordered by query id ascending.
  std::vector<ExecutedQuery> ExecutePlanUnshared(const GlobalPlan& plan) const;

 private:
  const StarSchema& schema_;
  DiskModel& disk_;
  ParallelPolicy policy_;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_EXECUTOR_H_
