// Top-level plan execution: lowers each class of a GlobalPlan into its
// physical operator chain (plan/lowering.h) and runs it through the unified
// class pipeline (exec/operators/class_pipeline.h), or runs queries one at
// a time for the naive (no-sharing) baseline the paper compares against.
// Every path executes a lowered tree; callers that pass a PhysicalPlan get
// the executed, annotated tree back for EXPLAIN ANALYZE.
//
// Execution never aborts on a per-query failure: every entry of the
// returned vector carries a Status, and a failed member of a shared class
// does not disturb its siblings (the Engine layers fact-table fallback on
// top; see core/engine.h).

#ifndef STARSHARE_EXEC_EXECUTOR_H_
#define STARSHARE_EXEC_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "exec/memory_budget.h"
#include "exec/spill.h"
#include "parallel/policy.h"
#include "plan/physical_plan.h"
#include "plan/plan.h"
#include "query/result.h"
#include "storage/disk_model.h"

namespace starshare {

struct ExecutedQuery {
  const DimensionalQuery* query = nullptr;
  QueryResult result;
  // OK iff `result` is valid. Failed queries keep an empty result.
  Status status;
  // True when the result came from the fact-table fallback path after the
  // planned evaluation failed (see ExecutionReport).
  bool degraded = false;

  bool ok() const { return status.ok(); }
};

// What went wrong (and what was saved) during one Engine::Execute call.
// Empty when every query ran on its planned path.
struct ExecutionReport {
  struct Event {
    int query_id = 0;
    Status error;           // the planned evaluation's failure
    bool recovered = false; // fact-table fallback produced the result
    Status fallback_error;  // set when the fallback also failed
  };
  std::vector<Event> events;

  bool clean() const { return events.empty(); }
  size_t num_recovered() const;
  size_t num_failed() const;  // events that did not recover
  std::string ToString() const;
};

class Executor {
 public:
  Executor(const StarSchema& schema, DiskModel& disk)
      : schema_(schema), disk_(disk) {}

  // Parallelism of the shared-class pipeline driver. With the default
  // policy (no pool, parallelism 1) every class runs the serial driver —
  // the 1998 cost-model behavior; when engaged, the same operator chains
  // run morsel-parallel, bit-identical by construction. ExecuteSingle and
  // the unshared baseline always stay serial: they exist to reproduce the
  // paper's per-query costs, not to be fast.
  void set_parallel_policy(const ParallelPolicy& policy) { policy_ = policy; }
  const ParallelPolicy& parallel_policy() const { return policy_; }

  // Aggregation memory budget for every class this executor runs (null or
  // unbounded = the legacy in-memory path). The budget is split across a
  // class's live members; a single-member class — including the engine's
  // fact-table fallback — gets the whole budget. `spill` says where runs
  // land. The pointer must outlive the executor's use.
  void set_memory_budget(const MemoryBudget* budget,
                         const SpillConfig& spill) {
    budget_ = budget;
    spill_ = spill;
  }

  // One query, one view, one method — a one-member class, no sharing. An
  // unknown method or an injected fault is an error Status, never an
  // abort. With `phys` the lowered single-query chain is appended there
  // (under `parent` when given); `local` optionally annotates it with the
  // member's cost estimates.
  Result<QueryResult> ExecuteSingle(const DimensionalQuery& query,
                                    const MaterializedView& view,
                                    JoinMethod method,
                                    PhysicalPlan* phys = nullptr,
                                    size_t parent = kNoPhysNode,
                                    const LocalPlan* local = nullptr) const;

  // One class with the §3 operator chain its member methods call for:
  //   * any hash member  -> shared scan / hybrid shared scan,
  //   * all index members -> shared index join.
  // Results in member order; per-member failures are carried in each
  // entry's `status` and do not affect the other members. With `phys` the
  // executed chain (one root per evaluated chunk) is recorded there.
  std::vector<ExecutedQuery> ExecuteClass(const ClassPlan& cls,
                                          PhysicalPlan* phys = nullptr) const;

  // One derived (rollup) class: coarser cube levels re-aggregated from the
  // in-memory derived table of a finished parent level (wrapped as `view`;
  // see exec/derived_table.h and cube/lattice.h). Runs the same pipeline as
  // ExecuteClass — grants, spill, serial or morsel drivers — but sources
  // rows from DerivedSourceOp, so no disk model charge is recorded at all.
  // Results in `queries` order. With `phys` the chain is appended there and
  // its DerivedScan gains a `reads` DAG edge to `input_node` (the producer's
  // Aggregate or Fallback; pass kNoPhysNode to skip). `rollup_est_ms` prices
  // the whole class, `member_est_ms` (optional, parallel to `queries`) the
  // members. `aggregate_nodes` (optional, parallel to `queries`) receives
  // each member's Aggregate node so cascading rollups can name this class
  // as their own producer.
  std::vector<ExecutedQuery> ExecuteDerivedClass(
      const std::vector<const DimensionalQuery*>& queries,
      const MaterializedView& view, double rollup_est_ms,
      const std::vector<double>* member_est_ms, PhysicalPlan* phys,
      size_t input_node, std::vector<size_t>* aggregate_nodes = nullptr) const;

  // Whole plan; results ordered by query id ascending.
  std::vector<ExecutedQuery> ExecutePlan(const GlobalPlan& plan,
                                         PhysicalPlan* phys = nullptr) const;

  // Naive baseline: every member of every class evaluated separately (its
  // own scan or probe), as if the queries had been submitted one at a time.
  // Results ordered by query id ascending.
  std::vector<ExecutedQuery> ExecutePlanUnshared(
      const GlobalPlan& plan, PhysicalPlan* phys = nullptr) const;

 private:
  const StarSchema& schema_;
  DiskModel& disk_;
  ParallelPolicy policy_;
  const MemoryBudget* budget_ = nullptr;
  SpillConfig spill_;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_EXECUTOR_H_
