// Derived tables: the in-memory Table a finished aggregate's groups become
// so a coarser group-by can consume them through the ordinary class
// pipeline. This is the materialization seam of the CUBE/ROLLUP lattice —
// one parent level's QueryResult turns into a (never catalog-registered,
// never page-charged) table whose layout matches what ViewBuilder would
// have produced for the same spec: one int32 key column per retained
// dimension in schema order, one measure column holding the group values.

#ifndef STARSHARE_EXEC_DERIVED_TABLE_H_
#define STARSHARE_EXEC_DERIVED_TABLE_H_

#include <memory>
#include <string>

#include "query/result.h"
#include "schema/groupby_spec.h"
#include "schema/star_schema.h"
#include "storage/table.h"

namespace starshare {

// Materializes `result` (canonically sorted, target spec `spec`) as an
// uncompressed in-memory table named `name`. The rows keep the result's
// canonical order, so every downstream consumer sees one deterministic row
// sequence regardless of how the parent was driven. MaterializedView can
// wrap the returned table directly (same key-column contract as
// ViewBuilder).
std::unique_ptr<Table> MakeDerivedTable(const StarSchema& schema,
                                        const GroupBySpec& spec,
                                        const QueryResult& result,
                                        const std::string& name);

}  // namespace starshare

#endif  // STARSHARE_EXEC_DERIVED_TABLE_H_
