// Scan source (physical node kind kScan): streams the contiguous rows
// [begin, end) of a table in fixed-size batches, charging each page exactly
// once, in ascending order, the first time a batch touches it — the same
// ReadSequential call sequence as a page-at-a-time scan of the range, so
// IoStats and fault latching are bit-compatible with Table::ScanPages /
// ScanRowRange at any batch size.

#ifndef STARSHARE_EXEC_OPERATORS_SCAN_SOURCE_H_
#define STARSHARE_EXEC_OPERATORS_SCAN_SOURCE_H_

#include <algorithm>

#include "exec/operators/operator.h"
#include "storage/disk_model.h"
#include "storage/table.h"

namespace starshare {

class ScanSourceOp : public BatchOperator {
 public:
  // Morsel drivers pass page-aligned [begin, end) slices, so each page is
  // charged by exactly one ScanSourceOp across the whole scan.
  ScanSourceOp(const Table& table, DiskModel& disk, uint64_t row_begin,
               uint64_t row_end, uint64_t batch_rows)
      : disk_(disk),
        table_id_(table.id()),
        rpp_(table.rows_per_page()),
        cursor_(row_begin),
        end_(row_end),
        batch_rows_(batch_rows == 0 ? 1 : batch_rows),
        next_page_(row_begin / table.rows_per_page()) {}

  bool NextBatch(ClassBatch& batch) override {
    if (cursor_ >= end_) return false;
    const uint64_t batch_end = std::min(cursor_ + batch_rows_, end_);
    // High-water page cursor: charge every page this batch reaches into
    // that no earlier batch already charged.
    const uint64_t last_page = (batch_end - 1) / rpp_;
    for (; next_page_ <= last_page; ++next_page_) {
      disk_.ReadSequential(table_id_, next_page_);
    }
    disk_.CountTuples(batch_end - cursor_);
    batch.begin = cursor_;
    batch.end = batch_end;
    batch.positions = nullptr;
    batch.num_positions = 0;
    cursor_ = batch_end;
    return true;
  }

  // Continuous-scan support (server/scan_runner.h): repositions the
  // operator on a new [begin, end) slice. The high-water page cursor is
  // reset too, so rows revisited after a circular wraparound are charged
  // again — a second revolution over a page is real modeled I/O.
  void Reset(uint64_t row_begin, uint64_t row_end) {
    cursor_ = row_begin;
    end_ = row_end;
    next_page_ = row_begin / rpp_;
  }

  uint64_t cursor() const { return cursor_; }
  uint64_t end() const { return end_; }

 private:
  DiskModel& disk_;
  uint32_t table_id_;
  uint64_t rpp_;
  uint64_t cursor_;
  uint64_t end_;
  uint64_t batch_rows_;
  uint64_t next_page_;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_OPERATORS_SCAN_SOURCE_H_
