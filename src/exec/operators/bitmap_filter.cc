#include "exec/operators/bitmap_filter.h"

namespace starshare {
namespace {

// Streams one index member's candidate rows in [row_begin, row_end) — its
// bitmap sliced word-at-a-time, residual-filtered — through
// `sink(keys, values, n)` in ascending row order, batch-at-a-time.
template <typename Sink>
void ForEachIndexMemberBatch(const Bitmap& bitmap, uint64_t row_begin,
                             uint64_t row_end, const ResidualFilter& residual,
                             const BoundQuery& bound, size_t batch_rows,
                             Sink&& sink) {
  if (batch_rows == 0) batch_rows = kDefaultBatchRows;
  std::vector<uint64_t> rows;
  rows.reserve(batch_rows);
  std::vector<uint64_t> keys;
  std::vector<double> values;
  const auto flush = [&] {
    if (rows.empty()) return;
    if (!residual.empty()) {
      size_t kept = 0;
      for (const uint64_t row : rows) {
        if (residual.Matches(row)) rows[kept++] = row;
      }
      rows.resize(kept);
      if (rows.empty()) return;
    }
    keys.resize(rows.size());
    values.resize(rows.size());
    bound.translator().PackRows(rows.data(), rows.size(), keys.data());
    const double* measures = bound.measure_data();
    for (size_t i = 0; i < rows.size(); ++i) values[i] = measures[rows[i]];
    sink(keys.data(), values.data(), keys.size());
    rows.clear();
  };
  bitmap.ForEachSetBitInRange(row_begin, row_end, [&](uint64_t row) {
    rows.push_back(row);
    if (rows.size() == batch_rows) flush();
  });
  flush();
}

}  // namespace

bool BitmapFilterOp::NextBatch(ClassBatch& batch) {
  if (!child_->NextBatch(batch)) return false;
  const bool probe = batch.positions != nullptr;
  if (batch_.vectorized) {
    if (probe) {
      ProcessProbeVectorized(batch);
    } else {
      ProcessScanVectorized(batch);
    }
  } else {
    if (probe) {
      ProcessProbeTuple(batch);
    } else {
      ProcessScanTuple(batch);
    }
  }
  return true;
}

void BitmapFilterOp::ProcessScanVectorized(const ClassBatch& batch) {
  for (size_t k = 0; k < bitmaps_.size(); ++k) {
    sel_.clear();
    bitmaps_[k].ForEachSetBitInRange(
        batch.begin, batch.end, [&](uint64_t row) { sel_.push_back(row); });
    const ResidualFilter& residual = residuals_[k];
    if (!residual.empty()) {
      size_t kept = 0;
      for (const uint64_t row : sel_) {
        if (residual.Matches(row)) sel_[kept++] = row;
      }
      sel_.resize(kept);
    }
    EmitRows(bound_[slot_base_ + k], sel_.data(), sel_.size(),
             (*batch.matches)[slot_base_ + k]);
  }
}

void BitmapFilterOp::ProcessScanTuple(const ClassBatch& batch) {
  for (uint64_t row = batch.begin; row < batch.end; ++row) {
    for (size_t k = 0; k < bitmaps_.size(); ++k) {
      if (!bitmaps_[k].Test(row) || !residuals_[k].Matches(row)) continue;
      const BoundQuery& bound = bound_[slot_base_ + k];
      (*batch.matches)[slot_base_ + k].Push(bound.PackedKeyAt(row),
                                            bound.MeasureAt(row));
    }
  }
}

void BitmapFilterOp::ProcessProbeVectorized(const ClassBatch& batch) {
  for (size_t k = 0; k < bitmaps_.size(); ++k) {
    QueryMatchBatch& out = (*batch.matches)[slot_base_ + k];
    ForEachIndexMemberBatch(
        bitmaps_[k], batch.begin, batch.end, residuals_[k],
        bound_[slot_base_ + k], batch_.EffectiveBatchRows(),
        [&out](const uint64_t* keys, const double* values, size_t n) {
          out.Append(keys, values, n);
        });
  }
}

void BitmapFilterOp::ProcessProbeTuple(const ClassBatch& batch) {
  for (size_t i = 0; i < batch.num_positions; ++i) {
    const uint64_t row = batch.positions[i];
    for (size_t k = 0; k < bitmaps_.size(); ++k) {
      if (!bitmaps_[k].Test(row) || !residuals_[k].Matches(row)) continue;
      const BoundQuery& bound = bound_[slot_base_ + k];
      (*batch.matches)[slot_base_ + k].Push(bound.PackedKeyAt(row),
                                            bound.MeasureAt(row));
    }
  }
}

}  // namespace starshare
