// Star-join filter (physical node kind kStarJoinFilter): evaluates the
// shared dimension pass masks (§3.1, Fig. 2) over each pulled scan batch
// and emits every hash member's matches. Vectorized mode works
// column-at-a-time into per-row masks then per-member selection vectors;
// tuple mode fuses the per-row mask loop. Both emit identical streams.

#ifndef STARSHARE_EXEC_OPERATORS_STAR_JOIN_FILTER_H_
#define STARSHARE_EXEC_OPERATORS_STAR_JOIN_FILTER_H_

#include <vector>

#include "exec/operators/operator.h"
#include "exec/shared_star_join_internal.h"
#include "storage/disk_model.h"

namespace starshare {

class StarJoinFilterOp : public BatchOperator {
 public:
  // `bound` holds the class's live members, hash members in slots
  // [0, n_hash). Emits only those slots; index members are handled by a
  // BitmapFilterOp stacked above (§3.3).
  StarJoinFilterOp(BatchOperator* child, DiskModel& disk,
                   const std::vector<internal::SharedDimFilter>& filters,
                   uint32_t all_mask, const std::vector<BoundQuery>& bound,
                   size_t n_hash, bool vectorized)
      : child_(child),
        disk_(disk),
        filters_(filters),
        all_mask_(all_mask),
        bound_(bound),
        n_hash_(n_hash),
        vectorized_(vectorized) {}

  bool NextBatch(ClassBatch& batch) override;

 private:
  void ProcessVectorized(const ClassBatch& batch);
  void ProcessTuple(const ClassBatch& batch);

  BatchOperator* child_;
  DiskModel& disk_;
  const std::vector<internal::SharedDimFilter>& filters_;
  uint32_t all_mask_;
  const std::vector<BoundQuery>& bound_;
  size_t n_hash_;
  bool vectorized_;

  std::vector<uint32_t> masks_;  // per-row pass masks of the current batch
  std::vector<uint64_t> sel_;    // selection vector (absolute row ids)
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_OPERATORS_STAR_JOIN_FILTER_H_
