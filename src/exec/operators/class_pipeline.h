// The one shared-class execution path. Every way the engine evaluates a
// query class — the serial §3.1/§3.2/§3.3 operators, their morsel-parallel
// twins, single-query execution, the Engine's fact-table fallback — builds
// a SharedClassRequest and runs it here. The request is executed as a
// lowered physical operator chain (plan/lowering.h):
//
//   Aggregate <- [Route] <- [BitmapFilter] <- [StarJoinFilter] <- source
//
// where the source is a ScanSourceOp (§3.1/§3.3), a ProbeSourceOp over the
// union bitmap's positions (§3.2), or — for a CUBE/ROLLUP rollup class — a
// DerivedSourceOp re-batching a finished sibling aggregate's groups with
// zero modeled I/O. Parallelism is a property of the
// driver, not of the operators: a disengaged policy pulls one chain over
// the whole input on the calling thread; an engaged policy instantiates
// the same chain per morsel on worker DiskModels and merges match buffers
// in morsel order (parallel/morsel_pipeline.h). Both drivers produce
// bit-identical results and exactly equal IoStats at any thread count and
// any batch size.

#ifndef STARSHARE_EXEC_OPERATORS_CLASS_PIPELINE_H_
#define STARSHARE_EXEC_OPERATORS_CLASS_PIPELINE_H_

#include <vector>

#include "common/status.h"
#include "cube/materialized_view.h"
#include "exec/memory_budget.h"
#include "exec/shared_operators.h"
#include "exec/spill.h"
#include "parallel/policy.h"
#include "plan/lowering.h"
#include "plan/physical_plan.h"
#include "query/query.h"
#include "storage/disk_model.h"

namespace starshare {

// One shared-class execution request. `hash_queries` must be empty when
// `probe` is set (§3.2 has no scan side). When `phys`/`nodes` are null the
// pipeline lowers a throwaway tree internally; callers that want the
// executed tree (Executor, Engine) lower it first and pass both.
struct SharedClassRequest {
  const StarSchema* schema = nullptr;
  std::vector<const DimensionalQuery*> hash_queries;
  std::vector<const DimensionalQuery*> index_queries;
  const MaterializedView* view = nullptr;
  DiskModel* disk = nullptr;
  ParallelPolicy policy;
  // True runs §3.2 (union-bitmap probe); false runs the shared scan
  // (§3.1 pure-hash or §3.3 hybrid, depending on index_queries).
  bool probe = false;
  // True re-batches `view`'s (in-memory, derived) table through a
  // DerivedSourceOp instead of scanning it: nothing is charged to `disk`,
  // since the producer's scan already paid for the fact pages. Derived
  // classes are hash-only (`probe` false, `index_queries` empty) and their
  // members carry no predicates — the producer already applied them.
  bool derived = false;
  PhysicalPlan* phys = nullptr;
  const LoweredClassNodes* nodes = nullptr;
  // When set, each live member is granted budget->total / n_live bytes of
  // aggregation memory and spills past it (exec/spill.h, runs under
  // spill.scratch_dir). A denied grant or failed spill costs exactly that
  // member (kResourceExhausted); null or an unbounded budget keeps the
  // legacy in-memory path byte-for-byte.
  const MemoryBudget* budget = nullptr;
  SpillConfig spill;
};

// Executes the class. Statuses/results are slot-aligned: hash members
// first, then index members, each in request order — exactly the contract
// of the pre-DAG Try*/Parallel* operators, including per-member
// degradation (a private-phase fault fails one member; a shared-pass
// device fault fails every surviving member).
Result<SharedOutcome> ExecuteSharedClass(const SharedClassRequest& req);

}  // namespace starshare

#endif  // STARSHARE_EXEC_OPERATORS_CLASS_PIPELINE_H_
