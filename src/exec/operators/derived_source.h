// Derived source (physical node kind kDerivedScan): streams the rows of an
// in-memory derived table — the canonicalized groups a finished
// AggregateSink produced — in the same fixed-size batch geometry as
// ScanSourceOp, so every downstream operator, driver and sink runs
// unchanged. Unlike ScanSourceOp it charges NOTHING to the DiskModel: the
// rows it re-batches were materialized by a sibling Aggregate whose scan
// already paid for the fact pages, so a rollup shows zero io= in EXPLAIN
// ANALYZE at any page layout.

#ifndef STARSHARE_EXEC_OPERATORS_DERIVED_SOURCE_H_
#define STARSHARE_EXEC_OPERATORS_DERIVED_SOURCE_H_

#include <algorithm>

#include "exec/operators/operator.h"

namespace starshare {

class DerivedSourceOp : public BatchOperator {
 public:
  // Batch boundaries are [k*B, (k+1)*B) over the derived table exactly as
  // ScanSourceOp slices a base table, so morsel drivers can hand this
  // operator page-aligned sub-ranges and merge in morsel order with results
  // bit-identical to the serial pull.
  DerivedSourceOp(uint64_t row_begin, uint64_t row_end, uint64_t batch_rows)
      : cursor_(row_begin),
        end_(row_end),
        batch_rows_(batch_rows == 0 ? 1 : batch_rows) {}

  bool NextBatch(ClassBatch& batch) override {
    if (cursor_ >= end_) return false;
    const uint64_t batch_end = std::min(cursor_ + batch_rows_, end_);
    batch.begin = cursor_;
    batch.end = batch_end;
    batch.positions = nullptr;
    batch.num_positions = 0;
    cursor_ = batch_end;
    return true;
  }

  uint64_t cursor() const { return cursor_; }
  uint64_t end() const { return end_; }

 private:
  uint64_t cursor_;
  uint64_t end_;
  uint64_t batch_rows_;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_OPERATORS_DERIVED_SOURCE_H_
