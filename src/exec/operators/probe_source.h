// Index-union probe source (physical node kind kIndexUnionProbe): fetches
// the tuples at the sorted candidate positions of the OR-ed member bitmaps
// (§3.2), charging one random page read per distinct page — exactly
// Table::ProbePositions — and emits ONE batch covering its whole position
// slice. The serial driver hands it the full union; the morsel driver hands
// each instance a page-snapped sub-slice, reproducing the parallel probe's
// charging exactly.

#ifndef STARSHARE_EXEC_OPERATORS_PROBE_SOURCE_H_
#define STARSHARE_EXEC_OPERATORS_PROBE_SOURCE_H_

#include <span>

#include "exec/operators/operator.h"
#include "storage/disk_model.h"
#include "storage/table.h"

namespace starshare {

class ProbeSourceOp : public BatchOperator {
 public:
  ProbeSourceOp(const Table& table, DiskModel& disk,
                const uint64_t* positions, size_t num_positions)
      : table_(table),
        disk_(disk),
        positions_(positions),
        num_positions_(num_positions) {}

  bool NextBatch(ClassBatch& batch) override {
    if (done_ || num_positions_ == 0) return false;
    done_ = true;
    table_.ProbePositions(
        disk_, std::span<const uint64_t>(positions_, num_positions_),
        [](uint64_t) {});
    disk_.CountTuples(num_positions_);
    batch.begin = positions_[0];
    batch.end = positions_[num_positions_ - 1] + 1;
    batch.positions = positions_;
    batch.num_positions = num_positions_;
    return true;
  }

 private:
  const Table& table_;
  DiskModel& disk_;
  const uint64_t* positions_;
  size_t num_positions_;
  bool done_ = false;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_OPERATORS_PROBE_SOURCE_H_
