// The composable batch-pull operator family the physical plan executes.
// Every §3 shared operator — serial or morsel-parallel, vectorized or
// tuple-at-a-time — is one chain of these operators:
//
//   ScanSourceOp / ProbeSourceOp  ->  StarJoinFilterOp / BitmapFilterOp
//
// pulled by a driver (exec/operators/class_pipeline.h) that routes the
// per-query match streams into AggregateSink. Parallelism is purely a
// driver property: the serial driver pulls one chain over the whole input;
// the morsel driver instantiates the same chain per morsel on a worker
// DiskModel and replays the buffered matches in morsel order. Both fold
// every aggregate in identical order and charge identical IoStats.
//
// Contract: Open() once, then NextBatch(batch) until it returns false.
// Filters pull from their child, so only the chain root is driven. A batch
// carries the contiguous row span it covers plus, per class member slot,
// the (packed key, measure) matches of that span in ascending row order.

#ifndef STARSHARE_EXEC_OPERATORS_OPERATOR_H_
#define STARSHARE_EXEC_OPERATORS_OPERATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/bound_query.h"

namespace starshare {

// One query's matches from one batch: parallel (packed key, measure value)
// arrays, ascending row order.
struct QueryMatchBatch {
  std::vector<uint64_t> keys;
  std::vector<double> values;

  void Clear() {
    keys.clear();
    values.clear();
  }
  size_t size() const { return keys.size(); }
  void Push(uint64_t key, double value) {
    keys.push_back(key);
    values.push_back(value);
  }
  void Append(const uint64_t* k, const double* v, size_t n) {
    keys.insert(keys.end(), k, k + n);
    values.insert(values.end(), v, v + n);
  }
};

// One pulled batch. Sources set the row span (and, on the probe path, the
// position slice backing it); filters append matches into `matches`, one
// slot per bound class member. The driver owns and clears the slots.
struct ClassBatch {
  uint64_t begin = 0;  // first row covered (inclusive)
  uint64_t end = 0;    // one past the last row covered

  // Probe path only: the sorted candidate positions within [begin, end).
  const uint64_t* positions = nullptr;
  size_t num_positions = 0;

  std::vector<QueryMatchBatch>* matches = nullptr;
};

class BatchOperator {
 public:
  virtual ~BatchOperator() = default;

  virtual void Open() {}
  // Fills `batch`; returns false when the input is exhausted.
  virtual bool NextBatch(ClassBatch& batch) = 0;
  virtual void Close() {}
};

// Packs keys and gathers measures for `n` selected rows (ascending) into
// one member's match slot — the shared emission kernel of both filters.
inline void EmitRows(const BoundQuery& bound, const uint64_t* rows, size_t n,
                     QueryMatchBatch& out) {
  if (n == 0) return;
  const size_t base = out.keys.size();
  out.keys.resize(base + n);
  out.values.resize(base + n);
  bound.translator().PackRows(rows, n, out.keys.data() + base);
  const double* measures = bound.measure_data();
  for (size_t i = 0; i < n; ++i) {
    out.values[base + i] = measures[rows[i]];
  }
}

}  // namespace starshare

#endif  // STARSHARE_EXEC_OPERATORS_OPERATOR_H_
