#include "exec/operators/class_pipeline.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "common/str_util.h"
#include "exec/bound_query.h"
#include "exec/operators/aggregate_sink.h"
#include "exec/operators/bitmap_filter.h"
#include "exec/operators/derived_source.h"
#include "exec/operators/probe_source.h"
#include "exec/operators/scan_source.h"
#include "exec/operators/star_join_filter.h"
#include "exec/shared_star_join_internal.h"
#include "exec/star_join.h"
#include "index/bitmap.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/morsel.h"
#include "parallel/morsel_pipeline.h"
#include "parallel/parallel_context.h"

namespace starshare {
namespace {

using internal::AllQueriesMask;
using internal::BuildMemberBitmap;
using internal::BuildSharedFilters;
using internal::MemberBindFault;
using internal::SharedDimFilter;

size_t EffectiveWorkers(const ParallelPolicy& policy) {
  if (!policy.engaged()) return 1;
  return std::min(policy.parallelism, policy.pool->num_threads());
}

uint64_t MorselRowsFor(const ParallelPolicy& policy, uint64_t num_rows,
                       uint64_t rows_per_page, size_t workers) {
  if (policy.morsel_rows > 0) return policy.morsel_rows;
  return MorselDispatcher::DefaultMorselRows(num_rows, rows_per_page,
                                             workers);
}

// One morsel's worth of per-slot match streams, each in ascending row
// order. Concatenating buffers in morsel order replays the serial
// aggregation sequence exactly.
struct MorselMatches {
  std::vector<QueryMatchBatch> slots;
};

}  // namespace

Result<SharedOutcome> ExecuteSharedClass(const SharedClassRequest& req) {
  const StarSchema& schema = *req.schema;
  const MaterializedView& view = *req.view;
  DiskModel& disk = *req.disk;
  const std::vector<const DimensionalQuery*>& hash_queries = req.hash_queries;
  const std::vector<const DimensionalQuery*>& index_queries =
      req.index_queries;
  SS_DCHECK(!req.probe || hash_queries.empty());
  SS_DCHECK(!req.derived || (!req.probe && index_queries.empty()));

  if (req.probe) {
    if (index_queries.empty()) {
      return Status::InvalidArgument("shared index star join with no queries");
    }
    if (index_queries.size() > kMaxClassQueries) {
      return Status::InvalidArgument(
          StrFormat("shared index star join: %zu members exceed the class "
                    "limit of %zu",
                    index_queries.size(), kMaxClassQueries));
    }
  } else {
    if (hash_queries.empty() && index_queries.empty()) {
      return Status::InvalidArgument(
          "shared hybrid star join with no queries");
    }
    if (hash_queries.size() > kMaxClassQueries) {
      // The shared-scan pass masks carry one bit per hash member; a larger
      // class is the planner's mistake, reported as a typed error so callers
      // with a degradation path (Engine's fact-table fallback) can recover
      // instead of aborting. Executor::ExecuteClass chunks oversized classes
      // before ever reaching this pipeline.
      return Status::InvalidArgument(StrFormat(
          "shared hybrid star join: %zu hash members exceed the class limit "
          "of %zu",
          hash_queries.size(), kMaxClassQueries));
    }
  }
  const size_t n_hash = hash_queries.size();
  SharedOutcome out;
  out.results.resize(n_hash + index_queries.size());
  out.statuses.resize(n_hash + index_queries.size());

  disk.TakeFault();  // discard faults latched by earlier, unrelated work

  // Per-member private phases, on the calling thread and the parent
  // DiskModel. A member failing here drops out; the shared pass runs with
  // the survivors.
  std::vector<const DimensionalQuery*> live_hash;
  std::vector<size_t> live_hash_slots;
  for (size_t i = 0; i < hash_queries.size(); ++i) {
    Status s = MemberBindFault(*hash_queries[i]);
    if (!s.ok()) {
      out.statuses[i] = std::move(s);
      continue;
    }
    live_hash.push_back(hash_queries[i]);
    live_hash_slots.push_back(i);
  }

  std::vector<const DimensionalQuery*> live_index;
  std::vector<size_t> live_index_slots;
  std::vector<Bitmap> index_bitmaps;
  std::vector<std::vector<const DimPredicate*>> index_residual_preds;
  for (size_t i = 0; i < index_queries.size(); ++i) {
    const size_t slot = n_hash + i;
    Status s = MemberBindFault(*index_queries[i]);
    if (s.ok()) {
      Bitmap bitmap;
      std::vector<const DimPredicate*> residual;
      s = BuildMemberBitmap(schema, *index_queries[i], view, disk, &bitmap,
                            &residual);
      if (s.ok()) {
        live_index.push_back(index_queries[i]);
        live_index_slots.push_back(slot);
        index_bitmaps.push_back(std::move(bitmap));
        index_residual_preds.push_back(std::move(residual));
        continue;
      }
    }
    out.statuses[slot] = std::move(s);
  }

  if (live_hash.empty() && live_index.empty()) return out;  // nothing left

  // Memory grants: an even split of the budget across the members still
  // live. A denied grant ("budget.grant" fault) demotes exactly that member
  // — before any shared work — leaving its slot kResourceExhausted for the
  // engine's fallback ladder. Grants are ceilings the sink enforces by
  // spilling, so a zero share is legal (every batch spills).
  std::vector<MemoryGrant> hash_grants(live_hash.size());
  std::vector<MemoryGrant> index_grants(live_index.size());
  if (req.budget != nullptr) {
    const uint64_t n_live_total = live_hash.size() + live_index.size();
    size_t kept = 0;
    for (size_t i = 0; i < live_hash.size(); ++i) {
      Result<MemoryGrant> grant =
          req.budget->Grant(live_hash[i]->id(), n_live_total);
      if (!grant.ok()) {
        out.statuses[live_hash_slots[i]] = grant.status();
        continue;
      }
      live_hash[kept] = live_hash[i];
      live_hash_slots[kept] = live_hash_slots[i];
      hash_grants[kept] = *grant;
      ++kept;
    }
    live_hash.resize(kept);
    live_hash_slots.resize(kept);
    hash_grants.resize(kept);
    kept = 0;
    for (size_t i = 0; i < live_index.size(); ++i) {
      Result<MemoryGrant> grant =
          req.budget->Grant(live_index[i]->id(), n_live_total);
      if (!grant.ok()) {
        out.statuses[live_index_slots[i]] = grant.status();
        continue;
      }
      live_index[kept] = live_index[i];
      live_index_slots[kept] = live_index_slots[i];
      index_grants[kept] = *grant;
      if (kept != i) {
        index_bitmaps[kept] = std::move(index_bitmaps[i]);
        index_residual_preds[kept] = std::move(index_residual_preds[i]);
      }
      ++kept;
    }
    live_index.resize(kept);
    live_index_slots.resize(kept);
    index_grants.resize(kept);
    index_bitmaps.resize(kept);
    index_residual_preds.resize(kept);
    if (live_hash.empty() && live_index.empty()) return out;
  }

  std::vector<BoundQuery> bound;  // live hash members, then live index
  bound.reserve(live_hash.size() + live_index.size());
  for (const auto* q : live_hash) bound.emplace_back(schema, *q, view);
  std::vector<ResidualFilter> index_residuals;
  index_residuals.reserve(live_index.size());
  for (size_t i = 0; i < live_index.size(); ++i) {
    bound.emplace_back(schema, *live_index[i], view);
    index_residuals.emplace_back(schema, view, index_residual_preds[i]);
  }
  const size_t n_live_hash = live_hash.size();
  const size_t n_live = bound.size();

  // §3.2 step 1: OR the per-member result bitmaps; the union's positions
  // are the one shared probe stream.
  std::vector<uint64_t> positions;
  if (req.probe) {
    Bitmap unioned = index_bitmaps[0];
    for (size_t i = 1; i < index_bitmaps.size(); ++i) {
      unioned.OrWith(index_bitmaps[i]);
    }
    positions = unioned.ToPositions();
  }

  // Standalone callers (the operator-level entry points) get a throwaway
  // lowered tree; the Executor/Engine pass the session's tree instead.
  PhysicalPlan local_plan;
  PhysicalPlan* phys = req.phys;
  const LoweredClassNodes* nodes = req.nodes;
  LoweredClassNodes local_nodes;
  if (phys == nullptr || nodes == nullptr) {
    if (req.derived) {
      local_nodes = LowerDerivedClass(local_plan, kNoPhysNode, view.name(),
                                      hash_queries.size(), /*query_id=*/-1,
                                      /*input=*/kNoPhysNode,
                                      /*rollup_cpu_est_ms=*/-1.0,
                                      /*member_est_ms=*/nullptr);
    } else {
      local_nodes = LowerSharedClass(local_plan, kNoPhysNode, view.name(),
                                     hash_queries.size(),
                                     index_queries.size(), req.probe,
                                     /*query_id=*/-1, /*cls=*/nullptr);
    }
    phys = &local_plan;
    nodes = &local_nodes;
  }

  const Table& table = view.table();
  const bool vectorized = req.policy.batch.vectorized;
  const size_t batch_rows = req.policy.batch.EffectiveBatchRows();

  // Shared dimension filters (scan path). Built inside the StarJoinFilter
  // node's scope below so the dim_filters span nests under it.
  std::vector<SharedDimFilter> filters;
  uint32_t all_mask = 0;

  // Builds one operator chain over the given input slice on DiskModel `d`
  // and pulls it dry, handing `on_batch` each batch's matches. The serial
  // driver calls it once over the whole input on the parent disk; the
  // morsel driver calls it per morsel on a worker disk.
  const auto drive_chain = [&](DiskModel& d, uint64_t row_begin,
                               uint64_t row_end, const uint64_t* pos,
                               size_t n_pos,
                               std::vector<QueryMatchBatch>& matches,
                               const auto& on_batch) {
    ScanSourceOp scan_src(table, d, row_begin, row_end, batch_rows);
    ProbeSourceOp probe_src(table, d, pos, n_pos);
    DerivedSourceOp derived_src(row_begin, row_end, batch_rows);
    BatchOperator* chain =
        req.probe     ? static_cast<BatchOperator*>(&probe_src)
        : req.derived ? static_cast<BatchOperator*>(&derived_src)
                      : static_cast<BatchOperator*>(&scan_src);
    std::optional<StarJoinFilterOp> sjf_op;
    if (!req.probe) {
      sjf_op.emplace(chain, d, filters, all_mask, bound, n_live_hash,
                     vectorized);
      chain = &*sjf_op;
    }
    std::optional<BitmapFilterOp> bmf_op;
    if (!index_bitmaps.empty()) {
      bmf_op.emplace(chain, index_bitmaps, index_residuals, bound,
                     n_live_hash, req.policy.batch);
      chain = &*bmf_op;
    }
    ClassBatch batch;
    batch.matches = &matches;
    chain->Open();
    while (chain->NextBatch(batch)) {
      on_batch();
      for (QueryMatchBatch& m : matches) m.Clear();
    }
    chain->Close();
  };

  AggregateSink sink(bound);
  for (size_t i = 0; i < hash_grants.size(); ++i) {
    sink.SetGrant(i, hash_grants[i], req.spill, live_hash[i]->id());
  }
  for (size_t i = 0; i < index_grants.size(); ++i) {
    sink.SetGrant(n_live_hash + i, index_grants[i], req.spill,
                  live_index[i]->id());
  }

  // High-water of the per-member match buffers feeding the sink, summed
  // across slots at each consume point (logical bytes, not capacities).
  uint64_t match_peak_bytes = 0;
  const auto note_match_bytes = [&](const std::vector<QueryMatchBatch>& m) {
    uint64_t now = 0;
    for (const QueryMatchBatch& slot : m) {
      now += (slot.keys.size() + slot.values.size()) * 8;
    }
    match_peak_bytes = std::max(match_peak_bytes, now);
  };

  NodeExec agg(*phys, nodes->aggregate, disk);
  {
    std::optional<NodeExec> route;
    if (nodes->route != kNoPhysNode) {
      route.emplace(*phys, nodes->route, disk);
    }
    std::optional<NodeExec> bmf;
    if (nodes->bitmap_filter != kNoPhysNode) {
      bmf.emplace(*phys, nodes->bitmap_filter, disk);
    }
    std::optional<NodeExec> sjf;
    if (!req.probe) {
      sjf.emplace(*phys, nodes->star_join_filter, disk);
      filters = BuildSharedFilters(schema, live_hash, view);
      all_mask = AllQueriesMask(live_hash.size());
      if (req.derived) {
        // Predicate-free rollup members build no filters (every derived row
        // passes); count the pass under its own taxonomy.
        static obs::Counter& derived_passes =
            obs::Metrics().counter("exec.derived_passes");
        derived_passes.Add();
      } else {
        static obs::Counter& scan_passes =
            obs::Metrics().counter("exec.scan_passes");
        scan_passes.Add();
      }
    } else {
      static obs::Counter& probe_passes =
          obs::Metrics().counter("exec.probe_passes");
      probe_passes.Add();
    }
    NodeExec source(*phys, nodes->source, disk);
    source.AddRows(req.probe ? positions.size() : table.num_rows());
    source.AddCounter("members", bound.size());

    if (!req.policy.engaged()) {
      // Serial drive: one chain over the whole input on the parent disk.
      // Batch boundaries are [k*B, (k+1)*B) for the scan and the whole
      // position set for the probe — the pre-DAG serial groupings.
      std::vector<QueryMatchBatch> matches(n_live);
      drive_chain(disk, 0, table.num_rows(), positions.data(),
                  positions.size(), matches, [&] {
                    source.AddBatches(1);
                    note_match_bytes(matches);
                    sink.Consume(matches);
                  });
    } else {
      const size_t workers = EffectiveWorkers(req.policy);
      ParallelContext ctx(disk, workers);
      if (!req.probe) {
        const uint64_t morsel_rows = MorselRowsFor(
            req.policy, table.num_rows(), table.rows_per_page(), workers);
        MorselDispatcher dispatcher(table.num_rows(), morsel_rows,
                                    /*window=*/4 * workers);
        RunMorselPipeline<MorselMatches>(
            req.policy.pool, workers, dispatcher, ctx,
            [&](const Morsel& morsel, DiskModel& wdisk,
                MorselMatches& buffer) {
              buffer.slots.resize(n_live);
              std::vector<QueryMatchBatch> matches(n_live);
              drive_chain(wdisk, morsel.begin, morsel.end, nullptr, 0,
                          matches, [&] {
                            for (size_t qi = 0; qi < n_live; ++qi) {
                              buffer.slots[qi].Append(
                                  matches[qi].keys.data(),
                                  matches[qi].values.data(),
                                  matches[qi].size());
                            }
                          });
            },
            [&](const Morsel&, const MorselMatches& buffer) {
              source.AddBatches(1);  // one tally per merged morsel
              note_match_bytes(buffer.slots);
              sink.Consume(buffer.slots);
            });
      } else {
        // Position ranges are snapped forward to page changes so no page is
        // probed (or charged) by two workers and the effective ranges cover
        // every position exactly once.
        const uint64_t rpp = table.rows_per_page();
        const auto effective_begin = [&](uint64_t i) {
          while (i > 0 && i < positions.size() &&
                 positions[i] / rpp == positions[i - 1] / rpp) {
            ++i;
          }
          return i;
        };
        uint64_t chunk = req.policy.morsel_rows;
        if (chunk == 0) {
          chunk = std::max<uint64_t>(
              rpp, positions.size() /
                       std::max<uint64_t>(
                           1, workers * MorselDispatcher::kMorselsPerWorker));
        }
        MorselDispatcher dispatcher(positions.size(), chunk,
                                    /*window=*/4 * workers);
        RunMorselPipeline<MorselMatches>(
            req.policy.pool, workers, dispatcher, ctx,
            [&](const Morsel& morsel, DiskModel& wdisk,
                MorselMatches& buffer) {
              buffer.slots.resize(n_live);
              const uint64_t begin = effective_begin(morsel.begin);
              const uint64_t end = effective_begin(morsel.end);
              if (begin >= end) return;
              std::vector<QueryMatchBatch> matches(n_live);
              drive_chain(wdisk, 0, 0, positions.data() + begin, end - begin,
                          matches, [&] {
                            for (size_t qi = 0; qi < n_live; ++qi) {
                              buffer.slots[qi].Append(
                                  matches[qi].keys.data(),
                                  matches[qi].values.data(),
                                  matches[qi].size());
                            }
                          });
            },
            [&](const Morsel&, const MorselMatches& buffer) {
              source.AddBatches(1);  // one tally per merged morsel
              note_match_bytes(buffer.slots);
              sink.Consume(buffer.slots);
            });
      }
      ctx.MergeIntoParent();
    }

    // Seal each filter node's memory gauge before its scope closes: the
    // shared pass masks, the per-member candidate bitmaps, and (probe path)
    // the union's position array.
    if (sjf) {
      MemStats sjf_mem;
      for (const SharedDimFilter& filter : filters) {
        sjf_mem.batch_bytes += filter.masks.size() * sizeof(uint32_t);
      }
      sjf->RecordMem(sjf_mem);
    }
    if (bmf) {
      MemStats bmf_mem;
      for (const Bitmap& bitmap : index_bitmaps) {
        bmf_mem.bitmap_bytes += bitmap.SizeBytes();
      }
      bmf->RecordMem(bmf_mem);
    }
    if (req.probe) {
      MemStats src_mem;
      src_mem.batch_bytes = positions.size() * sizeof(uint64_t);
      source.RecordMem(src_mem);
    }
  }

  {
    MemStats agg_mem;
    agg_mem.match_bytes = match_peak_bytes;
    agg_mem.hash_bytes = sink.agg_table_bytes() + sink.staged_peak_bytes();
    agg.RecordMem(agg_mem);
  }

  // A device fault during the shared pass takes down every member that
  // depended on it — but only those; members failed above keep their own
  // (more precise) statuses.
  const Status pass_fault = disk.TakeFault();
  if (!pass_fault.ok()) {
    for (size_t slot : live_hash_slots) out.statuses[slot] = pass_fault;
    for (size_t slot : live_index_slots) out.statuses[slot] = pass_fault;
    agg.SetStatus(pass_fault);
    return out;
  }

  // Per-slot finish: a budgeted slot merges its spill runs here. A slot
  // whose spill failed surfaces kResourceExhausted for exactly that member;
  // its siblings finish normally.
  uint64_t result_rows = 0;
  const auto finish_member = [&](size_t slot, size_t out_slot) {
    Result<QueryResult> result = sink.FinishSlot(slot);
    if (!result.ok()) {
      out.statuses[out_slot] = result.status();
      return;
    }
    result_rows += result->num_rows();
    out.results[out_slot] = std::move(*result);
  };
  for (size_t i = 0; i < live_hash_slots.size(); ++i) {
    finish_member(i, live_hash_slots[i]);
  }
  for (size_t i = 0; i < live_index_slots.size(); ++i) {
    finish_member(n_live_hash + i, live_index_slots[i]);
  }
  agg.AddRows(result_rows);
  // The final aggregation tables (and any spill) exist only after the
  // per-slot finish; fold them into the gauge and surface spill volume.
  {
    MemStats final_mem;
    final_mem.hash_bytes = sink.agg_table_bytes() + sink.staged_peak_bytes();
    agg.RecordMem(final_mem);
  }
  if (sink.spill_runs() > 0) {
    agg.AddNodeOnlyCounter("spill_runs", sink.spill_runs());
    agg.AddNodeOnlyCounter("spill_bytes", sink.spill_bytes());
  }
  return out;
}

}  // namespace starshare
