// Bitmap filter (physical node kind kBitmapFilter): filters each pulled
// batch through every index member's private candidate bitmap + residual
// predicates and emits those members' matches (slots [slot_base,
// slot_base + bitmaps.size())). Stacked over a ScanSourceOp chain it is the
// hybrid §3.3 index side; over a ProbeSourceOp it routes the shared §3.2
// probe stream per member. Streams are ascending-row per member in both
// modes, identical to the pre-DAG operators bit for bit.

#ifndef STARSHARE_EXEC_OPERATORS_BITMAP_FILTER_H_
#define STARSHARE_EXEC_OPERATORS_BITMAP_FILTER_H_

#include <vector>

#include "exec/operators/operator.h"
#include "exec/star_join.h"
#include "exec/vector_batch.h"
#include "index/bitmap.h"

namespace starshare {

class BitmapFilterOp : public BatchOperator {
 public:
  BitmapFilterOp(BatchOperator* child, const std::vector<Bitmap>& bitmaps,
                 const std::vector<ResidualFilter>& residuals,
                 const std::vector<BoundQuery>& bound, size_t slot_base,
                 const BatchConfig& batch)
      : child_(child),
        bitmaps_(bitmaps),
        residuals_(residuals),
        bound_(bound),
        slot_base_(slot_base),
        batch_(batch) {}

  bool NextBatch(ClassBatch& batch) override;

 private:
  // Scan mode (§3.3): slice each member's bitmap over the batch's row span.
  void ProcessScanVectorized(const ClassBatch& batch);
  void ProcessScanTuple(const ClassBatch& batch);
  // Probe mode (§3.2): test each probed position against each member.
  void ProcessProbeVectorized(const ClassBatch& batch);
  void ProcessProbeTuple(const ClassBatch& batch);

  BatchOperator* child_;
  const std::vector<Bitmap>& bitmaps_;
  const std::vector<ResidualFilter>& residuals_;
  const std::vector<BoundQuery>& bound_;
  size_t slot_base_;
  BatchConfig batch_;

  std::vector<uint64_t> sel_;  // selection vector (absolute row ids)
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_OPERATORS_BITMAP_FILTER_H_
