// Aggregate sink (physical node kind kAggregate): folds each class
// member's match stream into its BoundQuery aggregation, slot order within
// a batch, batches in input order. Only ever invoked on the driving thread
// — the morsel driver buffers worker matches and consumes them in morsel
// order, so every aggregator folds in the exact serial sequence.
//
// Budget mode (exec/memory_budget.h): a slot given a bounded grant stages
// its raw (key, value) records in arrival order instead of folding them
// immediately; when the staged bytes exceed the grant the stage is
// stable-sorted by key and appended to the slot's spill file
// (exec/spill.h). FinishSlot() replays the spilled stream — per key, in
// arrival order — through the very same HashAggregator fold, so a budgeted
// execution's results are bit-identical to the unbudgeted ones at any
// thread count, batch size and budget. Spill I/O is real scratch-file I/O,
// never charged to the DiskModel: modeled IoStats are unchanged by
// budgeting, and spill volume is reported separately (spill_runs /
// spill_bytes).
//
// A slot whose spill fails is sticky-failed (kResourceExhausted) without
// touching its siblings; the failure surfaces from FinishSlot so the
// engine's per-member fallback ladder can degrade exactly that member.

#ifndef STARSHARE_EXEC_OPERATORS_AGGREGATE_SINK_H_
#define STARSHARE_EXEC_OPERATORS_AGGREGATE_SINK_H_

#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/mem_stats.h"
#include "exec/bound_query.h"
#include "exec/memory_budget.h"
#include "exec/operators/operator.h"
#include "exec/spill.h"

namespace starshare {

class AggregateSink {
 public:
  explicit AggregateSink(std::vector<BoundQuery>& bound)
      : bound_(bound), slots_(bound.size()) {}

  // Puts slot `slot` under a bounded grant; spill runs go to a file named
  // for `query_id` under config's scratch dir. Unbounded grants are a no-op
  // (the slot keeps the direct fold path).
  void SetGrant(size_t slot, const MemoryGrant& grant,
                const SpillConfig& config, int query_id);

  void Consume(const std::vector<QueryMatchBatch>& slots);

  // Finalizes one slot: folds any staged/spilled records (merge replay) and
  // finishes the bound aggregation. Returns the slot's sticky spill failure
  // instead, if it has one.
  Result<QueryResult> FinishSlot(size_t slot);

  // High-water accounting across every Consume so far: staged spill buffers
  // plus the aggregation tables (both land in MemStats::hash_bytes).
  uint64_t staged_peak_bytes() const { return staged_peak_bytes_; }
  uint64_t agg_table_bytes() const;

  // Totals across slots, for the aggregate node's spill counters.
  uint64_t spill_runs() const;
  uint64_t spill_bytes() const;

 private:
  struct SlotState {
    MemoryGrant grant;  // unbounded by default
    int query_id = -1;
    SpillConfig config;
    // Arrival-order stage; flushed as one stable-sorted run on overflow.
    std::vector<uint64_t> keys;
    std::vector<double> values;
    std::unique_ptr<SpillFile> spill;
    Status status;  // sticky first spill failure
  };

  uint64_t StagedBytes(const SlotState& s) const {
    return (s.keys.size() + s.values.size()) * 8;
  }

  // Stable-sorts the stage by key and appends it as one run.
  Status FlushRun(SlotState& s);

  std::vector<BoundQuery>& bound_;
  std::vector<SlotState> slots_;
  uint64_t staged_peak_bytes_ = 0;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_OPERATORS_AGGREGATE_SINK_H_
