// Aggregate sink (physical node kind kAggregate): folds each class
// member's match stream into its BoundQuery aggregation, slot order within
// a batch, batches in input order. Only ever invoked on the driving thread
// — the morsel driver buffers worker matches and consumes them in morsel
// order, so every aggregator folds in the exact serial sequence.

#ifndef STARSHARE_EXEC_OPERATORS_AGGREGATE_SINK_H_
#define STARSHARE_EXEC_OPERATORS_AGGREGATE_SINK_H_

#include <vector>

#include "common/macros.h"
#include "exec/operators/operator.h"

namespace starshare {

class AggregateSink {
 public:
  explicit AggregateSink(std::vector<BoundQuery>& bound) : bound_(bound) {}

  void Consume(const std::vector<QueryMatchBatch>& slots) {
    SS_DCHECK(slots.size() == bound_.size());
    for (size_t slot = 0; slot < bound_.size(); ++slot) {
      bound_[slot].AccumulateRawBatch(slots[slot].keys.data(),
                                      slots[slot].values.data(),
                                      slots[slot].size());
    }
  }

 private:
  std::vector<BoundQuery>& bound_;
};

}  // namespace starshare

#endif  // STARSHARE_EXEC_OPERATORS_AGGREGATE_SINK_H_
