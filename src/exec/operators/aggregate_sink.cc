#include "exec/operators/aggregate_sink.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace starshare {

void AggregateSink::SetGrant(size_t slot, const MemoryGrant& grant,
                             const SpillConfig& config, int query_id) {
  SS_DCHECK(slot < slots_.size());
  if (grant.unbounded) return;
  SlotState& s = slots_[slot];
  s.grant = grant;
  s.query_id = query_id;
  s.config = config;
}

void AggregateSink::Consume(const std::vector<QueryMatchBatch>& slots) {
  SS_DCHECK(slots.size() == bound_.size());
  uint64_t staged_now = 0;
  for (size_t slot = 0; slot < bound_.size(); ++slot) {
    SlotState& s = slots_[slot];
    if (s.grant.unbounded) {
      bound_[slot].AccumulateRawBatch(slots[slot].keys.data(),
                                      slots[slot].values.data(),
                                      slots[slot].size());
      continue;
    }
    if (!s.status.ok()) continue;  // sticky-failed: drop the stream
    s.keys.insert(s.keys.end(), slots[slot].keys.begin(),
                  slots[slot].keys.end());
    s.values.insert(s.values.end(), slots[slot].values.begin(),
                    slots[slot].values.end());
    staged_now += StagedBytes(s);
    if (s.grant.WouldExceed(StagedBytes(s))) {
      const Status flushed = FlushRun(s);
      if (!flushed.ok()) {
        s.status = flushed;
        s.keys.clear();
        s.keys.shrink_to_fit();
        s.values.clear();
        s.values.shrink_to_fit();
      }
    }
  }
  staged_peak_bytes_ = std::max(staged_peak_bytes_, staged_now);
}

Status AggregateSink::FlushRun(SlotState& s) {
  if (s.keys.empty()) return Status::Ok();
  if (s.spill == nullptr) {
    s.spill = std::make_unique<SpillFile>(s.config, s.query_id,
                                          /*doubles_per_record=*/1);
  }
  // Stable sort by key: equal keys keep arrival order within the run, the
  // invariant the merge's (key, run index) order relies on.
  std::vector<uint32_t> order(s.keys.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&s](uint32_t a, uint32_t b) {
                     return s.keys[a] < s.keys[b];
                   });
  std::vector<uint64_t> sorted_keys(s.keys.size());
  std::vector<double> sorted_values(s.values.size());
  for (size_t i = 0; i < order.size(); ++i) {
    sorted_keys[i] = s.keys[order[i]];
    sorted_values[i] = s.values[order[i]];
  }
  SS_RETURN_IF_ERROR(s.spill->AppendRun(sorted_keys.data(),
                                        sorted_values.data(),
                                        sorted_keys.size()));
  s.keys.clear();
  s.values.clear();
  return Status::Ok();
}

Result<QueryResult> AggregateSink::FinishSlot(size_t slot) {
  SS_DCHECK(slot < slots_.size());
  SlotState& s = slots_[slot];
  if (!s.status.ok()) return s.status;
  if (s.spill == nullptr || s.spill->empty()) {
    // Nothing ever spilled: fold the stage (if any) in arrival order —
    // exactly the sequence the unbudgeted path folded as it consumed.
    bound_[slot].AccumulateRawBatch(s.keys.data(), s.values.data(),
                                    s.keys.size());
  } else {
    SS_RETURN_IF_ERROR(FlushRun(s));  // tail stage becomes the last run
    BoundQuery& member = bound_[slot];
    SS_RETURN_IF_ERROR(s.spill->Merge(
        s.grant.cap_bytes,
        [&member](uint64_t key, const double* values) {
          member.AccumulateRaw(key, values[0]);
        }));
  }
  s.keys.clear();
  s.values.clear();
  return bound_[slot].Finish();
}

uint64_t AggregateSink::agg_table_bytes() const {
  uint64_t total = 0;
  for (const BoundQuery& member : bound_) total += member.AggMemoryBytes();
  return total;
}

uint64_t AggregateSink::spill_runs() const {
  uint64_t total = 0;
  for (const SlotState& s : slots_) {
    if (s.spill != nullptr) total += s.spill->num_runs();
  }
  return total;
}

uint64_t AggregateSink::spill_bytes() const {
  uint64_t total = 0;
  for (const SlotState& s : slots_) {
    if (s.spill != nullptr) total += s.spill->spilled_bytes();
  }
  return total;
}

}  // namespace starshare
