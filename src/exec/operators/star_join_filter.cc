#include "exec/operators/star_join_filter.h"

#include <algorithm>

namespace starshare {

bool StarJoinFilterOp::NextBatch(ClassBatch& batch) {
  if (!child_->NextBatch(batch)) return false;
  // One dimension-table hash probe per scanned row per shared filter,
  // whether or not the row survives (the paper's CPU cost model).
  disk_.CountHashProbes((batch.end - batch.begin) * filters_.size());
  if (n_hash_ > 0) {
    if (vectorized_) {
      ProcessVectorized(batch);
    } else {
      ProcessTuple(batch);
    }
  }
  return true;
}

void StarJoinFilterOp::ProcessVectorized(const ClassBatch& batch) {
  const size_t n = static_cast<size_t>(batch.end - batch.begin);
  masks_.resize(n);
  if (filters_.empty()) {
    std::fill(masks_.begin(), masks_.end(), all_mask_);
  } else {
    // Column-at-a-time: load the first filter's masks, then AND the rest.
    // KeyColumn::ForEach decodes packed key words 64 bits at a time into
    // the fused mask lookup, so compressed batches never materialize an
    // intermediate int32 array.
    uint32_t* masks = masks_.data();
    const uint64_t begin = batch.begin;
    const internal::SharedDimFilter& first = filters_[0];
    const uint32_t* fmasks = first.masks.data();
    first.col->ForEach(begin, batch.end, [&](uint64_t row, int32_t v) {
      masks[row - begin] = fmasks[static_cast<uint32_t>(v)];
    });
    for (size_t f = 1; f < filters_.size(); ++f) {
      const internal::SharedDimFilter& filter = filters_[f];
      const uint32_t* fm = filter.masks.data();
      filter.col->ForEach(begin, batch.end, [&](uint64_t row, int32_t v) {
        masks[row - begin] &= fm[static_cast<uint32_t>(v)];
      });
    }
  }
  uint32_t any = 0;
  for (size_t i = 0; i < n; ++i) any |= masks_[i];
  for (size_t qi = 0; qi < n_hash_; ++qi) {
    const uint32_t bit = 1u << qi;
    if ((any & bit) == 0) continue;
    sel_.clear();
    for (size_t i = 0; i < n; ++i) {
      if ((masks_[i] & bit) != 0) sel_.push_back(batch.begin + i);
    }
    EmitRows(bound_[qi], sel_.data(), sel_.size(), (*batch.matches)[qi]);
  }
}

void StarJoinFilterOp::ProcessTuple(const ClassBatch& batch) {
  for (uint64_t row = batch.begin; row < batch.end; ++row) {
    uint32_t mask = all_mask_;
    for (const internal::SharedDimFilter& filter : filters_) {
      mask &= filter.masks[static_cast<uint32_t>(filter.col->Get(row))];
      if (mask == 0) break;
    }
    while (mask != 0) {
      const unsigned qi = static_cast<unsigned>(__builtin_ctz(mask));
      (*batch.matches)[qi].Push(bound_[qi].PackedKeyAt(row),
                                bound_[qi].MeasureAt(row));
      mask &= mask - 1;
    }
  }
}

}  // namespace starshare
