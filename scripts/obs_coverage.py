#!/usr/bin/env python3
"""Aggregates gcov line coverage for the observability and memory-accounting
code and gates it at a threshold.

Usage: scripts/obs_coverage.py [build_dir] [threshold_pct]

Walks `build_dir` (default build-cov) for .gcda files produced by a
-DSTARSHARE_COVERAGE=ON build after the test suite has run, asks gcov for
JSON line records (gcov -t --json-format, no files written), and merges
them per source file: a line is instrumented if any translation unit
instruments it and covered if any translation unit executed it — this is
what makes header-inline coverage (obs/metrics.h) add up across the many
TUs that include it. Gated files: everything under src/obs/,
src/server/ (the query-server subsystem) and src/opt/ (the five
optimizers and the AND-OR DAG), plus the memory-accounting subsystem
(exec/spill, exec/memory_budget, common/mem_stats), the incremental
class-cost tracker (cost/class_cost_tracker), and the CUBE/ROLLUP
lattice path (cube/lattice, the derived-source operator). Other
files are ignored. Prints a per-file table and
exits non-zero when total gated line coverage falls below the threshold
(default 90%).
"""

import json
import os
import subprocess
import sys

# Path fragments whose files are coverage-gated.
GATED = (
    os.path.join("src", "obs") + os.sep,
    os.path.join("src", "server") + os.sep,
    os.path.join("src", "exec", "spill."),
    os.path.join("src", "exec", "memory_budget."),
    os.path.join("src", "common", "mem_stats.h"),
    os.path.join("src", "storage", "packed_column."),
    os.path.join("src", "storage", "table_io."),
    os.path.join("src", "opt") + os.sep,
    os.path.join("src", "cost", "class_cost_tracker."),
    os.path.join("src", "cube", "lattice."),
    os.path.join("src", "exec", "operators", "derived_source."),
)


def gated_name(path):
    """Returns the src/-relative name when `path` is gated, else None."""
    idx = path.find("src" + os.sep)
    if idx < 0:
        return None
    name = path[idx:]
    return name if any(frag in name for frag in GATED) else None


def collect_gcda(build_dir):
    out = []
    for root, _, files in os.walk(build_dir):
        out.extend(os.path.join(root, f) for f in files if f.endswith(".gcda"))
    return sorted(out)


def main():
    build_dir = sys.argv[1] if len(sys.argv) > 1 else "build-cov"
    threshold = float(sys.argv[2]) if len(sys.argv) > 2 else 90.0

    gcda_files = collect_gcda(build_dir)
    if not gcda_files:
        print(
            f"obs_coverage: no .gcda files under {build_dir} — configure "
            "with -DSTARSHARE_COVERAGE=ON, build, and run ctest first"
        )
        return 1

    # file -> set of instrumented / covered line numbers, merged across TUs.
    instrumented = {}
    covered = {}
    for gcda in gcda_files:
        proc = subprocess.run(
            ["gcov", "-t", "--json-format", gcda],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            continue
        for line in proc.stdout.splitlines():
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue
            for record in doc.get("files", []):
                path = os.path.normpath(record.get("file", ""))
                name = gated_name(path)
                if name is None:
                    continue
                inst = instrumented.setdefault(name, set())
                cov = covered.setdefault(name, set())
                for rec in record.get("lines", []):
                    number = rec.get("line_number")
                    if number is None:
                        continue
                    inst.add(number)
                    if rec.get("count", 0) > 0:
                        cov.add(number)

    if not instrumented:
        print("obs_coverage: no gated line records found in gcov output")
        return 1

    total_inst = 0
    total_cov = 0
    print(f"{'file':<34} {'lines':>7} {'covered':>8} {'pct':>7}")
    for name in sorted(instrumented):
        inst = len(instrumented[name])
        cov = len(covered.get(name, set()))
        total_inst += inst
        total_cov += cov
        pct = 100.0 * cov / inst if inst else 100.0
        print(f"{name:<34} {inst:>7} {cov:>8} {pct:>6.1f}%")

    total_pct = 100.0 * total_cov / total_inst if total_inst else 100.0
    print(f"{'total gated':<34} {total_inst:>7} {total_cov:>8} "
          f"{total_pct:>6.1f}%")
    if total_pct < threshold:
        print(
            f"obs_coverage: FAIL — gated line coverage {total_pct:.1f}% "
            f"is below the {threshold:.0f}% gate"
        )
        return 1
    print(f"obs_coverage: OK (gate {threshold:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
