#!/usr/bin/env bash
# Tier-1 verification: the plain build + full test suite, the same suite
# under AddressSanitizer + UBSan (-DSTARSHARE_SANITIZE=ON), a dedicated
# ASan pass of the spilling-aggregation suite (tiny budgets exercise every
# spill/merge/cleanup path under the leak checker), the threading suites
# under ThreadSanitizer (-DSTARSHARE_SANITIZE=thread), a TSan pass of the
# query-server suites (cross-session admission races, shutdown with
# queries in flight), ASan+TSan passes of the CUBE/ROLLUP lattice suite
# (derived-table lifetimes, rollup passes on the morsel driver), a
# second full-suite pass with
# STARSHARE_UNCOMPRESSED=1 (the raw page layout), a perf-smoke
# pass of the scan benches on a reduced row count (their internal checks
# fail the stage if vectorized aggregate output differs from
# tuple-at-a-time/serial, any charged page count changes, or the
# disabled-trace overhead bound of bench_vectorized_scan is exceeded), a
# clang-tidy pass over src/plan/ + src/exec/ (skipped when clang-tidy is
# absent), a Release-build optimizer-differential pass (all five
# optimizers, 200 seeded random workloads, bit-identical results and
# exact modeled-I/O agreement), and a coverage pass gating src/obs/,
# src/server/, src/opt/, the memory-accounting subsystem, the
# incremental class-cost tracker, the compressed-storage files
# (packed_column, table_io), and the CUBE/ROLLUP lattice path
# (cube/lattice, the derived-source operator) at >= 90% covered lines.
# All stages must pass. Run from the repository root:
#
#   scripts/verify.sh [jobs]

set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> plain build + tests (compressed pages: default on)"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> compressed-layout matrix: full suite with the knob off"
# STARSHARE_UNCOMPRESSED=1 flips EngineConfig::compressed_pages' default
# to false (explicit assignments in tests still win), so the whole tier-1
# suite also runs on the raw 4k+8m byte layout — both physical layouts
# stay fully supported, not just the default.
STARSHARE_UNCOMPRESSED=1 \
  ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> ASan+UBSan build + tests"
cmake -B build-sanitize -S . -DSTARSHARE_SANITIZE=ON >/dev/null
cmake --build build-sanitize -j "$JOBS"
ASAN_OPTIONS=detect_leaks=1 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ctest --test-dir build-sanitize --output-on-failure -j "$JOBS"

echo "==> spill suite under ASan (tiny budgets, scratch hygiene, chaos)"
# spill_aggregate_test runs budgets down to 1 byte (every batch spills),
# injects spill.write/spill.read/budget.grant faults, and scans the
# scratch dir after every run; under ASan's leak checker this proves the
# spill files and buffers are released on success and failure alike.
ASAN_OPTIONS=detect_leaks=1 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ctest --test-dir build-sanitize --output-on-failure \
  -R 'spill_aggregate_test'

echo "==> TSan build + threading suites"
cmake -B build-tsan -S . -DSTARSHARE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target \
  thread_pool_test parallel_determinism_test parallel_chaos_test \
  metrics_test trace_test spill_aggregate_test
TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'thread_pool_test|parallel_determinism_test|parallel_chaos_test|metrics_test|trace_test|spill_aggregate_test'

echo "==> cube lattice: ASan + TSan on the CUBE/ROLLUP suite"
# The cube path stacks every subsystem: shared base batch, derived
# re-aggregation (spill-capable), DAG-edged physical plans, MDX WITH
# CUBE/ROLLUP. ASan covers the derived-table lifetime (ephemeral views
# over re-materialized results); TSan covers the 4-thread morsel driver
# re-used for rollup passes.
ASAN_OPTIONS=detect_leaks=1 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ctest --test-dir build-sanitize --output-on-failure \
  -R 'cube_lattice_test'
cmake --build build-tsan -j "$JOBS" --target cube_lattice_test
TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
  ctest --test-dir build-tsan --output-on-failure \
  -R 'cube_lattice_test'

echo "==> TSan: query-server suites (sessions, admission, chaos)"
# The continuous shared-scan server is the most concurrency-heavy
# subsystem: client threads race Submit against the controller, engine
# destruction races queries in flight, and the typed ThreadPool shutdown
# ordering is exactly the class of bug TSan exists for.
cmake --build build-tsan -j "$JOBS" --target \
  server_session_test server_admission_test server_chaos_test
TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'server_session_test|server_admission_test|server_chaos_test'

echo "==> perf-smoke: scan benches on reduced rows"
# Each bench SS_CHECKs bit-identity against its reference execution and
# exact IoStats equality across configurations — a vectorized result or a
# page count drifting from tuple-at-a-time aborts the bench and this stage.
# Speedup ratios at this row count are recorded but not asserted (see
# bench_vectorized_scan.cpp); the Release 2M-row sweep is the perf gate.
(cd build && STARSHARE_ROWS=120000 ./bench/bench_vectorized_scan >/dev/null)
(cd build && STARSHARE_ROWS=120000 ./bench/bench_parallel_scan >/dev/null)
(cd build && STARSHARE_ROWS=120000 ./bench/bench_server_throughput >/dev/null)

echo "==> optimizer differential: Release build, 200 seeds, all optimizers"
# The differential suite pins all five optimizers to bit-identical
# results, exact est==actual modeled IoStats on scan-only plans, and the
# cost ordering (DAG <= GG, OPTIMAL <= everything) across the paper
# workloads plus 200 seeded random workloads, at {1,4} threads x
# {1,1024} batch rows. A dedicated Release build keeps the 200-seed
# sweep fast and matches the configuration the benches run under.
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "$JOBS" --target \
  optimizer_differential_test optimizer_test
ctest --test-dir build-release --output-on-failure -j "$JOBS" \
  -R 'optimizer_differential_test|optimizer_test'

echo "==> clang-tidy: src/plan/ + src/exec/ (bugprone, modernize, performance)"
# Gates the physical-plan DAG and operator layers with the repo .clang-tidy
# (warnings are errors there). Uses the plain build's compile commands;
# skips with a notice when clang-tidy is not installed so the stage never
# blocks environments without LLVM tooling.
if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find src/plan src/exec -name '*.cc' -print0 \
    | xargs -0 -P "$JOBS" -n 1 clang-tidy -p build --quiet
else
  echo "    clang-tidy not found; skipping (install LLVM tooling to enable)"
fi

echo "==> coverage: obs/server/opt/spill/storage line gate (>= 90%)"
cmake -B build-cov -S . -DCMAKE_BUILD_TYPE=Debug \
  -DSTARSHARE_COVERAGE=ON >/dev/null
cmake --build build-cov -j "$JOBS"
ctest --test-dir build-cov -j "$JOBS" >/dev/null
python3 scripts/obs_coverage.py build-cov 90

echo "==> verify OK"
