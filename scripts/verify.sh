#!/usr/bin/env bash
# Tier-1 verification: the plain build + full test suite, then the same
# suite under AddressSanitizer + UBSan (-DSTARSHARE_SANITIZE=ON). Both must
# pass. Run from the repository root:
#
#   scripts/verify.sh [jobs]

set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "==> plain build + tests"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "==> ASan+UBSan build + tests"
cmake -B build-sanitize -S . -DSTARSHARE_SANITIZE=ON >/dev/null
cmake --build build-sanitize -j "$JOBS"
ASAN_OPTIONS=detect_leaks=1 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ctest --test-dir build-sanitize --output-on-failure -j "$JOBS"

echo "==> verify OK"
