// Deeper MDX expansion coverage: nested NEST, multi-axis cross products,
// slicer interaction with axis predicates, and expansion against the full
// paper workload (query-by-query SQL shape).

#include <gtest/gtest.h>

#include "core/paper_workload.h"
#include "mdx/binder.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using mdx::ParseAndExpandMdx;

StarSchema Paper() { return StarSchema::PaperTestSchema(); }

TEST(MdxExpandTest, NestedNestFlattensAllComponents) {
  StarSchema s = Paper();
  // NEST(NEST({A''.A1},{B''.B2}), {C''.C3}) == one variant over A,B,C.
  auto queries = ParseAndExpandMdx(
                     "NEST(NEST({A''.A1}, {B''.B2}), {C''.C3}) on COLUMNS "
                     "CONTEXT ABCD;",
                     s)
                     .value();
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_EQ(queries[0].target().ToString(s), "A''B''C''");
  EXPECT_NE(queries[0].predicate().ForDim(0), nullptr);
  EXPECT_NE(queries[0].predicate().ForDim(1), nullptr);
  EXPECT_NE(queries[0].predicate().ForDim(2), nullptr);
}

TEST(MdxExpandTest, NestOfMixedGranularitySetsMultipliesVariants) {
  StarSchema s = Paper();
  // Set 1: 2 variants over A (level 1 and level 2); set 2: 2 variants over
  // B. NEST multiplies: 4 component queries.
  auto queries = ParseAndExpandMdx(
                     "NEST({A''.A1.CHILDREN, A''.A2}, "
                     "     {B''.B1.CHILDREN, B''.B3}) on COLUMNS "
                     "CONTEXT ABCD;",
                     s)
                     .value();
  ASSERT_EQ(queries.size(), 4u);
  std::set<std::string> targets;
  for (const auto& q : queries) targets.insert(q.target().ToString(s));
  EXPECT_EQ(targets, (std::set<std::string>{"A'B'", "A'B''", "A''B'",
                                            "A''B''"}));
}

TEST(MdxExpandTest, ThreeAxesTimesTwoVariantsEach) {
  StarSchema s = Paper();
  auto queries = ParseAndExpandMdx(
                     "{A''.A1.CHILDREN, A''.A2} on COLUMNS "
                     "{B''.B1.CHILDREN, B''.B2} on ROWS "
                     "{C''.C1.CHILDREN, C''.C3} on PAGES "
                     "CONTEXT ABCD;",
                     s)
                     .value();
  EXPECT_EQ(queries.size(), 8u);  // 2 x 2 x 2
  // Ids are sequential from 1.
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(queries[i].id(), static_cast<int>(i) + 1);
  }
}

TEST(MdxExpandTest, SlicerIntersectsAxisPredicateOnSameDim) {
  StarSchema s = Paper();
  // Axis restricts A'' to {A1, A2}; slicer pins A''=A2: conjunction = A2.
  auto queries = ParseAndExpandMdx(
                     "{A''.A1, A''.A2} on COLUMNS CONTEXT ABCD "
                     "FILTER (A''.A2);",
                     s)
                     .value();
  ASSERT_EQ(queries.size(), 1u);
  const DimPredicate* pred = queries[0].predicate().ForDim(0);
  ASSERT_NE(pred, nullptr);
  EXPECT_EQ(pred->members, (std::vector<int32_t>{1}));
  // Target still groups by A'' (axis semantics win for grouping).
  EXPECT_EQ(queries[0].target().level(0), 2);
}

TEST(MdxExpandTest, ContradictorySlicerYieldsEmptyResult) {
  StarSchema s = Paper();
  auto queries = ParseAndExpandMdx(
                     "{A''.A1} on COLUMNS CONTEXT ABCD FILTER (A''.A2);", s)
                     .value();
  ASSERT_EQ(queries.size(), 1u);
  const DimPredicate* pred = queries[0].predicate().ForDim(0);
  ASSERT_NE(pred, nullptr);
  EXPECT_TRUE(pred->members.empty());  // A1 ∩ A2 = ∅ — legal, just empty
}

TEST(MdxExpandTest, PaperQueriesExpandAndRenderSql) {
  StarSchema s = Paper();
  for (int i = 1; i <= PaperWorkload::kNumQueries; ++i) {
    auto queries = ParseAndExpandMdx(PaperWorkload::QueryMdx(i), s, i);
    ASSERT_TRUE(queries.ok()) << "Q" << i;
    ASSERT_EQ(queries.value().size(), 1u) << "Q" << i;
    const std::string sql = queries.value()[0].ToSql(s, "ABCD");
    // Every paper query joins D (the slicer) and groups by 3 dims.
    EXPECT_NE(sql.find("Ddim"), std::string::npos) << "Q" << i;
    EXPECT_NE(sql.find("GROUP BY"), std::string::npos) << "Q" << i;
    EXPECT_NE(sql.find("SUM(ABCD.dollars)"), std::string::npos) << "Q" << i;
  }
}

TEST(MdxExpandTest, BareDimensionGroupsAtBaseLevel) {
  StarSchema s = Paper();
  auto queries =
      ParseAndExpandMdx("{D} on COLUMNS CONTEXT ABCD;", s).value();
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_EQ(queries[0].target().level(3), 0);
  EXPECT_EQ(queries[0].predicate().ForDim(3), nullptr);  // covers the level
}

TEST(MdxExpandTest, MembersSuffixSameAsBareLevel) {
  StarSchema s = Paper();
  auto a = ParseAndExpandMdx("{A'} on COLUMNS CONTEXT ABCD;", s).value();
  auto b = ParseAndExpandMdx("{A'.MEMBERS} on COLUMNS CONTEXT ABCD;", s)
               .value();
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].target(), b[0].target());
  EXPECT_EQ(a[0].predicate(), b[0].predicate());
}

TEST(MdxExpandTest, EmptyAxisVariantStillsYieldsQueries) {
  // A set whose members all resolve to ALL contributes no grouping but
  // must not kill the expansion.
  StarSchema s = Paper();
  auto queries = ParseAndExpandMdx(
                     "{B.ALL} on COLUMNS {A''.A1} on ROWS CONTEXT ABCD;", s)
                     .value();
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_EQ(queries[0].target().ToString(s), "A''");
}

}  // namespace
}  // namespace starshare
