#include <gtest/gtest.h>

#include <cstring>

#include "exec/flat_hash.h"
#include "exec/hash_aggregator.h"
#include "exec/key_packer.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using testing::SmallSchema;

// ------------------------------------------------------------ FlatHashMap

TEST(FlatHashMapTest, InsertAndFind) {
  FlatHashMap<int> map;
  map.FindOrInsert(10) = 7;
  map.FindOrInsert(20) = 9;
  ASSERT_NE(map.Find(10), nullptr);
  EXPECT_EQ(*map.Find(10), 7);
  EXPECT_EQ(*map.Find(20), 9);
  EXPECT_EQ(map.Find(30), nullptr);
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatHashMapTest, FindOrInsertReturnsSameSlot) {
  FlatHashMap<int> map;
  map.FindOrInsert(5) = 1;
  map.FindOrInsert(5) += 10;
  EXPECT_EQ(*map.Find(5), 11);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, GrowsPastInitialCapacity) {
  FlatHashMap<uint64_t> map(4);
  for (uint64_t k = 0; k < 10000; ++k) map.FindOrInsert(k * 3 + 1) = k;
  EXPECT_EQ(map.size(), 10000u);
  for (uint64_t k = 0; k < 10000; ++k) {
    ASSERT_NE(map.Find(k * 3 + 1), nullptr);
    ASSERT_EQ(*map.Find(k * 3 + 1), k);
  }
}

TEST(FlatHashMapTest, SurvivesSeveralGrowBoundaries) {
  // Start at the minimum capacity and insert enough keys to force several
  // rehashes; every key must survive every Grow() and misses must stay
  // misses. capacity() doubles, so each boundary crossing is observable.
  FlatHashMap<uint64_t> map(1);
  size_t grows_seen = 0;
  size_t last_capacity = map.capacity();
  for (uint64_t k = 0; k < 5000; ++k) {
    map.FindOrInsert(k * 7 + 3) = k;
    if (map.capacity() != last_capacity) {
      EXPECT_EQ(map.capacity(), last_capacity * 2)
          << "capacity must double at each growth";
      last_capacity = map.capacity();
      ++grows_seen;
      // Immediately after a rehash: all prior keys present, misses miss.
      for (uint64_t probe = 0; probe <= k; probe += 97) {
        ASSERT_NE(map.Find(probe * 7 + 3), nullptr)
            << "key lost across Grow() #" << grows_seen;
        ASSERT_EQ(*map.Find(probe * 7 + 3), probe);
      }
      EXPECT_EQ(map.Find(k * 7 + 4), nullptr)
          << "miss became a hit after Grow() #" << grows_seen;
    }
  }
  EXPECT_GE(grows_seen, 4u) << "test did not cross several Grow boundaries";
  EXPECT_EQ(map.size(), 5000u);
  for (uint64_t k = 0; k < 5000; ++k) {
    ASSERT_NE(map.Find(k * 7 + 3), nullptr);
    ASSERT_EQ(*map.Find(k * 7 + 3), k);
  }
  EXPECT_EQ(map.Find(2), nullptr);
  EXPECT_EQ(map.Find(5000 * 7 + 3), nullptr);
}

TEST(FlatHashMapTest, ForEachVisitsAll) {
  FlatHashMap<int> map;
  for (uint64_t k = 1; k <= 100; ++k) map.FindOrInsert(k) = 1;
  uint64_t sum = 0;
  int entries = 0;
  map.ForEach([&](uint64_t key, int) {
    sum += key;
    ++entries;
  });
  EXPECT_EQ(entries, 100);
  EXPECT_EQ(sum, 5050u);
}

TEST(FlatHashMapTest, ZeroKeyWorks) {
  FlatHashMap<int> map;
  map.FindOrInsert(0) = 42;
  EXPECT_EQ(*map.Find(0), 42);
}

// -------------------------------------------------------------- KeyPacker

TEST(KeyPackerTest, RoundTripsAllCombinations) {
  StarSchema s = SmallSchema();
  auto spec = GroupBySpec::Parse("X'Y''Z", s).value();
  KeyPacker packer(s, spec);
  EXPECT_EQ(packer.num_keys(), 3u);
  for (int32_t x = 0; x < 4; ++x) {
    for (int32_t y = 0; y < 2; ++y) {
      for (int32_t z = 0; z < 12; ++z) {
        const int32_t keys[] = {x, y, z};
        const auto out = packer.Unpack(packer.Pack(keys));
        ASSERT_EQ(out, (std::vector<int32_t>{x, y, z}));
      }
    }
  }
}

TEST(KeyPackerTest, DistinctKeysDistinctPackings) {
  StarSchema s = SmallSchema();
  auto spec = GroupBySpec::Base(s);
  KeyPacker packer(s, spec);
  std::set<uint64_t> seen;
  for (int32_t x = 0; x < 12; ++x) {
    for (int32_t y = 0; y < 12; ++y) {
      const int32_t keys[] = {x, y, 0};
      seen.insert(packer.Pack(keys));
    }
  }
  EXPECT_EQ(seen.size(), 144u);
}

TEST(KeyPackerTest, RetainedDimsOnly) {
  StarSchema s = SmallSchema();
  auto spec = GroupBySpec::Parse("Z'", s).value();
  KeyPacker packer(s, spec);
  EXPECT_EQ(packer.num_keys(), 1u);
  EXPECT_EQ(packer.retained_dims(), (std::vector<size_t>{2}));
}

TEST(KeyPackerTest, NeverCollidesWithEmptySentinel) {
  StarSchema s = StarSchema::PaperTestSchema();
  KeyPacker packer(s, GroupBySpec::Base(s));
  const int32_t max_keys[] = {44, 44, 44, 1399};
  EXPECT_NE(packer.Pack(max_keys), FlatHashMap<int>::kEmptyKey);
}

// --------------------------------------------------------- HashAggregator

TEST(HashAggregatorTest, SumsGroups) {
  StarSchema s = SmallSchema();
  auto spec = GroupBySpec::Parse("X''", s).value();
  HashAggregator agg(s, spec, AggOp::kSum);
  const int32_t g0[] = {0};
  const int32_t g1[] = {1};
  agg.Add(agg.packer().Pack(g0), 1.5);
  agg.Add(agg.packer().Pack(g0), 2.5);
  agg.Add(agg.packer().Pack(g1), 10.0);
  EXPECT_EQ(agg.num_groups(), 2u);
  QueryResult result = agg.Finish();
  ASSERT_EQ(result.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(result.rows()[0].value, 4.0);
  EXPECT_DOUBLE_EQ(result.rows()[1].value, 10.0);
}

struct AggCase {
  AggOp op;
  double expected;  // over inputs {3, 1, 2}
};

class HashAggregatorOpTest : public ::testing::TestWithParam<AggCase> {};

TEST_P(HashAggregatorOpTest, ComputesAggregate) {
  StarSchema s = SmallSchema();
  auto spec = GroupBySpec::Parse("X''", s).value();
  HashAggregator agg(s, spec, GetParam().op);
  const int32_t g[] = {0};
  for (double v : {3.0, 1.0, 2.0}) agg.Add(agg.packer().Pack(g), v);
  QueryResult result = agg.Finish();
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(result.rows()[0].value, GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, HashAggregatorOpTest,
    ::testing::Values(AggCase{AggOp::kSum, 6.0}, AggCase{AggOp::kCount, 3.0},
                      AggCase{AggOp::kMin, 1.0}, AggCase{AggOp::kMax, 3.0},
                      AggCase{AggOp::kAvg, 2.0}));

TEST(HashAggregatorTest, MinMaxWithAllNegativeValues) {
  // The accumulator starts at agg = 0: min/max must initialize from the
  // first value (count == 0), not fold the zero in — all-negative maxima
  // and all-positive minima would otherwise come out wrong.
  StarSchema s = SmallSchema();
  auto spec = GroupBySpec::Parse("X''", s).value();
  const int32_t g[] = {0};

  HashAggregator max_agg(s, spec, AggOp::kMax);
  for (double v : {-5.0, -1.5, -9.0}) {
    max_agg.Add(max_agg.packer().Pack(g), v);
  }
  QueryResult max_result = max_agg.Finish();
  ASSERT_EQ(max_result.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(max_result.rows()[0].value, -1.5);

  HashAggregator min_agg(s, spec, AggOp::kMin);
  for (double v : {7.0, 2.25, 11.0}) {
    min_agg.Add(min_agg.packer().Pack(g), v);
  }
  QueryResult min_result = min_agg.Finish();
  ASSERT_EQ(min_result.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(min_result.rows()[0].value, 2.25);
}

TEST(HashAggregatorTest, EmptyInputFinishesEmpty) {
  StarSchema s = SmallSchema();
  auto spec = GroupBySpec::Parse("X''", s).value();
  for (AggOp op : {AggOp::kSum, AggOp::kCount, AggOp::kMin, AggOp::kMax,
                   AggOp::kAvg}) {
    HashAggregator agg(s, spec, op);
    EXPECT_EQ(agg.num_groups(), 0u);
    QueryResult result = agg.Finish();
    EXPECT_EQ(result.num_rows(), 0u)
        << "op " << static_cast<int>(op) << " produced rows from no input";
  }
}

TEST(HashAggregatorTest, AddBatchMatchesAddPerOp) {
  // AddBatch must replay Add's exact fold (it is the vectorized engine's
  // only aggregation entry point). Inputs mix groups, signs and duplicates.
  StarSchema s = SmallSchema();
  auto spec = GroupBySpec::Parse("X'", s).value();
  KeyPacker ref_packer(s, spec);
  std::vector<uint64_t> keys;
  std::vector<double> values;
  for (int i = 0; i < 257; ++i) {  // not a multiple of any batch size
    const int32_t g[] = {i % 4};  // X' has 4 members (0..3)
    keys.push_back(ref_packer.Pack(g));
    values.push_back((i % 7) * 1.25 - 3.0);
  }
  for (AggOp op : {AggOp::kSum, AggOp::kCount, AggOp::kMin, AggOp::kMax,
                   AggOp::kAvg}) {
    HashAggregator one(s, spec, op);
    for (size_t i = 0; i < keys.size(); ++i) one.Add(keys[i], values[i]);
    HashAggregator batch(s, spec, op);
    batch.AddBatch(keys.data(), values.data(), keys.size());
    const QueryResult a = one.Finish();
    const QueryResult b = batch.Finish();
    ASSERT_EQ(a.num_rows(), b.num_rows()) << static_cast<int>(op);
    for (size_t r = 0; r < a.num_rows(); ++r) {
      EXPECT_EQ(a.rows()[r].keys, b.rows()[r].keys);
      EXPECT_EQ(std::memcmp(&a.rows()[r].value, &b.rows()[r].value,
                            sizeof(double)),
                0)
          << "op " << static_cast<int>(op) << " row " << r
          << " batch fold diverged from per-tuple fold";
    }
  }
}

TEST(HashAggregatorTest, FinishIsCanonicallySorted) {
  StarSchema s = SmallSchema();
  auto spec = GroupBySpec::Parse("XZ", s).value();
  HashAggregator agg(s, spec, AggOp::kSum);
  // Insert in scrambled order.
  for (int32_t x : {11, 3, 7}) {
    for (int32_t z : {5, 1}) {
      const int32_t g[] = {x, z};
      agg.Add(agg.packer().Pack(g), 1.0);
    }
  }
  QueryResult result = agg.Finish();
  ASSERT_EQ(result.num_rows(), 6u);
  for (size_t i = 1; i < result.num_rows(); ++i) {
    EXPECT_LT(result.rows()[i - 1].keys, result.rows()[i].keys);
  }
}

// ------------------------------------------------------------ QueryResult

TEST(QueryResultTest, ApproxEquals) {
  StarSchema s = SmallSchema();
  auto spec = GroupBySpec::Parse("X''", s).value();
  QueryResult a(spec, AggOp::kSum), b(spec, AggOp::kSum);
  a.AddRow({0}, 100.0);
  b.AddRow({0}, 100.0 + 1e-9);
  a.Canonicalize();
  b.Canonicalize();
  EXPECT_TRUE(a.ApproxEquals(b));
  QueryResult c(spec, AggOp::kSum);
  c.AddRow({0}, 101.0);
  c.Canonicalize();
  EXPECT_FALSE(a.ApproxEquals(c));
  QueryResult d(spec, AggOp::kSum);  // different row count
  EXPECT_FALSE(a.ApproxEquals(d));
}

TEST(QueryResultTest, DifferentKeysNotEqual) {
  StarSchema s = SmallSchema();
  auto spec = GroupBySpec::Parse("X''", s).value();
  QueryResult a(spec, AggOp::kSum), b(spec, AggOp::kSum);
  a.AddRow({0}, 5.0);
  b.AddRow({1}, 5.0);
  EXPECT_FALSE(a.ApproxEquals(b));
}

TEST(QueryResultTest, TotalValue) {
  StarSchema s = SmallSchema();
  QueryResult r(GroupBySpec::Parse("X''", s).value(), AggOp::kSum);
  r.AddRow({0}, 1.0);
  r.AddRow({1}, 2.5);
  EXPECT_DOUBLE_EQ(r.TotalValue(), 3.5);
}

TEST(QueryResultTest, ToStringTruncates) {
  StarSchema s = SmallSchema();
  QueryResult r(GroupBySpec::Parse("X", s).value(), AggOp::kSum);
  for (int32_t i = 0; i < 10; ++i) r.AddRow({i}, 1.0);
  r.Canonicalize();
  const std::string text = r.ToString(s, 3);
  EXPECT_NE(text.find("7 more rows"), std::string::npos);
}

}  // namespace
}  // namespace starshare
