// The tracing subsystem's core promise: span *structure* — ids, nesting,
// names, per-span IoStats deltas, row counts, status codes and named
// counters — is a function of the plan and the data, not of the execution
// strategy. Thread counts and batch sizes may only change wall/cpu timings
// and the non-structural batch tally. This leans directly on the parallel
// and vectorized engines' bit-identity guarantee (every configuration
// charges exactly the serial IoStats), which trace spans observe as deltas.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "core/paper_workload.h"
#include "obs/trace.h"

namespace starshare {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>(StarSchema::PaperTestSchema());
    PaperWorkload::Setup(*engine_, /*rows=*/30'000, /*seed=*/7);
    queries_ = PaperWorkload::MakeQueries(*engine_,
                                          {1, 2, 3, 4, 5, 6, 7, 8, 9});
    plan_ = engine_->Optimize(queries_, OptimizerKind::kGlobalGreedy);
  }

  void TearDown() override { FaultInjector::Instance().Disable(); }

  std::unique_ptr<Engine> engine_;
  std::vector<DimensionalQuery> queries_;
  GlobalPlan plan_;
};

TEST_F(TraceTest, StructureInvariantAcrossThreadCountsAndBatchSizes) {
  // The acceptance matrix: {1, 4} threads x {1, 1024} batch rows, all on
  // the full nine-query paper workload. The serial tuple-sized reference
  // comes first; every other configuration must produce a byte-identical
  // structure signature and masked rendering.
  struct Config {
    size_t threads;
    size_t batch_rows;
  };
  const std::vector<Config> configs = {{1, 1}, {1, 1024}, {4, 1}, {4, 1024}};

  std::string reference_signature;
  std::string reference_text;
  obs::TraceRenderOptions masked;
  masked.mask_timings = true;
  masked.show_batches = false;

  for (const Config& config : configs) {
    engine_->set_parallelism(config.threads);
    engine_->set_batch_rows(config.batch_rows);
    auto traced = engine_->ExecuteTraced(plan_);
    for (const auto& r : traced.results) {
      ASSERT_TRUE(r.ok()) << r.status.ToString();
    }
    ASSERT_FALSE(traced.trace.empty());

    const std::string signature = traced.trace.StructureSignature();
    const std::string text = traced.trace.ToText(masked);
    if (reference_signature.empty()) {
      reference_signature = signature;
      reference_text = text;
      continue;
    }
    EXPECT_EQ(signature, reference_signature)
        << config.threads << " threads, batch " << config.batch_rows
        << " changed the span structure";
    EXPECT_EQ(text, reference_text)
        << config.threads << " threads, batch " << config.batch_rows
        << " changed the masked rendering";
  }
  engine_->set_parallelism(1);
}

TEST_F(TraceTest, SpanTreeMirrorsThePlan) {
  auto traced = engine_->ExecuteTraced(plan_);
  const obs::Trace& trace = traced.trace;

  // Root: one engine.execute span with id 0 at depth 0.
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.spans[0].name, "engine.execute");
  EXPECT_EQ(trace.spans[0].id, 0u);
  EXPECT_EQ(trace.spans[0].parent, -1);

  // One exec.class span per plan class, each carrying the cost-model
  // estimate for the estimated-vs-actual column.
  const auto classes = trace.FindAll("exec.class");
  ASSERT_EQ(classes.size(), plan_.classes.size());
  for (const obs::TraceSpan* cls : classes) {
    EXPECT_GE(cls->est_ms, 0.0) << cls->detail;
  }

  // One exec.member leaf per plan member, with the query's id, its own
  // estimate, and the produced row count.
  size_t plan_members = 0;
  for (const auto& cls : plan_.classes) plan_members += cls.members.size();
  const auto members = trace.FindAll("exec.member");
  ASSERT_EQ(members.size(), plan_members);
  for (const obs::TraceSpan* member : members) {
    EXPECT_GE(member->query_id, 1);
    EXPECT_LE(member->query_id, 9);
    EXPECT_GE(member->est_ms, 0.0);
    EXPECT_EQ(member->status_code, 0);
    bool found = false;
    for (const auto& r : traced.results) {
      if (r.query->id() != member->query_id) continue;
      EXPECT_EQ(member->rows, r.result.num_rows())
          << "Q" << member->query_id;
      found = true;
    }
    EXPECT_TRUE(found) << "Q" << member->query_id << " not in the results";
  }

  // Parent I/O is inclusive: the root span saw everything the shared
  // passes charged.
  const obs::TraceSpan* scan = trace.Find("exec.shared_scan");
  ASSERT_NE(scan, nullptr);
  EXPECT_GT(scan->io.seq_pages_read, 0u);
  EXPECT_GE(trace.spans[0].io.seq_pages_read, scan->io.seq_pages_read);
  EXPECT_GT(trace.ActualMs(*scan), 0.0);
}

TEST_F(TraceTest, SessionTraceRecordsOptimizerPhases) {
  auto traced =
      engine_->ExecuteTraced(queries_, OptimizerKind::kGlobalGreedy);
  for (const auto& r : traced.results) {
    ASSERT_TRUE(r.ok()) << r.status.ToString();
  }
  const obs::Trace& trace = traced.trace;
  EXPECT_EQ(trace.spans[0].name, "engine.session");

  const obs::TraceSpan* optimize = trace.Find("engine.optimize");
  ASSERT_NE(optimize, nullptr);
  EXPECT_EQ(optimize->detail, OptimizerKindName(OptimizerKind::kGlobalGreedy));
  EXPECT_GE(optimize->est_ms, 0.0);  // the chosen plan's estimated total

  // The optimizer's own phase spans nest under engine.optimize.
  const obs::TraceSpan* greedy = trace.Find("opt.greedy");
  ASSERT_NE(greedy, nullptr);
  EXPECT_EQ(greedy->parent, static_cast<int32_t>(optimize->id));
  EXPECT_NE(trace.Find("engine.execute"), nullptr);

  // TPLO splits into its two phases.
  auto tplo = engine_->ExecuteTraced(queries_, OptimizerKind::kTplo);
  EXPECT_NE(tplo.trace.Find("opt.local_choices"), nullptr);
  EXPECT_NE(tplo.trace.Find("opt.merge_classes"), nullptr);
}

TEST_F(TraceTest, MemberDegradationIsVisibleInTheTrace) {
  // Arm a one-shot bind fault against Q2 inside the shared pass: the class
  // keeps going, the engine recovers Q2 from the fact table, and the trace
  // must show both the member's failure status and the fallback span.
  FaultInjector::Instance().Enable(/*seed=*/1);
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.key = 2;
  spec.max_fires = 1;
  FaultInjector::Instance().Arm("exec.bind_query", spec);

  auto traced = engine_->ExecuteTraced(plan_);
  FaultInjector::Instance().Disable();

  bool saw_degraded = false;
  for (const auto& r : traced.results) {
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    if (r.query->id() == 2) {
      EXPECT_TRUE(r.degraded);
      saw_degraded = r.degraded;
    }
  }
  ASSERT_TRUE(saw_degraded);

  // The failed member carries the non-OK status code at its span...
  bool saw_failed_member = false;
  for (const obs::TraceSpan* member : traced.trace.FindAll("exec.member")) {
    if (member->query_id != 2) continue;
    EXPECT_NE(member->status_code, 0);
    saw_failed_member = true;
  }
  EXPECT_TRUE(saw_failed_member);

  // ...and the recovery shows up as an exec.fallback span for Q2 with the
  // triggering status and the recovered row count.
  const obs::TraceSpan* fallback = traced.trace.Find("exec.fallback");
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(fallback->query_id, 2);
  EXPECT_NE(fallback->status_code, 0);
  bool recovered = false;
  for (const auto& [key, value] : fallback->counters) {
    if (key == "recovered" && value == 1) recovered = true;
  }
  EXPECT_TRUE(recovered);

  // The rendering names the status so \explain output is self-describing.
  const std::string text = traced.trace.ToText();
  EXPECT_NE(text.find("status="), std::string::npos);
}

TEST_F(TraceTest, ConfigKnobTracesPlainExecuteCalls) {
  EngineConfig config;
  config.trace = true;
  Engine engine(StarSchema::PaperTestSchema(), config);
  PaperWorkload::Setup(engine, /*rows=*/20'000, /*seed=*/7);
  EXPECT_FALSE(engine.last_trace().empty())  // Setup materializes views
      << "EngineConfig::trace should record view builds";

  std::vector<DimensionalQuery> queries =
      PaperWorkload::MakeQueries(engine, {1, 2});
  const GlobalPlan plan = engine.Optimize(queries, OptimizerKind::kGlobalGreedy);
  for (const auto& r : engine.Execute(plan)) {
    ASSERT_TRUE(r.ok()) << r.status.ToString();
  }
  const obs::Trace& trace = engine.last_trace();
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.spans[0].name, "engine.execute");
  EXPECT_NE(trace.Find("exec.class"), nullptr);
}

TEST_F(TraceTest, UntracedExecutionRecordsNothing) {
  // Default config: no tracer is ever bound, last_trace stays empty and
  // every span site is a no-op.
  for (const auto& r : engine_->Execute(plan_)) {
    ASSERT_TRUE(r.ok()) << r.status.ToString();
  }
  EXPECT_TRUE(engine_->last_trace().empty());
  EXPECT_EQ(obs::Tracer::Current(), nullptr);
}

TEST_F(TraceTest, JsonExportIsWellFormedAndKeyed) {
  auto traced = engine_->ExecuteTraced(plan_);
  const std::string json = traced.trace.ToJson();
  // Every span appears with its id; the root is parented to -1.
  EXPECT_NE(json.find("\"name\": \"engine.execute\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\": -1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"exec.class\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos)
      << "flat single-line array for embedding in bench reports";
}

}  // namespace
}  // namespace starshare
