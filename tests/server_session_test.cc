// The query server's core contract: Submit/Await returns exactly what the
// synchronous batch Execute returns. Queries submitted in one batch reach
// one admission round, are planned by the same optimizer into the same
// shared classes, and produce BIT-identical results with EXACTLY equal
// modeled IoStats across {1, 4} threads x {1, 1024} batch rows. Handles
// survive engine destruction with typed outcomes.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "server/query_server.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using testing::MakeQuery;
using testing::SmallSchema;

bool BitIdentical(const QueryResult& a, const QueryResult& b) {
  if (a.num_rows() != b.num_rows()) return false;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    if (a.rows()[i].keys != b.rows()[i].keys) return false;
    if (std::memcmp(&a.rows()[i].value, &b.rows()[i].value,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

constexpr uint64_t kRows = 40'000;
constexpr uint64_t kSeed = 20260809;

std::unique_ptr<Engine> MakeEngine(size_t threads, size_t batch_rows,
                                   EngineConfig cfg = EngineConfig()) {
  cfg.parallelism = threads;
  cfg.batch.batch_rows = batch_rows;
  auto engine = std::make_unique<Engine>(SmallSchema(), cfg);
  engine->LoadFactTable({.num_rows = kRows, .seed = kSeed});
  return engine;
}

std::vector<DimensionalQuery> Workload(const StarSchema& schema) {
  std::vector<DimensionalQuery> qs;
  qs.push_back(MakeQuery(schema, 1, "X'Y'Z", {{"X", 1, {0, 2}}}));
  qs.push_back(MakeQuery(schema, 2, "X''Y''Z'", {{"Y", 0, {1, 3, 5, 7}}}));
  qs.push_back(MakeQuery(schema, 3, "XY'Z'", {{"Z", 1, {0}}, {"X", 2, {1}}},
                         AggOp::kMin));
  qs.push_back(MakeQuery(schema, 4, "X'Z'", {}, AggOp::kMax));
  qs.push_back(MakeQuery(schema, 5, "Y''Z", {{"Z", 0, {2, 4, 6}}},
                         AggOp::kCount));
  qs.push_back(MakeQuery(schema, 6, "X''", {{"Y", 1, {2}}}, AggOp::kAvg));
  return qs;
}

// Batch-engine reference: results by query id plus the exact IoStats the
// run charged.
std::map<int, QueryResult> Reference(Engine& engine,
                                     const std::vector<DimensionalQuery>& qs,
                                     IoStats* stats) {
  engine.ConsumeIoStats();
  const GlobalPlan plan = engine.Optimize(qs, OptimizerKind::kGlobalGreedy);
  std::map<int, QueryResult> out;
  for (auto& r : engine.Execute(plan)) {
    EXPECT_TRUE(r.ok()) << r.status.ToString();
    out.emplace(r.query->id(), std::move(r.result));
  }
  if (stats != nullptr) *stats = engine.ConsumeIoStats();
  return out;
}

TEST(ServerSessionTest, SubmitAwaitMatchesBatchExecute) {
  auto server_engine = MakeEngine(1, 1024);
  auto batch_engine = MakeEngine(1, 1024);
  const auto queries = Workload(server_engine->schema());
  const auto want = Reference(*batch_engine, queries, nullptr);

  for (const DimensionalQuery& q : queries) {
    QueryHandle handle = server_engine->Submit(q);
    const QueryOutcome& out = server_engine->Await(handle);
    ASSERT_TRUE(out.ok()) << out.status.ToString();
    EXPECT_FALSE(out.degraded);
    EXPECT_TRUE(BitIdentical(out.result, want.at(q.id())))
        << "Q" << q.id() << " diverged from batch Execute";
  }
  EXPECT_EQ(server_engine->server().completed(), queries.size());
}

TEST(ServerSessionTest, BatchSubmissionBitIdenticalExactIoAcrossMatrix) {
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    for (const size_t batch_rows : {size_t{1}, size_t{1024}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " batch_rows=" + std::to_string(batch_rows));
      auto server_engine = MakeEngine(threads, batch_rows);
      auto batch_engine = MakeEngine(threads, batch_rows);
      const auto queries = Workload(server_engine->schema());
      IoStats want_io;
      const auto want = Reference(*batch_engine, queries, &want_io);

      server_engine->ConsumeIoStats();
      Session session = server_engine->OpenSession();
      std::vector<QueryHandle> handles = session.SubmitBatch(queries);
      ASSERT_EQ(handles.size(), queries.size());
      for (size_t i = 0; i < handles.size(); ++i) {
        const QueryOutcome& out = handles[i].Await();
        ASSERT_TRUE(out.ok()) << out.status.ToString();
        EXPECT_FALSE(out.cache_hit);
        EXPECT_FALSE(out.attached_late);
        EXPECT_TRUE(BitIdentical(out.result, want.at(queries[i].id())))
            << "Q" << queries[i].id();
      }
      // One admission round == one batch plan: the modeled I/O must be
      // EXACTLY the batch run's, counter for counter.
      const IoStats got_io = server_engine->ConsumeIoStats();
      EXPECT_TRUE(got_io == want_io)
          << "server: " << got_io.ToString() << "\nbatch:  "
          << want_io.ToString();
    }
  }
}

TEST(ServerSessionTest, RepeatSubmissionServedFromCacheWithZeroIo) {
  EngineConfig cfg;
  cfg.result_cache_entries = 8;
  auto engine = MakeEngine(1, 1024, cfg);
  const auto queries = Workload(engine->schema());
  const DimensionalQuery& q = queries[0];

  QueryHandle first = engine->Submit(q);
  const QueryOutcome cold = first.Await();
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.cache_hit);

  engine->ConsumeIoStats();
  QueryHandle second = engine->Submit(q);
  const QueryOutcome& warm = second.Await();
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_TRUE(BitIdentical(warm.result, cold.result));
  EXPECT_EQ(engine->ConsumeIoStats().TotalPagesRead(), 0u);
  EXPECT_EQ(engine->server().cache_hits(), 1u);
}

TEST(ServerSessionTest, ClosedSessionRefusesSubmissionTyped) {
  auto engine = MakeEngine(1, 1024);
  const auto queries = Workload(engine->schema());
  Session session = engine->OpenSession();
  session.Close();
  QueryHandle handle = session.Submit(queries[0]);
  const QueryOutcome& out = handle.Await();
  EXPECT_EQ(out.status.code(), StatusCode::kFailedPrecondition);

  // The default session stays open regardless.
  QueryHandle ok = engine->Submit(queries[1]);
  EXPECT_TRUE(ok.Await().ok());
}

TEST(ServerSessionTest, CloseDefaultOrUnknownSessionIsIgnored) {
  auto engine = MakeEngine(1, 1024);
  const auto queries = Workload(engine->schema());
  QueryServer& server = engine->server();
  server.CloseSession(0);      // the implicit default: always open
  server.CloseSession(12345);  // never opened
  EXPECT_TRUE(engine->Submit(queries[0]).Await().ok());

  Session session = engine->OpenSession();
  session.Close();
  session.Close();  // double-close: idempotent, no gauge imbalance
  EXPECT_EQ(session.Submit(queries[1]).Await().status.code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(engine->Submit(queries[2]).Await().ok());
}

TEST(ServerSessionTest, StopServerRefusesFurtherSubmissionsTyped) {
  auto engine = MakeEngine(1, 1024);
  const auto queries = Workload(engine->schema());
  EXPECT_TRUE(engine->Submit(queries[0]).Await().ok());
  engine->StopServer();
  engine->StopServer();  // idempotent
  QueryHandle handle = engine->Submit(queries[1]);
  EXPECT_EQ(handle.Await().status.code(), StatusCode::kShuttingDown);
}

// The UAF regression the typed ThreadPool shutdown exists for: destroying
// the Engine with queries still in flight must complete every handle with
// either its real result or kShuttingDown — never hang, never touch freed
// engine state (run under TSan by scripts/verify.sh).
TEST(ServerSessionTest, EngineDestructionWithInflightQueriesYieldsTyped) {
  for (int round = 0; round < 5; ++round) {
    auto engine = MakeEngine(4, 1024);
    const auto queries = Workload(engine->schema());
    std::vector<QueryHandle> handles;
    for (const auto& q : queries) handles.push_back(engine->Submit(q));
    engine.reset();  // races the controller mid-flight
    for (QueryHandle& h : handles) {
      const QueryOutcome& out = h.Await();
      EXPECT_TRUE(out.ok() || out.status.code() == StatusCode::kShuttingDown)
          << out.status.ToString();
    }
  }
}

}  // namespace
}  // namespace starshare
