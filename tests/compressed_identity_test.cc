// Engine-wide bit-identity of the compressed page layout (DESIGN.md §14):
// with EngineConfig::compressed_pages on, every query result and every
// built view must be BIT-identical to the uncompressed engine — same
// result doubles, same key rows, same view tables — at any combination of
// {threads} x {batch rows} x {memory budget}. The layouts legitimately
// charge different page counts (that is the point of compression), but
// tuple and probe counts must not move, and within one layout the charged
// IoStats must be invariant across every driver combination.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/paper_workload.h"
#include "plan/plan.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using testing::BruteForce;

bool BitIdentical(const QueryResult& a, const QueryResult& b) {
  if (a.num_rows() != b.num_rows()) return false;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    if (a.rows()[i].keys != b.rows()[i].keys) return false;
    if (std::memcmp(&a.rows()[i].value, &b.rows()[i].value,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

// Same forced-class construction the paper benches use: one class on
// `view_name` with an explicit join method per query.
GlobalPlan ForcePlan(Engine& engine,
                     const std::vector<DimensionalQuery>& queries,
                     const std::string& view_name,
                     const std::vector<JoinMethod>& methods) {
  MaterializedView* view = engine.views().FindByName(view_name);
  SS_CHECK_MSG(view != nullptr, "no view named %s", view_name.c_str());
  GlobalPlan plan;
  plan.classes.push_back(ClassPlan{});
  plan.classes[0].base = view;
  for (size_t i = 0; i < queries.size(); ++i) {
    LocalPlan lp;
    lp.query = &queries[i];
    lp.method = methods[i];
    plan.classes[0].members.push_back(lp);
  }
  engine.cost_model().AnnotatePlan(plan);
  return plan;
}

struct EngineUnderTest {
  std::unique_ptr<Engine> engine;
  // The three shared operators of the paper: a pure hash-scan class on the
  // base, a pure index class on A'B'C'D, and the Figure 12 hybrid.
  std::vector<DimensionalQuery> hash_queries;
  std::vector<DimensionalQuery> index_queries;
  std::vector<DimensionalQuery> hybrid_queries;
};

EngineUnderTest MakeEngine(bool compressed) {
  EngineUnderTest e;
  EngineConfig config;
  config.compressed_pages = compressed;
  e.engine = std::make_unique<Engine>(StarSchema::PaperTestSchema(), config);
  PaperWorkload::Setup(*e.engine, 30'000);
  e.hash_queries = PaperWorkload::MakeQueries(*e.engine, {1, 2, 3, 4});
  e.index_queries = PaperWorkload::MakeQueries(*e.engine, {5, 6, 7, 8});
  e.hybrid_queries = PaperWorkload::MakeQueries(*e.engine, {3, 5, 6, 7});
  return e;
}

// Runs the three shared operators and returns results keyed by
// "<operator>/q<id>", plus the total charged IoStats in `io`.
std::map<std::string, QueryResult> RunAll(EngineUnderTest& e, IoStats* io) {
  Engine& engine = *e.engine;
  const std::string indexed = PaperWorkload::IndexedViewSpec();
  const GlobalPlan hash =
      ForcePlan(engine, e.hash_queries, "ABCD",
                std::vector<JoinMethod>(4, JoinMethod::kHashScan));
  const GlobalPlan index =
      ForcePlan(engine, e.index_queries, indexed,
                std::vector<JoinMethod>(4, JoinMethod::kIndexProbe));
  std::vector<JoinMethod> hybrid_methods(4, JoinMethod::kIndexProbe);
  hybrid_methods[0] = JoinMethod::kHashScan;
  const GlobalPlan hybrid =
      ForcePlan(engine, e.hybrid_queries, indexed, hybrid_methods);

  std::map<std::string, QueryResult> out;
  engine.ConsumeIoStats();
  const auto run = [&](const char* label, const GlobalPlan& plan) {
    for (auto& r : engine.Execute(plan)) {
      EXPECT_TRUE(r.ok()) << label << ": " << r.status.ToString();
      out.emplace(std::string(label) + "/q" + std::to_string(r.query->id()),
                  std::move(r.result));
    }
  };
  run("hash", hash);
  run("index", index);
  run("hybrid", hybrid);
  *io = engine.ConsumeIoStats();
  return out;
}

TEST(CompressedIdentityTest, FullMatrixBitIdenticalToUncompressed) {
  EngineUnderTest plain = MakeEngine(false);
  EngineUnderTest packed = MakeEngine(true);
  ASSERT_TRUE(packed.engine->base_view()->table().compressed());
  ASSERT_FALSE(plain.engine->base_view()->table().compressed());

  // Compression must actually shrink the modeled geometry.
  EXPECT_LT(packed.engine->base_view()->table().num_pages(),
            plain.engine->base_view()->table().num_pages());

  // Reference point: serial, default batch, unbounded — uncompressed.
  IoStats plain_io;
  const auto oracle = RunAll(plain, &plain_io);

  IoStats first_packed_io;
  bool have_packed_io = false;
  for (const size_t threads : {1u, 4u}) {
    for (const size_t batch_rows : {1u, 1024u}) {
      for (const uint64_t budget : {uint64_t{0}, uint64_t{64} * 1024}) {
        const std::string label =
            "threads=" + std::to_string(threads) +
            " batch=" + std::to_string(batch_rows) +
            " budget=" + std::to_string(budget);
        packed.engine->set_parallelism(threads);
        packed.engine->set_batch_config(BatchConfig{true, batch_rows});
        packed.engine->set_memory_budget_bytes(budget);

        IoStats io;
        const auto got = RunAll(packed, &io);
        ASSERT_EQ(got.size(), oracle.size()) << label;
        for (const auto& [key, result] : oracle) {
          const auto it = got.find(key);
          ASSERT_NE(it, got.end()) << label << " missing " << key;
          EXPECT_TRUE(BitIdentical(result, it->second))
              << key << " diverged from the uncompressed engine (" << label
              << ")";
        }

        // Within the compressed layout, charged I/O is driver-invariant.
        if (!have_packed_io) {
          first_packed_io = io;
          have_packed_io = true;
        } else {
          EXPECT_EQ(io, first_packed_io)
              << label << " changed the compressed layout's charged I/O";
        }
      }
    }
  }

  // Across layouts the data volume is identical; only pages shrink.
  EXPECT_EQ(first_packed_io.tuples_processed, plain_io.tuples_processed);
  EXPECT_EQ(first_packed_io.hash_probes, plain_io.hash_probes);
  EXPECT_LT(first_packed_io.seq_pages_read, plain_io.seq_pages_read);
}

TEST(CompressedIdentityTest, ViewBuildsBitIdenticalAcrossLayouts) {
  // PaperWorkload::Setup already built every Table 1 view in both engines;
  // the emitted cells must agree bit-for-bit (layout changes how key bytes
  // are stored, never which cells exist or their measure doubles).
  EngineUnderTest plain = MakeEngine(false);
  EngineUnderTest packed = MakeEngine(true);
  for (const std::string& spec : PaperWorkload::ViewSpecs()) {
    const Table* a = plain.engine->catalog().Find(spec);
    const Table* b = packed.engine->catalog().Find(spec);
    ASSERT_NE(a, nullptr) << spec;
    ASSERT_NE(b, nullptr) << spec;
    ASSERT_EQ(a->num_rows(), b->num_rows()) << spec;
    ASSERT_EQ(a->num_key_columns(), b->num_key_columns()) << spec;
    EXPECT_FALSE(a->compressed()) << spec;
    EXPECT_TRUE(b->compressed()) << spec;
    for (uint64_t r = 0; r < a->num_rows(); ++r) {
      for (size_t c = 0; c < a->num_key_columns(); ++c) {
        ASSERT_EQ(a->key(c, r), b->key(c, r)) << spec << " row " << r;
      }
      const double x = a->measure(r), y = b->measure(r);
      ASSERT_EQ(std::memcmp(&x, &y, sizeof(double)), 0)
          << spec << " row " << r << " measure differs";
    }
  }
}

TEST(CompressedIdentityTest, CompressedEngineMatchesBruteForceOracle) {
  // Single-query oracle: the compressed engine against a direct scan of
  // its own (compressed) base table AND of the uncompressed engine's base.
  EngineUnderTest plain = MakeEngine(false);
  EngineUnderTest packed = MakeEngine(true);
  for (int id = 0; id < 4; ++id) {
    const DimensionalQuery& q = packed.hash_queries[id];
    const std::vector<DimensionalQuery> one{q};
    const GlobalPlan plan =
        ForcePlan(*packed.engine, one, "ABCD", {JoinMethod::kHashScan});
    auto results = packed.engine->Execute(plan);
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].ok()) << results[0].status.ToString();
    const QueryResult via_packed = BruteForce(
        packed.engine->schema(), packed.engine->base_view()->table(), q);
    const QueryResult via_plain = BruteForce(
        plain.engine->schema(), plain.engine->base_view()->table(), q);
    EXPECT_TRUE(results[0].result.ApproxEquals(via_packed))
        << "q" << q.id() << " vs compressed-base oracle";
    EXPECT_TRUE(via_packed.ApproxEquals(via_plain))
        << "q" << q.id()
        << ": decoding the compressed base changed the scanned values";
  }
}

}  // namespace
}  // namespace starshare
