#include <gtest/gtest.h>

#include "mdx/binder.h"
#include "mdx/lexer.h"
#include "mdx/parser.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using mdx::MdxExpression;
using mdx::ParseAndExpandMdx;
using mdx::ParseMdx;
using mdx::ResolveMember;
using mdx::Token;
using mdx::Tokenize;
using mdx::TokenType;

StarSchema Paper() { return StarSchema::PaperTestSchema(); }

// ------------------------------------------------------------------ lexer

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("{A''.A1, B} on COLUMNS").value();
  ASSERT_EQ(tokens.size(), 10u);  // { A'' . A1 , B } on COLUMNS EOF
  EXPECT_EQ(tokens[0].type, TokenType::kLBrace);
  EXPECT_EQ(tokens[1].type, TokenType::kIdent);
  EXPECT_EQ(tokens[1].text, "A''");
  EXPECT_EQ(tokens[2].type, TokenType::kDot);
  EXPECT_EQ(tokens[3].text, "A1");
  EXPECT_EQ(tokens[4].type, TokenType::kComma);
  EXPECT_EQ(tokens[8].type, TokenType::kIdent);  // COLUMNS is not reserved
  EXPECT_EQ(tokens[9].type, TokenType::kEof);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("nest ON Context FILTER children all").value();
  EXPECT_EQ(tokens[0].type, TokenType::kNest);
  EXPECT_EQ(tokens[1].type, TokenType::kOn);
  EXPECT_EQ(tokens[2].type, TokenType::kContext);
  EXPECT_EQ(tokens[3].type, TokenType::kFilter);
  EXPECT_EQ(tokens[4].type, TokenType::kChildren);
  EXPECT_EQ(tokens[5].type, TokenType::kAll);
}

TEST(LexerTest, BracketedIdentifiers) {
  auto tokens = Tokenize("[1991] [North Region]").value();
  EXPECT_EQ(tokens[0].type, TokenType::kIdent);
  EXPECT_EQ(tokens[0].text, "1991");
  EXPECT_EQ(tokens[1].text, "North Region");
}

TEST(LexerTest, UnterminatedBracketFails) {
  EXPECT_FALSE(Tokenize("[oops").ok());
}

TEST(LexerTest, BadCharacterFails) {
  EXPECT_FALSE(Tokenize("{A} @ COLUMNS").ok());
}

TEST(LexerTest, NumbersLexAsIdents) {
  auto tokens = Tokenize("1991").value();
  EXPECT_EQ(tokens[0].type, TokenType::kIdent);
  EXPECT_EQ(tokens[0].text, "1991");
}

// ----------------------------------------------------------------- parser

TEST(ParserTest, PaperQueryShape) {
  auto expr = ParseMdx(
                  "{A''.A1.CHILDREN} on COLUMNS {B''.B1} on ROWS "
                  "{C''.C1} on PAGES CONTEXT ABCD FILTER (D.DD1);")
                  .value();
  ASSERT_EQ(expr.axes.size(), 3u);
  EXPECT_EQ(expr.axes[0].axis_name, "COLUMNS");
  EXPECT_EQ(expr.axes[1].axis_name, "ROWS");
  EXPECT_EQ(expr.axes[2].axis_name, "PAGES");
  EXPECT_EQ(expr.cube, "ABCD");
  ASSERT_EQ(expr.filters.size(), 1u);
  EXPECT_EQ(expr.filters[0].segments,
            (std::vector<std::string>{"D", "DD1"}));
  EXPECT_EQ(expr.axes[0].set.members[0].segments,
            (std::vector<std::string>{"A''", "A1", "CHILDREN"}));
}

TEST(ParserTest, NestOfSets) {
  auto expr = ParseMdx(
                  "NEST({V1, V2}, (R1.CHILDREN, R2, R3)) on COLUMNS "
                  "{Q1} on ROWS CONTEXT SalesCube")
                  .value();
  ASSERT_EQ(expr.axes.size(), 2u);
  const auto& nest = expr.axes[0].set;
  EXPECT_EQ(nest.kind, mdx::SetExpr::Kind::kNest);
  ASSERT_EQ(nest.nested.size(), 2u);
  EXPECT_EQ(nest.nested[0].members.size(), 2u);
  EXPECT_EQ(nest.nested[1].members.size(), 3u);
}

TEST(ParserTest, FilterWithMultipleMembers) {
  auto expr =
      ParseMdx("{A} on COLUMNS CONTEXT Cube FILTER (Sales, [1991], P.ALL)")
          .value();
  ASSERT_EQ(expr.filters.size(), 3u);
  EXPECT_EQ(expr.filters[1].segments[0], "1991");
  EXPECT_EQ(expr.filters[2].segments,
            (std::vector<std::string>{"P", "ALL"}));
}

TEST(ParserTest, CrossjoinAndWhereSynonyms) {
  auto expr = ParseMdx(
                  "CROSSJOIN({V1}, {R1}) on COLUMNS CONTEXT Cube "
                  "WHERE (S1, [1991])")
                  .value();
  EXPECT_EQ(expr.axes[0].set.kind, mdx::SetExpr::Kind::kNest);
  ASSERT_EQ(expr.filters.size(), 2u);
  EXPECT_EQ(expr.filters[1].segments[0], "1991");
}

TEST(ParserTest, WhereWithoutParentheses) {
  auto expr =
      ParseMdx("{A} on COLUMNS CONTEXT Cube WHERE D.DD1;").value();
  ASSERT_EQ(expr.filters.size(), 1u);
  EXPECT_EQ(expr.filters[0].segments,
            (std::vector<std::string>{"D", "DD1"}));
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseMdx("").ok());                        // no axes
  EXPECT_FALSE(ParseMdx("{A} on COLUMNS").ok());          // no CONTEXT
  EXPECT_FALSE(ParseMdx("{A} COLUMNS CONTEXT X").ok());   // missing ON
  EXPECT_FALSE(ParseMdx("{A,} on COLUMNS CONTEXT X").ok());
  EXPECT_FALSE(ParseMdx("{A} on COLUMNS CONTEXT X trailing").ok());
  EXPECT_FALSE(ParseMdx("{A on COLUMNS CONTEXT X").ok());  // unclosed brace
}

TEST(ParserTest, ToStringRoundTripParses) {
  auto expr = ParseMdx(
                  "NEST({A''.A1}, {B''.B2.CHILDREN}) on COLUMNS "
                  "{C''.C1} on ROWS CONTEXT ABCD FILTER (D.DD1)")
                  .value();
  auto again = ParseMdx(expr.ToString());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value().ToString(), expr.ToString());
}

// ----------------------------------------------------------------- binder

TEST(BinderTest, LevelQualifiedMember) {
  StarSchema s = Paper();
  auto r = ResolveMember({{"A''", "A2"}}, s).value();
  EXPECT_EQ(r.dim, 0u);
  EXPECT_EQ(r.level, 2);
  EXPECT_EQ(r.members, (std::vector<int32_t>{1}));
}

TEST(BinderTest, ChildrenDrillsDown) {
  StarSchema s = Paper();
  auto r = ResolveMember({{"A''", "A1", "CHILDREN"}}, s).value();
  EXPECT_EQ(r.level, 1);
  EXPECT_EQ(r.members, (std::vector<int32_t>{0, 1, 2}));
}

TEST(BinderTest, ChildrenThenNarrow) {
  StarSchema s = Paper();
  auto r = ResolveMember({{"A''", "A2", "CHILDREN", "AA5"}}, s).value();
  EXPECT_EQ(r.level, 1);
  EXPECT_EQ(r.members, (std::vector<int32_t>{4}));
}

TEST(BinderTest, NarrowToNonChildFails) {
  StarSchema s = Paper();
  EXPECT_FALSE(ResolveMember({{"A''", "A3", "CHILDREN", "AA2"}}, s).ok());
}

TEST(BinderTest, DoubleChildren) {
  StarSchema s = Paper();
  auto r = ResolveMember({{"A''", "A1", "CHILDREN", "CHILDREN"}}, s).value();
  EXPECT_EQ(r.level, 0);
  EXPECT_EQ(r.members.size(), 15u);
}

TEST(BinderTest, ChildrenBelowBaseFails) {
  StarSchema s = Paper();
  EXPECT_FALSE(ResolveMember({{"A", "AAA1", "CHILDREN"}}, s).ok());
}

TEST(BinderTest, DimensionQualifiedMember) {
  StarSchema s = Paper();
  auto r = ResolveMember({{"D", "DD1"}}, s).value();
  EXPECT_EQ(r.dim, 3u);
  EXPECT_EQ(r.level, 1);
  EXPECT_EQ(r.members, (std::vector<int32_t>{0}));
}

TEST(BinderTest, DimensionAll) {
  StarSchema s = Paper();
  auto r = ResolveMember({{"B", "ALL"}}, s).value();
  EXPECT_EQ(r.dim, 1u);
  EXPECT_TRUE(r.is_all);
}

TEST(BinderTest, BareMemberName) {
  StarSchema s = Paper();
  auto r = ResolveMember({{"BB4"}}, s).value();
  EXPECT_EQ(r.dim, 1u);
  EXPECT_EQ(r.level, 1);
  EXPECT_EQ(r.members, (std::vector<int32_t>{3}));
}

TEST(BinderTest, BareLevelMeansAllMembers) {
  StarSchema s = Paper();
  auto r = ResolveMember({{"A'"}}, s).value();
  EXPECT_EQ(r.level, 1);
  EXPECT_EQ(r.members.size(), 9u);
  EXPECT_TRUE(r.CoversLevel(s));
}

TEST(BinderTest, UnknownNameFails) {
  StarSchema s = Paper();
  EXPECT_FALSE(ResolveMember({{"Nonsense99"}}, s).ok());
}

// -------------------------------------------------------------- expansion

TEST(ExpandTest, SingleQueryPerSimpleExpression) {
  StarSchema s = Paper();
  auto queries = ParseAndExpandMdx(
                     "{A''.A1.CHILDREN} on COLUMNS {B''.B1} on ROWS "
                     "{C''.C1} on PAGES CONTEXT ABCD FILTER (D.DD1);",
                     s)
                     .value();
  ASSERT_EQ(queries.size(), 1u);
  const DimensionalQuery& q = queries[0];
  EXPECT_EQ(q.target().ToString(s), "A'B''C''");
  // Slicer D: predicate at level 1, no group-by contribution.
  const DimPredicate* d = q.predicate().ForDim(3);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->level, 1);
  EXPECT_EQ(d->members, (std::vector<int32_t>{0}));
  EXPECT_NEAR(q.Selectivity(s), (3.0 / 9) * (1.0 / 3) * (1.0 / 3) / 35,
              1e-12);
}

TEST(ExpandTest, MixedGranularitySetSplits) {
  StarSchema s = Paper();
  // Children of A1 (level A') and A2, A3 themselves (level A'').
  auto queries = ParseAndExpandMdx(
                     "{A''.A1.CHILDREN, A''.A2, A''.A3} on COLUMNS "
                     "CONTEXT ABCD;",
                     s)
                     .value();
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_EQ(queries[0].target().ToString(s), "A'");
  EXPECT_EQ(queries[1].target().ToString(s), "A''");
  EXPECT_EQ(queries[0].id(), 1);
  EXPECT_EQ(queries[1].id(), 2);
}

TEST(ExpandTest, CoveringSetHasNoPredicate) {
  StarSchema s = Paper();
  auto queries =
      ParseAndExpandMdx("{A''.A1, A''.A2, A''.A3} on COLUMNS CONTEXT ABCD;",
                        s)
          .value();
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_EQ(queries[0].predicate().ForDim(0), nullptr);
  EXPECT_EQ(queries[0].target().level(0), 2);
}

TEST(ExpandTest, MicrosoftExampleExpandsToSixQueries) {
  // The OLE DB for OLAP example from §2, rebuilt on a retail-style schema:
  // salesmen x (states of USA_North | USA_South | Japan) on COLUMNS and
  // quarters/months on ROWS -> 3 x 2 = 6 group-by queries.
  std::vector<DimensionConfig> dims;
  dims.push_back({.name = "Salesman", .top_cardinality = 4, .fanouts = {}});
  // Store: State(8) -> Region(4) -> Country(2).
  dims.push_back({.name = "Store", .top_cardinality = 2, .fanouts = {2, 2}});
  // Time: Month(24) -> Quarter(8) -> Year(2).
  dims.push_back({.name = "Time", .top_cardinality = 2, .fanouts = {3, 4}});
  StarSchema s(std::move(dims), "Sales");
  // Readable member names.
  const_cast<Hierarchy&>(s.dim(0)).SetMemberNames(
      0, {"Venkatrao", "Netz", "Smith", "Lee"});
  const_cast<Hierarchy&>(s.dim(1)).SetLevelNames(
      {"State", "Region", "Country"});
  const_cast<Hierarchy&>(s.dim(1)).SetMemberNames(2, {"USA", "Japan"});
  const_cast<Hierarchy&>(s.dim(1)).SetMemberNames(
      1, {"USA_North", "USA_South", "Japan_East", "Japan_West"});
  const_cast<Hierarchy&>(s.dim(2)).SetLevelNames(
      {"Month", "Quarter", "Year"});
  const_cast<Hierarchy&>(s.dim(2)).SetMemberNames(
      1, {"Qtr1", "Qtr2", "Qtr3", "Qtr4", "Qtr1_92", "Qtr2_92", "Qtr3_92",
          "Qtr4_92"});
  const_cast<Hierarchy&>(s.dim(2)).SetMemberNames(2, {"1991", "1992"});

  auto queries = ParseAndExpandMdx(
                     "NEST({Venkatrao, Netz}, "
                     "     (USA_North.CHILDREN, USA_South, Japan)) "
                     "on COLUMNS "
                     "{Qtr1.CHILDREN, Qtr2, Qtr3, Qtr4.CHILDREN} on ROWS "
                     "CONTEXT SalesCube FILTER (Sales, [1991])",
                     s)
                     .value();
  ASSERT_EQ(queries.size(), 6u);  // the paper's six group-bys

  // Targets: {Salesman} x {State, Region, Country} x {Quarter, Month}.
  std::set<std::string> targets;
  for (const auto& q : queries) {
    targets.insert(q.target().ToString(s));
    // The 1991 slicer restricts Time on every query.
    const DimPredicate* year = q.predicate().ForDim(2);
    ASSERT_NE(year, nullptr);
    EXPECT_GE(year->level, 0);
  }
  EXPECT_EQ(targets.size(), 6u);
  EXPECT_TRUE(targets.contains("SalesmanStore'Time'"));   // region x quarter
  EXPECT_TRUE(targets.contains("SalesmanStoreTime"));     // state x month
}

TEST(ExpandTest, SameDimOnTwoAxesFails) {
  StarSchema s = Paper();
  EXPECT_FALSE(
      ParseAndExpandMdx("{A''.A1} on COLUMNS {A''.A2} on ROWS CONTEXT ABCD;",
                        s)
          .ok());
}

TEST(ExpandTest, UnknownMemberFails) {
  StarSchema s = Paper();
  EXPECT_FALSE(
      ParseAndExpandMdx("{A''.A9} on COLUMNS CONTEXT ABCD;", s).ok());
}

TEST(ExpandTest, FirstIdRespected) {
  StarSchema s = Paper();
  auto queries =
      ParseAndExpandMdx("{A''.A1} on COLUMNS CONTEXT ABCD;", s, 41).value();
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_EQ(queries[0].id(), 41);
}

}  // namespace
}  // namespace starshare
