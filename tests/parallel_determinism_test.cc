// The parallel subsystem's core promise: every morsel-parallel pass is
// BIT-identical to its serial twin — same result doubles, same charged
// IoStats — for any thread count and any morsel size. Nothing here uses
// tolerances: the ordered match-buffer merge replays the serial
// floating-point fold exactly, so equality is byte equality.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "core/paper_workload.h"
#include "cube/view_builder.h"
#include "exec/shared_operators.h"
#include "exec/shared_operators.h"
#include "parallel/thread_pool.h"
#include "schema/data_generator.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using testing::MakeQuery;
using testing::SmallSchema;

bool BitIdentical(const QueryResult& a, const QueryResult& b) {
  if (a.num_rows() != b.num_rows()) return false;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    if (a.rows()[i].keys != b.rows()[i].keys) return false;
    if (std::memcmp(&a.rows()[i].value, &b.rows()[i].value,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

void ExpectOutcomesBitIdentical(const SharedOutcome& serial,
                                const SharedOutcome& parallel,
                                const char* label) {
  ASSERT_EQ(serial.results.size(), parallel.results.size()) << label;
  for (size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.statuses[i].code(), parallel.statuses[i].code())
        << label << " member " << i;
    EXPECT_TRUE(BitIdentical(serial.results[i], parallel.results[i]))
        << label << " member " << i << " diverged from serial";
  }
}

// A mixed bag of queries over SmallSchema: different targets, predicates
// at different levels, and every aggregate kind, so key packing, hierarchy
// map-up and the fold order are all exercised.
std::vector<DimensionalQuery> MixedQueries(const StarSchema& schema) {
  std::vector<DimensionalQuery> qs;
  qs.push_back(MakeQuery(schema, 1, "X'Y'Z", {{"X", 1, {0, 2}}}));
  qs.push_back(MakeQuery(schema, 2, "X''Y''Z'", {{"Y", 0, {1, 3, 5, 7}}}));
  qs.push_back(MakeQuery(schema, 3, "XY'Z'", {{"Z", 1, {0}}, {"X", 2, {1}}},
                         AggOp::kMin));
  qs.push_back(MakeQuery(schema, 4, "X'Z'", {}, AggOp::kMax));
  qs.push_back(MakeQuery(schema, 5, "Y''Z", {{"Z", 0, {2, 4, 6}}},
                         AggOp::kCount));
  qs.push_back(MakeQuery(schema, 6, "X''", {{"Y", 1, {2}}}, AggOp::kAvg));
  return qs;
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DataGenerator gen(schema_, {.num_rows = 50'000, .seed = 4242});
    table_ = gen.Generate("base");
    table_->set_id(1);
    view_ = std::make_unique<MaterializedView>(
        schema_, GroupBySpec::Base(schema_), table_.get());
    view_->ComputeStats(schema_);
    for (size_t d = 0; d < schema_.num_dims(); ++d) {
      DiskModel scratch;
      view_->BuildIndex(schema_, d, scratch);
    }
    queries_ = MixedQueries(schema_);
    for (const auto& q : queries_) query_ptrs_.push_back(&q);
  }

  StarSchema schema_ = SmallSchema();
  std::unique_ptr<Table> table_;
  std::unique_ptr<MaterializedView> view_;
  std::vector<DimensionalQuery> queries_;
  std::vector<const DimensionalQuery*> query_ptrs_;
};

TEST_F(ParallelDeterminismTest, SharedScanBitIdenticalAtEveryThreadCount) {
  DiskModel serial_disk;
  auto serial = TrySharedHybridStarJoin(schema_, query_ptrs_, {}, *view_,
                                        serial_disk);
  ASSERT_TRUE(serial.ok());

  for (const size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    ParallelPolicy policy{&pool, threads, 0, BatchConfig()};
    DiskModel disk;
    auto parallel =
        ParallelSharedScanStarJoin(schema_, query_ptrs_, *view_, disk, policy);
    ASSERT_TRUE(parallel.ok()) << threads << " threads";
    ExpectOutcomesBitIdentical(*serial, *parallel, "scan");
    EXPECT_EQ(disk.stats(), serial_disk.stats())
        << threads << "-thread scan charged different I/O than serial";
  }
}

TEST_F(ParallelDeterminismTest, SharedIndexBitIdenticalAtEveryThreadCount) {
  // The selective members (the kind the optimizer routes to the index
  // operator): predicates on indexed dimensions.
  std::vector<const DimensionalQuery*> members = {
      query_ptrs_[0], query_ptrs_[2], query_ptrs_[4]};

  DiskModel serial_disk;
  auto serial = TrySharedIndexStarJoin(schema_, members, *view_, serial_disk);
  ASSERT_TRUE(serial.ok());

  for (const size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    ParallelPolicy policy{&pool, threads, 0, BatchConfig()};
    DiskModel disk;
    auto parallel =
        ParallelSharedIndexStarJoin(schema_, members, *view_, disk, policy);
    ASSERT_TRUE(parallel.ok()) << threads << " threads";
    ExpectOutcomesBitIdentical(*serial, *parallel, "index");
    EXPECT_EQ(disk.stats(), serial_disk.stats())
        << threads << "-thread index join charged different I/O than serial";
  }
}

TEST_F(ParallelDeterminismTest, SharedHybridBitIdenticalAtEveryThreadCount) {
  std::vector<const DimensionalQuery*> hash = {query_ptrs_[1], query_ptrs_[3],
                                               query_ptrs_[5]};
  std::vector<const DimensionalQuery*> index = {query_ptrs_[0],
                                                query_ptrs_[4]};

  DiskModel serial_disk;
  auto serial =
      TrySharedHybridStarJoin(schema_, hash, index, *view_, serial_disk);
  ASSERT_TRUE(serial.ok());

  for (const size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    ParallelPolicy policy{&pool, threads, 0, BatchConfig()};
    DiskModel disk;
    auto parallel = ParallelSharedHybridStarJoin(schema_, hash, index, *view_,
                                                 disk, policy);
    ASSERT_TRUE(parallel.ok()) << threads << " threads";
    ExpectOutcomesBitIdentical(*serial, *parallel, "hybrid");
    EXPECT_EQ(disk.stats(), serial_disk.stats())
        << threads << "-thread hybrid charged different I/O than serial";
  }
}

TEST_F(ParallelDeterminismTest, TinyMorselsChangeNothing) {
  // One-page morsels maximize scheduling freedom (hundreds of morsels over
  // 8 workers): the ordered merge must still reproduce the serial bits.
  DiskModel serial_disk;
  auto serial = TrySharedHybridStarJoin(schema_, query_ptrs_, {}, *view_,
                                        serial_disk);
  ASSERT_TRUE(serial.ok());

  ThreadPool pool(8);
  ParallelPolicy policy{&pool, 8, table_->rows_per_page(), BatchConfig()};
  DiskModel disk;
  auto parallel =
      ParallelSharedScanStarJoin(schema_, query_ptrs_, *view_, disk, policy);
  ASSERT_TRUE(parallel.ok());
  ExpectOutcomesBitIdentical(*serial, *parallel, "tiny-morsel scan");
  EXPECT_EQ(disk.stats(), serial_disk.stats());
}

TEST_F(ParallelDeterminismTest, OversizedClassIsTypedErrorNotAbort) {
  std::vector<const DimensionalQuery*> too_many(kMaxClassQueries + 1,
                                                query_ptrs_[0]);
  ThreadPool pool(2);
  ParallelPolicy policy{&pool, 2, 0, BatchConfig()};
  DiskModel disk;
  auto scan =
      ParallelSharedScanStarJoin(schema_, too_many, *view_, disk, policy);
  EXPECT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kInvalidArgument);
  auto index =
      ParallelSharedIndexStarJoin(schema_, too_many, *view_, disk, policy);
  EXPECT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParallelEngineTest, ParallelismKnobReproducesSerialPaperWorkload) {
  Engine engine(StarSchema::PaperTestSchema());
  PaperWorkload::Setup(engine, /*rows=*/30'000, /*seed=*/7);
  std::vector<DimensionalQuery> queries =
      PaperWorkload::MakeQueries(engine, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const GlobalPlan plan = engine.Optimize(queries, OptimizerKind::kGlobalGreedy);

  engine.ConsumeIoStats();
  std::map<int, QueryResult> serial;
  for (auto& r : engine.Execute(plan)) {
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    serial.emplace(r.query->id(), std::move(r.result));
  }
  const IoStats serial_stats = engine.ConsumeIoStats();

  for (const size_t threads : {2u, 3u, 8u}) {
    engine.set_parallelism(threads);
    ASSERT_EQ(engine.parallelism(), threads);
    for (auto& r : engine.Execute(plan)) {
      ASSERT_TRUE(r.ok()) << r.status.ToString();
      EXPECT_TRUE(BitIdentical(r.result, serial.at(r.query->id())))
          << "Q" << r.query->id() << " at parallelism " << threads;
    }
    EXPECT_EQ(engine.ConsumeIoStats(), serial_stats)
        << "parallelism " << threads
        << " charged different I/O than serial — the 1998 cost model would "
           "report a different modeled time";
  }
  engine.set_parallelism(1);  // back to the paper configuration
}

TEST(ParallelEngineTest, BuildManyParallelMatchesSerialBuild) {
  StarSchema schema = SmallSchema();
  DataGenerator gen(schema, {.num_rows = 40'000, .seed = 99});
  auto base_table = gen.Generate("base");
  MaterializedView base(schema, GroupBySpec::Base(schema), base_table.get());
  ViewBuilder builder(schema);
  std::vector<GroupBySpec> targets;
  for (const char* text : {"X'Y'Z", "X''Z'", "Y'"}) {
    targets.push_back(GroupBySpec::Parse(text, schema).value());
  }

  DiskModel serial_disk;
  const auto serial = builder.BuildMany(base, targets, serial_disk);

  ThreadPool pool(4);
  ParallelPolicy policy{&pool, 4, 0, BatchConfig()};
  DiskModel parallel_disk;
  const auto parallel =
      builder.BuildManyParallel(base, targets, parallel_disk, policy);

  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(parallel[i]->num_rows(), serial[i]->num_rows()) << i;
    for (uint64_t r = 0; r < serial[i]->num_rows(); ++r) {
      for (size_t c = 0; c < serial[i]->num_key_columns(); ++c) {
        ASSERT_EQ(parallel[i]->key(c, r), serial[i]->key(c, r)) << i;
      }
      const double a = parallel[i]->measure(r), b = serial[i]->measure(r);
      ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
          << "view " << i << " row " << r << " measure differs";
    }
  }
  EXPECT_EQ(parallel_disk.stats(), serial_disk.stats());
}

}  // namespace
}  // namespace starshare
