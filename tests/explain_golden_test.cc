// Golden-output test for the EXPLAIN ANALYZE text renderer: a forced plan
// on a fixed 20,000-row paper workload, rendered with timings masked, must
// match the embedded transcript byte for byte. Everything left unmasked is
// deterministic — span structure, row counts, page counts, the cost model's
// estimates and the modeled "actual" milliseconds derived from the page
// counts. If a legitimate change (cost constants, span taxonomy, renderer
// format) shifts the output, rerun this test and paste the ACTUAL block it
// prints to stderr over kGolden.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/paper_workload.h"
#include "obs/trace.h"
#include "plan/lowering.h"

namespace starshare {
namespace {

constexpr char kGolden[] =
    R"(engine.execute act=94.000ms io=[seq=30 rand=6 idx=4 tuples=20006 probes=80000] wall=--ms cpu=--ms
  exec.class(ABCD) est=31.394ms act=30.000ms io=[seq=30 tuples=20000 probes=80000] wall=--ms cpu=--ms
    exec.aggregate(ABCD) rows=12 est=31.394ms act=30.000ms io=[seq=30 tuples=20000 probes=80000] wall=--ms cpu=--ms
      exec.route est=0.082ms act=30.000ms io=[seq=30 tuples=20000 probes=80000] wall=--ms cpu=--ms
        exec.star_join_filter est=1.312ms act=30.000ms io=[seq=30 tuples=20000 probes=80000] wall=--ms cpu=--ms
          exec.dim_filters act=0.000ms dims=4 wall=--ms cpu=--ms
          exec.shared_scan(ABCD) rows=20000 est=30.000ms act=30.000ms io=[seq=30 tuples=20000 probes=80000] members=2 wall=--ms cpu=--ms
    exec.member(hash-scan) q1 rows=3 est=0.041ms act=0.000ms wall=--ms cpu=--ms
    exec.member(hash-scan) q2 rows=9 est=0.042ms act=0.000ms wall=--ms cpu=--ms
  exec.class(A'B'C'D) est=70.558ms act=64.000ms io=[rand=6 idx=4 tuples=6] wall=--ms cpu=--ms
    exec.bitmap q5 rows=6 act=4.000ms io=[idx=4] wall=--ms cpu=--ms
    exec.aggregate(A'B'C'D) rows=1 est=70.558ms act=60.000ms io=[rand=6 tuples=6] wall=--ms cpu=--ms
      exec.bitmap_filter est=0.000ms act=60.000ms io=[rand=6 tuples=6] wall=--ms cpu=--ms
        exec.shared_probe(A'B'C'D) rows=6 est=66.508ms act=60.000ms io=[rand=6 tuples=6] members=1 wall=--ms cpu=--ms
    exec.member(index-probe) q5 rows=1 est=4.050ms act=0.000ms wall=--ms cpu=--ms
)";

// Engine::ExplainAnalyze renders the exact PhysicalPlan tree that executed
// (plan/physical_plan.h), annotated with estimates, modeled actuals, rows
// and I/O. Regenerate the same way: paste the ACTUAL-PHYSICAL block.
constexpr char kGoldenPhysical[] =
    R"(Aggregate(ABCD) est=31.394ms act=30.000ms rows=12 io=[seq=30 tuples=20000 probes=80000] mem=[--]
  Route est=0.082ms act=30.000ms io=[seq=30 tuples=20000 probes=80000]
    -> member q1 (hash-scan) est=0.041ms rows=3
    -> member q2 (hash-scan) est=0.042ms rows=9
    StarJoinFilter est=1.312ms act=30.000ms io=[seq=30 tuples=20000 probes=80000] mem=[--]
      Scan(ABCD) est=30.000ms act=30.000ms rows=20000 io=[seq=30 tuples=20000 probes=80000] members=2
Aggregate(A'B'C'D) est=70.558ms act=60.000ms rows=1 io=[rand=6 tuples=6] mem=[--]
  -> member q5 (index-probe) est=4.050ms rows=1
  BitmapFilter est=0.000ms act=60.000ms io=[rand=6 tuples=6] mem=[--]
    IndexUnionProbe(A'B'C'D) est=66.508ms act=60.000ms rows=6 io=[rand=6 tuples=6] mem=[--] members=1
)";

// Replaces the body of every `mem=[...]` field with `--`. Memory gauges
// are high-water marks over container footprints, so their exact bytes may
// legitimately move with allocator/growth tuning; the golden pins their
// presence and position, not their values. (`spill_runs`/`spill_bytes`
// counters appear only when a run actually spills — never here.)
std::string MaskMem(std::string text) {
  size_t pos = 0;
  while ((pos = text.find("mem=[", pos)) != std::string::npos) {
    const size_t open = pos + 5;
    const size_t close = text.find(']', open);
    if (close == std::string::npos) break;
    text.replace(open, close - open, "--");
    pos = open;
  }
  return text;
}

TEST(ExplainGoldenTest, MaskedRenderingIsByteStable) {
  // The golden's io=[...] page counts encode the compressed layout's
  // geometry, so pin the knob explicitly: the transcript must stay
  // byte-stable even under verify.sh's STARSHARE_UNCOMPRESSED pass.
  EngineConfig config;
  config.compressed_pages = true;
  Engine engine(StarSchema::PaperTestSchema(), config);
  PaperWorkload::Setup(engine, /*rows=*/20'000, /*seed=*/7);
  std::vector<DimensionalQuery> queries =
      PaperWorkload::MakeQueries(engine, {1, 2, 5});

  // Forced two-class plan (the golden must not drift with the optimizer):
  // Q1 and Q2 share a hash scan of the base table; the selective Q5 probes
  // the indexed view.
  MaterializedView* base = engine.views().FindByName("ABCD");
  MaterializedView* indexed = engine.views().FindByName("A'B'C'D");
  ASSERT_NE(base, nullptr);
  ASSERT_NE(indexed, nullptr);
  GlobalPlan plan;
  plan.classes.push_back(ClassPlan{});
  plan.classes[0].base = base;
  for (size_t i = 0; i < 2; ++i) {
    LocalPlan lp;
    lp.query = &queries[i];
    lp.method = JoinMethod::kHashScan;
    plan.classes[0].members.push_back(lp);
  }
  plan.classes.push_back(ClassPlan{});
  plan.classes[1].base = indexed;
  {
    LocalPlan lp;
    lp.query = &queries[2];
    lp.method = JoinMethod::kIndexProbe;
    plan.classes[1].members.push_back(lp);
  }
  engine.cost_model().AnnotatePlan(plan);

  auto traced = engine.ExecuteTraced(plan);
  for (const auto& r : traced.results) {
    ASSERT_TRUE(r.ok()) << r.status.ToString();
  }

  obs::TraceRenderOptions masked;
  masked.mask_timings = true;
  masked.show_batches = false;
  const std::string text = traced.trace.ToText(masked);
  if (text != kGolden) {
    std::fprintf(stderr, "ACTUAL:\n%s<end>\n", text.c_str());
  }
  EXPECT_EQ(text, kGolden);

  // The physical tree the run executed, rendered estimated-vs-actual. Its
  // shape must equal the planning-time lowering of the same GlobalPlan.
  const std::string phys = MaskMem(engine.ExplainAnalyze());
  if (phys != kGoldenPhysical) {
    std::fprintf(stderr, "ACTUAL-PHYSICAL:\n%s<end>\n", phys.c_str());
  }
  EXPECT_EQ(phys, kGoldenPhysical);
  PhysicalPlan lowered;
  LowerGlobalPlan(lowered, plan, engine.schema());
  EXPECT_EQ(lowered.ShapeHash(), engine.last_physical_plan().ShapeHash());
}

}  // namespace
}  // namespace starshare
