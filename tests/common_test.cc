#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"

namespace starshare {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad spec");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad spec");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad spec");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(3);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  Rng rng(42);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next(rng)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(ZipfTest, SkewFavorsSmallIds) {
  Rng rng(42);
  ZipfGenerator zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 5 * counts[50]);
}

TEST(ZipfTest, RangeRespected) {
  Rng rng(1);
  ZipfGenerator zipf(5, 2.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Next(rng), 5u);
}

// -------------------------------------------------------------- str_util

TEST(StrUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrUtilTest, StrJoin) {
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"a"}, ","), "a");
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrUtilTest, AsciiUpper) {
  EXPECT_EQ(AsciiUpper("NeSt"), "NEST");
  EXPECT_EQ(AsciiUpper("a'b'"), "A'B'");
}

TEST(StrUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("AA1", "AA"));
  EXPECT_FALSE(StartsWith("A", "AA"));
}

TEST(StrUtilTest, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(2000000), "2,000,000");
  EXPECT_EQ(WithCommas(1234567890), "1,234,567,890");
}

TEST(StrUtilTest, FormatMs) {
  EXPECT_EQ(FormatMs(13.8971), "13.897");
  EXPECT_EQ(FormatMs(2.5, 1), "2.5");
}

}  // namespace
}  // namespace starshare
