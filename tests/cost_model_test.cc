#include <gtest/gtest.h>

#include <cmath>

#include "cost/cost_model.h"
#include "cube/view_builder.h"
#include "schema/data_generator.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using testing::MakeQuery;
using testing::SmallSchema;

TEST(YaoTest, Boundaries) {
  EXPECT_DOUBLE_EQ(YaoDistinctPages(0, 100), 0);
  EXPECT_DOUBLE_EQ(YaoDistinctPages(10, 0), 0);
  EXPECT_DOUBLE_EQ(YaoDistinctPages(1, 5), 1);
}

TEST(YaoTest, MonotoneAndBounded) {
  double prev = 0;
  for (double rows : {1.0, 10.0, 100.0, 1000.0, 100000.0}) {
    const double pages = YaoDistinctPages(100, rows);
    EXPECT_GT(pages, prev);
    EXPECT_LE(pages, 100.0);
    prev = pages;
  }
  // Saturates to the full table.
  EXPECT_NEAR(YaoDistinctPages(100, 1e7), 100.0, 1e-6);
}

TEST(YaoTest, SparseProbesTouchAboutOnePageEach) {
  EXPECT_NEAR(YaoDistinctPages(100000, 10), 10.0, 0.1);
}

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DataGenerator gen(schema_, {.num_rows = 50000, .seed = 41});
    base_table_ = gen.Generate("base");
    base_ = std::make_unique<MaterializedView>(
        schema_, GroupBySpec::Base(schema_), base_table_.get());
    for (size_t d = 0; d < schema_.num_dims(); ++d) {
      base_->BuildIndex(schema_, d, disk_);
    }
    ViewBuilder builder(schema_);
    small_spec_ = GroupBySpec::Parse("X''Y''Z'", schema_).value();
    small_table_ = builder.Build(*base_, small_spec_, disk_);
    small_ = std::make_unique<MaterializedView>(schema_, small_spec_,
                                                small_table_.get());
    cost_ = std::make_unique<CostModel>(schema_, DiskTimings{}, CpuCosts{});
  }

  StarSchema schema_ = SmallSchema();
  DiskModel disk_;
  std::unique_ptr<Table> base_table_;
  std::unique_ptr<MaterializedView> base_;
  GroupBySpec small_spec_;
  std::unique_ptr<Table> small_table_;
  std::unique_ptr<MaterializedView> small_;
  std::unique_ptr<CostModel> cost_;
};

TEST_F(CostModelTest, MatchRowsTracksSelectivity) {
  DimensionalQuery half = MakeQuery(schema_, 1, "X''", {{"X", 2, {0}}});
  EXPECT_NEAR(cost_->MatchRows(half, *base_), 25000, 1);
  DimensionalQuery all = MakeQuery(schema_, 2, "X''", {});
  EXPECT_NEAR(cost_->MatchRows(all, *base_), 50000, 1);
}

TEST_F(CostModelTest, ScanIoUsesPageCount) {
  EXPECT_DOUBLE_EQ(cost_->ScanIoMs(*base_),
                   static_cast<double>(base_table_->num_pages()) * 1.0);
}

TEST_F(CostModelTest, IndexAvailability) {
  DimensionalQuery q = MakeQuery(schema_, 1, "X''", {{"X", 2, {0}}});
  EXPECT_TRUE(cost_->IndexAvailable(q, *base_));
  EXPECT_FALSE(cost_->IndexAvailable(q, *small_));  // no indexes built
  DimensionalQuery unrestricted = MakeQuery(schema_, 2, "X''", {});
  EXPECT_FALSE(cost_->IndexAvailable(unrestricted, *base_));
}

TEST_F(CostModelTest, IndexJoinInfiniteWhenUnavailable) {
  DimensionalQuery q = MakeQuery(schema_, 1, "X''", {});
  EXPECT_TRUE(std::isinf(cost_->IndexJoinCostMs(q, *base_)));
}

TEST_F(CostModelTest, SelectiveQueryPrefersIndex) {
  // One base member of each dimension: ~50000/1728 = 29 rows. On an
  // *unclustered* table those rows spread over ~29 random pages, so with a
  // 10:1 random:sequential ratio a scan still wins at this scale; with a
  // flash-like 2:1 ratio the index must win.
  CostModel cheap_rand(schema_, DiskTimings{.rand_page_ms = 2.0},
                       CpuCosts{});
  DimensionalQuery needle = MakeQuery(
      schema_, 1, "XYZ", {{"X", 0, {1}}, {"Y", 0, {2}}, {"Z", 0, {3}}});
  const auto [method, ms] = cheap_rand.BestSingleCost(needle, *base_);
  EXPECT_EQ(method, JoinMethod::kIndexProbe);
  EXPECT_LT(ms, cheap_rand.HashJoinCostMs(needle, *base_));
}

TEST_F(CostModelTest, ClusteredViewProbeFarCheaperThanYao) {
  // Build an indexed, clustered copy of the small view and compare the
  // probe estimate for a predicate on its leading column against the
  // uniform-spread estimate.
  small_->set_clustered(true);
  DimensionalQuery q = MakeQuery(schema_, 1, "X''", {{"X", 2, {0}}});
  const double clustered = cost_->ProbeDistinctPages(q, *small_);
  small_->set_clustered(false);
  const double yao = cost_->ProbeDistinctPages(q, *small_);
  EXPECT_LE(clustered, yao);
  small_->set_clustered(true);
  // Half the rows, contiguous: about half the pages (+1 boundary page).
  EXPECT_LE(clustered, small_table_->num_pages() / 2.0 + 1.0);
}

TEST_F(CostModelTest, NonSelectiveQueryPrefersHash) {
  DimensionalQuery broad = MakeQuery(schema_, 1, "X''", {{"X", 2, {0}}});
  const auto [method, ms] = cost_->BestSingleCost(broad, *base_);
  EXPECT_EQ(method, JoinMethod::kHashScan);
}

TEST_F(CostModelTest, SmallerViewCheaperForSameQuery) {
  DimensionalQuery q = MakeQuery(schema_, 1, "X''Y''", {});
  EXPECT_LT(cost_->HashJoinCostMs(q, *small_),
            cost_->HashJoinCostMs(q, *base_));
}

TEST_F(CostModelTest, SharedProbeNoLargerThanSumOfProbes) {
  DimensionalQuery a = MakeQuery(schema_, 1, "X'", {{"X", 1, {0}}});
  DimensionalQuery b = MakeQuery(schema_, 2, "X'", {{"X", 1, {1}}});
  const double together = cost_->SharedProbeIoMs({&a, &b}, *base_);
  const double separate =
      cost_->ProbeIoMs(a, *base_) + cost_->ProbeIoMs(b, *base_);
  EXPECT_LE(together, separate + 1e-9);
}

TEST_F(CostModelTest, SharedScanCpuGrowsWithUnionDims) {
  DimensionalQuery qx = MakeQuery(schema_, 1, "X''", {{"X", 2, {0}}});
  DimensionalQuery qy = MakeQuery(schema_, 2, "Y''", {{"Y", 2, {0}}});
  const double one = cost_->SharedScanCpuMs({&qx}, *base_);
  const double two = cost_->SharedScanCpuMs({&qx, &qy}, *base_);
  EXPECT_GT(two, one);
  // Same dimension twice shares the probe: no growth.
  DimensionalQuery qx2 = MakeQuery(schema_, 3, "X''", {{"X", 2, {1}}});
  EXPECT_DOUBLE_EQ(cost_->SharedScanCpuMs({&qx, &qx2}, *base_), one);
}

TEST_F(CostModelTest, ClassOfTwoCheaperThanTwoSingletons) {
  DimensionalQuery a = MakeQuery(schema_, 1, "X''", {{"X", 2, {0}}});
  DimensionalQuery b = MakeQuery(schema_, 2, "Y''", {{"Y", 2, {1}}});
  const double together = cost_->ClassCostMs(base_.get(), {&a, &b});
  const double separate = cost_->HashJoinCostMs(a, *base_) +
                          cost_->HashJoinCostMs(b, *base_);
  EXPECT_LT(together, separate);
  // One scan is shared, so the saving is about one full scan.
  EXPECT_NEAR(separate - together, cost_->ScanIoMs(*base_),
              cost_->ScanIoMs(*base_) * 0.2);
}

TEST_F(CostModelTest, CostOfAddNonNegativeAndMarginal) {
  DimensionalQuery a = MakeQuery(schema_, 1, "X''", {{"X", 2, {0}}});
  DimensionalQuery b = MakeQuery(schema_, 2, "Y''", {{"Y", 2, {1}}});
  ClassPlan cls = cost_->MakeClassPlan(base_.get(), {&a});
  const double marginal = cost_->CostOfAddMs(cls, b);
  EXPECT_GE(marginal, 0);
  // Adding to a scanning class costs far less than a standalone plan.
  EXPECT_LT(marginal, cost_->HashJoinCostMs(b, *base_));
}

TEST_F(CostModelTest, MakeClassPlanAllSelectivePicksIndexForm) {
  CostModel cheap_rand(schema_, DiskTimings{.rand_page_ms = 2.0},
                       CpuCosts{});
  DimensionalQuery a = MakeQuery(
      schema_, 1, "XYZ", {{"X", 0, {1}}, {"Y", 0, {2}}, {"Z", 0, {3}}});
  DimensionalQuery b = MakeQuery(
      schema_, 2, "XYZ", {{"X", 0, {5}}, {"Y", 0, {6}}, {"Z", 0, {7}}});
  ClassPlan cls = cheap_rand.MakeClassPlan(base_.get(), {&a, &b});
  EXPECT_FALSE(cls.HasHashMember());
  EXPECT_TRUE(cls.HasIndexMember());
  EXPECT_GT(cls.est_shared_io_ms, 0);  // the shared probe pass
}

TEST_F(CostModelTest, MakeClassPlanMixedKeepsScan) {
  DimensionalQuery broad = MakeQuery(schema_, 1, "X''", {{"X", 2, {0}}});
  DimensionalQuery needle = MakeQuery(
      schema_, 2, "XYZ", {{"X", 0, {1}}, {"Y", 0, {2}}, {"Z", 0, {3}}});
  ClassPlan cls = cost_->MakeClassPlan(base_.get(), {&broad, &needle});
  EXPECT_TRUE(cls.HasHashMember());
  // Shared I/O is exactly the scan.
  EXPECT_DOUBLE_EQ(cls.est_shared_io_ms, cost_->ScanIoMs(*base_));
}

TEST_F(CostModelTest, ClassCostMonotoneInMembership) {
  DimensionalQuery a = MakeQuery(schema_, 1, "X''", {{"X", 2, {0}}});
  DimensionalQuery b = MakeQuery(schema_, 2, "Y''", {{"Y", 2, {1}}});
  DimensionalQuery c = MakeQuery(schema_, 3, "Z'", {{"Z", 1, {0}}});
  const double one = cost_->ClassCostMs(base_.get(), {&a});
  const double two = cost_->ClassCostMs(base_.get(), {&a, &b});
  const double three = cost_->ClassCostMs(base_.get(), {&a, &b, &c});
  EXPECT_LE(one, two);
  EXPECT_LE(two, three);
}

TEST_F(CostModelTest, AnnotatePlanFillsEstimates) {
  DimensionalQuery a = MakeQuery(schema_, 1, "X''", {{"X", 2, {0}}});
  GlobalPlan plan;
  plan.classes.push_back(ClassPlan{});
  plan.classes[0].base = base_.get();
  LocalPlan lp;
  lp.query = &a;
  lp.method = JoinMethod::kHashScan;
  plan.classes[0].members.push_back(lp);
  cost_->AnnotatePlan(plan);
  EXPECT_GT(plan.EstMs(), 0);
  EXPECT_DOUBLE_EQ(plan.classes[0].est_shared_io_ms,
                   cost_->ScanIoMs(*base_));
}

TEST(PlanTest, ExplainAndAccessors) {
  StarSchema s = SmallSchema();
  DataGenerator gen(s, {.num_rows = 1000, .seed = 1});
  auto table = gen.Generate("base");
  MaterializedView view(s, GroupBySpec::Base(s), table.get());
  DimensionalQuery q = MakeQuery(s, 7, "X''", {{"X", 2, {0}}});

  GlobalPlan plan;
  plan.classes.push_back(ClassPlan{});
  plan.classes[0].base = &view;
  LocalPlan lp;
  lp.query = &q;
  lp.method = JoinMethod::kIndexProbe;
  plan.classes[0].members.push_back(lp);

  EXPECT_EQ(plan.NumQueries(), 1u);
  ASSERT_TRUE(plan.ClassOf(7).has_value());
  EXPECT_EQ(*plan.ClassOf(7), 0u);
  EXPECT_FALSE(plan.ClassOf(8).has_value());
  EXPECT_TRUE(plan.classes[0].HasIndexMember());
  EXPECT_FALSE(plan.classes[0].HasHashMember());
  const std::string text = plan.Explain(s);
  EXPECT_NE(text.find("Q7"), std::string::npos);
  EXPECT_NE(text.find("index-probe"), std::string::npos);
  EXPECT_STREQ(JoinMethodName(JoinMethod::kHashScan), "hash-scan");
}

}  // namespace
}  // namespace starshare
