#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "cube/materialized_view.h"
#include "cube/view_builder.h"
#include "cube/view_selection.h"
#include "cube/view_set.h"
#include "schema/data_generator.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using testing::BruteForce;
using testing::MakeQuery;
using testing::SmallSchema;

struct Fixture {
  StarSchema schema = SmallSchema();
  DiskModel disk;
  std::unique_ptr<Table> base_table;
  std::unique_ptr<MaterializedView> base;

  explicit Fixture(uint64_t rows = 5000) {
    DataGenerator gen(schema, {.num_rows = rows, .seed = 17});
    base_table = gen.Generate("base");
    base = std::make_unique<MaterializedView>(
        schema, GroupBySpec::Base(schema), base_table.get());
  }
};

TEST(MaterializedViewTest, KeyColMapping) {
  Fixture f;
  EXPECT_EQ(f.base->KeyColForDim(0), 0u);
  EXPECT_EQ(f.base->KeyColForDim(2), 2u);
  EXPECT_EQ(f.base->StoredLevel(1), 0);

  ViewBuilder builder(f.schema);
  auto spec = GroupBySpec::Parse("X'Z", f.schema).value();
  auto table = builder.Build(*f.base, spec, f.disk);
  MaterializedView view(f.schema, spec, table.get());
  EXPECT_EQ(view.KeyColForDim(0), 0u);
  EXPECT_EQ(view.KeyColForDim(1), SIZE_MAX);  // Y aggregated away
  EXPECT_EQ(view.KeyColForDim(2), 1u);
  EXPECT_EQ(view.StoredLevel(0), 1);
}

TEST(ViewBuilderTest, AggregatesMatchBruteForce) {
  Fixture f;
  ViewBuilder builder(f.schema);
  for (const char* spec_text : {"X'Y'Z", "X''", "XZ'", "X''Y''Z'"}) {
    auto spec = GroupBySpec::Parse(spec_text, f.schema).value();
    auto table = builder.Build(*f.base, spec, f.disk, "", /*clustered=*/true);
    // The clustered view's rows must equal the brute-force group-by of the
    // base data, in key order.
    DimensionalQuery q(1, spec_text, spec, QueryPredicate{});
    QueryResult expected = BruteForce(f.schema, *f.base_table, q);
    ASSERT_EQ(table->num_rows(), expected.num_rows()) << spec_text;
    for (size_t r = 0; r < expected.num_rows(); ++r) {
      const auto& row = expected.rows()[r];
      for (size_t c = 0; c < row.keys.size(); ++c) {
        ASSERT_EQ(table->key(c, r), row.keys[c]) << spec_text;
      }
      ASSERT_NEAR(table->measure(r), row.value, 1e-6) << spec_text;
    }
  }
}

TEST(ViewBuilderTest, FromIntermediateViewMatchesFromBase) {
  Fixture f;
  ViewBuilder builder(f.schema);
  auto mid_spec = GroupBySpec::Parse("X'Y'Z", f.schema).value();
  auto mid_table = builder.Build(*f.base, mid_spec, f.disk);
  MaterializedView mid(f.schema, mid_spec, mid_table.get());

  auto top_spec = GroupBySpec::Parse("X''Y''", f.schema).value();
  auto from_mid = builder.Build(mid, top_spec, f.disk, "from_mid");
  auto from_base = builder.Build(*f.base, top_spec, f.disk, "from_base");

  ASSERT_EQ(from_mid->num_rows(), from_base->num_rows());
  for (uint64_t r = 0; r < from_mid->num_rows(); ++r) {
    for (size_t c = 0; c < from_mid->num_key_columns(); ++c) {
      ASSERT_EQ(from_mid->key(c, r), from_base->key(c, r));
    }
    ASSERT_NEAR(from_mid->measure(r), from_base->measure(r), 1e-6);
  }
}

TEST(ViewBuilderTest, ClusteredOutputSortedAndCharged) {
  Fixture f;
  ViewBuilder builder(f.schema);
  f.disk.ResetStats();
  auto spec = GroupBySpec::Parse("X'Y'", f.schema).value();
  auto table = builder.Build(*f.base, spec, f.disk, "", /*clustered=*/true);
  EXPECT_EQ(f.disk.stats().seq_pages_read, f.base_table->num_pages());
  EXPECT_EQ(f.disk.stats().pages_written, table->num_pages());
  for (uint64_t r = 1; r < table->num_rows(); ++r) {
    const auto prev = std::make_pair(table->key(0, r - 1), table->key(1, r - 1));
    const auto cur = std::make_pair(table->key(0, r), table->key(1, r));
    EXPECT_LT(prev, cur);
  }
}

TEST(ViewBuilderTest, DefaultOrderIsDeterministicPermutationOfClustered) {
  Fixture f;
  ViewBuilder builder(f.schema);
  auto spec = GroupBySpec::Parse("X'Y'", f.schema).value();
  auto heap1 = builder.Build(*f.base, spec, f.disk, "h1");
  auto heap2 = builder.Build(*f.base, spec, f.disk, "h2");
  auto sorted = builder.Build(*f.base, spec, f.disk, "s", /*clustered=*/true);
  ASSERT_EQ(heap1->num_rows(), sorted->num_rows());
  // Deterministic across builds...
  bool any_disorder = false;
  for (uint64_t r = 0; r < heap1->num_rows(); ++r) {
    ASSERT_EQ(heap1->key(0, r), heap2->key(0, r));
    ASSERT_EQ(heap1->key(1, r), heap2->key(1, r));
    if (r > 0 && std::make_pair(heap1->key(0, r - 1), heap1->key(1, r - 1)) >
                     std::make_pair(heap1->key(0, r), heap1->key(1, r))) {
      any_disorder = true;
    }
  }
  // ...but not key-sorted (it is a heap-order permutation).
  EXPECT_TRUE(any_disorder);
  // Same multiset of cells as the clustered build.
  std::multiset<std::tuple<int32_t, int32_t, double>> a, b;
  for (uint64_t r = 0; r < heap1->num_rows(); ++r) {
    a.insert({heap1->key(0, r), heap1->key(1, r), heap1->measure(r)});
    b.insert({sorted->key(0, r), sorted->key(1, r), sorted->measure(r)});
  }
  EXPECT_EQ(a, b);
}

TEST(ViewBuilderTest, DefaultNameIsSpecString) {
  Fixture f;
  ViewBuilder builder(f.schema);
  auto spec = GroupBySpec::Parse("X''Z'", f.schema).value();
  auto table = builder.Build(*f.base, spec, f.disk);
  EXPECT_EQ(table->name(), "X''Z'");
}

TEST(MaterializedViewTest, BuildIndexAndLookup) {
  Fixture f;
  f.base->BuildIndex(f.schema, 0, f.disk);
  EXPECT_TRUE(f.base->HasIndexOn(0));
  EXPECT_FALSE(f.base->HasIndexOn(1));
  EXPECT_EQ(f.base->IndexedDims(), (std::vector<size_t>{0}));
  const BitmapJoinIndex* index = f.base->IndexOn(0);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->num_values(), f.schema.dim(0).cardinality(0));
  // Rebuild is a no-op.
  f.base->BuildIndex(f.schema, 0, f.disk);
  EXPECT_EQ(f.base->IndexOn(0), index);
}

// ---------------------------------------------------------------- ViewSet

TEST(ViewSetTest, FindAndCandidates) {
  Fixture f;
  ViewBuilder builder(f.schema);
  ViewSet views;
  views.Add(std::make_unique<MaterializedView>(
      f.schema, GroupBySpec::Base(f.schema), f.base_table.get()));

  auto mid_spec = GroupBySpec::Parse("X'Y'Z", f.schema).value();
  auto mid_table = builder.Build(*f.base, mid_spec, f.disk);
  Table* mid_raw = mid_table.get();
  views.Add(std::make_unique<MaterializedView>(f.schema, mid_spec, mid_raw));

  EXPECT_NE(views.Find(mid_spec), nullptr);
  EXPECT_EQ(views.Find(GroupBySpec::Parse("X''", f.schema).value()), nullptr);
  EXPECT_NE(views.FindByName("X'Y'Z"), nullptr);

  // Candidates for X''Y'' include both, smallest first.
  auto cands =
      views.CandidatesFor(GroupBySpec::Parse("X''Y''", f.schema).value());
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_LE(cands[0]->table().num_rows(), cands[1]->table().num_rows());

  // Candidates for the base itself: only the base.
  EXPECT_EQ(views.CandidatesFor(GroupBySpec::Base(f.schema)).size(), 1u);
  // Keep mid_table alive for the assertions above.
  (void)mid_table;
}

// --------------------------------------------------------- view selection

TEST(ViewSelectionTest, EstimateCapsAtBaseRows) {
  StarSchema s = SmallSchema();
  auto big = GroupBySpec::Base(s);
  EXPECT_EQ(EstimateViewRows(s, big, 100), 100u);
  auto tiny = GroupBySpec::Parse("X''", s).value();
  EXPECT_EQ(EstimateViewRows(s, tiny, 100000), 2u);
}

TEST(ViewSelectionTest, LatticeEnumerationComplete) {
  StarSchema s = SmallSchema();
  // (3+1) * (3+1) * (2+1) = 48 points, minus the base.
  EXPECT_EQ(EnumerateLattice(s).size(), 47u);
}

TEST(ViewSelectionTest, GreedyPicksHighBenefitViewsFirst) {
  StarSchema s = SmallSchema();
  const auto picks = GreedySelectViews(s, 1'000'000, 3);
  ASSERT_EQ(picks.size(), 3u);
  // No duplicates; none is the base.
  for (size_t i = 0; i < picks.size(); ++i) {
    EXPECT_NE(picks[i], GroupBySpec::Base(s));
    for (size_t j = i + 1; j < picks.size(); ++j) {
      EXPECT_NE(picks[i], picks[j]);
    }
  }
  // The first pick must answer many points cheaply: its estimated size must
  // be well below the base.
  EXPECT_LT(EstimateViewRows(s, picks[0], 1'000'000), 1'000'000u);
}

TEST(ViewSelectionTest, KLargerThanLatticeStops) {
  StarSchema s = SmallSchema();
  const auto picks = GreedySelectViews(s, 1000, 1000);
  EXPECT_LE(picks.size(), 47u);
}

}  // namespace
}  // namespace starshare
