// Memory-budgeted aggregation (DESIGN.md "Memory budget and spilling"):
// under any budget, thread count and batch size the spilling path must
// produce BIT-identical results to the unbudgeted in-memory path and charge
// exactly the same modeled IoStats (spill I/O is real scratch-file I/O and
// never enters the disk model). Scratch files are removed on success and on
// every failure path, and an injected spill/grant fault costs exactly the
// affected member — its shared-class siblings and the engine's fact-table
// fallback keep working.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <vector>

#include "common/fault_injector.h"
#include "core/paper_workload.h"
#include "cube/view_builder.h"
#include "exec/memory_budget.h"
#include "exec/operators/class_pipeline.h"
#include "exec/spill.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "schema/data_generator.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using testing::MakeQuery;
using testing::SmallSchema;

bool BitIdentical(const QueryResult& a, const QueryResult& b) {
  if (a.num_rows() != b.num_rows()) return false;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    if (a.rows()[i].keys != b.rows()[i].keys) return false;
    if (std::memcmp(&a.rows()[i].value, &b.rows()[i].value,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

size_t NumScratchFiles(const std::filesystem::path& dir) {
  size_t n = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(dir)) {
    ++n;
  }
  return n;
}

uint64_t SpillRuns() { return obs::Metrics().counter("exec.spill.runs").value(); }

class SpillAggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DataGenerator gen(schema_, {.num_rows = 50'000, .seed = 271});
    table_ = gen.Generate("base");
    table_->set_id(1);
    view_ = std::make_unique<MaterializedView>(
        schema_, GroupBySpec::Base(schema_), table_.get());
    view_->ComputeStats(schema_);
    for (size_t d = 0; d < schema_.num_dims(); ++d) {
      DiskModel scratch;
      view_->BuildIndex(schema_, d, scratch);
    }
    queries_.push_back(MakeQuery(schema_, 1, "X'Y'Z", {{"X", 1, {0, 2}}}));
    queries_.push_back(
        MakeQuery(schema_, 2, "X''Y''Z'", {{"Y", 0, {1, 3, 5, 7}}}));
    queries_.push_back(MakeQuery(schema_, 3, "XY'Z'", {{"Z", 1, {0}}},
                                 AggOp::kMin));
    queries_.push_back(MakeQuery(schema_, 4, "X'Z'", {}));
    for (const auto& q : queries_) query_ptrs_.push_back(&q);
    scratch_ = std::filesystem::temp_directory_path() /
               ("starshare_spill_test_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()));
    std::filesystem::remove_all(scratch_);
    std::filesystem::create_directories(scratch_);
  }

  void TearDown() override {
    FaultInjector::Instance().Disable();
    std::filesystem::remove_all(scratch_);
  }

  // One shared class over `hash`/`index` members with an optional budget.
  SharedOutcome Run(const std::vector<const DimensionalQuery*>& hash,
                    const std::vector<const DimensionalQuery*>& index,
                    DiskModel& disk, const MemoryBudget* budget,
                    ThreadPool* pool = nullptr, size_t threads = 1,
                    size_t batch_rows = kDefaultBatchRows) {
    SharedClassRequest req;
    req.schema = &schema_;
    req.hash_queries = hash;
    req.index_queries = index;
    req.view = view_.get();
    req.disk = &disk;
    req.policy.batch = BatchConfig{true, batch_rows};
    if (pool != nullptr) {
      req.policy.pool = pool;
      req.policy.parallelism = threads;
    }
    req.probe = hash.empty();
    req.budget = budget;
    req.spill.scratch_dir = scratch_.string();
    auto out = ExecuteSharedClass(req);
    SS_CHECK_MSG(out.ok(), "%s", out.status().ToString().c_str());
    return std::move(out.value());
  }

  StarSchema schema_ = SmallSchema();
  std::unique_ptr<Table> table_;
  std::unique_ptr<MaterializedView> view_;
  std::vector<DimensionalQuery> queries_;
  std::vector<const DimensionalQuery*> query_ptrs_;
  std::filesystem::path scratch_;
};

TEST_F(SpillAggregateTest, BitIdenticalAtAnyBudgetThreadCountAndBatchSize) {
  DiskModel oracle_disk;
  const SharedOutcome oracle =
      Run(query_ptrs_, {}, oracle_disk, /*budget=*/nullptr);
  for (const auto& s : oracle.statuses) ASSERT_TRUE(s.ok());

  // 1 byte: every batch spills. 4 KiB: a few runs per member. 1 MiB split
  // four ways: some members spill, some don't.
  for (const uint64_t budget_bytes : {uint64_t{1}, uint64_t{4096},
                                      uint64_t{1} << 20}) {
    MemoryBudget budget(budget_bytes);
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      for (const size_t batch_rows : {size_t{1}, size_t{1024}}) {
        ThreadPool pool(threads);
        DiskModel disk;
        const uint64_t runs_before = SpillRuns();
        const SharedOutcome budgeted =
            Run(query_ptrs_, {}, disk, &budget, &pool, threads, batch_rows);
        const std::string label =
            "budget=" + std::to_string(budget_bytes) +
            " threads=" + std::to_string(threads) +
            " batch=" + std::to_string(batch_rows);
        EXPECT_GT(SpillRuns(), runs_before)
            << label << " never spilled — the budget did nothing";
        ASSERT_EQ(budgeted.results.size(), oracle.results.size());
        for (size_t i = 0; i < oracle.results.size(); ++i) {
          ASSERT_TRUE(budgeted.statuses[i].ok()) << label << " member " << i;
          EXPECT_TRUE(BitIdentical(budgeted.results[i], oracle.results[i]))
              << label << " member " << i << " diverged from in-memory";
        }
        EXPECT_EQ(disk.stats(), oracle_disk.stats())
            << label << " changed modeled I/O — spill I/O leaked into the "
            << "disk model";
        EXPECT_EQ(NumScratchFiles(scratch_), 0u)
            << label << " left scratch files behind";
      }
    }
  }
}

TEST_F(SpillAggregateTest, IndexProbeMembersSpillBitIdentically) {
  std::vector<const DimensionalQuery*> members = {query_ptrs_[0],
                                                  query_ptrs_[2]};
  DiskModel oracle_disk;
  const SharedOutcome oracle = Run({}, members, oracle_disk, nullptr);
  MemoryBudget budget(1);
  DiskModel disk;
  const SharedOutcome budgeted = Run({}, members, disk, &budget);
  for (size_t i = 0; i < members.size(); ++i) {
    ASSERT_TRUE(budgeted.statuses[i].ok());
    EXPECT_TRUE(BitIdentical(budgeted.results[i], oracle.results[i]));
  }
  EXPECT_EQ(disk.stats(), oracle_disk.stats());
}

TEST_F(SpillAggregateTest, EmptyInputSpillsNothingAndSucceeds) {
  DataGenerator gen(schema_, {.num_rows = 0, .seed = 1});
  auto empty_table = gen.Generate("empty");
  empty_table->set_id(2);
  MaterializedView empty_view(schema_, GroupBySpec::Base(schema_),
                              empty_table.get());
  empty_view.ComputeStats(schema_);

  MemoryBudget budget(1);
  SharedClassRequest req;
  req.schema = &schema_;
  req.hash_queries = {query_ptrs_[3]};
  req.view = &empty_view;
  DiskModel disk;
  req.disk = &disk;
  req.budget = &budget;
  req.spill.scratch_dir = scratch_.string();
  const uint64_t runs_before = SpillRuns();
  auto out = ExecuteSharedClass(req);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->statuses[0].ok());
  EXPECT_EQ(out->results[0].num_rows(), 0u);
  EXPECT_EQ(SpillRuns(), runs_before);
  EXPECT_EQ(NumScratchFiles(scratch_), 0u);
}

TEST_F(SpillAggregateTest, SingleGroupSurvivesEveryBatchSpilling) {
  // Everything folds into one output cell while every staged batch spills.
  const DimensionalQuery q =
      MakeQuery(schema_, 9, "X''", {{"X", 2, {0}}});
  DiskModel oracle_disk;
  const SharedOutcome oracle = Run({&q}, {}, oracle_disk, nullptr);
  ASSERT_TRUE(oracle.statuses[0].ok());
  ASSERT_EQ(oracle.results[0].num_rows(), 1u);

  MemoryBudget budget(1);
  DiskModel disk;
  const SharedOutcome budgeted = Run({&q}, {}, disk, &budget);
  ASSERT_TRUE(budgeted.statuses[0].ok());
  EXPECT_TRUE(BitIdentical(budgeted.results[0], oracle.results[0]));
  EXPECT_EQ(disk.stats(), oracle_disk.stats());
}

TEST_F(SpillAggregateTest, ExactlyAtBudgetNeverSpills) {
  // Q4 has no predicate: every row matches, so a single-member class stages
  // exactly 16 bytes per row. A budget of exactly that many bytes must not
  // spill (the cap is inclusive).
  const uint64_t staged_bytes = table_->num_rows() * 16;
  MemoryBudget budget(staged_bytes);
  DiskModel oracle_disk;
  const SharedOutcome oracle = Run({query_ptrs_[3]}, {}, oracle_disk, nullptr);
  const uint64_t runs_before = SpillRuns();
  DiskModel disk;
  const SharedOutcome budgeted = Run({query_ptrs_[3]}, {}, disk, &budget);
  ASSERT_TRUE(budgeted.statuses[0].ok());
  EXPECT_EQ(SpillRuns(), runs_before) << "exactly-at-budget must stay in memory";
  EXPECT_TRUE(BitIdentical(budgeted.results[0], oracle.results[0]));

  // One byte less and it has to spill.
  MemoryBudget tight(staged_bytes - 1);
  DiskModel tight_disk;
  const SharedOutcome spilled = Run({query_ptrs_[3]}, {}, tight_disk, &tight);
  ASSERT_TRUE(spilled.statuses[0].ok());
  EXPECT_GT(SpillRuns(), runs_before);
  EXPECT_TRUE(BitIdentical(spilled.results[0], oracle.results[0]));
}

TEST_F(SpillAggregateTest, SpillWriteFaultCostsExactlyThatMember) {
  MemoryBudget budget(4096);
  DiskModel clean_disk;
  const SharedOutcome clean = Run(query_ptrs_, {}, clean_disk, &budget);

  FaultInjector::Instance().Enable(31);
  FaultSpec spec;
  spec.key = 3;  // only Q3's spill writes fail
  FaultInjector::Instance().Arm("spill.write", spec);
  DiskModel disk;
  const SharedOutcome faulted = Run(query_ptrs_, {}, disk, &budget);
  FaultInjector::Instance().Disable();

  for (size_t i = 0; i < query_ptrs_.size(); ++i) {
    if (query_ptrs_[i]->id() == 3) {
      EXPECT_EQ(faulted.statuses[i].code(), StatusCode::kResourceExhausted);
      EXPECT_EQ(faulted.results[i].num_rows(), 0u);
    } else {
      ASSERT_TRUE(faulted.statuses[i].ok()) << "member " << i;
      EXPECT_TRUE(BitIdentical(faulted.results[i], clean.results[i]))
          << "sibling " << i << " was disturbed by Q3's spill fault";
    }
  }
  EXPECT_EQ(NumScratchFiles(scratch_), 0u)
      << "failed member leaked its scratch file";
}

TEST_F(SpillAggregateTest, SpillReadFaultCostsExactlyThatMember) {
  MemoryBudget budget(4096);
  DiskModel clean_disk;
  const SharedOutcome clean = Run(query_ptrs_, {}, clean_disk, &budget);

  for (const FaultKind kind :
       {FaultKind::kError, FaultKind::kShortRead, FaultKind::kBitFlip}) {
    FaultInjector::Instance().Enable(32);
    FaultSpec spec;
    spec.kind = kind;
    spec.key = 2;
    FaultInjector::Instance().Arm("spill.read", spec);
    DiskModel disk;
    const SharedOutcome faulted = Run(query_ptrs_, {}, disk, &budget);
    FaultInjector::Instance().Disable();

    for (size_t i = 0; i < query_ptrs_.size(); ++i) {
      if (query_ptrs_[i]->id() == 2) {
        EXPECT_EQ(faulted.statuses[i].code(), StatusCode::kResourceExhausted)
            << "fault kind " << static_cast<int>(kind);
      } else {
        ASSERT_TRUE(faulted.statuses[i].ok()) << "member " << i;
        EXPECT_TRUE(BitIdentical(faulted.results[i], clean.results[i]));
      }
    }
    EXPECT_EQ(NumScratchFiles(scratch_), 0u);
  }
}

TEST_F(SpillAggregateTest, GrantDenialCostsExactlyThatMember) {
  MemoryBudget budget(1 << 20);
  DiskModel clean_disk;
  const SharedOutcome clean = Run(query_ptrs_, {}, clean_disk, &budget);

  FaultInjector::Instance().Enable(33);
  FaultSpec spec;
  spec.key = 1;
  FaultInjector::Instance().Arm("budget.grant", spec);
  DiskModel disk;
  const SharedOutcome faulted = Run(query_ptrs_, {}, disk, &budget);
  FaultInjector::Instance().Disable();

  for (size_t i = 0; i < query_ptrs_.size(); ++i) {
    if (query_ptrs_[i]->id() == 1) {
      EXPECT_EQ(faulted.statuses[i].code(), StatusCode::kResourceExhausted);
    } else {
      ASSERT_TRUE(faulted.statuses[i].ok()) << "member " << i;
      EXPECT_TRUE(BitIdentical(faulted.results[i], clean.results[i]));
    }
  }
}

TEST_F(SpillAggregateTest, ViewBuilderSpillsBitIdentically) {
  std::vector<GroupBySpec> targets;
  for (const char* text : {"X'Y'Z", "X''Z'", "Y'"}) {
    targets.push_back(GroupBySpec::Parse(text, schema_).value());
  }
  ViewBuilder oracle_builder(schema_);
  DiskModel oracle_disk;
  const auto oracle = oracle_builder.BuildMany(*view_, targets, oracle_disk);

  MemoryBudget budget(4096);
  ViewBuilder builder(schema_);
  builder.set_memory_budget(&budget, SpillConfig{scratch_.string()});
  const uint64_t runs_before = SpillRuns();
  DiskModel disk;
  const auto built = builder.BuildMany(*view_, targets, disk);
  EXPECT_GT(SpillRuns(), runs_before) << "budgeted build never spilled";
  ASSERT_EQ(built.size(), oracle.size());
  for (size_t i = 0; i < oracle.size(); ++i) {
    ASSERT_EQ(built[i]->num_rows(), oracle[i]->num_rows()) << "target " << i;
    for (uint64_t r = 0; r < oracle[i]->num_rows(); ++r) {
      for (size_t c = 0; c < oracle[i]->num_key_columns(); ++c) {
        ASSERT_EQ(built[i]->key(c, r), oracle[i]->key(c, r));
      }
      for (size_t m = 0; m < oracle[i]->num_measures(); ++m) {
        const double x = built[i]->measure(r, m);
        const double y = oracle[i]->measure(r, m);
        ASSERT_EQ(std::memcmp(&x, &y, sizeof(double)), 0)
            << "target " << i << " row " << r << " measure " << m;
      }
    }
  }
  EXPECT_EQ(disk.stats(), oracle_disk.stats());
  EXPECT_EQ(NumScratchFiles(scratch_), 0u);

  // Same budget, morsel-parallel build: still bit-identical.
  ThreadPool pool(4);
  ParallelPolicy policy{&pool, 4, 0, BatchConfig()};
  DiskModel par_disk;
  const auto par = builder.BuildManyParallel(*view_, targets, par_disk, policy);
  ASSERT_EQ(par.size(), oracle.size());
  for (size_t i = 0; i < oracle.size(); ++i) {
    ASSERT_EQ(par[i]->num_rows(), oracle[i]->num_rows());
    for (uint64_t r = 0; r < oracle[i]->num_rows(); ++r) {
      for (size_t m = 0; m < oracle[i]->num_measures(); ++m) {
        const double x = par[i]->measure(r, m);
        const double y = oracle[i]->measure(r, m);
        ASSERT_EQ(std::memcmp(&x, &y, sizeof(double)), 0);
      }
    }
  }
  EXPECT_EQ(par_disk.stats(), oracle_disk.stats());
  EXPECT_EQ(NumScratchFiles(scratch_), 0u);
}

TEST(SpillEngineTest, BudgetedEngineMatchesUnboundedAndDegradesGracefully) {
  const auto scratch = std::filesystem::temp_directory_path() /
                       "starshare_spill_engine_test";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);

  EngineConfig config;
  config.scratch_dir = scratch.string();
  Engine engine(StarSchema::PaperTestSchema(), config);
  PaperWorkload::Setup(engine, /*rows=*/30'000, /*seed=*/7);
  std::vector<DimensionalQuery> queries =
      PaperWorkload::MakeQueries(engine, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const GlobalPlan plan =
      engine.Optimize(queries, OptimizerKind::kGlobalGreedy);

  std::map<int, QueryResult> oracle;
  engine.ConsumeIoStats();
  for (auto& r : engine.Execute(plan)) {
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    oracle.emplace(r.query->id(), std::move(r.result));
  }
  const IoStats oracle_stats = engine.ConsumeIoStats();

  // A 64 KiB budget forces widespread spilling; results and modeled I/O
  // must not move.
  engine.set_memory_budget_bytes(64 * 1024);
  for (auto& r : engine.Execute(plan)) {
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_TRUE(BitIdentical(r.result, oracle.at(r.query->id())))
        << "Q" << r.query->id() << " diverged under the budget";
  }
  EXPECT_EQ(engine.ConsumeIoStats(), oracle_stats)
      << "budgeted execution changed modeled I/O";
  EXPECT_TRUE(engine.last_execution_report().clean());
  EXPECT_EQ(NumScratchFiles(scratch), 0u);

  // A spill-write fault on one query degrades it through the fact-table
  // fallback (which, past the one armed fire, spills cleanly itself). A
  // 1-byte budget guarantees every member spills, so the armed fault
  // definitely engages.
  engine.set_memory_budget_bytes(1);
  FaultInjector::Instance().Enable(41);
  FaultSpec spec;
  spec.key = 5;
  spec.max_fires = 1;
  FaultInjector::Instance().Arm("spill.write", spec);
  const auto results = engine.Execute(plan);
  FaultInjector::Instance().Disable();
  // The fallback answers from the fact table, so its fold order (and hence
  // low float bits) legitimately differs from the planned path: compare the
  // degraded query against a fallback oracle instead.
  Executor fallback_executor(engine.schema(), engine.disk());
  bool saw_degraded = false;
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok()) << "Q" << r.query->id() << ": "
                        << r.status.ToString();
    if (r.degraded) {
      saw_degraded = true;
      EXPECT_EQ(r.query->id(), 5);
      auto want = fallback_executor.ExecuteSingle(
          *r.query, *engine.base_view(), JoinMethod::kHashScan);
      ASSERT_TRUE(want.ok());
      EXPECT_TRUE(BitIdentical(r.result, want.value()))
          << "Q" << r.query->id() << " degraded result is wrong";
      continue;
    }
    EXPECT_TRUE(BitIdentical(r.result, oracle.at(r.query->id())))
        << "Q" << r.query->id();
  }
  EXPECT_TRUE(saw_degraded) << "the armed spill fault never engaged Q5";
  ASSERT_EQ(engine.last_execution_report().events.size(), 1u);
  EXPECT_EQ(engine.last_execution_report().events[0].error.code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(engine.last_execution_report().events[0].recovered);
  EXPECT_EQ(NumScratchFiles(scratch), 0u)
      << "a degraded query leaked scratch files";

  std::filesystem::remove_all(scratch);
}

}  // namespace
}  // namespace starshare
