// Incremental view maintenance: AppendFacts folds new base tuples into
// every materialized view from (old view + delta) — SUM views are
// self-maintainable — and the refreshed cube must be indistinguishable from
// one rebuilt from scratch.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using testing::BruteForce;
using testing::MakeQuery;
using testing::SmallSchema;

class MaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>(SmallSchema());
    engine_->LoadFactTable({.num_rows = 12000, .seed = 131});
    ASSERT_TRUE(engine_->MaterializeView("X'Y'").ok());
    ASSERT_TRUE(engine_->MaterializeView("X''Z'", /*clustered=*/true).ok());
    ASSERT_TRUE(engine_->BuildIndexes("X'Y'", {"X", "Y"}).ok());
  }

  const StarSchema& schema() const { return engine_->schema(); }

  std::unique_ptr<Engine> engine_;
};

TEST_F(MaintenanceTest, RefreshedViewsMatchRebuiltFromScratch) {
  ASSERT_TRUE(engine_->AppendFacts({.num_rows = 2500, .seed = 999}).ok());
  EXPECT_EQ(engine_->base_view()->table().num_rows(), 14500u);

  // A second engine builds the same final state from scratch.
  Engine fresh(SmallSchema());
  fresh.LoadFactTable({.num_rows = 12000, .seed = 131});
  ASSERT_TRUE(fresh.AppendFacts({.num_rows = 2500, .seed = 999}).ok());
  // (fresh has no views; build them from the final base)
  ASSERT_TRUE(fresh.MaterializeView("X'Y'").ok());
  ASSERT_TRUE(fresh.MaterializeView("X''Z'", /*clustered=*/true).ok());

  for (const char* name : {"X'Y'", "X''Z'"}) {
    const Table* refreshed = engine_->catalog().Find(name);
    const Table* rebuilt = fresh.catalog().Find(name);
    ASSERT_NE(refreshed, nullptr);
    ASSERT_NE(rebuilt, nullptr);
    ASSERT_EQ(refreshed->num_rows(), rebuilt->num_rows()) << name;
    // Same emission rules -> identical layout and contents.
    for (uint64_t r = 0; r < refreshed->num_rows(); ++r) {
      for (size_t c = 0; c < refreshed->num_key_columns(); ++c) {
        ASSERT_EQ(refreshed->key(c, r), rebuilt->key(c, r)) << name;
      }
      ASSERT_NEAR(refreshed->measure(r), rebuilt->measure(r), 1e-6) << name;
    }
  }
}

TEST_F(MaintenanceTest, QueriesCorrectAfterAppend) {
  ASSERT_TRUE(engine_->AppendFacts({.num_rows = 3000, .seed = 777}).ok());
  std::vector<DimensionalQuery> queries;
  queries.push_back(MakeQuery(schema(), 1, "X'Y''", {{"X", 2, {0}}}));
  queries.push_back(
      MakeQuery(schema(), 2, "X'Y'", {{"X", 1, {1}}, {"Y", 1, {2}}}));
  queries.push_back(MakeQuery(schema(), 3, "X''Z'", {{"Z", 1, {1}}}));

  const GlobalPlan plan =
      engine_->Optimize(queries, OptimizerKind::kGlobalGreedy);
  const auto shared = engine_->Execute(plan);
  const auto naive = engine_->ExecuteNaive(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryResult expected =
        BruteForce(schema(), engine_->base_view()->table(), queries[i]);
    EXPECT_TRUE(shared[i].result.ApproxEquals(expected)) << "Q" << i + 1;
    EXPECT_TRUE(naive[i].result.ApproxEquals(expected)) << "Q" << i + 1;
  }
}

TEST_F(MaintenanceTest, IndexesRebuiltAfterAppend) {
  ASSERT_TRUE(engine_->AppendFacts({.num_rows = 1000, .seed = 55}).ok());
  MaterializedView* view = engine_->views().FindByName("X'Y'");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->IndexedDims(), (std::vector<size_t>{0, 1}));
  // The rebuilt index covers the refreshed row count.
  EXPECT_EQ(view->IndexOn(0)->num_rows(), view->table().num_rows());
  EXPECT_TRUE(view->has_stats());
}

TEST_F(MaintenanceTest, RefreshNeverRescansBase) {
  engine_->ConsumeIoStats();
  const uint64_t base_pages = engine_->base_view()->table().num_pages();
  ASSERT_TRUE(engine_->AppendFacts({.num_rows = 500, .seed = 3}).ok());
  const IoStats io = engine_->ConsumeIoStats();
  // Sequential reads cover views, delta and index rebuilds — but the
  // refresh itself must not scan anything the size of the base. X'Y' gets
  // its index rebuilt (one scan of the small refreshed view), so allow
  // view-sized reads only.
  EXPECT_LT(io.seq_pages_read, base_pages);
}

TEST_F(MaintenanceTest, AppendValidation) {
  // Wrong column count.
  auto bad = std::make_unique<Table>("d", std::vector<std::string>{"X"}, "m");
  EXPECT_EQ(engine_->AppendFactTable(std::move(bad)).code(),
            StatusCode::kInvalidArgument);
  // Out-of-range key.
  auto oob = std::make_unique<Table>(
      "d", std::vector<std::string>{"X", "Y", "Z"}, "m");
  const int32_t keys[] = {99, 0, 0};
  oob->AppendRow(keys, 1.0);
  EXPECT_EQ(engine_->AppendFactTable(std::move(oob)).code(),
            StatusCode::kInvalidArgument);
  // No fact table yet.
  Engine empty(SmallSchema());
  EXPECT_EQ(empty.AppendFacts({.num_rows = 10}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(MaintenanceTest, RepeatedAppendsAccumulate) {
  double expected_total = 0;
  for (uint64_t r = 0; r < engine_->base_view()->table().num_rows(); ++r) {
    expected_total += engine_->base_view()->table().measure(r);
  }
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(
        engine_->AppendFacts({.num_rows = 400, .seed = 1000u + round}).ok());
  }
  EXPECT_EQ(engine_->base_view()->table().num_rows(), 12000u + 3 * 400);
  // The grand total over the refreshed X''Z' view equals the base total.
  std::vector<DimensionalQuery> q;
  q.push_back(MakeQuery(schema(), 1, "()", {}));
  const auto results = engine_->ExecuteNaive(q);
  double base_total = 0;
  for (uint64_t r = 0; r < engine_->base_view()->table().num_rows(); ++r) {
    base_total += engine_->base_view()->table().measure(r);
  }
  EXPECT_NEAR(results[0].result.TotalValue(), base_total,
              1e-9 * base_total);
}

}  // namespace
}  // namespace starshare
