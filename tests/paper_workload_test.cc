// Integration tests on the paper's §7 workload at reduced scale: the nine
// MDX queries, the Table 1 view set, and the plan shapes behind Tests 4–7.

#include <gtest/gtest.h>

#include "core/paper_workload.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using testing::BruteForce;

class PaperWorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new Engine(StarSchema::PaperTestSchema());
    PaperWorkload::Setup(*engine_, /*rows=*/60000, /*seed=*/71);
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }

  static const StarSchema& schema() { return engine_->schema(); }

  static Engine* engine_;
};

Engine* PaperWorkloadTest::engine_ = nullptr;

TEST_F(PaperWorkloadTest, SetupMaterializesTableOneViews) {
  EXPECT_EQ(engine_->views().size(), 6u);  // base + 5
  for (const std::string& spec : PaperWorkload::ViewSpecs()) {
    EXPECT_NE(engine_->views().FindByName(spec), nullptr) << spec;
  }
  // The indexed view has indexes on all four dimensions.
  MaterializedView* indexed =
      engine_->views().FindByName(PaperWorkload::IndexedViewSpec());
  ASSERT_NE(indexed, nullptr);
  EXPECT_EQ(indexed->IndexedDims().size(), 4u);
}

TEST_F(PaperWorkloadTest, QueryTargetsMatchPaper) {
  const struct {
    int id;
    const char* target;
  } expected[] = {
      {1, "A'B''C''"}, {2, "A''B'C''"}, {3, "A''B''C''"},
      {4, "A''B''C''"}, {5, "A'B''C''"}, {6, "A'B'C'"},
      {7, "A'B'C'"},    {8, "A'B'C''"},  {9, "A'B''C'"},
  };
  for (const auto& e : expected) {
    const DimensionalQuery q = PaperWorkload::MakeQuery(*engine_, e.id);
    EXPECT_EQ(q.target().ToString(schema()), e.target) << "query " << e.id;
    EXPECT_EQ(q.id(), e.id);
    // Every query carries the D.DD1 slicer.
    const DimPredicate* d = q.predicate().ForDim(3);
    ASSERT_NE(d, nullptr) << "query " << e.id;
    EXPECT_EQ(d->level, 1);
    EXPECT_EQ(d->members, (std::vector<int32_t>{0}));
  }
}

TEST_F(PaperWorkloadTest, SelectivityClassesMatchPaper) {
  // §7.3: Queries 1-4 and 9 are not selective; 5-8 are selective.
  for (int selective : {5, 6, 7, 8}) {
    const DimensionalQuery q = PaperWorkload::MakeQuery(*engine_, selective);
    EXPECT_LT(q.Selectivity(schema()) * 35, 1.0 / 50) << "query " << selective;
  }
  for (int broad : {1, 2, 3, 4, 9}) {
    const DimensionalQuery q = PaperWorkload::MakeQuery(*engine_, broad);
    EXPECT_GT(q.Selectivity(schema()) * 35, 1.0 / 30) << "query " << broad;
  }
}

TEST_F(PaperWorkloadTest, AllNineQueriesEvaluateCorrectlyEverywhere) {
  // Every query, from every strategy, equals brute force on the base data.
  for (int i = 1; i <= PaperWorkload::kNumQueries; ++i) {
    std::vector<DimensionalQuery> queries;
    queries.push_back(PaperWorkload::MakeQuery(*engine_, i));
    const QueryResult expected = BruteForce(
        schema(), engine_->base_view()->table(), queries[0]);
    const auto naive = engine_->ExecuteNaive(queries);
    EXPECT_TRUE(naive[0].result.ApproxEquals(expected)) << "naive Q" << i;
    for (OptimizerKind kind :
         {OptimizerKind::kTplo, OptimizerKind::kGlobalGreedy}) {
      const GlobalPlan plan = engine_->Optimize(queries, kind);
      const auto got = engine_->Execute(plan);
      EXPECT_TRUE(got[0].result.ApproxEquals(expected))
          << OptimizerKindName(kind) << " Q" << i;
    }
  }
}

TEST_F(PaperWorkloadTest, Test4ShapeGgSharesMoreThanTplo) {
  // Test 4 = Queries 1, 2, 3 (non-selective): GG must find logical sharing
  // and cost no more than ETPLG, which costs no more than TPLO.
  const auto queries = PaperWorkload::MakeQueries(*engine_, {1, 2, 3});
  const GlobalPlan tplo = engine_->Optimize(queries, OptimizerKind::kTplo);
  const GlobalPlan etplg = engine_->Optimize(queries, OptimizerKind::kEtplg);
  const GlobalPlan gg =
      engine_->Optimize(queries, OptimizerKind::kGlobalGreedy);
  const GlobalPlan optimal =
      engine_->Optimize(queries, OptimizerKind::kExhaustive);

  EXPECT_LE(gg.EstMs(), etplg.EstMs() + 1e-9);
  EXPECT_LE(etplg.EstMs(), tplo.EstMs() + 1e-9);
  EXPECT_LE(optimal.EstMs(), gg.EstMs() + 1e-9);
  // TPLO picks three different local optima (no sharing at all).
  EXPECT_EQ(tplo.classes.size(), 3u);
  // GG consolidates onto fewer base tables.
  EXPECT_LT(gg.classes.size(), tplo.classes.size());
}

TEST_F(PaperWorkloadTest, Test6ShapeAllSelectiveAgree) {
  // Test 6 = Queries 6, 7, 8 (very selective): index plans are locally
  // optimal, there is little logical sharing to find, and all three
  // algorithms land within a small factor of each other.
  const auto queries = PaperWorkload::MakeQueries(*engine_, {6, 7, 8});
  const GlobalPlan tplo = engine_->Optimize(queries, OptimizerKind::kTplo);
  const GlobalPlan gg =
      engine_->Optimize(queries, OptimizerKind::kGlobalGreedy);
  EXPECT_LE(gg.EstMs(), tplo.EstMs() + 1e-9);
  EXPECT_LT(tplo.EstMs(), 2.0 * gg.EstMs());
}

TEST_F(PaperWorkloadTest, Test7ShapeTploScattersEtplgShares) {
  // Test 7 = Queries 1, 7, 9: the paper reports ETPLG = GG = optimal and
  // TPLO worst because TPLO chooses a different fact table per query.
  const auto queries = PaperWorkload::MakeQueries(*engine_, {1, 7, 9});
  const GlobalPlan tplo = engine_->Optimize(queries, OptimizerKind::kTplo);
  const GlobalPlan etplg = engine_->Optimize(queries, OptimizerKind::kEtplg);
  const GlobalPlan gg =
      engine_->Optimize(queries, OptimizerKind::kGlobalGreedy);
  EXPECT_LE(gg.EstMs(), etplg.EstMs() + 1e-9);
  EXPECT_LE(etplg.EstMs(), tplo.EstMs() + 1e-9);
  EXPECT_LT(gg.classes.size(), 3u);  // sharing found
}

TEST_F(PaperWorkloadTest, SharedExecutionBeatsNaiveOnTest4) {
  const auto queries = PaperWorkload::MakeQueries(*engine_, {1, 2, 3});
  const GlobalPlan plan =
      engine_->Optimize(queries, OptimizerKind::kGlobalGreedy);
  engine_->ConsumeIoStats();
  const auto shared = engine_->Execute(plan);
  const double shared_ms = engine_->ModeledIoMs(engine_->ConsumeIoStats());
  const auto naive = engine_->ExecuteNaive(queries);
  const double naive_ms = engine_->ModeledIoMs(engine_->ConsumeIoStats());
  EXPECT_LT(shared_ms, naive_ms);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(shared[i].result.ApproxEquals(naive[i].result));
  }
}

TEST_F(PaperWorkloadTest, RowsFromEnvFallback) {
  // (Does not set the variable; just exercises the fallback path.)
  EXPECT_EQ(PaperWorkload::RowsFromEnv(1234), 1234u);
}

}  // namespace
}  // namespace starshare
