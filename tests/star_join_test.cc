#include <gtest/gtest.h>

#include "cube/view_builder.h"
#include "exec/star_join.h"
#include "schema/data_generator.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using testing::BruteForce;
using testing::MakeQuery;
using testing::SmallSchema;

class StarJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DataGenerator gen(schema_, {.num_rows = 8000, .seed = 23});
    base_table_ = gen.Generate("base");
    base_ = std::make_unique<MaterializedView>(
        schema_, GroupBySpec::Base(schema_), base_table_.get());
    for (size_t d = 0; d < schema_.num_dims(); ++d) {
      base_->BuildIndex(schema_, d, disk_);
    }
    ViewBuilder builder(schema_);
    mid_spec_ = GroupBySpec::Parse("X'Y'Z", schema_).value();
    mid_table_ = builder.Build(*base_, mid_spec_, disk_);
    mid_ = std::make_unique<MaterializedView>(schema_, mid_spec_,
                                              mid_table_.get());
    for (size_t d = 0; d < schema_.num_dims(); ++d) {
      mid_->BuildIndex(schema_, d, disk_);
    }
    disk_.ResetStats();
  }

  StarSchema schema_ = SmallSchema();
  DiskModel disk_;
  std::unique_ptr<Table> base_table_;
  std::unique_ptr<MaterializedView> base_;
  GroupBySpec mid_spec_;
  std::unique_ptr<Table> mid_table_;
  std::unique_ptr<MaterializedView> mid_;
};

TEST_F(StarJoinTest, PassTableMarksDescendants) {
  // Predicate X'' = X1 on the base view: base members 0..5 pass.
  DimPredicate pred{0, 2, {0}};
  const auto pass = BuildPassTable(schema_, *base_, pred);
  ASSERT_EQ(pass.size(), 12u);
  for (size_t m = 0; m < 12; ++m) {
    EXPECT_EQ(pass[m], m < 6 ? 1 : 0) << m;
  }
}

TEST_F(StarJoinTest, PassTableAtStoredLevel) {
  // On the mid view X is stored at level 1 (4 members); X''=X2 covers 2..3.
  DimPredicate pred{0, 2, {1}};
  const auto pass = BuildPassTable(schema_, *mid_, pred);
  ASSERT_EQ(pass.size(), 4u);
  for (size_t m = 0; m < 4; ++m) {
    EXPECT_EQ(pass[m], m >= 2 ? 1 : 0) << m;
  }
}

TEST_F(StarJoinTest, HashJoinMatchesBruteForce) {
  DimensionalQuery q = MakeQuery(schema_, 1, "X'Y''",
                                 {{"X", 2, {0}}, {"Z", 1, {0, 2}}});
  QueryResult got = HashStarJoin(schema_, q, *base_, disk_);
  EXPECT_TRUE(got.ApproxEquals(BruteForce(schema_, *base_table_, q)));
}

TEST_F(StarJoinTest, HashJoinFromViewMatchesBase) {
  DimensionalQuery q = MakeQuery(schema_, 1, "X'Y''",
                                 {{"X", 2, {0}}, {"Z", 1, {0, 2}}});
  QueryResult from_base = HashStarJoin(schema_, q, *base_, disk_);
  QueryResult from_mid = HashStarJoin(schema_, q, *mid_, disk_);
  EXPECT_TRUE(from_mid.ApproxEquals(from_base));
}

TEST_F(StarJoinTest, HashJoinNoPredicates) {
  DimensionalQuery q = MakeQuery(schema_, 1, "X''Y''", {});
  QueryResult got = HashStarJoin(schema_, q, *base_, disk_);
  EXPECT_TRUE(got.ApproxEquals(BruteForce(schema_, *base_table_, q)));
  EXPECT_EQ(got.num_rows(), 4u);
}

TEST_F(StarJoinTest, HashJoinChargesOneScan) {
  DimensionalQuery q = MakeQuery(schema_, 1, "X''", {{"X", 2, {0}}});
  disk_.ResetStats();
  HashStarJoin(schema_, q, *base_, disk_);
  EXPECT_EQ(disk_.stats().seq_pages_read, base_table_->num_pages());
  EXPECT_EQ(disk_.stats().rand_pages_read, 0u);
  EXPECT_EQ(disk_.stats().tuples_processed, base_table_->num_rows());
}

TEST_F(StarJoinTest, ResultBitmapIsSelectionExactly) {
  DimensionalQuery q = MakeQuery(schema_, 1, "X'Y''",
                                 {{"X", 2, {0}}, {"Y", 2, {1}}});
  Bitmap bitmap = BuildResultBitmap(schema_, q, *base_, disk_);
  ASSERT_EQ(bitmap.num_bits(), base_table_->num_rows());
  std::vector<int32_t> keys(schema_.num_dims());
  for (uint64_t row = 0; row < base_table_->num_rows(); ++row) {
    for (size_t d = 0; d < schema_.num_dims(); ++d) {
      keys[d] = base_table_->key(d, row);
    }
    ASSERT_EQ(bitmap.Test(row),
              q.predicate().MatchesBaseRow(schema_, keys.data()))
        << row;
  }
}

TEST_F(StarJoinTest, IndexJoinMatchesBruteForce) {
  DimensionalQuery q = MakeQuery(schema_, 1, "X'Y''",
                                 {{"X", 1, {2}}, {"Y", 2, {1}}});
  QueryResult got = IndexStarJoin(schema_, q, *base_, disk_);
  EXPECT_TRUE(got.ApproxEquals(BruteForce(schema_, *base_table_, q)));
}

TEST_F(StarJoinTest, IndexJoinFromViewMatchesHashJoin) {
  DimensionalQuery q = MakeQuery(schema_, 1, "X'Y''",
                                 {{"X", 1, {2}}, {"Y", 2, {1}}});
  QueryResult via_index = IndexStarJoin(schema_, q, *mid_, disk_);
  QueryResult via_hash = HashStarJoin(schema_, q, *mid_, disk_);
  EXPECT_TRUE(via_index.ApproxEquals(via_hash));
}

TEST_F(StarJoinTest, IndexJoinChargesRandomNotSequential) {
  DimensionalQuery q = MakeQuery(schema_, 1, "X", {{"X", 0, {7}}});
  disk_.ResetStats();
  IndexStarJoin(schema_, q, *base_, disk_);
  EXPECT_EQ(disk_.stats().seq_pages_read, 0u);
  EXPECT_GT(disk_.stats().rand_pages_read, 0u);
  EXPECT_GT(disk_.stats().index_pages_read, 0u);
  // A 1/12 selection cannot touch more pages than the table has.
  EXPECT_LE(disk_.stats().rand_pages_read, base_table_->num_pages());
}

TEST_F(StarJoinTest, VerySelectiveIndexJoinTouchesFewPages) {
  // One base member of X, Y and Z: ~8000/1728 = 5 rows.
  DimensionalQuery q = MakeQuery(schema_, 1, "XYZ",
                                 {{"X", 0, {3}}, {"Y", 0, {4}}, {"Z", 0, {7}}});
  disk_.ResetStats();
  QueryResult got = IndexStarJoin(schema_, q, *base_, disk_);
  EXPECT_TRUE(got.ApproxEquals(BruteForce(schema_, *base_table_, q)));
  EXPECT_LT(disk_.stats().rand_pages_read, base_table_->num_pages());
}

TEST_F(StarJoinTest, EmptySelectionYieldsEmptyResult) {
  // Intersection of disjoint X predicates is empty.
  StarSchema& s = schema_;
  QueryPredicate pred;
  pred.AddConjunct(s.dim(0), DimPredicate{0, 2, {0}});
  pred.AddConjunct(s.dim(0), DimPredicate{0, 2, {1}});
  DimensionalQuery q(1, "empty", GroupBySpec::Parse("X''", s).value(),
                     std::move(pred));
  EXPECT_EQ(HashStarJoin(schema_, q, *base_, disk_).num_rows(), 0u);
  EXPECT_EQ(IndexStarJoin(schema_, q, *base_, disk_).num_rows(), 0u);
}

// Aggregate sweep: both join methods agree with brute force for every agg.
class StarJoinAggTest : public StarJoinTest,
                        public ::testing::WithParamInterface<AggOp> {};

TEST_P(StarJoinAggTest, HashJoinAllAggs) {
  DimensionalQuery q = MakeQuery(schema_, 1, "X''Z'", {{"Z", 1, {0, 1}}},
                                 GetParam());
  QueryResult got = HashStarJoin(schema_, q, *base_, disk_);
  EXPECT_TRUE(got.ApproxEquals(BruteForce(schema_, *base_table_, q)));
}

INSTANTIATE_TEST_SUITE_P(Aggs, StarJoinAggTest,
                         ::testing::Values(AggOp::kSum, AggOp::kCount,
                                           AggOp::kMin, AggOp::kMax,
                                           AggOp::kAvg));

}  // namespace
}  // namespace starshare
