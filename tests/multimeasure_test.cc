// Multi-measure fact tables: views carry one SUM column per measure, each
// query aggregates the measure it names, MDX selects measures via FILTER,
// and every lifecycle feature (batch build, maintenance, persistence,
// caching) preserves all measure columns.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/engine.h"
#include "storage/table_io.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using testing::BruteForce;

StarSchema TwoMeasureSchema() {
  std::vector<DimensionConfig> dims;
  dims.push_back({.name = "X", .top_cardinality = 2, .fanouts = {3, 2}});
  dims.push_back({.name = "Y", .top_cardinality = 2, .fanouts = {3, 2}});
  return StarSchema(std::move(dims),
                    std::vector<std::string>{"revenue", "units"});
}

DimensionalQuery MeasureQuery(const StarSchema& s, int id,
                              const std::string& target, size_t measure,
                              std::vector<int32_t> x_members = {0}) {
  QueryPredicate pred;
  pred.AddConjunct(s.dim(0), DimPredicate{0, 2, std::move(x_members)});
  return DimensionalQuery(id, target, GroupBySpec::Parse(target, s).value(),
                          std::move(pred), AggOp::kSum, measure);
}

class MultiMeasureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>(TwoMeasureSchema());
    base_ = engine_->LoadFactTable({.num_rows = 9000, .seed = 161});
  }

  const StarSchema& schema() const { return engine_->schema(); }

  std::unique_ptr<Engine> engine_;
  MaterializedView* base_ = nullptr;
};

TEST_F(MultiMeasureTest, SchemaAndTableShape) {
  EXPECT_EQ(schema().num_measures(), 2u);
  EXPECT_EQ(schema().MeasureIndex("units").value(), 1u);
  EXPECT_FALSE(schema().MeasureIndex("profit").ok());
  EXPECT_EQ(base_->table().num_measures(), 2u);
  EXPECT_EQ(base_->table().tuple_width_bytes(), 4u * 2 + 8 * 2);
  EXPECT_EQ(base_->table().measure_name(1), "units");
}

TEST_F(MultiMeasureTest, QueriesAggregateTheirOwnMeasure) {
  std::vector<DimensionalQuery> queries;
  queries.push_back(MeasureQuery(schema(), 1, "X'", 0));
  queries.push_back(MeasureQuery(schema(), 2, "X'", 1));
  const auto results = engine_->ExecuteNaive(queries);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(results[i].result.ApproxEquals(
        BruteForce(schema(), base_->table(), queries[i])))
        << "measure " << i;
  }
  // Different measures -> different totals (independently generated).
  EXPECT_NE(results[0].result.TotalValue(), results[1].result.TotalValue());
}

TEST_F(MultiMeasureTest, ViewsCarryEveryMeasureColumn) {
  auto view = engine_->MaterializeView("X'Y'");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value()->table().num_measures(), 2u);
  // A units query is answerable from the view and matches brute force.
  std::vector<DimensionalQuery> queries;
  queries.push_back(MeasureQuery(schema(), 1, "X'", 1));
  const GlobalPlan plan =
      engine_->Optimize(queries, OptimizerKind::kGlobalGreedy);
  EXPECT_EQ(plan.classes[0].base->name(), "X'Y'");
  const auto results = engine_->Execute(plan);
  EXPECT_TRUE(results[0].result.ApproxEquals(
      BruteForce(schema(), base_->table(), queries[0])));
}

TEST_F(MultiMeasureTest, SharedClassMixesMeasures) {
  // Two queries over different measures share one scan; results must not
  // cross-contaminate.
  std::vector<DimensionalQuery> queries;
  queries.push_back(MeasureQuery(schema(), 1, "X'", 0));
  queries.push_back(MeasureQuery(schema(), 2, "X'", 1, {1}));
  const GlobalPlan plan =
      engine_->Optimize(queries, OptimizerKind::kGlobalGreedy);
  ASSERT_EQ(plan.classes.size(), 1u);
  engine_->ConsumeIoStats();
  const auto results = engine_->Execute(plan);
  EXPECT_EQ(engine_->ConsumeIoStats().seq_pages_read,
            plan.classes[0].base->table().num_pages());
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(results[i].result.ApproxEquals(
        BruteForce(schema(), base_->table(), queries[i])));
  }
}

TEST_F(MultiMeasureTest, MdxFilterSelectsMeasure) {
  auto revenue =
      engine_->ParseMdx("{X''.X1.CHILDREN} on COLUMNS CONTEXT C "
                        "FILTER (revenue);");
  auto units = engine_->ParseMdx("{X''.X1.CHILDREN} on COLUMNS CONTEXT C "
                                 "FILTER (units);");
  ASSERT_TRUE(revenue.ok());
  ASSERT_TRUE(units.ok());
  EXPECT_EQ(revenue.value()[0].measure(), 0u);
  EXPECT_EQ(units.value()[0].measure(), 1u);
  const auto a = engine_->ExecuteNaive(revenue.value());
  const auto b = engine_->ExecuteNaive(units.value());
  EXPECT_NE(a[0].result.TotalValue(), b[0].result.TotalValue());
  EXPECT_TRUE(b[0].result.ApproxEquals(
      BruteForce(schema(), base_->table(), units.value()[0])));
}

TEST_F(MultiMeasureTest, MaintenancePreservesAllMeasures) {
  ASSERT_TRUE(engine_->MaterializeView("X''Y'").ok());
  ASSERT_TRUE(engine_->AppendFacts({.num_rows = 3000, .seed = 9}).ok());
  std::vector<DimensionalQuery> queries;
  queries.push_back(MeasureQuery(schema(), 1, "X''Y'", 1));
  const auto results = engine_->ExecuteNaive(queries);
  EXPECT_TRUE(results[0].result.ApproxEquals(
      BruteForce(schema(), base_->table(), queries[0])));
}

TEST_F(MultiMeasureTest, PersistenceRoundTripsMeasures) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "starshare_multimeasure_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(engine_->MaterializeView("X'Y''").ok());
  ASSERT_TRUE(engine_->SaveCube(dir.string()).ok());

  Engine loaded(TwoMeasureSchema());
  ASSERT_TRUE(loaded.LoadCube(dir.string()).ok());
  EXPECT_EQ(loaded.base_view()->table().num_measures(), 2u);
  std::vector<DimensionalQuery> queries;
  queries.push_back(MeasureQuery(loaded.schema(), 1, "X'", 1));
  const auto results = loaded.ExecuteNaive(queries);
  EXPECT_TRUE(results[0].result.ApproxEquals(
      BruteForce(loaded.schema(), loaded.base_view()->table(), queries[0])));
  std::filesystem::remove_all(dir);
}

TEST_F(MultiMeasureTest, ResultCacheKeysIncludeMeasure) {
  StarSchema s = TwoMeasureSchema();
  const DimensionalQuery a = MeasureQuery(s, 1, "X'", 0);
  const DimensionalQuery b = MeasureQuery(s, 1, "X'", 1);
  EXPECT_NE(ResultCache::KeyOf(a, s), ResultCache::KeyOf(b, s));
}

}  // namespace
}  // namespace starshare
