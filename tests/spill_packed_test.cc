// Direct SpillFile coverage for the packed run layout (exec/spill.h):
// packed and interleaved files must emit the exact same (key, values)
// sequence from Merge, packed runs must be smaller on disk whenever the
// key domain is narrow, the streaming word-window merge must survive
// chunk boundaries that split words, and the per-section CRCs must catch
// in-flight bit flips on the packed path too.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "exec/spill.h"

namespace starshare {
namespace {

using Emitted = std::vector<std::pair<uint64_t, std::vector<double>>>;

class SpillPackedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("starshare_spill_packed_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::Instance().Disable();
    std::filesystem::remove_all(dir_);
  }

  SpillConfig Config(bool packed) const {
    SpillConfig config;
    config.scratch_dir = dir_.string();
    config.packed_keys = packed;
    return config;
  }

  // Three sorted runs with interleaved, duplicated key ranges so the merge
  // heap has to alternate runs and respect arrival order on equal keys.
  static void AppendRuns(SpillFile& file, size_t doubles) {
    for (uint64_t run = 0; run < 3; ++run) {
      std::vector<uint64_t> keys;
      std::vector<double> values;
      for (uint64_t i = 0; i < 257; ++i) {  // 257: never a whole word count
        keys.push_back(run * 3 + i * 5);    // sorted, overlapping across runs
        for (size_t d = 0; d < doubles; ++d) {
          values.push_back(static_cast<double>(run * 10'000 + i) + d * 0.5);
        }
      }
      ASSERT_TRUE(file.AppendRun(keys.data(), values.data(), keys.size()).ok());
    }
  }

  static Emitted MergeAll(SpillFile& file, uint64_t budget) {
    Emitted out;
    const size_t doubles = file.doubles_per_record();
    SS_CHECK(file.Merge(budget, [&](uint64_t key, const double* v) {
      out.emplace_back(key, std::vector<double>(v, v + doubles));
    }).ok());
    return out;
  }

  std::filesystem::path dir_;
};

TEST_F(SpillPackedTest, PackedMergesIdenticallyToInterleaved) {
  for (const uint64_t budget : {uint64_t{1}, uint64_t{512}, uint64_t{1} << 20}) {
    SpillFile interleaved(Config(false), 1, 2);
    SpillFile packed(Config(true), 1, 2);
    ASSERT_FALSE(interleaved.packed_keys());
    ASSERT_TRUE(packed.packed_keys());
    AppendRuns(interleaved, 2);
    AppendRuns(packed, 2);
    EXPECT_EQ(interleaved.spilled_rows(), packed.spilled_rows());
    // 3*257 keys spanning ~1285 values pack at 11 bits vs 64 raw: the
    // packed file must be smaller.
    EXPECT_LT(packed.spilled_bytes(), interleaved.spilled_bytes());

    const Emitted a = MergeAll(interleaved, budget);
    const Emitted b = MergeAll(packed, budget);
    ASSERT_EQ(a.size(), 3u * 257u) << "budget " << budget;
    EXPECT_EQ(a, b) << "packed merge diverged at budget " << budget;
  }
}

TEST_F(SpillPackedTest, WideKeysNeedSixtyFourBits) {
  // A run whose keys span nearly the whole u64 domain: bits = 64, the
  // widest the packed layout supports (mask must not shift out).
  SpillFile file(Config(true), 2, 1);
  const std::vector<uint64_t> keys = {0, 1, uint64_t{1} << 40,
                                      (uint64_t{1} << 63) + 9};
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  ASSERT_TRUE(file.AppendRun(keys.data(), values.data(), keys.size()).ok());
  const Emitted got = MergeAll(file, 64);
  ASSERT_EQ(got.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(got[i].first, keys[i]);
    EXPECT_EQ(got[i].second[0], values[i]);
  }
}

TEST_F(SpillPackedTest, PackedReadBitFlipFailsWithResourceExhausted) {
  SpillFile file(Config(true), 7, 1);
  std::vector<uint64_t> keys;
  std::vector<double> values;
  for (uint64_t i = 0; i < 2'000; ++i) {
    keys.push_back(i * 3);
    values.push_back(static_cast<double>(i));
  }
  ASSERT_TRUE(file.AppendRun(keys.data(), values.data(), keys.size()).ok());

  FaultInjector::Instance().Enable(23);
  FaultSpec spec;
  spec.kind = FaultKind::kBitFlip;
  spec.key = 7;
  spec.countdown = 2;  // flip during a mid-run refill
  FaultInjector::Instance().Arm("spill.read", spec);

  const Status s = file.Merge(256, [](uint64_t, const double*) {});
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
}

}  // namespace
}  // namespace starshare
