#include <gtest/gtest.h>

#include "core/engine.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using testing::BruteForce;
using testing::MakeQuery;
using testing::SmallSchema;

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>(SmallSchema());
    base_ = engine_->LoadFactTable({.num_rows = 20000, .seed = 61});
  }

  const StarSchema& schema() const { return engine_->schema(); }

  std::unique_ptr<Engine> engine_;
  MaterializedView* base_ = nullptr;
};

TEST_F(EngineTest, LoadFactTableRegistersBase) {
  ASSERT_NE(base_, nullptr);
  EXPECT_EQ(engine_->base_view(), base_);
  EXPECT_EQ(base_->spec(), GroupBySpec::Base(schema()));
  EXPECT_EQ(base_->table().num_rows(), 20000u);
  EXPECT_NE(engine_->catalog().Find("XYZ"), nullptr);
  EXPECT_FALSE(base_->clustered());
}

TEST_F(EngineTest, DoubleLoadFails) {
  Engine other(SmallSchema());
  other.LoadFactTable({.num_rows = 10});
  auto table = std::make_unique<Table>(
      "dup", std::vector<std::string>{"X", "Y", "Z"}, "amount");
  EXPECT_EQ(other.AttachFactTable(std::move(table)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(EngineTest, AttachValidatesColumnCount) {
  Engine other(SmallSchema());
  auto table = std::make_unique<Table>(
      "bad", std::vector<std::string>{"X"}, "amount");
  EXPECT_EQ(other.AttachFactTable(std::move(table)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, MaterializeViewParsesAndBuilds) {
  auto view = engine_->MaterializeView("X'Y''");
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_FALSE(view.value()->clustered());  // heap order by default
  auto clustered = engine_->MaterializeView("X''Y'", /*clustered=*/true);
  ASSERT_TRUE(clustered.ok());
  EXPECT_TRUE(clustered.value()->clustered());
  EXPECT_LE(view.value()->table().num_rows(), 8u);
  // Registered in the catalog under the spec string.
  EXPECT_NE(engine_->catalog().Find("X'Y''"), nullptr);
  // A second materialization of the same spec fails.
  EXPECT_FALSE(engine_->MaterializeView("X'Y''").ok());
  // Garbage specs fail.
  EXPECT_FALSE(engine_->MaterializeView("Q9").ok());
}

TEST_F(EngineTest, MaterializeUsesSmallestSource) {
  ASSERT_TRUE(engine_->MaterializeView("X'Y'Z'").ok());
  engine_->ConsumeIoStats();
  ASSERT_TRUE(engine_->MaterializeView("X''Y''").ok());
  // Building X''Y'' should scan the small view, not the 20k-row base.
  const IoStats stats = engine_->ConsumeIoStats();
  const Table* small = engine_->catalog().Find("X'Y'Z'");
  ASSERT_NE(small, nullptr);
  EXPECT_EQ(stats.seq_pages_read, small->num_pages());
}

TEST_F(EngineTest, BuildIndexesValidates) {
  ASSERT_TRUE(engine_->MaterializeView("X'Y'").ok());
  EXPECT_TRUE(engine_->BuildIndexes("X'Y'", {"X", "Y"}).ok());
  EXPECT_EQ(engine_->BuildIndexes("X'Y'", {"Z"}).code(),
            StatusCode::kInvalidArgument);  // Z aggregated away
  EXPECT_EQ(engine_->BuildIndexes("X'Y'", {"W"}).code(),
            StatusCode::kNotFound);  // no such dimension
  EXPECT_EQ(engine_->BuildIndexes("X''Y''", {"X"}).code(),
            StatusCode::kNotFound);  // view not materialized
}

TEST_F(EngineTest, ParseMdxEndToEnd) {
  auto queries =
      engine_->ParseMdx("{X''.X1.CHILDREN} on COLUMNS CONTEXT Cube;");
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  ASSERT_EQ(queries.value().size(), 1u);
  EXPECT_EQ(queries.value()[0].target().ToString(schema()), "X'");
  EXPECT_FALSE(engine_->ParseMdx("not mdx at all").ok());
}

TEST_F(EngineTest, ExecutePlanMatchesNaiveAndBruteForce) {
  ASSERT_TRUE(engine_->MaterializeView("X'Y'").ok());
  std::vector<DimensionalQuery> queries;
  queries.push_back(MakeQuery(schema(), 1, "X'Y''", {{"X", 2, {0}}}));
  queries.push_back(MakeQuery(schema(), 2, "X''Y'", {{"Y", 2, {1}}}));
  queries.push_back(MakeQuery(schema(), 3, "X''", {}));

  const GlobalPlan plan =
      engine_->Optimize(queries, OptimizerKind::kGlobalGreedy);
  const auto shared = engine_->Execute(plan);
  const auto naive = engine_->ExecuteNaive(queries);

  ASSERT_EQ(shared.size(), 3u);
  ASSERT_EQ(naive.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(shared[i].query->id(), static_cast<int>(i) + 1);
    EXPECT_TRUE(shared[i].result.ApproxEquals(naive[i].result));
    EXPECT_TRUE(shared[i].result.ApproxEquals(
        BruteForce(schema(), base_->table(), queries[i])));
  }
}

TEST_F(EngineTest, SharedExecutionSavesIo) {
  ASSERT_TRUE(engine_->MaterializeView("X'Y'").ok());
  std::vector<DimensionalQuery> queries;
  for (int i = 0; i < 4; ++i) {
    queries.push_back(MakeQuery(schema(), i + 1, "X'Y''",
                                {{"X", 2, {i % 2}}}));
  }
  const GlobalPlan plan =
      engine_->Optimize(queries, OptimizerKind::kGlobalGreedy);
  engine_->ConsumeIoStats();
  engine_->Execute(plan);
  const IoStats shared = engine_->ConsumeIoStats();
  engine_->ExecuteNaive(queries);
  const IoStats naive = engine_->ConsumeIoStats();
  EXPECT_LT(shared.TotalPagesRead(), naive.TotalPagesRead());
}

TEST_F(EngineTest, NonSumQueriesExecuteFromBase) {
  ASSERT_TRUE(engine_->MaterializeView("X'").ok());
  std::vector<DimensionalQuery> queries;
  queries.push_back(MakeQuery(schema(), 1, "X'", {}, AggOp::kMax));
  queries.push_back(MakeQuery(schema(), 2, "X'", {}, AggOp::kCount));
  const GlobalPlan plan =
      engine_->Optimize(queries, OptimizerKind::kGlobalGreedy);
  const auto results = engine_->Execute(plan);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(results[i].result.ApproxEquals(
        BruteForce(schema(), base_->table(), queries[i])));
  }
}

TEST_F(EngineTest, BufferPoolAbsorbsRepeatedScans) {
  EngineConfig config;
  config.buffer_pool_pages = 100000;
  Engine warm(SmallSchema(), config);
  warm.LoadFactTable({.num_rows = 20000, .seed = 61});
  std::vector<DimensionalQuery> queries;
  queries.push_back(MakeQuery(warm.schema(), 1, "X''", {}));
  warm.ConsumeIoStats();
  warm.ExecuteNaive(queries);
  const IoStats cold_run = warm.ConsumeIoStats();
  warm.ExecuteNaive(queries);
  const IoStats warm_run = warm.ConsumeIoStats();
  EXPECT_GT(cold_run.seq_pages_read, 0u);
  EXPECT_EQ(warm_run.seq_pages_read, 0u);
  EXPECT_EQ(warm_run.cached_pages, cold_run.seq_pages_read);
  // Flushing re-colds the pool.
  warm.FlushCaches();
  warm.ExecuteNaive(queries);
  EXPECT_GT(warm.ConsumeIoStats().seq_pages_read, 0u);
}

TEST_F(EngineTest, ConsumeIoStatsResets) {
  std::vector<DimensionalQuery> queries;
  queries.push_back(MakeQuery(schema(), 1, "X''", {}));
  engine_->ConsumeIoStats();
  engine_->ExecuteNaive(queries);
  EXPECT_GT(engine_->ConsumeIoStats().TotalPagesRead(), 0u);
  EXPECT_EQ(engine_->ConsumeIoStats().TotalPagesRead(), 0u);
}

TEST_F(EngineTest, ModeledIoMsUsesConfiguredTimings) {
  IoStats stats;
  stats.seq_pages_read = 100;
  stats.rand_pages_read = 10;
  EXPECT_DOUBLE_EQ(engine_->ModeledIoMs(stats), 100.0 * 1.0 + 10.0 * 10.0);
}

}  // namespace
}  // namespace starshare
