// Unit coverage for the parallel substrate: ThreadPool, MorselDispatcher
// (partitioning, page alignment, backpressure) and the ordered morsel
// pipeline, plus ParallelContext's stat/fault merging.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "parallel/morsel.h"
#include "parallel/morsel_pipeline.h"
#include "parallel/parallel_context.h"
#include "parallel/thread_pool.h"

namespace starshare {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskAndWaitBlocks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  std::vector<TaskHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(pool.Submit([&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (TaskHandle& h : handles) h.Wait();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.tasks_run(), 100u);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).Wait();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] {
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No Wait: the destructor's graceful shutdown must run them all.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, HardwareThreadsNeverZero) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(MorselDispatcherTest, PartitionsRowsExactly) {
  MorselDispatcher dispatcher(1000, 300);
  EXPECT_EQ(dispatcher.num_morsels(), 4u);
  uint64_t next_begin = 0;
  uint64_t index = 0;
  while (auto m = dispatcher.Next()) {
    EXPECT_EQ(m->index, index++);
    EXPECT_EQ(m->begin, next_begin);
    EXPECT_GT(m->end, m->begin);
    next_begin = m->end;
  }
  EXPECT_EQ(next_begin, 1000u);  // covered, no overlap, no gap
  EXPECT_EQ(index, 4u);
  EXPECT_FALSE(dispatcher.Next().has_value());  // stays exhausted
}

TEST(MorselDispatcherTest, EmptyScanYieldsNothing) {
  MorselDispatcher dispatcher(0, 128);
  EXPECT_EQ(dispatcher.num_morsels(), 0u);
  EXPECT_FALSE(dispatcher.Next().has_value());
}

TEST(MorselDispatcherTest, DefaultMorselRowsIsPageAlignedAndBounded) {
  // Big scan: a multiple of the page size, several morsels per worker.
  const uint64_t rows = 2'000'000, rpp = 409;
  const uint64_t m = MorselDispatcher::DefaultMorselRows(rows, rpp, 4);
  EXPECT_EQ(m % rpp, 0u);
  EXPECT_GE(m, MorselDispatcher::kMinMorselRows);
  const uint64_t num_morsels = (rows + m - 1) / m;
  EXPECT_GE(num_morsels, 4u);  // every worker has something to steal

  // Tiny scan: never below the minimum even if that means one morsel.
  const uint64_t tiny = MorselDispatcher::DefaultMorselRows(1000, rpp, 8);
  EXPECT_EQ(tiny % rpp, 0u);
  EXPECT_GE(tiny, MorselDispatcher::kMinMorselRows);
}

TEST(MorselDispatcherTest, WindowAppliesBackpressure) {
  MorselDispatcher dispatcher(10 * 64, 64, /*window=*/2);
  ASSERT_TRUE(dispatcher.Next().has_value());  // index 0
  ASSERT_TRUE(dispatcher.Next().has_value());  // index 1

  // Index 2 would run 2 ahead of the consumed floor (0): must block.
  auto blocked = std::async(std::launch::async, [&] {
    return dispatcher.Next();
  });
  EXPECT_EQ(blocked.wait_for(std::chrono::milliseconds(100)),
            std::future_status::timeout);

  dispatcher.MarkConsumed(0);
  ASSERT_EQ(blocked.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  auto m = blocked.get();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->index, 2u);
}

TEST(MorselPipelineTest, InlineModeConsumesInOrder) {
  DiskModel parent;
  ParallelContext ctx(parent, 1);
  MorselDispatcher dispatcher(100, 7);
  std::vector<uint64_t> consumed;
  RunMorselPipeline<uint64_t>(
      /*pool=*/nullptr, /*parallelism=*/1, dispatcher, ctx,
      [](const Morsel& m, DiskModel&, uint64_t& buf) { buf = m.index; },
      [&](const Morsel& m, const uint64_t& buf) {
        EXPECT_EQ(buf, m.index);
        consumed.push_back(m.index);
      });
  ASSERT_EQ(consumed.size(), dispatcher.num_morsels());
  for (size_t i = 0; i < consumed.size(); ++i) EXPECT_EQ(consumed[i], i);
}

TEST(MorselPipelineTest, ParallelModeConsumesInOrderExactlyOnce) {
  ThreadPool pool(4);
  DiskModel parent;
  ParallelContext ctx(parent, 4);
  MorselDispatcher dispatcher(64 * 37, 37, /*window=*/8);
  std::atomic<uint64_t> produced{0};
  std::vector<uint64_t> consumed;  // consumer runs on this thread only
  RunMorselPipeline<uint64_t>(
      &pool, 4, dispatcher, ctx,
      [&](const Morsel& m, DiskModel&, uint64_t& buf) {
        buf = m.begin;
        produced.fetch_add(1, std::memory_order_relaxed);
      },
      [&](const Morsel& m, const uint64_t& buf) {
        EXPECT_EQ(buf, m.begin);
        consumed.push_back(m.index);
      });
  EXPECT_EQ(produced.load(), dispatcher.num_morsels());
  ASSERT_EQ(consumed.size(), dispatcher.num_morsels());
  for (size_t i = 0; i < consumed.size(); ++i) EXPECT_EQ(consumed[i], i);
}

// Regression: a pool that refuses every TrySubmit (mid-destruction) must
// degrade to the inline serial path. The dispatcher's backpressure window
// here is far smaller than the morsel count, so the old fallback — which
// produced every morsel without consuming any — would block in Next()
// forever once the window filled.
TEST(MorselPipelineTest, PoolRefusalFallsBackInlineDespiteBackpressure) {
  auto pool = std::make_unique<ThreadPool>(1);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  pool->Submit([released] { released.wait(); });  // parks the only worker

  // Begin destruction on a side thread: shutdown flips, the join parks on
  // the blocked worker, and TrySubmit starts refusing.
  ThreadPool* raw = pool.get();
  std::thread destroyer([&] { pool.reset(); });
  while (raw->TrySubmit([] {}).ok()) std::this_thread::yield();

  DiskModel parent;
  ParallelContext ctx(parent, 2);
  MorselDispatcher dispatcher(100, 1, /*window=*/4);
  ASSERT_GT(dispatcher.num_morsels(), 4u);  // morsels >> window
  std::vector<uint64_t> consumed;
  RunMorselPipeline<uint64_t>(
      raw, /*parallelism=*/2, dispatcher, ctx,
      [](const Morsel& m, DiskModel&, uint64_t& buf) { buf = m.index; },
      [&](const Morsel& m, const uint64_t& buf) {
        EXPECT_EQ(buf, m.index);
        consumed.push_back(m.index);
      });
  ASSERT_EQ(consumed.size(), dispatcher.num_morsels());
  for (size_t i = 0; i < consumed.size(); ++i) EXPECT_EQ(consumed[i], i);

  release.set_value();
  destroyer.join();
}

TEST(ParallelContextTest, MergeSumsWorkerStatsIntoParent) {
  DiskModel parent;
  parent.CountTuples(5);
  ParallelContext ctx(parent, 3);
  ctx.worker_disk(0).ReadSequential(1, 0);
  ctx.worker_disk(1).ReadSequential(1, 1);
  ctx.worker_disk(1).ReadRandom(1, 9);
  ctx.worker_disk(2).CountTuples(100);
  ctx.MergeIntoParent();
  EXPECT_EQ(parent.stats().seq_pages_read, 2u);
  EXPECT_EQ(parent.stats().rand_pages_read, 1u);
  EXPECT_EQ(parent.stats().tuples_processed, 105u);
  // Workers were reset by the merge.
  EXPECT_EQ(ctx.worker_disk(1).stats().seq_pages_read, 0u);
}

TEST(ParallelContextTest, FirstWorkerFaultWinsOnMerge) {
  DiskModel parent;
  ParallelContext ctx(parent, 2);
  FaultInjector::Instance().Enable(42);
  FaultSpec spec;
  spec.probability = 1.0;
  FaultInjector::Instance().Arm("disk.read_seq", spec);
  ctx.worker_disk(0).ReadSequential(1, 0);
  ctx.worker_disk(1).ReadSequential(1, 1);
  FaultInjector::Instance().Disable();
  ASSERT_TRUE(ctx.worker_disk(0).has_fault());
  ASSERT_TRUE(ctx.worker_disk(1).has_fault());
  ctx.MergeIntoParent();
  EXPECT_TRUE(parent.has_fault());
  EXPECT_EQ(parent.TakeFault().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(ctx.worker_disk(0).has_fault());  // consumed by the merge
  EXPECT_FALSE(ctx.worker_disk(1).has_fault());  // cleared, not leaked
}

TEST(ThreadPoolTest, TrySubmitSucceedsOnALivePool) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  Result<TaskHandle> handle = pool.TrySubmit([&] { ran.fetch_add(1); });
  ASSERT_TRUE(handle.ok());
  handle.value().Wait();
  EXPECT_EQ(ran.load(), 1);
}

// The shutdown-ordering regression test: a task racing pool destruction
// gets a typed kShuttingDown refusal from TrySubmit instead of an abort or
// a use-after-free (the query server relies on this when an Engine dies
// with queries in flight; verify.sh runs this file under TSan).
TEST(ThreadPoolTest, TrySubmitRefusedTypedDuringShutdown) {
  std::atomic<bool> destroying{false};
  std::atomic<bool> refused{false};
  StatusCode refusal_code = StatusCode::kOk;
  {
    ThreadPool pool(1);
    pool.Submit([&] {
      while (!destroying.load()) std::this_thread::yield();
      // The destructor is now flipping shutting_down_; keep trying until
      // the typed refusal arrives. Accepted no-ops still run and drain.
      for (;;) {
        Result<TaskHandle> r = pool.TrySubmit([] {});
        if (!r.ok()) {
          refusal_code = r.status().code();
          refused.store(true);
          return;
        }
        std::this_thread::yield();
      }
    });
    destroying.store(true);
  }  // ~ThreadPool joins: the worker must have been refused by now
  EXPECT_TRUE(refused.load());
  EXPECT_EQ(refusal_code, StatusCode::kShuttingDown);
}

TEST(FaultInjectorTest, ConcurrentHitsAreCountedExactly) {
  FaultInjector::Instance().Enable(7);
  FaultSpec spec;
  spec.probability = 0.0;  // count hits without firing
  FaultInjector::Instance().Arm("parallel.test_site", spec);
  {
    ThreadPool pool(4);
    std::vector<TaskHandle> handles;
    for (int t = 0; t < 4; ++t) {
      handles.push_back(pool.Submit([] {
        for (int i = 0; i < 1000; ++i) FaultHit("parallel.test_site");
      }));
    }
    for (TaskHandle& h : handles) h.Wait();
  }
  EXPECT_EQ(FaultInjector::Instance().hits("parallel.test_site"), 4000u);
  FaultInjector::Instance().Disable();
}

}  // namespace
}  // namespace starshare
