// View statistics: exact per-member counts replace the uniform selectivity
// assumption, which matters on skewed (Zipf) data.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using testing::MakeQuery;
using testing::SmallSchema;

StarSchema SkewedSchema() {
  std::vector<DimensionConfig> dims;
  dims.push_back({.name = "X",
                  .top_cardinality = 2,
                  .fanouts = {3, 2},
                  .zipf_theta = 1.1});
  dims.push_back({.name = "Y", .top_cardinality = 2, .fanouts = {3, 2}});
  return StarSchema(std::move(dims), "m");
}

TEST(StatsTest, ComputeStatsCountsExactly) {
  Engine engine(SmallSchema());
  auto* base = engine.LoadFactTable({.num_rows = 5000, .seed = 111});
  ASSERT_TRUE(base->has_stats());
  // Counts per X base member must sum to the row count and match a manual
  // scan.
  std::vector<uint32_t> manual(engine.schema().dim(0).cardinality(0), 0);
  for (uint64_t r = 0; r < base->table().num_rows(); ++r) {
    ++manual[static_cast<size_t>(base->table().key(0, r))];
  }
  uint64_t total = 0;
  for (int32_t m = 0; m < static_cast<int32_t>(manual.size()); ++m) {
    const int32_t members[] = {m};
    EXPECT_EQ(base->RowsMatching(0, members), manual[static_cast<size_t>(m)]);
    total += base->RowsMatching(0, members);
  }
  EXPECT_EQ(total, base->table().num_rows());
}

TEST(StatsTest, SelectivityOfSumsMembers) {
  Engine engine(SmallSchema());
  auto* base = engine.LoadFactTable({.num_rows = 5000, .seed = 111});
  const int32_t all[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  EXPECT_DOUBLE_EQ(base->SelectivityOf(0, all), 1.0);
  const int32_t none[] = {};
  EXPECT_DOUBLE_EQ(base->SelectivityOf(0, std::span<const int32_t>(none, 0)),
                   0.0);
}

TEST(StatsTest, MatchRowsExactOnSkewedData) {
  Engine engine(SkewedSchema());
  auto* base = engine.LoadFactTable({.num_rows = 30000, .seed = 113});
  const CostModel& cost = engine.cost_model();

  // The hottest X member under Zipf 1.1 holds far more than 1/12 of rows;
  // the stats-based estimate must match the actual count, not the uniform
  // guess.
  DimensionalQuery hot = MakeQuery(engine.schema(), 1, "X", {{"X", 0, {0}}});
  uint64_t actual = 0;
  for (uint64_t r = 0; r < base->table().num_rows(); ++r) {
    if (base->table().key(0, r) == 0) ++actual;
  }
  EXPECT_NEAR(cost.MatchRows(hot, *base), static_cast<double>(actual), 0.5);
  EXPECT_GT(static_cast<double>(actual), 30000.0 / 12 * 2);  // skew is real
}

TEST(StatsTest, EstimatesPropagateThroughHierarchy) {
  Engine engine(SkewedSchema());
  auto* base = engine.LoadFactTable({.num_rows = 30000, .seed = 113});
  const CostModel& cost = engine.cost_model();
  // Predicate at the top level: stats expand it to base members and sum
  // exact counts.
  DimensionalQuery top = MakeQuery(engine.schema(), 1, "X''",
                                   {{"X", 2, {0}}});
  uint64_t actual = 0;
  for (uint64_t r = 0; r < base->table().num_rows(); ++r) {
    if (engine.schema().dim(0).MapUp(0, 2, base->table().key(0, r)) == 0) {
      ++actual;
    }
  }
  EXPECT_NEAR(cost.MatchRows(top, *base), static_cast<double>(actual), 0.5);
}

TEST(StatsTest, MaterializedViewsGetStatsToo) {
  Engine engine(SkewedSchema());
  engine.LoadFactTable({.num_rows = 20000, .seed = 115});
  auto view = engine.MaterializeView("X'Y'");
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view.value()->has_stats());
  // On the view, selectivity is over view *cells*, not base tuples: with
  // only 4 X' members the per-member cell share is ~1/4 even under skew on
  // base tuples (cells exist regardless of how many tuples they absorb).
  const int32_t members[] = {0};
  const double sel = view.value()->SelectivityOf(0, members);
  EXPECT_GT(sel, 0.1);
  EXPECT_LT(sel, 0.5);
}

TEST(StatsTest, UniformFallbackWithoutStats) {
  // A hand-constructed view without ComputeStats falls back to the uniform
  // assumption.
  StarSchema schema = SmallSchema();
  DataGenerator gen(schema, {.num_rows = 1000, .seed = 117});
  auto table = gen.Generate("base");
  MaterializedView view(schema, GroupBySpec::Base(schema), table.get());
  EXPECT_FALSE(view.has_stats());
  CostModel cost(schema, DiskTimings{}, CpuCosts{});
  DimensionalQuery q = MakeQuery(schema, 1, "X''", {{"X", 2, {0}}});
  EXPECT_DOUBLE_EQ(cost.MatchRows(q, view), 500.0);  // uniform 1/2
}

}  // namespace
}  // namespace starshare
