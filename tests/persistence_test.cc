// Table file I/O and cube save/load round trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/engine.h"
#include "storage/table_io.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using testing::BruteForce;
using testing::MakeQuery;
using testing::SmallSchema;

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("starshare_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(PersistenceTest, TableRoundTrip) {
  Table original("t", {"a", "b"}, "m");
  for (int32_t r = 0; r < 1000; ++r) {
    const int32_t keys[] = {r % 7, r % 11};
    original.AppendRow(keys, r * 0.5);
  }
  const std::string path = (dir_ / "t.sstb").string();
  ASSERT_TRUE(WriteTableFile(original, path).ok());

  auto loaded = ReadTableFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Table& t = *loaded.value();
  EXPECT_EQ(t.name(), "t");
  EXPECT_EQ(t.measure_name(), "m");
  ASSERT_EQ(t.num_key_columns(), 2u);
  EXPECT_EQ(t.key_column_name(0), "a");
  ASSERT_EQ(t.num_rows(), 1000u);
  for (uint64_t r = 0; r < 1000; ++r) {
    ASSERT_EQ(t.key(0, r), original.key(0, r));
    ASSERT_EQ(t.key(1, r), original.key(1, r));
    ASSERT_DOUBLE_EQ(t.measure(r), original.measure(r));
  }
}

TEST_F(PersistenceTest, EmptyTableRoundTrip) {
  Table original("empty", {"k"}, "m");
  const std::string path = (dir_ / "e.sstb").string();
  ASSERT_TRUE(WriteTableFile(original, path).ok());
  auto loaded = ReadTableFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->num_rows(), 0u);
}

TEST_F(PersistenceTest, ReadErrors) {
  EXPECT_EQ(ReadTableFile((dir_ / "missing.sstb").string()).status().code(),
            StatusCode::kNotFound);

  // Not a table file.
  const std::string junk = (dir_ / "junk.sstb").string();
  FILE* f = std::fopen(junk.c_str(), "wb");
  std::fwrite("garbage", 1, 7, f);
  std::fclose(f);
  EXPECT_EQ(ReadTableFile(junk).status().code(),
            StatusCode::kInvalidArgument);

  // Truncated file: the v3 size cross-check flags it as corruption.
  Table t("t", {"k"}, "m");
  const int32_t key = 1;
  for (int i = 0; i < 100; ++i) t.AppendRow(&key, 1.0);
  const std::string path = (dir_ / "trunc.sstb").string();
  ASSERT_TRUE(WriteTableFile(t, path).ok());
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) / 2);
  EXPECT_EQ(ReadTableFile(path).status().code(), StatusCode::kCorruption);
}

// Flips one bit in the file at `offset` bytes from the start (negative:
// from the end).
void FlipBitAt(const std::filesystem::path& path, int64_t offset) {
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, static_cast<long>(offset), offset < 0 ? SEEK_END : SEEK_SET);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  std::fseek(f, -1, SEEK_CUR);
  std::fputc(c ^ 0x10, f);
  std::fclose(f);
}

TEST_F(PersistenceTest, LoadCubeSkipsCorruptViewFile) {
  Engine original(SmallSchema());
  original.LoadFactTable({.num_rows = 4000, .seed = 33});
  ASSERT_TRUE(original.MaterializeView("X'Y'").ok());
  ASSERT_TRUE(original.MaterializeView("X''Z'").ok());
  ASSERT_TRUE(original.SaveCube(dir_.string()).ok());

  // view_0 is the base; corrupt one of the derived views.
  FlipBitAt(dir_ / "view_1.sstb", -64);

  // Strict load fails with a typed corruption status...
  Engine strict(SmallSchema());
  EXPECT_EQ(strict.LoadCube(dir_.string()).code(), StatusCode::kCorruption);

  // ...while a lenient load skips the damaged (rebuildable) view and
  // still answers queries correctly from what survived.
  Engine lenient(SmallSchema());
  std::vector<std::string> skipped;
  ASSERT_TRUE(lenient.LoadCube(dir_.string(), &skipped).ok());
  EXPECT_EQ(skipped.size(), 1u);
  EXPECT_EQ(lenient.views().size(), 2u);
  std::vector<DimensionalQuery> queries;
  queries.push_back(
      MakeQuery(lenient.schema(), 1, "X'Y''", {{"X", 2, {0}}}));
  const auto results = lenient.ExecuteNaive(queries);
  ASSERT_TRUE(results[0].ok());
  EXPECT_TRUE(results[0].result.ApproxEquals(BruteForce(
      lenient.schema(), lenient.base_view()->table(), queries[0])));
}

TEST_F(PersistenceTest, LoadCubeCorruptBaseAlwaysFails) {
  Engine original(SmallSchema());
  original.LoadFactTable({.num_rows = 4000, .seed = 34});
  ASSERT_TRUE(original.SaveCube(dir_.string()).ok());
  FlipBitAt(dir_ / "view_0.sstb", -64);

  Engine loaded(SmallSchema());
  std::vector<std::string> skipped;
  // The base fact table is not rebuildable, so even the lenient load
  // must refuse.
  EXPECT_EQ(loaded.LoadCube(dir_.string(), &skipped).code(),
            StatusCode::kCorruption);
  EXPECT_TRUE(skipped.empty());
}

TEST_F(PersistenceTest, CubeSaveLoadRoundTrip) {
  Engine original(SmallSchema());
  original.LoadFactTable({.num_rows = 8000, .seed = 121});
  ASSERT_TRUE(original.MaterializeView("X'Y'").ok());
  ASSERT_TRUE(original.MaterializeView("X''Z'", /*clustered=*/true).ok());
  ASSERT_TRUE(original.SaveCube(dir_.string()).ok());

  Engine loaded(SmallSchema());
  ASSERT_TRUE(loaded.LoadCube(dir_.string()).ok());
  EXPECT_EQ(loaded.views().size(), 3u);
  EXPECT_EQ(loaded.base_view()->table().num_rows(), 8000u);
  MaterializedView* clustered = loaded.views().FindByName("X''Z'");
  ASSERT_NE(clustered, nullptr);
  EXPECT_TRUE(clustered->clustered());
  EXPECT_FALSE(loaded.views().FindByName("X'Y'")->clustered());
  EXPECT_TRUE(loaded.base_view()->has_stats());

  // Queries against the loaded cube match brute force on the loaded base.
  std::vector<DimensionalQuery> queries;
  queries.push_back(MakeQuery(loaded.schema(), 1, "X'Y''", {{"X", 2, {0}}}));
  const auto results = loaded.ExecuteNaive(queries);
  EXPECT_TRUE(results[0].result.ApproxEquals(BruteForce(
      loaded.schema(), loaded.base_view()->table(), queries[0])));
}

TEST_F(PersistenceTest, LoadRejectsNonEmptyEngine) {
  Engine original(SmallSchema());
  original.LoadFactTable({.num_rows = 100, .seed = 1});
  ASSERT_TRUE(original.SaveCube(dir_.string()).ok());
  EXPECT_EQ(original.LoadCube(dir_.string()).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PersistenceTest, LoadMissingDirectoryFails) {
  Engine engine(SmallSchema());
  EXPECT_EQ(engine.LoadCube((dir_ / "nope").string()).code(),
            StatusCode::kNotFound);
}

TEST_F(PersistenceTest, SaveWithoutDataFails) {
  Engine engine(SmallSchema());
  EXPECT_EQ(engine.SaveCube(dir_.string()).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace starshare
