#include <gtest/gtest.h>

#include "query/predicate.h"
#include "query/query.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using testing::MakeQuery;

StarSchema Paper() { return StarSchema::PaperTestSchema(); }

TEST(DimPredicateTest, NormalizeSortsAndDedups) {
  DimPredicate p{0, 2, {2, 0, 2, 1}};
  p.Normalize();
  EXPECT_EQ(p.members, (std::vector<int32_t>{0, 1, 2}));
}

TEST(DimPredicateTest, MatchesMapsUp) {
  StarSchema s = Paper();
  DimPredicate p{0, 2, {0}};  // A'' = A1
  // Base members 0..14 map to A1 (fanouts 5*3).
  EXPECT_TRUE(p.Matches(s.dim(0), 0, 0));
  EXPECT_TRUE(p.Matches(s.dim(0), 0, 14));
  EXPECT_FALSE(p.Matches(s.dim(0), 0, 15));
  // From the middle level: A' members 0..2 are under A1.
  EXPECT_TRUE(p.Matches(s.dim(0), 1, 2));
  EXPECT_FALSE(p.Matches(s.dim(0), 1, 3));
  // At the predicate's own level.
  EXPECT_TRUE(p.Matches(s.dim(0), 2, 0));
}

TEST(DimPredicateTest, Selectivity) {
  StarSchema s = Paper();
  DimPredicate top{0, 2, {0}};
  EXPECT_DOUBLE_EQ(top.Selectivity(s.dim(0)), 1.0 / 3);
  DimPredicate mid{0, 1, {0, 1, 2}};
  EXPECT_DOUBLE_EQ(mid.Selectivity(s.dim(0)), 3.0 / 9);
  DimPredicate d{3, 1, {0}};
  EXPECT_DOUBLE_EQ(d.Selectivity(s.dim(3)), 1.0 / 35);
}

TEST(DimPredicateTest, MembersAtLevelExpandsDescendants) {
  StarSchema s = Paper();
  DimPredicate p{0, 2, {1}};  // A2
  EXPECT_EQ(p.MembersAtLevel(s.dim(0), 2), (std::vector<int32_t>{1}));
  EXPECT_EQ(p.MembersAtLevel(s.dim(0), 1), (std::vector<int32_t>{3, 4, 5}));
  EXPECT_EQ(p.MembersAtLevel(s.dim(0), 0).size(), 15u);
  EXPECT_EQ(p.MembersAtLevel(s.dim(0), 0).front(), 15);
}

TEST(DimPredicateTest, ToStringNamesMembers) {
  StarSchema s = Paper();
  DimPredicate p{0, 2, {0, 2}};
  EXPECT_EQ(p.ToString(s), "A'' IN {A1, A3}");
}

TEST(QueryPredicateTest, ForDim) {
  StarSchema s = Paper();
  QueryPredicate q;
  q.AddConjunct(s.dim(0), DimPredicate{0, 2, {0}});
  EXPECT_NE(q.ForDim(0), nullptr);
  EXPECT_EQ(q.ForDim(1), nullptr);
}

TEST(QueryPredicateTest, AddConjunctSameDimIntersects) {
  StarSchema s = Paper();
  QueryPredicate q;
  q.AddConjunct(s.dim(0), DimPredicate{0, 2, {0}});        // under A1
  q.AddConjunct(s.dim(0), DimPredicate{0, 1, {1, 2, 3}});  // AA2,AA3,AA4
  const DimPredicate* p = q.ForDim(0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->level, 1);
  // AA4 (id 3) is under A2, so only AA2, AA3 survive.
  EXPECT_EQ(p->members, (std::vector<int32_t>{1, 2}));
}

TEST(QueryPredicateTest, MatchesBaseRowConjunction) {
  StarSchema s = Paper();
  QueryPredicate q;
  q.AddConjunct(s.dim(0), DimPredicate{0, 2, {0}});  // A under A1: 0..14
  q.AddConjunct(s.dim(2), DimPredicate{2, 2, {2}});  // C under C3: 30..44
  int32_t yes[] = {3, 0, 40, 0};
  int32_t no_a[] = {20, 0, 40, 0};
  int32_t no_c[] = {3, 0, 3, 0};
  EXPECT_TRUE(q.MatchesBaseRow(s, yes));
  EXPECT_FALSE(q.MatchesBaseRow(s, no_a));
  EXPECT_FALSE(q.MatchesBaseRow(s, no_c));
}

TEST(QueryPredicateTest, SelectivityIsProduct) {
  StarSchema s = Paper();
  QueryPredicate q;
  q.AddConjunct(s.dim(0), DimPredicate{0, 2, {0}});
  q.AddConjunct(s.dim(3), DimPredicate{3, 1, {0}});
  EXPECT_DOUBLE_EQ(q.Selectivity(s), (1.0 / 3) * (1.0 / 35));
}

TEST(QueryPredicateTest, ConstraintLevel) {
  StarSchema s = Paper();
  QueryPredicate q;
  q.AddConjunct(s.dim(0), DimPredicate{0, 1, {0}});
  EXPECT_EQ(q.ConstraintLevel(s, 0), 1);
  EXPECT_EQ(q.ConstraintLevel(s, 1), s.dim(1).all_level());
}

TEST(QueryPredicateTest, EmptyPredicateToString) {
  StarSchema s = Paper();
  QueryPredicate q;
  EXPECT_EQ(q.ToString(s), "TRUE");
  EXPECT_DOUBLE_EQ(q.Selectivity(s), 1.0);
  int32_t keys[] = {0, 0, 0, 0};
  EXPECT_TRUE(q.MatchesBaseRow(s, keys));
}

// ------------------------------------------------------ DimensionalQuery

TEST(DimensionalQueryTest, RequiredSpecCombinesTargetAndPredicates) {
  StarSchema s = Paper();
  // Target A''B'C'' with a predicate on A at level 1 and a slicer on D at
  // level 1 (D not in the target).
  DimensionalQuery q = MakeQuery(s, 1, "A''B'C''",
                                 {{"A", 1, {0}}, {"D", 1, {0}}});
  const GroupBySpec required = q.RequiredSpec(s);
  EXPECT_EQ(required.level(0), 1);  // min(target 2, pred 1)
  EXPECT_EQ(required.level(1), 1);  // target only
  EXPECT_EQ(required.level(2), 2);
  EXPECT_EQ(required.level(3), 1);  // slicer only
}

TEST(DimensionalQueryTest, SelectivityDelegatesToPredicate) {
  StarSchema s = Paper();
  DimensionalQuery q = MakeQuery(s, 1, "A''", {{"A", 2, {0, 1}}});
  EXPECT_DOUBLE_EQ(q.Selectivity(s), 2.0 / 3);
}

TEST(DimensionalQueryTest, EstimatedGroupsUnrestricted) {
  StarSchema s = Paper();
  DimensionalQuery q = MakeQuery(s, 1, "A''B''", {});
  EXPECT_EQ(q.EstimatedGroups(s), 9u);
}

TEST(DimensionalQueryTest, EstimatedGroupsWithSelectionAboveOutput) {
  StarSchema s = Paper();
  // Group by A' restricted to children of A1: exactly 3 groups.
  DimensionalQuery q = MakeQuery(s, 1, "A'", {{"A", 2, {0}}});
  EXPECT_EQ(q.EstimatedGroups(s), 3u);
}

TEST(DimensionalQueryTest, EstimatedGroupsAtOutputLevel) {
  StarSchema s = Paper();
  DimensionalQuery q = MakeQuery(s, 1, "A'", {{"A", 1, {2, 5}}});
  EXPECT_EQ(q.EstimatedGroups(s), 2u);
}

TEST(DimensionalQueryTest, ToStringReadable) {
  StarSchema s = Paper();
  DimensionalQuery q = MakeQuery(s, 7, "A''B''", {{"A", 2, {1}}});
  const std::string text = q.ToString(s);
  EXPECT_NE(text.find("Q7"), std::string::npos);
  EXPECT_NE(text.find("GROUP BY A''B''"), std::string::npos);
  EXPECT_NE(text.find("A'' IN {A2}"), std::string::npos);
}

TEST(DimensionalQueryTest, ToSqlSelectJoinWhereGroupBy) {
  StarSchema s = Paper();
  DimensionalQuery q = MakeQuery(s, 1, "A'B''",
                                 {{"A", 1, {0, 1}}, {"D", 1, {0}}});
  const std::string sql = q.ToSql(s, "ABCD");
  EXPECT_NE(sql.find("SELECT Adim.A_lvl1, Bdim.B_lvl2, SUM(ABCD.dollars)"),
            std::string::npos)
      << sql;
  EXPECT_NE(sql.find("FROM ABCD, Adim, Bdim, Ddim"), std::string::npos);
  EXPECT_NE(sql.find("ABCD.A = Adim.A"), std::string::npos);
  EXPECT_NE(sql.find("Adim.A_lvl1 IN ('AA1', 'AA2')"), std::string::npos);
  EXPECT_NE(sql.find("Ddim.D_lvl1 = 'DD1'"), std::string::npos);
  EXPECT_NE(sql.find("GROUP BY Adim.A_lvl1, Bdim.B_lvl2"),
            std::string::npos);
  // C is neither grouped nor restricted: no join with Cdim.
  EXPECT_EQ(sql.find("Cdim"), std::string::npos);
}

TEST(DimensionalQueryTest, ToSqlGrandTotalHasNoGroupBy) {
  StarSchema s = Paper();
  DimensionalQuery q = MakeQuery(s, 1, "()", {});
  const std::string sql = q.ToSql(s);
  EXPECT_NE(sql.find("SELECT SUM(F.dollars)"), std::string::npos) << sql;
  EXPECT_EQ(sql.find("GROUP BY"), std::string::npos);
  EXPECT_EQ(sql.find("WHERE"), std::string::npos);
}

TEST(DimensionalQueryTest, ToSqlUsesCustomLevelNames) {
  std::vector<DimensionConfig> dims;
  dims.push_back({.name = "Time", .top_cardinality = 2, .fanouts = {3}});
  StarSchema s(std::move(dims), "sales");
  const_cast<Hierarchy&>(s.dim(0)).SetLevelNames({"Month", "Quarter"});
  DimensionalQuery q = MakeQuery(s, 1, "Time'", {{"Time", 1, {0}}});
  const std::string sql = q.ToSql(s);
  EXPECT_NE(sql.find("Timedim.Quarter"), std::string::npos) << sql;
}

TEST(AggOpTest, Names) {
  EXPECT_STREQ(AggOpName(AggOp::kSum), "SUM");
  EXPECT_STREQ(AggOpName(AggOp::kCount), "COUNT");
  EXPECT_STREQ(AggOpName(AggOp::kMin), "MIN");
  EXPECT_STREQ(AggOpName(AggOp::kMax), "MAX");
  EXPECT_STREQ(AggOpName(AggOp::kAvg), "AVG");
}

}  // namespace
}  // namespace starshare
