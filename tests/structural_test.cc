// Structural / robustness coverage: deep hierarchies and wide schemas,
// DropView, CSV export, the GG MergeClass path, and the exhaustive
// optimizer's node-cap fallback.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "opt/exhaustive.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using testing::BruteForce;
using testing::MakeQuery;
using testing::SmallSchema;

// Five dimensions, one with a 5-level hierarchy — deeper and wider than
// anything else in the suite.
StarSchema DeepSchema() {
  std::vector<DimensionConfig> dims;
  dims.push_back({.name = "P", .top_cardinality = 2, .fanouts = {2, 2, 2, 2}});
  dims.push_back({.name = "Q", .top_cardinality = 3, .fanouts = {4}});
  dims.push_back({.name = "R", .top_cardinality = 2, .fanouts = {5, 2}});
  dims.push_back({.name = "S", .top_cardinality = 4, .fanouts = {}});
  dims.push_back({.name = "T", .top_cardinality = 2, .fanouts = {6}});
  return StarSchema(std::move(dims), "v");
}

TEST(DeepSchemaTest, HierarchyArithmeticAtDepthFive) {
  StarSchema s = DeepSchema();
  const Hierarchy& p = s.dim(0);
  EXPECT_EQ(p.num_levels(), 5);
  EXPECT_EQ(p.cardinality(0), 32u);
  EXPECT_EQ(p.cardinality(4), 2u);
  EXPECT_EQ(p.MapUp(0, 4, 31), 1);
  EXPECT_EQ(p.MapUp(1, 3, 7), 1);
  EXPECT_EQ(p.DescendantsAtLevel(4, 0, 0).size(), 16u);
  EXPECT_EQ(p.MemberName(0, 0), "PPPPP1");
  EXPECT_EQ(p.FindMember("PPP3").value(), (std::pair<int, int32_t>{2, 2}));
}

TEST(DeepSchemaTest, EndToEndAcrossFiveDims) {
  Engine engine(DeepSchema());
  engine.LoadFactTable({.num_rows = 12000, .seed = 151});
  ASSERT_TRUE(engine.MaterializeView("P''Q'R'T").ok());
  ASSERT_TRUE(engine.MaterializeView("P'''S").ok());

  std::vector<DimensionalQuery> queries;
  queries.push_back(MakeQuery(engine.schema(), 1, "P'''Q'",
                              {{"P", 4, {0}}, {"T", 1, {1}}}));
  queries.push_back(MakeQuery(engine.schema(), 2, "P''''S", {{"S", 0, {2}}}));
  queries.push_back(MakeQuery(engine.schema(), 3, "R''T'", {}));

  for (OptimizerKind kind :
       {OptimizerKind::kTplo, OptimizerKind::kGlobalGreedy,
        OptimizerKind::kExhaustive}) {
    const GlobalPlan plan = engine.Optimize(queries, kind);
    const auto results = engine.Execute(plan);
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_TRUE(results[i].result.ApproxEquals(BruteForce(
          engine.schema(), engine.base_view()->table(), queries[i])))
          << OptimizerKindName(kind) << " Q" << i + 1;
    }
  }
}

TEST(DropViewTest, RemovesFromPlansAndCatalog) {
  Engine engine(SmallSchema());
  engine.LoadFactTable({.num_rows = 8000, .seed = 153});
  ASSERT_TRUE(engine.MaterializeView("X'Y'").ok());
  std::vector<DimensionalQuery> queries;
  queries.push_back(MakeQuery(engine.schema(), 1, "X'Y''", {{"X", 2, {0}}}));

  GlobalPlan with_view =
      engine.Optimize(queries, OptimizerKind::kGlobalGreedy);
  EXPECT_EQ(with_view.classes[0].base->name(), "X'Y'");

  ASSERT_TRUE(engine.DropView("X'Y'").ok());
  EXPECT_EQ(engine.views().FindByName("X'Y'"), nullptr);
  EXPECT_EQ(engine.catalog().Find("X'Y'"), nullptr);

  // Planning falls back to the base and stays correct.
  GlobalPlan without =
      engine.Optimize(queries, OptimizerKind::kGlobalGreedy);
  EXPECT_EQ(without.classes[0].base, engine.base_view());
  const auto results = engine.Execute(without);
  EXPECT_TRUE(results[0].result.ApproxEquals(BruteForce(
      engine.schema(), engine.base_view()->table(), queries[0])));

  // Error paths.
  EXPECT_EQ(engine.DropView("X'Y'").code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.DropView("XYZ").code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(engine.DropView("garbage!").ok());
}

TEST(CsvTest, HeaderNamesAndRoundTrippableValues) {
  StarSchema s = SmallSchema();
  QueryResult r(GroupBySpec::Parse("X''Z'", s).value(), AggOp::kSum);
  r.AddRow({0, 2}, 1234.5625);
  r.AddRow({1, 0}, -0.125);
  r.Canonicalize();
  const std::string csv = r.ToCsv(s);
  // Z has two levels, so Z' (the top) uses single-copy names Z1..Z3.
  EXPECT_EQ(csv,
            "X'',Z',SUM_amount\n"
            "X1,Z3,1234.5625\n"
            "X2,Z1,-0.125\n");
}

TEST(GlobalGreedyTest, MergeClassFoldsConvergingClasses) {
  // Three queries processed in GroupbyLevel order: the first two open
  // classes on different views; the third makes one class rebase onto the
  // other's base, which must merge them (one class, one scan).
  Engine engine(SmallSchema());
  engine.LoadFactTable({.num_rows = 30000, .seed = 155});
  ASSERT_TRUE(engine.MaterializeView("X'Y'Z'").ok());

  std::vector<DimensionalQuery> queries;
  // All three answerable by X'Y'Z'; their "local best" views differ only
  // through the shared base. With one non-base view, GG consolidates all
  // onto it and MergeClass guarantees no duplicate bases.
  queries.push_back(MakeQuery(engine.schema(), 1, "X'Y'", {{"X", 2, {0}}}));
  queries.push_back(MakeQuery(engine.schema(), 2, "Y'Z'", {{"Y", 2, {1}}}));
  queries.push_back(MakeQuery(engine.schema(), 3, "X'Z'", {{"Z", 1, {1}}}));

  const GlobalPlan plan =
      engine.Optimize(queries, OptimizerKind::kGlobalGreedy);
  std::set<const MaterializedView*> bases;
  for (const auto& cls : plan.classes) {
    EXPECT_TRUE(bases.insert(cls.base).second) << "duplicate class base";
  }
  EXPECT_EQ(plan.classes.size(), 1u);
  EXPECT_EQ(plan.classes[0].base->name(), "X'Y'Z'");
}

TEST(ExhaustiveTest, NodeCapStillReturnsValidPlan) {
  // 10 queries x many candidate views overflow any reasonable node budget;
  // the optimizer must still return a well-formed plan no worse than GG.
  Engine engine(SmallSchema());
  engine.LoadFactTable({.num_rows = 5000, .seed = 157});
  for (const char* spec :
       {"X'Y'Z", "X'Y'Z'", "X''Y'Z", "X'Y''Z", "X'Y'", "X''Z'", "Y'Z'"}) {
    ASSERT_TRUE(engine.MaterializeView(spec).ok()) << spec;
  }
  std::vector<DimensionalQuery> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(MakeQuery(engine.schema(), i + 1, "X''Y''",
                                {{"X", 2, {i % 2}}, {"Y", 2, {(i / 2) % 2}}}));
  }
  const GlobalPlan optimal =
      engine.Optimize(queries, OptimizerKind::kExhaustive);
  const GlobalPlan gg =
      engine.Optimize(queries, OptimizerKind::kGlobalGreedy);
  EXPECT_EQ(optimal.NumQueries(), 10u);
  EXPECT_LE(optimal.EstMs(), gg.EstMs() + 1e-9);
  const auto results = engine.Execute(optimal);
  EXPECT_EQ(results.size(), 10u);
}

}  // namespace
}  // namespace starshare
