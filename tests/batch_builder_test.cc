// Batch cube construction: BuildMany / Engine::MaterializeViews must be
// byte-identical to one-at-a-time builds while scanning the source once.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "cube/view_builder.h"
#include "schema/data_generator.h"
#include "tests/test_util.h"

namespace starshare {
namespace {

using testing::SmallSchema;

TEST(BatchBuilderTest, MatchesIndividualBuilds) {
  StarSchema schema = SmallSchema();
  DiskModel disk;
  DataGenerator gen(schema, {.num_rows = 9000, .seed = 101});
  auto base_table = gen.Generate("base");
  MaterializedView base(schema, GroupBySpec::Base(schema),
                        base_table.get());
  ViewBuilder builder(schema);

  std::vector<GroupBySpec> targets;
  for (const char* text : {"X'Y'Z", "X''Y''", "XZ'", "Y'"}) {
    targets.push_back(GroupBySpec::Parse(text, schema).value());
  }
  const auto batch = builder.BuildMany(base, targets, disk);
  ASSERT_EQ(batch.size(), targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    const auto single = builder.Build(base, targets[i], disk, "single");
    ASSERT_EQ(batch[i]->num_rows(), single->num_rows()) << i;
    for (uint64_t r = 0; r < single->num_rows(); ++r) {
      for (size_t c = 0; c < single->num_key_columns(); ++c) {
        ASSERT_EQ(batch[i]->key(c, r), single->key(c, r)) << i;
      }
      ASSERT_NEAR(batch[i]->measure(r), single->measure(r), 1e-9) << i;
    }
  }
}

TEST(BatchBuilderTest, ScansSourceExactlyOnce) {
  StarSchema schema = SmallSchema();
  DiskModel disk;
  DataGenerator gen(schema, {.num_rows = 9000, .seed = 101});
  auto base_table = gen.Generate("base");
  MaterializedView base(schema, GroupBySpec::Base(schema),
                        base_table.get());
  ViewBuilder builder(schema);

  std::vector<GroupBySpec> targets = {
      GroupBySpec::Parse("X'Y'", schema).value(),
      GroupBySpec::Parse("X''Z'", schema).value(),
      GroupBySpec::Parse("Y''", schema).value(),
  };
  disk.ResetStats();
  const auto batch = builder.BuildMany(base, targets, disk);
  EXPECT_EQ(disk.stats().seq_pages_read, base_table->num_pages());
  uint64_t written = 0;
  for (const auto& t : batch) written += t->num_pages();
  EXPECT_EQ(disk.stats().pages_written, written);
}

TEST(BatchBuilderTest, ClusteredBatchIsSorted) {
  StarSchema schema = SmallSchema();
  DiskModel disk;
  DataGenerator gen(schema, {.num_rows = 5000, .seed = 103});
  auto base_table = gen.Generate("base");
  MaterializedView base(schema, GroupBySpec::Base(schema),
                        base_table.get());
  ViewBuilder builder(schema);
  const auto batch = builder.BuildMany(
      base, {GroupBySpec::Parse("X'Y'", schema).value()}, disk,
      /*clustered=*/true);
  const Table& t = *batch[0];
  for (uint64_t r = 1; r < t.num_rows(); ++r) {
    EXPECT_LT(std::make_pair(t.key(0, r - 1), t.key(1, r - 1)),
              std::make_pair(t.key(0, r), t.key(1, r)));
  }
}

TEST(EngineBatchTest, MaterializeViewsRegistersAll) {
  Engine engine(SmallSchema());
  engine.LoadFactTable({.num_rows = 6000, .seed = 105});
  engine.ConsumeIoStats();
  auto views = engine.MaterializeViews({"X'Y'", "X''Z'", "Y''"});
  ASSERT_TRUE(views.ok()) << views.status().ToString();
  EXPECT_EQ(views.value().size(), 3u);
  const IoStats io = engine.ConsumeIoStats();
  EXPECT_EQ(io.seq_pages_read, engine.base_view()->table().num_pages());
  for (const char* name : {"X'Y'", "X''Z'", "Y''"}) {
    EXPECT_NE(engine.views().FindByName(name), nullptr) << name;
    EXPECT_NE(engine.catalog().Find(name), nullptr) << name;
  }
}

TEST(EngineBatchTest, FailsAtomicallyOnBadSpec) {
  Engine engine(SmallSchema());
  engine.LoadFactTable({.num_rows = 1000, .seed = 105});
  // Second spec is garbage: nothing should be materialized.
  auto views = engine.MaterializeViews({"X'Y'", "NOPE"});
  EXPECT_FALSE(views.ok());
  EXPECT_EQ(engine.views().FindByName("X'Y'"), nullptr);

  // Duplicate spec also fails before any work.
  ASSERT_TRUE(engine.MaterializeView("Y''").ok());
  auto dup = engine.MaterializeViews({"X''", "Y''"});
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(engine.views().FindByName("X''"), nullptr);
}

TEST(EngineBatchTest, EmptyBatchRejected) {
  Engine engine(SmallSchema());
  engine.LoadFactTable({.num_rows = 100, .seed = 105});
  EXPECT_FALSE(engine.MaterializeViews({}).ok());
}

}  // namespace
}  // namespace starshare
