#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/disk_model.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/table.h"

namespace starshare {
namespace {

// ------------------------------------------------------------------ page

TEST(PageTest, PagesForBytes) {
  EXPECT_EQ(PagesForBytes(0), 0u);
  EXPECT_EQ(PagesForBytes(1), 1u);
  EXPECT_EQ(PagesForBytes(kPageSizeBytes), 1u);
  EXPECT_EQ(PagesForBytes(kPageSizeBytes + 1), 2u);
  EXPECT_EQ(PagesForBytes(10 * kPageSizeBytes), 10u);
}

// -------------------------------------------------------------- io_stats

TEST(IoStatsTest, AddAndSubtract) {
  IoStats a{.seq_pages_read = 10, .rand_pages_read = 3};
  IoStats b{.seq_pages_read = 4, .rand_pages_read = 1};
  a += b;
  EXPECT_EQ(a.seq_pages_read, 14u);
  EXPECT_EQ(a.rand_pages_read, 4u);
  const IoStats d = a - b;
  EXPECT_EQ(d.seq_pages_read, 10u);
  EXPECT_EQ(d.rand_pages_read, 3u);
}

TEST(IoStatsTest, TotalPagesRead) {
  IoStats s{.seq_pages_read = 5, .rand_pages_read = 2, .index_pages_read = 3,
            .pages_written = 100, .cached_pages = 50};
  EXPECT_EQ(s.TotalPagesRead(), 10u);  // writes and cache hits excluded
}

TEST(IoStatsTest, ToStringMentionsCounters) {
  IoStats s{.seq_pages_read = 7};
  EXPECT_NE(s.ToString().find("seq=7"), std::string::npos);
}

// ----------------------------------------------------------- buffer pool

TEST(BufferPoolTest, ZeroCapacityNeverHits) {
  BufferPool pool(0);
  EXPECT_FALSE(pool.Access(1, 0));
  EXPECT_FALSE(pool.Access(1, 0));
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 2u);
}

TEST(BufferPoolTest, SecondAccessHits) {
  BufferPool pool(8);
  EXPECT_FALSE(pool.Access(1, 5));
  EXPECT_TRUE(pool.Access(1, 5));
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPoolTest, DistinctTablesDistinctPages) {
  BufferPool pool(8);
  pool.Access(1, 5);
  EXPECT_FALSE(pool.Access(2, 5));  // same page id, different table
}

TEST(BufferPoolTest, LruEviction) {
  BufferPool pool(2);
  pool.Access(1, 0);
  pool.Access(1, 1);
  pool.Access(1, 2);                 // evicts page 0
  EXPECT_FALSE(pool.Access(1, 0));   // page 0 gone (this evicts page 1)
  EXPECT_TRUE(pool.Access(1, 2));    // page 2 still resident
}

TEST(BufferPoolTest, AccessRefreshesRecency) {
  BufferPool pool(2);
  pool.Access(1, 0);
  pool.Access(1, 1);
  pool.Access(1, 0);                // 0 becomes MRU
  pool.Access(1, 2);                // evicts 1, not 0
  EXPECT_TRUE(pool.Access(1, 0));
}

TEST(BufferPoolTest, ClearDropsEverything) {
  BufferPool pool(4);
  pool.Access(1, 0);
  pool.Clear();
  EXPECT_EQ(pool.resident_pages(), 0u);
  EXPECT_FALSE(pool.Access(1, 0));
}

// ------------------------------------------------------------ disk model

TEST(DiskModelTest, ChargesSequentialAndRandom) {
  DiskModel disk;
  disk.ReadSequential(1, 0);
  disk.ReadSequential(1, 1);
  disk.ReadRandom(1, 7);
  disk.ReadIndexPages(3);
  disk.WritePages(2);
  EXPECT_EQ(disk.stats().seq_pages_read, 2u);
  EXPECT_EQ(disk.stats().rand_pages_read, 1u);
  EXPECT_EQ(disk.stats().index_pages_read, 3u);
  EXPECT_EQ(disk.stats().pages_written, 2u);
}

TEST(DiskModelTest, BufferPoolAbsorbsRereads) {
  BufferPool pool(16);
  DiskModel disk;
  disk.AttachBufferPool(&pool);
  disk.ReadSequential(1, 0);
  disk.ReadSequential(1, 0);
  EXPECT_EQ(disk.stats().seq_pages_read, 1u);
  EXPECT_EQ(disk.stats().cached_pages, 1u);
}

TEST(DiskModelTest, ModeledIoUsesTimings) {
  DiskTimings timings{.seq_page_ms = 2.0, .rand_page_ms = 20.0,
                      .index_page_ms = 1.0, .write_page_ms = 0.5};
  DiskModel disk(timings);
  disk.ReadSequential(1, 0);
  disk.ReadRandom(1, 1);
  disk.ReadIndexPages(4);
  disk.WritePages(2);
  EXPECT_DOUBLE_EQ(disk.ModeledIoMs(), 2.0 + 20.0 + 4.0 + 1.0);
}

TEST(DiskModelTest, ResetStats) {
  DiskModel disk;
  disk.ReadSequential(1, 0);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().seq_pages_read, 0u);
}

// ----------------------------------------------------------------- table

Table MakeTable(uint64_t rows, size_t keys = 2) {
  std::vector<std::string> names;
  for (size_t i = 0; i < keys; ++i) names.push_back("k" + std::to_string(i));
  Table t("t", names, "m");
  std::vector<int32_t> key(keys);
  for (uint64_t r = 0; r < rows; ++r) {
    for (size_t i = 0; i < keys; ++i) key[i] = static_cast<int32_t>(r % 10);
    t.AppendRow(key.data(), static_cast<double>(r));
  }
  return t;
}

TEST(TableTest, Geometry) {
  Table t = MakeTable(1000, 4);
  EXPECT_EQ(t.num_rows(), 1000u);
  EXPECT_EQ(t.tuple_width_bytes(), 4u * 4 + 8);  // 24 bytes
  EXPECT_EQ(t.rows_per_page(), kPageSizeBytes / 24);
  EXPECT_EQ(t.num_pages(), PagesForBytes(1000 * 24));
  EXPECT_EQ(t.PageOfRow(0), 0u);
  EXPECT_EQ(t.PageOfRow(t.rows_per_page()), 1u);
}

TEST(TableTest, EmptyTableHasNoPages) {
  Table t("e", {"k"}, "m");
  EXPECT_EQ(t.num_pages(), 0u);
}

TEST(TableTest, AppendAndRead) {
  Table t("t", {"a", "b"}, "m");
  const int32_t keys[] = {3, 9};
  t.AppendRow(keys, 2.5);
  EXPECT_EQ(t.key(0, 0), 3);
  EXPECT_EQ(t.key(1, 0), 9);
  EXPECT_DOUBLE_EQ(t.measure(0), 2.5);
}

TEST(TableTest, ScanChargesOnePagePerPage) {
  Table t = MakeTable(5000, 4);
  DiskModel disk;
  uint64_t rows_seen = 0;
  t.ScanPages(disk, [&](uint64_t begin, uint64_t end) {
    rows_seen += end - begin;
  });
  EXPECT_EQ(rows_seen, 5000u);
  EXPECT_EQ(disk.stats().seq_pages_read, t.num_pages());
}

TEST(TableTest, ScanBatchesAlignToPages) {
  Table t = MakeTable(1000, 4);
  DiskModel disk;
  const uint64_t rpp = t.rows_per_page();
  uint64_t expected_begin = 0;
  t.ScanPages(disk, [&](uint64_t begin, uint64_t end) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_LE(end - begin, rpp);
    expected_begin = end;
  });
  EXPECT_EQ(expected_begin, 1000u);
}

TEST(TableTest, ProbeChargesDistinctPagesOnly) {
  Table t = MakeTable(5000, 4);
  DiskModel disk;
  const uint64_t rpp = t.rows_per_page();
  // Three probes on page 0, two on page 2.
  std::vector<uint64_t> positions = {0, 1, 2, 2 * rpp, 2 * rpp + 1};
  uint64_t seen = 0;
  t.ProbePositions(disk, positions, [&](uint64_t) { ++seen; });
  EXPECT_EQ(seen, 5u);
  EXPECT_EQ(disk.stats().rand_pages_read, 2u);
}

TEST(TableTest, ProbeEmptyPositions) {
  Table t = MakeTable(100, 2);
  DiskModel disk;
  t.ProbePositions(disk, {}, [](uint64_t) { FAIL(); });
  EXPECT_EQ(disk.stats().rand_pages_read, 0u);
}

// --------------------------------------------------------------- catalog

TEST(CatalogTest, RegisterAssignsDistinctIds) {
  Catalog catalog;
  auto* a = catalog.Register(std::make_unique<Table>(
                               "a", std::vector<std::string>{"k"}, "m"))
                .value();
  auto* b = catalog.Register(std::make_unique<Table>(
                               "b", std::vector<std::string>{"k"}, "m"))
                .value();
  EXPECT_NE(a->id(), 0u);
  EXPECT_NE(a->id(), b->id());
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .Register(std::make_unique<Table>(
                      "t", std::vector<std::string>{"k"}, "m"))
                  .ok());
  EXPECT_FALSE(catalog
                   .Register(std::make_unique<Table>(
                       "t", std::vector<std::string>{"k"}, "m"))
                   .ok());
}

TEST(CatalogTest, FindAndDrop) {
  Catalog catalog;
  catalog.Register(
      std::make_unique<Table>("t", std::vector<std::string>{"k"}, "m"));
  EXPECT_NE(catalog.Find("t"), nullptr);
  EXPECT_EQ(catalog.Find("nope"), nullptr);
  EXPECT_TRUE(catalog.Drop("t").ok());
  EXPECT_EQ(catalog.Find("t"), nullptr);
  EXPECT_FALSE(catalog.Drop("t").ok());
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog catalog;
  catalog.Register(
      std::make_unique<Table>("zeta", std::vector<std::string>{"k"}, "m"));
  catalog.Register(
      std::make_unique<Table>("alpha", std::vector<std::string>{"k"}, "m"));
  const auto names = catalog.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

}  // namespace
}  // namespace starshare
